// Crash-safe trace durability + deterministic chaos (ctest label:
// fault).
//
// The durability contract under test: SegmentedTraceWriter bounds a
// crash's blast radius to the active tail. Every *sealed* segment is
// salvaged bit-exactly, and the torn `.tmp` tail yields exactly its
// valid chunk prefix — asserted here by truncating a flushed-but-
// unsealed tail at EVERY byte offset and scanning the directory each
// time. Alongside: rotation and fsync policies are deterministic
// (same input → same segment boundaries and bytes), merge_segments
// folds a salvage into one servable trace, the degradation ladder's
// hysteresis is a pure function of its poll sequence, and the chaos
// scheduler is a pure function of (seed, coordinates) — the property
// that makes chaos runs replayable.
#include "stream/trace_segments.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/chaos.hpp"
#include "fault/fault_injector.hpp"
#include "gateway/degradation.hpp"
#include "stream/trace.hpp"

namespace saiyan {
namespace {

namespace fs = std::filesystem;

lora::PhyParams phy() {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  return p;
}

stream::TraceMeta meta() {
  stream::TraceMeta m;
  m.phy = phy();
  m.payload_symbols = 8;
  return m;
}

std::vector<stream::TraceMarker> markers() {
  std::vector<stream::TraceMarker> out(2);
  out[0].sample_offset = 7;
  out[0].tag_id = 1;
  out[0].symbols = {1, 2, 3};
  out[1].sample_offset = 9000;
  out[1].tag_id = 2;
  out[1].symbols = {3, 2, 1};
  return out;
}

/// Deterministic ramp so bit-exactness failures point at an offset.
dsp::Signal ramp(std::size_t n, std::size_t phase) {
  dsp::Signal s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = dsp::Complex(static_cast<double>(phase + i), -1.0);
  }
  return s;
}

/// Scratch capture directory, removed on teardown.
class SegmentDir : public ::testing::Test {
 protected:
  void SetUp() override {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "saiyan_segdir_%s_%d",
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name(),
                  static_cast<int>(::getpid()));
    dir_ = buf;
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

std::vector<dsp::Complex> read_all(stream::SegmentedTraceReader& reader) {
  std::vector<dsp::Complex> out;
  dsp::Signal chunk;
  for (;;) {
    const stream::ChunkStatus st = reader.next_chunk(chunk);
    if (st != stream::ChunkStatus::kOk &&
        st != stream::ChunkStatus::kResync) {
      break;
    }
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

// ------------------------------------------------- segment round-trip

TEST_F(SegmentDir, RoundTripIsBitExactAcrossRotation) {
  stream::SegmentPolicy policy;
  policy.segment_samples = 100;  // rotate every ~2 chunks of 50
  std::vector<dsp::Complex> written;
  {
    stream::SegmentedTraceWriter w(dir_, meta(), markers(), policy);
    for (int c = 0; c < 7; ++c) {
      const dsp::Signal s = ramp(50, written.size());
      written.insert(written.end(), s.begin(), s.end());
      w.write_chunk(s);
    }
    ASSERT_TRUE(w.finish().ok()) << w.last_error();
    EXPECT_EQ(w.samples_written(), written.size());
    // 7 chunks at 50 samples, rotation at >=100: segments of 2/2/2/1
    // chunks, all sealed by finish().
    EXPECT_EQ(w.segments_sealed(), 4u);
  }

  auto opened = stream::SegmentedTraceReader::open(dir_);
  ASSERT_TRUE(opened.ok()) << opened.message();
  stream::SegmentedTraceReader reader = std::move(opened).value();
  EXPECT_EQ(reader.report().sealed_segments, 4u);
  EXPECT_FALSE(reader.report().torn_tail);
  ASSERT_EQ(reader.markers().size(), 2u);
  EXPECT_EQ(reader.markers()[1].sample_offset, 9000u);
  EXPECT_EQ(reader.meta().total_samples, written.size());

  const std::vector<dsp::Complex> got = read_all(reader);
  ASSERT_EQ(got.size(), written.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], written[i]) << "sample " << i;
  }
  EXPECT_EQ(reader.stats().total_errors(), 0u);
}

TEST_F(SegmentDir, TimeBasedRotationIsDeterministic) {
  stream::SegmentPolicy policy;
  policy.segment_samples = 0;
  // 4 MHz sample rate: 100 us of capture time = 400 samples.
  policy.segment_seconds = 100e-6;
  stream::SegmentedTraceWriter w(dir_, meta(), {}, policy);
  for (int c = 0; c < 8; ++c) w.write_chunk(ramp(200, 0));
  ASSERT_TRUE(w.finish().ok()) << w.last_error();
  // Rotation fires at chunk boundaries once >= 400 samples: 2 chunks
  // per segment, 8 chunks -> 4 sealed segments. Wall clock never
  // enters the decision.
  EXPECT_EQ(w.segments_sealed(), 4u);
}

TEST_F(SegmentDir, FsyncPoliciesProduceIdenticalSealedBytes) {
  std::vector<std::string> contents;
  for (const stream::FsyncPolicy p :
       {stream::FsyncPolicy::kNone, stream::FsyncPolicy::kOnSeal,
        stream::FsyncPolicy::kEveryChunk}) {
    fs::remove_all(dir_);
    stream::SegmentPolicy policy;
    policy.segment_samples = 100;
    policy.fsync = p;
    stream::SegmentedTraceWriter w(dir_, meta(), markers(), policy);
    for (int c = 0; c < 5; ++c) w.write_chunk(ramp(50, 50u * c));
    ASSERT_TRUE(w.finish().ok()) << w.last_error();
    std::string all;
    for (std::uint64_t i = 0; i < w.segments_sealed(); ++i) {
      all += fault::read_file(
          dir_ + "/" + stream::SegmentedTraceWriter::segment_name(i));
    }
    contents.push_back(std::move(all));
  }
  // Durability policy changes *when* bytes reach the disk, never which
  // bytes: all three runs must be byte-identical.
  EXPECT_EQ(contents[0], contents[1]);
  EXPECT_EQ(contents[0], contents[2]);
}

TEST(FsyncPolicyNames, CoverEveryEnumerator) {
  EXPECT_STREQ(stream::to_string(stream::FsyncPolicy::kNone), "none");
  EXPECT_STREQ(stream::to_string(stream::FsyncPolicy::kOnSeal), "on-seal");
  EXPECT_STREQ(stream::to_string(stream::FsyncPolicy::kEveryChunk),
               "every-chunk");
}

TEST_F(SegmentDir, MergeProducesOnePlainServableTrace) {
  stream::SegmentPolicy policy;
  policy.segment_samples = 100;
  std::vector<dsp::Complex> written;
  {
    stream::SegmentedTraceWriter w(dir_, meta(), markers(), policy);
    for (int c = 0; c < 6; ++c) {
      const dsp::Signal s = ramp(50, written.size());
      written.insert(written.end(), s.begin(), s.end());
      w.write_chunk(s);
    }
    ASSERT_TRUE(w.finish().ok()) << w.last_error();
  }
  const std::string out_path = dir_ + ".merged.sytrc";
  auto merged = stream::merge_segments(dir_, out_path);
  ASSERT_TRUE(merged.ok()) << merged.message();
  EXPECT_EQ(merged.value().salvaged_samples, written.size());

  auto opened = stream::TraceReader::open(out_path);
  ASSERT_TRUE(opened.ok()) << opened.message();
  stream::TraceReader reader = std::move(opened).value();
  EXPECT_EQ(reader.meta().total_samples, written.size());
  ASSERT_EQ(reader.markers().size(), 2u);
  std::vector<dsp::Complex> got;
  dsp::Signal chunk;
  while (reader.next_chunk(chunk) == stream::ChunkStatus::kOk) {
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(got.size(), written.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], written[i]) << "sample " << i;
  }
  std::remove(out_path.c_str());
}

// ------------------------------------ torn tail at every byte offset

TEST_F(SegmentDir, TornTailSalvagesValidPrefixAtEveryByteOffset) {
  // Two sealed segments via the real writer...
  stream::SegmentPolicy policy;
  policy.segment_samples = 100;
  std::vector<dsp::Complex> sealed_samples;
  {
    stream::SegmentedTraceWriter w(dir_, meta(), markers(), policy);
    for (int c = 0; c < 4; ++c) {
      const dsp::Signal s = ramp(50, sealed_samples.size());
      sealed_samples.insert(sealed_samples.end(), s.begin(), s.end());
      w.write_chunk(s);
    }
    ASSERT_TRUE(w.finish().ok()) << w.last_error();
    ASSERT_EQ(w.segments_sealed(), 2u);
  }

  // ...then a torn tail, captured exactly as a crash leaves it: the
  // TraceWriter flushed its chunks but never patched the header total
  // (flush() then read the bytes *before* close runs).
  const std::string tail_tmp = dir_ + "/tail_build.sytrc";
  std::string tail_bytes;
  {
    stream::TraceWriter w(tail_tmp, meta());
    for (int c = 0; c < 3; ++c) w.write_chunk(ramp(40, 1000u + 40u * c));
    ASSERT_TRUE(w.flush());
    tail_bytes = fault::read_file(tail_tmp);
  }
  // The closed file has identical layout (only the patched total
  // differs), so its record map gives the expected prefix per cut.
  const fault::TraceLayout layout =
      fault::parse_trace_layout(fault::read_file(tail_tmp));
  std::remove(tail_tmp.c_str());
  ASSERT_EQ(layout.chunks.size(), 3u);

  const std::string tail_path = dir_ + "/seg-000002.sytrc.tmp";
  for (std::size_t cut = 0; cut <= tail_bytes.size(); ++cut) {
    fault::write_file(tail_path, std::string_view(tail_bytes).substr(0, cut));

    auto scanned = stream::scan_segments(dir_);
    ASSERT_TRUE(scanned.ok()) << "cut " << cut << ": " << scanned.message();
    const stream::RecoveryReport& rep = scanned.value();
    ASSERT_EQ(rep.segments.size(), 3u) << "cut " << cut;
    EXPECT_TRUE(rep.torn_tail) << "cut " << cut;
    EXPECT_EQ(rep.sealed_segments, 2u) << "cut " << cut;

    // Sealed segments salvage bit-exactly regardless of the tail.
    std::uint64_t sealed_salvage = 0;
    for (int i = 0; i < 2; ++i) {
      EXPECT_TRUE(rep.segments[i].complete) << "cut " << cut << " seg " << i;
      sealed_salvage += rep.segments[i].samples;
    }
    EXPECT_EQ(sealed_salvage, sealed_samples.size()) << "cut " << cut;

    // The tail salvages exactly the chunks whose records are fully
    // inside the cut — the valid prefix, nothing more.
    std::uint64_t expect_tail = 0;
    for (const fault::ChunkRecordInfo& c : layout.chunks) {
      if (c.offset + c.record_bytes <= cut) {
        expect_tail += c.n_samples;
      }
    }
    if (cut < layout.header_bytes) {
      // Header torn: the tail is unreadable, salvage is zero.
      EXPECT_FALSE(rep.segments[2].readable) << "cut " << cut;
      expect_tail = 0;
    }
    EXPECT_EQ(rep.segments[2].samples, expect_tail) << "cut " << cut;
    EXPECT_EQ(rep.salvaged_samples, sealed_salvage + expect_tail)
        << "cut " << cut;
  }
  std::remove(tail_path.c_str());
}

TEST_F(SegmentDir, RecoveryReportTextCarriesTheDocumentedKeys) {
  stream::SegmentPolicy policy;
  policy.segment_samples = 100;
  stream::SegmentedTraceWriter w(dir_, meta(), markers(), policy);
  for (int c = 0; c < 3; ++c) w.write_chunk(ramp(50, 0));
  ASSERT_TRUE(w.finish().ok());
  auto scanned = stream::scan_segments(dir_);
  ASSERT_TRUE(scanned.ok()) << scanned.message();
  const std::string text = scanned.value().to_text();
  for (const char* key :
       {"segments", "sealed_segments", "torn_tail", "salvaged_samples",
        "markers", "segment.0.sealed", "segment.0.complete",
        "segment.0.samples"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key << "\n" << text;
  }
}

// ------------------------------------------------- degradation ladder

TEST(DegradationLadder, EscalatesAfterSustainedPressureOnly) {
  gateway::DegradationConfig cfg;
  cfg.enabled = true;
  cfg.backlog_high = 64;
  cfg.backlog_low = 16;
  cfg.escalate_after = 2;
  cfg.deescalate_after = 3;
  gateway::DegradationLadder ladder(cfg);

  // One hot poll is not enough (a spike must be *sustained*).
  EXPECT_FALSE(ladder.update(100, 0));
  EXPECT_EQ(ladder.level(), gateway::DegradationLevel::kHealthy);
  // The second consecutive hot poll escalates one level.
  EXPECT_TRUE(ladder.update(100, 0));
  EXPECT_EQ(ladder.level(), gateway::DegradationLevel::kReduceSic);
  // A mid-band poll (between the watermarks) resets the hot streak.
  EXPECT_FALSE(ladder.update(40, 0));
  EXPECT_FALSE(ladder.update(100, 0));
  EXPECT_EQ(ladder.level(), gateway::DegradationLevel::kReduceSic);
  EXPECT_TRUE(ladder.update(100, 0));
  EXPECT_EQ(ladder.level(), gateway::DegradationLevel::kShedRescans);

  // Escalation saturates at the last rung.
  for (int i = 0; i < 10; ++i) ladder.update(100, 0);
  EXPECT_EQ(ladder.level(), gateway::DegradationLevel::kDropSpans);

  // Cooling needs deescalate_after consecutive polls at/below low.
  EXPECT_FALSE(ladder.update(10, 0));
  EXPECT_FALSE(ladder.update(10, 0));
  EXPECT_TRUE(ladder.update(10, 0));
  EXPECT_EQ(ladder.level(), gateway::DegradationLevel::kShedRescans);
  // The mid band holds the level (hysteresis: no flapping).
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(ladder.update(40, 0));
  EXPECT_EQ(ladder.level(), gateway::DegradationLevel::kShedRescans);
}

TEST(DegradationLadder, LatencySignalGatesOnlyWhenConfigured) {
  gateway::DegradationConfig cfg;
  cfg.enabled = true;
  cfg.backlog_high = 64;
  cfg.backlog_low = 16;
  cfg.escalate_after = 1;
  // p99 thresholds unset: latency must never escalate.
  gateway::DegradationLadder no_lat(cfg);
  EXPECT_FALSE(no_lat.update(0, 1u << 30));
  EXPECT_EQ(no_lat.level(), gateway::DegradationLevel::kHealthy);

  cfg.p99_high_us = 5000;
  cfg.p99_low_us = 1000;
  gateway::DegradationLadder with_lat(cfg);
  EXPECT_TRUE(with_lat.update(0, 6000));
  EXPECT_EQ(with_lat.level(), gateway::DegradationLevel::kReduceSic);
  // Cooling requires BOTH signals at/below their low watermarks: the
  // latency cooled but a mid-band backlog holds the level.
  EXPECT_FALSE(with_lat.update(40, 0));
  EXPECT_EQ(with_lat.level(), gateway::DegradationLevel::kReduceSic);
}

TEST(DegradationLadder, SamePollSequenceSameTransitions) {
  gateway::DegradationConfig cfg;
  cfg.enabled = true;
  cfg.backlog_high = 8;
  cfg.backlog_low = 2;
  cfg.escalate_after = 2;
  cfg.deescalate_after = 2;
  // A fixed chaos seed drives a fixed pressure sequence; the ladder
  // must walk the exact same levels both times.
  const fault::ChaosConfig chaos_cfg{.seed = 77, .stall_rate = 0.5};
  const fault::ChaosScheduler chaos(chaos_cfg);
  std::vector<std::uint32_t> walk1, walk2;
  for (std::vector<std::uint32_t>* walk : {&walk1, &walk2}) {
    gateway::DegradationLadder ladder(cfg);
    for (std::uint64_t poll = 0; poll < 200; ++poll) {
      const std::uint64_t backlog = chaos.stall_ms(0, poll) / 10;
      ladder.update(backlog, 0);
      walk->push_back(static_cast<std::uint32_t>(ladder.level()));
    }
  }
  EXPECT_EQ(walk1, walk2);
  // The pressure sequence must actually exercise the ladder.
  EXPECT_GT(*std::max_element(walk1.begin(), walk1.end()), 0u);
}

// ----------------------------------------------------- chaos scheduler

TEST(ChaosScheduler, IsAPureFunctionOfSeedAndCoordinates) {
  fault::ChaosConfig cfg;
  cfg.seed = 42;
  cfg.stall_rate = 0.3;
  cfg.slow_frame_rate = 0.2;
  const fault::ChaosScheduler a(cfg);
  const fault::ChaosScheduler b(cfg);
  // Probe b in reverse first: a stateless schedule cannot care about
  // query order (the property that makes chaos thread-order safe).
  std::vector<std::uint64_t> reversed;
  for (std::uint32_t w = 4; w-- > 0;) {
    for (std::uint64_t c = 256; c-- > 0;) {
      reversed.push_back(b.stall_ms(w, c));
    }
  }
  bool any_stall = false;
  for (std::uint32_t w = 0; w < 4; ++w) {
    for (std::uint64_t c = 0; c < 256; ++c) {
      EXPECT_EQ(a.stall_ms(w, c),
                reversed[(3 - w) * 256 + (255 - c)]);
      EXPECT_EQ(a.stall_ms(w, c), b.stall_ms(w, c));
      any_stall |= a.stall_ms(w, c) != 0;
      if (a.stall_ms(w, c) != 0) {
        EXPECT_GE(a.stall_ms(w, c), cfg.stall_min_ms);
        EXPECT_LE(a.stall_ms(w, c), cfg.stall_max_ms);
      }
    }
  }
  EXPECT_TRUE(any_stall);

  fault::ChaosConfig other = cfg;
  other.seed = 43;
  const fault::ChaosScheduler c(other);
  std::size_t diffs = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    diffs += a.stall_ms(0, i) != c.stall_ms(0, i) ? 1 : 0;
  }
  EXPECT_GT(diffs, 0u) << "different seeds must give different schedules";
}

TEST(ChaosScheduler, DisabledLanesAreSilent) {
  fault::ChaosConfig cfg;  // all rates default to 0
  cfg.seed = 9;
  const fault::ChaosScheduler chaos(cfg);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(chaos.stall_ms(0, i), 0u);
    EXPECT_EQ(chaos.subscriber_delay_ms(i), 0u);
  }
  EXPECT_EQ(chaos.kill_point(100), 100u) << "kill disabled -> never";
}

TEST(ChaosScheduler, KillPointLandsInTheBackHalf) {
  fault::ChaosConfig cfg;
  cfg.seed = 5;
  cfg.kill_while_recording = true;
  const fault::ChaosScheduler chaos(cfg);
  for (std::uint64_t total : {1ull, 2ull, 17ull, 1000ull}) {
    const std::uint64_t k = chaos.kill_point(total);
    EXPECT_GE(k, total / 2) << total;
    EXPECT_LT(k, total) << total;
    EXPECT_EQ(k, chaos.kill_point(total)) << "must be deterministic";
  }
  EXPECT_EQ(chaos.kill_point(0), 0u);
}

}  // namespace
}  // namespace saiyan
