// Sharded multi-gateway network simulator: deployment geometry and
// link-budget assignment, shard-count determinism, the co-channel
// interference hook, handover, jammer escape, shard-aware metric
// merging, and the golden-value regression pinning the Fig. 26/27
// case studies across the kernel refactor.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "channel/interference.hpp"
#include "mac/gateway_sim.hpp"

namespace saiyan::mac {
namespace {

// ------------------------------------------------------------------
// channel::interference hook

TEST(InterferenceHook, NoiseFloorMatchesHandComputation) {
  // -174 dBm/Hz + 10·log10(500 kHz) + 6 dB NF.
  EXPECT_NEAR(channel::noise_floor_dbm(500e3, 6.0), -111.0103, 1e-3);
  EXPECT_THROW(channel::noise_floor_dbm(0.0), std::invalid_argument);
}

TEST(InterferenceHook, SumPowerMatchesHandComputation) {
  // Two equal -90 dBm sources add 3.01 dB.
  const std::vector<double> two = {-90.0, -90.0};
  EXPECT_NEAR(channel::sum_power_dbm(two), -86.9897, 1e-3);
  EXPECT_TRUE(std::isinf(channel::sum_power_dbm({})));
}

TEST(InterferenceHook, SinrAgainstFloorAndInterferers) {
  // No interference: SINR is just SNR.
  EXPECT_NEAR(channel::sinr_db(-80.0, {}, -100.0), 20.0, 1e-9);
  // One interferer at the floor halves the denominator margin.
  const std::vector<double> one = {-100.0};
  EXPECT_NEAR(channel::sinr_db(-80.0, one, -100.0), 20.0 - 3.0103, 1e-3);
}

TEST(InterferenceHook, PenaltyMatchesHandComputation) {
  EXPECT_EQ(channel::interference_penalty_db({}, -110.0), 0.0);
  // Interference equal to the floor: 10·log10(2).
  const std::vector<double> eq = {-110.0};
  EXPECT_NEAR(channel::interference_penalty_db(eq, -110.0), 3.0103, 1e-3);
  // Interference 10 dB under the floor: 10·log10(1.1).
  const std::vector<double> weak = {-120.0};
  EXPECT_NEAR(channel::interference_penalty_db(weak, -110.0), 0.4139, 1e-3);
}

// ------------------------------------------------------------------
// Deployment: placement + link-budget assignment

TEST(Deployment, AssignmentMatchesHandComputedLinkBudgets) {
  DeploymentConfig cfg;
  cfg.n_gateways = 2;
  cfg.n_tags = 3;
  cfg.gateway_positions = {{0.0, 0.0}, {200.0, 0.0}};
  cfg.tag_positions = {{50.0, 0.0}, {150.0, 0.0}, {100.0, 0.0}};
  const Deployment d = Deployment::make(cfg);

  // Tag 0 is 50 m from gateway 0 and 150 m from gateway 1; with a
  // monotone path-loss model the nearer gateway wins.
  EXPECT_EQ(d.serving_gateway[0], 0u);
  EXPECT_EQ(d.serving_gateway[1], 1u);
  // Equidistant tie breaks to the lowest index, deterministically.
  EXPECT_EQ(d.serving_gateway[2], 0u);

  // The stored serving RSS is exactly the link budget at the
  // tag-to-gateway distance.
  EXPECT_DOUBLE_EQ(d.serving_rss_dbm[0], cfg.link.rss_dbm(50.0, cfg.env));
  EXPECT_DOUBLE_EQ(d.serving_rss_dbm[1], cfg.link.rss_dbm(50.0, cfg.env));
  EXPECT_DOUBLE_EQ(d.serving_rss_dbm[2], cfg.link.rss_dbm(100.0, cfg.env));

  // Wall losses shift every link identically, so assignment holds.
  DeploymentConfig walls = cfg;
  walls.env.concrete_walls = 2;
  const Deployment dw = Deployment::make(walls);
  EXPECT_EQ(dw.serving_gateway, d.serving_gateway);
  EXPECT_DOUBLE_EQ(dw.serving_rss_dbm[0], walls.link.rss_dbm(50.0, walls.env));
  EXPECT_LT(dw.serving_rss_dbm[0], d.serving_rss_dbm[0]);
}

TEST(Deployment, ShardPartitionCoversEveryTagOnce) {
  DeploymentConfig cfg;
  cfg.n_gateways = 5;
  cfg.n_tags = 97;
  const Deployment d = Deployment::make(cfg);
  std::vector<int> seen(cfg.n_tags, 0);
  for (std::size_t g = 0; g < d.shard_tags.size(); ++g) {
    for (std::size_t t : d.shard_tags[g]) {
      ASSERT_LT(t, cfg.n_tags);
      EXPECT_EQ(d.serving_gateway[t], g);
      ++seen[t];
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int n) { return n == 1; }));
}

TEST(Deployment, PlacementDeterministicAndInBounds) {
  DeploymentConfig cfg;
  cfg.n_gateways = 4;
  cfg.n_tags = 64;
  cfg.area_side_m = 250.0;
  const Deployment a = Deployment::make(cfg);
  const Deployment b = Deployment::make(cfg);
  ASSERT_EQ(a.tags.size(), 64u);
  for (std::size_t t = 0; t < a.tags.size(); ++t) {
    EXPECT_DOUBLE_EQ(a.tags[t].x_m, b.tags[t].x_m);
    EXPECT_DOUBLE_EQ(a.tags[t].y_m, b.tags[t].y_m);
    EXPECT_GE(a.tags[t].x_m, 0.0);
    EXPECT_LE(a.tags[t].x_m, cfg.area_side_m);
    EXPECT_GE(a.tags[t].y_m, 0.0);
    EXPECT_LE(a.tags[t].y_m, cfg.area_side_m);
  }
  // A different seed moves the tags.
  DeploymentConfig other = cfg;
  other.seed = 43;
  const Deployment c = Deployment::make(other);
  EXPECT_NE(a.tags[0].x_m, c.tags[0].x_m);
}

TEST(Deployment, RejectsBadConfigs) {
  DeploymentConfig cfg;
  cfg.n_gateways = 0;
  EXPECT_THROW(Deployment::make(cfg), std::invalid_argument);
  cfg.n_gateways = 2;
  cfg.n_channels = 0;
  EXPECT_THROW(Deployment::make(cfg), std::invalid_argument);
  cfg.n_channels = 2;
  cfg.gateway_positions = {{0.0, 0.0}};  // 1 position for 2 gateways
  EXPECT_THROW(Deployment::make(cfg), std::invalid_argument);
}

// ------------------------------------------------------------------
// Shard-count determinism (the acceptance bar: ≥4 gateways, ≥64 tags,
// bit-identical at 1, 2 and 8 workers)

GatewaySimConfig busy_network() {
  GatewaySimConfig cfg;
  cfg.deployment.n_gateways = 4;
  cfg.deployment.n_tags = 64;
  cfg.deployment.area_side_m = 500.0;
  cfg.deployment.n_channels = 2;
  cfg.deployment.seed = 7;
  cfg.n_windows = 12;
  cfg.packets_per_window = 8;
  cfg.max_retransmissions = 2;
  cfg.shadowing_sigma_db = 6.0;   // exercises the shadowing draws
  cfg.interference_enabled = true;
  cfg.handover_enabled = true;
  cfg.jammed_channel = 0;         // and the jammer + hop paths
  cfg.jammer_position = {250.0, 250.0};
  cfg.jammer_eirp_dbm = 36.0;
  return cfg;
}

TEST(GatewaySim, AggregatePrrBitIdenticalAcrossWorkerCounts) {
  const GatewaySim gw(busy_network());
  std::vector<NetworkResult> runs;
  for (unsigned threads : {1u, 2u, 8u}) {
    runs.push_back(gw.run(sim::SweepEngine(threads)));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].aggregate_prr(), runs[0].aggregate_prr());
    EXPECT_EQ(runs[r].throughput_bps, runs[0].throughput_bps);
    EXPECT_EQ(runs[r].packets.received(), runs[0].packets.received());
    EXPECT_EQ(runs[r].packets.total(), runs[0].packets.total());
    EXPECT_EQ(runs[r].retransmissions, runs[0].retransmissions);
    EXPECT_EQ(runs[r].handovers, runs[0].handovers);
    EXPECT_EQ(runs[r].hops, runs[0].hops);
    EXPECT_EQ(runs[r].mean_interference_penalty_db,
              runs[0].mean_interference_penalty_db);
    ASSERT_EQ(runs[r].shards.size(), runs[0].shards.size());
    for (std::size_t g = 0; g < runs[0].shards.size(); ++g) {
      EXPECT_EQ(runs[r].shards[g].packets.prr(),
                runs[0].shards[g].packets.prr());
      EXPECT_EQ(runs[r].shards[g].retransmissions,
                runs[0].shards[g].retransmissions);
    }
  }
  // The run does real work: packets flowed and feedback fired.
  EXPECT_EQ(runs[0].packets.total(), 64u * 12u * 8u);
  EXPECT_GT(runs[0].retransmissions, 0u);
}

TEST(GatewaySim, RepeatedRunsAreIdentical) {
  const GatewaySim gw(busy_network());
  const sim::SweepEngine engine(4);
  const NetworkResult a = gw.run(engine);
  const NetworkResult b = gw.run(engine);
  EXPECT_EQ(a.aggregate_prr(), b.aggregate_prr());
  EXPECT_EQ(a.handovers, b.handovers);
  EXPECT_EQ(a.hops, b.hops);
}

// ------------------------------------------------------------------
// Scenario behavior

TEST(GatewaySim, CoChannelInterferenceCostsPrr) {
  GatewaySimConfig cfg;
  cfg.deployment.n_gateways = 9;
  cfg.deployment.n_tags = 96;
  cfg.deployment.area_side_m = 600.0;
  cfg.deployment.n_channels = 3;
  cfg.n_windows = 10;
  cfg.packets_per_window = 10;
  cfg.handover_enabled = false;
  GatewaySimConfig quiet = cfg;
  quiet.interference_enabled = false;
  const sim::SweepEngine engine(2);
  const NetworkResult noisy = GatewaySim(cfg).run(engine);
  const NetworkResult silent = GatewaySim(quiet).run(engine);
  EXPECT_GT(noisy.mean_interference_penalty_db, 0.0);
  EXPECT_EQ(silent.mean_interference_penalty_db, 0.0);
  EXPECT_GT(silent.aggregate_prr(), noisy.aggregate_prr());
}

TEST(GatewaySim, HandoverMovesTagsToStrongerGateways) {
  GatewaySimConfig cfg;
  cfg.deployment.n_gateways = 4;
  cfg.deployment.n_tags = 64;
  cfg.deployment.area_side_m = 500.0;
  cfg.deployment.seed = 11;
  cfg.n_windows = 20;
  cfg.packets_per_window = 5;
  cfg.shadowing_sigma_db = 8.0;  // deep fades push tags across cells
  cfg.interference_enabled = false;
  GatewaySimConfig pinned = cfg;
  pinned.handover_enabled = false;
  const sim::SweepEngine engine(2);
  const NetworkResult mobile = GatewaySim(cfg).run(engine);
  const NetworkResult stuck = GatewaySim(pinned).run(engine);
  EXPECT_GT(mobile.handovers, 0u);
  EXPECT_EQ(stuck.handovers, 0u);
}

TEST(GatewaySim, JammerEscapeLiftsJammedCells) {
  GatewaySimConfig cfg;
  cfg.deployment.n_gateways = 4;
  cfg.deployment.n_tags = 64;
  cfg.deployment.area_side_m = 400.0;
  cfg.deployment.n_channels = 4;
  cfg.n_windows = 30;
  cfg.packets_per_window = 10;
  cfg.handover_enabled = false;
  cfg.interference_enabled = false;
  cfg.jammed_channel = 0;
  cfg.jammer_position = {200.0, 200.0};
  cfg.jammer_eirp_dbm = 40.0;
  cfg.hopping_enabled = true;
  GatewaySimConfig pinned = cfg;
  pinned.hopping_enabled = false;
  const sim::SweepEngine engine(2);
  const NetworkResult escaped = GatewaySim(cfg).run(engine);
  const NetworkResult jammed = GatewaySim(pinned).run(engine);
  EXPECT_GT(escaped.hops, 0u);
  EXPECT_EQ(jammed.hops, 0u);
  EXPECT_GT(escaped.aggregate_prr(), jammed.aggregate_prr());
}

// ------------------------------------------------------------------
// Shard-aware metric merging

TEST(CollisionModel, CaptureRuleMatchesHandComputation) {
  // Stronger frame captures above the threshold; the weaker one needs
  // SIC; near-equal power is lost either way.
  EXPECT_EQ(collision_outcome(6.0, 6.0, 0), CaptureOutcome::kCaptured);
  EXPECT_EQ(collision_outcome(9.0, 6.0, 2), CaptureOutcome::kCaptured);
  EXPECT_EQ(collision_outcome(-6.0, 6.0, 0), CaptureOutcome::kLost);
  EXPECT_EQ(collision_outcome(-6.0, 6.0, 1), CaptureOutcome::kSicResolved);
  EXPECT_EQ(collision_outcome(0.0, 6.0, 2), CaptureOutcome::kLost);
  EXPECT_EQ(collision_outcome(3.0, 6.0, 2), CaptureOutcome::kLost);
}

TEST(CollisionModel, SicLiftsCollisionPrrAndCountersMergeDeterministically) {
  // Case-study mode pins the per-link probabilities so the PRR
  // comparison isolates the collision model (the two runs' RNG streams
  // diverge after the first differing capture outcome, so every other
  // link effect must be held constant).
  GatewaySimConfig cfg = busy_network();
  cfg.jammed_channel = -1;
  cfg.shadowing_sigma_db = 0.0;
  cfg.handover_enabled = false;
  cfg.hopping_enabled = false;
  cfg.measured_link = MeasuredLinkOverride{0.95, 0.45, 0.98};
  cfg.collision_rate = 0.3;
  const GatewaySim gw(cfg);

  cfg.sic_depth = 2;
  const GatewaySim gw_sic(cfg);

  const sim::SweepEngine engine(4);
  const NetworkResult plain = gw.run(engine);
  const NetworkResult sic = gw_sic.run(engine);
  ASSERT_GT(plain.collisions.frames(), 0u);
  ASSERT_GT(sic.collisions.frames(), 0u);
  EXPECT_EQ(plain.collisions.resolved(), 0u);
  EXPECT_GT(sic.collisions.resolved(), 0u);
  // SIC recovers the weaker side of lopsided collisions, so the
  // captured fraction rises substantially and the network delivers
  // measurably more packets.
  EXPECT_GT(sic.collisions.capture_rate(),
            plain.collisions.capture_rate() + 0.1);
  EXPECT_GT(sic.aggregate_prr(), plain.aggregate_prr());

  // Shard-merged counters are bit-identical at any worker count.
  const NetworkResult again = gw_sic.run(sim::SweepEngine(1));
  EXPECT_EQ(again.collisions.frames(), sic.collisions.frames());
  EXPECT_EQ(again.collisions.captured(), sic.collisions.captured());
  EXPECT_EQ(again.collisions.resolved(), sic.collisions.resolved());
}

TEST(CollisionModel, ZeroRateDrawsNothingAndChangesNothing) {
  // collision_rate = 0 must leave the RNG stream untouched: the run is
  // bit-identical to a config that never heard of collisions.
  const GatewaySimConfig base = busy_network();
  GatewaySimConfig with_knobs = base;
  with_knobs.capture_threshold_db = 9.0;
  with_knobs.sic_depth = 3;  // irrelevant while collision_rate == 0
  const sim::SweepEngine engine(2);
  const NetworkResult a = GatewaySim(base).run(engine);
  const NetworkResult b = GatewaySim(with_knobs).run(engine);
  EXPECT_EQ(a.aggregate_prr(), b.aggregate_prr());
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(b.collisions.frames(), 0u);
}

TEST(MetricsMerge, CountersFoldLikeSequentialAccumulation) {
  sim::PacketCounter a, b, whole;
  for (int i = 0; i < 10; ++i) {
    a.add(i % 2 == 0);
    whole.add(i % 2 == 0);
  }
  for (int i = 0; i < 7; ++i) {
    b.add(i % 3 == 0);
    whole.add(i % 3 == 0);
  }
  sim::PacketCounter merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.received(), whole.received());
  EXPECT_EQ(merged.total(), whole.total());
  EXPECT_EQ(merged.prr(), whole.prr());

  sim::ErrorCounter ea, eb;
  ea.add_symbol(1, 2, 3);
  eb.add_symbol(5, 5, 3);
  eb.add_bits(2, 10);
  sim::ErrorCounter em;
  em.merge(ea);
  em.merge(eb);
  EXPECT_EQ(em.symbols(), 2u);
  EXPECT_EQ(em.symbol_errors(), 1u);
  EXPECT_EQ(em.bits(), 16u);
  EXPECT_EQ(em.bit_errors(), 2u + 2u);
}

TEST(MetricsMerge, CdfMergePoolsSamples) {
  sim::Cdf a, b, whole;
  for (double v : {0.1, 0.5, 0.9}) {
    a.add(v);
    whole.add(v);
  }
  for (double v : {0.2, 0.8}) {
    b.add(v);
    whole.add(v);
  }
  sim::Cdf merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.size(), whole.size());
  EXPECT_DOUBLE_EQ(merged.median(), whole.median());
  EXPECT_DOUBLE_EQ(merged.quantile(0.25), whole.quantile(0.25));
}

// ------------------------------------------------------------------
// Golden-value regression: the kernel refactor (network_sim now runs
// through deliver_with_retransmissions / window_prr, shared with the
// GatewaySim shards) must not move a single draw of the legacy
// single-AP studies. Values captured from the pre-refactor build.

TEST(GoldenCaseStudies, RetransmissionExactValuesUnchanged) {
  const double plora_expect[4] = {0.81345000000000001, 0.96389999999999998,
                                  0.99109999999999998, 0.995};
  const double aloba_expect[4] = {0.45534999999999998, 0.70089999999999997,
                                  0.82994999999999997, 0.89929999999999999};
  for (std::size_t n = 0; n <= 3; ++n) {
    RetransmissionStudyConfig cfg;
    cfg.n_packets = 20000;
    cfg.max_retransmissions = n;
    cfg.base_prr = 0.818;
    EXPECT_EQ(retransmission_prr(cfg), plora_expect[n]) << "plora n=" << n;
    cfg.base_prr = 0.456;
    EXPECT_EQ(retransmission_prr(cfg), aloba_expect[n]) << "aloba n=" << n;
  }
  RetransmissionStudyConfig no_saiyan;
  no_saiyan.base_prr = 0.456;
  no_saiyan.max_retransmissions = 3;
  no_saiyan.tag_has_saiyan = false;
  no_saiyan.n_packets = 10000;
  EXPECT_EQ(retransmission_prr(no_saiyan), 0.45700000000000002);
}

TEST(GoldenCaseStudies, ChannelHoppingExactValuesUnchanged) {
  ChannelHoppingStudyConfig jammed;
  jammed.hopping_enabled = false;
  const ChannelHoppingResult before = channel_hopping_study(jammed);
  EXPECT_EQ(before.prr_cdf.median(), 0.45000000000000001);
  EXPECT_EQ(before.hops, 0u);

  ChannelHoppingStudyConfig hopping;
  const ChannelHoppingResult after = channel_hopping_study(hopping);
  EXPECT_EQ(after.prr_cdf.median(), 0.94999999999999996);
  EXPECT_EQ(after.prr_cdf.quantile(0.1), 0.84999999999999998);
  EXPECT_EQ(after.prr_cdf.quantile(0.9), 1.0);
  EXPECT_EQ(after.hops, 1u);
}

TEST(GoldenCaseStudies, GatewaySimPortReproducesLegacyStudies) {
  // The 1-gateway GatewaySim port runs the same loss process from
  // reseeded shard streams — equal within Monte-Carlo tolerance.
  const sim::SweepEngine engine(2);
  for (std::size_t n = 0; n <= 3; ++n) {
    RetransmissionStudyConfig cfg;
    cfg.base_prr = 0.456;
    cfg.n_packets = 20000;
    cfg.max_retransmissions = n;
    EXPECT_NEAR(gateway_sim_retransmission_prr(cfg, engine),
                retransmission_prr(cfg), 0.015)
        << "n=" << n;
  }

  ChannelHoppingStudyConfig hop;
  const ChannelHoppingResult legacy = channel_hopping_study(hop);
  const ChannelHoppingResult ported = gateway_sim_channel_hopping(hop, engine);
  EXPECT_NEAR(ported.prr_cdf.median(), legacy.prr_cdf.median(), 0.05);
  EXPECT_GE(ported.hops, 1u);
  ChannelHoppingStudyConfig stay;
  stay.hopping_enabled = false;
  const ChannelHoppingResult stayed = gateway_sim_channel_hopping(stay, engine);
  EXPECT_EQ(stayed.hops, 0u);
  EXPECT_NEAR(stayed.prr_cdf.median(), 0.45, 0.08);
}

}  // namespace
}  // namespace saiyan::mac
