// sim module: metrics, BER model anchors, range finder, reporters.
#include <gtest/gtest.h>

#include "sim/ber_model.hpp"
#include "sim/metrics.hpp"
#include "sim/range_finder.hpp"
#include "sim/report.hpp"

namespace saiyan::sim {
namespace {

lora::PhyParams phy(int k = 2, int sf = 7, double bw = 500e3) {
  lora::PhyParams p;
  p.spreading_factor = sf;
  p.bandwidth_hz = bw;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = k;
  return p;
}

TEST(Metrics, ErrorCounterBitsAndSymbols) {
  ErrorCounter c;
  c.add_symbol(0b101, 0b101, 3);  // correct
  c.add_symbol(0b101, 0b100, 3);  // 1 bit wrong
  c.add_symbol(0b000, 0b111, 3);  // 3 bits wrong
  EXPECT_EQ(c.symbols(), 3u);
  EXPECT_EQ(c.symbol_errors(), 2u);
  EXPECT_EQ(c.bits(), 9u);
  EXPECT_EQ(c.bit_errors(), 4u);
  EXPECT_NEAR(c.ber(), 4.0 / 9.0, 1e-12);
  EXPECT_NEAR(c.ser(), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, PacketCounter) {
  PacketCounter p;
  p.add(true);
  p.add(false);
  p.add(true);
  p.add(true);
  EXPECT_NEAR(p.prr(), 0.75, 1e-12);
  EXPECT_EQ(p.total(), 4u);
}

TEST(Metrics, CdfQuantiles) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(static_cast<double>(i));
  EXPECT_NEAR(cdf.median(), 50.5, 0.01);
  EXPECT_NEAR(cdf.quantile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(cdf.quantile(1.0), 100.0, 1e-12);
  EXPECT_EQ(cdf.curve().size(), 100u);
  EXPECT_THROW(Cdf{}.median(), std::logic_error);
}

TEST(Metrics, ThroughputDeclinesWithBer) {
  const double rate = 19531.25;  // K=5, SF7, BW500
  EXPECT_NEAR(effective_throughput_bps(rate, 0.0), rate, 1e-9);
  // Paper Fig. 16(b): ~17.2 Kbps at BER 4.4e-3.
  EXPECT_NEAR(effective_throughput_bps(rate, 4.4e-3), 17100.0, 600.0);
  EXPECT_LT(effective_throughput_bps(rate, 0.05), rate * 0.3);
}

TEST(BerModel, SuperSensitivityAnchor) {
  const BerModel m;
  // Paper §5.2.1: -85.8 dBm at the reference configuration.
  EXPECT_NEAR(m.required_rss_dbm(core::Mode::kSuper, phy(),
                                 m.config().calibration_temp_c),
              -85.8, 0.01);
}

TEST(BerModel, ModeOrdering) {
  const BerModel m;
  const double super = m.required_rss_dbm(core::Mode::kSuper, phy());
  const double cfs = m.required_rss_dbm(core::Mode::kFrequencyShifting, phy());
  const double van = m.required_rss_dbm(core::Mode::kVanilla, phy());
  EXPECT_LT(super, cfs);
  EXPECT_LT(cfs, van);
  // CFS offset ~ 12.9 dB (2.1x range at n=4).
  EXPECT_NEAR(cfs - super, 12.9, 0.2);
  EXPECT_NEAR(van - cfs, 8.7, 0.2);
}

TEST(BerModel, KAndSfAndBwTrends) {
  const BerModel m;
  // Higher K -> worse sensitivity.
  EXPECT_LT(m.required_rss_dbm(core::Mode::kSuper, phy(1)),
            m.required_rss_dbm(core::Mode::kSuper, phy(5)));
  // Higher SF -> slightly better.
  EXPECT_GT(m.required_rss_dbm(core::Mode::kSuper, phy(2, 7)),
            m.required_rss_dbm(core::Mode::kSuper, phy(2, 12)));
  // Narrower BW -> worse (smaller SAW gap).
  EXPECT_LT(m.required_rss_dbm(core::Mode::kSuper, phy(2, 7, 500e3)),
            m.required_rss_dbm(core::Mode::kSuper, phy(2, 7, 250e3)));
  EXPECT_LT(m.required_rss_dbm(core::Mode::kSuper, phy(2, 7, 250e3)),
            m.required_rss_dbm(core::Mode::kSuper, phy(2, 7, 125e3)));
}

TEST(BerModel, BerWaterfallShape) {
  const BerModel m;
  const double sens = m.required_rss_dbm(core::Mode::kSuper, phy());
  EXPECT_NEAR(m.ber(sens, core::Mode::kSuper, phy()), 1e-3, 1e-5);
  EXPECT_LT(m.ber(sens + 6.0, core::Mode::kSuper, phy()), 1e-4);
  EXPECT_GT(m.ber(sens - 3.0, core::Mode::kSuper, phy()), 1e-2);
  EXPECT_LE(m.ber(sens - 30.0, core::Mode::kSuper, phy()), 0.5);
}

TEST(BerModel, PerGrowsWithPayload) {
  const BerModel m;
  const double rss = m.required_rss_dbm(core::Mode::kSuper, phy());
  const double per_small = m.per(rss, core::Mode::kSuper, phy(), 64);
  const double per_large = m.per(rss, core::Mode::kSuper, phy(), 640);
  EXPECT_GT(per_large, per_small);
  EXPECT_LE(per_large, 1.0);
}

TEST(BerModel, TemperaturePenalty) {
  // Morning-calibrated model (the Fig. 24 setup): warming from the
  // -8.6 C calibration point to +1.6 C costs 0.11 dB/K of drift.
  BerModelConfig cfg;
  cfg.calibration_temp_c = -8.6;
  const BerModel m(cfg);
  const double at_cal = m.required_rss_dbm(core::Mode::kSuper, phy(), -8.6);
  const double warm = m.required_rss_dbm(core::Mode::kSuper, phy(), 1.6);
  EXPECT_GT(warm, at_cal);  // drift costs sensitivity
  EXPECT_NEAR(warm - at_cal, 0.11 * 10.2, 0.05);
}

TEST(BerModel, RejectsBadConfig) {
  BerModelConfig bad;
  bad.base_sensitivity_dbm = 10.0;
  EXPECT_THROW(BerModel{bad}, std::invalid_argument);
  BerModelConfig bad2;
  bad2.cfs_to_super_range_ratio = 0.9;
  EXPECT_THROW(BerModel{bad2}, std::invalid_argument);
}

TEST(RangeFinder, InvertsMonotoneCurve) {
  // Synthetic BER curve with a known 1e-3 crossing at 100 m.
  auto ber_at = [](double d) { return 1e-3 * std::pow(d / 100.0, 8.0); };
  EXPECT_NEAR(find_range_m(ber_at, 1e-3), 100.0, 0.5);
}

TEST(RangeFinder, ClampsAtBounds) {
  EXPECT_NEAR(find_range_m([](double) { return 1.0; }, 1e-3, 1.0, 100.0), 1.0, 1e-9);
  EXPECT_NEAR(find_range_m([](double) { return 0.0; }, 1e-3, 1.0, 100.0), 100.0,
              1e-9);
  EXPECT_THROW(find_range_m([](double) { return 0.0; }, 1e-3, 10.0, 5.0),
               std::invalid_argument);
}

TEST(RangeFinder, PaperAnchorRanges) {
  const BerModel m;
  const channel::LinkBudget link;
  // Fig. 21: super Saiyan ~148.6 m outdoors (at the calibration temp).
  const double super = model_range_m(m, core::Mode::kSuper, phy(), link, {},
                                     m.config().calibration_temp_c);
  EXPECT_NEAR(super, 148.6, 8.0);
  // Ablation ordering with the paper's multipliers.
  const double cfs = model_range_m(m, core::Mode::kFrequencyShifting, phy(), link,
                                   {}, m.config().calibration_temp_c);
  const double van = model_range_m(m, core::Mode::kVanilla, phy(), link, {},
                                   m.config().calibration_temp_c);
  EXPECT_NEAR(super / cfs, 2.1, 0.1);
  EXPECT_NEAR(cfs / van, 1.65, 0.1);
}

TEST(RangeFinder, IndoorShorterThanOutdoor) {
  const BerModel m;
  const channel::LinkBudget link;
  channel::Environment indoor;
  indoor.concrete_walls = 1;
  indoor.indoor_clutter = true;
  const double out = model_range_m(m, core::Mode::kSuper, phy(), link);
  const double in = model_range_m(m, core::Mode::kSuper, phy(), link, indoor);
  EXPECT_LT(in, out);
  // Fig. 21: indoor NLOS ~44.2 m vs outdoor ~148.6 m (ratio ~3.4).
  EXPECT_NEAR(out / in, 3.4, 0.4);
}

TEST(RangeFinder, DetectionExceedsDemodulation) {
  const BerModel m;
  const channel::LinkBudget link;
  const double demod = model_range_m(m, core::Mode::kSuper, phy(), link);
  const double detect = model_detection_range_m(m, core::Mode::kSuper, phy(), link);
  EXPECT_GT(detect, demod);
}

TEST(Report, TableRendersAligned) {
  Table t({"col", "value"});
  t.add_row({"a", "1"});
  t.add_row({"bbbb", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("col"), std::string::npos);
  EXPECT_NE(s.find("bbbb"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Report, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Report, Formatting) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_sci(0.00123, 1), "1.2e-03");
}

}  // namespace
}  // namespace saiyan::sim
