// SweepEngine: deterministic parallel Monte-Carlo execution.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "sim/range_finder.hpp"
#include "sim/sweep_engine.hpp"

namespace saiyan::sim {
namespace {

lora::PhyParams phy(int k = 2) {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = k;
  return p;
}

PipelineConfig small_config() {
  PipelineConfig cfg;
  cfg.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  cfg.payload_symbols = 8;
  cfg.seed = 21;
  return cfg;
}

TEST(SweepEngine, DeriveSeedSpreadsStreams) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(SweepEngine::derive_seed(7, i));
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_NE(SweepEngine::derive_seed(7, 0), SweepEngine::derive_seed(8, 0));
}

TEST(SweepEngine, ForEachVisitsEveryIndexOnce) {
  const SweepEngine engine(8);
  std::vector<std::atomic<int>> hits(257);
  engine.for_each(hits.size(), 3, [&](std::size_t i, dsp::Rng&) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepEngine, PerPointRngIndependentOfSchedule) {
  // The first draw of every point must equal the draw an Rng seeded
  // with derive_seed(seed, i) produces — regardless of thread count.
  const std::uint64_t seed = 99;
  std::vector<double> got_serial(64), got_parallel(64);
  SweepEngine(1).for_each(64, seed, [&](std::size_t i, dsp::Rng& rng) {
    got_serial[i] = rng.gaussian();
  });
  SweepEngine(8).for_each(64, seed, [&](std::size_t i, dsp::Rng& rng) {
    got_parallel[i] = rng.gaussian();
  });
  for (std::size_t i = 0; i < 64; ++i) {
    dsp::Rng expect(SweepEngine::derive_seed(seed, i));
    const double want = expect.gaussian();
    EXPECT_EQ(got_serial[i], want);
    EXPECT_EQ(got_parallel[i], want);
  }
}

TEST(SweepEngine, ExceptionsPropagate) {
  const SweepEngine engine(4);
  EXPECT_THROW(engine.for_each_index(
                   16, [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(SweepEngine, SweepResultsBitIdenticalAcrossThreadCounts) {
  const PipelineConfig cfg = small_config();
  const std::vector<double> rss = {-60.0, -80.0, -84.0};
  std::vector<std::vector<PipelineResult>> runs;
  for (unsigned threads : {1u, 2u, 8u}) {
    const SweepEngine engine(threads);
    runs.push_back(sweep_rss(cfg, rss, 2, engine));
  }
  for (std::size_t t = 1; t < runs.size(); ++t) {
    ASSERT_EQ(runs[t].size(), runs[0].size());
    for (std::size_t i = 0; i < rss.size(); ++i) {
      EXPECT_EQ(runs[t][i].errors.symbols(), runs[0][i].errors.symbols());
      EXPECT_EQ(runs[t][i].errors.symbol_errors(),
                runs[0][i].errors.symbol_errors());
      EXPECT_EQ(runs[t][i].errors.bit_errors(), runs[0][i].errors.bit_errors());
      EXPECT_EQ(runs[t][i].detections.total(), runs[0][i].detections.total());
      EXPECT_EQ(runs[t][i].detections.prr(), runs[0][i].detections.prr());
      EXPECT_EQ(runs[t][i].throughput_bps, runs[0][i].throughput_bps);
    }
  }
}

TEST(SweepEngine, PipelinePacketBatchIdenticalAcrossThreadCounts) {
  std::vector<PipelineResult> results;
  for (unsigned threads : {1u, 2u, 8u}) {
    PipelineConfig cfg = small_config();
    cfg.threads = threads;
    WaveformPipeline wp(cfg);
    results.push_back(wp.run_rss(-82.0, 6));
  }
  for (std::size_t t = 1; t < results.size(); ++t) {
    EXPECT_EQ(results[t].errors.symbols(), results[0].errors.symbols());
    EXPECT_EQ(results[t].errors.symbol_errors(),
              results[0].errors.symbol_errors());
    EXPECT_EQ(results[t].errors.bit_errors(), results[0].errors.bit_errors());
    EXPECT_EQ(results[t].detections.prr(), results[0].detections.prr());
  }
}

TEST(SweepEngine, SweepDistanceMatchesRunDistancePerPoint) {
  const PipelineConfig cfg = small_config();
  const std::vector<double> dist = {30.0, 90.0};
  const SweepEngine engine(2);
  const std::vector<PipelineResult> swept = sweep_distance(cfg, dist, 2, engine);
  ASSERT_EQ(swept.size(), dist.size());
  for (std::size_t i = 0; i < dist.size(); ++i) {
    PipelineConfig point = cfg;
    point.seed = SweepEngine::derive_seed(cfg.seed, i);
    WaveformPipeline wp(point);
    const PipelineResult direct = wp.run_distance(dist[i], 2);
    EXPECT_EQ(swept[i].errors.symbol_errors(), direct.errors.symbol_errors());
    EXPECT_EQ(swept[i].rss_dbm, direct.rss_dbm);
  }
}

TEST(SweepEngine, MeasuredRangeDeterministicAndBracketed) {
  // Waveform-measured range: coarse settings to keep the test fast —
  // the assertions are determinism across engine sizes and bracketing,
  // not metrological accuracy.
  PipelineConfig cfg = small_config();
  const double lo = 40.0;
  const double hi = 400.0;
  const double r1 = measured_range_m(cfg, SweepEngine(1), 2, 1e-3, lo, hi, 3);
  const double r4 = measured_range_m(cfg, SweepEngine(4), 2, 1e-3, lo, hi, 3);
  EXPECT_EQ(r1, r4);  // fixed probe grid + derived seeds
  EXPECT_GE(r1, lo);
  EXPECT_LE(r1, hi);
}

TEST(SweepEngine, ParallelRangeFinderMatchesSerial) {
  // Synthetic monotone BER curve crossing 1e-3 at 100 m.
  auto ber_at = [](double d) { return 1e-3 * std::pow(d / 100.0, 8.0); };
  const double serial = find_range_m(ber_at, 1e-3);
  const SweepEngine engine(4);
  const double parallel = find_range_m(ber_at, 1e-3, 1.0, 2000.0, 60, &engine);
  EXPECT_NEAR(serial, 100.0, 0.5);
  EXPECT_NEAR(parallel, 100.0, 0.5);
}

}  // namespace
}  // namespace saiyan::sim
