// Core decoders: peak-position symbol decoder, preamble detection,
// correlation decoder, threshold table.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn_channel.hpp"
#include "core/correlator_decoder.hpp"
#include "core/preamble_detector.hpp"
#include "core/receiver_chain.hpp"
#include "core/symbol_decoder.hpp"
#include "core/threshold_table.hpp"
#include "frontend/sampler.hpp"
#include "lora/modulator.hpp"

namespace saiyan::core {
namespace {

lora::PhyParams phy(int k = 2) {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = k;
  return p;
}

TEST(SymbolDecoder, DecodesSyntheticEdges) {
  const SymbolDecoder dec(phy(2));
  // 16 ticks per symbol; peak of value v at tick 16*(1-v/4).
  // v=1 -> edge around tick 12.
  dsp::BitVector bits(16, 0);
  bits[11] = bits[12] = 1;
  const auto est = dec.estimate_fraction(bits, 0.0, 16.0);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, 1.0, 0.35);
}

TEST(SymbolDecoder, TakesLastFallingEdge) {
  const SymbolDecoder dec(phy(2));
  // Spill-over run at the start (previous symbol's boundary peak) plus
  // the true edge later: the decoder must use the later one.
  dsp::BitVector bits(16, 0);
  bits[0] = 1;             // spill
  bits[7] = bits[8] = 1;   // true peak, v = 4*(1-9/16) = 1.75 -> 2
  const auto est = dec.estimate_fraction(bits, 0.0, 16.0);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, 2.0, 0.4);
}

TEST(SymbolDecoder, EmptyWindowIsErasure) {
  const SymbolDecoder dec(phy(2));
  dsp::BitVector bits(16, 0);
  EXPECT_FALSE(dec.estimate_fraction(bits, 0.0, 16.0).has_value());
  // decode_stream maps erasures to 0.
  const auto symbols = dec.decode_stream(bits, 0.0, 16.0, 1);
  EXPECT_EQ(symbols, std::vector<std::uint32_t>{0u});
}

TEST(SymbolDecoder, BiasShiftsRounding) {
  SymbolDecoder dec(phy(2));
  dsp::BitVector bits(16, 0);
  bits[9] = 1;  // est = 4*(1-10.5/16)  ~ 1.375
  dec.set_bias(0.5);
  const auto symbols = dec.decode_stream(bits, 0.0, 16.0, 1);
  EXPECT_EQ(symbols[0], 2u);  // 1.375 + 0.5 rounds to 2
  dec.set_bias(-0.5);
  EXPECT_EQ(dec.decode_stream(bits, 0.0, 16.0, 1)[0], 1u);
}

TEST(SymbolDecoder, WrapsModuloAlphabet) {
  SymbolDecoder dec(phy(2));
  dsp::BitVector bits(16, 0);
  bits[15] = 1;  // edge at the window end: est ~ 4*(1-1) = 0.1 -> 0
  const auto symbols = dec.decode_stream(bits, 0.0, 16.0, 1);
  EXPECT_EQ(symbols[0], 0u);
}

TEST(PreambleDetector, FindsHeaderInReferenceEnvelope) {
  const SaiyanConfig cfg = SaiyanConfig::make(phy(), Mode::kSuper);
  const ReceiverChain chain(cfg);
  const PreambleDetector det(chain);
  lora::Modulator mod(cfg.phy);
  const std::vector<std::uint32_t> tx = {1, 3, 0, 2};
  const dsp::Signal wave = mod.modulate(tx);
  const dsp::RealSignal env = chain.reference_envelope(wave);
  const auto timing = det.detect_envelope(env);
  ASSERT_TRUE(timing.has_value());
  const lora::PacketLayout lay = mod.layout(tx.size());
  EXPECT_NEAR(static_cast<double>(timing->payload_start),
              static_cast<double>(lay.payload_start), 64.0);
  EXPECT_GT(timing->score, 0.9);
}

TEST(PreambleDetector, NoDetectionOnNoiseEnvelope) {
  const SaiyanConfig cfg = SaiyanConfig::make(phy(), Mode::kSuper);
  const ReceiverChain chain(cfg);
  const PreambleDetector det(chain);
  dsp::Rng rng(3);
  dsp::RealSignal noise(60000);
  for (double& v : noise) v = std::abs(rng.gaussian());
  EXPECT_FALSE(det.detect_envelope(noise).has_value());
}

TEST(PreambleDetector, BitDomainDetection) {
  const SaiyanConfig cfg = SaiyanConfig::make(phy(), Mode::kVanilla);
  const ReceiverChain chain(cfg);
  const PreambleDetector det(chain);
  lora::Modulator mod(cfg.phy);
  const std::vector<std::uint32_t> tx = {2, 1};
  const dsp::Signal wave = mod.modulate(tx);
  const dsp::RealSignal env = chain.reference_envelope(wave);
  const auto th = auto_thresholds(env, cfg.threshold_gap_db);
  frontend::DoubleThresholdComparator comp(th.u_high, th.u_low);
  frontend::VoltageSampler sampler(cfg.phy, cfg.sampling_rate_multiplier);
  const auto sampled = sampler.sample(comp.quantize(env), cfg.phy.sample_rate_hz);
  const auto timing = det.detect_bits(sampled.bits, sampled.sample_rate_hz);
  ASSERT_TRUE(timing.has_value());
  lora::PacketLayout lay = mod.layout(tx.size());
  const double expect_ticks = static_cast<double>(lay.payload_start) /
                              cfg.phy.sample_rate_hz * sampled.sample_rate_hz;
  EXPECT_NEAR(static_cast<double>(timing->payload_start), expect_ticks, 2.5);
}

TEST(PreambleDetector, BitDomainRejectsConstantStreams) {
  const SaiyanConfig cfg = SaiyanConfig::make(phy(), Mode::kVanilla);
  const ReceiverChain chain(cfg);
  const PreambleDetector det(chain);
  const dsp::BitVector zeros(2048, 0);
  const dsp::BitVector ones(2048, 1);
  EXPECT_FALSE(det.detect_bits(zeros, 50e3).has_value());
  EXPECT_FALSE(det.detect_bits(ones, 50e3).has_value());
}

class CorrelatorAllSymbols : public ::testing::TestWithParam<int> {};

TEST_P(CorrelatorAllSymbols, DecodesEveryValueCleanly) {
  const int k = GetParam();
  const SaiyanConfig cfg = SaiyanConfig::make(phy(k), Mode::kSuper);
  const ReceiverChain chain(cfg);
  const CorrelatorDecoder dec(chain);
  lora::Modulator mod(cfg.phy);
  const std::uint32_t m = cfg.phy.symbol_alphabet();
  std::vector<std::uint32_t> tx;
  for (std::uint32_t v = 0; v < m; ++v) tx.push_back(v);
  const dsp::Signal wave = mod.modulate_payload(tx);
  const dsp::RealSignal env = chain.reference_envelope(wave);
  const auto out = dec.decode_stream(env, 0, tx.size());
  ASSERT_EQ(out.size(), tx.size());
  for (std::size_t i = 0; i < tx.size(); ++i) {
    EXPECT_EQ(out[i], tx[i]) << "value " << tx[i];
  }
}

INSTANTIATE_TEST_SUITE_P(K1to4, CorrelatorAllSymbols, ::testing::Values(1, 2, 3, 4));

TEST(ThresholdTable, CalibratesAcrossDistances) {
  const SaiyanConfig cfg = SaiyanConfig::make(phy(), Mode::kVanilla);
  const ReceiverChain chain(cfg);
  const channel::LinkBudget link;
  const ThresholdTable table(chain, link, {5.0, 20.0, 60.0});
  ASSERT_EQ(table.entries().size(), 3u);
  // Amax decreases with distance.
  EXPECT_GT(table.entries()[0].a_max, table.entries()[1].a_max);
  EXPECT_GT(table.entries()[1].a_max, table.entries()[2].a_max);
  // Lookup picks the geometrically nearest entry.
  EXPECT_EQ(table.lookup(6.0).u_high, table.entries()[0].thresholds.u_high);
  EXPECT_EQ(table.lookup(100.0).u_high, table.entries()[2].thresholds.u_high);
}

TEST(ThresholdTable, RejectsEmptyOrBadDistances) {
  const SaiyanConfig cfg = SaiyanConfig::make(phy(), Mode::kVanilla);
  const ReceiverChain chain(cfg);
  const channel::LinkBudget link;
  EXPECT_THROW(ThresholdTable(chain, link, {}), std::invalid_argument);
  EXPECT_THROW(ThresholdTable(chain, link, {-5.0}), std::invalid_argument);
}

TEST(AutoThresholds, OrderedAndWithinEnvelope) {
  dsp::Rng rng(9);
  dsp::RealSignal env(5000);
  for (double& v : env) v = 0.1 + 0.02 * rng.gaussian();
  for (int i = 0; i < 50; ++i) env[100 * i] = 1.0;  // sparse peaks
  const auto t = auto_thresholds(env, 6.0);
  EXPECT_LT(t.u_low, t.u_high);
  EXPECT_GT(t.u_low, 0.0);
  EXPECT_LT(t.u_high, 1.0);
}

}  // namespace
}  // namespace saiyan::core
