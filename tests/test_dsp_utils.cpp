// Unit tests for dsp/utils: dB conversions, statistics, interpolation.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/utils.hpp"

namespace saiyan::dsp {
namespace {

TEST(DbConversions, RoundTripPower) {
  for (double db : {-100.0, -3.0, 0.0, 3.0, 10.0, 60.0}) {
    EXPECT_NEAR(lin_to_db(db_to_lin(db)), db, 1e-9);
  }
}

TEST(DbConversions, RoundTripAmplitude) {
  for (double db : {-40.0, -6.0, 0.0, 6.0, 20.0}) {
    EXPECT_NEAR(amp_to_db(db_to_amp(db)), db, 1e-9);
  }
}

TEST(DbConversions, KnownAnchors) {
  EXPECT_NEAR(lin_to_db(2.0), 3.0103, 1e-3);
  EXPECT_NEAR(db_to_amp(6.0), 1.9953, 1e-3);
  EXPECT_NEAR(watts_to_dbm(1e-3), 0.0, 1e-12);
  EXPECT_NEAR(watts_to_dbm(1.0), 30.0, 1e-12);
  EXPECT_NEAR(dbm_to_watts(-30.0), 1e-6, 1e-12);
}

TEST(DbConversions, RejectsNonPositive) {
  EXPECT_THROW(lin_to_db(0.0), std::domain_error);
  EXPECT_THROW(lin_to_db(-1.0), std::domain_error);
  EXPECT_THROW(watts_to_dbm(0.0), std::domain_error);
  EXPECT_THROW(amp_to_db(0.0), std::domain_error);
}

TEST(Stats, MeanVarianceRms) {
  const RealSignal x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(mean(x), 2.5, 1e-12);
  EXPECT_NEAR(variance(x), 1.25, 1e-12);
  EXPECT_NEAR(rms(x), std::sqrt(7.5), 1e-12);
}

TEST(Stats, EmptyInputsAreSafe) {
  EXPECT_EQ(mean(RealSignal{}), 0.0);
  EXPECT_EQ(variance(RealSignal{}), 0.0);
  EXPECT_EQ(signal_power(std::span<const double>{}), 0.0);
  EXPECT_EQ(argmax(std::span<const double>{}), 0u);
}

TEST(Stats, SignalPowerComplex) {
  const Signal x = {{1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}};
  EXPECT_NEAR(signal_power(x), 1.0, 1e-12);
  EXPECT_NEAR(signal_power_dbm(x), 30.0, 1e-9);
}

TEST(Stats, SetPowerDbm) {
  Signal x(256);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = Complex(std::cos(0.1 * i), std::sin(0.1 * i));
  }
  set_power_dbm(x, -50.0);
  EXPECT_NEAR(signal_power_dbm(x), -50.0, 1e-9);
}

TEST(Stats, SetPowerDbmZeroSignalNoop) {
  Signal x(16, Complex{});
  set_power_dbm(x, -10.0);
  for (const Complex& v : x) EXPECT_EQ(v, Complex{});
}

TEST(Interp, LinearInterpolationAndClamping) {
  const RealSignal xs = {0.0, 1.0, 2.0};
  const RealSignal ys = {0.0, 10.0, 40.0};
  EXPECT_NEAR(interp1(xs, ys, 0.5), 5.0, 1e-12);
  EXPECT_NEAR(interp1(xs, ys, 1.5), 25.0, 1e-12);
  EXPECT_NEAR(interp1(xs, ys, -1.0), 0.0, 1e-12);  // clamp low
  EXPECT_NEAR(interp1(xs, ys, 3.0), 40.0, 1e-12);  // clamp high
}

TEST(Interp, RejectsBadTables) {
  const RealSignal xs = {0.0, 1.0};
  const RealSignal ys = {0.0};
  EXPECT_THROW(interp1(xs, ys, 0.5), std::invalid_argument);
  EXPECT_THROW(interp1(RealSignal{}, RealSignal{}, 0.5), std::invalid_argument);
}

TEST(Peak, PeakAndArgmax) {
  const RealSignal x = {1.0, 5.0, 3.0, 5.0, 2.0};
  EXPECT_EQ(peak(x), 5.0);
  EXPECT_EQ(argmax(x), 1u);  // first maximum
}

}  // namespace
}  // namespace saiyan::dsp
