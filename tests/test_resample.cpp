// Decimation and sample-hold pickup.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/nco.hpp"
#include "dsp/resample.hpp"
#include "dsp/spectrum.hpp"

namespace saiyan::dsp {
namespace {

TEST(Decimate, FactorOneIsIdentity) {
  const RealSignal x = {1.0, 2.0, 3.0};
  EXPECT_EQ(decimate(std::span<const double>(x), 1), x);
}

TEST(Decimate, OutputLength) {
  const RealSignal x(1000, 1.0);
  const RealSignal y = decimate(std::span<const double>(x), 4);
  EXPECT_EQ(y.size(), 250u);
}

TEST(Decimate, ZeroFactorThrows) {
  const RealSignal x(10, 1.0);
  EXPECT_THROW(decimate(std::span<const double>(x), 0), std::invalid_argument);
}

TEST(Decimate, PreservesInBandTone) {
  const double fs = 1e6;
  Nco nco(10e3, fs);
  const RealSignal x = nco.cosine(1 << 14);
  const RealSignal y = decimate(std::span<const double>(x), 8);
  // Tone is still at 10 kHz when interpreted at fs/8.
  EXPECT_NEAR(dominant_frequency(std::span<const double>(y), fs / 8.0, 1e3), 10e3,
              500.0);
}

TEST(Decimate, ComplexPathPreservesTone) {
  const double fs = 4e6;
  Nco nco(-50e3, fs);
  const Signal x = nco.tone(1 << 14);
  const Signal y = decimate(std::span<const Complex>(x), 8);
  const Psd psd = welch_psd(std::span<const Complex>(y), fs / 8.0, 512);
  double best_f = 0.0;
  double best_p = -1e300;
  for (std::size_t i = 0; i < psd.frequency_hz.size(); ++i) {
    if (psd.power_dbm[i] > best_p) {
      best_p = psd.power_dbm[i];
      best_f = psd.frequency_hz[i];
    }
  }
  EXPECT_NEAR(best_f, -50e3, 2e3);
}

TEST(SampleHold, PicksNearestPastSample) {
  const RealSignal x = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  // 2:1 hold.
  const RealSignal y = sample_hold(std::span<const double>(x), 8.0, 4.0);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_EQ(y[0], 0.0);
  EXPECT_EQ(y[1], 2.0);
  EXPECT_EQ(y[2], 4.0);
  EXPECT_EQ(y[3], 6.0);
}

TEST(SampleHold, FractionalRatio) {
  RealSignal x(100);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  const RealSignal y = sample_hold(std::span<const double>(x), 10.0, 3.2);
  // ratio = 3.125 -> y[k] = x[floor(3.125 k)]
  EXPECT_EQ(y[1], 3.0);
  EXPECT_EQ(y[2], 6.0);
  EXPECT_EQ(y[10], 31.0);
}

TEST(SampleHold, EmptyAndBadArgs) {
  EXPECT_TRUE(sample_hold(std::span<const double>{}, 10.0, 5.0).empty());
  const RealSignal x(10, 1.0);
  EXPECT_THROW(sample_hold(std::span<const double>(x), 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(sample_hold(std::span<const double>(x), 1.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace saiyan::dsp
