// Window functions and noise generators.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/noise.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/utils.hpp"
#include "dsp/window.hpp"

namespace saiyan::dsp {
namespace {

class WindowShape : public ::testing::TestWithParam<WindowType> {};

TEST_P(WindowShape, SymmetricAndBounded) {
  const RealSignal w = make_window(GetParam(), 65);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -1e-12);
    EXPECT_LE(w[i], 1.0 + 1e-12);
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12) << "asymmetric at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWindows, WindowShape,
                         ::testing::Values(WindowType::kRectangular,
                                           WindowType::kHann, WindowType::kHamming,
                                           WindowType::kBlackman,
                                           WindowType::kKaiser));

TEST(Window, HannEndpointsAndCenter) {
  const RealSignal w = make_window(WindowType::kHann, 33);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 0.0, 1e-12);
  EXPECT_NEAR(w[16], 1.0, 1e-12);
}

TEST(Window, RejectsZeroLength) {
  EXPECT_THROW(make_window(WindowType::kHann, 0), std::invalid_argument);
}

TEST(Window, SingleSampleIsUnity) {
  const RealSignal w = make_window(WindowType::kBlackman, 1);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], 1.0);
}

TEST(Window, BesselI0KnownValues) {
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-12);
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658, 1e-6);
  EXPECT_NEAR(bessel_i0(5.0), 27.239871, 1e-4);
}

TEST(Noise, ComplexAwgnPower) {
  Rng rng(1);
  const double p = 2.5e-9;
  const Signal n = complex_awgn(200000, p, rng);
  EXPECT_NEAR(signal_power(n) / p, 1.0, 0.03);
}

TEST(Noise, AddAwgnIncreasesPowerAdditively) {
  Rng rng(2);
  Signal x(100000, Complex(1.0, 0.0));
  add_awgn(x, 0.5, rng);
  EXPECT_NEAR(signal_power(x), 1.5, 0.05);
}

TEST(Noise, RealWhitePower) {
  Rng rng(3);
  const RealSignal n = real_white_noise(200000, 4.0, rng);
  EXPECT_NEAR(signal_power(std::span<const double>(n)), 4.0, 0.1);
}

TEST(Noise, FlickerPowerNormalized) {
  Rng rng(4);
  const RealSignal n = flicker_noise(200000, 1.0, rng);
  EXPECT_NEAR(signal_power(std::span<const double>(n)), 1.0, 0.05);
}

TEST(Noise, FlickerIsLowFrequencyDominated) {
  // The 1/f generator must put far more power below fs/100 than in a
  // same-width band around fs/4 — this is what lets the CFS circuit
  // escape it (paper §3.1).
  Rng rng(5);
  const double fs = 4e6;
  const RealSignal n = flicker_noise(1 << 18, 1.0, rng);
  const Psd psd = welch_psd(std::span<const double>(n), fs, 4096);
  double low = 0.0;
  double mid = 0.0;
  for (std::size_t i = 0; i < psd.frequency_hz.size(); ++i) {
    const double f = psd.frequency_hz[i];
    const double p = dbm_to_watts(psd.power_dbm[i]);
    if (f > 0 && f < fs / 100.0) low += p;
    if (f > fs / 4.0 && f < fs / 4.0 + fs / 100.0) mid += p;
  }
  EXPECT_GT(low, 50.0 * mid);
}

TEST(Noise, ThermalFloorAnchors) {
  // kT = -174 dBm/Hz: 500 kHz + 6 dB NF = -111 dBm.
  EXPECT_NEAR(thermal_noise_floor_dbm(500e3, 6.0), -111.0, 0.05);
  EXPECT_NEAR(thermal_noise_floor_dbm(125e3, 0.0), -123.0, 0.05);
  EXPECT_THROW(thermal_noise_floor_dbm(0.0, 3.0), std::invalid_argument);
}

TEST(Noise, NegativePowerRejected) {
  Rng rng(6);
  EXPECT_THROW(complex_awgn(10, -1.0, rng), std::invalid_argument);
  EXPECT_THROW(real_white_noise(10, -1.0, rng), std::invalid_argument);
  EXPECT_THROW(flicker_noise(10, -1.0, rng), std::invalid_argument);
}

TEST(Rng, DeterministicWithSameSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.gaussian(), b.gaussian());
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
  }
}

}  // namespace
}  // namespace saiyan::dsp
