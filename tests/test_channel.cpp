// Channel substrate: path loss models, link budget, AWGN, temperature,
// jammer, fading.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn_channel.hpp"
#include "channel/fading.hpp"
#include "channel/jammer.hpp"
#include "channel/link_budget.hpp"
#include "channel/temperature.hpp"
#include "dsp/utils.hpp"

namespace saiyan::channel {
namespace {

TEST(PathLoss, FreeSpaceAnchors) {
  // FSPL at 1 m, 433.5 MHz: 20 log10(4*pi/0.6916) ~ 25.2 dB.
  EXPECT_NEAR(free_space_path_loss_db(1.0, 433.5e6), 25.2, 0.1);
  // +20 dB per decade of distance.
  EXPECT_NEAR(free_space_path_loss_db(10.0, 433.5e6) -
                  free_space_path_loss_db(1.0, 433.5e6),
              20.0, 1e-9);
}

TEST(PathLoss, LogDistanceExponent) {
  const double pl10 = log_distance_path_loss_db(10.0, 433.5e6, 4.0);
  const double pl100 = log_distance_path_loss_db(100.0, 433.5e6, 4.0);
  EXPECT_NEAR(pl100 - pl10, 40.0, 1e-9);
}

TEST(PathLoss, TwoRayBreakpointContinuity) {
  const double f = 433.5e6;
  const double bp = 4.0 * 1.5 * 0.5 / (dsp::kSpeedOfLight / f);
  const double just_below = two_ray_path_loss_db(bp * 0.999, f, 1.5, 0.5);
  const double just_above = two_ray_path_loss_db(bp * 1.001, f, 1.5, 0.5);
  EXPECT_NEAR(just_below, just_above, 0.2);
  // Far field slope is 40 dB/decade.
  EXPECT_NEAR(two_ray_path_loss_db(bp * 100.0, f, 1.5, 0.5) -
                  two_ray_path_loss_db(bp * 10.0, f, 1.5, 0.5),
              40.0, 0.01);
}

TEST(PathLoss, RejectsBadInputs) {
  EXPECT_THROW(free_space_path_loss_db(0.0, 433e6), std::invalid_argument);
  EXPECT_THROW(free_space_path_loss_db(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(log_distance_path_loss_db(1.0, 433e6, 0.5), std::invalid_argument);
  EXPECT_THROW(two_ray_path_loss_db(1.0, 433e6, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(wall_loss_db(-1), std::invalid_argument);
}

TEST(LinkBudget, PaperSetupRssAnchors) {
  // 20 dBm + 3 dBi + 3 dBi, n = 4 log-distance: ~ -86 dBm at ~150 m —
  // consistent with Fig. 22's RSS curve near Saiyan's maximum range.
  const LinkBudget link;
  EXPECT_NEAR(link.rss_dbm(148.6), -85.8, 1.0);
  EXPECT_GT(link.rss_dbm(10.0), link.rss_dbm(100.0));
}

TEST(LinkBudget, DistanceForRssInvertsRss) {
  const LinkBudget link;
  for (double d : {5.0, 42.0, 148.0, 500.0}) {
    const double rss = link.rss_dbm(d);
    EXPECT_NEAR(link.distance_for_rss(rss), d, d * 0.01);
  }
}

TEST(LinkBudget, WallsAndClutterReduceRss) {
  const LinkBudget link;
  Environment one_wall;
  one_wall.concrete_walls = 1;
  Environment two_walls;
  two_walls.concrete_walls = 2;
  Environment nlos = one_wall;
  nlos.indoor_clutter = true;
  const double d = 30.0;
  EXPECT_NEAR(link.rss_dbm(d) - link.rss_dbm(d, one_wall), kConcreteWallLossDb,
              1e-9);
  EXPECT_NEAR(link.rss_dbm(d, one_wall) - link.rss_dbm(d, two_walls),
              kConcreteWallLossDb, 1e-9);
  EXPECT_NEAR(link.rss_dbm(d, one_wall) - link.rss_dbm(d, nlos),
              kIndoorClutterLossDb, 1e-9);
}

TEST(LinkBudget, BackscatterTwoHopLoss) {
  const LinkBudget link;
  // Two-hop RSS = Ptx + gains - PL(d1) - PL(d2) - conversion loss.
  const double rss = link.backscatter_rss_dbm(5.0, 100.0, 10.0);
  const double expect = 20.0 + 6.0 - link.path_loss_db(5.0) -
                        link.path_loss_db(100.0) - 10.0;
  EXPECT_NEAR(rss, expect, 1e-9);
}

TEST(AwgnChannel, SetsRssAndNoiseFloor) {
  AwgnChannel chan(4e6, 6.0);
  EXPECT_NEAR(chan.noise_floor_dbm(), -174.0 + 10.0 * std::log10(4e6) + 6.0, 0.01);
  dsp::Rng rng(1);
  dsp::Signal x(20000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = dsp::Complex(std::cos(0.3 * i), std::sin(0.3 * i));
  }
  // Strong signal: output power should be dominated by the target RSS.
  const dsp::Signal y = chan.apply(x, -40.0, rng);
  EXPECT_NEAR(dsp::signal_power_dbm(y), -40.0, 0.3);
}

TEST(AwgnChannel, ApplySnrHitsRequestedSnr) {
  AwgnChannel chan(1e6, 0.0);
  dsp::Rng rng(2);
  dsp::Signal x(40000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = dsp::Complex(std::cos(0.1 * i), std::sin(0.1 * i));
  }
  const dsp::Signal y = chan.apply_snr(x, 10.0, rng);
  const double noise_w = dsp::dbm_to_watts(chan.noise_floor_dbm());
  const double total = dsp::signal_power(y);
  EXPECT_NEAR((total - noise_w) / noise_w, 10.0, 3.0);  // linear SNR ~ 10
}

TEST(Temperature, SawShiftSignAndMagnitude) {
  // Negative TCF: frequency rises as temperature drops.
  EXPECT_GT(saw_frequency_shift_hz(434e6, 0.0), 0.0);
  EXPECT_LT(saw_frequency_shift_hz(434e6, 50.0), 0.0);
  EXPECT_NEAR(saw_frequency_shift_hz(434e6, kSawReferenceTempC), 0.0, 1e-9);
  EXPECT_THROW(saw_frequency_shift_hz(0.0, 20.0), std::invalid_argument);
}

TEST(Temperature, DiurnalProfileMatchesPaperExtremes) {
  // Fig. 24: minimum -8.6 C at 8 a.m., maximum 1.6 C at 2 p.m.
  EXPECT_NEAR(diurnal_temperature_c(8.0), -8.6, 0.3);
  EXPECT_NEAR(diurnal_temperature_c(14.0), 1.6, 0.01);
  EXPECT_THROW(diurnal_temperature_c(24.0), std::invalid_argument);
  EXPECT_THROW(diurnal_temperature_c(-0.1), std::invalid_argument);
}

class JammerTypes : public ::testing::TestWithParam<JammerType> {};

TEST_P(JammerTypes, PowerIsCalibrated) {
  JammerConfig cfg;
  cfg.type = GetParam();
  cfg.power_dbm = -42.0;
  dsp::Rng rng(3);
  const dsp::Signal j = make_jammer(cfg, 1 << 14, rng);
  EXPECT_NEAR(dsp::signal_power_dbm(j), -42.0, 0.5);
}

INSTANTIATE_TEST_SUITE_P(All, JammerTypes,
                         ::testing::Values(JammerType::kTone,
                                           JammerType::kWideband,
                                           JammerType::kChirp));

TEST(Jammer, InactiveProducesZeros) {
  JammerConfig cfg;
  cfg.active = false;
  dsp::Rng rng(4);
  const dsp::Signal j = make_jammer(cfg, 100, rng);
  for (const dsp::Complex& v : j) EXPECT_EQ(v, dsp::Complex{});
}

TEST(Jammer, AddJammerRaisesPower) {
  JammerConfig cfg;
  cfg.power_dbm = -50.0;
  dsp::Rng rng(5);
  dsp::Signal x(1 << 12, dsp::Complex{});
  add_jammer(x, cfg, rng);
  EXPECT_NEAR(dsp::signal_power_dbm(x), -50.0, 0.8);
}

TEST(Fading, NoneIsZeroDb) {
  dsp::Rng rng(6);
  EXPECT_EQ(fading_gain_db(FadingConfig{}, rng), 0.0);
}

TEST(Fading, RayleighUnitMeanPower) {
  FadingConfig cfg;
  cfg.type = FadingType::kRayleigh;
  dsp::Rng rng(7);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += dsp::db_to_lin(fading_gain_db(cfg, rng));
  EXPECT_NEAR(acc / n, 1.0, 0.05);
}

TEST(Fading, RicianLessSpreadThanRayleigh) {
  FadingConfig ray{FadingType::kRayleigh, 0.0};
  FadingConfig ric{FadingType::kRician, 10.0};
  dsp::Rng rng(8);
  double ray_min = 0.0;
  double ric_min = 0.0;
  for (int i = 0; i < 5000; ++i) {
    ray_min = std::min(ray_min, fading_gain_db(ray, rng));
    ric_min = std::min(ric_min, fading_gain_db(ric, rng));
  }
  EXPECT_LT(ray_min, ric_min);  // Rayleigh has much deeper fades
}

}  // namespace
}  // namespace saiyan::channel
