// Cross-validation of the semi-analytic BerModel against the full
// waveform pipeline (the methodology split documented in DESIGN.md):
// the model's sensitivity ordering and rough thresholds must agree
// with what the physics-level simulation measures.
#include <gtest/gtest.h>

#include "sim/ber_model.hpp"
#include "sim/pipeline.hpp"

namespace saiyan::sim {
namespace {

lora::PhyParams phy(int k = 2) {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = k;
  return p;
}

PipelineResult run(core::Mode mode, double rss, std::size_t packets = 3,
                   int k = 2) {
  PipelineConfig cfg;
  cfg.saiyan = core::SaiyanConfig::make(phy(k), mode);
  cfg.payload_symbols = 32;
  cfg.seed = 7;
  WaveformPipeline wp(cfg);
  return wp.run_rss(rss, packets);
}

TEST(Calibration, WaveformCleanAboveModelSensitivity) {
  // 6 dB above the model's required RSS every mode must decode
  // essentially error-free in the waveform simulation.
  const BerModel model;
  for (core::Mode mode : {core::Mode::kVanilla, core::Mode::kFrequencyShifting,
                          core::Mode::kSuper}) {
    const double sens = model.required_rss_dbm(mode, phy());
    const PipelineResult r = run(mode, sens + 6.0);
    EXPECT_LE(r.errors.ser(), 0.02) << core::mode_name(mode);
  }
}

TEST(Calibration, WaveformFailsWellBelowModelSensitivity) {
  // 10 dB below the required RSS the waveform pipeline must be in
  // heavy-error territory for every mode.
  const BerModel model;
  for (core::Mode mode : {core::Mode::kVanilla, core::Mode::kFrequencyShifting,
                          core::Mode::kSuper}) {
    const double sens = model.required_rss_dbm(mode, phy());
    const PipelineResult r = run(mode, sens - 10.0);
    EXPECT_GE(r.errors.ser(), 0.08) << core::mode_name(mode);
  }
}

TEST(Calibration, WaveformModeOrderingMatchesModel) {
  // At a fixed RSS between the vanilla and super thresholds, the
  // waveform error rates must be ordered vanilla >= cfs >= super.
  const double rss = -72.0;
  const double v = run(core::Mode::kVanilla, rss).errors.ser();
  const double c = run(core::Mode::kFrequencyShifting, rss).errors.ser();
  const double s = run(core::Mode::kSuper, rss).errors.ser();
  EXPECT_GE(v, c);
  EXPECT_GE(c, s);
  EXPECT_GT(v, 0.05);
  EXPECT_LT(s, 0.02);
}

TEST(Calibration, KPenaltyVisibleInWaveform) {
  // At a marginal RSS, K=5 must show more symbol errors than K=1
  // (Fig. 16's coding-rate penalty).
  const double rss = -78.0;
  const double k1 = run(core::Mode::kSuper, rss, 3, 1).errors.ser();
  const double k5 = run(core::Mode::kSuper, rss, 3, 5).errors.ser();
  EXPECT_GE(k5, k1);
}

TEST(Calibration, PipelineDistanceEqualsRssPath) {
  // run_distance(d) must be equivalent to run_rss(link.rss(d)).
  PipelineConfig cfg;
  cfg.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  cfg.seed = 9;
  WaveformPipeline a(cfg);
  WaveformPipeline b(cfg);
  const double d = 60.0;
  const PipelineResult ra = a.run_distance(d, 2);
  const PipelineResult rb = b.run_rss(cfg.link.rss_dbm(d), 2);
  EXPECT_EQ(ra.errors.symbol_errors(), rb.errors.symbol_errors());
  EXPECT_NEAR(ra.rss_dbm, rb.rss_dbm, 1e-12);
}

TEST(Calibration, Table1PracticeAboveTheory) {
  // The minimum working sampling multiplier at high SNR must exceed
  // 1.0x Nyquist but stay at or below the paper's conservative 1.6x
  // (i.e. 3.2·BW/2^(SF-K)).
  PipelineConfig cfg;
  cfg.saiyan = core::SaiyanConfig::make(phy(2), core::Mode::kSuper);
  cfg.payload_symbols = 32;
  cfg.seed = 11;
  // Use the comparator path for this test (the sampler only matters
  // there).
  cfg.saiyan.mode = core::Mode::kFrequencyShifting;
  WaveformPipeline wp(cfg);
  const double mult = wp.min_sampling_multiplier(0.999, 128);
  EXPECT_GT(mult, 0.99);
  EXPECT_LE(mult, 1.7);
}

}  // namespace
}  // namespace saiyan::sim
