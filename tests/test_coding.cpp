// Whitening / Hamming FEC / interleaver / CRC / gray code / frame
// codec: round trips and error-injection behaviour.
#include <gtest/gtest.h>

#include <bit>

#include "lora/crc.hpp"
#include "lora/frame.hpp"
#include "lora/hamming.hpp"
#include "lora/interleaver.hpp"
#include "lora/whitening.hpp"

namespace saiyan::lora {
namespace {

std::vector<std::uint8_t> test_bytes() {
  return {0x00, 0xFF, 0xA5, 0x5A, 0x12, 0x34, 0x56, 0x78, 0xDE, 0xAD};
}

TEST(Whitening, IsInvolution) {
  const auto data = test_bytes();
  EXPECT_EQ(dewhiten(whiten(data)), data);
}

TEST(Whitening, ActuallyScrambles) {
  const std::vector<std::uint8_t> zeros(32, 0x00);
  const auto w = whiten(zeros);
  int nonzero = 0;
  for (std::uint8_t b : w) nonzero += b != 0;
  EXPECT_GT(nonzero, 24);  // LFSR output is dense
}

TEST(Whitening, EmptyInput) {
  EXPECT_TRUE(whiten({}).empty());
}

class HammingRoundTrip : public ::testing::TestWithParam<FecRate> {};

TEST_P(HammingRoundTrip, AllNibblesRoundTrip) {
  const HammingCode code(GetParam());
  for (std::uint8_t n = 0; n < 16; ++n) {
    const HammingDecodeResult r = code.decode(code.encode(n));
    EXPECT_EQ(r.nibble, n);
    EXPECT_FALSE(r.error);
    EXPECT_FALSE(r.corrected);
  }
}

TEST_P(HammingRoundTrip, ByteStreamRoundTrip) {
  const HammingCode code(GetParam());
  const auto data = test_bytes();
  std::size_t errs = 99;
  EXPECT_EQ(code.decode_bits(code.encode_bits(data), &errs), data);
  EXPECT_EQ(errs, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllRates, HammingRoundTrip,
                         ::testing::Values(FecRate::kNone, FecRate::k4_5,
                                           FecRate::k4_6, FecRate::k4_7,
                                           FecRate::k4_8));

TEST(Hamming, H47CorrectsAnySingleBitError) {
  const HammingCode code(FecRate::k4_7);
  for (std::uint8_t n = 0; n < 16; ++n) {
    const std::uint8_t cw = code.encode(n);
    for (int bit = 0; bit < 7; ++bit) {
      const std::uint8_t corrupted = cw ^ static_cast<std::uint8_t>(1u << bit);
      const HammingDecodeResult r = code.decode(corrupted);
      EXPECT_EQ(r.nibble, n) << "nibble " << int(n) << " bit " << bit;
      EXPECT_TRUE(r.corrected);
      EXPECT_FALSE(r.error);
    }
  }
}

TEST(Hamming, H48CorrectsSingleError) {
  const HammingCode code(FecRate::k4_8);
  for (std::uint8_t n = 0; n < 16; ++n) {
    const std::uint8_t cw = code.encode(n);
    for (int bit = 0; bit < 8; ++bit) {
      const HammingDecodeResult r =
          code.decode(cw ^ static_cast<std::uint8_t>(1u << bit));
      EXPECT_EQ(r.nibble, n);
    }
  }
}

TEST(Hamming, H45DetectsSingleError) {
  const HammingCode code(FecRate::k4_5);
  const std::uint8_t cw = code.encode(0xA);
  const HammingDecodeResult r = code.decode(cw ^ 0x01);
  EXPECT_TRUE(r.error);
}

TEST(Hamming, RejectsNonNibble) {
  const HammingCode code(FecRate::k4_7);
  EXPECT_THROW(code.encode(0x10), std::invalid_argument);
}

TEST(Interleaver, RoundTripWholeBlocks) {
  std::vector<std::uint8_t> bits(7 * 8 * 3);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = (i * 13 + 1) % 2;
  EXPECT_EQ(deinterleave(interleave(bits, 7, 8), 7, 8), bits);
}

TEST(Interleaver, PartialTailPassesThrough) {
  std::vector<std::uint8_t> bits(20, 1);  // less than one 7x8 block
  EXPECT_EQ(interleave(bits, 7, 8), bits);
}

TEST(Interleaver, SpreadsBurstErrors) {
  // A burst of consecutive corrupted positions after interleaving must
  // not hit the same codeword (row) more than twice.
  const std::size_t rows = 8;
  const std::size_t cols = 8;
  std::vector<std::uint8_t> bits(rows * cols, 0);
  auto inter = interleave(bits, rows, cols);
  // Corrupt a burst of `rows` consecutive interleaved positions.
  std::vector<int> hits_per_row(rows, 0);
  for (std::size_t pos = 8; pos < 8 + rows; ++pos) {
    // Where does this position land after deinterleaving?
    std::vector<std::uint8_t> probe(rows * cols, 0);
    probe[pos] = 1;
    const auto de = deinterleave(probe, rows, cols);
    for (std::size_t i = 0; i < de.size(); ++i) {
      if (de[i]) hits_per_row[i / cols]++;
    }
  }
  for (std::size_t r = 0; r < rows; ++r) EXPECT_LE(hits_per_row[r], 2);
}

TEST(Interleaver, RejectsZeroGeometry) {
  std::vector<std::uint8_t> bits(8, 0);
  EXPECT_THROW(interleave(bits, 0, 4), std::invalid_argument);
  EXPECT_THROW(deinterleave(bits, 4, 0), std::invalid_argument);
}

TEST(Crc, KnownVector) {
  // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
  const std::vector<std::uint8_t> digits = {'1', '2', '3', '4', '5',
                                            '6', '7', '8', '9'};
  EXPECT_EQ(crc16(digits), 0x29B1);
}

TEST(Crc, AppendAndStrip) {
  const auto data = test_bytes();
  const auto framed = append_crc(data);
  EXPECT_EQ(framed.size(), data.size() + 2);
  std::vector<std::uint8_t> payload;
  EXPECT_TRUE(check_and_strip_crc(framed, payload));
  EXPECT_EQ(payload, data);
}

TEST(Crc, DetectsCorruption) {
  auto framed = append_crc(test_bytes());
  framed[3] ^= 0x40;
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(check_and_strip_crc(framed, payload));
  EXPECT_TRUE(payload.empty());
}

TEST(Crc, ShortInputFails) {
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(check_and_strip_crc(std::vector<std::uint8_t>{0x12}, payload));
}

TEST(Gray, RoundTripAndAdjacency) {
  for (std::uint32_t v = 0; v < 64; ++v) {
    EXPECT_EQ(gray_decode(gray_encode(v)), v);
  }
  // Adjacent values differ in exactly one bit after gray coding.
  for (std::uint32_t v = 0; v + 1 < 32; ++v) {
    const std::uint32_t diff = gray_encode(v) ^ gray_encode(v + 1);
    EXPECT_EQ(std::popcount(diff), 1);
  }
}

class FrameCodecRoundTrip : public ::testing::TestWithParam<std::tuple<int, FecRate>> {};

TEST_P(FrameCodecRoundTrip, EncodeDecode) {
  const auto [k, fec] = GetParam();
  PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = k;
  p.fec = fec;
  const FrameCodec codec(p);
  const auto payload = test_bytes();
  const auto symbols = codec.encode(payload);
  EXPECT_EQ(symbols.size(), codec.symbols_for_payload(payload.size()));
  for (std::uint32_t s : symbols) EXPECT_LT(s, p.symbol_alphabet());
  FrameDecodeStats stats;
  const auto decoded = codec.decode(symbols, &stats);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
  EXPECT_TRUE(stats.crc_ok);
  EXPECT_EQ(stats.codeword_errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    KFecGrid, FrameCodecRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(FecRate::kNone, FecRate::k4_5,
                                         FecRate::k4_7, FecRate::k4_8)));

TEST(FrameCodec, CorrectsSymbolErrorWithH48) {
  PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 1;  // one bit per symbol: a symbol error is a bit flip
  p.fec = FecRate::k4_8;
  const FrameCodec codec(p);
  const auto payload = test_bytes();
  auto symbols = codec.encode(payload);
  symbols[5] ^= 1u;  // single symbol error
  FrameDecodeStats stats;
  const auto decoded = codec.decode(symbols, &stats);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
  EXPECT_GE(stats.codeword_errors, 1u);
}

TEST(FrameCodec, CrcCatchesUncorrectableDamage) {
  PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 5;
  p.fec = FecRate::kNone;  // no protection
  const FrameCodec codec(p);
  auto symbols = codec.encode(test_bytes());
  symbols[0] ^= 0x1F;
  symbols[1] ^= 0x1F;
  EXPECT_FALSE(codec.decode(symbols).has_value());
}

}  // namespace
}  // namespace saiyan::lora
