// Front-end blocks: LNA, envelope detector (Eq. 4), comparators
// (Eq. 3 / Fig. 7), voltage sampler, clocks and the CFS circuit's
// SNR gain (Fig. 10).
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/nco.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/utils.hpp"
#include "frontend/cfs.hpp"
#include "frontend/clock.hpp"
#include "frontend/comparator.hpp"
#include "frontend/envelope_detector.hpp"
#include "frontend/lna.hpp"
#include "frontend/sampler.hpp"

namespace saiyan::frontend {
namespace {

TEST(Lna, AppliesGain) {
  LnaConfig cfg;
  cfg.gain_db = 20.0;
  const Lna lna(cfg);
  dsp::Rng rng(1);
  dsp::Signal x(4096);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = dsp::Complex(std::cos(0.2 * i), std::sin(0.2 * i));
  }
  dsp::set_power_dbm(x, -50.0);
  const dsp::Signal y = lna.amplify(x, rng);
  EXPECT_NEAR(dsp::signal_power_dbm(y), -30.0, 0.2);
}

TEST(Lna, AddsNoiseForWeakSignals) {
  LnaConfig cfg;
  cfg.gain_db = 20.0;
  cfg.noise_figure_db = 10.0;
  const Lna lna(cfg);
  dsp::Rng rng(2);
  dsp::Signal x(1 << 14, dsp::Complex{});  // silence in
  const dsp::Signal y = lna.amplify(x, rng);
  EXPECT_GT(dsp::signal_power(y), 0.0);  // noise out
}

TEST(EnvelopeDetector, SquareLawOnCleanTone) {
  EnvelopeDetectorConfig cfg;
  cfg.enable_impairments = false;
  cfg.sample_rate_hz = 4e6;
  cfg.lpf_cutoff_hz = 100e3;
  const EnvelopeDetector ed(cfg);
  dsp::Rng rng(3);
  dsp::Signal x(1 << 14, dsp::Complex(2.0, 0.0));  // constant amplitude 2
  const dsp::RealSignal y = ed.detect(x, rng);
  // After settling, output = k*|x|^2 = 4.
  EXPECT_NEAR(y.back(), 4.0, 0.05);
}

TEST(EnvelopeDetector, ImpairmentsAddNoiseFloor) {
  EnvelopeDetectorConfig cfg;
  cfg.sample_rate_hz = 4e6;
  const EnvelopeDetector ed(cfg);
  dsp::Rng rng(4);
  dsp::Signal silence(1 << 14, dsp::Complex{});
  const dsp::RealSignal y = ed.detect_raw(silence, rng);
  // DC offset shows up as a non-zero mean; flicker+white as variance.
  EXPECT_GT(dsp::mean(y), 0.0);
  EXPECT_GT(dsp::variance(y), 0.0);
}

TEST(EnvelopeDetector, RejectsBadConfig) {
  EnvelopeDetectorConfig cfg;
  cfg.conversion_gain = 0.0;
  EXPECT_THROW(EnvelopeDetector{cfg}, std::invalid_argument);
}

TEST(Comparator, SingleThresholdChattersOnRipple) {
  // An envelope with a dip below threshold mid-peak splits the run —
  // the Fig. 7(c) failure the double threshold fixes.
  dsp::RealSignal env = {0.1, 0.5, 0.9, 0.6, 0.9, 0.5, 0.1};
  SingleThresholdComparator high(0.8);
  const dsp::BitVector bits = high.quantize(env);
  // Two disjoint high runs.
  int runs = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] && (i == 0 || !bits[i - 1])) ++runs;
  }
  EXPECT_EQ(runs, 2);
}

TEST(Comparator, DoubleThresholdBridgesValleys) {
  // Same envelope through Eq. 3: once latched above UH = 0.8, the
  // valley at 0.6 (> UL = 0.3) does not release the output.
  dsp::RealSignal env = {0.1, 0.5, 0.9, 0.6, 0.9, 0.5, 0.1};
  DoubleThresholdComparator comp(0.8, 0.3);
  const dsp::BitVector bits = comp.quantize(env);
  const dsp::BitVector expect = {0, 0, 1, 1, 1, 1, 0};
  EXPECT_EQ(bits, expect);
}

TEST(Comparator, DoubleThresholdIgnoresLowHumps) {
  // A hump that clears UL but not UH must not arm the comparator —
  // the Fig. 7(d) false positive.
  dsp::RealSignal env = {0.1, 0.4, 0.5, 0.4, 0.1, 0.9, 0.1};
  DoubleThresholdComparator comp(0.8, 0.3);
  const dsp::BitVector bits = comp.quantize(env);
  const dsp::BitVector expect = {0, 0, 0, 0, 0, 1, 0};
  EXPECT_EQ(bits, expect);
}

TEST(Comparator, Equation3TruthTable) {
  DoubleThresholdComparator comp(0.8, 0.3);
  // From low: A >= UH -> high, A < UH -> low (even if > UL).
  EXPECT_EQ(comp.quantize(dsp::RealSignal{0.5})[0], 0);
  EXPECT_EQ(comp.quantize(dsp::RealSignal{0.85})[0], 1);
  // From high: A >= UL -> high, A < UL -> low.
  const dsp::BitVector hold = comp.quantize(dsp::RealSignal{0.9, 0.35, 0.2});
  EXPECT_EQ(hold[1], 1);
  EXPECT_EQ(hold[2], 0);
}

TEST(Comparator, RequiresUhAboveUl) {
  EXPECT_THROW(DoubleThresholdComparator(0.3, 0.8), std::invalid_argument);
  EXPECT_THROW(DoubleThresholdComparator(0.5, 0.5), std::invalid_argument);
}

TEST(Thresholds, FromPeakFollowsSection41) {
  // UH = Amax / 10^(G/20), UL = UH - UF.
  const ThresholdPair t = thresholds_from_peak(1.0, 6.0, 0.2);
  EXPECT_NEAR(t.u_high, 0.501, 0.002);
  EXPECT_NEAR(t.u_low, 0.301, 0.002);
  EXPECT_THROW(thresholds_from_peak(0.0, 6.0, 0.1), std::invalid_argument);
  EXPECT_THROW(thresholds_from_peak(1.0, -1.0, 0.1), std::invalid_argument);
}

TEST(Thresholds, DegenerateRippleStillOrdered) {
  const ThresholdPair t = thresholds_from_peak(1.0, 3.0, 10.0);
  EXPECT_LT(t.u_low, t.u_high);
  EXPECT_GT(t.u_low, 0.0);
}

TEST(Sampler, RateFollowsPaperFormula) {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  const VoltageSampler s(p, 1.6);
  EXPECT_NEAR(s.sample_rate_hz(), 3.2 * 500e3 / 32.0, 1e-6);  // 50 kHz
}

TEST(Sampler, SamplesAtRequestedRate) {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  const VoltageSampler s(p, 1.6);
  dsp::BitVector bits(40960, 1);
  const SampledBits out = s.sample(bits, 4e6);
  // 40960 samples at 4 MHz = 10.24 ms; at 50 kHz -> 512 ticks.
  EXPECT_NEAR(static_cast<double>(out.bits.size()), 512.0, 2.0);
  EXPECT_NEAR(out.samples_per_symbol, 12.8, 1e-9);
}

TEST(Sampler, RejectsRateAboveSimulationRate) {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 5;
  const VoltageSampler s(p, 1e3);  // absurd multiplier
  dsp::BitVector bits(100, 0);
  EXPECT_THROW(s.sample(bits, 4e6), std::invalid_argument);
}

TEST(Clock, DelayLineCopyAndAlignment) {
  ClockConfig cfg;
  cfg.frequency_hz = 1e6;
  cfg.sample_rate_hz = 4e6;
  cfg.delay_line_phase_rad = 0.0;
  const ClockGenerator clk(cfg);
  EXPECT_NEAR(clk.alignment(), 1.0, 1e-12);  // cos(0) = 1 (Eq. 5 goal)
  const dsp::RealSignal a = clk.clk_in(16);
  const dsp::RealSignal b = clk.clk_out(16);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(Clock, MisalignmentReducesRecovery) {
  ClockConfig cfg;
  cfg.frequency_hz = 1e6;
  cfg.sample_rate_hz = 4e6;
  cfg.delay_line_phase_rad = dsp::kPi / 3.0;
  EXPECT_NEAR(ClockGenerator(cfg).alignment(), 0.5, 1e-12);
}

TEST(Clock, RejectsBadFrequency) {
  ClockConfig cfg;
  cfg.frequency_hz = 3e6;  // above Nyquist
  cfg.sample_rate_hz = 4e6;
  EXPECT_THROW(ClockGenerator{cfg}, std::invalid_argument);
}

TEST(Cfs, RecoverAmplitudeModulation) {
  // AM tone through the CFS chain: the modulation must survive.
  EnvelopeDetectorConfig ed;
  ed.sample_rate_hz = 4e6;
  ed.enable_impairments = false;
  CfsConfig cfg;
  cfg.clock.sample_rate_hz = 4e6;
  cfg.output_lpf_cutoff_hz = 100e3;
  const CyclicFrequencyShifter cfs(cfg, ed);
  dsp::Rng rng(5);
  const double fs = 4e6;
  const double fm = 5e3;  // modulation rate
  dsp::Signal x(1 << 16);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    const double amp = 1.0 + 0.8 * std::cos(dsp::kTwoPi * fm * t);
    x[i] = dsp::Complex(amp, 0.0);
  }
  const dsp::RealSignal y = cfs.process(x, rng);
  // The dominant non-DC frequency of the output tracks the modulation.
  EXPECT_NEAR(dsp::dominant_frequency(std::span<const double>(y), fs, 1e3), fm,
              1.5e3);
}

TEST(Cfs, SnrGainOverPlainDetector) {
  // The Fig. 10 experiment: a weak AM signal whose envelope sits under
  // the detector's flicker noise comes out cleaner through CFS.
  EnvelopeDetectorConfig ed;
  ed.sample_rate_hz = 4e6;
  CfsConfig cfg;
  cfg.clock.sample_rate_hz = 4e6;
  cfg.output_lpf_cutoff_hz = 100e3;
  const CyclicFrequencyShifter cfs(cfg, ed);
  const EnvelopeDetector plain(ed);

  dsp::Rng rng_a(6);
  dsp::Rng rng_b(6);
  const double fs = 4e6;
  const double fm = 8e3;
  dsp::Signal x(1 << 17);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    const double amp = 1.0 + 0.8 * std::cos(dsp::kTwoPi * fm * t);
    x[i] = dsp::Complex(amp, 0.0);
  }
  dsp::set_power_dbm(x, -68.0);  // weak enough that flicker dominates
  const dsp::RealSignal y_plain = plain.detect(x, rng_a);
  const dsp::RealSignal y_cfs = cfs.process(x, rng_b);
  const double snr_plain =
      dsp::estimate_snr_db(std::span<const double>(y_plain), fs, 6e3, 10e3);
  const double snr_cfs =
      dsp::estimate_snr_db(std::span<const double>(y_cfs), fs, 6e3, 10e3);
  // Paper: ~11 dB gain; accept anything clearly positive and sizable.
  EXPECT_GT(snr_cfs - snr_plain, 6.0);
}

TEST(Cfs, RejectsMismatchedRates) {
  EnvelopeDetectorConfig ed;
  ed.sample_rate_hz = 4e6;
  CfsConfig cfg;
  cfg.clock.sample_rate_hz = 2e6;
  EXPECT_THROW(CyclicFrequencyShifter(cfg, ed), std::invalid_argument);
}

TEST(Cfs, RejectsLpfAboveIf) {
  EnvelopeDetectorConfig ed;
  ed.sample_rate_hz = 4e6;
  CfsConfig cfg;
  cfg.clock.sample_rate_hz = 4e6;
  cfg.clock.frequency_hz = 100e3;
  cfg.output_lpf_cutoff_hz = 200e3;
  EXPECT_THROW(CyclicFrequencyShifter(cfg, ed), std::invalid_argument);
}

}  // namespace
}  // namespace saiyan::frontend
