// BatchDemodulator / DemodWorkspace: equivalence with the allocating
// demodulator API, zero per-packet allocation in the steady state, and
// end-to-end dispatch invariance of the waveform pipeline.
//
// This file (together with test_simd_kernels.cpp) is built into its
// own test binary because it replaces the global allocation functions
// with counting versions to prove the zero-allocation property; the
// counter is disabled under ASan, which owns the allocator there.
#include "core/batch_demod.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "channel/awgn_channel.hpp"
#include "dsp/simd.hpp"
#include "lora/modulator.hpp"
#include "sim/pipeline.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define SAIYAN_ALLOC_COUNTER 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SAIYAN_ALLOC_COUNTER 0
#endif
#endif
#ifndef SAIYAN_ALLOC_COUNTER
#define SAIYAN_ALLOC_COUNTER 1
#endif

#if SAIYAN_ALLOC_COUNTER

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // SAIYAN_ALLOC_COUNTER

namespace saiyan {
namespace {

lora::PhyParams phy() {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  return p;
}

dsp::Signal make_rx(const core::SaiyanConfig& cfg,
                    const std::vector<std::uint32_t>& tx, double rss_dbm,
                    std::uint64_t seed, lora::PacketLayout* layout) {
  lora::Modulator mod(cfg.phy);
  channel::AwgnChannel chan(cfg.phy.sample_rate_hz, 6.0);
  dsp::Rng rng(seed);
  if (layout != nullptr) *layout = mod.layout(tx.size());
  return chan.apply(mod.modulate(tx), rss_dbm, rng);
}

class BatchDemodModes : public ::testing::TestWithParam<core::Mode> {};

TEST_P(BatchDemodModes, AlignedDecodeMatchesLegacyApi) {
  const core::SaiyanConfig cfg = core::SaiyanConfig::make(phy(), GetParam());
  const std::vector<std::uint32_t> tx = {0, 3, 1, 2, 2, 0, 3, 1,
                                         1, 2, 0, 3, 3, 1, 2, 0};
  lora::PacketLayout lay;
  const dsp::Signal rx = make_rx(cfg, tx, -60.0, 99, &lay);

  const core::SaiyanDemodulator legacy(cfg);
  core::BatchDemodulator batch(cfg);
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    dsp::Rng rng_a(seed), rng_b(seed);
    const core::DemodResult want =
        legacy.demodulate_aligned(rx, lay.payload_start, tx.size(), rng_a);
    const auto got =
        batch.decode_aligned(rx, lay.payload_start, tx.size(), rng_b);
    const core::DemodWorkspace& ws = batch.workspace();
    EXPECT_EQ(want.preamble_found, ws.preamble_found);
    EXPECT_DOUBLE_EQ(want.preamble_score, ws.preamble_score);
    EXPECT_DOUBLE_EQ(want.sampler_rate_hz, ws.sampler_rate_hz);
    EXPECT_DOUBLE_EQ(want.thresholds.u_high, ws.thresholds.u_high);
    EXPECT_DOUBLE_EQ(want.thresholds.u_low, ws.thresholds.u_low);
    ASSERT_EQ(want.symbols.size(), got.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(want.symbols[i], got[i]) << "symbol " << i;
    }
  }
}

TEST_P(BatchDemodModes, FullSyncDecodeMatchesLegacyApi) {
  const core::SaiyanConfig cfg = core::SaiyanConfig::make(phy(), GetParam());
  const std::vector<std::uint32_t> tx = {2, 1, 3, 0, 1, 2, 3, 0};
  const dsp::Signal rx = make_rx(cfg, tx, -55.0, 7, nullptr);

  const core::SaiyanDemodulator legacy(cfg);
  core::BatchDemodulator batch(cfg);
  dsp::Rng rng_a(5), rng_b(5);
  const core::DemodResult want = legacy.demodulate(rx, tx.size(), rng_a);
  const auto got = batch.decode(rx, tx.size(), rng_b);
  const core::DemodWorkspace& ws = batch.workspace();
  EXPECT_EQ(want.preamble_found, ws.preamble_found);
  EXPECT_DOUBLE_EQ(want.preamble_score, ws.preamble_score);
  ASSERT_EQ(want.symbols.size(), got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(want.symbols[i], got[i]) << "symbol " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, BatchDemodModes,
                         ::testing::Values(core::Mode::kVanilla,
                                           core::Mode::kFrequencyShifting,
                                           core::Mode::kSuper),
                         [](const auto& info) {
                           return std::string(core::mode_name(info.param)) ==
                                          "freq-shifting"
                                      ? "freq_shifting"
                                      : core::mode_name(info.param);
                         });

#if SAIYAN_ALLOC_COUNTER

TEST(BatchDemodAllocation, AlignedDecodeIsAllocationFreeOnceWarm) {
  // The tentpole property: after the first packet sizes every buffer,
  // repeated aligned decodes (the Monte-Carlo hot loop) perform zero
  // heap allocations — modulate, channel and demodulation included.
  const core::SaiyanConfig cfg =
      core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  core::BatchDemodulator batch(cfg);
  lora::Modulator mod(cfg.phy);
  channel::AwgnChannel chan(cfg.phy.sample_rate_hz, 6.0);
  core::DemodWorkspace& ws = batch.workspace();
  const lora::PacketLayout lay = mod.layout(16);
  dsp::Rng rng(17);

  auto run_packet = [&]() {
    ws.tx.resize(16);
    for (std::uint32_t& v : ws.tx) {
      v = static_cast<std::uint32_t>(
          rng.uniform_int(0, cfg.phy.symbol_alphabet() - 1));
    }
    mod.modulate_into(ws.tx, ws.wave);
    chan.apply_into(ws.wave, -58.0, rng, ws.rx);
    batch.decode_aligned(ws.rx, lay.payload_start, ws.tx.size(), rng);
  };

  run_packet();  // warm every buffer, cache, plan and template
  run_packet();

  g_allocations.store(0);
  g_counting.store(true);
  for (int p = 0; p < 5; ++p) run_packet();
  g_counting.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "aligned batch decode allocated in the steady state";
}

TEST(BatchDemodAllocation, WorkspaceCapacitiesStableAcrossDecodes) {
  // Capacity-based cross-check (also meaningful under sanitizers):
  // repeated decodes must never regrow any workspace buffer.
  const core::SaiyanConfig cfg =
      core::SaiyanConfig::make(phy(), core::Mode::kFrequencyShifting);
  core::BatchDemodulator batch(cfg);
  lora::Modulator mod(cfg.phy);
  channel::AwgnChannel chan(cfg.phy.sample_rate_hz, 6.0);
  core::DemodWorkspace& ws = batch.workspace();
  const lora::PacketLayout lay = mod.layout(12);
  dsp::Rng rng(23);
  ws.tx.assign(12, 1);

  mod.modulate_into(ws.tx, ws.wave);
  chan.apply_into(ws.wave, -58.0, rng, ws.rx);
  batch.decode_aligned(ws.rx, lay.payload_start, ws.tx.size(), rng);

  const std::size_t caps[] = {
      ws.wave.capacity(),     ws.rx.capacity(),
      ws.rf_filtered.capacity(), ws.rf_amplified.capacity(),
      ws.fft_scratch.capacity(), ws.env.capacity(),
      ws.bits_fs.capacity(),  ws.sampled.bits.capacity(),
      ws.symbols.capacity()};
  for (int p = 0; p < 3; ++p) {
    mod.modulate_into(ws.tx, ws.wave);
    chan.apply_into(ws.wave, -58.0, rng, ws.rx);
    batch.decode_aligned(ws.rx, lay.payload_start, ws.tx.size(), rng);
  }
  const std::size_t after[] = {
      ws.wave.capacity(),     ws.rx.capacity(),
      ws.rf_filtered.capacity(), ws.rf_amplified.capacity(),
      ws.fft_scratch.capacity(), ws.env.capacity(),
      ws.bits_fs.capacity(),  ws.sampled.bits.capacity(),
      ws.symbols.capacity()};
  for (std::size_t i = 0; i < std::size(caps); ++i) {
    EXPECT_EQ(caps[i], after[i]) << "buffer " << i << " regrew";
  }
}

#endif  // SAIYAN_ALLOC_COUNTER

TEST(BatchDemodDispatch, PipelineResultsIdenticalAcrossIsa) {
  // The whole point of bit-identical kernels: a BER sweep must produce
  // the same counts under scalar and AVX2 dispatch.
  if (!dsp::simd::cpu_has_avx2_fma()) GTEST_SKIP() << "no AVX2+FMA host";
  sim::PipelineConfig cfg;
  cfg.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  cfg.seed = 77;
  cfg.payload_symbols = 8;
  cfg.threads = 1;

  dsp::simd::set_isa(dsp::simd::Isa::kScalar);
  sim::WaveformPipeline scalar_pipe(cfg);
  const sim::PipelineResult a = scalar_pipe.run_rss(-78.0, 6);

  dsp::simd::set_isa(dsp::simd::Isa::kAvx2);
  sim::WaveformPipeline avx2_pipe(cfg);
  const sim::PipelineResult b = avx2_pipe.run_rss(-78.0, 6);
  dsp::simd::set_isa(dsp::simd::Isa::kAuto);

  EXPECT_EQ(a.errors.bit_errors(), b.errors.bit_errors());
  EXPECT_EQ(a.errors.bits(), b.errors.bits());
  EXPECT_EQ(a.errors.symbol_errors(), b.errors.symbol_errors());
  EXPECT_EQ(a.detections.received(), b.detections.received());
}

}  // namespace
}  // namespace saiyan
