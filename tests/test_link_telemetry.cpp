// Link telescope (src/obs/link_telemetry.*) tests.
//
// Three layers: the registry itself (LRU bound + eviction counter,
// seqlock torn-read freedom under a hammering writer, sequence-gap
// loss inference including counter wrap, noise-floor EWMA gating);
// the per-frame estimators end to end through the streaming
// demodulator against injected ground truth (known RSS over a thermal
// floor -> SNR, injected per-tag CFO -> cfo_hz, |timing| <= 1,
// positive correlation margin) across spreading factors and collision
// overlap offsets; and the load-bearing invariant that attaching the
// telemetry sink never changes what the demodulator decodes. The
// `links` control-op query grammar (parse_link_query/links_to_text)
// rides along since it has no other natural unit-test home.
#include "obs/link_telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "dsp/noise.hpp"
#include "dsp/utils.hpp"
#include "gateway/gateway_stats.hpp"
#include "sim/capture.hpp"
#include "stream/streaming_demod.hpp"

namespace saiyan {
namespace {

obs::FrameDiag diag(std::uint32_t tag, std::uint32_t channel = 0) {
  obs::FrameDiag d;
  d.tag_id = tag;
  d.channel = channel;
  d.snr_db = 20.0;
  return d;
}

// ------------------------------------------------------------ registry

TEST(LinkTelemetry, RegistryIsBoundedWithLruEviction) {
  obs::LinkTelemetry lt(4);
  EXPECT_EQ(lt.capacity(), 4u);
  for (std::uint32_t t = 0; t < 4; ++t) lt.record_frame(diag(t));
  // Refresh tags 0..2 so tag 3 is the least recently seen.
  for (std::uint32_t t = 0; t < 3; ++t) lt.record_frame(diag(t));
  lt.record_frame(diag(100));  // evicts tag 3
  lt.record_frame(diag(101));  // evicts tag 0 (refreshed first)

  const obs::LinkRegistrySnapshot snap = lt.snapshot();
  EXPECT_EQ(snap.links.size(), 4u);
  EXPECT_EQ(snap.evictions, 2u);
  EXPECT_EQ(snap.frames_total, 9u);
  std::vector<std::uint32_t> tags;
  for (const obs::LinkSnapshot& l : snap.links) tags.push_back(l.tag_id);
  std::sort(tags.begin(), tags.end());
  EXPECT_EQ(tags, (std::vector<std::uint32_t>{1, 2, 100, 101}));
  // The survivor windows kept their history; the evicted slots were
  // wiped, not merged into their replacements.
  for (const obs::LinkSnapshot& l : snap.links) {
    EXPECT_EQ(l.frames, l.tag_id < 100 ? 2u : 1u) << "tag " << l.tag_id;
  }
}

TEST(LinkTelemetry, SameTagDifferentChannelIsADistinctLink) {
  obs::LinkTelemetry lt(8);
  lt.record_frame(diag(7, 0));
  lt.record_frame(diag(7, 1));
  lt.record_frame(diag(7, 1));
  const obs::LinkRegistrySnapshot snap = lt.snapshot();
  ASSERT_EQ(snap.links.size(), 2u);
  for (const obs::LinkSnapshot& l : snap.links) {
    EXPECT_EQ(l.frames, l.channel == 0 ? 1u : 2u);
  }
}

TEST(LinkTelemetry, SequenceGapsInferLossesAcrossWraps) {
  obs::LinkTelemetry lt(4);
  const std::uint32_t mod = 32;
  auto seq_frame = [&](std::uint32_t seq) {
    obs::FrameDiag d = diag(1);
    d.seq = seq;
    d.seq_modulus = mod;
    d.has_seq = true;
    lt.record_frame(d);
  };
  seq_frame(5);
  seq_frame(6);   // consecutive: no loss
  seq_frame(9);   // gap: 2 lost
  seq_frame(30);  // gap: 20 lost
  seq_frame(2);   // wrap 30 -> 2 (mod 32): 3 lost
  const obs::LinkRegistrySnapshot snap = lt.snapshot();
  ASSERT_EQ(snap.links.size(), 1u);
  EXPECT_EQ(snap.links[0].frames, 5u);
  EXPECT_EQ(snap.links[0].lost_frames, 2u + 20u + 3u);
}

TEST(LinkTelemetry, SnapshotNeverTearsUnderWriterHammer) {
  // Writer folds frames whose every field is a function of the tag id;
  // a torn read mixing two slots (or a slot mid-wipe) would surface as
  // an EWMA that is not exactly the constant being folded in (the EWMA
  // of a constant stream, seeded with that constant, is a fixpoint).
  obs::LinkTelemetry lt(8);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint32_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint32_t tag = i++ % 12;  // 12 tags, 8 slots: evictions
      obs::FrameDiag d;
      d.tag_id = tag;
      d.channel = tag + 1;
      d.snr_db = static_cast<double>(tag) * 3.0;
      d.cfo_hz = static_cast<double>(tag) * -7.0;
      d.latency_us = tag;
      lt.record_frame(d);
    }
  });
  for (int round = 0; round < 2000; ++round) {
    const obs::LinkRegistrySnapshot snap = lt.snapshot();
    EXPECT_LE(snap.links.size(), 8u);
    for (const obs::LinkSnapshot& l : snap.links) {
      EXPECT_EQ(l.channel, l.tag_id + 1);
      EXPECT_EQ(l.ewma_snr_db, static_cast<double>(l.tag_id) * 3.0);
      EXPECT_EQ(l.ewma_cfo_hz, static_cast<double>(l.tag_id) * -7.0);
      EXPECT_EQ(l.ewma_latency_us, static_cast<double>(l.tag_id));
      EXPECT_GE(l.frames, 1u);
    }
  }
  stop.store(true);
  writer.join();
}

// ---------------------------------------------------------- noise floor

TEST(LinkTelemetry, NoiseFloorTracksIdlePowerAndGatesBursts) {
  obs::LinkTelemetry lt(4);
  EXPECT_FALSE(lt.noise_floor_valid());
  EXPECT_EQ(lt.noise_floor_dbm(), obs::LinkTelemetry::kNoFloorDbm);

  const double floor_w = dsp::dbm_to_watts(-100.0);
  for (int i = 0; i < 64; ++i) lt.sample_noise(floor_w);
  ASSERT_TRUE(lt.noise_floor_valid());
  EXPECT_NEAR(lt.noise_floor_dbm(), -100.0, 0.1);

  // A missed-onset transmission (way above the gate) must not ratchet
  // the floor upward.
  lt.sample_noise(floor_w * 100.0);
  EXPECT_NEAR(lt.noise_floor_dbm(), -100.0, 0.1);

  // Fast attack down: a quieter band converges in a few samples...
  const double lower_w = dsp::dbm_to_watts(-110.0);
  for (int i = 0; i < 48; ++i) lt.sample_noise(lower_w);
  EXPECT_NEAR(lt.noise_floor_dbm(), -110.0, 0.5);
  // ...slow release up: a within-gate rise pulls slower but converges.
  const double mid_w = dsp::dbm_to_watts(-106.0);
  for (int i = 0; i < 256; ++i) lt.sample_noise(mid_w);
  EXPECT_NEAR(lt.noise_floor_dbm(), -106.0, 0.5);
}

// ----------------------------------------------------- estimators (e2e)

lora::PhyParams phy(std::uint32_t sf = 7) {
  lora::PhyParams p;
  p.spreading_factor = sf;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  return p;
}

sim::CaptureConfig telemetry_cfg(const lora::PhyParams& p, double rss_dbm,
                                 double cfo_hz, std::uint64_t seed) {
  sim::CaptureConfig cfg;
  cfg.saiyan = core::SaiyanConfig::make(p, core::Mode::kSuper);
  cfg.payload_symbols = 16;
  cfg.packets_per_tag = 4;
  cfg.tag_rss_dbm = {rss_dbm};
  if (cfo_hz != 0.0) cfg.tag_cfo_hz = {cfo_hz};
  // Generous idle gaps so whole scan blocks sit between frames and the
  // noise-floor tracker primes from genuinely idle air.
  cfg.min_gap_symbols = 16.0;
  cfg.max_gap_symbols = 24.0;
  cfg.seed = seed;
  return cfg;
}

std::unique_ptr<stream::StreamingDemodulator> run_stream(
    const sim::Capture& cap, const sim::CaptureConfig& cfg,
    obs::LinkTelemetry* lt, std::size_t chunk = 16384,
    std::size_t sic_depth = 0) {
  stream::StreamConfig sc;
  sc.saiyan = cfg.saiyan;
  sc.payload_symbols = cfg.payload_symbols;
  sc.sic.depth = sic_depth;
  sc.link_telemetry = lt;
  auto demod = std::make_unique<stream::StreamingDemodulator>(sc);
  std::span<const dsp::Complex> rest(cap.samples);
  while (!rest.empty()) {
    const std::size_t take = std::min(chunk, rest.size());
    demod->push(rest.first(take));
    rest = rest.subspan(take);
  }
  demod->finish();
  return demod;
}

TEST(LinkEstimators, SnrTracksInjectedPowerAcrossSpreadingFactors) {
  for (const std::uint32_t sf : {7u, 8u}) {
    const lora::PhyParams p = phy(sf);
    const double rss = -55.0;
    const double floor =
        dsp::thermal_noise_floor_dbm(p.sample_rate_hz, 6.0);
    const sim::CaptureConfig cfg = telemetry_cfg(p, rss, 0.0, 11 + sf);
    const sim::Capture cap = sim::generate_capture(cfg);
    obs::LinkTelemetry lt;
    const auto demod = run_stream(cap, cfg, &lt);
    ASSERT_TRUE(lt.noise_floor_valid()) << "sf " << sf;
    EXPECT_NEAR(lt.noise_floor_dbm(), floor, 2.0) << "sf " << sf;
    ASSERT_GE(demod->packets().size(), 3u) << "sf " << sf;
    for (const stream::DecodedPacket& pk : demod->packets()) {
      EXPECT_NEAR(pk.snr_db, rss - floor, 3.0) << "sf " << sf;
      EXPECT_NEAR(pk.noise_floor_dbm, floor, 2.0) << "sf " << sf;
      EXPECT_GE(pk.corr_margin, 0.0);
      EXPECT_LE(std::abs(pk.timing_offset), 1.0);
    }
  }
}

TEST(LinkEstimators, CfoRecoversInjectedOffset) {
  for (const double cfo : {-400.0, 0.0, 250.0}) {
    const sim::CaptureConfig cfg =
        telemetry_cfg(phy(), -55.0, cfo, 99);
    const sim::Capture cap = sim::generate_capture(cfg);
    obs::LinkTelemetry lt;
    const auto demod = run_stream(cap, cfg, &lt);
    ASSERT_GE(demod->packets().size(), 3u) << "cfo " << cfo;
    for (const stream::DecodedPacket& pk : demod->packets()) {
      EXPECT_NEAR(pk.cfo_hz, cfo, 25.0) << "cfo " << cfo;
    }
  }
}

TEST(LinkEstimators, SurvivesCollisionOverlapsUnderSic) {
  // Two tags, the weaker starting mid-frame of the stronger: the
  // estimators must stay sane (finite, in range) for both the clean
  // and the SIC-rescued frame, at several overlap offsets.
  const std::size_t spsym = phy().samples_per_symbol();
  for (const std::size_t sym : {3u, 9u, 17u}) {
    sim::CaptureConfig cfg;
    cfg.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
    cfg.payload_symbols = 16;
    cfg.seed = 100 + sym;
    cfg.tag_rss_dbm = {-55.0, -61.0};
    cfg.offsets = {40000, 40000 + sym * spsym};
    const sim::Capture cap = sim::generate_capture(cfg);
    obs::LinkTelemetry lt;
    const auto demod = run_stream(cap, cfg, &lt, 16384, /*sic_depth=*/2);
    ASSERT_GE(demod->packets().size(), 2u) << "offset " << sym;
    for (const stream::DecodedPacket& pk : demod->packets()) {
      EXPECT_TRUE(std::isfinite(pk.snr_db));
      EXPECT_TRUE(std::isfinite(pk.cfo_hz));
      EXPECT_LE(std::abs(pk.timing_offset), 1.0);
      // Overlapped frame power can double-count the other frame:
      // allow slack above the single-tag expectation, none below
      // what the weaker tag alone would produce.
      EXPECT_GT(pk.snr_db, 20.0) << "offset " << sym;
      EXPECT_LT(pk.snr_db, 60.0) << "offset " << sym;
    }
  }
}

TEST(LinkEstimators, TelemetrySinkNeverChangesDecode) {
  // The hard invariant: identical decode output with the sink attached
  // or detached, at several chunk sizes, with and without SIC.
  const sim::CaptureConfig cfg = telemetry_cfg(phy(), -58.0, 150.0, 7);
  const sim::Capture cap = sim::generate_capture(cfg);
  for (const std::size_t chunk : {997u, 16384u}) {
    for (const std::size_t depth : {0u, 2u}) {
      obs::LinkTelemetry lt;
      const auto with = run_stream(cap, cfg, &lt, chunk, depth);
      const auto without = run_stream(cap, cfg, nullptr, chunk, depth);
      ASSERT_EQ(with->packets().size(), without->packets().size());
      for (std::size_t i = 0; i < with->packets().size(); ++i) {
        const stream::DecodedPacket& a = with->packets()[i];
        const stream::DecodedPacket& b = without->packets()[i];
        EXPECT_EQ(a.packet_start, b.packet_start);
        EXPECT_EQ(a.payload_start, b.payload_start);
        EXPECT_EQ(a.score, b.score);
        EXPECT_EQ(a.collided, b.collided);
        EXPECT_EQ(a.sic_assisted, b.sic_assisted);
        const auto sa = with->symbols(a);
        const auto sb = without->symbols(b);
        ASSERT_EQ(sa.size(), sb.size());
        EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()));
      }
      // The demodulator's half of the telemetry ran (noise sampling;
      // record_frame is the gateway's job, not the demodulator's).
      EXPECT_TRUE(lt.noise_floor_valid());
    }
  }
}

TEST(LinkEstimators, LinkHeaderCaptureKeepsScheduleBitIdentical) {
  // link_headers only rewrites payload symbols 0/1 after the random
  // draws: the waveform's schedule (marker offsets) and every other
  // symbol must match the header-less capture exactly.
  sim::CaptureConfig cfg = telemetry_cfg(phy(), -58.0, 0.0, 21);
  const sim::Capture plain = sim::generate_capture(cfg);
  cfg.link_headers = true;
  const sim::Capture keyed = sim::generate_capture(cfg);
  ASSERT_EQ(plain.markers.size(), keyed.markers.size());
  for (std::size_t i = 0; i < plain.markers.size(); ++i) {
    EXPECT_EQ(plain.markers[i].sample_offset, keyed.markers[i].sample_offset);
    EXPECT_EQ(keyed.markers[i].symbols[0],
              keyed.markers[i].tag_id %
                  cfg.saiyan.phy.symbol_alphabet());
    for (std::size_t s = 2; s < plain.markers[i].symbols.size(); ++s) {
      EXPECT_EQ(plain.markers[i].symbols[s], keyed.markers[i].symbols[s]);
    }
  }
}

// ------------------------------------------------------ links op query

TEST(LinkQueryGrammar, ParsesOptionsAndRejectsGarbage) {
  using gateway::LinkQuery;
  auto q = gateway::parse_link_query("");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().top, 0u);
  EXPECT_EQ(q.value().sort, LinkQuery::Sort::kFrames);

  q = gateway::parse_link_query("  top=5\tsort=snr ");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().top, 5u);
  EXPECT_EQ(q.value().sort, LinkQuery::Sort::kSnr);

  EXPECT_FALSE(gateway::parse_link_query("top=~~").ok());
  EXPECT_FALSE(gateway::parse_link_query("top=5x").ok());
  EXPECT_FALSE(gateway::parse_link_query("sort=bogus").ok());
  EXPECT_FALSE(gateway::parse_link_query("limit=3").ok());
  EXPECT_FALSE(gateway::parse_link_query("top 3").ok());
}

TEST(LinkQueryGrammar, TextListingOrdersAndLimits) {
  obs::LinkTelemetry lt(8);
  for (std::uint32_t t = 0; t < 3; ++t) {
    for (std::uint32_t n = 0; n <= t; ++n) {
      obs::FrameDiag d = diag(t);
      d.snr_db = 30.0 - static_cast<double>(t) * 5.0;
      lt.record_frame(d);
    }
  }
  gateway::LinkQuery q;
  q.top = 2;
  q.sort = gateway::LinkQuery::Sort::kSnr;  // worst first
  const std::string text = gateway::links_to_text(lt.snapshot(), q);
  EXPECT_NE(text.find("links_tracked 3"), std::string::npos);
  EXPECT_NE(text.find("links_listed 2"), std::string::npos);
  // Tag 2 has the worst EWMA SNR (20 dB) and must list; tag 0 (30 dB)
  // must be cut by top=2.
  EXPECT_NE(text.find("link.2.0.frames 3"), std::string::npos);
  EXPECT_EQ(text.find("link.0.0."), std::string::npos);
}

}  // namespace
}  // namespace saiyan
