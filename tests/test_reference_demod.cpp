// The coherent reference demodulator (commodity LoRa receiver model):
// loopback across SF/BW, noise robustness, packet sync.
#include <gtest/gtest.h>

#include "channel/awgn_channel.hpp"
#include "dsp/noise.hpp"
#include "lora/chirp.hpp"
#include "lora/demodulator.hpp"
#include "lora/modulator.hpp"

namespace saiyan::lora {
namespace {

PhyParams params(int sf = 7, double bw = 500e3, int k = 2) {
  PhyParams p;
  p.spreading_factor = sf;
  p.bandwidth_hz = bw;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = k;
  return p;
}

TEST(ReferenceDemod, SingleSymbolLoopbackAllChips) {
  const PhyParams p = params();
  const CoherentDemodulator demod(p);
  // Every 8th chip value to keep runtime sane.
  for (std::uint32_t chip = 0; chip < p.chips(); chip += 8) {
    const dsp::Signal sym = upchirp(p, chip);
    EXPECT_EQ(demod.demodulate_symbol(sym), chip) << "chip " << chip;
  }
}

TEST(ReferenceDemod, WrongWindowSizeThrows) {
  const PhyParams p = params();
  const CoherentDemodulator demod(p);
  const dsp::Signal sym = upchirp(p, 0);
  EXPECT_THROW(
      demod.demodulate_symbol(std::span<const dsp::Complex>(sym).first(100)),
      std::invalid_argument);
}

class ReferenceDemodGrid
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ReferenceDemodGrid, PacketLoopback) {
  const auto [sf, bw] = GetParam();
  const PhyParams p = params(sf, bw);
  const Modulator mod(p);
  const CoherentDemodulator demod(p);
  dsp::Rng rng(11);
  std::vector<std::uint32_t> tx;
  for (int i = 0; i < 16; ++i) {
    tx.push_back(static_cast<std::uint32_t>(rng.uniform_int(0, 3)));
  }
  const dsp::Signal wave = mod.modulate(tx);
  const CoherentDemodResult r = demod.demodulate_packet(wave, tx.size());
  ASSERT_TRUE(r.preamble_found);
  ASSERT_EQ(r.symbols.size(), tx.size());
  for (std::size_t i = 0; i < tx.size(); ++i) {
    EXPECT_EQ(r.symbols[i], tx[i]) << "symbol " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SfBw, ReferenceDemodGrid,
    ::testing::Combine(::testing::Values(7, 8, 9),
                       ::testing::Values(125e3, 250e3, 500e3)));

TEST(ReferenceDemod, SurvivesModerateNoise) {
  const PhyParams p = params();
  const Modulator mod(p);
  const CoherentDemodulator demod(p);
  dsp::Rng rng(12);
  channel::AwgnChannel chan(p.sample_rate_hz, 6.0);
  std::vector<std::uint32_t> tx;
  for (int i = 0; i < 16; ++i) {
    tx.push_back(static_cast<std::uint32_t>(rng.uniform_int(0, 3)));
  }
  const dsp::Signal wave = mod.modulate(tx);
  // -95 dBm: well below Saiyan's reach, easy for a coherent receiver.
  const dsp::Signal rx = chan.apply(wave, -95.0, rng);
  const CoherentDemodResult r = demod.demodulate_packet(rx, tx.size());
  ASSERT_TRUE(r.preamble_found);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < tx.size(); ++i) errors += r.symbols[i] != tx[i];
  EXPECT_EQ(errors, 0u);
}

TEST(ReferenceDemod, FindsPacketAtOffset) {
  const PhyParams p = params();
  const Modulator mod(p);
  const CoherentDemodulator demod(p);
  dsp::Rng rng(13);
  const std::vector<std::uint32_t> tx = {1, 2, 3, 0, 2};
  const dsp::Signal wave = mod.modulate(tx);
  dsp::Signal rx = dsp::complex_awgn(5000, 1e-14, rng);
  rx.insert(rx.end(), wave.begin(), wave.end());
  const dsp::Signal tail = dsp::complex_awgn(2000, 1e-14, rng);
  rx.insert(rx.end(), tail.begin(), tail.end());
  const CoherentDemodResult r = demod.demodulate_packet(rx, tx.size());
  ASSERT_TRUE(r.preamble_found);
  const PacketLayout lay = mod.layout(tx.size());
  EXPECT_NEAR(static_cast<double>(r.payload_start), 5000.0 + lay.payload_start,
              8.0);
  for (std::size_t i = 0; i < tx.size(); ++i) EXPECT_EQ(r.symbols[i], tx[i]);
}

TEST(ReferenceDemod, NoPacketNoDetection) {
  const PhyParams p = params();
  const CoherentDemodulator demod(p);
  dsp::Rng rng(14);
  const dsp::Signal noise = dsp::complex_awgn(40000, 1e-10, rng);
  const CoherentDemodResult r = demod.demodulate_packet(noise, 4);
  EXPECT_FALSE(r.preamble_found);
}

TEST(ReferenceDemod, RejectsNonIntegerDecimation) {
  PhyParams p = params();
  p.sample_rate_hz = 1.7e6;  // not an integer multiple of 500 kHz
  EXPECT_THROW(CoherentDemodulator{p}, std::invalid_argument);
}

TEST(Modulator, LayoutAccounting) {
  const PhyParams p = params();
  const Modulator mod(p);
  const PacketLayout lay = mod.layout(32);
  EXPECT_EQ(lay.samples_per_symbol, 1024u);
  EXPECT_EQ(lay.sync_start, 10u * 1024u);
  EXPECT_EQ(lay.payload_start, 10u * 1024u + 2304u);  // 2.25 symbols
  EXPECT_EQ(lay.total_samples, lay.payload_start + 32u * 1024u);
  const dsp::Signal wave = mod.modulate(std::vector<std::uint32_t>(32, 0));
  EXPECT_EQ(wave.size(), lay.total_samples);
}

}  // namespace
}  // namespace saiyan::lora
