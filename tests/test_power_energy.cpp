// Power model (Table 2 / §4.3) and energy harvester (§4.1) accounting.
#include <gtest/gtest.h>

#include "core/energy_harvester.hpp"
#include "core/power_model.hpp"

namespace saiyan::core {
namespace {

TEST(PowerModel, Table2TotalsAt1PercentDuty) {
  const PowerModel pcb(Implementation::kPcb);
  // Table 2: 0 + 248.5 + 86.8 + 0 + 14.45 + 19.6 = 369.35 ~ 369.4 µW.
  EXPECT_NEAR(pcb.total_power_uw(Mode::kSuper, 0.01), 369.4, 0.5);
}

TEST(PowerModel, Table2ComponentRows) {
  const PowerModel pcb(Implementation::kPcb);
  EXPECT_EQ(pcb.component_power_uw(Component::kSawFilter), 0.0);
  EXPECT_NEAR(pcb.component_power_uw(Component::kLna), 248.5, 1e-9);
  EXPECT_NEAR(pcb.component_power_uw(Component::kOscClock), 86.8, 1e-9);
  EXPECT_EQ(pcb.component_power_uw(Component::kEnvelopeDetector), 0.0);
  EXPECT_NEAR(pcb.component_power_uw(Component::kComparator), 14.45, 1e-9);
  EXPECT_NEAR(pcb.component_power_uw(Component::kMcu), 19.6, 1e-9);
}

TEST(PowerModel, LnaAndOscDominatePcbBudget) {
  // §5.2.4: LNA 67.3 % and oscillator 23.5 % of total.
  const PowerModel pcb(Implementation::kPcb);
  const double total = pcb.total_power_uw(Mode::kSuper, 0.01);
  EXPECT_NEAR(pcb.component_power_uw(Component::kLna) / total, 0.673, 0.01);
  EXPECT_NEAR(pcb.component_power_uw(Component::kOscClock) / total, 0.235, 0.01);
}

TEST(PowerModel, AsicTotal93uW) {
  const PowerModel asic(Implementation::kAsic);
  // §4.3: 68.4 + 22.8 + 2.0 = 93.2 µW.
  EXPECT_NEAR(asic.total_power_uw(Mode::kSuper, 0.01), 93.2, 0.1);
}

TEST(PowerModel, AsicSavesAbout75Percent) {
  // §5.2.4: ASIC cuts power by 74.8 %.
  const PowerModel pcb(Implementation::kPcb);
  const PowerModel asic(Implementation::kAsic);
  const double saving = 1.0 - asic.total_power_uw(Mode::kSuper) /
                                  pcb.total_power_uw(Mode::kSuper);
  EXPECT_NEAR(saving, 0.748, 0.01);
}

TEST(PowerModel, VanillaSkipsOscClock) {
  const PowerModel pcb(Implementation::kPcb);
  EXPECT_NEAR(pcb.total_power_uw(Mode::kSuper) - pcb.total_power_uw(Mode::kVanilla),
              86.8, 1e-6);
}

TEST(PowerModel, DutyCycleScalesLinearly) {
  const PowerModel pcb(Implementation::kPcb);
  EXPECT_NEAR(pcb.total_power_uw(Mode::kSuper, 0.02),
              2.0 * pcb.total_power_uw(Mode::kSuper, 0.01), 1e-6);
  EXPECT_THROW(pcb.total_power_uw(Mode::kSuper, 0.0), std::invalid_argument);
  EXPECT_THROW(pcb.total_power_uw(Mode::kSuper, 1.5), std::invalid_argument);
}

TEST(PowerModel, BomCost27Dollars) {
  const PowerModel pcb(Implementation::kPcb);
  EXPECT_NEAR(pcb.total_cost_usd(), 27.2, 0.1);
  EXPECT_NEAR(pcb.component_cost_usd(Component::kMcu), 15.43, 1e-9);
}

TEST(PowerModel, SaiyanFarBelowCommodityReceiver) {
  const PowerModel asic(Implementation::kAsic);
  EXPECT_LT(asic.total_power_uw(Mode::kSuper) * 100.0, kCommodityLoRaReceiverUw);
}

TEST(Harvester, AverageHarvestRate) {
  // 1 mJ per 25.4 s ~ 39.4 µW (§4.1).
  const EnergyHarvester h;
  EXPECT_NEAR(h.average_harvest_w() * 1e6, 39.37, 0.05);
}

TEST(Harvester, SeventeenMinuteClaimForCommodityReceiver) {
  // §1: a 40 mW commodity demodulation of a ~1 s packet needs ~17 min
  // of harvesting.
  const EnergyHarvester h;
  const double energy_j = 40e-3 * 1.0;
  EXPECT_NEAR(h.time_to_accumulate_s(energy_j) / 60.0, 17.0, 0.5);
}

TEST(Harvester, SaiyanAsicSustainable) {
  // 93.2 µW + 24 µW management is ~3x the harvest rate, so a 25 %
  // listening duty cycle is sustainable from storage.
  EnergyHarvester h;
  for (int i = 0; i < 1000; ++i) h.step(1.0, 0.0);  // charge for 1000 s
  EXPECT_TRUE(h.can_supply(93.2, 10.0));
}

TEST(Harvester, StepConservesEnergy) {
  HarvesterConfig cfg;
  cfg.storage_capacity_j = 1.0;
  EnergyHarvester h(cfg);
  h.step(100.0, 0.0);  // harvest only
  const double stored = h.stored_j();
  EXPECT_NEAR(stored, h.average_harvest_w() * 100.0, 1e-9);
  const double delivered = h.step(10.0, 1000.0);  // heavy load
  EXPECT_LE(delivered, stored + h.average_harvest_w() * 10.0 + 1e-12);
  EXPECT_GE(h.stored_j(), 0.0);
}

TEST(Harvester, StorageCapClamps) {
  HarvesterConfig cfg;
  cfg.storage_capacity_j = 1e-4;
  EnergyHarvester h(cfg);
  h.step(1e6, 0.0);
  EXPECT_NEAR(h.stored_j(), 1e-4, 1e-12);
}

TEST(Harvester, RejectsBadArguments) {
  HarvesterConfig bad;
  bad.harvest_energy_j = 0.0;
  EXPECT_THROW(EnergyHarvester{bad}, std::invalid_argument);
  EnergyHarvester h;
  EXPECT_THROW(h.step(-1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(h.step(1.0, -5.0), std::invalid_argument);
  EXPECT_THROW(h.time_to_accumulate_s(-1.0), std::invalid_argument);
}

TEST(PowerModel, ComponentNames) {
  EXPECT_EQ(component_name(Component::kSawFilter), "SAW");
  EXPECT_EQ(component_name(Component::kOscClock), "OSC Clock");
}

}  // namespace
}  // namespace saiyan::core
