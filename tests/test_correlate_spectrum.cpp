// Cross-correlation and spectral estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/correlate.hpp"
#include "dsp/nco.hpp"
#include "dsp/noise.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/utils.hpp"

namespace saiyan::dsp {
namespace {

TEST(Correlate, FindsEmbeddedTemplate) {
  Rng rng(1);
  Signal tmpl(64);
  for (Complex& v : tmpl) v = Complex(rng.gaussian(), rng.gaussian());
  Signal x(512, Complex{});
  const std::size_t offset = 200;
  for (std::size_t i = 0; i < tmpl.size(); ++i) x[offset + i] = tmpl[i] * 3.0;
  const CorrelationPeak pk = find_peak(x, std::span<const Complex>(tmpl));
  EXPECT_EQ(pk.lag, offset);
  EXPECT_NEAR(pk.normalized, 1.0, 1e-6);  // perfect scaled match
}

TEST(Correlate, NormalizedDropsWithNoise) {
  Rng rng(2);
  Signal tmpl(64);
  for (Complex& v : tmpl) v = Complex(rng.gaussian(), rng.gaussian());
  Signal x(512);
  for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  for (std::size_t i = 0; i < tmpl.size(); ++i) x[100 + i] += tmpl[i];
  const CorrelationPeak pk = find_peak(x, std::span<const Complex>(tmpl));
  EXPECT_LT(pk.normalized, 0.95);
  EXPECT_GT(pk.normalized, 0.3);
}

TEST(Correlate, ValidLagCount) {
  const Signal x(100, Complex(1.0, 0.0));
  const Signal t(30, Complex(1.0, 0.0));
  const RealSignal c = cross_correlate(x, std::span<const Complex>(t));
  EXPECT_EQ(c.size(), 71u);
}

TEST(Correlate, TemplateLongerThanSignalIsEmpty) {
  const Signal x(10, Complex(1.0, 0.0));
  const Signal t(30, Complex(1.0, 0.0));
  EXPECT_TRUE(cross_correlate(x, std::span<const Complex>(t)).empty());
}

TEST(Correlate, EmptyTemplateThrows) {
  const Signal x(10, Complex(1.0, 0.0));
  EXPECT_THROW(cross_correlate(x, std::span<const Complex>{}), std::invalid_argument);
}

TEST(Correlate, SignedDistinguishesPolarity) {
  RealSignal tmpl = {1.0, 1.0, -1.0, -1.0, 1.0, -1.0};
  RealSignal pos(32, 0.0);
  RealSignal neg(32, 0.0);
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    pos[10 + i] = tmpl[i];
    neg[10 + i] = -tmpl[i];
  }
  const RealSignal cp = cross_correlate_signed(pos, tmpl);
  const RealSignal cn = cross_correlate_signed(neg, tmpl);
  EXPECT_GT(cp[10], 5.9);
  EXPECT_LT(cn[10], -5.9);
}

TEST(PreparedTemplate, MatchesOneShotRealCorrelation) {
  Rng rng(11);
  RealSignal tmpl(100);
  for (double& v : tmpl) v = rng.gaussian();
  const PreparedTemplate prepared((std::span<const double>(tmpl)));
  for (std::size_t n : {100u, 333u, 1024u}) {
    RealSignal x(n);
    for (double& v : x) v = rng.gaussian();
    const RealSignal one_shot =
        cross_correlate(std::span<const double>(x), std::span<const double>(tmpl));
    const RealSignal reused = prepared.correlate(std::span<const double>(x));
    ASSERT_EQ(reused.size(), one_shot.size()) << "n=" << n;
    for (std::size_t i = 0; i < reused.size(); ++i) {
      EXPECT_NEAR(reused[i], one_shot[i], 1e-9 * (1.0 + std::abs(one_shot[i])))
          << "n=" << n << " lag " << i;
    }
    const RealSignal signed_one_shot = cross_correlate_signed(
        std::span<const double>(x), std::span<const double>(tmpl));
    const RealSignal signed_reused =
        prepared.correlate_signed(std::span<const double>(x));
    for (std::size_t i = 0; i < signed_reused.size(); ++i) {
      EXPECT_NEAR(signed_reused[i], signed_one_shot[i],
                  1e-9 * (1.0 + std::abs(signed_one_shot[i])));
    }
  }
}

TEST(PreparedTemplate, MatchesOneShotComplexCorrelation) {
  Rng rng(12);
  Signal tmpl(64);
  for (Complex& v : tmpl) v = Complex(rng.gaussian(), rng.gaussian());
  const PreparedTemplate prepared((std::span<const Complex>(tmpl)));
  Signal x(400);
  for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  const RealSignal one_shot =
      cross_correlate(std::span<const Complex>(x), std::span<const Complex>(tmpl));
  const RealSignal reused = prepared.correlate(std::span<const Complex>(x));
  ASSERT_EQ(reused.size(), one_shot.size());
  for (std::size_t i = 0; i < reused.size(); ++i) {
    EXPECT_NEAR(reused[i], one_shot[i], 1e-9 * (1.0 + std::abs(one_shot[i])));
  }
}

TEST(PreparedTemplate, FindPeakMatchesFreeFunction) {
  Rng rng(13);
  RealSignal tmpl(48);
  for (double& v : tmpl) v = rng.gaussian();
  RealSignal x(512, 0.0);
  for (double& v : x) v = 0.1 * rng.gaussian();
  for (std::size_t i = 0; i < tmpl.size(); ++i) x[300 + i] += 2.0 * tmpl[i];
  const CorrelationPeak free_pk =
      find_peak(std::span<const double>(x), std::span<const double>(tmpl));
  const PreparedTemplate prepared((std::span<const double>(tmpl)));
  const CorrelationPeak prep_pk = prepared.find_peak(std::span<const double>(x));
  EXPECT_EQ(prep_pk.lag, free_pk.lag);
  EXPECT_EQ(prep_pk.lag, 300u);
  EXPECT_NEAR(prep_pk.value, free_pk.value, 1e-9 * (1.0 + free_pk.value));
  EXPECT_NEAR(prep_pk.normalized, free_pk.normalized, 1e-9);
}

TEST(PreparedTemplate, ShortSignalAndEmptyTemplate) {
  RealSignal tmpl(30, 1.0);
  const PreparedTemplate prepared((std::span<const double>(tmpl)));
  RealSignal x(10, 1.0);
  EXPECT_TRUE(prepared.correlate(std::span<const double>(x)).empty());
  EXPECT_THROW(PreparedTemplate{std::span<const double>{}}, std::invalid_argument);
}

TEST(Spectrum, TonePeakAtCorrectFrequency) {
  const double fs = 4e6;
  const double f0 = 500e3;
  Nco nco(f0, fs);
  const RealSignal x = nco.cosine(1 << 16);
  EXPECT_NEAR(dominant_frequency(std::span<const double>(x), fs, 1e3), f0,
              fs / 1024.0);
}

TEST(Spectrum, ComplexPsdResolvesNegativeFrequency) {
  const double fs = 1e6;
  Nco nco(-200e3, fs);
  const Signal x = nco.tone(1 << 15);
  const Psd psd = welch_psd(std::span<const Complex>(x), fs, 1024);
  double best_f = 0.0;
  double best_p = -1e300;
  for (std::size_t i = 0; i < psd.frequency_hz.size(); ++i) {
    if (psd.power_dbm[i] > best_p) {
      best_p = psd.power_dbm[i];
      best_f = psd.frequency_hz[i];
    }
  }
  EXPECT_NEAR(best_f, -200e3, fs / 512.0);
}

TEST(Spectrum, PsdTotalPowerMatchesSignalPower) {
  Rng rng(3);
  const Signal x = complex_awgn(1 << 16, 1e-6, rng);
  const Psd psd = welch_psd(std::span<const Complex>(x), 1e6, 1024);
  double total = 0.0;
  for (double p : psd.power_dbm) total += dbm_to_watts(p);
  EXPECT_NEAR(total / 1e-6, 1.0, 0.15);
}

TEST(Spectrum, SnrEstimateTracksTrueSnr) {
  Rng rng(4);
  const double fs = 1e6;
  Nco nco(100e3, fs);
  RealSignal x = nco.cosine(1 << 16);
  // Signal power 0.5; white noise 40 dB down spread over the full
  // fs/2 = 500 kHz band. The estimator reports SNR against the noise
  // *inside the 20 kHz signal band*: 40 + 10 log10(500/20) = 54 dB.
  const RealSignal n = real_white_noise(x.size(), 0.5e-4, rng);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += n[i];
  const double snr = estimate_snr_db(std::span<const double>(x), fs, 90e3, 110e3);
  EXPECT_NEAR(snr, 54.0, 4.0);
}

TEST(Spectrum, SnrRejectsBadBand) {
  const RealSignal x(1024, 1.0);
  EXPECT_THROW(estimate_snr_db(std::span<const double>(x), 1e6, 200e3, 100e3),
               std::invalid_argument);
}

}  // namespace
}  // namespace saiyan::dsp
