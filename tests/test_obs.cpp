// Observability subsystem tests (ctest label: unit).
//
// Covers the flight-recorder contract end to end: log2 histogram
// bucket edges and interpolated quantiles, the per-thread trace ring
// (drop-and-count overwrite, torn-read-free snapshots, Chrome JSON
// shape and byte-budget trimming), ScopedTimer's histogram/timeline
// split, the Prometheus writer's exposition invariants, and — the
// load-bearing one — that attaching stage metrics and enabling
// tracing never changes what the streaming demodulator decodes.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "gateway/gateway_metrics.hpp"
#include "gateway/gateway_stats.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/prometheus.hpp"
#include "obs/stage_metrics.hpp"
#include "obs/trace_ring.hpp"
#include "sim/capture.hpp"
#include "stream/streaming_demod.hpp"

namespace saiyan {
namespace {

// ------------------------------------------------------------ histogram

TEST(LatencyHistogram, BucketEdgesArePowerOfTwoRanges) {
  using H = obs::LatencyHistogram;
  // Bucket 0 holds exactly {0}; bucket i >= 1 holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(H::bucket_lower_us(0), 0u);
  EXPECT_EQ(H::bucket_upper_us(0), 0u);
  EXPECT_EQ(H::bucket_lower_us(1), 1u);
  EXPECT_EQ(H::bucket_upper_us(1), 1u);
  EXPECT_EQ(H::bucket_lower_us(7), 64u);
  EXPECT_EQ(H::bucket_upper_us(7), 127u);
  // Edges tile the axis with no gap or overlap.
  for (std::size_t i = 1; i + 1 < H::kBuckets; ++i) {
    EXPECT_EQ(H::bucket_lower_us(i), H::bucket_upper_us(i - 1) + 1);
  }
  // The last bucket is open-ended.
  EXPECT_EQ(H::bucket_upper_us(H::kBuckets - 1), ~std::uint64_t{0});
}

TEST(LatencyHistogram, RecordLandsInBitWidthBucket) {
  obs::LatencyHistogram h;
  h.record(0);
  h.record(1);
  h.record(127);
  h.record(128);
  std::array<std::uint64_t, obs::LatencyHistogram::kBuckets> counts;
  h.snapshot_counts(counts);
  EXPECT_EQ(counts[0], 1u);  // 0
  EXPECT_EQ(counts[1], 1u);  // 1
  EXPECT_EQ(counts[7], 1u);  // 127 -> [64,127]
  EXPECT_EQ(counts[8], 1u);  // 128 -> [128,255]
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.sum_us(), 256u);
  EXPECT_EQ(h.max_us(), 128u);
}

TEST(LatencyHistogram, QuantileInterpolatesInsideBucket) {
  obs::LatencyHistogram h;
  // 100 samples all in bucket [64,127]: p0..p100 sweep the bucket
  // linearly instead of all collapsing onto the upper edge.
  for (int i = 0; i < 100; ++i) h.record(100);
  const std::uint64_t p50 = h.quantile_us(0.5);
  EXPECT_GE(p50, 64u);
  EXPECT_LE(p50, 127u);
  EXPECT_LT(h.quantile_us(0.01), h.quantile_us(0.99));
}

TEST(LatencyHistogram, QuantileEdgeCases) {
  obs::LatencyHistogram empty;
  EXPECT_EQ(empty.quantile_us(0.5), 0u);

  // All-zero samples: first bucket degenerates to its single edge.
  obs::LatencyHistogram zeros;
  for (int i = 0; i < 10; ++i) zeros.record(0);
  EXPECT_EQ(zeros.quantile_us(0.99), 0u);

  // A sample past the last finite edge clamps into the open-ended
  // bucket, which reports its lower edge instead of interpolating
  // toward infinity.
  obs::LatencyHistogram huge;
  huge.record(~std::uint64_t{0});
  EXPECT_EQ(huge.quantile_us(0.5),
            obs::LatencyHistogram::bucket_lower_us(
                obs::LatencyHistogram::kBuckets - 1));
  // Out-of-range q is clamped, not UB.
  EXPECT_EQ(huge.quantile_us(-1.0), huge.quantile_us(0.0));
  EXPECT_EQ(huge.quantile_us(2.0), huge.quantile_us(1.0));
}

TEST(LatencyHistogram, SaturationFlagCountsOpenEndedBucket) {
  // The open-ended bucket silently clamps quantiles to its lower edge
  // (previous test); saturated_count() is the operator-visible flag
  // that this clamping is happening.
  obs::LatencyHistogram h;
  EXPECT_EQ(h.saturated_count(), 0u);
  for (int i = 0; i < 100; ++i) h.record(100);
  EXPECT_EQ(h.saturated_count(), 0u);
  h.record(~std::uint64_t{0});
  h.record(obs::LatencyHistogram::bucket_lower_us(
      obs::LatencyHistogram::kBuckets - 1));
  EXPECT_EQ(h.saturated_count(), 2u);
  std::array<std::uint64_t, obs::LatencyHistogram::kBuckets> counts;
  h.snapshot_counts(counts);
  EXPECT_EQ(obs::LatencyHistogram::saturated_from_counts(counts), 2u);
}

TEST(StageMetrics, NamesAndRouting) {
  obs::StageMetrics m;
  m.record(obs::Stage::kScan, 5);
  m.record(obs::Stage::kDeliver, 7);
  EXPECT_EQ(m.histogram(obs::Stage::kScan).total(), 1u);
  EXPECT_EQ(m.histogram(obs::Stage::kDeliver).sum_us(), 7u);
  EXPECT_EQ(m.histogram(obs::Stage::kDecode).total(), 0u);
  EXPECT_STREQ(obs::to_string(obs::Stage::kScan), "scan");
  EXPECT_STREQ(obs::to_string(obs::Stage::kSicCancel), "sic_cancel");
  EXPECT_STREQ(obs::to_string(obs::Stage::kGapRealign), "gap_realign");
}

// Concurrent writers against one reader: the writer always records
// scan before decode, so any coherent view has scan >= decode.
TEST(StageMetrics, WaitFreeUnderConcurrentWriters) {
  obs::StageMetrics m;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) {
      m.record(obs::Stage::kScan, 3);
      m.record(obs::Stage::kDecode, 9);
    }
  });
  for (int i = 0; i < 20000; ++i) {
    ASSERT_GE(m.histogram(obs::Stage::kScan).total(),
              m.histogram(obs::Stage::kDecode).total());
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(m.histogram(obs::Stage::kScan).total(),
            m.histogram(obs::Stage::kDecode).total());
}

// ----------------------------------------------------------- trace ring

#if SAIYAN_TRACING

/// Every ring test starts from an empty registry and leaves tracing
/// disabled, so ordering between tests (and with the rest of the
/// binary) doesn't matter.
class TraceRing : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset_for_test();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset_for_test();
  }
};

TEST_F(TraceRing, RecordsEventsInOrder) {
  obs::set_thread_name("tester");
  obs::trace_begin("job");
  obs::trace_instant("tick");
  obs::trace_end("job");
  const auto snap = obs::snapshot_all();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].thread_name, "tester");
  EXPECT_TRUE(snap[0].alive);
  EXPECT_EQ(snap[0].dropped, 0u);
  ASSERT_EQ(snap[0].events.size(), 3u);
  EXPECT_EQ(snap[0].events[0].phase, 'B');
  EXPECT_EQ(snap[0].events[1].phase, 'i');
  EXPECT_EQ(snap[0].events[2].phase, 'E');
  EXPECT_STREQ(snap[0].events[1].name, "tick");
  EXPECT_LE(snap[0].events[0].ts_us, snap[0].events[2].ts_us);
}

TEST_F(TraceRing, DisabledEmissionIsInvisible) {
  obs::set_enabled(false);
  obs::trace_instant("ghost");
  obs::trace_begin("ghost");
  obs::trace_end("ghost");
  EXPECT_TRUE(obs::snapshot_all().empty());
  EXPECT_EQ(obs::events_dropped_total(), 0u);
}

TEST_F(TraceRing, OverflowDropsOldestAndCounts) {
  obs::set_thread_name("flood");
  constexpr int kEmit = 10000;  // > ring capacity
  for (int i = 0; i < kEmit; ++i) obs::trace_instant("e");
  const auto snap = obs::snapshot_all();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_GT(snap[0].dropped, 0u);
  EXPECT_LT(snap[0].events.size(), static_cast<std::size_t>(kEmit));
  EXPECT_GT(snap[0].events.size(), 0u);
  EXPECT_EQ(snap[0].dropped + snap[0].events.size(),
            static_cast<std::uint64_t>(kEmit));
  // The global counter tracks overwritten-ever; the snapshot's dropped
  // additionally counts the conservatively-discarded copy window.
  EXPECT_GT(obs::events_dropped_total(), 0u);
  EXPECT_LE(obs::events_dropped_total(), snap[0].dropped);
  // Surviving events are the newest, still in order.
  for (std::size_t i = 1; i < snap[0].events.size(); ++i) {
    EXPECT_LE(snap[0].events[i - 1].ts_us, snap[0].events[i].ts_us);
  }
}

TEST_F(TraceRing, DeadThreadRingSurvives) {
  std::thread t([] {
    obs::set_thread_name("shortlived");
    obs::trace_instant("from-the-grave");
  });
  t.join();
  const auto snap = obs::snapshot_all();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].thread_name, "shortlived");
  EXPECT_FALSE(snap[0].alive);
  ASSERT_EQ(snap[0].events.size(), 1u);
  EXPECT_STREQ(snap[0].events[0].name, "from-the-grave");
}

TEST_F(TraceRing, ScopedTimerFeedsHistogramAndTimeline) {
  obs::LatencyHistogram hist;
  obs::set_thread_name("timer");
  { obs::ScopedTimer t("span", &hist); }
  EXPECT_EQ(hist.total(), 1u);
  auto snap = obs::snapshot_all();
  ASSERT_EQ(snap.size(), 1u);
  ASSERT_EQ(snap[0].events.size(), 1u);
  EXPECT_EQ(snap[0].events[0].phase, 'X');
  EXPECT_STREQ(snap[0].events[0].name, "span");

  // Tracing off: the histogram still records, the timeline does not.
  obs::set_enabled(false);
  { obs::ScopedTimer t("dark", &hist); }
  obs::set_enabled(true);
  EXPECT_EQ(hist.total(), 2u);
  snap = obs::snapshot_all();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].events.size(), 1u);
}

TEST_F(TraceRing, ChromeJsonShape) {
  obs::set_thread_name("jsonthread");
  obs::trace_begin("work");
  obs::trace_instant("blip");
  obs::trace_end("work");
  { obs::ScopedTimer t("scoped"); }
  const std::string json = obs::chrome_trace_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"saiyan-gateway\""), std::string::npos);
  EXPECT_NE(json.find("\"jsonthread\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // Structurally valid: brackets and quotes balance.
  long depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(TraceRing, ChromeJsonHonorsByteBudget) {
  obs::set_thread_name("big");
  for (int i = 0; i < 4000; ++i) obs::trace_instant("event-with-a-name");
  const std::string full = obs::chrome_trace_json();
  const std::size_t budget = full.size() / 4;
  const std::string trimmed = obs::chrome_trace_json(budget);
  EXPECT_LE(trimmed.size(), budget);
  // Still valid JSON with the metadata intact.
  EXPECT_EQ(trimmed.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trimmed.find("\"saiyan-gateway\""), std::string::npos);
  long depth = 0;
  for (const char c : trimmed) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(TraceRing, JsonEscapesThreadNames) {
  obs::set_thread_name("quote\"back\\slash");
  obs::trace_instant("e");
  const std::string json = obs::chrome_trace_json();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

#endif  // SAIYAN_TRACING

// ----------------------------------------------------------- prometheus

TEST(Prometheus, WriterEmitsHeadersOncePerFamily) {
  obs::PromWriter w;
  w.family("saiyan_jobs_total", "Jobs.", "counter");
  w.sample("saiyan_jobs_total", "worker=\"0\"", std::uint64_t{3});
  w.family("saiyan_jobs_total", "Jobs.", "counter");  // dedup
  w.sample("saiyan_jobs_total", "worker=\"1\"", std::uint64_t{4});
  w.family("saiyan_uptime_seconds", "Uptime.", "gauge");
  w.sample("saiyan_uptime_seconds", "", 1.5);
  const std::string& out = w.str();
  std::size_t n = 0;
  for (std::size_t p = out.find("# HELP saiyan_jobs_total");
       p != std::string::npos;
       p = out.find("# HELP saiyan_jobs_total", p + 1)) {
    ++n;
  }
  EXPECT_EQ(n, 1u);
  EXPECT_NE(out.find("saiyan_jobs_total{worker=\"0\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("saiyan_jobs_total{worker=\"1\"} 4\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE saiyan_uptime_seconds gauge\n"),
            std::string::npos);
  EXPECT_NE(out.find("saiyan_uptime_seconds 1.5\n"), std::string::npos);
}

TEST(Prometheus, HistogramSeriesIsCumulativeAndEndsAtInf) {
  obs::LatencyHistogram h;
  h.record(0);
  h.record(100);
  h.record(100);
  std::array<std::uint64_t, obs::LatencyHistogram::kBuckets> counts;
  h.snapshot_counts(counts);
  obs::PromWriter w;
  w.family("saiyan_lat", "Latency.", "histogram");
  w.histogram("saiyan_lat", "stage=\"scan\"", counts, h.sum_us());
  const std::string& out = w.str();
  EXPECT_NE(out.find("saiyan_lat_bucket{stage=\"scan\",le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("saiyan_lat_bucket{stage=\"scan\",le=\"127\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("saiyan_lat_bucket{stage=\"scan\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("saiyan_lat_sum{stage=\"scan\"} 200\n"),
            std::string::npos);
  EXPECT_NE(out.find("saiyan_lat_count{stage=\"scan\"} 3\n"),
            std::string::npos);
  // Cumulative counts never decrease along the le series.
  std::uint64_t prev = 0;
  for (std::size_t p = out.find("_bucket{"); p != std::string::npos;
       p = out.find("_bucket{", p + 1)) {
    const std::size_t sp = out.rfind(' ', out.find('\n', p));
    const std::uint64_t v = std::stoull(out.substr(sp + 1));
    ASSERT_GE(v, prev);
    prev = v;
  }
}

// Golden-shape test of the full gateway exporter against a synthetic
// snapshot: every family the docs promise, well-formed exposition.
TEST(Prometheus, GatewayStatsExport) {
  gateway::GatewayStats s;
  s.workers = 2;
  s.jobs_done = 7;
  s.frames_decoded = 41;
  s.uptime_s = 2.5;
  s.per_worker.resize(2);
  s.per_worker[0].frames = 40;
  s.per_worker[0].jobs = 6;
  s.per_worker[1].frames = 1;
  s.per_worker[1].jobs = 1;
  s.latency_count = 3;
  s.latency_sum_us = 300;
  s.latency_buckets[7] = 3;  // three ~100us frames
  gateway::StageLatencySnapshot st;
  st.stage = "decode";
  st.count = 5;
  st.sum_us = 50;
  st.buckets[4] = 5;
  s.stages.push_back(st);
  s.ingest.chunks_ok = 11;

  const std::string out = gateway::to_prometheus(s);
  for (const char* needle :
       {"# TYPE saiyan_uptime_seconds gauge", "saiyan_uptime_seconds 2.5",
        "# TYPE saiyan_jobs_done_total counter", "saiyan_jobs_done_total 7",
        "saiyan_frames_decoded_total 41",
        "saiyan_ingest_events_total{kind=\"chunks_ok\"} 11",
        "# TYPE saiyan_frame_latency_microseconds histogram",
        "saiyan_frame_latency_microseconds_count 3",
        "saiyan_stage_latency_microseconds_bucket{stage=\"decode\",le=\"15\"} "
        "5",
        "saiyan_stage_latency_microseconds_count{stage=\"decode\"} 5",
        "saiyan_worker_frames_total{worker=\"0\"} 40",
        "saiyan_worker_jobs_total{worker=\"1\"} 1"}) {
    EXPECT_NE(out.find(needle), std::string::npos) << "missing: " << needle;
  }
  // Exposition-format line discipline: every line is a comment or
  // `name{labels} value`, and HELP/TYPE precede their family's samples.
  std::size_t pos = 0;
  std::string seen_type_for;
  while (pos < out.size()) {
    std::size_t eol = out.find('\n', pos);
    if (eol == std::string::npos) eol = out.size();
    const std::string line = out.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line.rfind("# ", 0) == 0) {
      ASSERT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string value = line.substr(sp + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(end, value.c_str() + value.size()) << line;
  }
}

// ------------------------------------------- decode is observation-free

// Attaching stage metrics and (when compiled in) enabling the trace
// ring must not change a single decoded symbol: observability reads
// the pipeline, never steers it.
TEST(ObservedDecode, BitIdenticalWithTracingOnAndOff) {
  sim::CaptureConfig cfg;
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  cfg.saiyan = core::SaiyanConfig::make(p, core::Mode::kSuper);
  cfg.payload_symbols = 12;
  cfg.packets_per_tag = 2;
  cfg.seed = 77;
  cfg.tag_rss_dbm = {-55.0, -58.0};
  const sim::Capture cap = sim::generate_capture(cfg);

  struct Decoded {
    std::vector<stream::DecodedPacket> packets;
    std::vector<std::uint32_t> symbols;
  };
  auto run = [&](bool observe) {
    obs::StageMetrics metrics;
    stream::StreamConfig sc;
    sc.saiyan = cfg.saiyan;
    sc.payload_symbols = cfg.payload_symbols;
    if (observe) sc.stage_metrics = &metrics;
    stream::StreamingDemodulator demod(sc);
    std::span<const dsp::Complex> rest(cap.samples);
    while (!rest.empty()) {
      const std::size_t take = std::min<std::size_t>(8192, rest.size());
      demod.push(rest.first(take));
      rest = rest.subspan(take);
    }
    demod.finish();
    Decoded out;
    for (const auto& pkt : demod.packets()) {
      out.packets.push_back(pkt);
      const auto syms = demod.symbols(pkt);
      out.symbols.insert(out.symbols.end(), syms.begin(), syms.end());
    }
    if (observe) {
      EXPECT_GT(metrics.histogram(obs::Stage::kScan).total(), 0u);
      EXPECT_GT(metrics.histogram(obs::Stage::kDecode).total(), 0u);
    }
    return out;
  };

  const Decoded plain = run(false);
#if SAIYAN_TRACING
  obs::reset_for_test();
  obs::set_enabled(true);
#endif
  const Decoded observed = run(true);
#if SAIYAN_TRACING
  obs::set_enabled(false);
  obs::reset_for_test();
#endif

  ASSERT_GT(plain.packets.size(), 0u);
  ASSERT_EQ(observed.packets.size(), plain.packets.size());
  EXPECT_EQ(observed.symbols, plain.symbols);
  for (std::size_t i = 0; i < plain.packets.size(); ++i) {
    EXPECT_EQ(observed.packets[i].packet_start, plain.packets[i].packet_start);
    EXPECT_EQ(observed.packets[i].payload_start,
              plain.packets[i].payload_start);
    EXPECT_EQ(observed.packets[i].n_symbols, plain.packets[i].n_symbols);
    EXPECT_EQ(observed.packets[i].collided, plain.packets[i].collided);
    EXPECT_EQ(observed.packets[i].sic_assisted, plain.packets[i].sic_assisted);
  }
}

}  // namespace
}  // namespace saiyan
