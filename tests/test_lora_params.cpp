// PhyParams validation and the derived quantities the paper's §2.3
// sampling-rate analysis (Table 1) is built on.
#include <gtest/gtest.h>

#include "lora/params.hpp"

namespace saiyan::lora {
namespace {

PhyParams base() {
  PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  return p;
}

TEST(PhyParams, ValidConfigurationPasses) {
  EXPECT_NO_THROW(base().validate());
}

TEST(PhyParams, RejectsBadSf) {
  PhyParams p = base();
  p.spreading_factor = 6;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.spreading_factor = 13;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(PhyParams, RejectsNonStandardBandwidth) {
  PhyParams p = base();
  p.bandwidth_hz = 200e3;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(PhyParams, RejectsBadK) {
  PhyParams p = base();
  p.bits_per_symbol = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.bits_per_symbol = 6;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(PhyParams, RejectsUndersampledFs) {
  PhyParams p = base();
  p.sample_rate_hz = 600e3;  // < 2*BW
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(PhyParams, ChipsAndSymbolDuration) {
  PhyParams p = base();
  EXPECT_EQ(p.chips(), 128u);
  EXPECT_NEAR(p.symbol_duration_s(), 256e-6, 1e-12);
  EXPECT_EQ(p.samples_per_symbol(), 1024u);
  p.spreading_factor = 12;
  p.bandwidth_hz = 125e3;
  EXPECT_NEAR(p.symbol_duration_s(), 32.768e-3, 1e-9);
}

TEST(PhyParams, DataRateMatchesPaperFormula) {
  // Data rate = K * BW / 2^SF (§2.3). SF7/BW500/K5 -> 19.53 Kbps,
  // the ceiling of Fig. 16(b).
  PhyParams p = base();
  p.bits_per_symbol = 5;
  EXPECT_NEAR(p.data_rate_bps(), 5.0 * 500e3 / 128.0, 1e-9);
  EXPECT_NEAR(p.data_rate_bps(), 19531.25, 1e-6);
  p.bits_per_symbol = 1;
  EXPECT_NEAR(p.data_rate_bps(), 3906.25, 1e-6);
}

// Table 1 theory row: required sampling rate 2·BW/2^(SF-K).
struct Tab1Case {
  int sf;
  int k;
  double theory_khz;
};

class Table1Theory : public ::testing::TestWithParam<Tab1Case> {};

TEST_P(Table1Theory, NyquistRateMatchesTable1) {
  PhyParams p = base();
  p.spreading_factor = GetParam().sf;
  p.bits_per_symbol = GetParam().k;
  EXPECT_NEAR(p.nyquist_sampling_rate_hz() / 1e3, GetParam().theory_khz,
              GetParam().theory_khz * 0.01);
}

// Spot checks against the paper's Table 1 (theory column, KHz).
INSTANTIATE_TEST_SUITE_P(
    PaperAnchors, Table1Theory,
    ::testing::Values(Tab1Case{7, 1, 15.6}, Tab1Case{8, 1, 7.8},
                      Tab1Case{12, 1, 0.49}, Tab1Case{7, 2, 31.2},
                      Tab1Case{9, 3, 15.6}, Tab1Case{7, 5, 250.0},
                      Tab1Case{12, 5, 7.8}, Tab1Case{10, 4, 15.6}));

TEST(PhyParams, PracticalRateIs1p6xNyquist) {
  const PhyParams p = base();
  EXPECT_NEAR(p.practical_sampling_rate_hz() / p.nyquist_sampling_rate_hz(), 1.6,
              1e-12);
}

TEST(FecRates, CodeRatesAndNames) {
  EXPECT_EQ(fec_code_rate(FecRate::kNone), 1.0);
  EXPECT_NEAR(fec_code_rate(FecRate::k4_5), 0.8, 1e-12);
  EXPECT_NEAR(fec_code_rate(FecRate::k4_8), 0.5, 1e-12);
  EXPECT_STREQ(fec_name(FecRate::k4_7), "4/7");
}

TEST(PhyParams, SymbolAlphabet) {
  PhyParams p = base();
  EXPECT_EQ(p.symbol_alphabet(), 4u);
  p.bits_per_symbol = 5;
  EXPECT_EQ(p.symbol_alphabet(), 32u);
}

}  // namespace
}  // namespace saiyan::lora
