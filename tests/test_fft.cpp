// FFT correctness: round trips, Parseval, tone localization, Bluestein
// arbitrary lengths.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <thread>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace saiyan::dsp {
namespace {

TEST(FftBasics, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(FftBasics, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1000));
}

TEST(FftBasics, RejectsEmpty) {
  Signal x;
  EXPECT_THROW(fft_inplace(x), std::invalid_argument);
  EXPECT_THROW(ifft_inplace(x), std::invalid_argument);
}

TEST(FftBasics, BinFrequencyMapping) {
  EXPECT_NEAR(bin_frequency(0, 8, 800.0), 0.0, 1e-12);
  EXPECT_NEAR(bin_frequency(1, 8, 800.0), 100.0, 1e-12);
  EXPECT_NEAR(bin_frequency(7, 8, 800.0), -100.0, 1e-12);
  EXPECT_NEAR(bin_frequency(4, 8, 800.0), -400.0, 1e-12);
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftOfFftIsIdentity) {
  const std::size_t n = GetParam();
  Rng rng(n);
  Signal x(n);
  for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  const Signal y = ifft(fft(x));
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-8) << "index " << i;
  }
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  Rng rng(n + 17);
  Signal x(n);
  for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  double time_energy = 0.0;
  for (const Complex& v : x) time_energy += std::norm(v);
  const Signal X = fft(x);
  double freq_energy = 0.0;
  for (const Complex& v : X) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-6 * std::max(1.0, time_energy));
}

// Mix of power-of-two and Bluestein (odd / prime / composite) sizes.
INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 8, 64, 1024, 3, 5, 12, 100, 351,
                                           997));

TEST(FftTone, LocalizesComplexExponential) {
  const std::size_t n = 256;
  const std::size_t k0 = 19;
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = kTwoPi * static_cast<double>(k0 * i) / static_cast<double>(n);
    x[i] = Complex(std::cos(ph), std::sin(ph));
  }
  const Signal X = fft(x);
  std::size_t best = 0;
  double best_mag = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    if (std::abs(X[k]) > best_mag) {
      best_mag = std::abs(X[k]);
      best = k;
    }
  }
  EXPECT_EQ(best, k0);
  EXPECT_NEAR(best_mag, static_cast<double>(n), 1e-6);
}

TEST(FftLinearity, FftOfSumIsSumOfFfts) {
  Rng rng(5);
  Signal a(128), b(128), s(128);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = Complex(rng.gaussian(), rng.gaussian());
    b[i] = Complex(rng.gaussian(), rng.gaussian());
    s[i] = a[i] + b[i];
  }
  const Signal fa = fft(a);
  const Signal fb = fft(b);
  const Signal fs = fft(s);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(std::abs(fs[i] - (fa[i] + fb[i])), 0.0, 1e-8);
  }
}

// Brute-force DFT bin for regression checks.
Complex naive_dft_bin(const Signal& x, std::size_t k) {
  Complex acc{};
  const double w = -kTwoPi * static_cast<double>(k) / static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ph = w * static_cast<double>(i);
    acc += x[i] * Complex(std::cos(ph), std::sin(ph));
  }
  return acc;
}

TEST(FftBasics, NextPow2OverflowGuard) {
  const std::size_t top = std::numeric_limits<std::size_t>::max() / 2 + 1;
  EXPECT_EQ(next_pow2(top), top);  // 2^63 itself is representable
  EXPECT_THROW(next_pow2(top + 1), std::overflow_error);
  EXPECT_THROW(next_pow2(std::numeric_limits<std::size_t>::max()),
               std::overflow_error);
}

// The seed implementation generated stage twiddles with the recurrence
// w *= wlen, which accumulates rounding error over long stages; the
// plan's precomputed tables must track a brute-force DFT tightly even
// at n = 65536 (sampled bins — the full O(n^2) check is done at 1536).
TEST(FftPrecision, MatchesNaiveDftAt1536) {
  const std::size_t n = 1536;  // 3·2^9: exercises the radix-3 split path
  Rng rng(42);
  Signal x(n);
  for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  const Signal X = fft(x);
  double rms = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    rms += std::norm(X[k] - naive_dft_bin(x, k));
  }
  rms = std::sqrt(rms / static_cast<double>(n));
  EXPECT_LT(rms, 1e-8 * std::sqrt(static_cast<double>(n)));
}

TEST(FftPrecision, MatchesNaiveDftAt65536SampledBins) {
  const std::size_t n = 65536;
  Rng rng(43);
  Signal x(n);
  for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  const Signal X = fft(x);
  // A spread of bins including DC, Nyquist and awkward odd indices.
  const std::size_t bins[] = {0, 1, 2, 3, 777, 4097, 21211, 32768, 50001, 65535};
  for (std::size_t k : bins) {
    const Complex want = naive_dft_bin(x, k);
    EXPECT_NEAR(std::abs(X[k] - want), 0.0, 2e-7) << "bin " << k;
  }
}

TEST(FftPlanCache, SharedPlanMatchesFreshPlan) {
  // The cached plan must produce exactly what an uncached (freshly
  // constructed) plan produces, and repeated lookups must return the
  // same shared instance.
  for (std::size_t n : {64u, 100u, 1024u}) {
    Rng rng(n);
    Signal x(n);
    for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
    Signal via_cache = x;
    fft_plan(n)->forward(via_cache);
    Signal via_fresh = x;
    const FftPlan fresh(n);
    fresh.forward(via_fresh);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(via_cache[i], via_fresh[i]) << "n=" << n << " bin " << i;
    }
    EXPECT_EQ(fft_plan(n).get(), fft_plan(n).get());
  }
}

TEST(FftRealInput, PackedRealTransformMatchesComplex) {
  for (std::size_t n : {4u, 64u, 1024u}) {
    Rng rng(n + 5);
    RealSignal x(n - 3);  // shorter than the plan: zero-padded
    for (double& v : x) v = rng.gaussian();
    Signal via_real;
    fft_plan(n)->forward_real(std::span<const double>(x), via_real);
    Signal via_complex(n, Complex{});
    for (std::size_t i = 0; i < x.size(); ++i) via_complex[i] = Complex(x[i], 0.0);
    fft_plan(n)->forward(via_complex);
    ASSERT_EQ(via_real.size(), n);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(std::abs(via_real[k] - via_complex[k]), 0.0, 1e-10)
          << "n=" << n << " bin " << k;
    }
  }
}

TEST(FftBasics, NextFastLen) {
  EXPECT_EQ(next_fast_len(0), 1u);
  EXPECT_EQ(next_fast_len(1), 1u);
  EXPECT_EQ(next_fast_len(2), 2u);
  EXPECT_EQ(next_fast_len(3), 3u);    // 3·2^0, planned directly
  EXPECT_EQ(next_fast_len(4), 4u);
  EXPECT_EQ(next_fast_len(5), 6u);    // 3·2^1 beats 8
  EXPECT_EQ(next_fast_len(1025), 1536u);
  EXPECT_EQ(next_fast_len(1537), 2048u);
  // The packet-waveform case from the ROADMAP: ~45k samples pad to
  // 49152 = 3·2^14 instead of 65536.
  EXPECT_EQ(next_fast_len(45000), 49152u);
  EXPECT_EQ(next_fast_len(49152), 49152u);
  EXPECT_EQ(next_fast_len(49153), 65536u);
}

// Full O(n²) check of the radix-3 split at small sizes, including the
// degenerate m = 1 sub-transform (n = 3).
TEST(FftRadix3, MatchesNaiveDftAtSmallSizes) {
  for (std::size_t n : {3u, 6u, 12u, 48u, 96u}) {
    Rng rng(n + 17);
    Signal x(n);
    for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
    const Signal X = fft(x);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(std::abs(X[k] - naive_dft_bin(x, k)), 0.0, 1e-9)
          << "n=" << n << " bin " << k;
    }
  }
}

TEST(FftRadix3, RoundTripAtPacketLength) {
  // The SAW filter's packet transform length (49152 = 3·2^14).
  const std::size_t n = 49152;
  Rng rng(3);
  Signal x(n);
  for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  Signal y = x;
  Signal scratch;
  const auto plan = fft_plan(n);
  plan->forward(y, scratch);
  plan->inverse(y, scratch);
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_err = std::max(max_err, std::abs(y[i] - x[i]));
  }
  EXPECT_LT(max_err, 1e-9);
}

TEST(FftRadix3, ExternalAndInternalScratchAgree) {
  const std::size_t n = 1536;
  Rng rng(8);
  Signal x(n);
  for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  Signal a = x;
  fft_plan(n)->forward(a);  // internal scratch
  Signal b = x;
  Signal scratch;
  fft_plan(n)->forward(b, scratch);  // caller-owned scratch
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a[i], b[i]) << "bin " << i;
  }
}

TEST(FftRadix3, SimdDeinterleaveBitIdenticalToScalarAtAllTailLengths) {
  // m odd/even exercises both tails of the two-at-a-time AVX2 loop;
  // tiny m exercises the all-tail case.
  for (std::size_t m : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 31u, 33u, 64u}) {
    Rng rng(m + 5);
    Signal x(3 * m);
    for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
    Signal scalar(3 * m), avx2(3 * m);
    detail::radix3_deinterleave_scalar(x.data(), scalar.data(), m);
    if (!detail::radix3_deinterleave_avx2(x.data(), avx2.data(), m)) {
      GTEST_SKIP() << "no AVX2+FMA host";
    }
    for (std::size_t i = 0; i < 3 * m; ++i) {
      EXPECT_EQ(scalar[i].real(), avx2[i].real()) << "m=" << m << " i=" << i;
      EXPECT_EQ(scalar[i].imag(), avx2[i].imag()) << "m=" << m << " i=" << i;
    }
  }
}

TEST(FftRadix3, SimdCombineBitIdenticalToScalarAtAllTailLengths) {
  // The AVX2 combine deliberately avoids FMA contraction so its
  // spectra are bit-identical to the portable build — the streaming
  // and batch decode equivalences depend on this.
  for (std::size_t m : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 31u, 33u, 64u}) {
    Rng rng(m + 11);
    Signal sub(3 * m);
    for (Complex& v : sub) v = Complex(rng.gaussian(), rng.gaussian());
    std::vector<Complex> tw(2 * m);
    const std::size_t n = 3 * m;
    for (std::size_t k = 0; k < m; ++k) {
      const double a1 = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
      const double a2 =
          -kTwoPi * static_cast<double>(2 * k % n) / static_cast<double>(n);
      tw[2 * k] = Complex(std::cos(a1), std::sin(a1));
      tw[2 * k + 1] = Complex(std::cos(a2), std::sin(a2));
    }
    for (bool inverse : {false, true}) {
      Signal scalar(3 * m), avx2(3 * m);
      detail::radix3_combine_scalar(scalar.data(), sub.data(), tw.data(), m,
                                    inverse);
      if (!detail::radix3_combine_avx2(avx2.data(), sub.data(), tw.data(), m,
                                       inverse)) {
        GTEST_SKIP() << "no AVX2+FMA host";
      }
      for (std::size_t i = 0; i < 3 * m; ++i) {
        EXPECT_EQ(scalar[i].real(), avx2[i].real())
            << "m=" << m << " inv=" << inverse << " i=" << i;
        EXPECT_EQ(scalar[i].imag(), avx2[i].imag())
            << "m=" << m << " inv=" << inverse << " i=" << i;
      }
    }
  }
}

TEST(FftRealInput, ScratchOverloadMatchesAllocatingPath) {
  Rng rng(21);
  RealSignal x(1000);
  for (double& v : x) v = rng.gaussian();
  const auto plan = fft_plan(2048);
  Signal a, b, scratch;
  plan->forward_real(x, a);
  plan->forward_real(x, b, scratch);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].real(), b[i].real()) << "bin " << i;
    EXPECT_EQ(a[i].imag(), b[i].imag()) << "bin " << i;
  }
}

TEST(FftPlanCache, ConcurrentLookupsReturnOneInstance) {
  // The shared-lock read path must serve concurrent workers one
  // consistent plan per length (the SweepEngine steady state).
  const std::size_t lengths[] = {256, 384, 512, 768, 1000};
  std::vector<std::thread> pool;
  std::vector<const FftPlan*> seen(4 * std::size(lengths), nullptr);
  for (unsigned t = 0; t < 4; ++t) {
    pool.emplace_back([t, &lengths, &seen]() {
      for (int rep = 0; rep < 200; ++rep) {
        for (std::size_t i = 0; i < std::size(lengths); ++i) {
          const auto plan = fft_plan(lengths[i]);
          seen[t * std::size(lengths) + i] = plan.get();
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (std::size_t i = 0; i < std::size(lengths); ++i) {
    for (unsigned t = 1; t < 4; ++t) {
      EXPECT_EQ(seen[i], seen[t * std::size(lengths) + i]);
    }
  }
}

TEST(FftBluestein, MatchesRadix2OnPaddableSignal) {
  // Compare a 30-point Bluestein DFT against a brute-force DFT.
  Rng rng(9);
  Signal x(30);
  for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  const Signal X = fft(x);
  for (std::size_t k = 0; k < x.size(); ++k) {
    Complex acc{};
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double ph = -kTwoPi * static_cast<double>(k * i) / 30.0;
      acc += x[i] * Complex(std::cos(ph), std::sin(ph));
    }
    EXPECT_NEAR(std::abs(X[k] - acc), 0.0, 1e-7) << "bin " << k;
  }
}

}  // namespace
}  // namespace saiyan::dsp
