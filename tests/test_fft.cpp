// FFT correctness: round trips, Parseval, tone localization, Bluestein
// arbitrary lengths.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace saiyan::dsp {
namespace {

TEST(FftBasics, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(FftBasics, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1000));
}

TEST(FftBasics, RejectsEmpty) {
  Signal x;
  EXPECT_THROW(fft_inplace(x), std::invalid_argument);
  EXPECT_THROW(ifft_inplace(x), std::invalid_argument);
}

TEST(FftBasics, BinFrequencyMapping) {
  EXPECT_NEAR(bin_frequency(0, 8, 800.0), 0.0, 1e-12);
  EXPECT_NEAR(bin_frequency(1, 8, 800.0), 100.0, 1e-12);
  EXPECT_NEAR(bin_frequency(7, 8, 800.0), -100.0, 1e-12);
  EXPECT_NEAR(bin_frequency(4, 8, 800.0), -400.0, 1e-12);
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftOfFftIsIdentity) {
  const std::size_t n = GetParam();
  Rng rng(n);
  Signal x(n);
  for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  const Signal y = ifft(fft(x));
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-8) << "index " << i;
  }
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  Rng rng(n + 17);
  Signal x(n);
  for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  double time_energy = 0.0;
  for (const Complex& v : x) time_energy += std::norm(v);
  const Signal X = fft(x);
  double freq_energy = 0.0;
  for (const Complex& v : X) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-6 * std::max(1.0, time_energy));
}

// Mix of power-of-two and Bluestein (odd / prime / composite) sizes.
INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 8, 64, 1024, 3, 5, 12, 100, 351,
                                           997));

TEST(FftTone, LocalizesComplexExponential) {
  const std::size_t n = 256;
  const std::size_t k0 = 19;
  Signal x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = kTwoPi * static_cast<double>(k0 * i) / static_cast<double>(n);
    x[i] = Complex(std::cos(ph), std::sin(ph));
  }
  const Signal X = fft(x);
  std::size_t best = 0;
  double best_mag = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    if (std::abs(X[k]) > best_mag) {
      best_mag = std::abs(X[k]);
      best = k;
    }
  }
  EXPECT_EQ(best, k0);
  EXPECT_NEAR(best_mag, static_cast<double>(n), 1e-6);
}

TEST(FftLinearity, FftOfSumIsSumOfFfts) {
  Rng rng(5);
  Signal a(128), b(128), s(128);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = Complex(rng.gaussian(), rng.gaussian());
    b[i] = Complex(rng.gaussian(), rng.gaussian());
    s[i] = a[i] + b[i];
  }
  const Signal fa = fft(a);
  const Signal fb = fft(b);
  const Signal fs = fft(s);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(std::abs(fs[i] - (fa[i] + fb[i])), 0.0, 1e-8);
  }
}

TEST(FftBluestein, MatchesRadix2OnPaddableSignal) {
  // Compare a 30-point Bluestein DFT against a brute-force DFT.
  Rng rng(9);
  Signal x(30);
  for (Complex& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  const Signal X = fft(x);
  for (std::size_t k = 0; k < x.size(); ++k) {
    Complex acc{};
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double ph = -kTwoPi * static_cast<double>(k * i) / 30.0;
      acc += x[i] * Complex(std::cos(ph), std::sin(ph));
    }
    EXPECT_NEAR(std::abs(X[k] - acc), 0.0, 1e-7) << "bin " << k;
  }
}

}  // namespace
}  // namespace saiyan::dsp
