// MAC layer: frame addressing, slotted ALOHA, feedback controller,
// tag state machine, and the §5.3 case-study simulations.
#include <gtest/gtest.h>

#include "mac/feedback_controller.hpp"
#include "mac/frames.hpp"
#include "mac/network_sim.hpp"
#include "mac/slotted_aloha.hpp"
#include "mac/tag.hpp"

namespace saiyan::mac {
namespace {

lora::PhyParams phy(int k = 2) {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = k;
  return p;
}

TEST(Frames, UnicastAddressing) {
  DownlinkFrame f;
  f.type = DownlinkType::kUnicast;
  f.target = 7;
  EXPECT_TRUE(f.addressed_to(7));
  EXPECT_FALSE(f.addressed_to(8));
}

TEST(Frames, MulticastAddressing) {
  DownlinkFrame f;
  f.type = DownlinkType::kMulticast;
  f.group = {1, 3, 5};
  EXPECT_TRUE(f.addressed_to(3));
  EXPECT_FALSE(f.addressed_to(2));
}

TEST(Frames, BroadcastReachesEveryone) {
  DownlinkFrame f;
  f.type = DownlinkType::kBroadcast;
  for (TagId t : {TagId{1}, TagId{100}, TagId{65000}}) {
    EXPECT_TRUE(f.addressed_to(t));
  }
}

TEST(Frames, CommandNames) {
  EXPECT_STREQ(command_name(Command::kRetransmit), "retransmit");
  EXPECT_STREQ(command_name(Command::kChannelHop), "channel-hop");
}

TEST(Aloha, AllTagsAssignedExactlyOnce) {
  dsp::Rng rng(1);
  const std::vector<TagId> tags = {1, 2, 3, 4, 5};
  const auto outcomes = run_aloha_round(tags, 8, rng);
  std::size_t assigned = 0;
  for (const auto& o : outcomes) assigned += o.transmitters.size();
  EXPECT_EQ(assigned, tags.size());
  EXPECT_EQ(outcomes.size(), 8u);
}

TEST(Aloha, CollisionFlagsConsistent) {
  dsp::Rng rng(2);
  const std::vector<TagId> tags = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto outcomes = run_aloha_round(tags, 4, rng);
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.collision, o.transmitters.size() > 1);
    EXPECT_EQ(o.idle, o.transmitters.empty());
  }
}

TEST(Aloha, EmpiricalMatchesExpectedSuccess) {
  // Monte Carlo success rate converges to (1 - 1/k)^(n-1).
  const std::size_t n_tags = 3;
  const std::size_t n_slots = 8;
  const double expect = aloha_expected_success(n_tags, n_slots);
  const double measured = multicast_ack_success(n_tags, n_slots, 4000);
  EXPECT_NEAR(measured, expect, 0.02);
}

TEST(Aloha, MoreSlotsFewerCollisions) {
  const double few = multicast_ack_success(5, 4, 2000);
  const double many = multicast_ack_success(5, 32, 2000);
  EXPECT_GT(many, few);
}

TEST(Aloha, RejectsZeroSlots) {
  dsp::Rng rng(3);
  EXPECT_THROW(run_aloha_round({1, 2}, 0, rng), std::invalid_argument);
}

TEST(Controller, RequestsRetransmissionOnLoss) {
  sim::BerModel model;
  channel::LinkBudget link;
  FeedbackController ctl(model, link);
  const auto frame = ctl.on_uplink(5, 42, /*received=*/false);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->command, Command::kRetransmit);
  EXPECT_EQ(frame->target, 5);
  EXPECT_EQ(frame->param, 42u);
  EXPECT_EQ(ctl.retransmissions_requested(), 1u);
}

TEST(Controller, AcksSuccessfulUplink) {
  sim::BerModel model;
  channel::LinkBudget link;
  FeedbackController ctl(model, link);
  const auto frame = ctl.on_uplink(5, 42, /*received=*/true);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->command, Command::kAckData);
  EXPECT_EQ(ctl.retransmissions_requested(), 0u);
}

TEST(Controller, HopsOnlyBelowThreshold) {
  sim::BerModel model;
  channel::LinkBudget link;
  FeedbackController ctl(model, link);
  EXPECT_FALSE(ctl.on_channel_quality(1, 0.9, 0).has_value());
  const auto hop = ctl.on_channel_quality(1, 0.3, 0);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->command, Command::kChannelHop);
  EXPECT_EQ(hop->param, 1u);
  EXPECT_EQ(ctl.hops_commanded(), 1u);
}

TEST(Controller, RateAdaptationPrefersHighKUpClose) {
  sim::BerModel model;
  channel::LinkBudget link;
  FeedbackController ctl(model, link);
  const RateDecision near = ctl.best_rate(10.0, phy(), core::Mode::kSuper);
  const RateDecision far = ctl.best_rate(140.0, phy(), core::Mode::kSuper);
  EXPECT_EQ(near.bits_per_symbol, 5);       // max throughput up close
  EXPECT_LT(far.bits_per_symbol, 5);        // robustness wins far out
  EXPECT_GT(near.expected_throughput_bps, far.expected_throughput_bps);
}

TEST(Tag, ActsOnCommands) {
  sim::BerModel model;
  channel::LinkBudget link;
  TagConfig cfg;
  cfg.id = 3;
  cfg.distance_m = 10.0;  // essentially perfect downlink
  cfg.phy = phy();
  Tag tag(cfg, model, link);
  dsp::Rng rng(4);

  DownlinkFrame hop;
  hop.type = DownlinkType::kUnicast;
  hop.target = 3;
  hop.command = Command::kChannelHop;
  hop.param = 2;
  EXPECT_TRUE(tag.receive_downlink(hop, rng));
  EXPECT_EQ(tag.channel(), 2);

  DownlinkFrame rate;
  rate.type = DownlinkType::kUnicast;
  rate.target = 3;
  rate.command = Command::kRateAdapt;
  rate.param = 4;
  EXPECT_TRUE(tag.receive_downlink(rate, rng));
  EXPECT_EQ(tag.bits_per_symbol(), 4);

  DownlinkFrame off;
  off.type = DownlinkType::kBroadcast;
  off.command = Command::kSensorOff;
  EXPECT_TRUE(tag.receive_downlink(off, rng));
  EXPECT_FALSE(tag.sensor_on());
}

TEST(Tag, RetransmitJumpsQueue) {
  sim::BerModel model;
  channel::LinkBudget link;
  TagConfig cfg;
  cfg.id = 1;
  cfg.distance_m = 10.0;
  cfg.phy = phy();
  Tag tag(cfg, model, link);
  dsp::Rng rng(5);
  tag.enqueue_data(100);
  DownlinkFrame retx;
  retx.type = DownlinkType::kUnicast;
  retx.target = 1;
  retx.command = Command::kRetransmit;
  retx.param = 99;
  ASSERT_TRUE(tag.receive_downlink(retx, rng));
  const auto first = tag.next_uplink();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->sequence, 99u);  // retransmission first
  EXPECT_EQ(tag.next_uplink()->sequence, 100u);
}

TEST(Tag, WithoutSaiyanHearsNothing) {
  sim::BerModel model;
  channel::LinkBudget link;
  TagConfig cfg;
  cfg.has_saiyan = false;
  cfg.distance_m = 1.0;
  cfg.phy = phy();
  Tag tag(cfg, model, link);
  dsp::Rng rng(6);
  DownlinkFrame f;
  f.type = DownlinkType::kBroadcast;
  f.command = Command::kSensorOff;
  EXPECT_FALSE(tag.receive_downlink(f, rng));
  EXPECT_EQ(tag.downlink_success_probability(), 0.0);
}

TEST(Tag, IgnoresFramesForOthers) {
  sim::BerModel model;
  channel::LinkBudget link;
  TagConfig cfg;
  cfg.id = 1;
  cfg.distance_m = 5.0;
  cfg.phy = phy();
  Tag tag(cfg, model, link);
  dsp::Rng rng(7);
  DownlinkFrame f;
  f.type = DownlinkType::kUnicast;
  f.target = 2;
  f.command = Command::kSensorOff;
  EXPECT_FALSE(tag.receive_downlink(f, rng));
  EXPECT_TRUE(tag.sensor_on());
}

TEST(CaseStudy, RetransmissionLiftsPrrLikeFig26) {
  // Fig. 26: Aloba 45.6 % -> ~70 % (1 retx) -> ~83 % (2) -> ~95 % (3);
  // PLoRa 81.8 % -> ~97 % (1).
  RetransmissionStudyConfig aloba;
  aloba.base_prr = 0.456;
  aloba.n_packets = 20000;
  aloba.max_retransmissions = 0;
  const double p0 = retransmission_prr(aloba);
  aloba.max_retransmissions = 1;
  const double p1 = retransmission_prr(aloba);
  aloba.max_retransmissions = 2;
  const double p2 = retransmission_prr(aloba);
  aloba.max_retransmissions = 3;
  const double p3 = retransmission_prr(aloba);
  EXPECT_NEAR(p0, 0.456, 0.02);
  EXPECT_NEAR(p1, 0.70, 0.03);
  EXPECT_NEAR(p2, 0.83, 0.03);
  EXPECT_NEAR(p3, 0.91, 0.03);
  EXPECT_LT(p0, p1);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
}

TEST(CaseStudy, NoSaiyanNoRetransmissionBenefit) {
  RetransmissionStudyConfig cfg;
  cfg.base_prr = 0.5;
  cfg.max_retransmissions = 3;
  cfg.tag_has_saiyan = false;
  cfg.n_packets = 10000;
  EXPECT_NEAR(retransmission_prr(cfg), 0.5, 0.02);
}

TEST(CaseStudy, ChannelHoppingLiftsMedianPrr) {
  // Fig. 27: median PRR grows from ~47 % to ~92 % after the hop.
  ChannelHoppingStudyConfig jammed;
  jammed.hopping_enabled = false;
  const ChannelHoppingResult before = channel_hopping_study(jammed);
  ChannelHoppingStudyConfig hopping;
  hopping.hopping_enabled = true;
  const ChannelHoppingResult after = channel_hopping_study(hopping);
  EXPECT_NEAR(before.prr_cdf.median(), 0.45, 0.08);
  EXPECT_GT(after.prr_cdf.median(), 0.88);
  EXPECT_GE(after.hops, 1u);
  EXPECT_EQ(before.hops, 0u);
}

}  // namespace
}  // namespace saiyan::mac
