// Impairment-tolerant ingest: the fault matrix.
//
// Each impairment class the fault subsystem can inject is driven
// through the full ingest path (TraceReader → StreamingDemodulator →
// score against ground truth) and must land in exactly one of two
// outcomes:
//
//   * recovery — the replay resynchronizes and every frame outside
//     the damaged region decodes bit-identically to the clean run
//     (offset-keyed decode seeds make the comparison exact), or
//   * detection — the damage is counted in the matching IngestStats
//     counter / error class.
//
// Silent corruption — wrong symbols with clean stats — is the one
// forbidden outcome, with a documented exception: record *reordering*
// preserves both CRCs and the total sample count, so it is only
// visible as symbol errors or missed markers downstream (asserted
// here as such).
//
// Also covered: truncation at every byte offset (v1 and v2), the
// deterministic fault injector itself, SIC load shedding under
// backlog, and TraceWriter's nothrow close-failure reporting.
#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "lora/modulator.hpp"
#include "sim/capture.hpp"
#include "stream/streaming_demod.hpp"
#include "stream/trace.hpp"

namespace saiyan {
namespace {

lora::PhyParams phy() {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  return p;
}

constexpr std::size_t kPayload = 8;
constexpr std::size_t kChunkSamples = 2048;

/// Two well-separated frames with a long idle gap between them — the
/// controlled canvas for surgical corruption: damage can be placed
/// entirely inside the idle gap (recovery must be bit-identical) or
/// inside one frame (only that frame may degrade).
const sim::CaptureConfig& two_frame_cfg() {
  static const sim::CaptureConfig cfg = [] {
    sim::CaptureConfig c;
    c.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
    c.tag_rss_dbm = {-40.0, -45.0};
    c.payload_symbols = kPayload;
    c.seed = 42;
    c.offsets = {1000, 60000};
    return c;
  }();
  return cfg;
}

const sim::Capture& two_frame_capture() {
  static const sim::Capture cap = sim::generate_capture(two_frame_cfg());
  return cap;
}

sim::ReplayConfig recover_cfg() {
  sim::ReplayConfig rc;
  rc.resync = true;
  rc.seed_by_offset = true;
  return rc;
}

/// Sample offset of each chunk record in a trace (chunk k starts at
/// the sum of the earlier chunks' sample counts).
std::vector<std::uint64_t> chunk_sample_starts(const fault::TraceLayout& lay) {
  std::vector<std::uint64_t> starts;
  starts.reserve(lay.chunks.size());
  std::uint64_t acc = 0;
  for (const fault::ChunkRecordInfo& c : lay.chunks) {
    starts.push_back(acc);
    acc += c.n_samples;
  }
  return starts;
}

/// Index of a chunk whose samples lie entirely inside [lo, hi).
std::size_t chunk_inside(const fault::TraceLayout& lay, std::uint64_t lo,
                         std::uint64_t hi) {
  const std::vector<std::uint64_t> starts = chunk_sample_starts(lay);
  for (std::size_t k = 0; k < lay.chunks.size(); ++k) {
    if (starts[k] >= lo && starts[k] + lay.chunks[k].n_samples <= hi) return k;
  }
  ADD_FAILURE() << "no chunk inside [" << lo << ", " << hi << ")";
  return 0;
}

std::uint64_t frame_samples() {
  static const std::uint64_t n =
      lora::Modulator(phy()).layout(kPayload).total_samples;
  return n;
}

class FaultFile : public ::testing::Test {
 protected:
  void SetUp() override {
    std::snprintf(path_, sizeof(path_), "saiyan_fault_%s_%d.sytrc",
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name(),
                  static_cast<int>(::getpid()));
  }
  void TearDown() override { std::remove(path_); }

  /// Write the two-frame capture, apply `mutate` to its bytes, write
  /// the result back to path_, and return the trace layout of the
  /// *clean* bytes (for locating chunks).
  template <typename Fn>
  fault::TraceLayout prepare(Fn&& mutate) {
    sim::write_capture(two_frame_capture(), two_frame_cfg(), path_,
                       kChunkSamples);
    const std::string clean = fault::read_file(path_);
    fault::write_file(path_, mutate(clean));
    return fault::parse_trace_layout(clean);
  }

  char path_[128];
};

// ------------------------------------------------------ IngestStats

TEST(IngestStats, CountersMergeAndNames) {
  stream::IngestStats a;
  EXPECT_TRUE(a.clean());
  a.count(stream::IngestError::kChunkCrc);
  a.count(stream::IngestError::kChunkCrc);
  a.count(stream::IngestError::kTotalMismatch);
  EXPECT_EQ(a.error_count(stream::IngestError::kChunkCrc), 2u);
  EXPECT_EQ(a.total_errors(), 3u);
  EXPECT_EQ(a.last_error, stream::IngestError::kTotalMismatch);
  EXPECT_FALSE(a.clean());

  stream::IngestStats b;
  b.resyncs = 1;
  b.count(stream::IngestError::kChunkHeader);
  a.merge(b);
  EXPECT_EQ(a.resyncs, 1u);
  EXPECT_EQ(a.total_errors(), 4u);
  EXPECT_EQ(a.last_error, stream::IngestError::kChunkHeader);

  for (std::size_t e = 0;
       e < static_cast<std::size_t>(stream::IngestError::kCount); ++e) {
    const char* name = to_string(static_cast<stream::IngestError>(e));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "invalid");
  }
}

// ------------------------------------------- reader-level recovery

TEST_F(FaultFile, StrictReaderWedgesAtFirstCorruptChunk) {
  const fault::TraceLayout lay = prepare([](const std::string& clean) {
    return fault::flip_chunk_bit(clean, 3);
  });
  ASSERT_GT(lay.chunks.size(), 4u);
  stream::TraceReader reader(path_, /*recover=*/false);
  dsp::Signal chunk;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(reader.next_chunk(chunk), stream::ChunkStatus::kOk);
  }
  EXPECT_EQ(reader.next_chunk(chunk), stream::ChunkStatus::kCorrupt);
  // Wedged: the failed state is sticky.
  EXPECT_EQ(reader.next_chunk(chunk), stream::ChunkStatus::kCorrupt);
  EXPECT_EQ(reader.stats().chunks_ok, 3u);
  EXPECT_EQ(reader.stats().chunks_corrupt, 1u);
  EXPECT_EQ(reader.stats().error_count(stream::IngestError::kChunkCrc), 1u);
}

TEST_F(FaultFile, ResyncSkipsExactlyTheCorruptRecord) {
  const std::size_t target = 3;
  const fault::TraceLayout lay = prepare([&](const std::string& clean) {
    return fault::flip_chunk_bit(clean, target);
  });
  // Reference: the chunk the resync should deliver next.
  sim::write_capture(two_frame_capture(), two_frame_cfg(), path_,
                     kChunkSamples);
  stream::TraceReader clean_reader(path_);
  dsp::Signal expect_chunk;
  for (std::size_t i = 0; i <= target + 1; ++i) {
    ASSERT_EQ(clean_reader.next_chunk(expect_chunk),
              stream::ChunkStatus::kOk);
  }
  const fault::TraceLayout relay = prepare([&](const std::string& clean) {
    return fault::flip_chunk_bit(clean, target);
  });
  ASSERT_EQ(relay.chunks.size(), lay.chunks.size());

  stream::TraceReader reader(path_, /*recover=*/true);
  dsp::Signal chunk;
  for (std::size_t i = 0; i < target; ++i) {
    ASSERT_EQ(reader.next_chunk(chunk), stream::ChunkStatus::kOk);
  }
  ASSERT_EQ(reader.next_chunk(chunk), stream::ChunkStatus::kResync);
  // The skip covered exactly one record whose declared length was
  // intact, so the loss estimate is exact — and the delivered chunk is
  // the next clean record, bit for bit.
  EXPECT_EQ(reader.last_gap_samples(), kChunkSamples);
  ASSERT_EQ(chunk.size(), expect_chunk.size());
  EXPECT_TRUE(std::equal(chunk.begin(), chunk.end(), expect_chunk.begin()));
  stream::ChunkStatus st;
  while ((st = reader.next_chunk(chunk)) == stream::ChunkStatus::kOk) {
  }
  EXPECT_EQ(st, stream::ChunkStatus::kEof);
  EXPECT_EQ(reader.stats().resyncs, 1u);
  EXPECT_EQ(reader.stats().samples_lost, kChunkSamples);
  EXPECT_EQ(reader.stats().chunks_ok, lay.chunks.size() - 1);
  // The lost samples show up in the EOF cross-check, by design.
  EXPECT_EQ(reader.stats().error_count(stream::IngestError::kTotalMismatch),
            1u);
}

TEST_F(FaultFile, HostileChunkLengthRejectsWithoutAbsurdAllocation) {
  prepare([](const std::string& clean) {
    // 0x40000000 samples would be a 16 GiB allocation if trusted.
    return fault::corrupt_chunk_length(clean, 3);
  });
  stream::TraceReader reader(path_, /*recover=*/true);
  dsp::Signal chunk;
  stream::ChunkStatus st;
  bool resynced = false;
  while ((st = reader.next_chunk(chunk)) != stream::ChunkStatus::kEof) {
    ASSERT_NE(st, stream::ChunkStatus::kCorrupt);
    resynced |= st == stream::ChunkStatus::kResync;
  }
  EXPECT_TRUE(resynced);
  EXPECT_EQ(reader.stats().error_count(stream::IngestError::kChunkHeader), 1u);
  // Without the declared length the estimate falls back to
  // bytes/sample_bytes — the record's 8 header bytes round down, so it
  // still lands on the exact sample count here.
  EXPECT_EQ(reader.stats().samples_lost, kChunkSamples);
}

// ----------------------------------- truncation at every byte offset

void truncation_sweep(bool float32) {
  // A deliberately tiny trace so the every-byte sweep stays fast: the
  // sweep is about parser state machines, not demodulation.
  char path[128];
  std::snprintf(path, sizeof(path), "saiyan_fault_truncsweep_%d_%d.sytrc",
                static_cast<int>(float32), static_cast<int>(::getpid()));
  {
    stream::TraceMeta meta;
    meta.phy = phy();
    meta.payload_symbols = kPayload;
    meta.float32_samples = float32;
    std::vector<stream::TraceMarker> markers(1);
    markers[0].sample_offset = 7;
    markers[0].tag_id = 1;
    markers[0].symbols = {1, 2, 3};
    stream::TraceWriter writer(path, meta, markers);
    dsp::Signal samples(50);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      samples[i] = dsp::Complex(static_cast<double>(i), -1.0);
    }
    for (int c = 0; c < 3; ++c) writer.write_chunk(samples);
    writer.close();
  }
  const std::string bytes = fault::read_file(path);
  std::remove(path);

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::string_view prefix(bytes.data(), len);
    for (const bool recover : {false, true}) {
      int iterations = 0;
      try {
        stream::TraceReader reader =
            stream::TraceReader::from_bytes(prefix, recover);
        dsp::Signal chunk;
        stream::ChunkStatus st;
        do {
          st = reader.next_chunk(chunk);
          ASSERT_LT(++iterations, 64)
              << "reader failed to terminate at truncation " << len;
        } while (st == stream::ChunkStatus::kOk ||
                 st == stream::ChunkStatus::kResync);
        if (st == stream::ChunkStatus::kCorrupt) {
          EXPECT_FALSE(recover) << "recover mode must never return kCorrupt";
          EXPECT_GT(reader.stats().total_errors(), 0u);
        }
      } catch (const std::runtime_error&) {
        // Structured header rejection — fine anywhere in the sweep.
      }
    }
  }
}

TEST(TruncationSweep, EveryByteOffsetV1) { truncation_sweep(false); }
TEST(TruncationSweep, EveryByteOffsetV2) { truncation_sweep(true); }

// ------------------------------------------------- the fault matrix

TEST_F(FaultFile, CleanBaselineDecodesEverything) {
  prepare([](const std::string& clean) { return clean; });
  const sim::ReplayStats s = sim::replay_trace(path_, recover_cfg());
  EXPECT_EQ(s.matched, 2u);
  EXPECT_EQ(s.symbol_errors, 0u);
  EXPECT_TRUE(s.ingest.clean());
}

TEST_F(FaultFile, BitFlipInIdleGapRecoversBitIdentical) {
  const fault::TraceLayout lay = prepare([&](const std::string& clean) {
    const fault::TraceLayout l = fault::parse_trace_layout(clean);
    const std::size_t idle = chunk_inside(
        l, 1000 + frame_samples() + 1024, 60000 - 1024);
    return fault::flip_chunk_bit(clean, idle, /*bit=*/5);
  });
  ASSERT_GT(lay.chunks.size(), 0u);
  const sim::ReplayStats s = sim::replay_trace(path_, recover_cfg());
  // Full recovery: the damage sat in idle noise, the gap estimate was
  // exact, so both frames decode bit-identically to the clean run.
  EXPECT_EQ(s.matched, 2u);
  EXPECT_EQ(s.symbol_errors, 0u);
  EXPECT_EQ(s.false_detections, 0u);
  EXPECT_EQ(s.ingest.resyncs, 1u);
  EXPECT_EQ(s.ingest.gaps, 1u);
  EXPECT_EQ(s.ingest.gap_samples, kChunkSamples);
  EXPECT_EQ(s.ingest.error_count(stream::IngestError::kChunkCrc), 1u);
  EXPECT_EQ(s.corrupt_chunks, 1u);
}

TEST_F(FaultFile, BitFlipInsideFrameDegradesOnlyThatFrame) {
  prepare([&](const std::string& clean) {
    const fault::TraceLayout l = fault::parse_trace_layout(clean);
    const std::size_t in_frame = chunk_inside(
        l, 1000 + 1024, 1000 + frame_samples() - 1024);
    return fault::flip_chunk_bit(clean, in_frame);
  });
  const sim::ReplayStats s = sim::replay_trace(path_, recover_cfg());
  // The second frame is untouched and must decode cleanly; only the
  // damaged frame may be lost or errored.
  EXPECT_GE(s.matched, 1u);
  EXPECT_LE(s.symbol_errors, kPayload);
  EXPECT_EQ(s.ingest.resyncs, 1u);
  EXPECT_EQ(s.ingest.gaps, 1u);
}

TEST_F(FaultFile, DroppedChunkIsCaughtByTotalMismatch) {
  prepare([&](const std::string& clean) {
    const fault::TraceLayout l = fault::parse_trace_layout(clean);
    const std::size_t idle = chunk_inside(
        l, 1000 + frame_samples() + 1024, 60000 - 1024);
    return fault::drop_chunk(clean, idle);
  });
  const sim::ReplayStats s = sim::replay_trace(path_, recover_cfg());
  // A cleanly excised record never fails a CRC — the silent timeline
  // shift is caught by the EOF sample-count cross-check instead.
  EXPECT_EQ(s.ingest.resyncs, 0u);
  EXPECT_EQ(s.ingest.error_count(stream::IngestError::kTotalMismatch), 1u);
  EXPECT_GE(s.matched, 1u);  // the frame before the drop is unaffected
}

TEST_F(FaultFile, DuplicatedChunkIsCaughtByTotalMismatch) {
  prepare([&](const std::string& clean) {
    const fault::TraceLayout l = fault::parse_trace_layout(clean);
    const std::size_t idle = chunk_inside(
        l, 1000 + frame_samples() + 1024, 60000 - 1024);
    return fault::duplicate_chunk(clean, idle);
  });
  const sim::ReplayStats s = sim::replay_trace(path_, recover_cfg());
  EXPECT_EQ(s.ingest.resyncs, 0u);
  EXPECT_EQ(s.ingest.error_count(stream::IngestError::kTotalMismatch), 1u);
  EXPECT_GE(s.matched, 1u);
}

TEST_F(FaultFile, ReorderedChunksSurfaceAsDecodeDamage) {
  prepare([&](const std::string& clean) {
    const fault::TraceLayout l = fault::parse_trace_layout(clean);
    // Swap inside the *payload*: the preamble is periodic (identical
    // up-chirps), so a period-aligned swap there is invisible by
    // construction. Payload symbols differ chunk to chunk.
    const std::uint64_t payload_lo =
        1000 + frame_samples() -
        kPayload * phy().samples_per_symbol();
    const std::size_t a = chunk_inside(
        l, payload_lo, 1000 + frame_samples() - kChunkSamples);
    return fault::swap_chunks(clean, a, a + 1);
  });
  const sim::ReplayStats s = sim::replay_trace(path_, recover_cfg());
  // Reordering preserves every CRC and the total count — the one
  // impairment with no ingest-counter signature. It must surface
  // downstream: wrong symbols or a missed frame, never a crash.
  EXPECT_EQ(s.ingest.total_errors(), 0u);
  EXPECT_TRUE(s.symbol_errors > 0 || s.matched < 2)
      << "reordered payload decoded as if clean";
  // The untouched second frame still decodes.
  EXPECT_GE(s.matched, 1u);
}

TEST_F(FaultFile, TruncatedTailKeepsEarlierFrames) {
  prepare([](const std::string& clean) {
    return fault::truncate_trace(clean, (clean.size() * 3) / 5);
  });
  const sim::ReplayStats s = sim::replay_trace(path_, recover_cfg());
  EXPECT_GE(s.matched, 1u);
  EXPECT_GE(s.ingest.error_count(stream::IngestError::kChunkTruncated) +
                s.ingest.error_count(stream::IngestError::kTotalMismatch),
            1u);
}

// -------------------------------------------------- fault injector

TEST(FaultInjector, SampleDomainIsDeterministicPerSeed) {
  fault::FaultConfig fc;
  fc.seed = 11;
  fc.dropout_rate = 1.0;
  fc.gain_glitch_rate = 1.0;
  fc.dc_step_rate = 1.0;
  fc.clock_drift_ppm = 5000.0;

  dsp::Rng rng(3);
  dsp::Signal chunk(4096);
  for (dsp::Complex& v : chunk) {
    v = dsp::Complex(rng.gaussian(), rng.gaussian());
  }

  fault::FaultInjector a(fc), b(fc);
  dsp::Signal out_a, out_b;
  std::vector<fault::FaultedSegment> seg_a, seg_b;
  const fault::ChunkFaultReport ra = a.apply(chunk, out_a, seg_a);
  const fault::ChunkFaultReport rb = b.apply(chunk, out_b, seg_b);
  EXPECT_EQ(ra.samples_removed, rb.samples_removed);
  EXPECT_EQ(ra.gain_glitches, rb.gain_glitches);
  ASSERT_EQ(out_a.size(), out_b.size());
  EXPECT_TRUE(std::equal(out_a.begin(), out_a.end(), out_b.begin()));
  ASSERT_EQ(seg_a.size(), seg_b.size());
  for (std::size_t i = 0; i < seg_a.size(); ++i) {
    EXPECT_EQ(seg_a[i].offset, seg_b[i].offset);
    EXPECT_EQ(seg_a[i].len, seg_b[i].len);
    EXPECT_EQ(seg_a[i].gap_after, seg_b[i].gap_after);
  }
  // reset() rewinds the decision stream.
  a.reset();
  dsp::Signal out_c;
  std::vector<fault::FaultedSegment> seg_c;
  a.apply(chunk, out_c, seg_c);
  ASSERT_EQ(out_c.size(), out_a.size());
  EXPECT_TRUE(std::equal(out_c.begin(), out_c.end(), out_a.begin()));

  fc.seed = 12;
  fault::FaultInjector d(fc);
  dsp::Signal out_d;
  std::vector<fault::FaultedSegment> seg_d;
  d.apply(chunk, out_d, seg_d);
  EXPECT_FALSE(out_d.size() == out_a.size() &&
               std::equal(out_d.begin(), out_d.end(), out_a.begin()))
      << "different seed produced identical impairment";
}

TEST(FaultInjector, SegmentsAccountForEverySample) {
  fault::FaultConfig fc;
  fc.seed = 21;
  fc.dropout_rate = 1.0;
  fc.dropout_min_samples = 100;
  fc.dropout_max_samples = 400;
  fc.clock_drift_ppm = 20000.0;  // one drop per 50 samples
  fault::FaultInjector inj(fc);

  dsp::Signal chunk(2000, dsp::Complex(1.0, 0.0));
  dsp::Signal out;
  std::vector<fault::FaultedSegment> segments;
  const fault::ChunkFaultReport rep = inj.apply(chunk, out, segments);

  EXPECT_GT(rep.samples_removed, 0u);
  EXPECT_EQ(chunk.size(), out.size() + rep.samples_removed);
  std::uint64_t run = 0, gap = 0;
  for (const fault::FaultedSegment& s : segments) {
    run += s.len;
    gap += s.gap_after;
  }
  EXPECT_EQ(run, out.size());
  EXPECT_EQ(gap, rep.samples_removed);
}

TEST(FaultInjector, ClockDriftSlipsAtTheConfiguredCadence) {
  fault::FaultConfig fc;
  fc.seed = 31;
  fc.clock_drift_ppm = 10000.0;  // one sample per 100
  fault::FaultInjector inj(fc);
  dsp::Signal chunk(1000, dsp::Complex(1.0, 0.0));
  dsp::Signal out;
  std::vector<fault::FaultedSegment> segments;
  std::uint64_t removed = 0;
  for (int c = 0; c < 10; ++c) {
    removed += inj.apply(chunk, out, segments).samples_removed;
  }
  EXPECT_EQ(removed, 100u);  // exact: the accumulator carries fractions

  fc.clock_drift_ppm = -10000.0;  // slow clock duplicates instead
  fault::FaultInjector slow(fc);
  std::uint64_t duplicated = 0;
  for (int c = 0; c < 10; ++c) {
    duplicated += slow.apply(chunk, out, segments).samples_duplicated;
  }
  EXPECT_EQ(duplicated, 100u);
}

TEST_F(FaultFile, SeededTraceShotgunAlwaysReplaysCleanly) {
  prepare([](const std::string& clean) {
    fault::FaultConfig fc;
    fc.seed = 77;
    fc.bitflip_rate = 0.15;
    fc.drop_rate = 0.03;
    fc.duplicate_rate = 0.03;
    fc.reorder_rate = 0.03;
    fault::FaultInjector inj(fc);
    fault::TraceFaultReport rep;
    std::string corrupted = inj.corrupt_trace(clean, &rep);
    EXPECT_TRUE(rep.impaired()) << "shotgun config injected nothing";
    // Determinism holds at the byte level too.
    fault::FaultInjector inj2(fc);
    EXPECT_EQ(corrupted, inj2.corrupt_trace(clean));
    return corrupted;
  });
  const sim::ReplayStats s = sim::replay_trace(path_, recover_cfg());
  // No specific counter contract under combined fire — the contract is
  // completion with the damage accounted *somewhere*.
  EXPECT_GT(s.ingest.total_errors() + s.ingest.resyncs, 0u);
  EXPECT_GT(s.samples, 0u);
}

// --------------------------------------------------- SIC shedding

sim::CaptureConfig collision_pairs_cfg(std::size_t pairs) {
  const std::size_t spsym = phy().samples_per_symbol();
  const std::uint64_t frame =
      lora::Modulator(phy()).layout(16).total_samples;
  sim::CaptureConfig cfg;
  cfg.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  cfg.payload_symbols = 16;
  cfg.seed = 119;
  cfg.tag_rss_dbm = {-55.0, -61.0};
  std::uint64_t cursor = 500;
  for (std::size_t p = 0; p < pairs; ++p) {
    cfg.offsets.push_back(cursor);
    cfg.offsets.push_back(cursor + 14 * spsym);
    cursor += 2 * frame + 20 * spsym;
  }
  return cfg;
}

TEST_F(FaultFile, SicShedsCancellationsUnderBacklog) {
  const sim::CaptureConfig cfg = collision_pairs_cfg(2);
  const sim::Capture cap = sim::generate_capture(cfg);
  ASSERT_EQ(cap.collision_groups, 2u);
  sim::write_capture(cap, cfg, path_);

  sim::ReplayConfig rc;
  rc.sic.depth = 2;
  rc.sic.shed_queue = 1;  // any backlog at all sheds the cancel stage
  const sim::ReplayStats s = sim::replay_trace(path_, rc);
  // The buried frame is revealed by the first cancellation and decoded
  // — only its own (pointless) cancel+rescan is shed.
  EXPECT_GE(s.matched, 3u);
  EXPECT_GE(s.ingest.sic_shed, 1u);
  EXPECT_FALSE(s.ingest.clean());
}

TEST_F(FaultFile, SicRescanQueueCapEvictsOldest) {
  const sim::CaptureConfig cfg = collision_pairs_cfg(2);
  const sim::Capture cap = sim::generate_capture(cfg);
  sim::write_capture(cap, cfg, path_);

  sim::ReplayConfig rc;
  rc.sic.depth = 2;
  rc.sic.max_rescan_queue = 1;
  const sim::ReplayStats s = sim::replay_trace(path_, rc);
  EXPECT_GE(s.matched, 3u);
  EXPECT_GE(s.ingest.rescans_dropped, 1u);
}

// ------------------------------------------------ TraceWriter errors

TEST(TraceWriterErrors, CloseFailureIsRecordedNotThrown) {
  if (::access("/dev/full", W_OK) != 0) {
    GTEST_SKIP() << "/dev/full not available";
  }
  stream::TraceMeta meta;
  meta.phy = phy();
  meta.payload_symbols = kPayload;
  try {
    stream::TraceWriter writer("/dev/full", meta);
    dsp::Signal samples(16, dsp::Complex(1.0, 0.0));
    try {
      writer.write_chunk(samples);
    } catch (const std::runtime_error&) {
      // An eager flush may surface the failure here already — also
      // acceptable; last_error must be set either way.
    }
    EXPECT_FALSE(writer.try_close());
    EXPECT_FALSE(writer.last_error().empty());
    // try_close is idempotent and keeps reporting the failure.
    EXPECT_FALSE(writer.try_close());
  } catch (const std::runtime_error&) {
    // Header write already failed — equally a clean, reported failure.
  }
}

TEST_F(FaultFile, CleanCloseLeavesNoError) {
  stream::TraceMeta meta;
  meta.phy = phy();
  meta.payload_symbols = kPayload;
  stream::TraceWriter writer(path_, meta);
  dsp::Signal samples(16, dsp::Complex(1.0, 0.0));
  writer.write_chunk(samples);
  EXPECT_TRUE(writer.try_close());
  EXPECT_TRUE(writer.last_error().empty());
  EXPECT_TRUE(writer.try_close());  // idempotent success
}

// Regression: the close path used to re-run the header patch on a
// second try_close() call and could overwrite a write_chunk failure
// message with its own — the first error must stay sticky across
// flush and close, and close must happen exactly once.
TEST(TraceWriterErrors, WriteFailureStaysStickyAcrossClose) {
  if (::access("/dev/full", W_OK) != 0) {
    GTEST_SKIP() << "/dev/full not available";
  }
  stream::TraceMeta meta;
  meta.phy = phy();
  meta.payload_symbols = kPayload;
  try {
    stream::TraceWriter writer("/dev/full", meta);
    dsp::Signal samples(16, dsp::Complex(1.0, 0.0));
    bool chunk_failed = false;
    try {
      writer.write_chunk(samples);
      // Push until the stream error surfaces (buffering may defer it).
      for (int i = 0; i < 64 && !chunk_failed; ++i) writer.write_chunk(samples);
    } catch (const std::runtime_error&) {
      chunk_failed = true;
    }
    if (!chunk_failed) GTEST_SKIP() << "/dev/full absorbed the writes";
    const std::string first = writer.last_error();
    ASSERT_NE(first.find("chunk write failed"), std::string::npos) << first;
    EXPECT_FALSE(writer.try_close());
    EXPECT_EQ(writer.last_error(), first) << "close overwrote the first error";
    EXPECT_FALSE(writer.try_close());  // double-call stays idempotent
    EXPECT_EQ(writer.last_error(), first);
    auto r = writer.finish();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.message(), first);
  } catch (const std::runtime_error&) {
    // Header write already failed — equally a clean, reported failure.
  }
}

// finish() is the Result-returning close: idempotent on success and
// round-trippable (the trace it wrote reads back).
TEST_F(FaultFile, FinishReportsCleanCloseOnce) {
  stream::TraceMeta meta;
  meta.phy = phy();
  meta.payload_symbols = kPayload;
  stream::TraceWriter writer(path_, meta);
  dsp::Signal samples(64, dsp::Complex(0.5, -0.5));
  writer.write_chunk(samples);
  auto first = writer.finish();
  ASSERT_TRUE(first.ok()) << first.message();
  auto second = writer.finish();
  EXPECT_TRUE(second.ok());
  EXPECT_TRUE(writer.last_error().empty());

  auto reader = stream::TraceReader::open(path_);
  ASSERT_TRUE(reader.ok()) << reader.message();
  EXPECT_EQ(reader.value().meta().total_samples, samples.size());
}

// --------------------------------------------- layout parser limits

TEST(TraceLayout, RejectsMalformedBytes) {
  EXPECT_THROW(fault::parse_trace_layout(""), std::invalid_argument);
  EXPECT_THROW(fault::parse_trace_layout("SAIYTRC1 short"),
               std::invalid_argument);
  std::string bogus(200, '\0');
  EXPECT_THROW(fault::parse_trace_layout(bogus), std::invalid_argument);
}

}  // namespace
}  // namespace saiyan
