// Property sweeps across the configuration grid: every (mode, K)
// combination must decode cleanly with margin above its own modelled
// sensitivity; jammer injection must degrade gracefully; threshold
// table mode must match auto mode on calibrated links; the model's
// range surface must be monotone in each physical knob.
#include <gtest/gtest.h>

#include "channel/awgn_channel.hpp"
#include "channel/jammer.hpp"
#include "core/demodulator.hpp"
#include "core/threshold_table.hpp"
#include "lora/modulator.hpp"
#include "sim/ber_model.hpp"
#include "sim/range_finder.hpp"

namespace saiyan {
namespace {

lora::PhyParams phy(int k = 2, int sf = 7, double bw = 500e3) {
  lora::PhyParams p;
  p.spreading_factor = sf;
  p.bandwidth_hz = bw;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = k;
  return p;
}

std::size_t run_errors(const core::SaiyanConfig& cfg, double rss,
                       std::uint64_t seed, std::size_t n_symbols = 24,
                       channel::JammerConfig* jam = nullptr) {
  const core::SaiyanDemodulator demod(cfg);
  lora::Modulator mod(cfg.phy);
  dsp::Rng rng(seed);
  channel::AwgnChannel chan(cfg.phy.sample_rate_hz, 6.0);
  std::vector<std::uint32_t> tx(n_symbols);
  for (auto& v : tx) {
    v = static_cast<std::uint32_t>(rng.uniform_int(0, cfg.phy.symbol_alphabet() - 1));
  }
  dsp::Signal rx = chan.apply(mod.modulate(tx), rss, rng);
  if (jam != nullptr) channel::add_jammer(rx, *jam, rng);
  const lora::PacketLayout lay = mod.layout(tx.size());
  const core::DemodResult r =
      demod.demodulate_aligned(rx, lay.payload_start, tx.size(), rng);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < tx.size(); ++i) {
    errors += (i >= r.symbols.size() || r.symbols[i] != tx[i]) ? 1 : 0;
  }
  return errors;
}

// --- grid: every mode x K decodes cleanly 8 dB above its modelled
// sensitivity, and collapses 12 dB below it ---
class ModeKGrid
    : public ::testing::TestWithParam<std::tuple<core::Mode, int>> {};

TEST_P(ModeKGrid, CleanAboveOwnSensitivity) {
  const auto [mode, k] = GetParam();
  const sim::BerModel model;
  const double sens = model.required_rss_dbm(mode, phy(k));
  const core::SaiyanConfig cfg = core::SaiyanConfig::make(phy(k), mode);
  const std::size_t errors = run_errors(cfg, sens + 8.0, 41u + k);
  EXPECT_LE(errors, 1u) << core::mode_name(mode) << " K=" << k;
}

TEST_P(ModeKGrid, CollapsesWellBelowOwnSensitivity) {
  const auto [mode, k] = GetParam();
  const sim::BerModel model;
  const double sens = model.required_rss_dbm(mode, phy(k));
  const core::SaiyanConfig cfg = core::SaiyanConfig::make(phy(k), mode);
  const std::size_t errors = run_errors(cfg, sens - 12.0, 43u + k);
  EXPECT_GE(errors, 2u) << core::mode_name(mode) << " K=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModeKGrid,
    ::testing::Combine(::testing::Values(core::Mode::kVanilla,
                                         core::Mode::kFrequencyShifting,
                                         core::Mode::kSuper),
                       ::testing::Values(1, 2, 3)));

// --- interference injection ---
TEST(Interference, WeakJammerHarmless) {
  const core::SaiyanConfig cfg = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  channel::JammerConfig jam;
  jam.type = channel::JammerType::kWideband;
  jam.power_dbm = -95.0;  // 35 dB under the signal
  jam.sample_rate_hz = 4e6;
  EXPECT_LE(run_errors(cfg, -60.0, 51, 24, &jam), 1u);
}

TEST(Interference, StrongJammerBreaksTheLink) {
  const core::SaiyanConfig cfg = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  channel::JammerConfig jam;
  jam.type = channel::JammerType::kWideband;
  jam.power_dbm = -50.0;  // 10 dB over the signal
  jam.sample_rate_hz = 4e6;
  EXPECT_GE(run_errors(cfg, -60.0, 52, 24, &jam), 4u);
}

TEST(Interference, ToneJammerOutOfBandIsFilteredBySaw) {
  // A strong CW jammer 3 MHz off-channel lands in the SAW stopband
  // (>55 dB down) and must not disturb demodulation.
  const core::SaiyanConfig cfg = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  channel::JammerConfig jam;
  jam.type = channel::JammerType::kTone;
  jam.power_dbm = -45.0;
  jam.offset_hz = -1.8e6;  // RF ~431.9 MHz, deep in the stopband
  jam.sample_rate_hz = 4e6;
  EXPECT_LE(run_errors(cfg, -60.0, 53, 24, &jam), 1u);
}

// --- threshold table mode (the prototype's §4.1 mapping table) ---
TEST(ThresholdTableMode, MatchesAutoOnCalibratedLink) {
  const core::SaiyanConfig cfg =
      core::SaiyanConfig::make(phy(), core::Mode::kVanilla);
  const core::ReceiverChain chain(cfg);
  const channel::LinkBudget link;
  const core::ThresholdTable table(chain, link, {5.0, 10.0, 20.0, 40.0});
  const core::SaiyanDemodulator demod(cfg);
  lora::Modulator mod(cfg.phy);
  dsp::Rng rng(54);
  channel::AwgnChannel chan(cfg.phy.sample_rate_hz, 6.0);
  const std::vector<std::uint32_t> tx = {3, 1, 0, 2, 2, 0, 1, 3};
  const double d = 20.0;
  const dsp::Signal rx = chan.apply(mod.modulate(tx), link.rss_dbm(d), rng);
  const lora::PacketLayout lay = mod.layout(tx.size());
  const core::DemodResult with_table = demod.demodulate_aligned(
      rx, lay.payload_start, tx.size(), rng, table.lookup(d));
  std::size_t errors = 0;
  for (std::size_t i = 0; i < tx.size(); ++i) {
    errors += with_table.symbols[i] != tx[i];
  }
  EXPECT_EQ(errors, 0u);
}

// --- model surface monotonicity: physics knobs must push the range in
// the physically sensible direction everywhere on the grid ---
TEST(ModelSurface, RangeMonotoneInEveryKnob) {
  const sim::BerModel model;
  const channel::LinkBudget link;
  for (core::Mode mode : {core::Mode::kVanilla, core::Mode::kFrequencyShifting,
                          core::Mode::kSuper}) {
    for (int sf : {7, 9, 12}) {
      for (double bw : {125e3, 250e3, 500e3}) {
        double prev_k_range = 1e9;
        for (int k = 1; k <= 5; ++k) {
          const double r =
              sim::model_range_m(model, mode, phy(k, sf, bw), link);
          EXPECT_LT(r, prev_k_range + 1e-9)
              << "range must fall with K: " << core::mode_name(mode) << " SF"
              << sf << " BW" << bw << " K" << k;
          prev_k_range = r;
        }
      }
      // SF helps (fixed K=2, BW=500k).
      if (sf > 7) {
        EXPECT_GT(sim::model_range_m(model, mode, phy(2, sf), link),
                  sim::model_range_m(model, mode, phy(2, 7), link));
      }
    }
    // BW helps.
    EXPECT_GT(sim::model_range_m(model, mode, phy(2, 7, 500e3), link),
              sim::model_range_m(model, mode, phy(2, 7, 125e3), link));
    // Walls hurt.
    channel::Environment wall;
    wall.concrete_walls = 1;
    EXPECT_LT(sim::model_range_m(model, mode, phy(), link, wall),
              sim::model_range_m(model, mode, phy(), link));
  }
}

TEST(ModelSurface, DataRateIndependentOfModeAndMonotoneInK) {
  for (int k = 1; k < 5; ++k) {
    EXPECT_LT(phy(k).data_rate_bps(), phy(k + 1).data_rate_bps());
  }
}

}  // namespace
}  // namespace saiyan
