// Successive interference cancellation (src/sic/): collision-resolving
// streaming decode. The tentpole properties:
//
//   * a two-tag capture whose frames overlap in the payload decodes
//     the weaker frame through decode -> cancel -> rescan at every
//     symbol offset, with a ≥6 dB power delta, where it decodes ~0%
//     without SIC;
//   * three-way pileups resolve one frame per cancellation depth;
//   * the equal-power worst case degrades gracefully (no crashes, no
//     spurious extra packets);
//   * with SIC disabled (depth 0) — and on captures without overlaps
//     even with SIC enabled — streaming decode is bit-identical to the
//     plain path;
//   * a resolved collision allocates nothing once warm.
//
// This file is its own test binary (ctest label `sic`, included in the
// ASan CI matrix) because it replaces the global allocation functions
// with counting versions for the zero-allocation test; the counter is
// disabled under ASan, which owns the allocator there.
#include "sic/collision_resolver.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>

#include "lora/remodulator.hpp"
#include "sim/capture.hpp"
#include "stream/streaming_demod.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define SAIYAN_ALLOC_COUNTER 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SAIYAN_ALLOC_COUNTER 0
#endif
#endif
#ifndef SAIYAN_ALLOC_COUNTER
#define SAIYAN_ALLOC_COUNTER 1
#endif

#if SAIYAN_ALLOC_COUNTER

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // SAIYAN_ALLOC_COUNTER

namespace saiyan {
namespace {

lora::PhyParams phy() {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  return p;
}

/// Two (or more) tags at explicit offsets — the controlled-collision
/// generator setup.
sim::CaptureConfig collision_cfg(std::vector<double> rss_dbm,
                                 std::vector<std::uint64_t> offsets,
                                 std::uint64_t seed,
                                 std::size_t payload_symbols = 16) {
  sim::CaptureConfig cfg;
  cfg.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  cfg.payload_symbols = payload_symbols;
  cfg.seed = seed;
  cfg.tag_rss_dbm = std::move(rss_dbm);
  cfg.offsets = std::move(offsets);
  return cfg;
}

std::unique_ptr<stream::StreamingDemodulator> run_stream(
    const sim::Capture& cap, const sim::CaptureConfig& cfg, std::size_t depth,
    std::size_t chunk = 16384) {
  stream::StreamConfig sc;
  sc.saiyan = cfg.saiyan;
  sc.payload_symbols = cfg.payload_symbols;
  sc.sic.depth = depth;
  auto demod = std::make_unique<stream::StreamingDemodulator>(sc);
  std::span<const dsp::Complex> rest(cap.samples);
  while (!rest.empty()) {
    const std::size_t take = std::min(chunk, rest.size());
    demod->push(rest.first(take));
    rest = rest.subspan(take);
  }
  demod->finish();
  return demod;
}

sim::ReplayStats score(const stream::StreamingDemodulator& demod,
                       const sim::Capture& cap) {
  return sim::score_replay(demod, cap.markers,
                           phy().samples_per_symbol() / 2);
}

// ------------------------------------------------------- Remodulator

TEST(Remodulator, FitRecoversAmplitudeAndOffset) {
  lora::Remodulator remod(phy(), 8);
  std::vector<std::uint32_t> syms = {0, 3, 1, 2, 3, 0, 2, 1};
  dsp::Signal tx;
  remod.frame_into(syms, tx);
  ASSERT_EQ(tx.size(), remod.frame_samples());

  const dsp::Complex amp(3.5e-4, -1.2e-4);
  const dsp::Complex off(2e-6, 1e-6);
  dsp::Signal rx(tx.size());
  for (std::size_t i = 0; i < tx.size(); ++i) rx[i] = amp * tx[i] + off;
  const lora::RemodFit fit = lora::Remodulator::fit(rx, tx);
  EXPECT_NEAR(fit.amplitude.real(), amp.real(), 1e-9);
  EXPECT_NEAR(fit.amplitude.imag(), amp.imag(), 1e-9);
  EXPECT_NEAR(fit.offset.real(), off.real(), 1e-9);
  EXPECT_NEAR(fit.offset.imag(), off.imag(), 1e-9);

  lora::Remodulator::subtract(rx, tx, fit);
  double peak = 0.0;
  for (const dsp::Complex& v : rx) peak = std::max(peak, std::abs(v));
  EXPECT_LT(peak, 1e-12);
}

TEST(Remodulator, FrameMatchesModulatorLayout) {
  lora::Remodulator remod(phy(), 16);
  const lora::Modulator mod(phy());
  const lora::PacketLayout lay = mod.layout(16);
  EXPECT_EQ(remod.frame_samples(), lay.total_samples);
  EXPECT_EQ(remod.payload_start(), lay.payload_start);
  EXPECT_THROW(
      {
        dsp::Signal out;
        std::vector<std::uint32_t> wrong(7, 0);
        remod.frame_into(wrong, out);
      },
      std::invalid_argument);
}

// ------------------------------------------- two-tag overlap capture

TEST(SicTwoTag, WeakerFrameRecoversAtEverySymbolOffset) {
  // The acceptance property: with a 6 dB power delta and the weaker
  // frame starting anywhere inside the stronger one, SIC recovers the
  // weaker frame that plain streaming decode loses.
  const std::size_t spsym = phy().samples_per_symbol();
  const lora::Modulator mod(phy());
  const std::size_t frame_syms =
      mod.layout(16).total_samples / spsym;  // 28 full symbols
  std::size_t recovered = 0;
  std::size_t recovered_without_sic = 0;
  std::size_t offsets_tested = 0;
  for (std::size_t sym = 1; sym < frame_syms; ++sym) {
    const sim::CaptureConfig cfg = collision_cfg(
        {-55.0, -61.0}, {500, 500 + sym * spsym}, 100 + sym);
    const sim::Capture cap = sim::generate_capture(cfg);
    ASSERT_EQ(cap.collision_groups, 1u) << "offset " << sym;
    ++offsets_tested;

    const auto off = run_stream(cap, cfg, 0);
    const auto on = run_stream(cap, cfg, 2);
    const sim::ReplayStats s_off = score(*off, cap);
    const sim::ReplayStats s_on = score(*on, cap);
    ASSERT_EQ(s_on.collisions.frames(), 2u) << "offset " << sym;
    recovered_without_sic += s_off.collisions.captured() > 1 ? 1 : 0;
    if (s_on.collisions.captured() == 2) ++recovered;
    EXPECT_EQ(s_on.false_detections, 0u) << "offset " << sym;
  }
  // Weaker frames decode ~never without SIC and ≥80 % with it.
  EXPECT_LE(recovered_without_sic, offsets_tested / 10);
  EXPECT_GE(recovered, (offsets_tested * 8) / 10)
      << "recovered " << recovered << "/" << offsets_tested;
}

TEST(SicTwoTag, ResolvedCollisionIsCountedAndFlagged) {
  const std::size_t spsym = phy().samples_per_symbol();
  const sim::CaptureConfig cfg =
      collision_cfg({-55.0, -61.0}, {500, 500 + 16 * spsym}, 21);
  const sim::Capture cap = sim::generate_capture(cfg);
  const auto demod = run_stream(cap, cfg, 2);
  ASSERT_EQ(demod->packets().size(), 2u);
  EXPECT_EQ(demod->collision_groups(), 1u);
  EXPECT_EQ(demod->collisions_resolved(), 1u);
  EXPECT_GE(demod->frames_cancelled(), 1u);
  // Emission order: the stronger (earlier) frame first, flagged once
  // the rescan finds the buried one.
  EXPECT_TRUE(demod->packets()[0].collided);
  EXPECT_FALSE(demod->packets()[0].sic_assisted);
  EXPECT_TRUE(demod->packets()[1].collided);
  EXPECT_TRUE(demod->packets()[1].sic_assisted);
  const sim::ReplayStats st = score(*demod, cap);
  EXPECT_EQ(st.collisions.groups(), 1u);
  EXPECT_EQ(st.collisions.frames(), 2u);
  EXPECT_EQ(st.collisions.captured(), 2u);
  EXPECT_EQ(st.collisions.resolved(), 1u);
  EXPECT_DOUBLE_EQ(st.collisions.capture_rate(), 1.0);
}

TEST(SicTwoTag, PerTagPhaseRotationIsAbsorbedByComplexFit) {
  // Rotated carriers exercise the complex least-squares amplitude.
  const std::size_t spsym = phy().samples_per_symbol();
  sim::CaptureConfig cfg =
      collision_cfg({-55.0, -61.0}, {500, 500 + 14 * spsym}, 33);
  cfg.tag_phase_rad = {0.7, 2.1};
  const sim::Capture cap = sim::generate_capture(cfg);
  const auto demod = run_stream(cap, cfg, 2);
  const sim::ReplayStats st = score(*demod, cap);
  EXPECT_EQ(st.collisions.captured(), 2u);
  EXPECT_EQ(st.symbol_errors, 0u);
}

TEST(SicTwoTag, ChunkSizeDoesNotChangeAnyBit) {
  const std::size_t spsym = phy().samples_per_symbol();
  const sim::CaptureConfig cfg =
      collision_cfg({-55.0, -61.0}, {500, 500 + 10 * spsym}, 55);
  const sim::Capture cap = sim::generate_capture(cfg);
  const auto ref = run_stream(cap, cfg, 2, cap.samples.size());
  ASSERT_EQ(ref->packets().size(), 2u);
  for (std::size_t chunk : {std::size_t{997}, std::size_t{4096},
                            std::size_t{65536}}) {
    const auto demod = run_stream(cap, cfg, 2, chunk);
    ASSERT_EQ(demod->packets().size(), ref->packets().size())
        << "chunk " << chunk;
    for (std::size_t i = 0; i < ref->packets().size(); ++i) {
      EXPECT_EQ(demod->packets()[i].packet_start,
                ref->packets()[i].packet_start);
      const auto a = ref->symbols(ref->packets()[i]);
      const auto b = demod->symbols(demod->packets()[i]);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                               a.size() * sizeof(std::uint32_t)));
    }
  }
}

// --------------------------------------------------- pileups & worst case

TEST(SicPileup, ThreeWayResolvesOneFramePerDepthLevel) {
  const std::size_t spsym = phy().samples_per_symbol();
  const sim::CaptureConfig cfg = collision_cfg(
      {-55.0, -61.0, -67.0},
      {500, 500 + 14 * spsym, 500 + 28 * spsym}, 77);
  const sim::Capture cap = sim::generate_capture(cfg);
  ASSERT_EQ(cap.collision_groups, 1u);

  const std::size_t matched[4] = {
      score(*run_stream(cap, cfg, 0), cap).matched,
      score(*run_stream(cap, cfg, 1), cap).matched,
      score(*run_stream(cap, cfg, 2), cap).matched,
      score(*run_stream(cap, cfg, 3), cap).matched,
  };
  EXPECT_EQ(matched[0], 1u);  // only the strongest survives the mix
  EXPECT_EQ(matched[1], 2u);  // one cancellation pass -> second frame
  EXPECT_EQ(matched[2], 3u);  // two passes -> full pileup
  EXPECT_EQ(matched[3], 3u);  // extra depth is idle, not harmful
}

TEST(SicWorstCase, EqualPowerDegradesGracefully) {
  // ~0 dB delta is information-theoretically unresolvable for this
  // receiver; SIC must neither crash nor invent packets.
  const std::size_t spsym = phy().samples_per_symbol();
  const sim::CaptureConfig cfg =
      collision_cfg({-55.0, -55.0}, {500, 500 + 16 * spsym}, 91);
  const sim::Capture cap = sim::generate_capture(cfg);
  const auto demod = run_stream(cap, cfg, 2);
  const sim::ReplayStats st = score(*demod, cap);
  EXPECT_LE(demod->packets().size(), 3u);
  EXPECT_EQ(st.false_detections + st.matched, st.decoded);
  EXPECT_LE(st.collisions.captured(), st.collisions.frames());
}

// ------------------------------------------------ bit-identity guarantees

TEST(SicBitIdentity, CleanCaptureDecodesIdenticallyWithSicOnOrOff) {
  // No overlaps: SIC-on must reproduce the plain path bit for bit —
  // cancellation only ever touches a decoded frame's own span, and
  // rescans of clean residuals never confirm.
  sim::CaptureConfig cfg;
  cfg.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  cfg.payload_symbols = 16;
  cfg.packets_per_tag = 6;
  cfg.seed = 42;
  for (int t = 0; t < 3; ++t) cfg.tag_rss_dbm.push_back(-55.0 - 3.0 * t);
  const sim::Capture cap = sim::generate_capture(cfg);
  ASSERT_EQ(cap.collision_groups, 0u) << "generator produced an overlap";

  const auto off = run_stream(cap, cfg, 0);
  const auto on = run_stream(cap, cfg, 2);
  ASSERT_EQ(off->packets().size(), cap.markers.size());
  ASSERT_EQ(on->packets().size(), off->packets().size());
  EXPECT_EQ(on->collision_groups(), 0u);
  EXPECT_EQ(on->collisions_resolved(), 0u);
  for (std::size_t i = 0; i < off->packets().size(); ++i) {
    const stream::DecodedPacket& a = off->packets()[i];
    const stream::DecodedPacket& b = on->packets()[i];
    EXPECT_EQ(a.packet_start, b.packet_start);
    EXPECT_DOUBLE_EQ(a.score, b.score);
    EXPECT_FALSE(b.collided);
    const auto sa = off->symbols(a);
    const auto sb = on->symbols(b);
    ASSERT_EQ(sa.size(), sb.size());
    EXPECT_EQ(0, std::memcmp(sa.data(), sb.data(),
                             sa.size() * sizeof(std::uint32_t)))
        << "packet " << i;
  }
}

TEST(SicBitIdentity, DepthZeroIsThePlainPath) {
  // Even on a *colliding* capture, depth 0 must match the pre-SIC
  // decode exactly: same packets, same symbols, nothing resolved.
  const std::size_t spsym = phy().samples_per_symbol();
  const sim::CaptureConfig cfg =
      collision_cfg({-55.0, -61.0}, {500, 500 + 8 * spsym}, 13);
  const sim::Capture cap = sim::generate_capture(cfg);
  const auto demod = run_stream(cap, cfg, 0);
  EXPECT_EQ(demod->collision_groups(), 0u);
  EXPECT_EQ(demod->frames_cancelled(), 0u);
  // The plain path sees only the stronger preamble in the mix.
  ASSERT_EQ(demod->packets().size(), 1u);
  EXPECT_FALSE(demod->packets()[0].collided);
}

// ------------------------------------------------------------ truncation

TEST(SicEdge, CollisionCutByCaptureEndTruncatesWeakFrame) {
  const std::size_t spsym = phy().samples_per_symbol();
  const sim::CaptureConfig cfg =
      collision_cfg({-55.0, -61.0}, {500, 500 + 16 * spsym}, 17);
  const sim::Capture cap = sim::generate_capture(cfg);
  stream::StreamConfig sc;
  sc.saiyan = cfg.saiyan;
  sc.payload_symbols = cfg.payload_symbols;
  sc.sic.depth = 2;
  stream::StreamingDemodulator demod(sc);
  // Cut one symbol before the weaker frame completes.
  const std::size_t cut = static_cast<std::size_t>(
      cap.markers[1].sample_offset + demod.frame_samples() - spsym);
  demod.push(std::span<const dsp::Complex>(cap.samples).first(cut));
  demod.finish();
  EXPECT_EQ(demod.packets().size(), 1u);
  EXPECT_EQ(demod.truncated_packets(), 1u);
  EXPECT_EQ(demod.collision_groups(), 1u);  // the rescan did find it
}

// ------------------------------------------------------- zero allocation

#if SAIYAN_ALLOC_COUNTER

TEST(SicAllocation, ResolvingACollisionIsAllocationFreeOnceWarm) {
  // Warm phase: a colliding capture (decode + cancel + rescan +
  // revealed decode, including a ring wrap). Measured phase: replay a
  // longer schedule of fresh collisions through the same instance —
  // every cancellation pass and rescan must run without touching the
  // allocator as long as the caller drains packets.
  const std::size_t spsym = phy().samples_per_symbol();
  const lora::Modulator mod(phy());
  const std::size_t frame = mod.layout(16).total_samples;
  std::vector<std::uint64_t> offsets;
  std::vector<double> rss = {-55.0, -61.0};
  std::uint64_t cursor = 500;
  for (int pair = 0; pair < 8; ++pair) {
    offsets.push_back(cursor);
    offsets.push_back(cursor + 14 * spsym);
    cursor += 2 * frame + 20 * spsym;
  }
  sim::CaptureConfig cfg = collision_cfg(rss, offsets, 119);
  const sim::Capture cap = sim::generate_capture(cfg);
  ASSERT_EQ(cap.collision_groups, 8u);

  stream::StreamConfig sc;
  sc.saiyan = cfg.saiyan;
  sc.payload_symbols = cfg.payload_symbols;
  sc.sic.depth = 2;
  stream::StreamingDemodulator demod(sc);

  const std::span<const dsp::Complex> all(cap.samples);
  const std::size_t warm = cap.samples.size() / 2;
  std::size_t pos = 0;
  while (pos < warm) {
    const std::size_t take = std::min<std::size_t>(8192, warm - pos);
    demod.push(all.subspan(pos, take));
    pos += take;
  }
  ASSERT_GE(demod.collisions_resolved(), 2u)
      << "warm phase must resolve collisions";
  demod.clear_packets();

  g_allocations.store(0);
  g_counting.store(true);
  const std::size_t resolved_before = demod.collisions_resolved();
  while (pos < cap.samples.size()) {
    const std::size_t take =
        std::min<std::size_t>(8192, cap.samples.size() - pos);
    demod.push(all.subspan(pos, take));
    pos += take;
    demod.clear_packets();
  }
  g_counting.store(false);
  EXPECT_GT(demod.collisions_resolved(), resolved_before)
      << "measured phase must resolve collisions";
  EXPECT_EQ(g_allocations.load(), 0u)
      << "SIC resolution allocated in the steady state";
}

#endif  // SAIYAN_ALLOC_COUNTER

}  // namespace
}  // namespace saiyan
