// Streaming continuous-capture demodulation (src/stream/): ring
// carry-over, incremental preamble scanning, trace record/replay, and
// the tentpole equivalence property — streaming decode of a recorded
// multi-tag capture is bit-identical to batch decode of the
// individually framed packets, at any chunk size from one sample to
// the full trace, with zero heap allocations per chunk once warm.
//
// This file is its own test binary (ctest label `stream`) because it
// replaces the global allocation functions with counting versions for
// the zero-allocation test; the counter is disabled under ASan, which
// owns the allocator there.
#include "stream/streaming_demod.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "core/batch_demod.hpp"
#include "sim/capture.hpp"
#include "stream/sample_ring.hpp"
#include "stream/trace.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define SAIYAN_ALLOC_COUNTER 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SAIYAN_ALLOC_COUNTER 0
#endif
#endif
#ifndef SAIYAN_ALLOC_COUNTER
#define SAIYAN_ALLOC_COUNTER 1
#endif

#if SAIYAN_ALLOC_COUNTER

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // SAIYAN_ALLOC_COUNTER

namespace saiyan {
namespace {

lora::PhyParams phy() {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  return p;
}

sim::CaptureConfig capture_cfg(std::size_t n_tags, std::size_t packets_per_tag,
                               std::size_t payload_symbols,
                               core::Mode mode = core::Mode::kSuper,
                               std::uint64_t seed = 42) {
  sim::CaptureConfig cfg;
  cfg.saiyan = core::SaiyanConfig::make(phy(), mode);
  cfg.payload_symbols = payload_symbols;
  cfg.packets_per_tag = packets_per_tag;
  cfg.seed = seed;
  for (std::size_t t = 0; t < n_tags; ++t) {
    cfg.tag_rss_dbm.push_back(-55.0 - 3.0 * static_cast<double>(t));
  }
  return cfg;
}

stream::StreamConfig stream_cfg(const sim::CaptureConfig& cap,
                                std::uint64_t seed = 1) {
  stream::StreamConfig cfg;
  cfg.saiyan = cap.saiyan;
  cfg.payload_symbols = cap.payload_symbols;
  cfg.seed = seed;
  return cfg;
}

/// Push a capture in fixed-size chunks and finish.
void run_stream(stream::StreamingDemodulator& demod,
                std::span<const dsp::Complex> samples, std::size_t chunk) {
  while (!samples.empty()) {
    const std::size_t take = std::min(chunk, samples.size());
    demod.push(samples.first(take));
    samples = samples.subspan(take);
  }
  demod.finish();
}

// ------------------------------------------------------------ SampleRing

TEST(SampleRing, ViewsAreContiguousAcrossWrap) {
  stream::SampleRing<double> ring(8);
  std::vector<double> data(20);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i);
  ring.append(std::span<const double>(data).first(5));   // [0, 5)
  EXPECT_EQ(ring.begin(), 0u);
  EXPECT_EQ(ring.end(), 5u);
  auto v = ring.view(1, 3);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[2], 3.0);
  ring.append(std::span<const double>(data).subspan(5, 7));  // [0, 12), wraps
  EXPECT_EQ(ring.end(), 12u);
  EXPECT_EQ(ring.begin(), 4u);
  v = ring.view(4, 8);  // full retained range, must stitch
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(v[i], static_cast<double>(4 + i));
  EXPECT_THROW(ring.view(3, 2), std::out_of_range);   // fell off the tail
  EXPECT_THROW(ring.view(10, 4), std::out_of_range);  // beyond the head
}

TEST(SampleRing, AppendLargerThanCapacityThrows) {
  stream::SampleRing<double> ring(4);
  std::vector<double> data(5, 1.0);
  EXPECT_THROW(ring.append(std::span<const double>(data)), std::invalid_argument);
}

// ------------------------------------------------------------ trace I/O

class TraceFile : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test *and* per process: gtest_discover_tests runs
    // each TEST_F as its own ctest entry, and parallel ctest puts them
    // all in the same working directory.
    std::snprintf(path_, sizeof(path_), "saiyan_trace_%s_%d.sytrc",
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name(),
                  static_cast<int>(::getpid()));
  }
  void TearDown() override { std::remove(path_); }
  char path_[128];
};

TEST_F(TraceFile, RoundTripIsBitExact) {
  const sim::CaptureConfig cfg = capture_cfg(2, 2, 8);
  const sim::Capture cap = sim::generate_capture(cfg);
  sim::write_capture(cap, cfg, path_, 10000);  // odd chunking on purpose

  // Result-returning open — the public-boundary convention.
  auto opened = stream::TraceReader::open(path_);
  ASSERT_TRUE(opened.ok()) << opened.message();
  stream::TraceReader reader = std::move(opened).value();
  EXPECT_EQ(reader.meta().phy.spreading_factor, cfg.saiyan.phy.spreading_factor);
  EXPECT_DOUBLE_EQ(reader.meta().phy.sample_rate_hz, cfg.saiyan.phy.sample_rate_hz);
  EXPECT_DOUBLE_EQ(reader.meta().phy.bandwidth_hz, cfg.saiyan.phy.bandwidth_hz);
  EXPECT_EQ(reader.meta().mode, cfg.saiyan.mode);
  EXPECT_EQ(reader.meta().payload_symbols, cfg.payload_symbols);
  EXPECT_EQ(reader.meta().total_samples, cap.samples.size());
  ASSERT_EQ(reader.markers().size(), cap.markers.size());
  for (std::size_t i = 0; i < cap.markers.size(); ++i) {
    EXPECT_EQ(reader.markers()[i].sample_offset, cap.markers[i].sample_offset);
    EXPECT_EQ(reader.markers()[i].tag_id, cap.markers[i].tag_id);
    EXPECT_EQ(reader.markers()[i].symbols, cap.markers[i].symbols);
  }

  dsp::Signal chunk;
  dsp::Signal all;
  stream::ChunkStatus st;
  while ((st = reader.next_chunk(chunk)) == stream::ChunkStatus::kOk) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(st, stream::ChunkStatus::kEof);
  ASSERT_EQ(all.size(), cap.samples.size());
  EXPECT_EQ(0, std::memcmp(all.data(), cap.samples.data(),
                           all.size() * sizeof(dsp::Complex)));
}

TEST_F(TraceFile, CorruptChunkIsRejectedCleanly) {
  const sim::CaptureConfig cfg = capture_cfg(1, 1, 4);
  const sim::Capture cap = sim::generate_capture(cfg);
  sim::write_capture(cap, cfg, path_, 4096);

  // Flip one payload byte in the second chunk.
  std::FILE* f = std::fopen(path_, "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -64, SEEK_END);
  int byte = std::fgetc(f);
  std::fseek(f, -64, SEEK_END);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);

  stream::TraceReader reader(path_);
  dsp::Signal chunk;
  stream::ChunkStatus st = stream::ChunkStatus::kOk;
  std::size_t ok_chunks = 0;
  while ((st = reader.next_chunk(chunk)) == stream::ChunkStatus::kOk) ++ok_chunks;
  EXPECT_EQ(st, stream::ChunkStatus::kCorrupt);
  EXPECT_LT(ok_chunks, (cap.samples.size() + 4095) / 4096);
  // The reader stays failed instead of resyncing into garbage.
  EXPECT_EQ(reader.next_chunk(chunk), stream::ChunkStatus::kCorrupt);
  EXPECT_TRUE(chunk.empty());
}

TEST_F(TraceFile, TruncatedFileIsRejectedCleanly) {
  const sim::CaptureConfig cfg = capture_cfg(1, 1, 4);
  const sim::Capture cap = sim::generate_capture(cfg);
  sim::write_capture(cap, cfg, path_, 4096);
  // Chop the file mid-chunk.
  std::FILE* f = std::fopen(path_, "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(0, ::truncate(path_, size - 100));

  stream::TraceReader reader(path_);
  dsp::Signal chunk;
  stream::ChunkStatus st;
  while ((st = reader.next_chunk(chunk)) == stream::ChunkStatus::kOk) {
  }
  EXPECT_EQ(st, stream::ChunkStatus::kCorrupt);
}

TEST_F(TraceFile, TruncationAtExactChunkBoundaryIsDetected) {
  // Chopping whole trailing chunks leaves every remaining chunk
  // CRC-clean; the header's total sample count is what catches it.
  const sim::CaptureConfig cfg = capture_cfg(1, 1, 4);
  const sim::Capture cap = sim::generate_capture(cfg);
  const std::size_t chunk_samples = 4096;
  sim::write_capture(cap, cfg, path_, chunk_samples);
  const std::size_t last_len = cap.samples.size() % chunk_samples == 0
                                   ? chunk_samples
                                   : cap.samples.size() % chunk_samples;
  std::FILE* f = std::fopen(path_, "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(0, ::truncate(path_, size - static_cast<long>(
                                             8 + last_len * sizeof(dsp::Complex))));

  stream::TraceReader reader(path_);
  dsp::Signal chunk;
  stream::ChunkStatus st;
  std::size_t got = 0;
  while ((st = reader.next_chunk(chunk)) == stream::ChunkStatus::kOk) {
    got += chunk.size();
  }
  EXPECT_EQ(st, stream::ChunkStatus::kCorrupt);
  EXPECT_EQ(got, cap.samples.size() - last_len);
}

TEST_F(TraceFile, FloatV2HalvesTheBytesAndRoundTripsToFloatPrecision) {
  const sim::CaptureConfig cfg = capture_cfg(2, 2, 8);
  const sim::Capture cap = sim::generate_capture(cfg);
  char path_v1[140];
  std::snprintf(path_v1, sizeof(path_v1), "%s.v1", path_);
  sim::write_capture(cap, cfg, path_v1, 10000, /*float32=*/false);
  sim::write_capture(cap, cfg, path_, 10000, /*float32=*/true);

  // Half the chunk payload bytes (headers/markers are shared).
  const auto file_size = [](const char* p) {
    std::FILE* f = std::fopen(p, "rb");
    std::fseek(f, 0, SEEK_END);
    const long s = std::ftell(f);
    std::fclose(f);
    return s;
  };
  const long v1 = file_size(path_v1);
  const long v2 = file_size(path_);
  std::remove(path_v1);
  const long payload_v1 =
      static_cast<long>(cap.samples.size() * sizeof(dsp::Complex));
  EXPECT_EQ(v1 - payload_v1, v2 - payload_v1 / 2);

  stream::TraceReader reader(path_);
  EXPECT_TRUE(reader.meta().float32_samples);
  EXPECT_EQ(reader.meta().total_samples, cap.samples.size());
  dsp::Signal chunk;
  dsp::Signal all;
  stream::ChunkStatus st;
  while ((st = reader.next_chunk(chunk)) == stream::ChunkStatus::kOk) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(st, stream::ChunkStatus::kEof);
  ASSERT_EQ(all.size(), cap.samples.size());
  // Tolerance-equivalent, not bit-exact: float32 keeps ~7 significant
  // digits of the nanowatt-scale samples.
  double max_rel = 0.0;
  double scale = 0.0;
  for (const dsp::Complex& v : cap.samples) {
    scale = std::max(scale, std::abs(v));
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    max_rel = std::max(max_rel, std::abs(all[i] - cap.samples[i]) / scale);
  }
  EXPECT_GT(max_rel, 0.0) << "float32 must actually quantize";
  EXPECT_LT(max_rel, 1e-6);
}

TEST_F(TraceFile, FloatV2ReplayMatchesMemoryDecodeWithinTolerance) {
  // The v2 replay-equivalence property: same packets at the same
  // offsets, and a symbol stream whose disagreement with the float64
  // decode is bounded — quantization may flip a borderline symbol, so
  // the test is tolerance-based where the v1 test is bit-exact.
  const sim::CaptureConfig cfg = capture_cfg(3, 4, 8);
  const sim::Capture cap = sim::generate_capture(cfg);
  sim::write_capture(cap, cfg, path_, 20000, /*float32=*/true);
  const sim::ReplayStats v2 = sim::replay_trace(path_);

  stream::StreamingDemodulator demod(stream_cfg(cfg));
  run_stream(demod, cap.samples, 16384);
  const sim::ReplayStats mem = sim::score_replay(
      demod, cap.markers, cfg.saiyan.phy.samples_per_symbol() / 2);

  EXPECT_EQ(v2.markers, mem.markers);
  EXPECT_EQ(v2.matched, mem.matched);
  EXPECT_EQ(v2.false_detections, 0u);
  EXPECT_EQ(v2.corrupt_chunks, 0u);
  EXPECT_EQ(v2.samples, cap.samples.size());
  const std::size_t diff = v2.symbol_errors > mem.symbol_errors
                               ? v2.symbol_errors - mem.symbol_errors
                               : mem.symbol_errors - v2.symbol_errors;
  EXPECT_LE(diff, v2.symbols / 100) << "v2 decode drifted beyond tolerance";
}

TEST_F(TraceFile, FloatV2CorruptChunkIsStillRejected) {
  const sim::CaptureConfig cfg = capture_cfg(1, 1, 4);
  const sim::Capture cap = sim::generate_capture(cfg);
  sim::write_capture(cap, cfg, path_, 4096, /*float32=*/true);
  std::FILE* f = std::fopen(path_, "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -64, SEEK_END);
  int byte = std::fgetc(f);
  std::fseek(f, -64, SEEK_END);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);

  stream::TraceReader reader(path_);
  dsp::Signal chunk;
  stream::ChunkStatus st;
  while ((st = reader.next_chunk(chunk)) == stream::ChunkStatus::kOk) {
  }
  EXPECT_EQ(st, stream::ChunkStatus::kCorrupt);
}

TEST(Trace, BadMagicThrows) {
  const char* path = "saiyan_trace_bad_magic.sytrc";
  std::FILE* f = std::fopen(path, "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a trace", f);
  std::fclose(f);
  EXPECT_THROW(stream::TraceReader reader(path), std::runtime_error);
  // The Result-returning form reports the same failure, classified.
  auto r = stream::TraceReader::open(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().ingest, stream::IngestError::kBadMagic);
  std::remove(path);
}

// ------------------------------------- the tentpole equivalence property

// 50-packet multi-tag capture shared by the equivalence tests.
class StreamEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg_ = new sim::CaptureConfig(capture_cfg(5, 10, 16));
    cap_ = new sim::Capture(sim::generate_capture(*cfg_));
  }
  static void TearDownTestSuite() {
    delete cap_;
    delete cfg_;
    cap_ = nullptr;
    cfg_ = nullptr;
  }
  static sim::CaptureConfig* cfg_;
  static sim::Capture* cap_;
};

sim::CaptureConfig* StreamEquivalence::cfg_ = nullptr;
sim::Capture* StreamEquivalence::cap_ = nullptr;

TEST_F(StreamEquivalence, FindsEveryPacketAtItsTrueOffset) {
  stream::StreamingDemodulator demod(stream_cfg(*cfg_));
  run_stream(demod, cap_->samples, cap_->samples.size());
  ASSERT_EQ(demod.packets().size(), cap_->markers.size());
  for (std::size_t i = 0; i < cap_->markers.size(); ++i) {
    const std::int64_t err =
        static_cast<std::int64_t>(demod.packets()[i].packet_start) -
        static_cast<std::int64_t>(cap_->markers[i].sample_offset);
    EXPECT_LE(std::llabs(err), 2) << "packet " << i;
    EXPECT_GE(demod.packets()[i].score, demod.config().min_score);
  }
  EXPECT_EQ(demod.truncated_packets(), 0u);
}

TEST_F(StreamEquivalence, StreamingIsBitIdenticalToBatchFramedDecode) {
  // The acceptance property: streamed decode == batch decode of the
  // individually framed packets — same bits, same error counts.
  stream::StreamingDemodulator demod(stream_cfg(*cfg_));
  run_stream(demod, cap_->samples, 8192);
  ASSERT_EQ(demod.packets().size(), cap_->markers.size());

  core::BatchDemodulator batch(cfg_->saiyan);
  std::size_t stream_errors = 0;
  std::size_t batch_errors = 0;
  for (std::size_t i = 0; i < demod.packets().size(); ++i) {
    const stream::DecodedPacket& p = demod.packets()[i];
    const std::span<const dsp::Complex> frame =
        std::span<const dsp::Complex>(cap_->samples)
            .subspan(static_cast<std::size_t>(p.packet_start),
                     demod.frame_samples());
    dsp::Rng rng(dsp::derive_stream_seed(demod.config().seed, i));
    const std::span<const std::uint32_t> want = batch.decode_aligned(
        frame, demod.preamble_samples(), cfg_->payload_symbols, rng);
    const std::span<const std::uint32_t> got = demod.symbols(p);
    ASSERT_EQ(want.size(), got.size()) << "packet " << i;
    for (std::size_t s = 0; s < want.size(); ++s) {
      EXPECT_EQ(want[s], got[s]) << "packet " << i << " symbol " << s;
    }
    // Identical error counts against the ground truth.
    const std::vector<std::uint32_t>& tx = cap_->markers[i].symbols;
    for (std::size_t s = 0; s < tx.size(); ++s) {
      stream_errors += (s >= got.size() || got[s] != tx[s]) ? 1 : 0;
      batch_errors += (s >= want.size() || want[s] != tx[s]) ? 1 : 0;
    }
    EXPECT_DOUBLE_EQ(demod.batch().workspace().preamble_score, 1.0);
  }
  EXPECT_EQ(stream_errors, batch_errors);
}

TEST_F(StreamEquivalence, ChunkSizeDoesNotChangeAnyBit) {
  // One sample at a time up to the whole trace in one push.
  stream::StreamingDemodulator reference(stream_cfg(*cfg_));
  run_stream(reference, cap_->samples, cap_->samples.size());
  ASSERT_EQ(reference.packets().size(), cap_->markers.size());

  stream::StreamingDemodulator demod(stream_cfg(*cfg_));
  for (std::size_t chunk : {std::size_t{1}, std::size_t{997},
                            std::size_t{8192}, std::size_t{65536}}) {
    demod.reset();
    demod.clear_packets();
    run_stream(demod, cap_->samples, chunk);
    ASSERT_EQ(demod.packets().size(), reference.packets().size())
        << "chunk " << chunk;
    for (std::size_t i = 0; i < reference.packets().size(); ++i) {
      const stream::DecodedPacket& a = reference.packets()[i];
      const stream::DecodedPacket& b = demod.packets()[i];
      EXPECT_EQ(a.packet_start, b.packet_start) << "chunk " << chunk;
      EXPECT_EQ(a.payload_start, b.payload_start) << "chunk " << chunk;
      EXPECT_DOUBLE_EQ(a.score, b.score) << "chunk " << chunk;
      const auto sa = reference.symbols(a);
      const auto sb = demod.symbols(b);
      ASSERT_EQ(sa.size(), sb.size());
      for (std::size_t s = 0; s < sa.size(); ++s) {
        EXPECT_EQ(sa[s], sb[s]) << "chunk " << chunk << " packet " << i;
      }
    }
  }
}

TEST_F(StreamEquivalence, ReplayFromTraceFileMatchesMemory) {
  char path[64];
  std::snprintf(path, sizeof(path), "saiyan_stream_replay_%d.sytrc",
                ::testing::UnitTest::GetInstance()->random_seed());
  sim::write_capture(*cap_, *cfg_, path, 20000);
  const sim::ReplayStats stats = sim::replay_trace(path);
  std::remove(path);
  EXPECT_EQ(stats.markers, cap_->markers.size());
  EXPECT_EQ(stats.matched, cap_->markers.size());
  EXPECT_EQ(stats.false_detections, 0u);
  EXPECT_EQ(stats.corrupt_chunks, 0u);
  EXPECT_EQ(stats.samples, cap_->samples.size());

  // And the in-memory streaming run counts the same symbol errors.
  stream::StreamingDemodulator demod(stream_cfg(*cfg_));
  run_stream(demod, cap_->samples, 16384);
  const sim::ReplayStats mem = sim::score_replay(
      demod, cap_->markers, cfg_->saiyan.phy.samples_per_symbol() / 2);
  EXPECT_EQ(stats.symbol_errors, mem.symbol_errors);
  EXPECT_EQ(stats.symbols, mem.symbols);
}

// ------------------------------------------------------- edge cases

TEST(StreamEdgeCases, PreambleStraddlingAChunkBoundaryAtEveryOffset) {
  // One packet; the push boundary sweeps across every offset of the
  // symbol that contains the middle of its preamble. Every split must
  // reproduce the reference decode bit for bit.
  const sim::CaptureConfig cfg = capture_cfg(1, 1, 4, core::Mode::kSuper, 7);
  const sim::Capture cap = sim::generate_capture(cfg);
  ASSERT_EQ(cap.markers.size(), 1u);

  stream::StreamingDemodulator reference(stream_cfg(cfg));
  run_stream(reference, cap.samples, cap.samples.size());
  ASSERT_EQ(reference.packets().size(), 1u);
  const std::vector<std::uint32_t> want(
      reference.symbols(reference.packets()[0]).begin(),
      reference.symbols(reference.packets()[0]).end());
  const std::uint64_t want_start = reference.packets()[0].packet_start;

  const std::size_t spsym = cfg.saiyan.phy.samples_per_symbol();
  const std::size_t mid =
      static_cast<std::size_t>(cap.markers[0].sample_offset) +
      reference.preamble_samples() / 2;
  stream::StreamingDemodulator demod(stream_cfg(cfg));
  for (std::size_t off = 0; off < spsym; ++off) {
    demod.reset();
    demod.clear_packets();
    const std::span<const dsp::Complex> all(cap.samples);
    demod.push(all.first(mid + off));
    demod.push(all.subspan(mid + off));
    demod.finish();
    ASSERT_EQ(demod.packets().size(), 1u) << "offset " << off;
    EXPECT_EQ(demod.packets()[0].packet_start, want_start) << "offset " << off;
    const auto got = demod.symbols(demod.packets()[0]);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t s = 0; s < want.size(); ++s) {
      EXPECT_EQ(got[s], want[s]) << "offset " << off << " symbol " << s;
    }
  }
}

TEST(StreamEdgeCases, BackToBackPacketsWithZeroGap) {
  sim::CaptureConfig cfg = capture_cfg(1, 3, 8, core::Mode::kSuper, 11);
  cfg.min_gap_symbols = 0.0;
  cfg.max_gap_symbols = 0.0;
  const sim::Capture cap = sim::generate_capture(cfg);
  ASSERT_EQ(cap.markers.size(), 3u);
  // Zero gaps: each packet begins exactly where the previous ended.
  stream::StreamingDemodulator demod(stream_cfg(cfg));
  ASSERT_EQ(cap.markers[1].sample_offset,
            cap.markers[0].sample_offset + demod.frame_samples());

  run_stream(demod, cap.samples, 4096);
  const sim::ReplayStats stats = sim::score_replay(
      demod, cap.markers, cfg.saiyan.phy.samples_per_symbol() / 2);
  EXPECT_EQ(stats.matched, 3u);
  EXPECT_EQ(stats.false_detections, 0u);
  EXPECT_EQ(stats.ser(), 0.0);
}

TEST(StreamEdgeCases, TruncatedFinalPacketIsDroppedNotDecoded) {
  const sim::CaptureConfig cfg = capture_cfg(2, 3, 8, core::Mode::kSuper, 13);
  const sim::Capture cap = sim::generate_capture(cfg);
  ASSERT_EQ(cap.markers.size(), 6u);
  stream::StreamingDemodulator demod(stream_cfg(cfg));
  // Cut the capture one symbol before the last frame completes.
  const std::size_t cut =
      static_cast<std::size_t>(cap.markers.back().sample_offset) +
      demod.frame_samples() - cfg.saiyan.phy.samples_per_symbol();
  run_stream(demod, std::span<const dsp::Complex>(cap.samples).first(cut),
             4096);
  EXPECT_EQ(demod.packets().size(), 5u);
  EXPECT_EQ(demod.truncated_packets(), 1u);
  const sim::ReplayStats stats = sim::score_replay(
      demod, cap.markers, cfg.saiyan.phy.samples_per_symbol() / 2);
  EXPECT_EQ(stats.matched, 5u);
  EXPECT_EQ(stats.false_detections, 0u);
}

TEST(StreamEdgeCases, RingWrapsAroundMidPacketWithoutCorruption) {
  // Long idle gaps force the RF ring to wrap many times, including
  // mid-packet; every packet must still decode cleanly.
  sim::CaptureConfig cfg = capture_cfg(1, 4, 8, core::Mode::kSuper, 17);
  cfg.min_gap_symbols = 40.0;
  cfg.max_gap_symbols = 60.0;
  const sim::Capture cap = sim::generate_capture(cfg);
  stream::StreamingDemodulator demod(stream_cfg(cfg));
  ASSERT_LT(demod.frame_samples() + 3 * demod.block_samples(),
            cap.samples.size())
      << "capture must exceed ring capacity for the wrap to happen";
  run_stream(demod, cap.samples, 2048);
  const sim::ReplayStats stats = sim::score_replay(
      demod, cap.markers, cfg.saiyan.phy.samples_per_symbol() / 2);
  EXPECT_EQ(stats.matched, 4u);
  EXPECT_EQ(stats.ser(), 0.0);
}

class StreamModes : public ::testing::TestWithParam<core::Mode> {};

TEST_P(StreamModes, DecodesCleanCaptureInEveryMode) {
  const sim::CaptureConfig cfg = capture_cfg(2, 3, 8, GetParam(), 19);
  const sim::Capture cap = sim::generate_capture(cfg);
  stream::StreamingDemodulator demod(stream_cfg(cfg));
  run_stream(demod, cap.samples, 16384);
  const sim::ReplayStats stats = sim::score_replay(
      demod, cap.markers, cfg.saiyan.phy.samples_per_symbol() / 2);
  EXPECT_EQ(stats.matched, 6u) << core::mode_name(GetParam());
  EXPECT_EQ(stats.false_detections, 0u);
  EXPECT_LE(stats.ser(), 0.02) << core::mode_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Modes, StreamModes,
                         ::testing::Values(core::Mode::kVanilla,
                                           core::Mode::kFrequencyShifting,
                                           core::Mode::kSuper),
                         [](const auto& info) {
                           return std::string(core::mode_name(info.param)) ==
                                          "freq-shifting"
                                      ? "freq_shifting"
                                      : core::mode_name(info.param);
                         });

#if SAIYAN_ALLOC_COUNTER

TEST(StreamAllocation, PushIsAllocationFreeOnceWarm) {
  // The tentpole zero-allocation property: once the rings, scan
  // workspace, correlator workspaces and decode workspace are warm (a
  // few packets in, including at least one wrapped frame), pushing
  // further chunks — detection and decode included — never touches
  // the allocator as long as the caller drains packets.
  const sim::CaptureConfig cfg = capture_cfg(2, 6, 8, core::Mode::kSuper, 23);
  const sim::Capture cap = sim::generate_capture(cfg);
  stream::StreamingDemodulator demod(stream_cfg(cfg));
  ASSERT_GT(cap.samples.size(),
            2 * (demod.frame_samples() + 2 * demod.block_samples()))
      << "warm phase must wrap the ring";

  const std::span<const dsp::Complex> all(cap.samples);
  const std::size_t warm = cap.samples.size() / 2;
  std::size_t pos = 0;
  while (pos < warm) {
    const std::size_t take = std::min<std::size_t>(4096, warm - pos);
    demod.push(all.subspan(pos, take));
    pos += take;
  }
  ASSERT_GE(demod.packets().size(), 3u) << "warm phase must decode packets";
  demod.clear_packets();

  g_allocations.store(0);
  g_counting.store(true);
  while (pos < cap.samples.size()) {
    const std::size_t take =
        std::min<std::size_t>(4096, cap.samples.size() - pos);
    demod.push(all.subspan(pos, take));
    pos += take;
    demod.clear_packets();
  }
  g_counting.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "streaming push allocated in the steady state";
}

#endif  // SAIYAN_ALLOC_COUNTER

}  // namespace
}  // namespace saiyan
