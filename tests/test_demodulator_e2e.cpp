// End-to-end Saiyan demodulator: loopback per mode, full sync path,
// sensitivity ordering (vanilla < CFS < super), and frame-level
// round trips over the air.
#include <gtest/gtest.h>

#include "channel/awgn_channel.hpp"
#include "core/demodulator.hpp"
#include "lora/frame.hpp"
#include "dsp/utils.hpp"
#include "lora/modulator.hpp"

namespace saiyan::core {
namespace {

lora::PhyParams phy(int k = 2, int sf = 7, double bw = 500e3) {
  lora::PhyParams p;
  p.spreading_factor = sf;
  p.bandwidth_hz = bw;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = k;
  return p;
}

std::vector<std::uint32_t> random_payload(dsp::Rng& rng, const lora::PhyParams& p,
                                          std::size_t n) {
  std::vector<std::uint32_t> tx(n);
  for (auto& v : tx) {
    v = static_cast<std::uint32_t>(rng.uniform_int(0, p.symbol_alphabet() - 1));
  }
  return tx;
}

std::size_t count_errors(const std::vector<std::uint32_t>& tx,
                         const std::vector<std::uint32_t>& rx) {
  std::size_t e = 0;
  for (std::size_t i = 0; i < tx.size(); ++i) {
    e += (i >= rx.size() || rx[i] != tx[i]) ? 1 : 0;
  }
  return e;
}

class ModeLoopback : public ::testing::TestWithParam<Mode> {};

TEST_P(ModeLoopback, CleanChannelAlignedDecode) {
  const SaiyanConfig cfg = SaiyanConfig::make(phy(), GetParam());
  const SaiyanDemodulator demod(cfg);
  lora::Modulator mod(cfg.phy);
  dsp::Rng rng(21);
  channel::AwgnChannel chan(cfg.phy.sample_rate_hz, 6.0);
  const auto tx = random_payload(rng, cfg.phy, 32);
  const dsp::Signal rx = chan.apply(mod.modulate(tx), -50.0, rng);
  const lora::PacketLayout lay = mod.layout(tx.size());
  const DemodResult r = demod.demodulate_aligned(rx, lay.payload_start, tx.size(), rng);
  EXPECT_EQ(count_errors(tx, r.symbols), 0u);
}

TEST_P(ModeLoopback, FullSyncPathDecodes) {
  const SaiyanConfig cfg = SaiyanConfig::make(phy(), GetParam());
  const SaiyanDemodulator demod(cfg);
  lora::Modulator mod(cfg.phy);
  dsp::Rng rng(22);
  channel::AwgnChannel chan(cfg.phy.sample_rate_hz, 6.0);
  const auto tx = random_payload(rng, cfg.phy, 16);
  const dsp::Signal rx = chan.apply(mod.modulate(tx), -55.0, rng);
  const DemodResult r = demod.demodulate(rx, tx.size(), rng);
  ASSERT_TRUE(r.preamble_found);
  EXPECT_LE(count_errors(tx, r.symbols), 1u);
}

TEST_P(ModeLoopback, DetectsPacketAndRejectsNoise) {
  const SaiyanConfig cfg = SaiyanConfig::make(phy(), GetParam());
  const SaiyanDemodulator demod(cfg);
  lora::Modulator mod(cfg.phy);
  dsp::Rng rng(23);
  channel::AwgnChannel chan(cfg.phy.sample_rate_hz, 6.0);
  const auto tx = random_payload(rng, cfg.phy, 8);
  const dsp::Signal rx = chan.apply(mod.modulate(tx), -55.0, rng);
  EXPECT_TRUE(demod.detect_packet(rx, rng));
  // Pure noise of the same length: no detection.
  dsp::Signal noise(rx.size(), dsp::Complex{});
  dsp::add_awgn(noise, dsp::dbm_to_watts(-95.0), rng);
  EXPECT_FALSE(demod.detect_packet(noise, rng));
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeLoopback,
                         ::testing::Values(Mode::kVanilla,
                                           Mode::kFrequencyShifting,
                                           Mode::kSuper));

class KSweepLoopback : public ::testing::TestWithParam<int> {};

TEST_P(KSweepLoopback, SuperDecodesAllRates) {
  const SaiyanConfig cfg = SaiyanConfig::make(phy(GetParam()), Mode::kSuper);
  const SaiyanDemodulator demod(cfg);
  lora::Modulator mod(cfg.phy);
  dsp::Rng rng(24);
  channel::AwgnChannel chan(cfg.phy.sample_rate_hz, 6.0);
  const auto tx = random_payload(rng, cfg.phy, 24);
  const dsp::Signal rx = chan.apply(mod.modulate(tx), -50.0, rng);
  const lora::PacketLayout lay = mod.layout(tx.size());
  const DemodResult r = demod.demodulate_aligned(rx, lay.payload_start, tx.size(), rng);
  EXPECT_EQ(count_errors(tx, r.symbols), 0u);
}

INSTANTIATE_TEST_SUITE_P(K1to5, KSweepLoopback, ::testing::Values(1, 2, 3, 4, 5));

TEST(SensitivityOrdering, SuperBeatsCfsBeatsVanilla) {
  // The ablation ordering of Fig. 25, measured at symbol level: at an
  // RSS where super is clean, vanilla must be failing, with CFS in
  // between.
  dsp::Rng rng(25);
  auto errors_at = [&](Mode mode, double rss) {
    const SaiyanConfig cfg = SaiyanConfig::make(phy(), mode);
    const SaiyanDemodulator demod(cfg);
    lora::Modulator mod(cfg.phy);
    channel::AwgnChannel chan(cfg.phy.sample_rate_hz, 6.0);
    std::size_t errs = 0;
    for (int trial = 0; trial < 3; ++trial) {
      const auto tx = random_payload(rng, cfg.phy, 32);
      const dsp::Signal rx = chan.apply(mod.modulate(tx), rss, rng);
      const lora::PacketLayout lay = mod.layout(tx.size());
      const DemodResult r =
          demod.demodulate_aligned(rx, lay.payload_start, tx.size(), rng);
      errs += count_errors(tx, r.symbols);
    }
    return errs;
  };
  // -72 dBm: vanilla far gone, CFS marginal/OK, super clean.
  EXPECT_GT(errors_at(Mode::kVanilla, -72.0), 10u);
  EXPECT_LE(errors_at(Mode::kFrequencyShifting, -72.0), 6u);
  EXPECT_EQ(errors_at(Mode::kSuper, -72.0), 0u);
  // -80 dBm: only super survives.
  EXPECT_GT(errors_at(Mode::kFrequencyShifting, -80.0), 8u);
  EXPECT_LE(errors_at(Mode::kSuper, -80.0), 3u);
}

TEST(FrameOverTheAir, BytesThroughSaiyanLink) {
  // Full stack: bytes -> FrameCodec -> chirps -> channel -> Saiyan ->
  // FrameCodec -> bytes.
  lora::PhyParams p = phy(2);
  p.fec = lora::FecRate::k4_7;
  const SaiyanConfig cfg = SaiyanConfig::make(p, Mode::kSuper);
  const SaiyanDemodulator demod(cfg);
  const lora::FrameCodec codec(p);
  lora::Modulator mod(p);
  dsp::Rng rng(26);
  channel::AwgnChannel chan(p.sample_rate_hz, 6.0);

  const std::vector<std::uint8_t> payload = {'s', 'a', 'i', 'y', 'a', 'n', '!',
                                             0x00, 0xFF, 0x42};
  const auto symbols = codec.encode(payload);
  const dsp::Signal rx = chan.apply(mod.modulate(symbols), -60.0, rng);
  const DemodResult r = demod.demodulate(rx, symbols.size(), rng);
  ASSERT_TRUE(r.preamble_found);
  const auto decoded = codec.decode(r.symbols);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(Config, MakeKeepsRatesConsistent) {
  const SaiyanConfig cfg = SaiyanConfig::make(phy(3), Mode::kSuper);
  EXPECT_EQ(cfg.envelope.sample_rate_hz, cfg.phy.sample_rate_hz);
  EXPECT_EQ(cfg.cfs.clock.sample_rate_hz, cfg.phy.sample_rate_hz);
  EXPECT_LT(cfg.cfs.output_lpf_cutoff_hz, cfg.cfs.clock.frequency_hz);
  EXPECT_NEAR(cfg.effective_rf_center_hz(), 433.75e6, 1.0);
}

TEST(Config, ModeNames) {
  EXPECT_STREQ(mode_name(Mode::kVanilla), "vanilla");
  EXPECT_STREQ(mode_name(Mode::kFrequencyShifting), "freq-shifting");
  EXPECT_STREQ(mode_name(Mode::kSuper), "super");
}

TEST(Demodulator, ThresholdHintOverridesAuto) {
  const SaiyanConfig cfg = SaiyanConfig::make(phy(), Mode::kVanilla);
  const SaiyanDemodulator demod(cfg);
  lora::Modulator mod(cfg.phy);
  dsp::Rng rng(27);
  channel::AwgnChannel chan(cfg.phy.sample_rate_hz, 6.0);
  const auto tx = random_payload(rng, cfg.phy, 8);
  const dsp::Signal rx = chan.apply(mod.modulate(tx), -50.0, rng);
  const lora::PacketLayout lay = mod.layout(tx.size());
  const frontend::ThresholdPair hint{1e-7, 5e-8};
  const DemodResult r =
      demod.demodulate_aligned(rx, lay.payload_start, tx.size(), rng, hint);
  EXPECT_EQ(r.thresholds.u_high, hint.u_high);
  EXPECT_EQ(r.thresholds.u_low, hint.u_low);
}

}  // namespace
}  // namespace saiyan::core
