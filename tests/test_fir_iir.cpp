// FIR design / filtering and IIR biquad / one-pole behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fir.hpp"
#include "dsp/rng.hpp"
#include "dsp/iir.hpp"
#include "dsp/nco.hpp"
#include "dsp/utils.hpp"

namespace saiyan::dsp {
namespace {

double tone_gain_through_fir(const RealSignal& taps, double f, double fs) {
  Nco nco(f, fs);
  const std::size_t n = 4096;
  RealSignal x = nco.cosine(n);
  const RealSignal y = fft_filter(std::span<const double>(x), taps);
  // Compare RMS in the steady-state middle.
  double px = 0.0;
  double py = 0.0;
  for (std::size_t i = n / 4; i < 3 * n / 4; ++i) {
    px += x[i] * x[i];
    py += y[i] * y[i];
  }
  return std::sqrt(py / px);
}

TEST(FirDesign, LowpassPassesPassbandRejectsStopband) {
  const double fs = 1e6;
  const RealSignal taps = design_lowpass(100e3, fs, 101);
  EXPECT_NEAR(tone_gain_through_fir(taps, 10e3, fs), 1.0, 0.05);
  EXPECT_LT(tone_gain_through_fir(taps, 300e3, fs), 0.02);
}

TEST(FirDesign, HighpassRejectsDcPassesHigh) {
  const double fs = 1e6;
  const RealSignal taps = design_highpass(100e3, fs, 101);
  EXPECT_LT(tone_gain_through_fir(taps, 10e3, fs), 0.05);
  EXPECT_NEAR(tone_gain_through_fir(taps, 400e3, fs), 1.0, 0.05);
}

TEST(FirDesign, BandpassSelectsBand) {
  const double fs = 4e6;
  const RealSignal taps = design_bandpass(400e3, 600e3, fs, 201);
  EXPECT_NEAR(tone_gain_through_fir(taps, 500e3, fs), 1.0, 0.08);
  EXPECT_LT(tone_gain_through_fir(taps, 100e3, fs), 0.05);
  EXPECT_LT(tone_gain_through_fir(taps, 1.5e6, fs), 0.05);
}

TEST(FirDesign, RejectsBadArguments) {
  EXPECT_THROW(design_lowpass(0.0, 1e6, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(600e3, 1e6, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(100e3, 1e6, 0), std::invalid_argument);
  EXPECT_THROW(design_highpass(100e3, 1e6, 30), std::invalid_argument);  // even taps
  EXPECT_THROW(design_bandpass(300e3, 200e3, 1e6, 31), std::invalid_argument);
}

TEST(FirFilterClass, StreamingMatchesBlockProcessing) {
  const RealSignal taps = design_lowpass(0.1, 1.0, 21);
  FirFilter a(taps);
  FirFilter b(taps);
  Rng rng(3);
  RealSignal x(256);
  for (double& v : x) v = rng.gaussian();
  const RealSignal block = a.process(std::span<const double>(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(b.step(x[i]), block[i], 1e-12);
  }
}

TEST(FirFilterClass, ResetClearsState) {
  const RealSignal taps = design_lowpass(0.1, 1.0, 21);
  FirFilter f(taps);
  f.step(1.0);
  f.reset();
  // After reset an impulse must reproduce the first tap exactly.
  EXPECT_NEAR(f.step(1.0), taps[0], 1e-15);
}

TEST(FirFilterClass, GroupDelay) {
  FirFilter f(design_lowpass(0.1, 1.0, 21));
  EXPECT_NEAR(f.group_delay(), 10.0, 1e-12);
}

TEST(FftFilter, CompensatesGroupDelay) {
  const double fs = 1e6;
  const RealSignal taps = design_lowpass(200e3, fs, 63);
  // A slow ramp should come through nearly unchanged and aligned.
  RealSignal x(512);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  const RealSignal y = fft_filter(std::span<const double>(x), taps);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 100; i < 400; ++i) {
    EXPECT_NEAR(y[i], x[i], 1.0) << i;
  }
}

TEST(Biquad, LowpassMagnitudeResponse) {
  const Biquad lp = Biquad::lowpass(100e3, 1e6, 0.707);
  EXPECT_NEAR(lp.magnitude(1e3, 1e6), 1.0, 0.01);
  EXPECT_NEAR(lp.magnitude(100e3, 1e6), 0.707, 0.03);
  EXPECT_LT(lp.magnitude(400e3, 1e6), 0.1);
}

TEST(Biquad, BandpassPeaksAtCenter) {
  const Biquad bp = Biquad::bandpass(500e3, 4e6, 3.0);
  EXPECT_NEAR(bp.magnitude(500e3, 4e6), 1.0, 0.02);
  EXPECT_LT(bp.magnitude(50e3, 4e6), 0.12);
  EXPECT_LT(bp.magnitude(1.8e6, 4e6), 0.2);
}

TEST(Biquad, HighpassRejectsDc) {
  const Biquad hp = Biquad::highpass(100e3, 1e6, 0.707);
  EXPECT_LT(hp.magnitude(1e3, 1e6), 0.01);
  EXPECT_NEAR(hp.magnitude(450e3, 1e6), 1.0, 0.05);
}

TEST(Biquad, RejectsBadFrequencies) {
  EXPECT_THROW(Biquad::lowpass(0.0, 1e6, 0.7), std::invalid_argument);
  EXPECT_THROW(Biquad::lowpass(600e3, 1e6, 0.7), std::invalid_argument);
}

TEST(OnePole, SmoothsSteps) {
  OnePole lp(10e3, 1e6);
  double y = 0.0;
  for (int i = 0; i < 10000; ++i) y = lp.step(1.0);
  EXPECT_NEAR(y, 1.0, 1e-6);  // converges to DC value
}

TEST(OnePole, CutoffAttenuation) {
  const double fs = 1e6;
  const double fc = 50e3;
  OnePole lp(fc, fs);
  Nco nco(fc, fs);
  RealSignal x = nco.cosine(8192);
  RealSignal y = lp.process(std::span<const double>(x));
  double px = 0.0;
  double py = 0.0;
  for (std::size_t i = 2048; i < 8192; ++i) {
    px += x[i] * x[i];
    py += y[i] * y[i];
  }
  // One-pole at cutoff: -3 dB.
  EXPECT_NEAR(10.0 * std::log10(py / px), -3.0, 0.8);
}

TEST(OnePole, RejectsBadCutoff) {
  EXPECT_THROW(OnePole(0.0, 1e6), std::invalid_argument);
  EXPECT_THROW(OnePole(600e3, 1e6), std::invalid_argument);
}

}  // namespace
}  // namespace saiyan::dsp
