// Chirp synthesis: instantaneous frequency law, peak-time relation the
// whole Saiyan decoder rests on, and waveform sanity across SF/BW.
#include <gtest/gtest.h>

#include <cmath>

#include "lora/chirp.hpp"

namespace saiyan::lora {
namespace {

PhyParams params(int sf = 7, double bw = 500e3) {
  PhyParams p;
  p.spreading_factor = sf;
  p.bandwidth_hz = bw;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  return p;
}

TEST(Chirp, UnitAmplitude) {
  const dsp::Signal c = upchirp(params(), 17);
  for (const dsp::Complex& v : c) EXPECT_NEAR(std::abs(v), 1.0, 1e-9);
}

TEST(Chirp, CorrectLength) {
  const PhyParams p = params();
  EXPECT_EQ(upchirp(p, 0).size(), p.samples_per_symbol());
  EXPECT_EQ(downchirp(p).size(), p.samples_per_symbol());
  EXPECT_EQ(upchirp_chiprate(p, 0).size(), p.chips());
}

TEST(Chirp, RejectsOutOfRangeChip) {
  const PhyParams p = params();
  EXPECT_THROW(upchirp(p, p.chips()), std::invalid_argument);
}

TEST(Chirp, InstantaneousFrequencyLaw) {
  const PhyParams p = params();
  // Chip 0 starts at -BW/2 and ends just below +BW/2.
  EXPECT_NEAR(instantaneous_frequency(p, 0, 0.0), -250e3, 1.0);
  EXPECT_NEAR(instantaneous_frequency(p, 0, p.symbol_duration_s() * 0.999),
              250e3 - 0.001 * 500e3, 600.0);
  // Chip 64 (half) starts at 0.
  EXPECT_NEAR(instantaneous_frequency(p, 64, 0.0), 0.0, 1.0);
  // Wrap: chip 64 at 60% of the symbol has wrapped once.
  const double f = instantaneous_frequency(p, 64, p.symbol_duration_s() * 0.6);
  EXPECT_LT(f, 0.0);
  EXPECT_THROW(instantaneous_frequency(p, 0, -1e-9), std::invalid_argument);
}

TEST(Chirp, PeakTimeRelation) {
  const PhyParams p = params();
  // t_peak = Tsym (1 - s/2^SF): the decoder's core inversion.
  EXPECT_NEAR(peak_time(p, 0), p.symbol_duration_s(), 1e-12);
  EXPECT_NEAR(peak_time(p, 64), p.symbol_duration_s() / 2.0, 1e-12);
  EXPECT_NEAR(peak_time(p, 96), p.symbol_duration_s() / 4.0, 1e-12);
}

TEST(Chirp, SymbolChipMapping) {
  const PhyParams p = params();  // K=2, SF=7: step 32
  EXPECT_EQ(symbol_to_chip(p, 0), 0u);
  EXPECT_EQ(symbol_to_chip(p, 1), 32u);
  EXPECT_EQ(symbol_to_chip(p, 3), 96u);
  EXPECT_THROW(symbol_to_chip(p, 4), std::invalid_argument);
  EXPECT_EQ(chip_to_symbol(p, 0), 0u);
  EXPECT_EQ(chip_to_symbol(p, 33), 1u);   // rounds to nearest grid point
  EXPECT_EQ(chip_to_symbol(p, 47), 1u);
  EXPECT_EQ(chip_to_symbol(p, 49), 2u);
  EXPECT_EQ(chip_to_symbol(p, 120), 0u);  // wraps past the top
}

TEST(Chirp, DownchirpIsConjugateSweep) {
  const PhyParams p = params();
  const dsp::Signal up = upchirp(p, 0);
  const dsp::Signal down = downchirp(p);
  // up * down cancels the sweep: the product is (nearly) a constant
  // tone at -0... verify its phase increments stay almost constant.
  double prev_dphi = 0.0;
  double max_jump = 0.0;
  for (std::size_t i = 1; i + 1 < up.size(); ++i) {
    const dsp::Complex prod_a = up[i] * down[i];
    const dsp::Complex prod_b = up[i + 1] * down[i + 1];
    const double dphi = std::arg(prod_b * std::conj(prod_a));
    if (i > 1) max_jump = std::max(max_jump, std::abs(dphi - prev_dphi));
    prev_dphi = dphi;
  }
  EXPECT_LT(max_jump, 1.0);  // no frequency discontinuity except the wrap
}

class ChirpAcrossConfigs
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ChirpAcrossConfigs, PhaseContinuousAndFullSweep) {
  const auto [sf, bw] = GetParam();
  const PhyParams p = params(sf, bw);
  const std::uint32_t chip = p.chips() / 3;
  const dsp::Signal c = upchirp(p, chip);
  ASSERT_EQ(c.size(), p.samples_per_symbol());
  // Phase-continuity: successive phase increments bounded by the
  // maximum instantaneous frequency.
  const double max_dphi = dsp::kTwoPi * (bw / 2.0) / p.sample_rate_hz + 1e-6;
  for (std::size_t i = 1; i < c.size(); ++i) {
    const double dphi = std::arg(c[i] * std::conj(c[i - 1]));
    EXPECT_LE(std::abs(dphi), max_dphi + 1e-9) << "sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SfBwGrid, ChirpAcrossConfigs,
    ::testing::Combine(::testing::Values(7, 9, 12),
                       ::testing::Values(125e3, 250e3, 500e3)));

}  // namespace
}  // namespace saiyan::lora
