// SIMD/scalar equivalence for the runtime-dispatched per-sample
// kernels (dsp/simd.hpp). Every kernel is specified to be
// bit-identical between the scalar reference and the AVX2 variant, at
// every length (vector body + tails) and input alignment — that is
// what keeps Monte-Carlo results a pure function of (config, seed)
// across machines. These tests force the dispatch both ways and
// compare exactly.
#include "dsp/simd.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace saiyan::dsp {
namespace {

/// Lengths covering the empty case, every tail residue, and
/// vector-dominated sizes (1024, 1536).
std::vector<std::size_t> test_lengths() {
  std::vector<std::size_t> n;
  for (std::size_t i = 0; i <= 17; ++i) n.push_back(i);
  n.push_back(1024);
  n.push_back(1536);
  return n;
}

/// Misalignment offsets (in doubles) applied to every buffer: the
/// kernels use unaligned loads, so results must not depend on the
/// allocation's 32-byte phase.
constexpr std::size_t kOffsets[] = {0, 1, 2, 3};

struct IsaGuard {
  ~IsaGuard() { simd::set_isa(simd::Isa::kAuto); }
};

bool have_avx2() { return simd::cpu_has_avx2_fma(); }

RealSignal random_reals(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  RealSignal out(n);
  for (double& v : out) v = rng.gaussian();
  return out;
}

Signal random_complex(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Signal out(n);
  for (Complex& v : out) v = Complex(rng.gaussian(), rng.gaussian());
  return out;
}

/// Run `fn(x_ptr, y_ptr, out_ptr, n)` under scalar and AVX2 dispatch
/// on offset copies of the inputs and require bitwise-equal outputs.
template <typename Fn>
void expect_dispatch_identical(std::size_t n, std::size_t off, Fn&& fn) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
  const RealSignal a = random_reals(n + off, 11 * n + off + 1);
  const RealSignal b = random_reals(n + off, 13 * n + off + 2);
  RealSignal out_scalar(n + off, 0.0);
  RealSignal out_avx2(n + off, 0.0);
  simd::set_isa(simd::Isa::kScalar);
  fn(a.data() + off, b.data() + off, out_scalar.data() + off, n);
  simd::set_isa(simd::Isa::kAvx2);
  fn(a.data() + off, b.data() + off, out_avx2.data() + off, n);
  ASSERT_EQ(0, std::memcmp(out_scalar.data(), out_avx2.data(),
                           out_scalar.size() * sizeof(double)))
      << "n=" << n << " off=" << off;
}

TEST(SimdDispatch, ActiveIsaFollowsOverride) {
  IsaGuard guard;
  simd::set_isa(simd::Isa::kScalar);
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  simd::set_isa(simd::Isa::kAuto);
  if (have_avx2()) {
    EXPECT_EQ(simd::active_isa(), simd::Isa::kAvx2);
    simd::set_isa(simd::Isa::kAvx2);
    EXPECT_EQ(simd::active_isa(), simd::Isa::kAvx2);
  } else {
    EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  }
}

TEST(SimdKernels, SquareLawBitIdentical) {
  IsaGuard guard;
  for (std::size_t n : test_lengths()) {
    for (std::size_t off : kOffsets) {
      if (!have_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
      const Signal x = random_complex(n + off, 3 * n + off + 1);
      RealSignal ys(n, 0.0), yv(n, 0.0);
      simd::set_isa(simd::Isa::kScalar);
      simd::square_law(x.data() + off, n, 0.37, ys.data());
      simd::set_isa(simd::Isa::kAvx2);
      simd::square_law(x.data() + off, n, 0.37, yv.data());
      ASSERT_EQ(0, std::memcmp(ys.data(), yv.data(), n * sizeof(double)))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST(SimdKernels, SquareLawMixedBitIdentical) {
  IsaGuard guard;
  for (std::size_t n : test_lengths()) {
    for (std::size_t off : kOffsets) {
      if (!have_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
      const Signal x = random_complex(n + off, 5 * n + off + 1);
      const RealSignal g = random_reals(n + off, 7 * n + off + 2);
      RealSignal ys(n, 0.0), yv(n, 0.0);
      simd::set_isa(simd::Isa::kScalar);
      simd::square_law_mixed(x.data() + off, g.data() + off, n, 1.7, ys.data());
      simd::set_isa(simd::Isa::kAvx2);
      simd::square_law_mixed(x.data() + off, g.data() + off, n, 1.7, yv.data());
      ASSERT_EQ(0, std::memcmp(ys.data(), yv.data(), n * sizeof(double)))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST(SimdKernels, ScaleBitIdentical) {
  IsaGuard guard;
  for (std::size_t n : test_lengths()) {
    for (std::size_t off : kOffsets) {
      expect_dispatch_identical(n, off,
                                [](const double* x, const double*, double* out,
                                   std::size_t m) { simd::scale(x, m, 0.81, out); });
    }
  }
}

/// The fused draw+inject kernels: run under scalar and AVX2 dispatch
/// with identically-seeded Rngs; outputs AND final engine states must
/// match bitwise (the draw stream is part of the contract).
template <typename Fn>
void expect_fused_identical(std::size_t n, std::size_t off, Fn&& fn) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
  const RealSignal x = random_reals(n + off, 17 * n + off + 1);
  RealSignal out_scalar = random_reals(n + off, 19 * n + off + 2);
  RealSignal out_avx2 = out_scalar;
  Rng rng_s(1000 + n * 4 + off);
  Rng rng_v(1000 + n * 4 + off);
  simd::set_isa(simd::Isa::kScalar);
  fn(x.data() + off, out_scalar.data() + off, n, rng_s);
  simd::set_isa(simd::Isa::kAvx2);
  fn(x.data() + off, out_avx2.data() + off, n, rng_v);
  ASSERT_EQ(0, std::memcmp(out_scalar.data(), out_avx2.data(),
                           out_scalar.size() * sizeof(double)))
      << "n=" << n << " off=" << off;
  ASSERT_EQ(rng_s.engine()(), rng_v.engine()()) << "n=" << n << " off=" << off;
}

TEST(SimdKernels, ScaleAddGaussianBitIdentical) {
  IsaGuard guard;
  for (std::size_t n : test_lengths()) {
    for (std::size_t off : kOffsets) {
      expect_fused_identical(n, off, [](const double* x, double* out,
                                        std::size_t m, Rng& rng) {
        simd::scale_add_gaussian(x, m, 1.3e-4, 2.7e-8, out, rng);
      });
    }
  }
}

TEST(SimdKernels, GainAddGaussianBitIdentical) {
  IsaGuard guard;
  for (std::size_t n : test_lengths()) {
    for (std::size_t off : kOffsets) {
      expect_fused_identical(n, off, [](const double* x, double* out,
                                        std::size_t m, Rng& rng) {
        simd::gain_add_gaussian(x, m, 10.0, 3.3e-9, out, rng);
      });
    }
  }
}

TEST(SimdKernels, AddDcFlickerGaussianBitIdentical) {
  IsaGuard guard;
  for (std::size_t n : test_lengths()) {
    for (std::size_t off : kOffsets) {
      expect_fused_identical(n, off, [](const double* flicker, double* y,
                                        std::size_t m, Rng& rng) {
        simd::add_dc_flicker_gaussian(y, flicker, m, 1e-6, 3e-7, rng);
      });
    }
  }
}

TEST(SimdKernels, LnaSquareLawBitIdentical) {
  IsaGuard guard;
  for (std::size_t n : test_lengths()) {
    for (std::size_t off : kOffsets) {
      if (!have_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
      const Signal x = random_complex(n + off, 23 * n + off + 1);
      const RealSignal gm = random_reals(n + off, 29 * n + off + 2);
      for (bool mixed : {false, true}) {
        RealSignal ys(n, 0.0), yv(n, 0.0);
        Rng rs(500 + n * 8 + off + mixed), rv(500 + n * 8 + off + mixed);
        simd::set_isa(simd::Isa::kScalar);
        simd::lna_square_law(x.data() + off, mixed ? gm.data() + off : nullptr,
                             n, 10.0, 3e-9, 0.8, ys.data(), rs);
        simd::set_isa(simd::Isa::kAvx2);
        simd::lna_square_law(x.data() + off, mixed ? gm.data() + off : nullptr,
                             n, 10.0, 3e-9, 0.8, yv.data(), rv);
        ASSERT_EQ(0, std::memcmp(ys.data(), yv.data(), n * sizeof(double)))
            << "n=" << n << " off=" << off << " mixed=" << mixed;
        ASSERT_EQ(rs.engine()(), rv.engine()());
      }
    }
  }
}

TEST(SimdKernels, LnaSquareLawMatchesTwoPassChain) {
  // The fused kernel must reproduce amplify-then-square-law exactly —
  // it replaced that sequence in the receive chain.
  IsaGuard guard;
  const std::size_t n = 2049;
  const Signal x = random_complex(n, 31);
  const RealSignal gm = random_reals(n, 37);
  const double g = 10.0, sigma = 4e-9, k = 0.8;
  Rng r1(3), r2(3);
  RealSignal want(n), got(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double nr = sigma * r1.gaussian();
    const double ni = sigma * r1.gaussian();
    const double re = g * (x[i].real() + nr);
    const double im = g * (x[i].imag() + ni);
    const double g2 = gm[i] * gm[i];
    want[i] = k * g2 * (re * re + im * im);
  }
  simd::lna_square_law(x.data(), gm.data(), n, g, sigma, k, got.data(), r2);
  EXPECT_EQ(0, std::memcmp(want.data(), got.data(), n * sizeof(double)));
  EXPECT_EQ(r1.engine()(), r2.engine()());
}

TEST(SimdKernels, DotBitIdentical) {
  IsaGuard guard;
  for (std::size_t n : test_lengths()) {
    for (std::size_t off : kOffsets) {
      if (!have_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
      const RealSignal x = random_reals(n + off, 43 * n + off + 1);
      const RealSignal y = random_reals(n + off, 47 * n + off + 2);
      simd::set_isa(simd::Isa::kScalar);
      const double a = simd::dot(x.data() + off, y.data() + off, n);
      simd::set_isa(simd::Isa::kAvx2);
      const double b = simd::dot(x.data() + off, y.data() + off, n);
      ASSERT_EQ(0, std::memcmp(&a, &b, sizeof(double))) << "n=" << n;
    }
  }
}

TEST(SimdKernels, CdotBitIdentical) {
  IsaGuard guard;
  for (std::size_t n : test_lengths()) {
    for (std::size_t off : kOffsets) {
      if (!have_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
      const Signal x = random_complex(n + off, 53 * n + off + 1);
      const Signal y = random_complex(n + off, 59 * n + off + 2);
      simd::set_isa(simd::Isa::kScalar);
      const Complex a = simd::cdot(x.data() + off, y.data() + off, n);
      simd::set_isa(simd::Isa::kAvx2);
      const Complex b = simd::cdot(x.data() + off, y.data() + off, n);
      ASSERT_EQ(0, std::memcmp(&a, &b, sizeof(Complex))) << "n=" << n;
    }
  }
}

TEST(SimdKernels, CdotMatchesNaiveSum) {
  // Value sanity (up to reassociation rounding): Σ x·conj(y).
  const std::size_t n = 513;
  const Signal x = random_complex(n, 3);
  const Signal y = random_complex(n, 4);
  Complex want{};
  for (std::size_t i = 0; i < n; ++i) want += x[i] * std::conj(y[i]);
  const Complex got = simd::cdot(x.data(), y.data(), n);
  EXPECT_NEAR(got.real(), want.real(), 1e-9 * n);
  EXPECT_NEAR(got.imag(), want.imag(), 1e-9 * n);
}

TEST(SimdKernels, ComplexScaledSubtractBitIdentical) {
  IsaGuard guard;
  const Complex a(0.8, -0.31);
  const Complex b(1e-4, -2e-5);
  for (std::size_t n : test_lengths()) {
    for (std::size_t off : kOffsets) {
      if (!have_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
      const Signal x = random_complex(n + off, 61 * n + off + 1);
      Signal y0 = random_complex(n + off, 67 * n + off + 2);
      Signal y1 = y0;
      simd::set_isa(simd::Isa::kScalar);
      simd::complex_scaled_subtract(x.data() + off, n, a, b, y0.data() + off);
      simd::set_isa(simd::Isa::kAvx2);
      simd::complex_scaled_subtract(x.data() + off, n, a, b, y1.data() + off);
      ASSERT_EQ(0, std::memcmp(y0.data(), y1.data(),
                               y0.size() * sizeof(Complex)))
          << "n=" << n;
    }
  }
}

TEST(SimdKernels, ComplexScaledSubtractRemovesScaledCopy) {
  // y = a·x + b exactly cancels: the SIC identity case.
  const std::size_t n = 257;
  const Complex a(0.5, 0.25);
  const Complex b(0.01, -0.02);
  const Signal x = random_complex(n, 7);
  Signal y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = a * x[i] + b;
  simd::complex_scaled_subtract(x.data(), n, a, b, y.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(y[i]), 1e-12) << "i=" << i;
  }
}

TEST(SimdKernels, FusedKernelsMatchPerSampleDraws) {
  // The fused kernels must reproduce the historical per-sample loops
  // exactly (values and stream) — they replaced them in the channel,
  // LNA and envelope-detector hot paths.
  IsaGuard guard;
  const std::size_t n = 4097;
  const RealSignal x = random_reals(n, 5);
  RealSignal want(n), got(n);

  Rng r1(9), r2(9);
  for (std::size_t i = 0; i < n; ++i) {
    want[i] = 0.25 * x[i] + 1e-7 * r1.gaussian();
  }
  simd::scale_add_gaussian(x.data(), n, 0.25, 1e-7, got.data(), r2);
  EXPECT_EQ(0, std::memcmp(want.data(), got.data(), n * sizeof(double)));
  EXPECT_EQ(r1.engine()(), r2.engine()());

  Rng r3(11), r4(11);
  for (std::size_t i = 0; i < n; ++i) {
    const double nr = 2e-8 * r3.gaussian();
    want[i] = 10.0 * (x[i] + nr);
  }
  simd::gain_add_gaussian(x.data(), n, 10.0, 2e-8, got.data(), r4);
  EXPECT_EQ(0, std::memcmp(want.data(), got.data(), n * sizeof(double)));
  EXPECT_EQ(r3.engine()(), r4.engine()());
}

TEST(SimdKernels, MultiplyBitIdenticalIncludingInPlace) {
  IsaGuard guard;
  for (std::size_t n : test_lengths()) {
    for (std::size_t off : kOffsets) {
      expect_dispatch_identical(n, off,
                                [](const double* x, const double* y, double* out,
                                   std::size_t m) { simd::multiply(x, y, m, out); });
    }
  }
  // In-place (out == x), as the CFS output mixer uses it.
  if (!have_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
  const RealSignal lo = random_reals(1536, 21);
  RealSignal xs = random_reals(1536, 22);
  RealSignal xv = xs;
  simd::set_isa(simd::Isa::kScalar);
  simd::multiply(xs.data(), lo.data(), xs.size(), xs.data());
  simd::set_isa(simd::Isa::kAvx2);
  simd::multiply(xv.data(), lo.data(), xv.size(), xv.data());
  EXPECT_EQ(0, std::memcmp(xs.data(), xv.data(), xs.size() * sizeof(double)));
}

TEST(SimdKernels, ComplexScaleTableBitIdentical) {
  IsaGuard guard;
  for (std::size_t n : test_lengths()) {
    for (std::size_t off : kOffsets) {
      if (!have_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
      const RealSignal g = random_reals(n + off, 9 * n + off + 3);
      Signal xs = random_complex(n + off, 10 * n + off + 4);
      Signal xv = xs;
      simd::set_isa(simd::Isa::kScalar);
      simd::complex_scale_table(xs.data() + off, g.data() + off, n);
      simd::set_isa(simd::Isa::kAvx2);
      simd::complex_scale_table(xv.data() + off, g.data() + off, n);
      ASSERT_EQ(0, std::memcmp(xs.data(), xv.data(), xs.size() * sizeof(Complex)))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST(SimdKernels, ReductionsBitIdentical) {
  IsaGuard guard;
  for (std::size_t n : test_lengths()) {
    for (std::size_t off : kOffsets) {
      if (!have_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
      const RealSignal x = random_reals(n + off, 51 * n + off + 1);
      simd::set_isa(simd::Isa::kScalar);
      const double ss = simd::sum(x.data() + off, n);
      const double qs = simd::sum_squares(x.data() + off, n);
      simd::set_isa(simd::Isa::kAvx2);
      const double sv = simd::sum(x.data() + off, n);
      const double qv = simd::sum_squares(x.data() + off, n);
      // Bitwise: the scalar reference uses the vector version's exact
      // 4-accumulator association.
      ASSERT_EQ(0, std::memcmp(&ss, &sv, sizeof(double))) << "n=" << n;
      ASSERT_EQ(0, std::memcmp(&qs, &qv, sizeof(double))) << "n=" << n;
    }
  }
}

TEST(SimdKernels, ComplexSumSquaresMatchesInterleavedDoubles) {
  IsaGuard guard;
  const Signal x = random_complex(1536, 61);
  const double a = simd::sum_squares(x.data(), x.size());
  const double b =
      simd::sum_squares(reinterpret_cast<const double*>(x.data()), 2 * x.size());
  EXPECT_EQ(a, b);
}

TEST(SimdFillGaussian, MatchesRepeatedScalarDraws) {
  IsaGuard guard;
  // The batch fill must consume the engine exactly like n repeated
  // gaussian() calls — including across rejection/tail paths — so a
  // workspace path and a legacy path seeded identically stay
  // bit-identical. 100k draws hit the wedge and tail branches.
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                        std::size_t{5}, std::size_t{1024}, std::size_t{100000}}) {
    Rng seq(42 + n);
    std::vector<double> want(n);
    for (double& v : want) v = seq.gaussian();

    Rng batch(42 + n);
    std::vector<double> got(n, 0.0);
    simd::fill_gaussian(batch, got.data(), n);
    ASSERT_EQ(0, std::memcmp(want.data(), got.data(), n * sizeof(double)))
        << "n=" << n;
    // The engines must also end in the same state.
    EXPECT_EQ(seq.engine()(), batch.engine()());
  }
}

TEST(SimdFillGaussian, ScalarAndAvx2StreamsIdentical) {
  IsaGuard guard;
  if (!have_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
  const std::size_t n = 100000;
  Rng ra(7), rb(7);
  std::vector<double> a(n, 0.0), b(n, 0.0);
  simd::set_isa(simd::Isa::kScalar);
  simd::fill_gaussian(ra, a.data(), n);
  simd::set_isa(simd::Isa::kAvx2);
  simd::fill_gaussian(rb, b.data(), n);
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), n * sizeof(double)));
  EXPECT_EQ(ra.engine()(), rb.engine()());
}

}  // namespace
}  // namespace saiyan::dsp
