// Gateway facade + daemon plumbing tests (ctest label: gateway).
//
// The load-bearing property is the sharding contract: a job runs on
// exactly one worker, so the gateway's decode output for a trace is
// bit-identical to an offline StreamingDemodulator pass at ANY worker
// count. Everything else — Result conventions, config validation with
// first-bad-field reporting, reload-without-loss, subscriber
// backpressure, the control wire codec — guards the API redesign this
// facade introduced.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "core/result.hpp"
#include "daemon/control_protocol.hpp"
#include "daemon/daemon_config.hpp"
#include "fault/chaos.hpp"
#include "gateway/degradation.hpp"
#include "gateway/gateway.hpp"
#include "gateway/gateway_metrics.hpp"
#include "sim/capture.hpp"
#include "stream/streaming_demod.hpp"
#include "stream/trace.hpp"

namespace saiyan {
namespace {

lora::PhyParams phy() {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  return p;
}

constexpr std::size_t kPayload = 16;

/// Nine frames from three tags at staggered RSS — fully decodable
/// offline, which the bit-identity tests assert before relying on it.
const sim::CaptureConfig& capture_cfg() {
  static const sim::CaptureConfig cfg = [] {
    sim::CaptureConfig c;
    c.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
    c.tag_rss_dbm = {-55.0, -58.0, -61.0};
    c.packets_per_tag = 3;
    c.payload_symbols = kPayload;
    c.seed = 7;
    return c;
  }();
  return cfg;
}

const sim::Capture& capture() {
  static const sim::Capture cap = sim::generate_capture(capture_cfg());
  return cap;
}

gateway::GatewayConfig base_config() {
  gateway::GatewayConfig cfg;
  cfg.stream.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  cfg.stream.payload_symbols = kPayload;
  cfg.chunk_samples = 8192;
  return cfg;
}

/// (start, symbols) pairs in offset order — the identity compared
/// across worker counts and against the offline reference.
using FrameKey = std::pair<std::uint64_t, std::vector<std::uint32_t>>;

std::vector<FrameKey> offline_reference(const std::string& trace_path,
                                        const gateway::GatewayConfig& cfg) {
  auto opened = stream::TraceReader::open(trace_path, cfg.resync);
  EXPECT_TRUE(opened.ok()) << opened.message();
  stream::TraceReader reader = std::move(opened).value();
  stream::StreamConfig sc = cfg.worker_stream_config();
  sc.saiyan = core::SaiyanConfig::make(reader.meta().phy, reader.meta().mode);
  sc.payload_symbols = reader.meta().payload_symbols;
  stream::StreamingDemodulator demod(sc);
  dsp::Signal chunk;
  for (;;) {
    const stream::ChunkStatus st = reader.next_chunk(chunk);
    if (st != stream::ChunkStatus::kOk) break;
    demod.push(chunk);
  }
  demod.finish();
  std::vector<FrameKey> out;
  for (const stream::DecodedPacket& p : demod.packets()) {
    const auto syms = demod.symbols(p);
    out.emplace_back(p.packet_start,
                     std::vector<std::uint32_t>(syms.begin(), syms.end()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class GatewayFile : public ::testing::Test {
 protected:
  void SetUp() override {
    std::snprintf(path_, sizeof(path_), "saiyan_gw_%s_%d.sytrc",
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name(),
                  static_cast<int>(::getpid()));
    sim::write_capture(capture(), capture_cfg(), path_);
  }
  void TearDown() override { std::remove(path_); }

  char path_[128];
};

/// Thread-safe frame collector subscriber.
class Collector {
 public:
  gateway::FrameHandler handler() {
    return [this](const gateway::FrameRecord& fr) {
      std::lock_guard<std::mutex> lk(m_);
      frames_.push_back(fr);
    };
  }
  std::vector<gateway::FrameRecord> take() {
    std::lock_guard<std::mutex> lk(m_);
    return frames_;
  }

 private:
  std::mutex m_;
  std::vector<gateway::FrameRecord> frames_;
};

// ---------------------------------------------------------------- Result

TEST(Result, ValueAndErrorPaths) {
  saiyan::Result<int> good = 41;
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(static_cast<bool>(good));
  EXPECT_EQ(good.value(), 41);
  EXPECT_EQ(good.value_or(-1), 41);
  EXPECT_TRUE(good.message().empty());

  saiyan::Result<int> bad = fail("nope", stream::IngestError::kBadMagic);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(bad.message(), "nope");
  EXPECT_EQ(bad.error().ingest, stream::IngestError::kBadMagic);
  EXPECT_THROW((void)bad.value(), std::logic_error);

  saiyan::Result<Unit> u = ok();
  EXPECT_TRUE(u.ok());
}

// ---------------------------------------------------------- GatewayConfig

TEST(GatewayConfigValidate, ReportsFirstBadFieldByPath) {
  gateway::GatewayConfig cfg = base_config();
  cfg.stream.min_score = 0.0;
  cfg.workers = 0;  // also bad, but min_score comes first
  auto v = cfg.validate();
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.message().find("stream.min_score"), std::string::npos)
      << v.message();

  cfg = base_config();
  cfg.workers = 0;
  v = cfg.validate();
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.message().find("workers"), std::string::npos);

  cfg = base_config();
  cfg.chunk_samples = stream::kMaxTraceChunkSamples + 1;
  v = cfg.validate();
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.message().find("chunk_samples"), std::string::npos);

  cfg = base_config();
  cfg.limits.subscriber_queue = 0;
  v = cfg.validate();
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.message().find("limits.subscriber_queue"), std::string::npos);

  EXPECT_TRUE(base_config().validate().ok());
}

TEST(GatewayConfigValidate, DeprecatedAliasConflictIsRejected) {
  gateway::GatewayConfig cfg = base_config();
  cfg.stream.sic.shed_queue = 4;   // deprecated spelling
  cfg.limits.sic_shed_queue = 8;   // canonical spelling, different value
  auto v = cfg.validate();
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.message().find("stream.sic.shed_queue"), std::string::npos);

  // Agreeing values are fine; so is either spelling alone.
  cfg.limits.sic_shed_queue = 4;
  EXPECT_TRUE(cfg.validate().ok());
  cfg.stream.sic.shed_queue = 0;
  cfg.limits.sic_shed_queue = 8;
  EXPECT_TRUE(cfg.validate().ok());
}

TEST(GatewayConfigValidate, AliasFoldsIntoWorkerStreamConfig) {
  gateway::GatewayConfig cfg = base_config();
  cfg.limits.sic_shed_queue = 5;
  cfg.limits.sic_max_rescan_queue = 9;
  const stream::StreamConfig sc = cfg.worker_stream_config();
  EXPECT_EQ(sc.sic.shed_queue, 5u);
  EXPECT_EQ(sc.sic.max_rescan_queue, 9u);

  // Old spelling still honored when the canonical knob is unset.
  gateway::GatewayConfig legacy = base_config();
  legacy.stream.sic.shed_queue = 3;
  EXPECT_EQ(legacy.worker_stream_config().sic.shed_queue, 3u);
}

// ------------------------------------------------------ TraceReader::open

TEST(TraceReaderOpen, ClassifiesFailures) {
  auto missing = stream::TraceReader::open("does_not_exist.sytrc");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().ingest, stream::IngestError::kBadHeader);

  auto magic = stream::TraceReader::try_from_bytes("NOTATRACE........");
  ASSERT_FALSE(magic.ok());
  EXPECT_EQ(magic.error().ingest, stream::IngestError::kBadMagic);
}

// -------------------------------------------------------- control protocol

TEST(ControlProtocol, RequestRoundTrip) {
  daemon::ControlRequest req;
  req.op = daemon::ControlOp::kReload;
  req.payload = "payload bytes";
  const std::string wire = daemon::encode_request(req);
  auto back = daemon::decode_request(wire);
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value().op, daemon::ControlOp::kReload);
  EXPECT_EQ(back.value().payload, "payload bytes");
}

TEST(ControlProtocol, ResponseRoundTrip) {
  daemon::ControlResponse resp;
  resp.status = daemon::ControlStatus::kError;
  resp.payload = "why it failed";
  auto back = daemon::decode_response(daemon::encode_response(resp));
  ASSERT_TRUE(back.ok()) << back.message();
  EXPECT_EQ(back.value().status, daemon::ControlStatus::kError);
  EXPECT_EQ(back.value().payload, "why it failed");
}

TEST(ControlProtocol, RejectsMalformedFrames) {
  EXPECT_FALSE(daemon::decode_request("").ok());
  EXPECT_FALSE(daemon::decode_request("abc").ok());  // short header

  // Length prefix disagrees with the actual frame size.
  std::string wire = daemon::encode_request({daemon::ControlOp::kStats, ""});
  wire.push_back('x');
  EXPECT_FALSE(daemon::decode_request(wire).ok());

  // Unknown op byte.
  std::string bad_op = daemon::encode_request({daemon::ControlOp::kStats, ""});
  bad_op[4] = 99;
  EXPECT_FALSE(daemon::decode_request(bad_op).ok());

  // Absurd declared length must be rejected before allocation.
  std::string huge = "\xff\xff\xff\x7f";
  huge.push_back(1);
  EXPECT_FALSE(daemon::decode_request(huge).ok());
}

// ----------------------------------------------------------- daemon config

TEST(DaemonConfig, ParsesAndValidates) {
  char path[128];
  std::snprintf(path, sizeof(path), "saiyan_gw_conf_%d.conf",
                static_cast<int>(::getpid()));
  {
    std::ofstream out(path);
    out << "# demo config\n"
        << "socket /tmp/test_saiyand.sock\n"
        << "workers 2\n"
        << "chunk_samples 4096\n"
        << "payload_symbols 16   # inline comment\n"
        << "trace a.sytrc\n"
        << "trace b.sytrc\n";
  }
  auto loaded = daemon::load_daemon_config(path);
  ASSERT_TRUE(loaded.ok()) << loaded.message();
  EXPECT_EQ(loaded.value().socket_path, "/tmp/test_saiyand.sock");
  EXPECT_EQ(loaded.value().gateway.workers, 2u);
  EXPECT_EQ(loaded.value().gateway.chunk_samples, 4096u);
  EXPECT_EQ(loaded.value().gateway.stream.payload_symbols, 16u);
  ASSERT_EQ(loaded.value().traces.size(), 2u);
  EXPECT_EQ(loaded.value().traces[1], "b.sytrc");

  {
    std::ofstream out(path);
    out << "workers 2\nbogus_key 1\n";
  }
  auto bad = daemon::load_daemon_config(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find(":2:"), std::string::npos) << bad.message();

  {
    std::ofstream out(path);
    out << "workers 0\n";
  }
  auto range = daemon::load_daemon_config(path);
  ASSERT_FALSE(range.ok());
  EXPECT_NE(range.message().find("workers"), std::string::npos);
  std::remove(path);
}

// ----------------------------------------------------------------- gateway

TEST(GatewayCreate, RejectsBadConfigWithFieldPath) {
  gateway::GatewayConfig cfg = base_config();
  cfg.stream.min_score = 2.0;
  auto gw = gateway::Gateway::create(cfg);
  ASSERT_FALSE(gw.ok());
  EXPECT_NE(gw.message().find("stream.min_score"), std::string::npos);
}

TEST_F(GatewayFile, EnqueueRejectsMissingAndCorruptTraces) {
  auto gw = gateway::Gateway::create(base_config());
  ASSERT_TRUE(gw.ok()) << gw.message();
  auto job = gw.value()->enqueue_trace("no_such_file.sytrc");
  ASSERT_FALSE(job.ok());
  EXPECT_EQ(job.error().ingest, stream::IngestError::kBadHeader);
  EXPECT_EQ(gw.value()->stats().jobs_enqueued, 0u);
}

TEST_F(GatewayFile, BitIdenticalToOfflineAtAnyWorkerCount) {
  const gateway::GatewayConfig base = base_config();
  const std::vector<FrameKey> expected = offline_reference(path_, base);
  ASSERT_EQ(expected.size(), capture().markers.size())
      << "reference capture must be fully decodable";

  for (const std::size_t workers : {1u, 2u, 4u}) {
    gateway::GatewayConfig cfg = base;
    cfg.workers = workers;
    auto created = gateway::Gateway::create(cfg);
    ASSERT_TRUE(created.ok()) << created.message();
    auto& gw = *created.value();
    Collector col;
    gw.subscribe(col.handler());

    // Several copies of the job spread over the pool.
    constexpr std::size_t kJobs = 4;
    std::vector<std::uint64_t> job_ids;
    for (std::size_t j = 0; j < kJobs; ++j) {
      auto id = gw.enqueue_trace(path_);
      ASSERT_TRUE(id.ok()) << id.message();
      job_ids.push_back(id.value());
    }
    ASSERT_TRUE(gw.drain().ok());

    const std::vector<gateway::FrameRecord> frames = col.take();
    ASSERT_EQ(frames.size(), kJobs * expected.size()) << workers << " workers";
    for (const std::uint64_t id : job_ids) {
      std::vector<FrameKey> got;
      for (const gateway::FrameRecord& fr : frames) {
        if (fr.job == id) got.emplace_back(fr.packet_start, fr.symbols);
      }
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << workers << " workers, job " << id;
    }

    const gateway::GatewayStats st = gw.stats();
    EXPECT_EQ(st.frames_decoded, kJobs * expected.size());
    EXPECT_EQ(st.jobs_done, kJobs);
    EXPECT_EQ(st.markers_expected, kJobs * capture().markers.size());
    EXPECT_EQ(st.ingest.frames_dropped_subscriber, 0u);
    if (workers >= 2) {
      // Round-robin must actually spread jobs over the pool.
      std::size_t active = 0;
      for (const gateway::WorkerSnapshot& w : st.per_worker) {
        active += w.jobs > 0 ? 1 : 0;
      }
      EXPECT_GE(active, 2u) << workers << " workers";
    }
  }
}

TEST_F(GatewayFile, ReloadKeepsInFlightJobsAndCountsSwaps) {
  gateway::GatewayConfig cfg = base_config();
  cfg.workers = 2;
  // Throttle so the first job is still in flight when reload lands.
  cfg.throttle_us = 2000;
  auto created = gateway::Gateway::create(cfg);
  ASSERT_TRUE(created.ok()) << created.message();
  auto& gw = *created.value();
  Collector col;
  gw.subscribe(col.handler());

  ASSERT_TRUE(gw.enqueue_trace(path_).ok());
  gateway::GatewayConfig next = cfg;
  next.throttle_us = 0;
  next.stream.min_score = 0.7;
  ASSERT_TRUE(gw.reload(next).ok());
  ASSERT_TRUE(gw.enqueue_trace(path_).ok());
  ASSERT_TRUE(gw.drain().ok());

  // Zero frames lost across the swap: both jobs decoded everything.
  EXPECT_EQ(col.take().size(), 2 * capture().markers.size());
  EXPECT_EQ(gw.stats().config_reloads, 1u);

  // Fixed-at-create knobs are rejected with a clear message.
  gateway::GatewayConfig bad = cfg;
  bad.workers = 4;
  auto r = gw.reload(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("workers"), std::string::npos);
}

TEST_F(GatewayFile, SlowSubscriberShedsFramesWithoutStallingWorkers) {
  gateway::GatewayConfig cfg = base_config();
  cfg.limits.subscriber_queue = 1;  // smallest legal queue
  auto created = gateway::Gateway::create(cfg);
  ASSERT_TRUE(created.ok()) << created.message();
  auto& gw = *created.value();

  std::atomic<std::size_t> delivered{0};
  gw.subscribe([&](const gateway::FrameRecord&) {
    delivered.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  });
  Collector fast;
  gw.subscribe(fast.handler());

  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(gw.enqueue_trace(path_).ok());
  ASSERT_TRUE(gw.drain().ok());
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const gateway::GatewayStats st = gw.stats();
  const std::size_t total = capture().markers.size();
  EXPECT_EQ(st.frames_decoded, total);
  // The fast subscriber saw everything; the slow one shed the excess
  // and every shed frame is accounted for.
  EXPECT_EQ(fast.take().size(), total);
  EXPECT_GT(st.ingest.frames_dropped_subscriber, 0u);
  EXPECT_EQ(delivered.load() + st.ingest.frames_dropped_subscriber, total);
  // Workers never waited on the sleeping handler: the replay plus
  // drain must complete in far less than total * 40 ms.
  EXPECT_LT(wall, 0.040 * static_cast<double>(total) * 2);
}

TEST_F(GatewayFile, UnsubscribeDeliversQueuedFramesFirst) {
  auto created = gateway::Gateway::create(base_config());
  ASSERT_TRUE(created.ok()) << created.message();
  auto& gw = *created.value();
  Collector col;
  const gateway::SubscriberId id = gw.subscribe(col.handler());
  ASSERT_TRUE(gw.enqueue_trace(path_).ok());
  ASSERT_TRUE(gw.drain().ok());
  gw.unsubscribe(id);
  EXPECT_EQ(col.take().size(), capture().markers.size());
  EXPECT_EQ(gw.stats().subscribers, 0u);
}

TEST(GatewayLiveStream, MatchesOfflineAndGuardsDrain) {
  gateway::GatewayConfig cfg;
  cfg.stream.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  cfg.stream.payload_symbols = kPayload;
  cfg.workers = 2;
  auto created = gateway::Gateway::create(cfg);
  ASSERT_TRUE(created.ok()) << created.message();
  auto& gw = *created.value();
  Collector col;
  gw.subscribe(col.handler());

  const gateway::StreamId sid = gw.open_stream();
  EXPECT_EQ(gw.stats().streams_open, 1u);

  // drain() with a live producer is an error, not a deadlock.
  auto premature = gw.drain();
  ASSERT_FALSE(premature.ok());
  EXPECT_NE(premature.message().find("still open"), std::string::npos);

  const dsp::Signal& samples = capture().samples;
  constexpr std::size_t kPush = 10000;
  for (std::size_t off = 0; off < samples.size(); off += kPush) {
    const std::size_t n = std::min(kPush, samples.size() - off);
    ASSERT_TRUE(gw.push(sid, std::span(samples).subspan(off, n)).ok());
  }
  ASSERT_TRUE(gw.close_stream(sid).ok());
  ASSERT_FALSE(gw.push(sid, std::span(samples).first(1)).ok())
      << "push after close must fail";
  ASSERT_TRUE(gw.drain().ok());

  // Offline reference over the same samples with the same config.
  stream::StreamingDemodulator demod(cfg.worker_stream_config());
  demod.push(samples);
  demod.finish();
  std::vector<FrameKey> expected;
  for (const stream::DecodedPacket& p : demod.packets()) {
    const auto syms = demod.symbols(p);
    expected.emplace_back(p.packet_start,
                          std::vector<std::uint32_t>(syms.begin(), syms.end()));
  }
  std::sort(expected.begin(), expected.end());
  ASSERT_FALSE(expected.empty());

  std::vector<FrameKey> got;
  for (const gateway::FrameRecord& fr : col.take()) {
    got.emplace_back(fr.packet_start, fr.symbols);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(gw.stats().streams_open, 0u);
}

TEST_F(GatewayFile, StatsTextCarriesTheDocumentedKeys) {
  auto created = gateway::Gateway::create(base_config());
  ASSERT_TRUE(created.ok()) << created.message();
  auto& gw = *created.value();
  ASSERT_TRUE(gw.enqueue_trace(path_).ok());
  ASSERT_TRUE(gw.drain().ok());
  const std::string text = gw.stats().to_text();
  for (const char* key :
       {"frames_decoded", "markers_expected", "latency_p99_us",
        "ingest.frames_dropped_subscriber", "worker.0.frames",
        "jobs_done", "frames_per_sec"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key << "\n" << text;
  }
  const gateway::GatewayStats st = gw.stats();
  EXPECT_EQ(st.frames_decoded, capture().markers.size());
  EXPECT_GT(st.latency_max_us, 0u);
  EXPECT_GE(st.latency_p99_us, st.latency_p50_us);
}

TEST(GatewayLinks, RegistryTracksTagsEndToEnd) {
  // link_headers capture: payload symbol 0 carries the tag id, symbol
  // 1 a per-tag sequence counter — the telescope's ground truth.
  sim::CaptureConfig ccfg = capture_cfg();
  ccfg.link_headers = true;
  const sim::Capture cap = sim::generate_capture(ccfg);
  char path[128];
  std::snprintf(path, sizeof(path), "saiyan_gw_links_%d.sytrc",
                static_cast<int>(::getpid()));
  sim::write_capture(cap, ccfg, path);

  gateway::GatewayConfig cfg = base_config();
  cfg.link.sequence_symbol = true;
  auto created = gateway::Gateway::create(cfg);
  ASSERT_TRUE(created.ok()) << created.message();
  auto& gw = *created.value();
  Collector sink;
  gw.subscribe(sink.handler());
  ASSERT_TRUE(gw.enqueue_trace(path).ok());
  ASSERT_TRUE(gw.drain().ok());
  std::remove(path);

  // Registry: one link per tag, every frame attributed, no inferred
  // losses (each tag's counter is consecutive), frames_total matches.
  const obs::LinkRegistrySnapshot links = gw.links();
  const std::size_t n_tags = ccfg.tag_rss_dbm.size();
  ASSERT_EQ(links.links.size(), n_tags);
  EXPECT_EQ(links.frames_total, cap.markers.size());
  EXPECT_EQ(links.evictions, 0u);
  for (const obs::LinkSnapshot& l : links.links) {
    EXPECT_LT(l.tag_id, n_tags);
    EXPECT_EQ(l.channel, 0u);
    EXPECT_EQ(l.frames, ccfg.packets_per_tag);
    EXPECT_EQ(l.lost_frames, 0u);
    EXPECT_GT(l.last_seen_us, 0u);
  }

  // Delivered frames carry the identity, and stats()/Prometheus/the
  // links-op text all agree with the registry.
  for (const gateway::FrameRecord& fr : sink.take()) {
    EXPECT_LT(fr.tag_id, n_tags);
    EXPECT_EQ(fr.channel, 0u);
  }
  const gateway::GatewayStats st = gw.stats();
  EXPECT_EQ(st.links.links.size(), n_tags);
  EXPECT_NE(st.to_text().find("links_tracked 3"), std::string::npos);
  const std::string prom = gateway::to_prometheus(st);
  EXPECT_NE(prom.find("saiyan_link_frames_total"), std::string::npos);
  EXPECT_NE(prom.find("tag=\"other\",channel=\"all\""), std::string::npos);
  EXPECT_NE(prom.find("saiyan_noise_floor_db"), std::string::npos);
  EXPECT_NE(prom.find("saiyan_frame_latency_saturated_total"),
            std::string::npos);
  const std::string listing =
      gateway::links_to_text(links, gateway::LinkQuery{});
  EXPECT_NE(listing.find("links_tracked 3"), std::string::npos);
  EXPECT_NE(listing.find("link.0.0.frames 3"), std::string::npos);

  // Link telemetry config is create()-time only.
  gateway::GatewayConfig changed = cfg;
  changed.link.capacity *= 2;
  auto r = gw.reload(changed);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("link"), std::string::npos);
}

TEST(GatewayStatsPrimitives, LatencyHistogramQuantiles) {
  gateway::LatencyHistogram h;
  for (int i = 0; i < 98; ++i) h.record(100);   // bucket [64, 127]
  h.record(100000);
  h.record(200000);
  // The median interpolates inside the landing bucket instead of
  // reporting its upper edge: rank 50 of 98 in [64, 127] ≈ 96.
  EXPECT_GE(h.quantile_us(0.5), 64u);
  EXPECT_LE(h.quantile_us(0.5), 127u);
  EXPECT_EQ(h.quantile_us(0.5), 96u);
  EXPECT_GE(h.quantile_us(0.999), 100000u);
  EXPECT_EQ(h.max_us(), 200000u);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.sum_us(), 98u * 100 + 100000 + 200000);
}

// ------------------------------------------------ watchdog + self-heal

/// Shared skeleton for the two watchdog trip-wires: wedge one chosen
/// job inside the chunk hook (spinning until the watchdog's cancel
/// token fires, like a stuck DMA wait would), then assert the
/// self-healing contract — drain() returns, the wedged job surfaces a
/// typed kCancelled outcome, and every OTHER job's decode output is
/// bit-identical to the offline reference.
void watchdog_trip(const char* trace_path, bool via_deadline) {
  gateway::GatewayConfig cfg;
  cfg.stream.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  cfg.stream.payload_symbols = kPayload;
  cfg.chunk_samples = 8192;
  cfg.workers = 2;
  cfg.watchdog.poll_ms = 10;
  // Generous bounds: an honest job replays this trace in well under a
  // second, so only the deliberately wedged job can trip them.
  if (via_deadline) {
    cfg.watchdog.job_deadline_ms = 1500;
  } else {
    cfg.watchdog.heartbeat_timeout_ms = 1500;
  }
  const std::vector<FrameKey> expected = offline_reference(trace_path, cfg);
  ASSERT_FALSE(expected.empty());

  // The first job to reach its hook claims itself as the victim and
  // wedges until the watchdog's cancel token fires (job ids are not
  // known before enqueue, and jobs start running immediately; id 0 is
  // a real job, so the unclaimed sentinel must be out of band).
  constexpr std::uint64_t kNoVictim = ~0ull;
  std::atomic<std::uint64_t> victim{kNoVictim};
  cfg.chunk_hook = [&](const gateway::GatewayConfig::ChunkHookInfo& info) {
    if (info.chunk_index != 0) return;
    std::uint64_t claimed = kNoVictim;
    if (!victim.compare_exchange_strong(claimed, info.job) &&
        claimed != info.job) {
      return;  // another job already wedged
    }
    while (!info.cancel->load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  auto created = gateway::Gateway::create(cfg);
  ASSERT_TRUE(created.ok()) << created.message();
  auto& gw = *created.value();
  Collector col;
  gw.subscribe(col.handler());

  std::vector<std::uint64_t> job_ids;
  for (int j = 0; j < 4; ++j) {
    auto id = gw.enqueue_trace(trace_path);
    ASSERT_TRUE(id.ok()) << id.message();
    job_ids.push_back(id.value());
  }
  // Jobs were pre-assigned round-robin at enqueue, so the victim's
  // worker already holds later jobs — exactly the wedge drain() must
  // survive.
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(gw.drain().ok());
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_NE(victim.load(), kNoVictim) << "no job ever reached its hook";
  EXPECT_LT(wall, 30.0) << "drain must return promptly after the cancel";

  auto vs = gw.job_status(victim.load());
  ASSERT_TRUE(vs.ok()) << vs.message();
  EXPECT_EQ(vs.value().state, gateway::JobState::kCancelled);
  EXPECT_NE(vs.value().message.find(via_deadline ? "deadline" : "heartbeat"),
            std::string::npos)
      << vs.value().message;

  // Every other job decoded bit-identically to the offline pass.
  const std::vector<gateway::FrameRecord> frames = col.take();
  for (const std::uint64_t id : job_ids) {
    if (id == victim.load()) continue;
    auto st = gw.job_status(id);
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st.value().state, gateway::JobState::kDone) << "job " << id;
    std::vector<FrameKey> got;
    for (const gateway::FrameRecord& fr : frames) {
      if (fr.job == id) got.emplace_back(fr.packet_start, fr.symbols);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "job " << id;
  }

  const gateway::GatewayStats st = gw.stats();
  EXPECT_EQ(st.jobs_done, 3u);
  EXPECT_EQ(st.jobs_failed, 1u) << "a cancelled job is not a done job";
  EXPECT_EQ(st.ingest.jobs_cancelled, 1u);
  if (via_deadline) {
    EXPECT_EQ(st.deadline_cancels, 1u);
    EXPECT_EQ(st.watchdog_cancels, 0u);
  } else {
    EXPECT_EQ(st.watchdog_cancels, 1u);
  }
}

TEST_F(GatewayFile, JobDeadlineCancelsWedgedJobAndDrainReturns) {
  watchdog_trip(path_, /*via_deadline=*/true);
}

TEST_F(GatewayFile, HeartbeatTimeoutCancelsWedgedJobAndDrainReturns) {
  watchdog_trip(path_, /*via_deadline=*/false);
}

TEST_F(GatewayFile, JobStatusReportsTypedOutcomes) {
  gateway::GatewayConfig cfg = base_config();
  cfg.workers = 1;
  // Hold job 1 at its first chunk until the main thread has deleted
  // the trace — job 2 then deterministically opens a missing file.
  std::atomic<bool> file_removed{false};
  cfg.chunk_hook = [&](const gateway::GatewayConfig::ChunkHookInfo& info) {
    if (info.chunk_index != 0) return;
    while (!file_removed.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  auto created = gateway::Gateway::create(cfg);
  ASSERT_TRUE(created.ok()) << created.message();
  auto& gw = *created.value();

  auto first = gw.enqueue_trace(path_);
  ASSERT_TRUE(first.ok());
  auto second = gw.enqueue_trace(path_);
  ASSERT_TRUE(second.ok());
  // The second job was validated at enqueue; deleting the file before
  // its worker reaches it forces the mid-flight failure path.
  std::remove(path_);
  file_removed.store(true);
  ASSERT_TRUE(gw.drain().ok());

  auto s1 = gw.job_status(first.value());
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(s1.value().state, gateway::JobState::kDone);
  auto s2 = gw.job_status(second.value());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2.value().state, gateway::JobState::kFailed);
  EXPECT_EQ(s2.value().ingest, stream::IngestError::kBadHeader);
  EXPECT_FALSE(s2.value().message.empty());

  // Never-issued ids are a typed error, not kPending.
  EXPECT_FALSE(gw.job_status(second.value() + 100).ok());
  EXPECT_STREQ(gateway::to_string(gateway::JobState::kCancelled), "cancelled");

  const gateway::GatewayStats st = gw.stats();
  EXPECT_EQ(st.jobs_done, 1u);
  EXPECT_EQ(st.jobs_failed, 1u);
}

TEST_F(GatewayFile, ReloadRejectedWhileDrainInProgress) {
  gateway::GatewayConfig cfg = base_config();
  cfg.workers = 1;
  cfg.throttle_us = 5000;  // stretch the replay so drain() is caught live
  auto created = gateway::Gateway::create(cfg);
  ASSERT_TRUE(created.ok()) << created.message();
  auto& gw = *created.value();
  ASSERT_TRUE(gw.enqueue_trace(path_).ok());

  std::thread drainer([&] { EXPECT_TRUE(gw.drain().ok()); });
  // Give drain() time to register; the job itself runs for much longer.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto r = gw.reload(base_config());
  drainer.join();
  ASSERT_FALSE(r.ok()) << "reload during drain must be rejected, not racy";
  EXPECT_NE(r.message().find("drain"), std::string::npos) << r.message();

  // After the drain returns, reload works again.
  EXPECT_TRUE(gw.reload(base_config()).ok());
}

TEST_F(GatewayFile, ReloadRejectsWatchdogAndDegradationChanges) {
  auto created = gateway::Gateway::create(base_config());
  ASSERT_TRUE(created.ok()) << created.message();
  auto& gw = *created.value();

  gateway::GatewayConfig wd = base_config();
  wd.watchdog.job_deadline_ms = 1000;
  auto r = gw.reload(wd);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("watchdog"), std::string::npos);

  gateway::GatewayConfig dg = base_config();
  dg.degradation.enabled = true;
  r = gw.reload(dg);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("degradation"), std::string::npos);
}

TEST_F(GatewayFile, SeededChaosStallsLeaveDecodeBitIdentical) {
  gateway::GatewayConfig cfg = base_config();
  cfg.workers = 2;
  const std::vector<FrameKey> expected = offline_reference(path_, cfg);

  fault::ChaosConfig chaos_cfg;
  chaos_cfg.seed = 1234;
  chaos_cfg.stall_rate = 0.3;
  chaos_cfg.stall_min_ms = 1;
  chaos_cfg.stall_max_ms = 3;
  const fault::ChaosScheduler chaos(chaos_cfg);
  std::atomic<std::size_t> stalls{0};
  cfg.chunk_hook = [&](const gateway::GatewayConfig::ChunkHookInfo& info) {
    const std::uint64_t ms = chaos.stall_ms(info.worker, info.chunk_index);
    if (ms == 0) return;
    stalls.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };
  auto created = gateway::Gateway::create(cfg);
  ASSERT_TRUE(created.ok()) << created.message();
  auto& gw = *created.value();
  Collector col;
  gw.subscribe(col.handler());
  std::vector<std::uint64_t> job_ids;
  for (int j = 0; j < 3; ++j) {
    auto id = gw.enqueue_trace(path_);
    ASSERT_TRUE(id.ok());
    job_ids.push_back(id.value());
  }
  ASSERT_TRUE(gw.drain().ok());
  EXPECT_GT(stalls.load(), 0u) << "the chaos schedule never fired";

  const std::vector<gateway::FrameRecord> frames = col.take();
  for (const std::uint64_t id : job_ids) {
    std::vector<FrameKey> got;
    for (const gateway::FrameRecord& fr : frames) {
      if (fr.job == id) got.emplace_back(fr.packet_start, fr.symbols);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "job " << id;
  }
}

TEST_F(GatewayFile, HealthSnapshotCarriesTheDocumentedKeys) {
  gateway::GatewayConfig cfg = base_config();
  cfg.workers = 2;
  cfg.degradation.enabled = true;  // starts the supervisor thread
  auto created = gateway::Gateway::create(cfg);
  ASSERT_TRUE(created.ok()) << created.message();
  auto& gw = *created.value();
  ASSERT_TRUE(gw.enqueue_trace(path_).ok());
  ASSERT_TRUE(gw.drain().ok());

  const gateway::GatewayHealth h = gw.health();
  EXPECT_EQ(h.degradation_level, 0u);
  EXPECT_EQ(h.degradation_name,
            gateway::to_string(gateway::DegradationLevel::kHealthy));
  ASSERT_EQ(h.workers.size(), 2u);
  for (const gateway::WorkerHealth& w : h.workers) {
    EXPECT_FALSE(w.busy);
  }
  const std::string text = h.to_text();
  for (const char* key :
       {"degradation_level", "degradation_name", "watchdog_cancels",
        "deadline_cancels", "jobs_cancelled", "rescan_backlog",
        "window_p99_us", "worker.0.busy", "worker.1.heartbeat_age_ms"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key << "\n" << text;
  }

  // The stats text grew the self-healing counters too.
  const std::string stats_text = gw.stats().to_text();
  for (const char* key : {"watchdog_cancels", "deadline_cancels",
                          "degradation_level", "ingest.jobs_cancelled"}) {
    EXPECT_NE(stats_text.find(key), std::string::npos) << key;
  }
}

TEST(GatewayStatsPrimitives, StatsCellPublishesCoherentSnapshots) {
  gateway::StatsCell<stream::IngestStats> cell;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    stream::IngestStats s;
    while (!stop.load()) {
      // Two coupled fields; a torn read would see them disagree.
      s.chunks_ok += 1;
      s.bytes_skipped = s.chunks_ok * 2;
      cell.publish(s);
    }
  });
  for (int i = 0; i < 20000; ++i) {
    const stream::IngestStats snap = cell.read();
    ASSERT_EQ(snap.bytes_skipped, snap.chunks_ok * 2);
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace saiyan
