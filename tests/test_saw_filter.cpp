// SAW filter model against the paper's Fig. 5 / Fig. 23 anchors.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/utils.hpp"
#include "frontend/saw_filter.hpp"
#include "lora/chirp.hpp"

namespace saiyan::frontend {
namespace {

TEST(SawFilter, Figure5Anchors) {
  const SawFilter saw;
  // Caption of Fig. 5: insertion loss 10 dB at the passband edge;
  // 25 / 9.5 / 7.2 dB amplitude variation across 500/250/125 kHz.
  EXPECT_NEAR(saw.response_db(434.0e6), -10.0, 0.3);
  EXPECT_NEAR(saw.response_db(434.0e6) - saw.response_db(433.5e6), 25.0, 0.5);
  EXPECT_NEAR(saw.response_db(434.0e6) - saw.response_db(433.75e6), 9.5, 0.5);
  EXPECT_NEAR(saw.response_db(434.0e6) - saw.response_db(433.875e6), 7.2, 0.5);
}

TEST(SawFilter, AmplitudeGapMatchesBandwidths) {
  const SawFilter saw;
  EXPECT_NEAR(saw.amplitude_gap_db(500e3), 25.0, 0.5);
  EXPECT_NEAR(saw.amplitude_gap_db(250e3), 9.5, 0.5);
  EXPECT_NEAR(saw.amplitude_gap_db(125e3), 7.2, 0.5);
}

TEST(SawFilter, MonotoneInCriticalBand) {
  const SawFilter saw;
  double prev = saw.response_db(433.5e6);
  for (double f = 433.51e6; f <= 434.0e6; f += 10e3) {
    const double g = saw.response_db(f);
    EXPECT_GE(g, prev - 1e-9) << "non-monotone at " << f;
    prev = g;
  }
}

TEST(SawFilter, StopbandsAreDeep) {
  const SawFilter saw;
  EXPECT_LT(saw.response_db(428e6), -55.0);
  EXPECT_LT(saw.response_db(440e6), -55.0);
}

TEST(SawFilter, RecommendedCenterAlignsTopEdge) {
  EXPECT_NEAR(SawFilter::recommended_rf_center_hz(500e3), 433.75e6, 1.0);
  EXPECT_NEAR(SawFilter::recommended_rf_center_hz(125e3), 433.9375e6, 1.0);
}

TEST(SawFilter, TemperatureShiftsResponse) {
  const SawFilter cold(SawFilterConfig{-10.0});
  const SawFilter nominal(SawFilterConfig{25.0});
  // With a negative TCF, cold shifts the response up in frequency, so
  // the steep skirt moves up and the response at a fixed skirt
  // frequency drops.
  EXPECT_LT(cold.response_db(433.75e6), nominal.response_db(433.75e6));
  // At reference temperature the shift is zero.
  EXPECT_NEAR(nominal.response_db(433.9e6),
              SawFilter(SawFilterConfig{25.0}).response_db(433.9e6), 1e-12);
}

TEST(SawFilter, FilterAppliesFrequencyDependentGain) {
  // A tone at the passband edge must come through ~15 dB stronger
  // (amplitude difference between -10 dB and -35 dB relative response
  // at the two band edges is 25 dB).
  const SawFilter saw;
  const double fs = 4e6;
  const double rf_center = 433.75e6;
  const std::size_t n = 1 << 14;
  auto tone_out_power = [&](double offset_hz) {
    dsp::Signal x(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double ph = dsp::kTwoPi * offset_hz * static_cast<double>(i) / fs;
      x[i] = dsp::Complex(std::cos(ph), std::sin(ph));
    }
    const dsp::Signal y = saw.filter(x, fs, rf_center);
    // Ignore edge transients.
    double p = 0.0;
    for (std::size_t i = n / 4; i < 3 * n / 4; ++i) p += std::norm(y[i]);
    return p;
  };
  const double top = tone_out_power(+250e3);    // at 434.0 MHz
  const double bottom = tone_out_power(-250e3); // at 433.5 MHz
  EXPECT_NEAR(10.0 * std::log10(top / bottom), 25.0, 1.0);
}

TEST(SawFilter, ChirpBecomesAmplitudeModulated) {
  // Feed one base up-chirp through the SAW model: the output amplitude
  // must peak near the symbol end (chip 0 peaks at t = Tsym), the
  // frequency-amplitude transformation of Fig. 6.
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  const SawFilter saw;
  const dsp::Signal chirp = lora::upchirp(p, 0);
  const dsp::Signal out =
      saw.filter(chirp, p.sample_rate_hz, SawFilter::recommended_rf_center_hz(p.bandwidth_hz));
  // Smooth |out| with a simple moving average and find the maximum.
  const std::size_t w = 64;
  double best = -1.0;
  std::size_t best_i = 0;
  for (std::size_t i = 0; i + w < out.size(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < w; ++j) acc += std::abs(out[i + j]);
    if (acc > best) {
      best = acc;
      best_i = i + w / 2;
    }
  }
  const double frac = static_cast<double>(best_i) / static_cast<double>(out.size());
  EXPECT_GT(frac, 0.9);  // peak at the tail of the symbol
}

TEST(SawFilter, EmptyInput) {
  const SawFilter saw;
  EXPECT_TRUE(saw.filter(dsp::Signal{}, 4e6, 433.75e6).empty());
}

}  // namespace
}  // namespace saiyan::frontend
