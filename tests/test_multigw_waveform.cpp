// Waveform-level validation of the sharded multi-gateway simulator:
// GatewaySim's analytic per-link PER (BerModel) must agree with the
// full WaveformPipeline on a small 2-gateway / 8-tag deployment — the
// same role tests/test_calibration.cpp plays for the BerModel itself,
// one layer up. The zero-allocation BatchDemodulator makes the
// waveform side cheap enough to run per-CI (label `sim`).
#include <gtest/gtest.h>

#include <cmath>

#include "mac/gateway_sim.hpp"
#include "sim/ber_model.hpp"
#include "sim/capture.hpp"
#include "sim/pipeline.hpp"
#include "stream/streaming_demod.hpp"

namespace saiyan {
namespace {

lora::PhyParams phy() {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  return p;
}

constexpr std::size_t kPayloadSymbols = 16;  // 32 payload bits at K=2

/// Distance at which the deployment's link budget yields `target_rss`
/// (monotonic bisection over the same path the tag assignment uses).
double distance_for_rss(const mac::DeploymentConfig& cfg, double target_rss) {
  double lo = 1.0, hi = 20000.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double rss =
        mac::Deployment::link_rss_dbm(cfg, {0.0, 0.0}, {mid, 0.0});
    (rss > target_rss ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

/// Waveform-side success probability of one link: detection rate times
/// the probability of an error-free payload (the same i.i.d. packet
/// composition the analytic PER uses).
double waveform_success(double rss_dbm, std::size_t n_packets) {
  sim::PipelineConfig cfg;
  cfg.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
  cfg.payload_symbols = kPayloadSymbols;
  cfg.aligned = false;  // full sync, like a real gateway uplink
  cfg.seed = 31;
  sim::WaveformPipeline wp(cfg);
  const sim::PipelineResult r = wp.run_rss(rss_dbm, n_packets);
  const double detect = r.detections.prr();
  const double sym_ok = 1.0 - r.errors.ser();
  return detect * std::pow(std::max(sym_ok, 0.0),
                           static_cast<double>(kPayloadSymbols));
}

TEST(MultiGatewayWaveform, AnalyticPerMatchesWaveformOnSmallDeployment) {
  // 2 gateways far apart, 8 tags placed at link-budget distances that
  // bracket the model's sensitivity: six comfortably above (analytic
  // PER ~ 0), two well below (analytic PER ~ 1).
  mac::GatewaySimConfig cfg;
  cfg.phy = phy();
  cfg.mode = core::Mode::kSuper;
  cfg.payload_bits = kPayloadSymbols * 2;
  cfg.n_windows = 25;
  cfg.packets_per_window = 20;
  cfg.max_retransmissions = 0;
  cfg.shadowing_sigma_db = 0.0;
  cfg.handover_enabled = false;
  cfg.interference_enabled = false;
  cfg.hopping_enabled = false;

  cfg.deployment.n_gateways = 2;
  cfg.deployment.n_tags = 8;
  cfg.deployment.n_channels = 2;
  cfg.deployment.gateway_positions = {{0.0, 0.0}, {50000.0, 0.0}};
  const sim::BerModel model(cfg.ber);
  const double sens = model.required_rss_dbm(cfg.mode, cfg.phy);
  const double margins[8] = {9.0, 7.5, 6.0, 5.0,    // clean region
                             9.0, 6.0,              // clean, gateway 1
                             -10.0, -12.0};         // deep failure region
  for (int i = 0; i < 8; ++i) {
    const double d = distance_for_rss(cfg.deployment, sens + margins[i]);
    const double gw_x = i >= 4 && i < 6 ? 50000.0 : 0.0;
    // Tags 6-7 also attach to gateway 0 (placed on its side).
    cfg.deployment.tag_positions.push_back(
        {gw_x == 0.0 ? d : gw_x - d, static_cast<double>(i)});
  }

  const mac::GatewaySim gs(cfg);
  ASSERT_EQ(gs.deployment().shard_tags[0].size() +
                gs.deployment().shard_tags[1].size(),
            8u);
  ASSERT_GE(gs.deployment().shard_tags[1].size(), 2u);

  // Analytic side: the sharded simulator's measured aggregate must sit
  // on the model's mean success probability (it is a Monte-Carlo
  // estimate of exactly that).
  double model_mean = 0.0;
  for (int i = 0; i < 8; ++i) {
    const double rss = gs.deployment().serving_rss_dbm[i];
    model_mean += 1.0 - model.per(rss, cfg.mode, cfg.phy, cfg.payload_bits);
  }
  model_mean /= 8.0;
  const sim::SweepEngine engine(0);
  const mac::NetworkResult net = gs.run(engine);
  EXPECT_NEAR(net.aggregate_prr(), model_mean, 0.05);

  // Waveform side: every tag's physics-level success probability must
  // agree with its analytic PER at the extremes, and the deployment
  // aggregate must match within Monte-Carlo tolerance.
  double wave_mean = 0.0;
  for (int i = 0; i < 8; ++i) {
    const double rss = gs.deployment().serving_rss_dbm[i];
    const double analytic = 1.0 - model.per(rss, cfg.mode, cfg.phy,
                                            cfg.payload_bits);
    const double wave = waveform_success(rss, 12);
    wave_mean += wave;
    if (analytic > 0.95) {
      EXPECT_GE(wave, 0.8) << "tag " << i << " rss " << rss;
    } else if (analytic < 0.05) {
      EXPECT_LE(wave, 0.2) << "tag " << i << " rss " << rss;
    }
  }
  wave_mean /= 8.0;
  EXPECT_NEAR(wave_mean, net.aggregate_prr(), 0.2);
}

/// Weaker-frame recovery rate of waveform-level SIC over controlled
/// two-tag collisions at the given power delta.
double waveform_sic_recovery(double delta_db, std::size_t sic_depth,
                             std::size_t trials) {
  const std::size_t spsym = phy().samples_per_symbol();
  std::size_t recovered = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    sim::CaptureConfig cfg;
    cfg.saiyan = core::SaiyanConfig::make(phy(), core::Mode::kSuper);
    cfg.payload_symbols = kPayloadSymbols;
    cfg.seed = 1000 + 17 * t;
    cfg.tag_rss_dbm = {-55.0, -55.0 - delta_db};
    cfg.offsets = {500, 500 + (10 + 2 * t) * spsym};  // payload overlap
    const sim::Capture cap = sim::generate_capture(cfg);

    stream::StreamConfig sc;
    sc.saiyan = cfg.saiyan;
    sc.payload_symbols = cfg.payload_symbols;
    sc.sic.depth = sic_depth;
    stream::StreamingDemodulator demod(sc);
    demod.push(cap.samples);
    demod.finish();
    const sim::ReplayStats st =
        sim::score_replay(demod, cap.markers, spsym / 2);
    recovered += st.collisions.captured() == 2 ? 1 : 0;
  }
  return static_cast<double>(recovered) / static_cast<double>(trials);
}

TEST(MultiGatewayWaveform, AnalyticCaptureRuleMatchesWaveformSic) {
  // The shard collision model (mac::collision_outcome) claims: with
  // SIC, a ≥6 dB-weaker co-channel frame is recovered; without it, or
  // at near-equal power, it is lost. Back those claims with the real
  // waveform pipeline: controlled two-tag collisions through
  // stream::StreamingDemodulator + sic::CollisionResolver.
  constexpr double kThreshold = 6.0;
  constexpr std::size_t kTrials = 4;

  // Lopsided collision, SIC on: the analytic rule says both frames
  // survive; the waveform recovery rate must clear the paper-style
  // 80 % bar.
  ASSERT_EQ(mac::collision_outcome(-kThreshold, kThreshold, 2),
            mac::CaptureOutcome::kSicResolved);
  EXPECT_GE(waveform_sic_recovery(kThreshold, 2, kTrials), 0.8);
  EXPECT_GE(waveform_sic_recovery(12.0, 2, kTrials), 0.8);

  // Same collisions, SIC off: the weaker frame is lost.
  ASSERT_EQ(mac::collision_outcome(-kThreshold, kThreshold, 0),
            mac::CaptureOutcome::kLost);
  EXPECT_LE(waveform_sic_recovery(kThreshold, 0, kTrials), 0.2);

  // Near-equal power: lost with or without SIC.
  ASSERT_EQ(mac::collision_outcome(0.0, kThreshold, 2),
            mac::CaptureOutcome::kLost);
  EXPECT_LE(waveform_sic_recovery(0.0, 2, kTrials), 0.5);
}

}  // namespace
}  // namespace saiyan
