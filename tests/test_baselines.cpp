// PLoRa / Aloba baseline detectors: waveform detection, calibrated
// sensitivities, backscatter-uplink BER shape (Fig. 2 / Fig. 21).
#include <gtest/gtest.h>

#include "baselines/aloba.hpp"
#include "baselines/plora.hpp"
#include "channel/awgn_channel.hpp"
#include "dsp/utils.hpp"
#include "lora/modulator.hpp"

namespace saiyan::baselines {
namespace {

lora::PhyParams phy() {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 4e6;
  p.bits_per_symbol = 2;
  return p;
}

TEST(PLoRa, DetectsStrongPacketWaveform) {
  PLoRaConfig cfg;
  cfg.phy = phy();
  const PLoRaDetector det(cfg);
  lora::Modulator mod(cfg.phy);
  dsp::Rng rng(1);
  channel::AwgnChannel chan(cfg.phy.sample_rate_hz, 6.0);
  const dsp::Signal rx = chan.apply(mod.modulate({0, 1, 2, 3}), -70.0, rng);
  EXPECT_TRUE(det.detect(rx));
}

TEST(PLoRa, RejectsNoiseWaveform) {
  PLoRaConfig cfg;
  cfg.phy = phy();
  const PLoRaDetector det(cfg);
  dsp::Rng rng(2);
  dsp::Signal noise(60000, dsp::Complex{});
  dsp::add_awgn(noise, dsp::dbm_to_watts(-90.0), rng);
  EXPECT_FALSE(det.detect(noise));
}

TEST(PLoRa, DetectionProbabilityIsLogistic) {
  PLoRaConfig cfg;
  cfg.phy = phy();
  const PLoRaDetector det(cfg);
  EXPECT_NEAR(det.detection_probability(cfg.detection_sensitivity_dbm), 0.5, 1e-9);
  EXPECT_GT(det.detection_probability(cfg.detection_sensitivity_dbm + 10.0), 0.99);
  EXPECT_LT(det.detection_probability(cfg.detection_sensitivity_dbm - 10.0), 0.01);
}

TEST(PLoRa, CalibratedDetectionRangeNear42m) {
  // Fig. 21: PLoRa detects at ~42.4 m outdoors.
  PLoRaConfig cfg;
  cfg.phy = phy();
  const PLoRaDetector det(cfg);
  const channel::LinkBudget link;
  const double range = link.distance_for_rss(cfg.detection_sensitivity_dbm);
  EXPECT_NEAR(range, 42.4, 3.0);
}

TEST(Aloba, DetectsStrongPacketWaveform) {
  AlobaConfig cfg;
  cfg.phy = phy();
  const AlobaDetector det(cfg);
  lora::Modulator mod(cfg.phy);
  dsp::Rng rng(3);
  channel::AwgnChannel chan(cfg.phy.sample_rate_hz, 6.0);
  // Lead with noise-only samples so the RSSI floor is visible.
  dsp::Signal rx(20000, dsp::Complex{});
  dsp::add_awgn(rx, dsp::dbm_to_watts(chan.noise_floor_dbm()), rng);
  const dsp::Signal pkt = chan.apply(mod.modulate({0, 1}), -65.0, rng);
  rx.insert(rx.end(), pkt.begin(), pkt.end());
  EXPECT_TRUE(det.detect(rx));
}

TEST(Aloba, RejectsNoiseWaveform) {
  AlobaConfig cfg;
  cfg.phy = phy();
  const AlobaDetector det(cfg);
  dsp::Rng rng(4);
  dsp::Signal noise(80000, dsp::Complex{});
  dsp::add_awgn(noise, dsp::dbm_to_watts(-95.0), rng);
  EXPECT_FALSE(det.detect(noise));
}

TEST(Aloba, CalibratedDetectionRangeNear30m) {
  // Fig. 21: Aloba detects at ~30.6 m outdoors.
  AlobaConfig cfg;
  cfg.phy = phy();
  const channel::LinkBudget link;
  EXPECT_NEAR(link.distance_for_rss(cfg.detection_sensitivity_dbm), 30.6, 2.5);
}

TEST(Baselines, SaiyanOutranksBoth) {
  // Fig. 21 ordering: Saiyan (~ -85.8 dBm) >> PLoRa (-64.3) > Aloba (-58.6).
  PLoRaConfig plora;
  plora.phy = phy();
  AlobaConfig aloba;
  aloba.phy = phy();
  EXPECT_LT(plora.detection_sensitivity_dbm, aloba.detection_sensitivity_dbm);
  EXPECT_LT(-85.8, aloba.detection_sensitivity_dbm);
  EXPECT_LT(-85.8, plora.detection_sensitivity_dbm);
}

TEST(UplinkBer, GrowsWithTagToTxDistance) {
  // Fig. 2 shape: BER rises monotonically as the tag leaves the
  // transmitter, from <1e-4 to ~0.5 at 20 m.
  PLoRaConfig pc;
  pc.phy = phy();
  const PLoRaDetector plora(pc);
  AlobaConfig ac;
  ac.phy = phy();
  const AlobaDetector aloba(ac);
  channel::LinkBudget link;
  link.path_loss_exponent = 2.5;  // short-range near-field geometry
  double prev_p = 0.0;
  double prev_a = 0.0;
  for (double d : {0.1, 0.5, 1.0, 5.0, 10.0, 20.0}) {
    const double bp = plora.uplink_ber(d, 100.0, link);
    const double ba = aloba.uplink_ber(d, 100.0, link);
    EXPECT_GE(bp, prev_p);
    EXPECT_GE(ba, prev_a);
    // Aloba's non-coherent OOK is never better than PLoRa.
    EXPECT_GE(ba, bp);
    prev_p = bp;
    prev_a = ba;
  }
  EXPECT_LT(plora.uplink_ber(0.1, 100.0, link), 1e-4);
  EXPECT_GT(plora.uplink_ber(20.0, 100.0, link), 0.05);
}

}  // namespace
}  // namespace saiyan::baselines
