// Automatic gain control (the paper's §4.1 future-work extension):
// peak tracking, setpoint normalization, and the property it exists
// for — one fixed threshold pair working across link distances.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/awgn_channel.hpp"
#include "core/receiver_chain.hpp"
#include "core/symbol_decoder.hpp"
#include "frontend/agc.hpp"
#include "frontend/comparator.hpp"
#include "frontend/sampler.hpp"
#include "lora/modulator.hpp"

namespace saiyan::frontend {
namespace {

TEST(Agc, NormalizesPeakToSetpoint) {
  AgcConfig cfg;
  cfg.sample_rate_hz = 1e6;
  cfg.setpoint = 1.0;
  AutomaticGainControl agc(cfg);
  // Envelope with peak 4e-9 (a typical detector-output scale).
  dsp::RealSignal env(5200, 1e-9);
  for (std::size_t i = 5000; i < 5200; ++i) env[i] = 4e-9;
  agc.process(env);
  // Right after the burst, the tracker has latched onto the peak and
  // the applied gain maps it to the setpoint.
  EXPECT_NEAR(agc.tracked_peak(), 4e-9, 0.5e-9);
  EXPECT_NEAR(agc.gain() * agc.tracked_peak(), 1.0, 0.15);
  // The slow decay then lets the estimate sag only gradually.
  agc.process(dsp::RealSignal(5000, 1e-9));
  EXPECT_GT(agc.tracked_peak(), 2.5e-9);
}

TEST(Agc, FastAttackSlowDecay) {
  AgcConfig cfg;
  cfg.sample_rate_hz = 1e6;
  cfg.attack_s = 10e-6;   // 10 samples
  cfg.decay_s = 10e-3;    // 10k samples
  AutomaticGainControl agc(cfg);
  // Step up: tracker reaches ~63 % within one attack constant.
  agc.process(dsp::RealSignal(100, 1.0));
  EXPECT_GT(agc.tracked_peak(), 0.9);
  // Step down: tracker barely sags over 1000 samples.
  agc.process(dsp::RealSignal(1000, 0.0));
  EXPECT_GT(agc.tracked_peak(), 0.8);
}

TEST(Agc, GainClampsOnSilence) {
  AgcConfig cfg;
  cfg.sample_rate_hz = 1e6;
  cfg.max_gain = 1e6;
  AutomaticGainControl agc(cfg);
  EXPECT_EQ(agc.gain(), 1e6);  // empty tracker -> clamped, not inf
  const dsp::RealSignal out = agc.process(dsp::RealSignal(100, 0.0));
  for (double v : out) EXPECT_TRUE(std::isfinite(v));
}

TEST(Agc, ResetClearsTracker) {
  AgcConfig cfg;
  cfg.sample_rate_hz = 1e6;
  AutomaticGainControl agc(cfg);
  agc.process(dsp::RealSignal(100, 5.0));
  agc.reset();
  EXPECT_EQ(agc.tracked_peak(), 0.0);
}

TEST(Agc, RejectsBadConfig) {
  AgcConfig bad;
  bad.setpoint = 0.0;
  EXPECT_THROW(AutomaticGainControl{bad}, std::invalid_argument);
  AgcConfig bad2;
  bad2.attack_s = 0.0;
  EXPECT_THROW(AutomaticGainControl{bad2}, std::invalid_argument);
}

// The reason AGC exists (paper §4.1): with AGC one *fixed* threshold
// pair decodes packets across very different link distances, where the
// prototype needed a distance-keyed mapping table.
class AgcFixedThresholdAcrossDistances : public ::testing::TestWithParam<double> {};

TEST_P(AgcFixedThresholdAcrossDistances, DecodesWithStaticThresholds) {
  const double distance_m = GetParam();
  lora::PhyParams phy;
  phy.spreading_factor = 7;
  phy.bandwidth_hz = 500e3;
  phy.sample_rate_hz = 4e6;
  phy.bits_per_symbol = 2;
  core::SaiyanConfig cfg = core::SaiyanConfig::make(phy, core::Mode::kVanilla);
  const core::ReceiverChain chain(cfg);
  lora::Modulator mod(phy);
  dsp::Rng rng(31);
  channel::AwgnChannel chan(phy.sample_rate_hz, 6.0);
  channel::LinkBudget link;

  const std::vector<std::uint32_t> tx = {0, 1, 2, 3, 3, 2, 1, 0};
  const dsp::Signal rx = chan.apply(mod.modulate(tx), link.rss_dbm(distance_m), rng);
  const dsp::RealSignal env = chain.envelope(rx, rng);

  // AGC normalizes, then static thresholds at fixed fractions of the
  // setpoint (UH 6 dB below peak, the §4.1 recipe).
  AgcConfig acfg;
  acfg.sample_rate_hz = phy.sample_rate_hz;
  acfg.setpoint = 1.0;
  AutomaticGainControl agc(acfg);
  const dsp::RealSignal leveled = agc.process(env);
  const DoubleThresholdComparator comp(0.5, 0.25);  // static pair
  const dsp::BitVector bits_fs = comp.quantize(leveled);
  const VoltageSampler sampler(phy, cfg.sampling_rate_multiplier);
  const SampledBits sampled = sampler.sample(bits_fs, phy.sample_rate_hz);

  const lora::PacketLayout lay = mod.layout(tx.size());
  const double t0 = static_cast<double>(lay.payload_start) / phy.sample_rate_hz *
                    sampled.sample_rate_hz;
  core::SymbolDecoder dec(phy);
  dec.set_bias(0.3);  // static small edge-lag compensation
  const auto out = dec.decode_stream(sampled.bits, t0, sampled.samples_per_symbol,
                                     tx.size());
  std::size_t errors = 0;
  for (std::size_t i = 0; i < tx.size(); ++i) errors += out[i] != tx[i];
  // Same static thresholds must work from 5 m to 30 m (a >30 dB RSS
  // spread that would break any fixed absolute threshold).
  EXPECT_LE(errors, 1u) << "distance " << distance_m;
}

INSTANTIATE_TEST_SUITE_P(Distances, AgcFixedThresholdAcrossDistances,
                         ::testing::Values(5.0, 10.0, 20.0, 30.0));

TEST(Agc, FixedAbsoluteThresholdFailsAcrossDistancesWithoutAgc) {
  // Control experiment: the same static *absolute* thresholds that
  // work at 5 m produce garbage at 30 m without AGC, demonstrating why
  // the paper needed its mapping table.
  lora::PhyParams phy;
  phy.spreading_factor = 7;
  phy.bandwidth_hz = 500e3;
  phy.sample_rate_hz = 4e6;
  phy.bits_per_symbol = 2;
  core::SaiyanConfig cfg = core::SaiyanConfig::make(phy, core::Mode::kVanilla);
  const core::ReceiverChain chain(cfg);
  lora::Modulator mod(phy);
  dsp::Rng rng(32);
  channel::AwgnChannel chan(phy.sample_rate_hz, 6.0);
  channel::LinkBudget link;
  const std::vector<std::uint32_t> tx = {0, 1, 2, 3, 3, 2, 1, 0};

  auto peak_at = [&](double d) {
    const dsp::Signal rx = chan.apply(mod.modulate(tx), link.rss_dbm(d), rng);
    const dsp::RealSignal env = chain.envelope(rx, rng);
    return *std::max_element(env.begin(), env.end());
  };
  // The envelope peak collapses by orders of magnitude from 5 to 30 m
  // (square-law detector: 2 dB of output per dB of RSS) — a threshold
  // tuned at 5 m sits far above the entire 30 m envelope.
  EXPECT_GT(peak_at(5.0) / peak_at(30.0), 100.0);
}

}  // namespace
}  // namespace saiyan::frontend
