// libFuzzer harness over the ingest surface: TraceReader (strict and
// skip-and-resync modes) and PacketScanner.
//
// Contract under fuzzing: arbitrary bytes may be *rejected* (throw
// std::runtime_error from header parsing, return kCorrupt/kEof from
// the chunk stream, confirm nothing in the scanner) but must never
// crash, overflow, leak, or trip ASan/UBSan. Structured rejection is
// success; anything the sanitizers catch is a finding.
//
// The same file builds three ways:
//   * with clang -fsanitize=fuzzer: LLVMFuzzerTestOneInput links
//     against libFuzzer's driver (CI fuzz-smoke job);
//   * with SAIYAN_FUZZ_STANDALONE: a plain main() that replays corpus
//     files given as argv — the gcc-friendly ctest regression path;
//   * both entry points share run_one(), so a corpus crash reproduces
//     identically in either build.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <exception>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/preamble_detector.hpp"
#include "core/receiver_chain.hpp"
#include "stream/packet_scanner.hpp"
#include "stream/trace.hpp"

namespace {

using namespace saiyan;

lora::PhyParams fuzz_phy() {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 1e6;  // 256 samples/symbol keeps inputs small
  p.bits_per_symbol = 2;
  return p;
}

void drive_reader(std::string_view bytes, bool recover) {
  try {
    stream::TraceReader reader =
        stream::TraceReader::from_bytes(bytes, recover);
    dsp::Signal chunk;
    // The chunk loop is bounded by construction (every iteration
    // advances or ends the stream); the guard only caps the work per
    // input so the fuzzer's throughput stays useful.
    for (int i = 0; i < (1 << 16); ++i) {
      const stream::ChunkStatus st = reader.next_chunk(chunk);
      if (st == stream::ChunkStatus::kEof ||
          st == stream::ChunkStatus::kCorrupt) {
        break;
      }
    }
  } catch (const std::exception&) {
    // Structured rejection of a malformed header/marker table.
  }
}

void drive_scanner(const std::uint8_t* data, std::size_t size) {
  // Heavy template construction happens once; each input gets a
  // reset() scanner, which is the production reuse path anyway.
  static core::SaiyanConfig cfg =
      core::SaiyanConfig::make(fuzz_phy(), core::Mode::kVanilla);
  static core::ReceiverChain chain(cfg);
  static core::PreambleDetector detector(chain);
  static stream::PacketScanner scanner(detector, 0.6);
  scanner.reset();

  if (size < 4) return;
  // First 4 bytes steer the harness: block size and where to fire a
  // mid-stream desync (the gap-recovery path).
  const std::size_t block = 1 + (data[0] | (std::size_t{data[1]} << 8)) % 4096;
  const std::size_t desync_at_block = data[2];
  const std::size_t gap = std::size_t{data[3]} << 4;
  data += 4;
  size -= 4;

  std::vector<double> env(size / sizeof(double));
  std::memcpy(env.data(), data, env.size() * sizeof(double));
  for (double& v : env) {
    // The envelope comes from |IQ| upstream, so it is finite and
    // non-negative by construction; clamp the raw fuzz doubles into
    // that domain (NaN would just poison scores, hiding real bugs).
    if (!std::isfinite(v)) v = 0.0;
    v = std::fabs(v);
    if (v > 1e12) v = 1e12;
  }

  std::vector<stream::PacketSpan> spans;
  std::size_t block_index = 0;
  std::size_t posn = 0;
  while (posn < env.size()) {
    const std::size_t take = std::min(block, env.size() - posn);
    scanner.push_block({env.data() + posn, take}, spans);
    posn += take;
    if (++block_index == desync_at_block) {
      scanner.desync(scanner.samples_consumed() + gap);
    }
  }
  scanner.finish(spans);
}

void run_one(const std::uint8_t* data, std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  drive_reader(bytes, /*recover=*/false);
  drive_reader(bytes, /*recover=*/true);
  drive_scanner(data, size);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  run_one(data, size);
  return 0;
}

#if defined(SAIYAN_FUZZ_STANDALONE)

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string bytes = std::move(ss).str();
    run_one(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  std::printf("fuzz_ingest: replayed %d corpus file(s) cleanly\n", replayed);
  return 0;
}

#endif  // SAIYAN_FUZZ_STANDALONE
