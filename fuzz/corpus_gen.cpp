// Seed-corpus generator for fuzz_ingest: writes a handful of valid
// and near-valid traces into a directory so the fuzzer starts from
// structurally interesting inputs instead of rediscovering the magic
// and header layout one byte at a time.
//
// Usage: corpus_gen <output-dir>
#include <cstdio>
#include <string>

#include "fault/fault_injector.hpp"
#include "sim/capture.hpp"

namespace {

using namespace saiyan;

lora::PhyParams corpus_phy() {
  lora::PhyParams p;
  p.spreading_factor = 7;
  p.bandwidth_hz = 500e3;
  p.sample_rate_hz = 1e6;
  p.bits_per_symbol = 2;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: corpus_gen <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];

  sim::CaptureConfig cfg;
  cfg.saiyan = core::SaiyanConfig::make(corpus_phy(), core::Mode::kSuper);
  cfg.tag_rss_dbm = {-40.0, -50.0};
  cfg.packets_per_tag = 1;
  cfg.payload_symbols = 4;
  cfg.seed = 7;
  const sim::Capture cap = sim::generate_capture(cfg);

  // Small chunks put many record boundaries in a small file — more
  // structure per corpus byte for the fuzzer to mutate.
  sim::write_capture(cap, cfg, dir + "/clean_v1.trace", 2048,
                     /*float32=*/false);
  sim::write_capture(cap, cfg, dir + "/clean_v2.trace", 2048,
                     /*float32=*/true);

  const std::string v1 = fault::read_file(dir + "/clean_v1.trace");
  const std::string v2 = fault::read_file(dir + "/clean_v2.trace");
  const std::size_t n = fault::parse_trace_layout(v1).chunks.size();

  fault::write_file(dir + "/bitflip.trace", fault::flip_chunk_bit(v1, n / 2));
  fault::write_file(dir + "/badlen.trace",
                    fault::corrupt_chunk_length(v1, n / 2));
  fault::write_file(dir + "/drop.trace", fault::drop_chunk(v1, n / 2));
  fault::write_file(dir + "/dup.trace", fault::duplicate_chunk(v2, n / 2));
  fault::write_file(dir + "/swap.trace", fault::swap_chunks(v1, 1, n - 2));
  fault::write_file(dir + "/trunc_mid.trace",
                    fault::truncate_trace(v2, v2.size() / 2));
  fault::write_file(dir + "/trunc_header.trace",
                    fault::truncate_trace(v1, 40));

  fault::FaultConfig fc;
  fc.seed = 99;
  fc.bitflip_rate = 0.2;
  fc.drop_rate = 0.05;
  fc.duplicate_rate = 0.05;
  fc.reorder_rate = 0.05;
  fault::FaultInjector inj(fc);
  fault::write_file(dir + "/shotgun.trace", inj.corrupt_trace(v1));

  std::printf("corpus_gen: wrote 9 seed traces to %s\n", dir.c_str());
  return 0;
}
