// Fuzz harness for the saiyand control-protocol codec
// (src/daemon/control_protocol.*).
//
// Contract under fuzz: arbitrary bytes fed to decode_request /
// decode_response may be rejected with a typed error but must never
// crash, over-read, or allocate proportionally to a lying length
// prefix. Frames that do decode must survive an encode → decode
// round-trip bit-exactly (the daemon echoes decoded requests into
// handlers and re-frames responses, so codec asymmetry would corrupt
// the control plane silently).
//
// The same file builds two ways, mirroring fuzz_ingest.cpp:
//
//   * with clang -fsanitize=fuzzer: LLVMFuzzerTestOneInput links
//     against libFuzzer's driver (CI fuzz-smoke job);
//   * with SAIYAN_FUZZ_STANDALONE: a plain main() that replays corpus
//     files given as argv — the gcc-friendly ctest regression path
//     (fuzz_control_replay).
//
// Both entry points share run_one().
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "daemon/control_protocol.hpp"

namespace {

using namespace saiyan;

/// assert() is compiled out in Release; the round-trip invariants must
/// hold in every build the fuzzer or the ctest replay runs under.
void check(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "fuzz_control: invariant failed: %s\n", what);
  std::abort();
}

void drive_request(std::string_view bytes) {
  auto req = daemon::decode_request(bytes);
  if (!req.ok()) return;
  // A decodable frame must round-trip bit-exactly.
  const std::string wire = daemon::encode_request(req.value());
  check(wire == bytes, "wire == bytes");
  auto again = daemon::decode_request(wire);
  check(again.ok(), "again.ok()");
  check(again.value().op == req.value().op, "again.value().op == req.value().op");
  check(again.value().payload == req.value().payload, "again.value().payload == req.value().payload");
}

void drive_response(std::string_view bytes) {
  auto resp = daemon::decode_response(bytes);
  if (!resp.ok()) return;
  const std::string wire = daemon::encode_response(resp.value());
  check(wire == bytes, "wire == bytes");
  auto again = daemon::decode_response(wire);
  check(again.ok(), "again.ok()");
  check(again.value().status == resp.value().status, "again.value().status == resp.value().status");
  check(again.value().payload == resp.value().payload, "again.value().payload == resp.value().payload");
}

void drive_reframe(std::string_view bytes) {
  // Treat the raw input as a payload: encoding any payload under the
  // cap must yield a frame the decoder accepts unchanged.
  if (bytes.size() >= daemon::kMaxControlPayload) return;
  daemon::ControlRequest req;
  req.op = daemon::ControlOp::kStats;
  req.payload.assign(bytes);
  auto back = daemon::decode_request(daemon::encode_request(req));
  check(back.ok(), "back.ok()");
  check(back.value().payload == req.payload, "back.value().payload == req.payload");
}

void run_one(const std::uint8_t* data, std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  drive_request(bytes);
  drive_response(bytes);
  drive_reframe(bytes);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  run_one(data, size);
  return 0;
}

#if defined(SAIYAN_FUZZ_STANDALONE)

#include <cstdio>
#include <fstream>
#include <sstream>

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string bytes = std::move(ss).str();
    run_one(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  std::printf("fuzz_control: replayed %d corpus file(s) cleanly\n", replayed);
  return 0;
}

#endif  // SAIYAN_FUZZ_STANDALONE
