// Seed-corpus generator for fuzz_control: writes valid and near-valid
// control-protocol frames into a directory so the fuzzer starts from
// the real framing (little-endian length prefix, op/status byte)
// instead of rediscovering it one byte at a time.
//
// Usage: control_corpus_gen <output-dir>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "daemon/control_protocol.hpp"

namespace {

using namespace saiyan;

bool write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::string request(daemon::ControlOp op, std::string payload = {}) {
  daemon::ControlRequest req;
  req.op = op;
  req.payload = std::move(payload);
  return daemon::encode_request(req);
}

std::string response(daemon::ControlStatus status, std::string payload) {
  daemon::ControlResponse resp;
  resp.status = status;
  resp.payload = std::move(payload);
  return daemon::encode_response(resp);
}

/// Raw frame with an arbitrary length prefix — for the frames the
/// encoder refuses to produce (lying lengths, unknown ops).
std::string raw_frame(std::uint32_t declared_len, std::uint8_t head,
                      const std::string& payload) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((declared_len >> (8 * i)) & 0xff));
  }
  out.push_back(static_cast<char>(head));
  out.append(payload);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: control_corpus_gen <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  int wrote = 0;
  auto emit = [&](const char* name, const std::string& bytes) {
    if (!write_file(dir + "/" + name, bytes)) {
      std::fprintf(stderr, "control_corpus_gen: cannot write %s/%s\n",
                   dir.c_str(), name);
      std::exit(1);
    }
    ++wrote;
  };

  // Every live op, bare and with a payload (reload carries none today,
  // but the codec must not care).
  emit("req_stats.ctl", request(daemon::ControlOp::kStats));
  emit("req_reload.ctl", request(daemon::ControlOp::kReload));
  emit("req_drain.ctl", request(daemon::ControlOp::kDrain));
  emit("req_health.ctl", request(daemon::ControlOp::kHealth));
  emit("req_metrics.ctl", request(daemon::ControlOp::kMetrics));
  emit("req_dump_trace.ctl", request(daemon::ControlOp::kDumpTrace));
  emit("req_payload.ctl", request(daemon::ControlOp::kStats, "hello world"));

  // links carries a real option grammar ("top=N sort=KEY") parsed by
  // the daemon — seed the fuzzer with well-formed, partial, and broken
  // variants so mutation explores the parser, not just the framing.
  emit("req_links.ctl", request(daemon::ControlOp::kLinks));
  emit("req_links_opts.ctl",
       request(daemon::ControlOp::kLinks, "top=5 sort=snr"));
  emit("req_links_sort_only.ctl",
       request(daemon::ControlOp::kLinks, "sort=last_seen"));
  emit("req_links_bad_top.ctl",
       request(daemon::ControlOp::kLinks, "top=~~ sort="));
  emit("req_links_bad_key.ctl",
       request(daemon::ControlOp::kLinks, "limit=3"));
  emit("req_links_no_eq.ctl", request(daemon::ControlOp::kLinks, "top 3"));

  // Responses: ok with a stats-shaped body, error with a message.
  emit("resp_ok.ctl",
       response(daemon::ControlStatus::kOk,
                "jobs_done 3\njobs_failed 0\nframes_total 128\n"));
  emit("resp_err.ctl",
       response(daemon::ControlStatus::kError, "reload: config invalid"));

  // Near-valid frames the decoder must reject without a crash: empty
  // body, truncated header, truncated body, length prefix too long and
  // too short for the bytes present, unknown op, body at the cap edge.
  emit("empty_body.ctl", raw_frame(0, 0, ""));
  emit("short_header.ctl", std::string("\x02\x00", 2));
  emit("trunc_body.ctl", raw_frame(16, 1, "abc"));
  emit("len_too_short.ctl", raw_frame(2, 1, "abcdefgh"));
  emit("unknown_op.ctl", raw_frame(1, 0x7f, ""));
  emit("huge_len.ctl", raw_frame(0xffffffffu, 1, "xx"));
  emit("cap_edge.ctl",
       request(daemon::ControlOp::kStats,
               std::string(daemon::kMaxControlPayload, 'A')));

  std::printf("control_corpus_gen: wrote %d seed frames to %s\n", wrote,
              dir.c_str());
  return 0;
}
