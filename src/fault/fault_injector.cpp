#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace saiyan::fault {

namespace {

constexpr char kMagic[8] = {'S', 'A', 'I', 'Y', 'T', 'R', 'C', '1'};
constexpr std::size_t kHeaderBytes = 76;      // fixed header incl. n_markers
constexpr std::size_t kVersionOffset = 8;
constexpr std::size_t kMarkerCountOffset = 68;
constexpr std::size_t kChunkHeaderBytes = 8;  // u32 len, u16 crc, u16 reserved
constexpr std::size_t kMarkerFixedBytes = 16;

template <typename T>
T peek(std::string_view bytes, std::size_t offset) {
  T v{};
  std::memcpy(&v, bytes.data() + offset, sizeof(T));
  return v;
}

void need(std::string_view bytes, std::size_t offset, std::size_t n,
          const char* what) {
  if (offset + n > bytes.size()) {
    throw std::invalid_argument(std::string("parse_trace_layout: truncated ") +
                                what);
  }
}

std::size_t clamp_span(std::size_t lo, std::size_t hi, std::size_t limit,
                       dsp::Rng& rng) {
  const std::size_t a = std::min(lo, limit);
  const std::size_t b = std::min(std::max(lo, hi), limit);
  return static_cast<std::size_t>(rng.uniform_int(a, b));
}

}  // namespace

TraceLayout parse_trace_layout(std::string_view bytes) {
  need(bytes, 0, kHeaderBytes, "header");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::invalid_argument("parse_trace_layout: bad magic");
  }
  TraceLayout layout;
  const std::uint32_t version = peek<std::uint32_t>(bytes, kVersionOffset);
  if (version == 1) {
    layout.sample_bytes = 2 * sizeof(double);
  } else if (version == 2) {
    layout.sample_bytes = 2 * sizeof(float);
  } else {
    throw std::invalid_argument("parse_trace_layout: unknown version");
  }
  const std::uint64_t n_markers =
      peek<std::uint64_t>(bytes, kMarkerCountOffset);
  std::size_t pos = kHeaderBytes;
  for (std::uint64_t m = 0; m < n_markers; ++m) {
    need(bytes, pos, kMarkerFixedBytes, "marker");
    const std::uint32_t n_syms = peek<std::uint32_t>(bytes, pos + 12);
    pos += kMarkerFixedBytes;
    need(bytes, pos, std::size_t{n_syms} * sizeof(std::uint32_t), "marker");
    pos += std::size_t{n_syms} * sizeof(std::uint32_t);
  }
  layout.header_bytes = pos;
  while (pos < bytes.size()) {
    need(bytes, pos, kChunkHeaderBytes, "chunk header");
    const std::uint32_t n = peek<std::uint32_t>(bytes, pos);
    const std::size_t record =
        kChunkHeaderBytes + std::size_t{n} * layout.sample_bytes;
    need(bytes, pos, record, "chunk payload");
    layout.chunks.push_back({pos, record, n});
    pos += record;
  }
  return layout;
}

std::string flip_chunk_bit(std::string_view trace, std::size_t index,
                           std::size_t bit) {
  const TraceLayout layout = parse_trace_layout(trace);
  const ChunkRecordInfo& c = layout.chunks.at(index);
  const std::size_t payload_bytes = c.record_bytes - kChunkHeaderBytes;
  if (bit >= payload_bytes * 8) {
    throw std::invalid_argument("flip_chunk_bit: bit beyond payload");
  }
  std::string out(trace);
  out[c.offset + kChunkHeaderBytes + bit / 8] ^=
      static_cast<char>(1u << (bit % 8));
  return out;
}

std::string corrupt_chunk_length(std::string_view trace, std::size_t index,
                                 std::uint32_t xor_mask) {
  const TraceLayout layout = parse_trace_layout(trace);
  const ChunkRecordInfo& c = layout.chunks.at(index);
  std::string out(trace);
  std::uint32_t n = peek<std::uint32_t>(trace, c.offset);
  n ^= xor_mask;
  std::memcpy(out.data() + c.offset, &n, sizeof(n));
  return out;
}

std::string drop_chunk(std::string_view trace, std::size_t index) {
  const TraceLayout layout = parse_trace_layout(trace);
  const ChunkRecordInfo& c = layout.chunks.at(index);
  std::string out;
  out.reserve(trace.size() - c.record_bytes);
  out.append(trace.substr(0, c.offset));
  out.append(trace.substr(c.offset + c.record_bytes));
  return out;
}

std::string duplicate_chunk(std::string_view trace, std::size_t index) {
  const TraceLayout layout = parse_trace_layout(trace);
  const ChunkRecordInfo& c = layout.chunks.at(index);
  std::string out;
  out.reserve(trace.size() + c.record_bytes);
  out.append(trace.substr(0, c.offset + c.record_bytes));
  out.append(trace.substr(c.offset, c.record_bytes));
  out.append(trace.substr(c.offset + c.record_bytes));
  return out;
}

std::string swap_chunks(std::string_view trace, std::size_t a, std::size_t b) {
  if (a == b) return std::string(trace);
  if (a > b) std::swap(a, b);
  const TraceLayout layout = parse_trace_layout(trace);
  const ChunkRecordInfo& ca = layout.chunks.at(a);
  const ChunkRecordInfo& cb = layout.chunks.at(b);
  std::string out;
  out.reserve(trace.size());
  out.append(trace.substr(0, ca.offset));
  out.append(trace.substr(cb.offset, cb.record_bytes));
  out.append(trace.substr(ca.offset + ca.record_bytes,
                          cb.offset - (ca.offset + ca.record_bytes)));
  out.append(trace.substr(ca.offset, ca.record_bytes));
  out.append(trace.substr(cb.offset + cb.record_bytes));
  return out;
}

std::string truncate_trace(std::string_view trace, std::size_t keep_bytes) {
  return std::string(trace.substr(0, std::min(keep_bytes, trace.size())));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fault::read_file: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in && !in.eof()) {
    throw std::runtime_error("fault::read_file: read failed on " + path);
  }
  return std::move(ss).str();
}

void write_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("fault::write_file: cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw std::runtime_error("fault::write_file: write failed " + path);
}

FaultInjector::FaultInjector(const FaultConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {}

void FaultInjector::reset() {
  rng_ = dsp::Rng(cfg_.seed);
  drift_acc_ = 0.0;
}

ChunkFaultReport FaultInjector::apply(std::span<const dsp::Complex> chunk,
                                      dsp::Signal& out,
                                      std::vector<FaultedSegment>& segments) {
  ChunkFaultReport rep;
  out.assign(chunk.begin(), chunk.end());
  segments.clear();
  if (out.empty()) return rep;

  // Decisions draw from the seeded stream in a fixed order per chunk
  // (gain, DC, drift, dropout), so a (config, seed, chunk sequence)
  // triple always reproduces the same impairments.
  if (cfg_.gain_glitch_rate > 0.0 && rng_.chance(cfg_.gain_glitch_rate)) {
    const std::size_t pos =
        static_cast<std::size_t>(rng_.uniform_int(0, out.size() - 1));
    const std::size_t len = clamp_span(cfg_.glitch_min_samples,
                                       cfg_.glitch_max_samples,
                                       out.size() - pos, rng_);
    const double gain = std::pow(10.0, cfg_.gain_glitch_db / 20.0);
    for (std::size_t i = pos; i < pos + len; ++i) out[i] *= gain;
    ++rep.gain_glitches;
  }
  if (cfg_.dc_step_rate > 0.0 && rng_.chance(cfg_.dc_step_rate)) {
    const std::size_t pos =
        static_cast<std::size_t>(rng_.uniform_int(0, out.size() - 1));
    double p = 0.0;
    for (const dsp::Complex& v : out) p += std::norm(v);
    const double rms = std::sqrt(p / static_cast<double>(out.size()));
    const double phase = rng_.uniform() * 6.283185307179586;
    const dsp::Complex step = cfg_.dc_step_rms_ratio * rms *
                              dsp::Complex(std::cos(phase), std::sin(phase));
    for (std::size_t i = pos; i < out.size(); ++i) out[i] += step;
    ++rep.dc_steps;
  }

  // Clock drift: one sample slips in (duplicate) or out (drop) every
  // 1e6/|ppm| samples; the fractional accumulator carries the cadence
  // across chunks.
  std::vector<std::size_t> dup_positions;
  std::vector<std::pair<std::size_t, std::size_t>> cuts;  // [start, end)
  if (cfg_.clock_drift_ppm != 0.0) {
    drift_acc_ +=
        static_cast<double>(out.size()) * std::abs(cfg_.clock_drift_ppm) * 1e-6;
    while (drift_acc_ >= 1.0) {
      drift_acc_ -= 1.0;
      if (cuts.size() >= out.size()) break;  // absurd ppm: chunk exhausted
      std::size_t pos =
          static_cast<std::size_t>(rng_.uniform_int(0, out.size() - 1));
      if (cfg_.clock_drift_ppm > 0.0) {
        // Distinct positions keep the removal count equal to the slip
        // count (colliding cuts would merge into one removed sample).
        const auto hit = [&](const std::pair<std::size_t, std::size_t>& c) {
          return c.first == pos;
        };
        while (std::any_of(cuts.begin(), cuts.end(), hit)) {
          pos = (pos + 1) % out.size();
        }
        cuts.emplace_back(pos, pos + 1);
      } else {
        dup_positions.push_back(pos);
      }
    }
  }
  if (cfg_.dropout_rate > 0.0 && rng_.chance(cfg_.dropout_rate)) {
    const std::size_t pos =
        static_cast<std::size_t>(rng_.uniform_int(0, out.size() - 1));
    const std::size_t len = clamp_span(cfg_.dropout_min_samples,
                                       cfg_.dropout_max_samples,
                                       out.size() - pos, rng_);
    if (len != 0) cuts.emplace_back(pos, pos + len);
  }

  // Duplications first (they only grow the buffer; positions are
  // pre-growth, applied back to front so earlier indices stay valid).
  std::sort(dup_positions.begin(), dup_positions.end());
  for (auto it = dup_positions.rbegin(); it != dup_positions.rend(); ++it) {
    out.insert(out.begin() + static_cast<std::ptrdiff_t>(*it), out[*it]);
    ++rep.samples_duplicated;
    // Shift pending cut positions past the insertion point.
    for (auto& cut : cuts) {
      if (cut.first >= *it) {
        ++cut.first;
        ++cut.second;
      }
    }
  }

  // Removals: merge overlapping cut intervals, then compact the kept
  // runs in place, emitting one segment per run with the gap that
  // follows it.
  std::sort(cuts.begin(), cuts.end());
  std::vector<std::pair<std::size_t, std::size_t>> merged;
  for (const auto& cut : cuts) {
    const std::size_t start = std::min(cut.first, out.size());
    const std::size_t end = std::min(cut.second, out.size());
    if (start >= end) continue;
    if (!merged.empty() && start <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, end);
    } else {
      merged.emplace_back(start, end);
    }
  }
  if (merged.empty()) {
    segments.push_back({0, out.size(), 0});
    return rep;
  }
  std::size_t write = 0;
  std::size_t read = 0;
  for (std::size_t c = 0; c <= merged.size(); ++c) {
    const std::size_t run_end = c < merged.size() ? merged[c].first : out.size();
    const std::size_t run_len = run_end - read;
    const std::size_t gap =
        c < merged.size() ? merged[c].second - merged[c].first : 0;
    if (run_len != 0 && write != read) {
      std::memmove(out.data() + write, out.data() + read,
                   run_len * sizeof(dsp::Complex));
    }
    // Zero-length leading runs still carry their gap so the caller's
    // sample clock stays aligned.
    if (run_len != 0 || gap != 0) segments.push_back({write, run_len, gap});
    rep.samples_removed += gap;
    write += run_len;
    read = c < merged.size() ? merged[c].second : read + run_len;
  }
  out.resize(write);
  return rep;
}

std::string FaultInjector::corrupt_trace(std::string_view bytes,
                                         TraceFaultReport* report) {
  const TraceLayout layout = parse_trace_layout(bytes);
  TraceFaultReport rep;
  std::string out;
  out.reserve(bytes.size());
  out.append(bytes.substr(0, layout.header_bytes));

  const auto record = [&](std::size_t i) {
    return bytes.substr(layout.chunks[i].offset, layout.chunks[i].record_bytes);
  };
  const auto append_flipped = [&](std::size_t i) {
    // One random payload bit — the classic storage/transport bit rot.
    std::string rec(record(i));
    const std::size_t payload_bytes = rec.size() - kChunkHeaderBytes;
    if (payload_bytes != 0 && cfg_.bitflip_rate > 0.0 &&
        rng_.chance(cfg_.bitflip_rate)) {
      const std::size_t bit = static_cast<std::size_t>(
          rng_.uniform_int(0, payload_bytes * 8 - 1));
      rec[kChunkHeaderBytes + bit / 8] ^=
          static_cast<char>(1u << (bit % 8));
      ++rep.bits_flipped;
    }
    out.append(rec);
  };

  for (std::size_t i = 0; i < layout.chunks.size(); ++i) {
    if (cfg_.drop_rate > 0.0 && rng_.chance(cfg_.drop_rate)) {
      ++rep.chunks_dropped;
      continue;
    }
    if (cfg_.reorder_rate > 0.0 && i + 1 < layout.chunks.size() &&
        rng_.chance(cfg_.reorder_rate)) {
      append_flipped(i + 1);
      append_flipped(i);
      ++rep.chunks_reordered;
      ++i;  // the pair is consumed
      continue;
    }
    append_flipped(i);
    if (cfg_.duplicate_rate > 0.0 && rng_.chance(cfg_.duplicate_rate)) {
      out.append(record(i));
      ++rep.chunks_duplicated;
    }
  }
  if (cfg_.truncate_fraction < 1.0) {
    const double frac = std::max(0.0, cfg_.truncate_fraction);
    const std::size_t keep =
        static_cast<std::size_t>(frac * static_cast<double>(out.size()));
    if (keep < out.size()) {
      out.resize(keep);
      rep.truncated = true;
    }
  }
  if (report != nullptr) *report = rep;
  return out;
}

}  // namespace saiyan::fault
