#include "fault/chaos.hpp"

namespace saiyan::fault {

namespace {

/// Map a 64-bit draw to a uniform double in [0, 1).
double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Map a draw to a uniform integer in [lo, hi] inclusive.
std::uint64_t to_range(std::uint64_t x, std::uint64_t lo, std::uint64_t hi) {
  if (hi <= lo) return lo;
  return lo + x % (hi - lo + 1);
}

}  // namespace

std::uint64_t ChaosScheduler::draw(std::uint64_t domain, std::uint64_t a,
                                   std::uint64_t b) const {
  // Two chained splitmix64 finalizer passes: first fold (domain, a)
  // into a per-lane seed, then index it by b. Statelessness gives
  // thread-order independence; the chaining keeps adjacent lanes
  // (worker 0/1, domain stall/slow) statistically unrelated.
  const std::uint64_t lane =
      dsp::derive_stream_seed(cfg_.seed ^ (domain * 0x9e3779b97f4a7c15ULL), a);
  return dsp::derive_stream_seed(lane, b);
}

std::uint64_t ChaosScheduler::stall_ms(std::uint32_t worker,
                                       std::uint64_t chunk_index) const {
  if (cfg_.stall_rate <= 0.0) return 0;
  const std::uint64_t x = draw(1, worker, chunk_index);
  if (to_unit(x) >= cfg_.stall_rate) return 0;
  // Reuse the same draw for the duration: one coordinate, one number.
  return to_range(x ^ (x >> 32), cfg_.stall_min_ms, cfg_.stall_max_ms);
}

std::uint64_t ChaosScheduler::subscriber_delay_ms(
    std::uint64_t frame_index) const {
  if (cfg_.slow_frame_rate <= 0.0) return 0;
  const std::uint64_t x = draw(2, 0, frame_index);
  return to_unit(x) < cfg_.slow_frame_rate ? cfg_.slow_frame_ms : 0;
}

std::uint64_t ChaosScheduler::kill_point(std::uint64_t total_chunks) const {
  if (!cfg_.kill_while_recording || total_chunks == 0) return total_chunks;
  const std::uint64_t x = draw(3, 0, total_chunks);
  return to_range(x, total_chunks / 2,
                  total_chunks == 1 ? 0 : total_chunks - 1);
}

}  // namespace saiyan::fault
