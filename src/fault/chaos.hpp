// Deterministic chaos scheduling for gateway robustness tests.
//
// FaultInjector (sibling header) impairs the *data*: dropped samples,
// flipped bytes, torn traces. ChaosScheduler impairs the *process*:
// which worker stalls mid-job, which subscriber goes slow, where in a
// recording the process "dies". The two compose into the chaos
// harness the self-healing pillars are tested under — watchdog cancels
// of stalled workers, degradation under slow delivery, crash recovery
// of torn segment directories.
//
// Determinism is the entire point, and thread interleaving is the
// enemy of it: a chaos source that consumed a shared RNG stream would
// make every decision depend on which worker asked first. Every
// ChaosScheduler decision is therefore a *stateless pure function* of
// (seed, coordinates): stall_ms(worker, chunk) hashes the seed with
// the worker index and chunk index through the same splitmix64
// finalizer the decode path uses for stream seeds
// (dsp::derive_stream_seed). Any thread can ask in any order, any
// number of times, and the answer for a coordinate never changes —
// a fixed seed pins the whole chaos schedule, which is what lets a
// test assert exact counters after a storm.
#pragma once

#include <cstdint>

#include "dsp/rng.hpp"

namespace saiyan::fault {

struct ChaosConfig {
  std::uint64_t seed = 1;

  /// P(a given (worker, chunk) coordinate stalls). A "stall" models a
  /// wedged decode: the test's chunk hook spins until the watchdog
  /// fires the worker's cancel token (stall_ms bounds the spin for
  /// watchdog-disabled configs).
  double stall_rate = 0.0;
  std::uint64_t stall_min_ms = 50;
  std::uint64_t stall_max_ms = 200;

  /// P(a given delivered frame is slow-pathed in the subscriber),
  /// and how long the handler sleeps when it is — backpressure that
  /// drives frames_dropped_subscriber and the degradation ladder.
  double slow_frame_rate = 0.0;
  std::uint64_t slow_frame_ms = 5;

  /// Simulated process death while recording: kill_point(n) picks the
  /// chunk index at which the recorder "dies" (never reaching chunk n
  /// or later), uniform over [n/2, n). 0 disables.
  bool kill_while_recording = false;
};

class ChaosScheduler {
 public:
  explicit ChaosScheduler(const ChaosConfig& cfg) : cfg_(cfg) {}

  /// Stall duration for this (worker, chunk) coordinate; 0 = no stall.
  /// Pure: same coordinates, same answer, from any thread.
  std::uint64_t stall_ms(std::uint32_t worker,
                         std::uint64_t chunk_index) const;

  /// Slow-subscriber delay for the frame with this delivery index;
  /// 0 = deliver at full speed.
  std::uint64_t subscriber_delay_ms(std::uint64_t frame_index) const;

  /// Chunk index at which a recorder of `total_chunks` chunks dies
  /// (uniform in [total_chunks/2, total_chunks)); total_chunks when
  /// kill_while_recording is off (i.e. it survives).
  std::uint64_t kill_point(std::uint64_t total_chunks) const;

  const ChaosConfig& config() const { return cfg_; }

 private:
  /// Independent 64-bit draw for a (domain, a, b) coordinate.
  std::uint64_t draw(std::uint64_t domain, std::uint64_t a,
                     std::uint64_t b) const;

  ChaosConfig cfg_;
};

}  // namespace saiyan::fault
