// Deterministic, seeded fault injection for the ingest path.
//
// A production gateway's input is hostile: IQ chunks vanish when a
// USB/network buffer overruns, radio front ends glitch their gain and
// bias, reference clocks drift samples in and out of existence, and
// trace files arrive bit-flipped, truncated, duplicated or reordered
// by flaky storage. This subsystem reproduces all of that on demand —
// reproducibly per seed — so the recovery machinery (TraceReader
// resync, StreamingDemodulator::note_gap, SIC load shedding) can be
// exercised in tests and benchmarks against known captures instead of
// waiting for production to find the gaps.
//
// Two layers, matching where real impairments strike:
//
//   * Sample domain (FaultInjector::apply): operates on IQ chunks in
//     flight — sample dropouts, gain glitches, DC steps, clock-drift
//     sample slips. Removals are reported as gaps so the consumer can
//     realign its absolute sample clock (note_gap).
//   * Byte domain (FaultInjector::corrupt_trace + the targeted
//     surgery helpers): operates on serialized trace bytes — CRC bit
//     flips, whole-record drops/duplicates/reorders, truncation.
//     parse_trace_layout() maps a valid trace's record structure so
//     every operation lands exactly where it claims to.
//
// Determinism: every decision derives from dsp::Rng(seed) consumed in
// a fixed order, so a (config, seed, input) triple always produces the
// same impaired output. The targeted helpers take explicit indices and
// use no randomness at all — they are the fault matrix's scalpel; the
// seeded injector is its shotgun.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace saiyan::fault {

struct FaultConfig {
  std::uint64_t seed = 1;

  // --- sample domain: per-chunk event probabilities ------------------
  /// P(chunk loses one contiguous span of samples) — a dropped
  /// transport buffer. The span length is uniform in
  /// [dropout_min_samples, dropout_max_samples], clamped to the chunk.
  double dropout_rate = 0.0;
  std::size_t dropout_min_samples = 16;
  std::size_t dropout_max_samples = 1024;

  /// P(chunk has one span scaled by gain_glitch_db) — an AGC/LNA
  /// glitch. Span length uniform in [glitch_min, glitch_max].
  double gain_glitch_rate = 0.0;
  double gain_glitch_db = -20.0;
  std::size_t glitch_min_samples = 64;
  std::size_t glitch_max_samples = 2048;

  /// P(chunk gets a DC step) — a bias jump at a random position that
  /// persists to the end of the chunk. The offset magnitude is
  /// dc_step_rms_ratio times the chunk's RMS amplitude, at a random
  /// phase.
  double dc_step_rate = 0.0;
  double dc_step_rms_ratio = 1.0;

  /// Clock drift in parts-per-million. Positive: the receiver clock
  /// runs fast, so one sample is *dropped* (a 1-sample gap) every
  /// 1e6/ppm samples. Negative: one sample is *duplicated* at the same
  /// cadence. Zero disables.
  double clock_drift_ppm = 0.0;

  // --- byte domain: per-chunk-record probabilities (corrupt_trace) ---
  double bitflip_rate = 0.0;    ///< P(record gets one payload bit flipped)
  double drop_rate = 0.0;       ///< P(record removed entirely)
  double duplicate_rate = 0.0;  ///< P(record emitted twice)
  double reorder_rate = 0.0;    ///< P(record swapped with its successor)
  /// Fraction of the total byte stream kept (1.0 = no truncation);
  /// anything below 1 cuts the file mid-whatever-lands-there.
  double truncate_fraction = 1.0;
};

/// One surviving run of samples after impairment, plus the gap
/// (removed samples) that immediately follows it. Offsets index the
/// impaired output buffer.
struct FaultedSegment {
  std::size_t offset = 0;
  std::size_t len = 0;
  std::uint64_t gap_after = 0;
};

/// What a sample-domain pass actually did to one chunk.
struct ChunkFaultReport {
  std::uint64_t samples_removed = 0;
  std::uint64_t samples_duplicated = 0;
  std::uint32_t gain_glitches = 0;
  std::uint32_t dc_steps = 0;
  bool impaired() const {
    return samples_removed || samples_duplicated || gain_glitches || dc_steps;
  }
};

/// What a byte-domain pass did to one trace.
struct TraceFaultReport {
  std::size_t bits_flipped = 0;
  std::size_t chunks_dropped = 0;
  std::size_t chunks_duplicated = 0;
  std::size_t chunks_reordered = 0;
  bool truncated = false;
  bool impaired() const {
    return bits_flipped || chunks_dropped || chunks_duplicated ||
           chunks_reordered || truncated;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg);

  /// Sample domain: impair `chunk` into `out` and describe the
  /// surviving runs in `segments` (both cleared first). The caller
  /// replays faults by pushing each segment and reporting each
  /// nonzero gap_after to its consumer (note_gap). With no removal
  /// faults configured there is always exactly one segment spanning
  /// `out`.
  ChunkFaultReport apply(std::span<const dsp::Complex> chunk,
                         dsp::Signal& out,
                         std::vector<FaultedSegment>& segments);

  /// Byte domain: rewrite serialized trace bytes with the configured
  /// record-level corruptions. `bytes` must parse as a valid trace
  /// (parse_trace_layout throws otherwise) — the injector corrupts
  /// good traces, it does not need to understand already-broken ones.
  std::string corrupt_trace(std::string_view bytes,
                            TraceFaultReport* report = nullptr);

  /// Restart the deterministic decision stream from the config seed.
  void reset();

  const FaultConfig& config() const { return cfg_; }

 private:
  FaultConfig cfg_;
  dsp::Rng rng_;
  double drift_acc_ = 0.0;
};

// ---------------------------------------------------------------------
// Trace-structure mapping + targeted surgery (deterministic, for the
// fault-matrix tests: each helper applies exactly one named fault at
// an exact location).

struct ChunkRecordInfo {
  std::size_t offset = 0;        ///< record start (length field) in bytes
  std::size_t record_bytes = 0;  ///< header + payload
  std::uint32_t n_samples = 0;
};

struct TraceLayout {
  std::size_t header_bytes = 0;  ///< file header + marker table
  std::size_t sample_bytes = 0;  ///< bytes per IQ sample (8 or 16)
  std::vector<ChunkRecordInfo> chunks;
};

/// Map a *valid* trace's record structure; throws std::invalid_argument
/// when the bytes do not parse as a complete, well-formed trace.
TraceLayout parse_trace_layout(std::string_view bytes);

/// Flip one bit of chunk `index`'s payload (bit 0 = first payload byte,
/// LSB). Breaks exactly that record's CRC.
std::string flip_chunk_bit(std::string_view trace, std::size_t index,
                           std::size_t bit = 0);

/// XOR garbage into chunk `index`'s length field — the hostile
/// chunk_len case (the reader must reject without an absurd alloc).
std::string corrupt_chunk_length(std::string_view trace, std::size_t index,
                                 std::uint32_t xor_mask = 0x40000000u);

/// Remove chunk record `index` entirely (silent mid-stream loss).
std::string drop_chunk(std::string_view trace, std::size_t index);

/// Emit chunk record `index` twice back to back.
std::string duplicate_chunk(std::string_view trace, std::size_t index);

/// Swap chunk records `a` and `b` (storage-level reordering).
std::string swap_chunks(std::string_view trace, std::size_t a, std::size_t b);

/// Keep only the first `keep_bytes` bytes.
std::string truncate_trace(std::string_view trace, std::size_t keep_bytes);

/// Whole-file helpers shared by the fault tests and bench drivers.
std::string read_file(const std::string& path);
void write_file(const std::string& path, std::string_view bytes);

}  // namespace saiyan::fault
