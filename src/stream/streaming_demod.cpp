#include "stream/streaming_demod.hpp"

#include <algorithm>
#include <stdexcept>

namespace saiyan::stream {

namespace {

// The scan front end is always the vanilla receive chain: detection
// needs only timing, and the vanilla envelope is both cheaper and
// blockwise-stable (the CFS mixer clock phase would reset at every
// block boundary).
core::SaiyanConfig scan_config(const core::SaiyanConfig& cfg) {
  core::SaiyanConfig scan = cfg;
  scan.mode = core::Mode::kVanilla;
  return scan;
}

}  // namespace

StreamingDemodulator::StreamingDemodulator(const StreamConfig& cfg)
    : cfg_(cfg),
      batch_(cfg.saiyan),
      scan_chain_(scan_config(cfg.saiyan)),
      scan_detector_(scan_chain_),
      scanner_(scan_detector_, cfg.min_score) {
  if (cfg_.payload_symbols == 0) {
    throw std::invalid_argument("StreamingDemodulator: payload_symbols == 0");
  }
  const std::size_t spsym = cfg_.saiyan.phy.samples_per_symbol();
  preamble_len_ = scanner_.template_size();
  frame_len_ = preamble_len_ + cfg_.payload_symbols * spsym;
  block_ = cfg_.block_samples != 0 ? cfg_.block_samples : 8 * spsym;
  // Retention bound: a frame decodes at the first block boundary after
  // its last sample, so the ring must reach back frame + one block
  // from the write head; the extra preamble length is slack for
  // detection-confirmation latency.
  rf_.reserve(frame_len_ + preamble_len_ + 2 * block_);
  pending_.reserve(64);
}

std::size_t StreamingDemodulator::push(std::span<const dsp::Complex> chunk) {
  const std::size_t before = packets_.size();
  std::size_t i = 0;
  while (i < chunk.size()) {
    const std::size_t filled =
        static_cast<std::size_t>(received_ - next_block_start_);
    const std::size_t take = std::min(chunk.size() - i, block_ - filled);
    rf_.append(chunk.subspan(i, take));
    received_ += take;
    i += take;
    if (received_ - next_block_start_ == block_) {
      process_block(next_block_start_, block_);
      next_block_start_ += block_;
    }
  }
  return packets_.size() - before;
}

std::size_t StreamingDemodulator::finish() {
  const std::size_t before = packets_.size();
  const std::size_t tail =
      static_cast<std::size_t>(received_ - next_block_start_);
  if (tail != 0) {
    // The partial tail block depends only on the total capture length,
    // never on the chunk partition, so scanning it preserves
    // chunk-size invariance.
    process_block(next_block_start_, tail);
    next_block_start_ += tail;
  }
  scanner_.finish(pending_);
  decode_ready(/*flush=*/true);
  return packets_.size() - before;
}

void StreamingDemodulator::reset() {
  rf_.clear();
  scanner_.reset();
  pending_.clear();
  pending_head_ = 0;
  received_ = 0;
  next_block_start_ = 0;
  packet_counter_ = 0;
  truncated_ = 0;
}

void StreamingDemodulator::process_block(std::uint64_t block_start,
                                         std::size_t len) {
  const std::span<const dsp::Complex> rf_block = rf_.view(block_start, len);
  scan_chain_.reference_envelope_into(rf_block, scan_ws_);
  scanner_.push_block(scan_ws_.env, pending_);
  decode_ready(/*flush=*/false);
}

void StreamingDemodulator::decode_ready(bool flush) {
  while (pending_head_ < pending_.size()) {
    const PacketSpan span = pending_[pending_head_];
    const std::uint64_t frame_end = span.packet_start + frame_len_;
    if (frame_end <= received_) {
      decode_span(span);
    } else if (flush) {
      ++truncated_;  // capture ended mid-frame
    } else {
      break;
    }
    ++pending_head_;
  }
  if (pending_head_ == pending_.size()) {
    pending_.clear();
    pending_head_ = 0;
  }
}

void StreamingDemodulator::decode_span(const PacketSpan& span) {
  // The per-packet stream derives from (seed, emission index) exactly
  // like a sweep batch, so decoding the same framed span through a
  // stand-alone BatchDemodulator reproduces this packet bit for bit.
  dsp::Rng rng(dsp::derive_stream_seed(cfg_.seed, packet_counter_));
  const std::span<const dsp::Complex> frame =
      rf_.view(span.packet_start, frame_len_);
  const std::span<const std::uint32_t> syms = batch_.decode_aligned(
      frame, preamble_len_, cfg_.payload_symbols, rng);
  DecodedPacket p;
  p.packet_start = span.packet_start;
  p.payload_start = span.payload_start;
  p.score = span.score;
  p.first_symbol = static_cast<std::uint32_t>(symbols_.size());
  p.n_symbols = static_cast<std::uint32_t>(syms.size());
  symbols_.insert(symbols_.end(), syms.begin(), syms.end());
  packets_.push_back(p);
  ++packet_counter_;
}

}  // namespace saiyan::stream
