#include "stream/streaming_demod.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <stdexcept>

#include "dsp/utils.hpp"
#include "obs/trace_ring.hpp"

namespace {

/// Stage timer target, or null when the owner wired no metrics (the
/// ScopedTimer then costs two loads and times nothing).
saiyan::obs::LatencyHistogram* stage_hist(
    const saiyan::stream::StreamConfig& cfg, saiyan::obs::Stage s) {
  return cfg.stage_metrics != nullptr ? &cfg.stage_metrics->histogram(s)
                                      : nullptr;
}

}  // namespace

namespace saiyan::stream {

namespace {

// The scan front end is always the vanilla receive chain: detection
// needs only timing, and the vanilla envelope is both cheaper and
// blockwise-stable (the CFS mixer clock phase would reset at every
// block boundary).
core::SaiyanConfig scan_config(const core::SaiyanConfig& cfg) {
  core::SaiyanConfig scan = cfg;
  scan.mode = core::Mode::kVanilla;
  return scan;
}

bool near(std::uint64_t a, std::uint64_t b, std::uint64_t tol) {
  return a + tol >= b && b + tol >= a;
}

}  // namespace

StreamingDemodulator::StreamingDemodulator(const StreamConfig& cfg)
    : cfg_(cfg),
      batch_(cfg.saiyan),
      scan_chain_(scan_config(cfg.saiyan)),
      scan_detector_(scan_chain_),
      scanner_(scan_detector_, cfg.min_score) {
  if (cfg_.payload_symbols == 0) {
    throw std::invalid_argument("StreamingDemodulator: payload_symbols == 0");
  }
  const std::size_t spsym = cfg_.saiyan.phy.samples_per_symbol();
  preamble_len_ = scanner_.template_size();
  frame_len_ = preamble_len_ + cfg_.payload_symbols * spsym;
  block_ = cfg_.block_samples != 0 ? cfg_.block_samples : 8 * spsym;
  // Retention bound: a frame decodes at the first block boundary after
  // its last sample, so the ring must reach back frame + one block
  // from the write head; the extra preamble length is slack for
  // detection-confirmation latency. A SIC cancellation chain extends
  // the reach: a re-queued rescan of frame A's span only runs after
  // the frame it revealed (up to one frame later) is cancelled in
  // turn, so each depth level adds up to a frame of retention.
  const std::size_t reach = frame_len_ + preamble_len_ + 2 * block_;
  if (cfg_.sic.depth > 0) {
    sic_.emplace(cfg_.saiyan, cfg_.sic, cfg_.payload_symbols);
    // Only the residual ring needs the chain-extended reach: with SIC
    // on, decodes and rescans read residual_, while rf_ serves the
    // block-sized scan views at the write head.
    residual_.reserve(reach +
                      std::min<std::size_t>(cfg_.sic.depth, 6) * frame_len_ +
                      2 * block_);
    rescans_.reserve(32);
  }
  rf_.reserve(reach);
  pending_.reserve(64);
}

std::size_t StreamingDemodulator::push(std::span<const dsp::Complex> chunk) {
  const std::size_t before = packets_.size();
  std::size_t i = 0;
  while (i < chunk.size()) {
    // Cooperative cancellation: one relaxed load per block iteration
    // keeps the hot path unmeasurable while bounding the reaction
    // time of a watchdog cancel to a single block of work.
    if (cfg_.cancel != nullptr &&
        cfg_.cancel->load(std::memory_order_relaxed)) {
      cancelled_ = true;
      break;
    }
    const std::size_t filled =
        static_cast<std::size_t>(received_ - next_block_start_);
    const std::size_t take = std::min(chunk.size() - i, block_ - filled);
    rf_.append(chunk.subspan(i, take));
    if (sic_) residual_.append(chunk.subspan(i, take));
    received_ += take;
    i += take;
    if (received_ - next_block_start_ == block_) {
      process_block(next_block_start_, block_);
      next_block_start_ += block_;
    }
  }
  return packets_.size() - before;
}

std::size_t StreamingDemodulator::finish() {
  const std::size_t before = packets_.size();
  const std::size_t tail =
      static_cast<std::size_t>(received_ - next_block_start_);
  if (tail != 0) {
    // The partial tail block depends only on the total capture length,
    // never on the chunk partition, so scanning it preserves
    // chunk-size invariance.
    process_block(next_block_start_, tail);
    next_block_start_ += tail;
  }
  const std::size_t appended_from = pending_.size();
  scanner_.finish(pending_);
  if (sic_) restore_pending_order(appended_from);
  decode_ready(/*flush=*/true);
  return packets_.size() - before;
}

void StreamingDemodulator::note_gap(std::uint64_t lost_samples) {
  if (lost_samples == 0) return;
  // Whole-stage span: salvage decodes, span drops and the zero-fill
  // pushes all nest inside it (the nested scan/decode stages also time
  // themselves — the timeline shows the nesting, the histograms
  // overlap by design).
  obs::ScopedTimer timer("gap_realign",
                         stage_hist(cfg_, obs::Stage::kGapRealign));
  ++ingest_.gaps;
  ingest_.gap_samples += lost_samples;
  // Frames whose last sample already arrived decode normally first —
  // only the block-boundary latency separates them from "done".
  decode_ready(/*flush=*/false);
  // Whatever is still pending straddles the gap: its frame end lies
  // beyond the samples we actually have, and the missing span will be
  // zeros. Abandon those spans (a SIC rescan must not re-frame them).
  for (std::size_t i = pending_head_; i < pending_.size(); ++i) {
    ++ingest_.spans_dropped;
    if (sic_) remember_start(pending_[i].packet_start);
  }
  pending_.clear();
  pending_head_ = 0;
  // The scanner's unconfirmed candidate scored across the gap
  // boundary; suppress everything before intact samples resume.
  scanner_.desync(received_ + lost_samples);
  // Zero-fill the gap through the normal push path so the absolute
  // sample timeline stays aligned with upstream ground truth and the
  // block tiling never skews. Zeros are inert to the scanner (the
  // relative variance floor keeps their score at zero).
  if (gap_fill_.size() != block_) gap_fill_.assign(block_, dsp::Complex{});
  std::uint64_t left = lost_samples;
  while (left != 0) {
    const std::size_t take =
        static_cast<std::size_t>(std::min<std::uint64_t>(left, block_));
    push(std::span<const dsp::Complex>(gap_fill_).first(take));
    left -= take;
  }
}

void StreamingDemodulator::reset() {
  rf_.clear();
  residual_.clear();
  scanner_.reset();
  pending_.clear();
  pending_head_ = 0;
  rescans_.clear();
  rescan_head_ = 0;
  recent_count_ = 0;
  cancelled_ = false;
  degradation_ = 0;
  last_frame_end_ = 0;
  received_ = 0;
  next_block_start_ = 0;
  packet_counter_ = 0;
  truncated_ = 0;
  collision_groups_ = 0;
  collisions_resolved_ = 0;
  frames_cancelled_ = 0;
  ingest_ = IngestStats{};
}

void StreamingDemodulator::process_block(std::uint64_t block_start,
                                         std::size_t len) {
  const std::span<const dsp::Complex> rf_block = rf_.view(block_start, len);
  const std::size_t appended_from = pending_.size();
  {
    // The scan stage proper: envelope + incremental preamble scan.
    // Decode work triggered below times itself.
    obs::ScopedTimer t("scan", stage_hist(cfg_, obs::Stage::kScan));
    scan_chain_.reference_envelope_into(rf_block, scan_ws_);
    scanner_.push_block(scan_ws_.env, pending_);
  }
  if (sic_) restore_pending_order(appended_from);
  if (cfg_.link_telemetry != nullptr) {
    // Noise-floor sampling from inter-frame idle spans: a block is
    // idle when no confirmed span is in flight, the scanner holds no
    // rising candidate, and every decoded frame ended before it. An
    // undetected preamble onset can slip through; the tracker's power
    // gate rejects it. Purely observational — decode never sees this.
    const bool idle = pending_head_ == pending_.size() &&
                      !scanner_.has_candidate() &&
                      block_start >= last_frame_end_;
    if (idle) cfg_.link_telemetry->sample_noise(dsp::signal_power(rf_block));
  }
  decode_ready(/*flush=*/false);
}

void StreamingDemodulator::decode_ready(bool flush) {
  bool progress = true;
  while (progress) {
    progress = false;
    while (pending_head_ < pending_.size()) {
      const PacketSpan span = pending_[pending_head_];
      const std::uint64_t frame_end = span.packet_start + frame_len_;
      if (frame_end <= received_) {
        if (degradation_ >= 3) {
          // Last degradation rung: the span is complete but decode is
          // the work being shed — drop it whole, visibly.
          ++ingest_.spans_shed;
          if (sic_) remember_start(span.packet_start);
        } else {
          decode_span(span);
        }
        progress = true;
      } else if (flush) {
        ++truncated_;  // capture ended mid-frame
        // Still a known frame: a flushed rescan of the span that
        // revealed it must not frame it a second time.
        if (sic_) remember_start(span.packet_start);
      } else {
        break;
      }
      ++pending_head_;
    }
    if (pending_head_ == pending_.size()) {
      pending_.clear();
      pending_head_ = 0;
    }
    if (!sic_) break;  // no rescan stage; a single decode pass suffices
    while (rescan_head_ < rescans_.size()) {
      const RescanRegion region = rescans_[rescan_head_];
      if (degradation_ >= 2) {
        // Ladder rung 2: the rescan backlog is the work being shed.
        ++rescan_head_;
        ++ingest_.rescans_dropped;
        continue;
      }
      if (region.ready_at > received_ && !flush) break;
      ++rescan_head_;
      if (process_rescan(region)) progress = true;
    }
    if (rescan_head_ == rescans_.size()) {
      rescans_.clear();
      rescan_head_ = 0;
    }
  }
}

void StreamingDemodulator::decode_span(const PacketSpan& span) {
  // The per-packet stream derives from (seed, decode index) exactly
  // like a sweep batch, so decoding the same framed span through a
  // stand-alone BatchDemodulator reproduces this packet bit for bit.
  // SIC decodes read the residual ring, whose content equals the raw
  // capture everywhere no cancelled frame overlapped.
  const std::span<const dsp::Complex> frame =
      (sic_ ? residual_ : rf_).view(span.packet_start, frame_len_);
  const std::uint64_t seed_index =
      cfg_.seed_by_offset ? span.packet_start : packet_counter_;
  std::span<const std::uint32_t> syms;
  {
    obs::ScopedTimer t("decode", stage_hist(cfg_, obs::Stage::kDecode));
    syms = batch_.decode_aligned(frame, preamble_len_, cfg_.payload_symbols,
                                 dsp::derive_stream_seed(cfg_.seed,
                                                         seed_index));
  }
  DecodedPacket p;
  p.packet_start = span.packet_start;
  p.payload_start = span.payload_start;
  p.score = span.score;
  p.first_symbol = static_cast<std::uint32_t>(symbols_.size());
  p.n_symbols = static_cast<std::uint32_t>(syms.size());
  p.collided = span.sic_depth > 0;
  p.sic_assisted = span.sic_depth > 0;
  p.sic_depth = span.sic_depth;
  if (cfg_.link_telemetry != nullptr) {
    fill_diag(span, frame, p);
    last_frame_end_ =
        std::max(last_frame_end_, span.packet_start + frame_len_);
  }
  symbols_.insert(symbols_.end(), syms.begin(), syms.end());
  packets_.push_back(p);
  ++packet_counter_;
  if (sic_) {
    remember_start(span.packet_start);
    if (span.sic_depth > 0) ++collisions_resolved_;
    const std::size_t eff_depth = effective_sic_depth();
    if (span.sic_depth < eff_depth) {
      // Pressure-based load shedding: under a rescan backlog the
      // cancel+rescan stage is the work that compounds (each cancel
      // can queue further rescans), so it is the work we shed. The
      // frame itself is already decoded and delivered.
      const std::size_t backlog = rescans_.size() - rescan_head_;
      if (cfg_.sic.shed_queue != 0 && backlog >= cfg_.sic.shed_queue) {
        ++ingest_.sic_shed;
      } else {
        cancel_frame(span);
      }
    } else if (span.sic_depth < cfg_.sic.depth) {
      // The degradation ladder capped the chain below its configured
      // depth — a shed cancellation, same counter as backlog shedding.
      ++ingest_.sic_shed;
    }
  }
}

void StreamingDemodulator::fill_diag(const PacketSpan& span,
                                     std::span<const dsp::Complex> frame,
                                     DecodedPacket& p) const {
  obs::LinkTelemetry& lt = *cfg_.link_telemetry;

  // SNR: mean frame power against the tracked noise floor, with the
  // noise contribution inside the frame subtracted back out. Clamped
  // to [-100, +100] dB; 0 until the floor tracker has primed.
  const double noise_w = lt.noise_floor_watts();
  if (noise_w > 0.0) {
    const double frame_w = dsp::signal_power(frame);
    const double sig_w = std::max(frame_w - noise_w, noise_w * 1e-10);
    p.snr_db = std::clamp(10.0 * std::log10(sig_w / noise_w), -100.0, 100.0);
    p.noise_floor_dbm = lt.noise_floor_dbm();
  }

  // CFO: one-symbol-lag autocorrelation over the repeated upchirps of
  // the preamble. Each term r[n+spsym]·conj(r[n]) cancels the chirp
  // and leaves e^{j2πf·Tsym}; the accumulated phase over one symbol
  // time is the carrier offset. O(preamble) — noise-level cost next
  // to the decode FFTs.
  const std::size_t spsym = cfg_.saiyan.phy.samples_per_symbol();
  const std::size_t up_len = std::min<std::size_t>(
      preamble_len_,
      static_cast<std::size_t>(cfg_.saiyan.phy.preamble_symbols) * spsym);
  if (up_len > spsym) {
    dsp::Complex acc{};
    for (std::size_t n = 0; n + spsym < up_len; ++n) {
      acc += frame[n + spsym] * std::conj(frame[n]);
    }
    const double t_sym =
        static_cast<double>(spsym) / cfg_.saiyan.phy.sample_rate_hz;
    if (std::abs(acc) > 0.0) p.cfo_hz = std::arg(acc) / (dsp::kTwoPi * t_sym);
  }

  // Timing: parabolic interpolation through the scanner peak and its
  // one-lag neighbors gives a fractional-sample offset. Rescan hits
  // and stream-head peaks have no neighbors recorded — offset 0.
  const double sp = span.score_prev;
  const double sn = span.score_next;
  const double denom = sp - 2.0 * span.score + sn;
  if (sp > 0.0 && sn > 0.0 && denom < 0.0) {
    p.timing_offset = std::clamp(0.5 * (sp - sn) / denom, -1.0, 1.0);
  }

  p.corr_margin = span.score - cfg_.min_score;
}

std::size_t StreamingDemodulator::effective_sic_depth() const {
  // The ladder's first rung halves the most expensive work by capping
  // cancellation chains at one pass; rung 2 sheds the stage entirely.
  if (!sic_ || degradation_ >= 2) return 0;
  if (degradation_ >= 1) return std::min<std::size_t>(cfg_.sic.depth, 1);
  return cfg_.sic.depth;
}

void StreamingDemodulator::remember_start(std::uint64_t packet_start) {
  recent_starts_[recent_count_ % recent_starts_.size()] = packet_start;
  ++recent_count_;
}

void StreamingDemodulator::queue_rescan(const RescanRegion& region) {
  // Hard cap on the rescan backlog: evict the oldest region — it is
  // the one whose residual span ages off the ring first anyway — so
  // queue memory and ring retention stay bounded under pileup floods.
  if (cfg_.sic.max_rescan_queue != 0 &&
      rescans_.size() - rescan_head_ >= cfg_.sic.max_rescan_queue) {
    ++rescan_head_;
    ++ingest_.rescans_dropped;
  }
  rescans_.push_back(region);
}

void StreamingDemodulator::cancel_frame(const PacketSpan& span) {
  obs::ScopedTimer timer("sic_cancel",
                         stage_hist(cfg_, obs::Stage::kSicCancel));
  // Copy the frame span (with alignment padding where available) out
  // of the residual ring, subtract the reconstructed waveform, write
  // the residual back.
  const std::uint64_t radius = sic_->config().align_radius;
  const std::uint64_t lo =
      std::max(span.packet_start >= radius ? span.packet_start - radius : 0,
               residual_.begin());
  const std::uint64_t hi =
      std::min(span.packet_start + frame_len_ + radius, received_);
  const std::size_t len = static_cast<std::size_t>(hi - lo);
  const std::span<const dsp::Complex> view = residual_.view(lo, len);
  cancel_scratch_.resize(len);
  std::memcpy(cancel_scratch_.data(), view.data(),
              len * sizeof(dsp::Complex));
  const DecodedPacket& decoded = packets_.back();
  sic_->cancel(cancel_scratch_,
               static_cast<std::size_t>(span.packet_start - lo),
               symbols(decoded));
  residual_.overwrite(lo, cancel_scratch_);
  ++frames_cancelled_;
  RescanRegion region;
  region.start = span.packet_start;
  region.len = frame_len_ + preamble_len_;  // a preamble can start
                                            // anywhere inside the frame
  region.ready_at = span.packet_start + frame_len_ + preamble_len_;
  region.depth = span.sic_depth + 1;
  queue_rescan(region);
}

bool StreamingDemodulator::process_rescan(const RescanRegion& region) {
  obs::ScopedTimer timer("sic_rescan",
                         stage_hist(cfg_, obs::Stage::kSicRescan));
  // A region flushed before its ready_at simply scans the clamped span.
  const std::uint64_t start = std::max(region.start, residual_.begin());
  const std::uint64_t end =
      std::min<std::uint64_t>(region.start + region.len, received_);
  if (end <= start || end - start < preamble_len_) {
    // Aged off the residual ring (or never materialized) before it
    // could be scanned — under load shedding this is expected loss.
    if (start > region.start) ++ingest_.rescans_expired;
    return false;
  }
  const std::size_t len = static_cast<std::size_t>(end - start);
  const std::span<const dsp::Complex> view = residual_.view(start, len);
  const std::optional<sic::RescanHit> hit = sic_->rescan(view);
  if (!hit.has_value()) return false;
  const std::uint64_t abs = start + hit->offset;
  if (near_known_span(abs)) return false;
  ++collision_groups_;
  PacketSpan s;
  s.packet_start = abs;
  s.payload_start = abs + preamble_len_;
  s.score = hit->score;
  s.sic_depth = region.depth;
  insert_span(s);
  // Flag the revealing frame, if the caller has not drained it yet.
  for (auto it = packets_.rbegin(); it != packets_.rend(); ++it) {
    if (it->packet_start == region.start) {
      it->collided = true;
      break;
    }
  }
  // A pileup can bury several preambles under one frame; once the
  // revealed frame is cancelled in turn, look at this span again.
  if (region.depth < effective_sic_depth()) {
    RescanRegion again = region;
    again.depth = region.depth + 1;
    again.ready_at = abs + frame_len_ + preamble_len_;
    queue_rescan(again);
  }
  return true;
}

void StreamingDemodulator::insert_span(const PacketSpan& span) {
  const auto it = std::upper_bound(
      pending_.begin() + static_cast<std::ptrdiff_t>(pending_head_),
      pending_.end(), span, [](const PacketSpan& a, const PacketSpan& b) {
        return a.packet_start < b.packet_start;
      });
  pending_.insert(it, span);
}

bool StreamingDemodulator::near_known_span(std::uint64_t packet_start) const {
  const std::uint64_t tol = cfg_.saiyan.phy.samples_per_symbol() / 2;
  for (std::size_t i = pending_head_; i < pending_.size(); ++i) {
    if (near(pending_[i].packet_start, packet_start, tol)) return true;
  }
  const std::size_t known = std::min(recent_count_, recent_starts_.size());
  for (std::size_t i = 0; i < known; ++i) {
    if (near(recent_starts_[i], packet_start, tol)) return true;
  }
  return false;
}

void StreamingDemodulator::restore_pending_order(std::size_t appended_from) {
  // Scanner confirmations append in packet_start order, but a span a
  // rescan inserted earlier can sit past them — and a partially
  // overlapped preamble can clear the scanner threshold in the mix
  // *after* a rescan already framed it, so new scanner spans that
  // duplicate a known frame are dropped. Then bubble each survivor
  // back to its place (almost always a no-op).
  const std::uint64_t tol = cfg_.saiyan.phy.samples_per_symbol() / 2;
  std::size_t i = std::max(appended_from, pending_head_);
  while (i < pending_.size()) {
    bool dup = false;
    for (std::size_t k = pending_head_; k < i && !dup; ++k) {
      dup = near(pending_[k].packet_start, pending_[i].packet_start, tol);
    }
    const std::size_t known = std::min(recent_count_, recent_starts_.size());
    for (std::size_t k = 0; k < known && !dup; ++k) {
      dup = near(recent_starts_[k], pending_[i].packet_start, tol);
    }
    if (dup) {
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    std::size_t j = i;
    while (j > pending_head_ &&
           pending_[j].packet_start < pending_[j - 1].packet_start) {
      std::swap(pending_[j], pending_[j - 1]);
      --j;
    }
    ++i;
  }
}

}  // namespace saiyan::stream
