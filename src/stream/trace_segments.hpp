// Crash-safe segmented trace capture (append-only segment rotation).
//
// A single-file TraceWriter loses the whole capture to one crash: the
// header's total_samples is only patched at close, and a SIGKILL mid
// write leaves an unpatched file with a possibly-torn last chunk.
// SegmentedTraceWriter bounds the blast radius to one segment, the
// zns-tools append-only layout (PAPERS.md) adapted to the trace
// format:
//
//   capture-dir/
//     seg-000000.sytrc       sealed segment (complete, CRC'd, header
//     seg-000001.sytrc       total patched — a full standalone trace)
//     seg-000002.sytrc.tmp   active tail (torn on crash)
//
// Each segment is a complete trace file: full PHY header, then CRC'd
// chunks. The ground-truth marker table is written into segment 0
// only (markers carry absolute sample offsets over the whole capture).
// The active segment is written under a `.tmp` suffix and *sealed* by
// patching its header total, optionally fsyncing, then atomically
// renaming to its final name and fsyncing the directory — a reader
// never observes a half-sealed `.sytrc` file. Rotation is size-based
// (segment_samples) and/or capture-time-based (segment_seconds,
// derived from samples / sample_rate so rotation points are
// deterministic for a given input, never wall-clock). Chunks are
// never split across segments.
//
// Crash recovery (scan_segments / SegmentedTraceReader): every sealed
// segment is salvaged bit-exactly; the torn `.tmp` tail is read in
// skip-and-resync mode, salvaging its valid chunk prefix (the tail's
// header total is still 0, so the EOF cross-check knows not to fire).
// `saiyand --recover DIR` drives this from the command line;
// merge_segments() folds the salvage into one plain servable trace.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "stream/trace.hpp"

namespace saiyan::stream {

/// When segment bytes are pushed to stable storage.
enum class FsyncPolicy : std::uint8_t {
  kNone = 0,       ///< never fsync (page cache only; fastest)
  kOnSeal = 1,     ///< fsync each segment once, as part of sealing it
  kEveryChunk = 2, ///< flush + fsync after every chunk (slowest, at
                   ///< most one chunk of loss in the torn tail)
};

const char* to_string(FsyncPolicy p);

struct SegmentPolicy {
  /// Seal the active segment once it holds at least this many samples
  /// (checked at chunk boundaries; 0 = no size-based rotation).
  std::uint64_t segment_samples = 1u << 21;
  /// Seal once the active segment spans at least this much *capture*
  /// time (samples / sample_rate_hz — deterministic, not wall clock;
  /// 0 = no time-based rotation).
  double segment_seconds = 0.0;
  FsyncPolicy fsync = FsyncPolicy::kOnSeal;
};

class SegmentedTraceWriter {
 public:
  /// Creates `dir` if missing and opens the first segment. Throws
  /// std::runtime_error on I/O failure (same contract as TraceWriter).
  SegmentedTraceWriter(const std::string& dir, const TraceMeta& meta,
                       const std::vector<TraceMarker>& markers = {},
                       const SegmentPolicy& policy = {});
  ~SegmentedTraceWriter();

  SegmentedTraceWriter(const SegmentedTraceWriter&) = delete;
  SegmentedTraceWriter& operator=(const SegmentedTraceWriter&) = delete;

  /// Append one chunk, rotating first if the active segment is full.
  /// A chunk always lands whole in exactly one segment.
  void write_chunk(std::span<const dsp::Complex> samples);

  /// Seal the active tail. Idempotent, sticky-error — the segmented
  /// analogue of TraceWriter::finish().
  saiyan::Result<Unit> finish();
  bool try_close() noexcept;

  const std::string& last_error() const { return last_error_; }
  std::uint64_t samples_written() const { return total_; }
  std::size_t segments_sealed() const { return sealed_; }
  const std::string& dir() const { return dir_; }

  /// "seg-000042.sytrc" — sealed-segment file name for an index.
  static std::string segment_name(std::uint64_t index);

 private:
  void open_segment();
  bool seal_segment() noexcept;
  void record_error(const char* what) noexcept;

  std::string dir_;
  TraceMeta meta_;
  std::vector<TraceMarker> markers_;  // segment 0 only
  SegmentPolicy policy_;
  std::optional<TraceWriter> writer_;  // active tail
  std::uint64_t seg_index_ = 0;
  std::uint64_t seg_samples_ = 0;  // samples in the active segment
  std::uint64_t total_ = 0;
  std::size_t sealed_ = 0;
  bool closed_ = false;
  std::string last_error_;
};

/// Per-file salvage outcome of a recovery scan.
struct SegmentInfo {
  std::string path;
  std::uint64_t index = 0;
  bool sealed = false;    ///< final name (not `.tmp`)
  bool readable = false;  ///< header parsed
  /// Sealed, every chunk intact, and the header total matched — the
  /// bit-exact case recovery promises for sealed segments.
  bool complete = false;
  std::uint64_t samples = 0;  ///< samples salvaged from this file
  std::uint64_t chunks = 0;
  IngestStats stats;
  std::string error;  ///< header-level failure, when !readable
};

struct RecoveryReport {
  TraceMeta meta;  ///< from the first readable segment; total_samples
                   ///< is the salvaged total across all segments
  std::vector<TraceMarker> markers;
  std::vector<SegmentInfo> segments;  ///< ordered by index
  std::uint64_t sealed_segments = 0;
  std::uint64_t salvaged_samples = 0;
  bool torn_tail = false;  ///< an unsealed `.tmp` tail was present
  /// `key value` lines (mirrors GatewayStats::to_text()).
  std::string to_text() const;
};

/// Scan a capture directory and salvage-account every segment without
/// modifying anything. Fails only when the directory is unreadable or
/// holds no segment files at all.
saiyan::Result<RecoveryReport> scan_segments(const std::string& dir);

/// Read a segment directory as one logical chunk stream: sealed
/// segments in index order, then the torn tail's valid prefix.
/// Unreadable files are skipped (their loss is visible in stats()).
class SegmentedTraceReader {
 public:
  static saiyan::Result<SegmentedTraceReader> open(const std::string& dir);

  const TraceMeta& meta() const { return report_.meta; }
  const std::vector<TraceMarker>& markers() const { return report_.markers; }
  const RecoveryReport& report() const { return report_; }

  /// kOk / kResync chunk stream across all salvageable segments;
  /// kEof once every segment is exhausted. Never kCorrupt (all
  /// segment readers run in recover mode).
  ChunkStatus next_chunk(dsp::Signal& out);

  const IngestStats& stats() const { return stats_; }
  std::uint64_t last_gap_samples() const { return last_gap_; }
  std::uint64_t samples_read() const { return samples_read_; }

 private:
  explicit SegmentedTraceReader(RecoveryReport report);

  RecoveryReport report_;
  std::size_t cur_ = 0;                  // index into report_.segments
  std::optional<TraceReader> reader_;    // open segment, if any
  IngestStats stats_;
  std::uint64_t last_gap_ = 0;
  std::uint64_t samples_read_ = 0;
};

/// Salvage a segment directory into one plain trace file (servable by
/// TraceReader / Gateway::enqueue_trace): meta + markers from the
/// scan, every recovered chunk in order, total patched to the
/// salvaged count. Mid-capture losses concatenate (the per-segment
/// gap estimates are in the recovery report, not the merged file).
saiyan::Result<RecoveryReport> merge_segments(const std::string& dir,
                                              const std::string& out_path);

}  // namespace saiyan::stream
