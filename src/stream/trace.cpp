#include "stream/trace.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>
#include <type_traits>

#include "lora/crc.hpp"

namespace saiyan::stream {

namespace {

constexpr char kMagic[8] = {'S', 'A', 'I', 'Y', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kVersionF64 = 1;  // float64 IQ pairs (bit-exact)
constexpr std::uint32_t kVersionF32 = 2;  // float32 IQ pairs (half size)
// Sanity bound on a single chunk (4M complex samples = 64 MiB): a
// corrupted length field must not translate into an absurd allocation.
constexpr std::uint32_t kMaxChunkSamples = 1u << 22;
constexpr std::uint64_t kMaxMarkers = 1u << 20;
constexpr std::uint32_t kMaxMarkerSymbols = 1u << 16;

template <typename T>
void put(std::ofstream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool get(std::ifstream& in, T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return in.gcount() == static_cast<std::streamsize>(sizeof(T));
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, const TraceMeta& meta,
                         const std::vector<TraceMarker>& markers) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) throw std::runtime_error("TraceWriter: cannot open " + path);
  meta.phy.validate();
  if (meta.payload_symbols == 0 || meta.payload_symbols > kMaxMarkerSymbols) {
    // Mirror the reader's header bounds: never write an unreadable trace.
    throw std::invalid_argument("TraceWriter: bad payload_symbols");
  }
  float32_ = meta.float32_samples;
  out_.write(kMagic, sizeof(kMagic));
  put(out_, float32_ ? kVersionF32 : kVersionF64);
  put(out_, static_cast<std::uint32_t>(meta.mode));
  put(out_, meta.phy.sample_rate_hz);
  put(out_, static_cast<std::uint32_t>(meta.phy.spreading_factor));
  put(out_, meta.phy.bandwidth_hz);
  put(out_, static_cast<std::uint32_t>(meta.phy.bits_per_symbol));
  put(out_, static_cast<std::uint32_t>(meta.phy.preamble_symbols));
  put(out_, meta.phy.sync_symbols);
  put(out_, static_cast<std::uint32_t>(meta.phy.fec));
  put(out_, static_cast<std::uint32_t>(meta.payload_symbols));
  total_samples_pos_ = out_.tellp();
  put(out_, std::uint64_t{0});  // total_samples, patched by close()
  // Enforce the reader's sanity bounds at write time so a writer can
  // never produce a trace its own reader rejects as malformed.
  if (markers.size() > kMaxMarkers) {
    throw std::invalid_argument("TraceWriter: too many markers");
  }
  put(out_, static_cast<std::uint64_t>(markers.size()));
  for (const TraceMarker& m : markers) {
    if (m.symbols.size() > kMaxMarkerSymbols) {
      throw std::invalid_argument("TraceWriter: marker payload too long");
    }
    put(out_, m.sample_offset);
    put(out_, m.tag_id);
    put(out_, static_cast<std::uint32_t>(m.symbols.size()));
    out_.write(reinterpret_cast<const char*>(m.symbols.data()),
               static_cast<std::streamsize>(m.symbols.size() *
                                            sizeof(std::uint32_t)));
  }
  if (!out_) throw std::runtime_error("TraceWriter: header write failed");
}

TraceWriter::~TraceWriter() {
  if (!closed_) {
    try {
      close();
    } catch (...) {
      // Destructor must not throw; an unpatched header still reads
      // back (total_samples == 0 is informational).
    }
  }
}

void TraceWriter::write_chunk(std::span<const dsp::Complex> samples) {
  if (closed_) throw std::logic_error("TraceWriter: write after close");
  if (samples.empty()) return;
  if (samples.size() > kMaxChunkSamples) {
    throw std::invalid_argument("TraceWriter: chunk too large");
  }
  const std::uint8_t* bytes;
  std::size_t n_bytes;
  if (float32_) {
    f32_scratch_.resize(2 * samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      f32_scratch_[2 * i] = static_cast<float>(samples[i].real());
      f32_scratch_[2 * i + 1] = static_cast<float>(samples[i].imag());
    }
    bytes = reinterpret_cast<const std::uint8_t*>(f32_scratch_.data());
    n_bytes = f32_scratch_.size() * sizeof(float);
  } else {
    bytes = reinterpret_cast<const std::uint8_t*>(samples.data());
    n_bytes = samples.size() * sizeof(dsp::Complex);
  }
  const std::uint16_t crc = lora::crc16({bytes, n_bytes});
  put(out_, static_cast<std::uint32_t>(samples.size()));
  put(out_, crc);
  put(out_, std::uint16_t{0});  // reserved / alignment
  out_.write(reinterpret_cast<const char*>(bytes),
             static_cast<std::streamsize>(n_bytes));
  if (!out_) throw std::runtime_error("TraceWriter: chunk write failed");
  total_ += samples.size();
}

void TraceWriter::close() {
  if (closed_) return;
  out_.seekp(total_samples_pos_);
  put(out_, total_);
  out_.flush();
  if (!out_) throw std::runtime_error("TraceWriter: close failed");
  out_.close();
  closed_ = true;
}

TraceReader::TraceReader(const std::string& path) {
  in_.open(path, std::ios::binary);
  if (!in_) throw std::runtime_error("TraceReader: cannot open " + path);
  char magic[8];
  in_.read(magic, sizeof(magic));
  if (in_.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("TraceReader: bad magic in " + path);
  }
  std::uint32_t version = 0;
  std::uint32_t mode = 0;
  std::uint32_t sf = 0, k = 0, preamble = 0, fec = 0, payload = 0;
  std::uint64_t n_markers = 0;
  if (!get(in_, version) ||
      (version != kVersionF64 && version != kVersionF32)) {
    throw std::runtime_error("TraceReader: unsupported trace version");
  }
  meta_.float32_samples = version == kVersionF32;
  bool ok = get(in_, mode) && get(in_, meta_.phy.sample_rate_hz) &&
            get(in_, sf) && get(in_, meta_.phy.bandwidth_hz) && get(in_, k) &&
            get(in_, preamble) && get(in_, meta_.phy.sync_symbols) &&
            get(in_, fec) && get(in_, payload) &&
            get(in_, meta_.total_samples) && get(in_, n_markers);
  if (!ok || mode > static_cast<std::uint32_t>(core::Mode::kSuper) ||
      fec > static_cast<std::uint32_t>(lora::FecRate::k4_8) ||
      payload == 0 || payload > kMaxMarkerSymbols || n_markers > kMaxMarkers) {
    throw std::runtime_error("TraceReader: malformed header");
  }
  meta_.mode = static_cast<core::Mode>(mode);
  meta_.phy.spreading_factor = static_cast<int>(sf);
  meta_.phy.bits_per_symbol = static_cast<int>(k);
  meta_.phy.preamble_symbols = static_cast<int>(preamble);
  meta_.phy.fec = static_cast<lora::FecRate>(fec);
  meta_.payload_symbols = payload;
  try {
    meta_.phy.validate();
  } catch (const std::invalid_argument& err) {
    // Keep the documented contract: header problems, including corrupt
    // PHY fields, surface as std::runtime_error.
    throw std::runtime_error(std::string("TraceReader: bad PHY header: ") +
                             err.what());
  }
  markers_.resize(n_markers);
  for (TraceMarker& m : markers_) {
    std::uint32_t n_syms = 0;
    if (!get(in_, m.sample_offset) || !get(in_, m.tag_id) ||
        !get(in_, n_syms) || n_syms > kMaxMarkerSymbols) {
      throw std::runtime_error("TraceReader: malformed marker table");
    }
    m.symbols.resize(n_syms);
    in_.read(reinterpret_cast<char*>(m.symbols.data()),
             static_cast<std::streamsize>(n_syms * sizeof(std::uint32_t)));
    if (in_.gcount() !=
        static_cast<std::streamsize>(n_syms * sizeof(std::uint32_t))) {
      throw std::runtime_error("TraceReader: malformed marker table");
    }
  }
}

ChunkStatus TraceReader::next_chunk(dsp::Signal& out) {
  out.clear();
  if (failed_) return ChunkStatus::kCorrupt;
  std::uint32_t n_samples = 0;
  if (!get(in_, n_samples)) {
    if (in_.eof() && in_.gcount() == 0) {
      // A file chopped at an exact chunk boundary still parses chunk
      // by chunk; the header sample count is what catches it. A
      // total of 0 means the writer never patched the header
      // (crashed before close()) — nothing to cross-check then.
      if (meta_.total_samples != 0 && samples_read_ != meta_.total_samples) {
        failed_ = true;
        return ChunkStatus::kCorrupt;
      }
      return ChunkStatus::kEof;
    }
    failed_ = true;
    return ChunkStatus::kCorrupt;
  }
  std::uint16_t crc = 0, reserved = 0;
  if (n_samples == 0 || n_samples > kMaxChunkSamples || !get(in_, crc) ||
      !get(in_, reserved)) {
    failed_ = true;
    return ChunkStatus::kCorrupt;
  }
  const std::size_t n_bytes =
      n_samples * (meta_.float32_samples ? 2 * sizeof(float)
                                         : sizeof(dsp::Complex));
  chunk_bytes_.resize(n_bytes);
  in_.read(reinterpret_cast<char*>(chunk_bytes_.data()),
           static_cast<std::streamsize>(n_bytes));
  if (in_.gcount() != static_cast<std::streamsize>(n_bytes) ||
      lora::crc16(chunk_bytes_) != crc) {
    failed_ = true;
    return ChunkStatus::kCorrupt;
  }
  out.resize(n_samples);
  if (meta_.float32_samples) {
    const float* f = reinterpret_cast<const float*>(chunk_bytes_.data());
    for (std::size_t i = 0; i < n_samples; ++i) {
      out[i] = dsp::Complex(static_cast<double>(f[2 * i]),
                            static_cast<double>(f[2 * i + 1]));
    }
  } else {
    std::memcpy(out.data(), chunk_bytes_.data(), n_bytes);
  }
  samples_read_ += n_samples;
  return ChunkStatus::kOk;
}

}  // namespace saiyan::stream
