#include "stream/trace.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "lora/crc.hpp"

namespace saiyan::stream {

namespace {

constexpr char kMagic[8] = {'S', 'A', 'I', 'Y', 'T', 'R', 'C', '1'};
constexpr std::uint32_t kVersionF64 = 1;  // float64 IQ pairs (bit-exact)
constexpr std::uint32_t kVersionF32 = 2;  // float32 IQ pairs (half size)
// Sanity bound on a single chunk; shared with config validation
// through the public header.
constexpr std::uint32_t kMaxChunkSamples = kMaxTraceChunkSamples;
constexpr std::uint64_t kMaxMarkers = 1u << 20;
constexpr std::uint32_t kMaxMarkerSymbols = 1u << 16;
// Serialized sizes: chunk record header and the fixed part of one
// marker record — the denominators of the file-size bounds below.
constexpr std::uint64_t kChunkHeaderBytes = 8;
constexpr std::uint64_t kMarkerMinBytes = 16;
// Resync scans the byte stream through a sliding window this large;
// candidate headers straddling the edge are covered by re-reading the
// last (kChunkHeaderBytes - 1) bytes into the next window.
constexpr std::size_t kResyncWindow = 1u << 20;

template <typename T>
void put(std::ofstream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

}  // namespace

const char* to_string(IngestError err) {
  switch (err) {
    case IngestError::kNone: return "none";
    case IngestError::kBadMagic: return "bad-magic";
    case IngestError::kBadVersion: return "bad-version";
    case IngestError::kBadHeader: return "bad-header";
    case IngestError::kBadMarkerTable: return "bad-marker-table";
    case IngestError::kChunkHeader: return "chunk-header";
    case IngestError::kChunkCrc: return "chunk-crc";
    case IngestError::kChunkTruncated: return "chunk-truncated";
    case IngestError::kTotalMismatch: return "total-mismatch";
    case IngestError::kCount: break;
  }
  return "invalid";
}

TraceWriter::TraceWriter(const std::string& path, const TraceMeta& meta,
                         const std::vector<TraceMarker>& markers) {
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) throw std::runtime_error("TraceWriter: cannot open " + path);
  meta.phy.validate();
  if (meta.payload_symbols == 0 || meta.payload_symbols > kMaxMarkerSymbols) {
    // Mirror the reader's header bounds: never write an unreadable trace.
    throw std::invalid_argument("TraceWriter: bad payload_symbols");
  }
  float32_ = meta.float32_samples;
  out_.write(kMagic, sizeof(kMagic));
  put(out_, float32_ ? kVersionF32 : kVersionF64);
  put(out_, static_cast<std::uint32_t>(meta.mode));
  put(out_, meta.phy.sample_rate_hz);
  put(out_, static_cast<std::uint32_t>(meta.phy.spreading_factor));
  put(out_, meta.phy.bandwidth_hz);
  put(out_, static_cast<std::uint32_t>(meta.phy.bits_per_symbol));
  put(out_, static_cast<std::uint32_t>(meta.phy.preamble_symbols));
  put(out_, meta.phy.sync_symbols);
  put(out_, static_cast<std::uint32_t>(meta.phy.fec));
  put(out_, static_cast<std::uint32_t>(meta.payload_symbols));
  total_samples_pos_ = out_.tellp();
  put(out_, std::uint64_t{0});  // total_samples, patched by close()
  // Enforce the reader's sanity bounds at write time so a writer can
  // never produce a trace its own reader rejects as malformed.
  if (markers.size() > kMaxMarkers) {
    throw std::invalid_argument("TraceWriter: too many markers");
  }
  put(out_, static_cast<std::uint64_t>(markers.size()));
  for (const TraceMarker& m : markers) {
    if (m.symbols.size() > kMaxMarkerSymbols) {
      throw std::invalid_argument("TraceWriter: marker payload too long");
    }
    put(out_, m.sample_offset);
    put(out_, m.tag_id);
    put(out_, static_cast<std::uint32_t>(m.symbols.size()));
    out_.write(reinterpret_cast<const char*>(m.symbols.data()),
               static_cast<std::streamsize>(m.symbols.size() *
                                            sizeof(std::uint32_t)));
  }
  if (!out_) throw std::runtime_error("TraceWriter: header write failed");
}

TraceWriter::~TraceWriter() {
  // A destructor must not throw; the failure (a truncated trace) is
  // still recorded for anyone holding last_error() through a wrapper.
  try_close();
}

void TraceWriter::write_chunk(std::span<const dsp::Complex> samples) {
  if (closed_) throw std::logic_error("TraceWriter: write after close");
  if (samples.empty()) return;
  if (samples.size() > kMaxChunkSamples) {
    throw std::invalid_argument("TraceWriter: chunk too large");
  }
  const std::uint8_t* bytes;
  std::size_t n_bytes;
  if (float32_) {
    f32_scratch_.resize(2 * samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      f32_scratch_[2 * i] = static_cast<float>(samples[i].real());
      f32_scratch_[2 * i + 1] = static_cast<float>(samples[i].imag());
    }
    bytes = reinterpret_cast<const std::uint8_t*>(f32_scratch_.data());
    n_bytes = f32_scratch_.size() * sizeof(float);
  } else {
    bytes = reinterpret_cast<const std::uint8_t*>(samples.data());
    n_bytes = samples.size() * sizeof(dsp::Complex);
  }
  const std::uint16_t crc = lora::crc16({bytes, n_bytes});
  put(out_, static_cast<std::uint32_t>(samples.size()));
  put(out_, crc);
  put(out_, std::uint16_t{0});  // reserved / alignment
  out_.write(reinterpret_cast<const char*>(bytes),
             static_cast<std::streamsize>(n_bytes));
  if (!out_) {
    last_error_ = "TraceWriter: chunk write failed";
    throw std::runtime_error(last_error_);
  }
  total_ += samples.size();
}

bool TraceWriter::flush() noexcept {
  if (closed_) return last_error_.empty();
  out_.flush();
  if (!out_ && last_error_.empty()) {
    try {
      last_error_ = "TraceWriter: flush failed";
    } catch (...) {
      last_error_.clear();
      last_error_ += '!';
    }
  }
  return last_error_.empty();
}

void TraceWriter::close() {
  if (!try_close()) throw std::runtime_error(last_error_);
}

saiyan::Result<Unit> TraceWriter::finish() {
  if (try_close()) return Unit{};
  return fail(last_error_);
}

bool TraceWriter::try_close() noexcept {
  // Idempotent: only the first call touches the stream; every later
  // call (finish() after try_close(), the destructor after either)
  // reports the first call's outcome.
  if (closed_) return last_error_.empty();
  closed_ = true;
  // Sticky: a write_chunk failure already describes the root cause and
  // has left the stream in a failed state — the close path's seek and
  // flush will fail too, and must not overwrite that first error.
  const bool had_error = !last_error_.empty();
  out_.seekp(total_samples_pos_);
  put(out_, total_);
  out_.flush();
  const bool flushed = static_cast<bool>(out_);
  out_.close();
  if ((!flushed || !out_) && !had_error) {
    // Record instead of throwing: the destructor lands here, and a
    // failed flush means the file is truncated/unpatched on disk.
    try {
      last_error_ = "TraceWriter: close failed (trace truncated)";
    } catch (...) {
      // Allocation failure storing the message; the one-char fallback
      // (small-string storage, no allocation) still flags the error.
      last_error_.clear();
      last_error_ += '!';
    }
  }
  return last_error_.empty();
}

TraceReader::TraceReader(const std::string& path, bool recover)
    : TraceReader(
          [&path]() -> std::unique_ptr<std::istream> {
            auto f = std::make_unique<std::ifstream>(path, std::ios::binary);
            if (!*f) {
              throw std::runtime_error("TraceReader: cannot open " + path);
            }
            return f;
          }(),
          0, recover, path) {}

TraceReader TraceReader::from_bytes(std::string_view bytes, bool recover) {
  return TraceReader(
      std::make_unique<std::istringstream>(std::string(bytes),
                                           std::ios::binary),
      bytes.size(), recover, "<memory>");
}

saiyan::Result<TraceReader> TraceReader::open(const std::string& path,
                                              bool recover) {
  auto f = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*f) {
    return fail("TraceReader: cannot open " + path, IngestError::kBadHeader);
  }
  TraceReader reader(Unparsed{}, std::move(f), 0, recover);
  if (auto err = reader.parse_header(path)) return *std::move(err);
  return reader;
}

saiyan::Result<TraceReader> TraceReader::try_from_bytes(std::string_view bytes,
                                                        bool recover) {
  TraceReader reader(Unparsed{},
                     std::make_unique<std::istringstream>(std::string(bytes),
                                                          std::ios::binary),
                     bytes.size(), recover);
  if (auto err = reader.parse_header("<memory>")) return *std::move(err);
  return reader;
}

TraceReader::TraceReader(Unparsed, std::unique_ptr<std::istream> in,
                         std::uint64_t size, bool recover)
    : in_(std::move(in)), size_(size), recover_(recover) {}

TraceReader::TraceReader(std::unique_ptr<std::istream> in, std::uint64_t size,
                         bool recover, const std::string& name)
    : TraceReader(Unparsed{}, std::move(in), size, recover) {
  if (auto err = parse_header(name)) throw std::runtime_error(err->message);
}

std::optional<saiyan::Error> TraceReader::parse_header(
    const std::string& name) {
  if (size_ == 0) {
    // File path: measure once so every length field can be bounded by
    // what the file can physically hold.
    in_->seekg(0, std::ios::end);
    const std::streamoff end = in_->tellg();
    in_->seekg(0, std::ios::beg);
    if (end < 0 || !*in_) {
      return saiyan::Error{"TraceReader: cannot stat " + name,
                           IngestError::kBadHeader};
    }
    size_ = static_cast<std::uint64_t>(end);
  }
  char magic[8];
  if (!read_exact(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return saiyan::Error{"TraceReader: bad magic in " + name,
                         IngestError::kBadMagic};
  }
  std::uint32_t version = 0;
  std::uint32_t mode = 0;
  std::uint32_t sf = 0, k = 0, preamble = 0, fec = 0, payload = 0;
  std::uint64_t n_markers = 0;
  if (!get(version) || (version != kVersionF64 && version != kVersionF32)) {
    return saiyan::Error{"TraceReader: unsupported trace version",
                         IngestError::kBadVersion};
  }
  meta_.float32_samples = version == kVersionF32;
  bool ok = get(mode) && get(meta_.phy.sample_rate_hz) && get(sf) &&
            get(meta_.phy.bandwidth_hz) && get(k) && get(preamble) &&
            get(meta_.phy.sync_symbols) && get(fec) && get(payload) &&
            get(meta_.total_samples) && get(n_markers);
  // Each marker record occupies at least kMarkerMinBytes, so a marker
  // count the remaining bytes cannot hold is malformed regardless of
  // the format cap — reject before sizing the marker table from it.
  if (!ok || mode > static_cast<std::uint32_t>(core::Mode::kSuper) ||
      fec > static_cast<std::uint32_t>(lora::FecRate::k4_8) ||
      payload == 0 || payload > kMaxMarkerSymbols || n_markers > kMaxMarkers ||
      n_markers * kMarkerMinBytes > size_ - pos_) {
    return saiyan::Error{"TraceReader: malformed header",
                         IngestError::kBadHeader};
  }
  meta_.mode = static_cast<core::Mode>(mode);
  meta_.phy.spreading_factor = static_cast<int>(sf);
  meta_.phy.bits_per_symbol = static_cast<int>(k);
  meta_.phy.preamble_symbols = static_cast<int>(preamble);
  meta_.phy.fec = static_cast<lora::FecRate>(fec);
  meta_.payload_symbols = payload;
  try {
    meta_.phy.validate();
  } catch (const std::invalid_argument& err) {
    // Keep the documented contract: header problems, including corrupt
    // PHY fields, surface as header errors.
    return saiyan::Error{
        std::string("TraceReader: bad PHY header: ") + err.what(),
        IngestError::kBadHeader};
  }
  markers_.resize(n_markers);
  for (TraceMarker& m : markers_) {
    std::uint32_t n_syms = 0;
    if (!get(m.sample_offset) || !get(m.tag_id) || !get(n_syms) ||
        n_syms > kMaxMarkerSymbols ||
        n_syms * sizeof(std::uint32_t) > size_ - pos_) {
      return saiyan::Error{"TraceReader: malformed marker table",
                           IngestError::kBadMarkerTable};
    }
    m.symbols.resize(n_syms);
    if (!read_exact(m.symbols.data(), n_syms * sizeof(std::uint32_t))) {
      return saiyan::Error{"TraceReader: malformed marker table",
                           IngestError::kBadMarkerTable};
    }
  }
  return std::nullopt;
}

bool TraceReader::read_exact(void* dst, std::size_t n) {
  in_->read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
  const std::size_t got = static_cast<std::size_t>(in_->gcount());
  pos_ += got;
  return got == n;
}

std::size_t TraceReader::sample_bytes() const {
  return meta_.float32_samples ? 2 * sizeof(float) : sizeof(dsp::Complex);
}

void TraceReader::decode_samples(dsp::Signal& out,
                                 std::uint32_t n_samples) const {
  out.resize(n_samples);
  if (meta_.float32_samples) {
    const float* f = reinterpret_cast<const float*>(chunk_bytes_.data());
    for (std::size_t i = 0; i < n_samples; ++i) {
      out[i] = dsp::Complex(static_cast<double>(f[2 * i]),
                            static_cast<double>(f[2 * i + 1]));
    }
  } else {
    std::memcpy(out.data(), chunk_bytes_.data(),
                n_samples * sizeof(dsp::Complex));
  }
}

ChunkStatus TraceReader::end_of_stream() {
  // A file chopped at an exact chunk boundary still parses chunk by
  // chunk; the header sample count is what catches it. A total of 0
  // means the writer never patched the header (crashed before
  // close()) — nothing to cross-check then.
  if (!eof_done_ && meta_.total_samples != 0 &&
      samples_read_ != meta_.total_samples) {
    eof_done_ = true;
    stats_.count(IngestError::kTotalMismatch);
    if (!recover_) {
      failed_ = true;
      return ChunkStatus::kCorrupt;
    }
  }
  eof_done_ = true;
  return ChunkStatus::kEof;
}

ChunkStatus TraceReader::fail_chunk(IngestError err, std::uint64_t chunk_start,
                                    std::uint32_t declared_n,
                                    dsp::Signal& out) {
  stats_.count(err);
  ++stats_.chunks_corrupt;
  if (!recover_) {
    failed_ = true;
    return ChunkStatus::kCorrupt;
  }
  return resync(chunk_start, declared_n, out);
}

ChunkStatus TraceReader::next_chunk(dsp::Signal& out) {
  out.clear();
  if (failed_) return ChunkStatus::kCorrupt;
  const std::uint64_t chunk_start = pos_;
  std::uint32_t n_samples = 0;
  if (!get(n_samples)) {
    if (in_->eof() && pos_ == chunk_start) return end_of_stream();
    return fail_chunk(IngestError::kChunkTruncated, chunk_start, 0, out);
  }
  std::uint16_t crc = 0, reserved = 0;
  if (n_samples == 0 || n_samples > kMaxChunkSamples) {
    return fail_chunk(IngestError::kChunkHeader, chunk_start, 0, out);
  }
  if (!get(crc) || !get(reserved)) {
    return fail_chunk(IngestError::kChunkTruncated, chunk_start, 0, out);
  }
  if (reserved != 0) {
    return fail_chunk(IngestError::kChunkHeader, chunk_start, 0, out);
  }
  const std::uint64_t n_bytes =
      static_cast<std::uint64_t>(n_samples) * sample_bytes();
  // Bound by the bytes the file can still hold *before* allocating:
  // a hostile length field must reject cleanly, not reserve 64 MiB
  // for a 100-byte file.
  if (n_bytes > size_ - pos_) {
    return fail_chunk(IngestError::kChunkTruncated, chunk_start, n_samples,
                      out);
  }
  chunk_bytes_.resize(n_bytes);
  if (!read_exact(chunk_bytes_.data(), n_bytes)) {
    return fail_chunk(IngestError::kChunkTruncated, chunk_start, n_samples,
                      out);
  }
  if (lora::crc16(chunk_bytes_) != crc) {
    return fail_chunk(IngestError::kChunkCrc, chunk_start, n_samples, out);
  }
  decode_samples(out, n_samples);
  samples_read_ += n_samples;
  ++stats_.chunks_ok;
  return ChunkStatus::kOk;
}

ChunkStatus TraceReader::resync(std::uint64_t chunk_start,
                                std::uint32_t declared_n, dsp::Signal& out) {
  // Slide forward byte by byte looking for the next complete chunk
  // record: plausible header (length in bounds, reserved zero, payload
  // fits in the file) whose payload passes its CRC16. The header
  // screen is cheap over a windowed buffer; the CRC seals the match —
  // a random 8-byte window that also CRC-checks is a ~2^-16 accident
  // on top of the screen, and a wrong lock merely costs one more
  // resync at the next chunk.
  const std::size_t sb = sample_bytes();
  in_->clear();
  std::uint64_t window_start = chunk_start + 1;
  while (window_start + kChunkHeaderBytes <= size_) {
    const std::size_t win_len = static_cast<std::size_t>(
        std::min<std::uint64_t>(kResyncWindow, size_ - window_start));
    resync_buf_.resize(win_len);
    in_->clear();
    in_->seekg(static_cast<std::streamoff>(window_start));
    in_->read(reinterpret_cast<char*>(resync_buf_.data()),
              static_cast<std::streamsize>(win_len));
    if (static_cast<std::size_t>(in_->gcount()) != win_len) break;
    for (std::size_t o = 0; o + kChunkHeaderBytes <= win_len; ++o) {
      std::uint32_t n = 0;
      std::uint16_t crc = 0, reserved = 0;
      std::memcpy(&n, resync_buf_.data() + o, sizeof(n));
      std::memcpy(&crc, resync_buf_.data() + o + 4, sizeof(crc));
      std::memcpy(&reserved, resync_buf_.data() + o + 6, sizeof(reserved));
      if (n == 0 || n > kMaxChunkSamples || reserved != 0) continue;
      const std::uint64_t cand = window_start + o;
      const std::uint64_t n_bytes = static_cast<std::uint64_t>(n) * sb;
      if (cand + kChunkHeaderBytes + n_bytes > size_) continue;
      chunk_bytes_.resize(n_bytes);
      in_->clear();
      in_->seekg(static_cast<std::streamoff>(cand + kChunkHeaderBytes));
      in_->read(reinterpret_cast<char*>(chunk_bytes_.data()),
                static_cast<std::streamsize>(n_bytes));
      if (static_cast<std::size_t>(in_->gcount()) != n_bytes) continue;
      if (lora::crc16(chunk_bytes_) != crc) continue;
      // Locked. Estimate the samples lost in the skipped bytes: when
      // the abandoned chunk's declared length was plausible and the
      // skip covers exactly that one record (payload corruption, the
      // common case), the declared count is exact; otherwise assume
      // the skipped bytes were all payload.
      const std::uint64_t skipped = cand - chunk_start;
      std::uint64_t lost;
      if (declared_n != 0 &&
          skipped == kChunkHeaderBytes +
                         static_cast<std::uint64_t>(declared_n) * sb) {
        lost = declared_n;
      } else {
        lost = skipped / sb;
      }
      stats_.bytes_skipped += skipped;
      stats_.samples_lost += lost;
      ++stats_.resyncs;
      last_gap_samples_ = lost;
      decode_samples(out, n);
      samples_read_ += n;
      ++stats_.chunks_ok;
      pos_ = cand + kChunkHeaderBytes + n_bytes;
      in_->clear();
      in_->seekg(static_cast<std::streamoff>(pos_));
      return ChunkStatus::kResync;
    }
    // Overlap the window edge so a header straddling it is re-screened.
    window_start += win_len - (kChunkHeaderBytes - 1);
  }
  // No valid chunk anywhere ahead: the corrupt region runs to EOF.
  const std::uint64_t skipped = size_ - chunk_start;
  stats_.bytes_skipped += skipped;
  last_gap_samples_ = skipped / sb;
  stats_.samples_lost += last_gap_samples_;
  pos_ = size_;
  in_->clear();
  in_->seekg(0, std::ios::end);
  return end_of_stream();
}

}  // namespace saiyan::stream
