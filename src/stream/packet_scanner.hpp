// Incremental preamble detection over a continuous envelope stream.
//
// The batch PreambleDetector answers "where is the one preamble in
// this packet buffer"; a gateway capture instead carries many packets
// at unknown offsets with idle gaps between them, and arrives in
// chunks that split preambles arbitrarily. PacketScanner drives the
// detector's prepared envelope correlator (core::PreambleDetector
// exposes the mean-removed template and its dsp::PreparedTemplate)
// block by block, carrying three pieces of state across block
// boundaries so a preamble straddling any boundary scores exactly as
// it would in one contiguous buffer:
//
//   * the last (template-1) envelope samples (an EnvelopeRing),
//   * the Pearson window statistics of the current scan position,
//   * the best unconfirmed candidate peak.
//
// Scoring is the same Pearson-style match the bit-pattern detector
// uses: signed correlation of the zero-mean template against the raw
// window, normalized by window variance and template energy — scale
// invariant, so tags at different RSS compete fairly. A candidate is
// confirmed once a full refractory interval passes without a better
// peak; lags inside an emitted preamble are suppressed, which lets a
// colliding packet's preamble (overlapping the previous payload) still
// be seen.
//
// Determinism: blocks are the unit of work, so emitted spans depend
// only on the absolute sample stream and the block partition — never
// on how the caller chunked its pushes. Instances are not thread-safe
// and must own their PreambleDetector's correlator exclusively.
#pragma once

#include <cstdint>
#include <vector>

#include "core/preamble_detector.hpp"
#include "stream/sample_ring.hpp"

namespace saiyan::stream {

/// One framed packet located in the capture stream (absolute sample
/// indices at the simulation rate).
struct PacketSpan {
  std::uint64_t packet_start = 0;   ///< first preamble sample
  std::uint64_t payload_start = 0;  ///< first payload sample
  double score = 0.0;               ///< normalized preamble match [0,1]
  /// SIC cancellation depth this span was found at: 0 for scanner
  /// detections in the mixed stream, d+1 for preambles re-detected on
  /// a residual after cancelling a depth-d frame.
  std::uint32_t sic_depth = 0;
  /// Correlation scores one lag before/after the peak (0.0 when the
  /// neighbor never scored — stream start, rescan hits). Telemetry
  /// only: link diagnostics fit a parabola through the peak for a
  /// fractional-sample timing offset. Decode never reads them.
  double score_prev = 0.0;
  double score_next = 0.0;
};

class PacketScanner {
 public:
  /// `detector` must outlive the scanner and not be shared with other
  /// workers (its correlator workspace is mutable).
  /// `refractory` is the confirmation lag in samples; it must be
  /// strictly longer than one symbol so the symbol-spaced sidelobes of
  /// the preamble's own autocorrelation cannot confirm before the true
  /// peak (0 = 1.25 symbols derived from the detector's PHY).
  explicit PacketScanner(const core::PreambleDetector& detector,
                         double min_score = 0.6, std::size_t refractory = 0);

  /// Feed the next envelope block (consecutive blocks tile the
  /// absolute stream). Confirmed spans are appended to `out`; returns
  /// the number appended.
  std::size_t push_block(std::span<const double> env_block,
                         std::vector<PacketSpan>& out);

  /// End of stream: confirm the pending candidate, if any.
  std::size_t finish(std::vector<PacketSpan>& out);

  /// Restart on a fresh stream, keeping warm buffers.
  void reset();

  /// Upstream discontinuity (dropped IQ, trace resync): drop the
  /// unconfirmed candidate — its correlation window straddles the gap,
  /// so its score is meaningless — and suppress detections before
  /// `resume_lag` (the absolute index where intact samples resume).
  /// The envelope history and lag counters are kept: the caller keeps
  /// the absolute timeline aligned by pushing fill samples for the gap.
  void desync(std::uint64_t resume_lag);

  /// Envelope samples consumed so far.
  std::uint64_t samples_consumed() const { return env_.end(); }

  /// An unconfirmed candidate peak is pending — i.e. a preamble may be
  /// rising under the scan head. Noise-floor sampling treats such
  /// blocks as busy, never idle.
  bool has_candidate() const { return have_candidate_; }

  /// Preamble+sync template length in samples — the payload offset
  /// within a framed packet.
  std::size_t template_size() const { return tmpl_len_; }

 private:
  const core::PreambleDetector& det_;
  const double min_score_;
  const std::size_t tmpl_len_;
  const double tmpl_energy_;
  const std::size_t refractory_;

  EnvelopeRing env_;          // template-length history + current block
  dsp::RealSignal corr_;      // per-block correlation output
  std::uint64_t next_lag_ = 0;
  std::uint64_t suppress_before_ = 0;  // lags inside an emitted preamble
  bool have_candidate_ = false;
  PacketSpan candidate_;
  // Telemetry-only carry state for PacketSpan::score_prev/score_next:
  // the previous lag's score (survives block boundaries) and whether
  // the current candidate still awaits its successor-lag score.
  double prev_score_ = 0.0;
  bool next_score_pending_ = false;
};

}  // namespace saiyan::stream
