#include "stream/packet_scanner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace saiyan::stream {

namespace {

// The preamble's envelope autocorrelation has sidelobes at exact
// symbol spacing whose scores climb toward the true peak, so the
// refractory must be strictly longer than one symbol: each higher
// sidelobe then arrives before the previous one can confirm, and the
// candidate walks up to the true alignment. The default derives 1.25
// symbols from the detector's own PHY, so it holds for any
// preamble/sync configuration.
std::size_t default_refractory(const core::PreambleDetector& detector) {
  const std::size_t spsym =
      detector.chain().config().phy.samples_per_symbol();
  return spsym + spsym / 4;
}

}  // namespace

PacketScanner::PacketScanner(const core::PreambleDetector& detector,
                             double min_score, std::size_t refractory)
    : det_(detector),
      min_score_(min_score),
      tmpl_len_(detector.envelope_template_zero_mean().size()),
      tmpl_energy_(detector.envelope_correlator().energy()),
      refractory_(refractory == 0 ? default_refractory(detector) : refractory) {}

void PacketScanner::reset() {
  env_.clear();
  next_lag_ = 0;
  suppress_before_ = 0;
  have_candidate_ = false;
  candidate_ = {};
  prev_score_ = 0.0;
  next_score_pending_ = false;
}

void PacketScanner::desync(std::uint64_t resume_lag) {
  have_candidate_ = false;
  candidate_ = {};
  suppress_before_ = std::max(suppress_before_, resume_lag);
  prev_score_ = 0.0;
  next_score_pending_ = false;
}

std::size_t PacketScanner::push_block(std::span<const double> env_block,
                                      std::vector<PacketSpan>& out) {
  if (env_block.empty()) return 0;
  // The scan window is the new block plus (template-1) samples of
  // history; size the ring once the block size is known.
  const std::size_t needed = tmpl_len_ + env_block.size();
  if (env_.capacity() < needed) {
    const std::uint64_t kept = env_.end();
    if (kept != 0) {
      // Growing mid-stream would drop history; the demodulator feeds
      // fixed-size blocks so this only happens on the first block.
      throw std::logic_error("PacketScanner: block larger than first block");
    }
    env_.reserve(needed);
  }
  env_.append(env_block);

  const std::uint64_t env_count = env_.end();
  if (env_count < tmpl_len_) return 0;  // not enough for a single lag yet

  const std::size_t w = tmpl_len_;
  const std::span<const double> window =
      env_.view(next_lag_, static_cast<std::size_t>(env_count - next_lag_));
  det_.envelope_correlator().correlate_signed_into(window, corr_);
  if (corr_.empty()) return 0;

  // Pearson window statistics, recomputed at the batch head and slid
  // within the batch — identical arithmetic for any chunk partition
  // because batches are block-aligned.
  double sum = 0.0;
  double sum2 = 0.0;
  for (std::size_t i = 0; i < w; ++i) {
    sum += window[i];
    sum2 += window[i] * window[i];
  }

  std::size_t emitted = 0;
  for (std::size_t j = 0; j < corr_.size(); ++j) {
    const std::uint64_t lag = next_lag_ + j;
    if (have_candidate_ &&
        lag >= candidate_.packet_start + refractory_) {
      out.push_back(candidate_);
      suppress_before_ = candidate_.packet_start + w;
      have_candidate_ = false;
      ++emitted;
    }
    // The variance floor must be *relative* to the window energy: the
    // envelope lives at nanovolt scale, and an absolute floor would
    // silently dominate the denominator and make the score
    // amplitude-proportional instead of scale-invariant.
    const double var = sum2 - sum * sum / static_cast<double>(w);
    const double var_floor = sum2 * 1e-9 + 1e-300;
    const double score =
        corr_[j] / std::sqrt(std::max(var, var_floor) * tmpl_energy_);
    // Telemetry neighbor capture: the lag right after the candidate
    // peak fills score_next (the refractory is > one symbol, so this
    // always lands before the candidate can confirm). Never read by
    // the detection logic below.
    if (next_score_pending_ && have_candidate_ &&
        lag == candidate_.packet_start + 1) {
      candidate_.score_next = score;
      next_score_pending_ = false;
    }
    if (score >= min_score_ && lag >= suppress_before_ &&
        (!have_candidate_ || score > candidate_.score)) {
      candidate_.packet_start = lag;
      candidate_.payload_start = lag + w;
      candidate_.score = score;
      candidate_.score_prev = prev_score_;
      candidate_.score_next = 0.0;
      next_score_pending_ = true;
      have_candidate_ = true;
    }
    prev_score_ = score;
    if (j + w < window.size()) {
      sum += window[j + w] - window[j];
      sum2 += window[j + w] * window[j + w] - window[j] * window[j];
    }
  }
  next_lag_ += corr_.size();
  return emitted;
}

std::size_t PacketScanner::finish(std::vector<PacketSpan>& out) {
  if (!have_candidate_) return 0;
  out.push_back(candidate_);
  suppress_before_ = candidate_.packet_start + tmpl_len_;
  have_candidate_ = false;
  return 1;
}

}  // namespace saiyan::stream
