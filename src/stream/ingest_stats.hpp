// Ingest-error taxonomy and per-stream health counters.
//
// A production gateway ingests hostile, lossy bytes: corrupt trace
// files, dropped IQ chunks, clock glitches, collision pileups. Every
// layer of the ingest path (TraceReader chunk parsing, the streaming
// demodulator's desync recovery, the SIC load shedder) classifies what
// it rejected or degraded into one IngestError and counts it here, so
// an operator can distinguish "the capture was clean" from "the reader
// resynced twice and the demodulator shed SIC work under backlog" —
// without any layer having to throw. Strict-mode readers still throw
// on malformed headers; IngestStats is how the *recovering* path stays
// observable.
//
// One struct serves both layers: TraceReader fills the trace-side
// counters, StreamingDemodulator the stream-side ones, and
// sim::replay_trace merges the two views into its ReplayStats.
#pragma once

#include <array>
#include <cstdint>

namespace saiyan::stream {

/// What exactly was wrong with a rejected piece of input. The chunk
/// classes double as the resync triggers: in recovery mode each one
/// starts a forward scan for the next CRC-valid chunk instead of
/// wedging the reader.
enum class IngestError : std::uint8_t {
  kNone = 0,
  kBadMagic,        ///< file does not start with the trace magic
  kBadVersion,      ///< unknown trace version
  kBadHeader,       ///< truncated or out-of-bounds PHY/meta header
  kBadMarkerTable,  ///< marker table truncated or over file bounds
  kChunkHeader,     ///< absurd chunk length or nonzero reserved field
  kChunkCrc,        ///< chunk payload failed its CRC16
  kChunkTruncated,  ///< chunk payload cut short by end of file
  kTotalMismatch,   ///< EOF sample count disagrees with the header
  kCount,           ///< number of classes (array size, not an error)
};

const char* to_string(IngestError err);

/// Per-stream ingest health counters. All counters are cumulative
/// since construction / the last reset.
struct IngestStats {
  // --- trace layer (filled by TraceReader) -------------------------
  std::uint64_t chunks_ok = 0;       ///< chunks delivered intact
  std::uint64_t chunks_corrupt = 0;  ///< chunk parses abandoned
  std::uint64_t resyncs = 0;         ///< successful skip-and-resync scans
  std::uint64_t bytes_skipped = 0;   ///< bytes discarded while resyncing
  std::uint64_t samples_lost = 0;    ///< estimated samples in skipped bytes

  // --- stream layer (filled by StreamingDemodulator) ---------------
  std::uint64_t gaps = 0;            ///< upstream discontinuities reported
  std::uint64_t gap_samples = 0;     ///< samples zero-filled across gaps
  std::uint64_t spans_dropped = 0;   ///< pending frames abandoned at a gap
  std::uint64_t sic_shed = 0;        ///< cancellations skipped under backlog
  std::uint64_t rescans_dropped = 0; ///< rescan regions evicted (queue cap)
  std::uint64_t rescans_expired = 0; ///< rescan regions aged off the ring
  /// Whole confirmed spans discarded undecoded by the degradation
  /// ladder's last rung (gateway overload, not input damage).
  std::uint64_t spans_shed = 0;

  // --- delivery layer (filled by gateway::Gateway) -----------------
  /// Decoded frames dropped because a subscriber's bounded queue was
  /// full (a slow consumer sheds its own frames; it never stalls the
  /// demodulator workers).
  std::uint64_t frames_dropped_subscriber = 0;
  /// Jobs abandoned by the gateway watchdog (missed heartbeat or a
  /// blown per-job deadline): the stuck job fails with a typed error
  /// instead of hanging drain().
  std::uint64_t jobs_cancelled = 0;

  /// Per-class rejection counts, indexed by IngestError.
  std::array<std::uint64_t, static_cast<std::size_t>(IngestError::kCount)>
      errors{};
  /// Most recent rejection class (kNone when the stream has been clean).
  IngestError last_error = IngestError::kNone;

  void count(IngestError err) {
    last_error = err;
    ++errors[static_cast<std::size_t>(err)];
  }

  std::uint64_t error_count(IngestError err) const {
    return errors[static_cast<std::size_t>(err)];
  }

  std::uint64_t total_errors() const {
    std::uint64_t n = 0;
    for (const std::uint64_t e : errors) n += e;
    return n;
  }

  bool clean() const {
    return total_errors() == 0 && gaps == 0 && sic_shed == 0 &&
           rescans_dropped == 0 && rescans_expired == 0 && spans_shed == 0 &&
           frames_dropped_subscriber == 0 && jobs_cancelled == 0;
  }

  /// Fold another layer's (or shard's) counters into this one.
  void merge(const IngestStats& other) {
    chunks_ok += other.chunks_ok;
    chunks_corrupt += other.chunks_corrupt;
    resyncs += other.resyncs;
    bytes_skipped += other.bytes_skipped;
    samples_lost += other.samples_lost;
    gaps += other.gaps;
    gap_samples += other.gap_samples;
    spans_dropped += other.spans_dropped;
    sic_shed += other.sic_shed;
    rescans_dropped += other.rescans_dropped;
    rescans_expired += other.rescans_expired;
    spans_shed += other.spans_shed;
    frames_dropped_subscriber += other.frames_dropped_subscriber;
    jobs_cancelled += other.jobs_cancelled;
    for (std::size_t i = 0; i < errors.size(); ++i) errors[i] += other.errors[i];
    if (other.last_error != IngestError::kNone) last_error = other.last_error;
  }
};

}  // namespace saiyan::stream
