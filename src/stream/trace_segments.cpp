#include "stream/trace_segments.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace saiyan::stream {

namespace {

namespace fs = std::filesystem;

/// fsync a path through a short-lived descriptor. The trace bytes were
/// written through an ofstream (no fd access); fsync flushes the
/// inode's dirty pages regardless of which descriptor requests it.
bool fsync_path(const char* path, bool directory) noexcept {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path, flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// "seg-000042.sytrc[.tmp]" -> (index, sealed). Anything else in the
/// directory is ignored by the scan.
bool parse_segment_name(const std::string& name, std::uint64_t& index,
                        bool& sealed) {
  if (name.rfind("seg-", 0) != 0) return false;
  std::size_t i = 4;
  std::uint64_t v = 0;
  std::size_t digits = 0;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
    ++i;
    ++digits;
  }
  if (digits == 0 || digits > 12) return false;
  const std::string_view rest(name.data() + i, name.size() - i);
  if (rest == ".sytrc") {
    sealed = true;
  } else if (rest == ".sytrc.tmp") {
    sealed = false;
  } else {
    return false;
  }
  index = v;
  return true;
}

void line(std::string& out, const char* key, std::uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %llu\n", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

const char* to_string(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kOnSeal: return "on-seal";
    case FsyncPolicy::kEveryChunk: return "every-chunk";
  }
  return "invalid";
}

std::string SegmentedTraceWriter::segment_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu.sytrc",
                static_cast<unsigned long long>(index));
  return buf;
}

SegmentedTraceWriter::SegmentedTraceWriter(
    const std::string& dir, const TraceMeta& meta,
    const std::vector<TraceMarker>& markers, const SegmentPolicy& policy)
    : dir_(dir), meta_(meta), markers_(markers), policy_(policy) {
  meta_.total_samples = 0;  // per-segment totals are patched at seal
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("SegmentedTraceWriter: cannot create " + dir_ +
                             ": " + ec.message());
  }
  open_segment();
}

SegmentedTraceWriter::~SegmentedTraceWriter() { try_close(); }

void SegmentedTraceWriter::open_segment() {
  const std::string tmp = dir_ + "/" + segment_name(seg_index_) + ".tmp";
  // Markers carry capture-absolute offsets; they live in segment 0
  // only so recovery reads one authoritative table.
  writer_.emplace(tmp, meta_,
                  seg_index_ == 0 ? markers_ : std::vector<TraceMarker>{});
  seg_samples_ = 0;
}

void SegmentedTraceWriter::record_error(const char* what) noexcept {
  if (!last_error_.empty()) return;
  try {
    last_error_ = std::string("SegmentedTraceWriter: ") + what;
  } catch (...) {
    last_error_.clear();
    last_error_ += '!';
  }
}

void SegmentedTraceWriter::write_chunk(std::span<const dsp::Complex> samples) {
  if (closed_) {
    throw std::logic_error("SegmentedTraceWriter: write after close");
  }
  if (samples.empty()) return;
  bool rotate = false;
  if (seg_samples_ != 0) {
    if (policy_.segment_samples != 0 &&
        seg_samples_ >= policy_.segment_samples) {
      rotate = true;
    }
    if (policy_.segment_seconds > 0.0 &&
        static_cast<double>(seg_samples_) >=
            policy_.segment_seconds * meta_.phy.sample_rate_hz) {
      rotate = true;
    }
  }
  if (rotate) {
    if (!seal_segment()) throw std::runtime_error(last_error_);
    ++seg_index_;
    open_segment();
  }
  try {
    writer_->write_chunk(samples);
  } catch (...) {
    if (last_error_.empty() && !writer_->last_error().empty()) {
      last_error_ = writer_->last_error();
    }
    throw;
  }
  seg_samples_ += samples.size();
  total_ += samples.size();
  if (policy_.fsync == FsyncPolicy::kEveryChunk) {
    const std::string tmp = dir_ + "/" + segment_name(seg_index_) + ".tmp";
    if (!writer_->flush() || !fsync_path(tmp.c_str(), /*directory=*/false)) {
      record_error("per-chunk fsync failed");
      throw std::runtime_error(last_error_);
    }
  }
}

bool SegmentedTraceWriter::seal_segment() noexcept {
  if (!writer_) return last_error_.empty();
  const std::string tmp = dir_ + "/" + segment_name(seg_index_) + ".tmp";
  const std::string fin = dir_ + "/" + segment_name(seg_index_);
  const bool closed_ok = writer_->try_close();
  if (!closed_ok && last_error_.empty()) {
    try {
      last_error_ = writer_->last_error();
    } catch (...) {
      last_error_ += '!';
    }
  }
  writer_.reset();
  if (!closed_ok) return false;
  if (policy_.fsync != FsyncPolicy::kNone &&
      !fsync_path(tmp.c_str(), /*directory=*/false)) {
    record_error("fsync before seal failed");
    return false;
  }
  std::error_code ec;
  fs::rename(tmp, fin, ec);  // atomic within the directory
  if (ec) {
    record_error("seal rename failed");
    return false;
  }
  if (policy_.fsync != FsyncPolicy::kNone &&
      !fsync_path(dir_.c_str(), /*directory=*/true)) {
    record_error("directory fsync after seal failed");
    return false;
  }
  ++sealed_;
  return true;
}

saiyan::Result<Unit> SegmentedTraceWriter::finish() {
  if (try_close()) return Unit{};
  return fail(last_error_);
}

bool SegmentedTraceWriter::try_close() noexcept {
  if (closed_) return last_error_.empty();
  closed_ = true;
  return seal_segment();
}

std::string RecoveryReport::to_text() const {
  std::string out;
  out.reserve(256 + 160 * segments.size());
  line(out, "segments", segments.size());
  line(out, "sealed_segments", sealed_segments);
  line(out, "torn_tail", torn_tail ? 1 : 0);
  line(out, "salvaged_samples", salvaged_samples);
  line(out, "markers", markers.size());
  for (const SegmentInfo& s : segments) {
    char key[64];
    std::snprintf(key, sizeof(key), "segment.%llu.sealed",
                  static_cast<unsigned long long>(s.index));
    line(out, key, s.sealed ? 1 : 0);
    std::snprintf(key, sizeof(key), "segment.%llu.complete",
                  static_cast<unsigned long long>(s.index));
    line(out, key, s.complete ? 1 : 0);
    std::snprintf(key, sizeof(key), "segment.%llu.samples",
                  static_cast<unsigned long long>(s.index));
    line(out, key, s.samples);
    std::snprintf(key, sizeof(key), "segment.%llu.chunks",
                  static_cast<unsigned long long>(s.index));
    line(out, key, s.chunks);
    std::snprintf(key, sizeof(key), "segment.%llu.chunks_corrupt",
                  static_cast<unsigned long long>(s.index));
    line(out, key, s.stats.chunks_corrupt);
  }
  return out;
}

saiyan::Result<RecoveryReport> scan_segments(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return fail("scan_segments: cannot read " + dir + ": " + ec.message());
  }
  RecoveryReport rep;
  for (const fs::directory_entry& entry : it) {
    std::error_code fec;
    if (!entry.is_regular_file(fec)) continue;
    SegmentInfo si;
    if (!parse_segment_name(entry.path().filename().string(), si.index,
                            si.sealed)) {
      continue;
    }
    si.path = entry.path().string();
    rep.segments.push_back(std::move(si));
  }
  if (rep.segments.empty()) {
    return fail("scan_segments: no segment files in " + dir);
  }
  // Index order; a sealed segment sorts before a same-index tmp (a
  // same-index pair cannot be produced by the writer, but a scan must
  // not depend on that).
  std::sort(rep.segments.begin(), rep.segments.end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              if (a.index != b.index) return a.index < b.index;
              return a.sealed && !b.sealed;
            });
  bool have_meta = false;
  for (SegmentInfo& si : rep.segments) {
    if (!si.sealed) rep.torn_tail = true;
    // Recover mode even for sealed segments: a disk-damaged sealed
    // segment still salvages its intact chunks (and complete=false
    // makes the damage visible).
    auto opened = TraceReader::open(si.path, /*recover=*/true);
    if (!opened.ok()) {
      si.readable = false;
      si.error = opened.message();
      continue;
    }
    si.readable = true;
    TraceReader reader = std::move(opened).value();
    dsp::Signal chunk;
    for (;;) {
      const ChunkStatus st = reader.next_chunk(chunk);
      if (st != ChunkStatus::kOk && st != ChunkStatus::kResync) break;
      si.samples += chunk.size();
      ++si.chunks;
    }
    si.stats = reader.stats();
    si.complete = si.sealed && si.stats.chunks_corrupt == 0 &&
                  si.stats.total_errors() == 0;
    if (si.sealed) ++rep.sealed_segments;
    rep.salvaged_samples += si.samples;
    if (!have_meta) {
      rep.meta = reader.meta();
      rep.markers = reader.markers();
      have_meta = true;
    }
  }
  rep.meta.total_samples = rep.salvaged_samples;
  return rep;
}

SegmentedTraceReader::SegmentedTraceReader(RecoveryReport report)
    : report_(std::move(report)) {}

saiyan::Result<SegmentedTraceReader> SegmentedTraceReader::open(
    const std::string& dir) {
  auto scanned = scan_segments(dir);
  if (!scanned.ok()) return scanned.error();
  return SegmentedTraceReader(std::move(scanned).value());
}

ChunkStatus SegmentedTraceReader::next_chunk(dsp::Signal& out) {
  out.clear();
  for (;;) {
    if (!reader_) {
      while (cur_ < report_.segments.size() &&
             !report_.segments[cur_].readable) {
        ++cur_;
      }
      if (cur_ >= report_.segments.size()) return ChunkStatus::kEof;
      auto opened =
          TraceReader::open(report_.segments[cur_].path, /*recover=*/true);
      if (!opened.ok()) {  // vanished or damaged since the scan
        ++cur_;
        continue;
      }
      reader_.emplace(std::move(opened).value());
    }
    const ChunkStatus st = reader_->next_chunk(out);
    if (st == ChunkStatus::kOk || st == ChunkStatus::kResync) {
      if (st == ChunkStatus::kResync) {
        last_gap_ = reader_->last_gap_samples();
      }
      samples_read_ += out.size();
      return st;
    }
    // Recover-mode readers only end with kEof; fold this segment's
    // health counters in and move on.
    stats_.merge(reader_->stats());
    reader_.reset();
    ++cur_;
  }
}

saiyan::Result<RecoveryReport> merge_segments(const std::string& dir,
                                              const std::string& out_path) {
  auto opened = SegmentedTraceReader::open(dir);
  if (!opened.ok()) return opened.error();
  SegmentedTraceReader reader = std::move(opened).value();
  try {
    TraceMeta meta = reader.meta();
    meta.total_samples = 0;  // patched by the writer at close
    TraceWriter writer(out_path, meta, reader.markers());
    dsp::Signal chunk;
    for (;;) {
      const ChunkStatus st = reader.next_chunk(chunk);
      if (st != ChunkStatus::kOk && st != ChunkStatus::kResync) break;
      writer.write_chunk(chunk);
    }
    if (auto fin = writer.finish(); !fin.ok()) return fin.error();
  } catch (const std::exception& err) {
    return fail(std::string("merge_segments: ") + err.what());
  }
  return reader.report();
}

}  // namespace saiyan::stream
