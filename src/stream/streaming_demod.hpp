// Streaming continuous-capture demodulation.
//
// core::BatchDemodulator (PR 3) decodes one pre-framed packet at a
// time; a gateway workload is a long capture with many packets from
// many tags at unknown offsets, idle gaps, and partial packets at
// chunk boundaries. StreamingDemodulator closes that gap: it accepts
// arbitrary-sized sample chunks, frames packets with an incremental
// preamble scanner, and decodes each framed span through a warm
// BatchDemodulator — yielding decoded packets with absolute
// sample-offset timestamps.
//
// Structure per push:
//
//   chunk -> RfRing -----------------------------(framed span)----+
//              |  fixed-size blocks                               v
//              +-> scan front end (vanilla reference chain)  BatchDemodulator
//                    -> PacketScanner -> confirmed PacketSpans -> DecodedPacket
//
// Design invariants:
//
//   * Chunk-size invariance. All internal work is keyed to absolute
//     sample positions: the capture is processed in fixed-size blocks
//     (envelope + scan), and frames decode at the first block boundary
//     after their last sample arrives. Pushing the capture one sample
//     at a time or in one call yields bit-identical packets.
//   * Batch equivalence. A decoded packet is produced by
//     BatchDemodulator::decode_aligned over the framed RF span with an
//     Rng seeded from dsp::derive_stream_seed(cfg.seed, packet_index),
//     so streaming decode is bit-identical to batch decode of the
//     individually framed packets.
//   * Zero allocation per chunk once warm. Rings, scan workspace,
//     correlator workspaces and the decode workspace all reach a
//     steady-state size; callers that drain packets between pushes
//     keep the result buffers from growing.
//
// The scan front end always runs the *vanilla* reference chain
// (SAW -> LNA gain -> envelope detector, no CFS, no receiver noise):
// detection needs only timing, the vanilla envelope is cheaper and —
// unlike the CFS mixer, whose clock phase would reset at every block
// boundary — blockwise-stable. Channel noise recorded in the capture
// still limits detection, as it should.
//
// Instances are not thread-safe; shard a capture across workers by
// giving each its own StreamingDemodulator.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/batch_demod.hpp"
#include "stream/packet_scanner.hpp"
#include "stream/sample_ring.hpp"

namespace saiyan::stream {

struct StreamConfig {
  core::SaiyanConfig saiyan;
  std::size_t payload_symbols = 32;  ///< frame length is known a priori
  std::uint64_t seed = 1;            ///< per-packet decode stream root
  double min_score = 0.6;            ///< scanner confirmation threshold
  /// Scan block size in samples (0 = eight symbols). Blocks tile the
  /// absolute stream, so this also bounds detection latency.
  std::size_t block_samples = 0;
};

/// One decoded packet. Symbols live in the demodulator's flat store —
/// see StreamingDemodulator::symbols().
struct DecodedPacket {
  std::uint64_t packet_start = 0;   ///< absolute first preamble sample
  std::uint64_t payload_start = 0;  ///< absolute first payload sample
  double score = 0.0;               ///< preamble match quality
  std::uint32_t first_symbol = 0;   ///< index into the symbol store
  std::uint32_t n_symbols = 0;
};

class StreamingDemodulator {
 public:
  explicit StreamingDemodulator(const StreamConfig& cfg);

  // The scanner and detector members hold references into sibling
  // members; copying or moving would leave them dangling. Shard a
  // capture across workers by constructing one instance per worker
  // (emplace via pointers/optional in containers).
  StreamingDemodulator(const StreamingDemodulator&) = delete;
  StreamingDemodulator& operator=(const StreamingDemodulator&) = delete;

  /// Feed the next capture chunk (any size, including one sample).
  /// Returns the number of packets completed by this chunk.
  std::size_t push(std::span<const dsp::Complex> chunk);

  /// End of capture: scan the partial tail block, flush the scanner,
  /// and decode every pending frame that is fully present (frames cut
  /// off by the capture end are counted as truncated, not decoded).
  /// Returns the number of packets completed by the flush.
  std::size_t finish();

  /// Restart on a fresh capture, keeping warm buffers (packet counter,
  /// rings and scanner state are cleared; decoded packets are kept
  /// until clear_packets()).
  void reset();

  /// Packets decoded since construction / the last clear_packets().
  std::span<const DecodedPacket> packets() const { return packets_; }

  /// Decoded symbols of one packet.
  std::span<const std::uint32_t> symbols(const DecodedPacket& p) const {
    return std::span<const std::uint32_t>(symbols_).subspan(p.first_symbol,
                                                            p.n_symbols);
  }

  /// Drop delivered packets (keeps capacity — the steady-state caller
  /// drains between pushes and never regrows the result buffers).
  void clear_packets() {
    packets_.clear();
    symbols_.clear();
  }

  std::uint64_t samples_consumed() const { return received_; }
  std::size_t truncated_packets() const { return truncated_; }
  std::size_t frame_samples() const { return frame_len_; }
  std::size_t preamble_samples() const { return preamble_len_; }
  std::size_t block_samples() const { return block_; }
  const StreamConfig& config() const { return cfg_; }
  const core::BatchDemodulator& batch() const { return batch_; }

 private:
  void process_block(std::uint64_t block_start, std::size_t len);
  void decode_ready(bool flush);
  void decode_span(const PacketSpan& span);

  StreamConfig cfg_;
  core::BatchDemodulator batch_;      // decode engine + warm workspace
  core::ReceiverChain scan_chain_;    // vanilla-mode scan front end
  core::PreambleDetector scan_detector_;
  core::DemodWorkspace scan_ws_;      // per-block envelope workspace
  PacketScanner scanner_;

  RfRing rf_;
  std::vector<PacketSpan> pending_;   // confirmed, waiting for frame end
  std::size_t pending_head_ = 0;
  std::vector<DecodedPacket> packets_;
  std::vector<std::uint32_t> symbols_;

  std::uint64_t received_ = 0;
  std::uint64_t next_block_start_ = 0;
  std::uint64_t packet_counter_ = 0;
  std::size_t truncated_ = 0;
  std::size_t block_ = 0;
  std::size_t frame_len_ = 0;
  std::size_t preamble_len_ = 0;
};

}  // namespace saiyan::stream
