// Streaming continuous-capture demodulation.
//
// core::BatchDemodulator (PR 3) decodes one pre-framed packet at a
// time; a gateway workload is a long capture with many packets from
// many tags at unknown offsets, idle gaps, and partial packets at
// chunk boundaries. StreamingDemodulator closes that gap: it accepts
// arbitrary-sized sample chunks, frames packets with an incremental
// preamble scanner, and decodes each framed span through a warm
// BatchDemodulator — yielding decoded packets with absolute
// sample-offset timestamps.
//
// Structure per push:
//
//   chunk -> RfRing -----------------------------(framed span)----+
//              |  fixed-size blocks                               v
//              +-> scan front end (vanilla reference chain)  BatchDemodulator
//                    -> PacketScanner -> confirmed PacketSpans -> DecodedPacket
//
// Design invariants:
//
//   * Chunk-size invariance. All internal work is keyed to absolute
//     sample positions: the capture is processed in fixed-size blocks
//     (envelope + scan), and frames decode at the first block boundary
//     after their last sample arrives. Pushing the capture one sample
//     at a time or in one call yields bit-identical packets.
//   * Batch equivalence. A decoded packet is produced by
//     BatchDemodulator::decode_aligned over the framed RF span with an
//     Rng seeded from dsp::derive_stream_seed(cfg.seed, packet_index),
//     so streaming decode is bit-identical to batch decode of the
//     individually framed packets.
//   * Zero allocation per chunk once warm. Rings, scan workspace,
//     correlator workspaces and the decode workspace all reach a
//     steady-state size; callers that drain packets between pushes
//     keep the result buffers from growing.
//
// Collision resolution (cfg.sic.depth > 0): decodes read from a
// second, *residual* ring that starts as a copy of the capture. After
// a frame at cancellation depth d < depth decodes, its reconstructed
// waveform is least-squares-subtracted from the residual ring
// (sic::CollisionResolver::cancel) and its span re-scanned
// (CollisionResolver::rescan): a weaker preamble that was buried under
// the frame — invisible to the mixed-stream scanner, whose Pearson
// score it cannot clear there — now stands clear on the residual, gets
// framed at depth d+1 and decodes like any other packet, from a span
// the stronger frame has already been removed from. Chains iterate up
// to cfg.sic.depth. Subtraction only ever touches a decoded frame's
// own span, and per-packet stream seeds are consumed in decode order,
// so a capture without overlaps decodes bit-identically with SIC on or
// off; with depth == 0 the machinery is bypassed entirely (the pre-SIC
// decode path, bit for bit).
//
// The scan front end always runs the *vanilla* reference chain
// (SAW -> LNA gain -> envelope detector, no CFS, no receiver noise):
// detection needs only timing, the vanilla envelope is cheaper and —
// unlike the CFS mixer, whose clock phase would reset at every block
// boundary — blockwise-stable. Channel noise recorded in the capture
// still limits detection, as it should.
//
// Instances are not thread-safe; shard a capture across workers by
// giving each its own StreamingDemodulator.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/batch_demod.hpp"
#include "obs/link_telemetry.hpp"
#include "obs/stage_metrics.hpp"
#include "sic/collision_resolver.hpp"
#include "stream/ingest_stats.hpp"
#include "stream/packet_scanner.hpp"
#include "stream/sample_ring.hpp"

namespace saiyan::stream {

struct StreamConfig {
  core::SaiyanConfig saiyan;
  std::size_t payload_symbols = 32;  ///< frame length is known a priori
  std::uint64_t seed = 1;            ///< per-packet decode stream root
  double min_score = 0.6;            ///< scanner confirmation threshold
  /// Scan block size in samples (0 = eight symbols). Blocks tile the
  /// absolute stream, so this also bounds detection latency.
  std::size_t block_samples = 0;
  /// Successive-interference-cancellation policy for overlapping
  /// frames (depth 0 = off; see sic/collision_resolver.hpp). The
  /// shed_queue / max_rescan_queue fields are the demodulator's
  /// overload policy for the rescan backlog.
  sic::SicConfig sic;
  /// Derive per-packet decode seeds from the frame's absolute sample
  /// offset instead of its decode index. Decode results then do not
  /// depend on how many earlier frames were lost to impairments —
  /// which is what lets a faulted replay be compared bit for bit
  /// against a clean run downstream of a recovered gap. Off by
  /// default: the index-keyed scheme is what batch equivalence pins.
  bool seed_by_offset = false;
  /// Per-stage latency histograms to record into (not owned; may be
  /// null = no stage timing). The gateway points every worker at one
  /// shared obs::StageMetrics; recording is wait-free, so sharing is
  /// safe. Timing never changes decode behaviour — output is
  /// bit-identical with or without it.
  obs::StageMetrics* stage_metrics = nullptr;
  /// Link-telemetry sink (not owned; may be null = no RF diagnostics).
  /// When set, each decoded packet carries SNR/CFO/timing/margin
  /// diagnostics and idle blocks feed the sink's noise-floor tracker.
  /// Purely observational: decode output is bit-identical with the
  /// sink attached or not. The gateway points every worker at one
  /// shared obs::LinkTelemetry.
  obs::LinkTelemetry* link_telemetry = nullptr;
  /// Operator-assigned channel index stamped on this stream's link
  /// diagnostics (a wideband channelizer front end would assign one
  /// per sub-band; a single-channel gateway leaves it 0).
  std::uint32_t channel = 0;
  /// Cooperative cancellation token (not owned; may be null). push()
  /// polls it once per internal block iteration: when it reads true,
  /// the push stops early, cancelled() latches, and the caller is
  /// expected to abandon the job (a gateway watchdog unsticking a
  /// wedged worker). reset() clears the latch, not the token.
  const std::atomic<bool>* cancel = nullptr;
};

/// One decoded packet. Symbols live in the demodulator's flat store —
/// see StreamingDemodulator::symbols().
struct DecodedPacket {
  std::uint64_t packet_start = 0;   ///< absolute first preamble sample
  std::uint64_t payload_start = 0;  ///< absolute first payload sample
  double score = 0.0;               ///< preamble match quality
  std::uint32_t first_symbol = 0;   ///< index into the symbol store
  std::uint32_t n_symbols = 0;
  /// This frame overlapped another decoded frame (set on the weaker
  /// frame always; on the stronger one only while it is still
  /// undrained when the overlap is discovered).
  bool collided = false;
  /// Decoded from a residual a stronger frame was cancelled out of.
  bool sic_assisted = false;
  /// SIC cancellation depth the frame decoded at (0 = mixed stream).
  std::uint32_t sic_depth = 0;
  // RF diagnostics, computed only when cfg.link_telemetry is set
  // (all 0.0 otherwise). Never consumed by decode.
  double snr_db = 0.0;          ///< frame power over tracked noise floor
  double cfo_hz = 0.0;          ///< preamble carrier-frequency offset
  double timing_offset = 0.0;   ///< fractional-sample peak offset [-1, 1]
  double corr_margin = 0.0;     ///< preamble score minus min_score
  double noise_floor_dbm = 0.0; ///< floor estimate at decode time
};

class StreamingDemodulator {
 public:
  explicit StreamingDemodulator(const StreamConfig& cfg);

  // The scanner and detector members hold references into sibling
  // members; copying or moving would leave them dangling. Shard a
  // capture across workers by constructing one instance per worker
  // (emplace via pointers/optional in containers).
  StreamingDemodulator(const StreamingDemodulator&) = delete;
  StreamingDemodulator& operator=(const StreamingDemodulator&) = delete;

  /// Feed the next capture chunk (any size, including one sample).
  /// Returns the number of packets completed by this chunk.
  std::size_t push(std::span<const dsp::Complex> chunk);

  /// End of capture: scan the partial tail block, flush the scanner,
  /// and decode every pending frame that is fully present (frames cut
  /// off by the capture end are counted as truncated, not decoded).
  /// Returns the number of packets completed by the flush.
  std::size_t finish();

  /// Report an upstream discontinuity of ~`lost_samples` (dropped IQ
  /// chunks, a trace resync skip, a clock glitch). Frames whose spans
  /// are already complete decode first; pending frames straddling the
  /// gap are abandoned (counted in IngestStats::spans_dropped); the
  /// scanner's unconfirmed candidate is invalidated; then the gap is
  /// zero-filled so the absolute sample timeline stays aligned with
  /// upstream ground truth — frames wholly after the gap decode
  /// exactly as they would in a clean run. Not the hot path: the fill
  /// buffer allocates on first use.
  void note_gap(std::uint64_t lost_samples);

  /// Restart on a fresh capture, keeping warm buffers (packet counter,
  /// rings, scanner state, collision and ingest counters are cleared;
  /// decoded packets are kept until clear_packets()).
  void reset();

  /// Packets decoded since construction / the last clear_packets().
  /// Ordered by decode completion, which is packet_start order except
  /// that a SIC-revealed frame can trail a later non-overlapping one.
  std::span<const DecodedPacket> packets() const { return packets_; }

  /// Decoded symbols of one packet.
  std::span<const std::uint32_t> symbols(const DecodedPacket& p) const {
    return std::span<const std::uint32_t>(symbols_).subspan(p.first_symbol,
                                                            p.n_symbols);
  }

  /// Drop delivered packets (keeps capacity — the steady-state caller
  /// drains between pushes and never regrows the result buffers).
  void clear_packets() {
    packets_.clear();
    symbols_.clear();
  }

  /// The cfg.cancel token fired during a push (latched until reset()).
  /// Internal state may hold a partially ingested chunk — the instance
  /// must be reset() (or rebuilt) before the next job.
  bool cancelled() const { return cancelled_; }

  /// Gateway degradation ladder (0 = healthy .. 3 = drop spans; see
  /// gateway/degradation.hpp). Level >= 1 caps the SIC chain depth at
  /// one cancellation; level >= 2 sheds all cancel/rescan work
  /// (sic_shed / rescans_dropped); level >= 3 additionally discards
  /// completed spans undecoded (spans_shed). Takes effect at the next
  /// block boundary; cleared by reset().
  void set_degradation(std::uint8_t level) { degradation_ = level; }
  std::uint8_t degradation() const { return degradation_; }

  std::uint64_t samples_consumed() const { return received_; }
  std::size_t truncated_packets() const { return truncated_; }
  std::size_t frame_samples() const { return frame_len_; }
  std::size_t preamble_samples() const { return preamble_len_; }
  std::size_t block_samples() const { return block_; }
  /// Collisions discovered: rescans of a cancelled span that revealed
  /// a buried preamble.
  std::size_t collision_groups() const { return collision_groups_; }
  /// Frames decoded from a residual after ≥1 cancellation pass.
  std::size_t collisions_resolved() const { return collisions_resolved_; }
  /// Frames whose waveform was reconstructed and subtracted.
  std::size_t frames_cancelled() const { return frames_cancelled_; }
  /// SIC rescan regions queued but not yet processed — the degradation
  /// ladder's backlog signal.
  std::size_t rescan_backlog() const { return rescans_.size() - rescan_head_; }
  /// Stream-side ingest health: gaps recovered, spans dropped, SIC
  /// work shed under backlog pressure.
  const IngestStats& ingest() const { return ingest_; }
  const StreamConfig& config() const { return cfg_; }
  const core::BatchDemodulator& batch() const { return batch_; }

 private:
  /// A cancelled span queued for re-detection once the residual ring
  /// holds [start, start + len) and the revealing frame's cancellation
  /// is in (ready_at ≤ received_).
  struct RescanRegion {
    std::uint64_t start = 0;
    std::uint64_t ready_at = 0;
    std::size_t len = 0;
    std::uint32_t depth = 0;  ///< depth of spans it may reveal
  };

  void process_block(std::uint64_t block_start, std::size_t len);
  void decode_ready(bool flush);
  void decode_span(const PacketSpan& span);
  void fill_diag(const PacketSpan& span, std::span<const dsp::Complex> frame,
                 DecodedPacket& p) const;
  void cancel_frame(const PacketSpan& span);
  bool process_rescan(const RescanRegion& region);
  void queue_rescan(const RescanRegion& region);
  void remember_start(std::uint64_t packet_start);
  std::size_t effective_sic_depth() const;
  void insert_span(const PacketSpan& span);
  bool near_known_span(std::uint64_t packet_start) const;
  void restore_pending_order(std::size_t appended_from);

  StreamConfig cfg_;
  core::BatchDemodulator batch_;      // decode engine + warm workspace
  core::ReceiverChain scan_chain_;    // vanilla-mode scan front end
  core::PreambleDetector scan_detector_;
  core::DemodWorkspace scan_ws_;      // per-block envelope workspace
  PacketScanner scanner_;
  std::optional<sic::CollisionResolver> sic_;  // set when cfg.sic.depth > 0

  RfRing rf_;                         // raw capture (scan + plain decode)
  RfRing residual_;                   // SIC: capture minus cancelled frames
  std::vector<PacketSpan> pending_;   // confirmed, waiting for frame end
  std::size_t pending_head_ = 0;
  std::vector<RescanRegion> rescans_;
  std::size_t rescan_head_ = 0;
  std::vector<DecodedPacket> packets_;
  std::vector<std::uint32_t> symbols_;
  dsp::Signal cancel_scratch_;        // residual span copy for cancel()
  dsp::Signal gap_fill_;              // zero block for note_gap()
  std::array<std::uint64_t, 8> recent_starts_{};  // decoded-frame dedupe
  std::size_t recent_count_ = 0;

  bool cancelled_ = false;
  std::uint8_t degradation_ = 0;
  // Telemetry only: end of the furthest frame decoded so far — blocks
  // at or before it are never treated as idle for noise sampling.
  std::uint64_t last_frame_end_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t next_block_start_ = 0;
  std::uint64_t packet_counter_ = 0;
  std::size_t truncated_ = 0;
  std::size_t block_ = 0;
  std::size_t frame_len_ = 0;
  std::size_t preamble_len_ = 0;
  std::size_t collision_groups_ = 0;
  std::size_t collisions_resolved_ = 0;
  std::size_t frames_cancelled_ = 0;
  IngestStats ingest_;
};

}  // namespace saiyan::stream
