// Versioned binary gateway-trace format (record / replay).
//
// A trace is a complex-baseband capture plus the context needed to
// replay it deterministically: the LoRa PHY parameters and receiver
// mode it was recorded under, the expected payload length, and
// optional ground-truth markers (per transmitted packet: absolute
// sample offset, tag id, payload symbols) so a replay can score
// itself. Samples are stored as CRC-guarded chunks, so a truncated or
// corrupted capture file is rejected cleanly instead of being decoded
// into garbage.
//
// Layout (little-endian, versions 1 and 2):
//
//   magic "SAIYTRC1" | u32 version | u32 mode
//   double sample_rate_hz | u32 sf | double bandwidth_hz | u32 K
//   u32 preamble_symbols | double sync_symbols | u32 fec
//   u32 payload_symbols | u64 total_samples | u64 n_markers
//   markers: { u64 sample_offset, u32 tag_id, u32 n, u32 symbols[n] }
//   chunks:  { u32 n_samples, u16 crc16, u16 reserved,
//              iq[2*n_samples] } ... until EOF
//
// Version 1 stores iq as float64 pairs and round-trips bit-exactly.
// Version 2 (TraceMeta::float32_samples) stores float32 pairs — half
// the bytes, which is what a multi-gateway recorder actually ships —
// so a replay reproduces the capture only to float precision and
// decode equivalence becomes tolerance-based rather than bit-exact.
//
// `total_samples` is patched by TraceWriter::close(); the chunk CRC is
// lora::crc16 over the raw (encoded) sample bytes. Chunk boundaries
// carry no semantic meaning — they are whatever the recorder pushed —
// and the streaming demodulator's chunk-size invariance makes replay
// results independent of them.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "dsp/types.hpp"

namespace saiyan::stream {

/// Ground truth for one transmitted packet in the capture.
struct TraceMarker {
  std::uint64_t sample_offset = 0;  ///< first preamble sample
  std::uint32_t tag_id = 0;
  std::vector<std::uint32_t> symbols;  ///< transmitted payload symbols
};

struct TraceMeta {
  lora::PhyParams phy;
  core::Mode mode = core::Mode::kSuper;
  std::size_t payload_symbols = 32;
  std::uint64_t total_samples = 0;  ///< filled on close / read
  /// Version 2 sample encoding: float32 IQ pairs (half the bytes;
  /// replay is tolerance-equivalent instead of bit-exact). Set before
  /// writing; filled from the header version when reading.
  bool float32_samples = false;
};

class TraceWriter {
 public:
  /// Creates/truncates `path` and writes the header + markers.
  /// Throws std::runtime_error on I/O failure.
  TraceWriter(const std::string& path, const TraceMeta& meta,
              const std::vector<TraceMarker>& markers = {});
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Append one CRC-guarded sample chunk.
  void write_chunk(std::span<const dsp::Complex> samples);

  /// Patch total_samples into the header and flush. Idempotent;
  /// throws on I/O failure (the destructor closes silently instead).
  void close();

  std::uint64_t samples_written() const { return total_; }

 private:
  std::ofstream out_;
  std::streampos total_samples_pos_;
  std::uint64_t total_ = 0;
  bool closed_ = false;
  bool float32_ = false;           // version 2 sample encoding
  std::vector<float> f32_scratch_;  // reusable chunk conversion buffer
};

enum class ChunkStatus {
  kOk,
  kEof,
  kCorrupt,  ///< CRC mismatch, truncation, or an absurd chunk header
};

class TraceReader {
 public:
  /// Opens and validates the header + markers; throws
  /// std::runtime_error on a missing file or malformed header.
  explicit TraceReader(const std::string& path);

  const TraceMeta& meta() const { return meta_; }
  const std::vector<TraceMarker>& markers() const { return markers_; }

  /// Read the next chunk into `out` (resized). After kCorrupt the
  /// reader stays in a failed state and keeps returning kCorrupt.
  ChunkStatus next_chunk(dsp::Signal& out);

 private:
  std::ifstream in_;
  TraceMeta meta_;
  std::vector<TraceMarker> markers_;
  bool failed_ = false;
  std::uint64_t samples_read_ = 0;  // cross-checked against the header
  std::vector<std::uint8_t> chunk_bytes_;  // reusable CRC scratch
};

}  // namespace saiyan::stream
