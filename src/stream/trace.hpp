// Versioned binary gateway-trace format (record / replay).
//
// A trace is a complex-baseband capture plus the context needed to
// replay it deterministically: the LoRa PHY parameters and receiver
// mode it was recorded under, the expected payload length, and
// optional ground-truth markers (per transmitted packet: absolute
// sample offset, tag id, payload symbols) so a replay can score
// itself. Samples are stored as CRC-guarded chunks, so a truncated or
// corrupted capture file is rejected cleanly instead of being decoded
// into garbage.
//
// Layout (little-endian, versions 1 and 2):
//
//   magic "SAIYTRC1" | u32 version | u32 mode
//   double sample_rate_hz | u32 sf | double bandwidth_hz | u32 K
//   u32 preamble_symbols | double sync_symbols | u32 fec
//   u32 payload_symbols | u64 total_samples | u64 n_markers
//   markers: { u64 sample_offset, u32 tag_id, u32 n, u32 symbols[n] }
//   chunks:  { u32 n_samples, u16 crc16, u16 reserved,
//              iq[2*n_samples] } ... until EOF
//
// Version 1 stores iq as float64 pairs and round-trips bit-exactly.
// Version 2 (TraceMeta::float32_samples) stores float32 pairs — half
// the bytes, which is what a multi-gateway recorder actually ships —
// so a replay reproduces the capture only to float precision and
// decode equivalence becomes tolerance-based rather than bit-exact.
//
// `total_samples` is patched by TraceWriter::close(); the chunk CRC is
// lora::crc16 over the raw (encoded) sample bytes. Chunk boundaries
// carry no semantic meaning — they are whatever the recorder pushed —
// and the streaming demodulator's chunk-size invariance makes replay
// results independent of them.
//
// Hostile-input posture: every size field read from the file is
// bounded both by a format sanity cap and by the actual file size
// before anything is allocated, so a corrupted or adversarial length
// can never translate into an absurd allocation. The header and
// marker table are strict (malformed -> throw); the chunk stream has
// two modes:
//
//   * strict (default): the first corrupt chunk wedges the reader,
//     exactly the pre-robustness contract;
//   * recover (TraceReader(..., /*recover=*/true)): a corrupt chunk
//     starts a skip-and-resync scan — the reader slides forward byte
//     by byte until it finds the next complete, CRC-valid chunk
//     record, delivers it with ChunkStatus::kResync, and estimates the
//     samples lost in the skipped bytes (last_gap_samples()) so the
//     consumer can re-align its absolute sample clock. Every rejection
//     is classified into an IngestError and counted in stats().
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "core/result.hpp"
#include "dsp/types.hpp"
#include "stream/ingest_stats.hpp"

namespace saiyan::stream {

/// Format sanity cap on a single chunk's sample count (4M complex
/// samples = 64 MiB of float64 IQ): a corrupted length field must not
/// translate into an absurd allocation. Public so config validation
/// (gateway::GatewayConfig) can enforce the same bound at the API
/// boundary the writer and reader enforce on the wire.
inline constexpr std::uint32_t kMaxTraceChunkSamples = 1u << 22;

/// Ground truth for one transmitted packet in the capture.
struct TraceMarker {
  std::uint64_t sample_offset = 0;  ///< first preamble sample
  std::uint32_t tag_id = 0;
  std::vector<std::uint32_t> symbols;  ///< transmitted payload symbols
};

struct TraceMeta {
  lora::PhyParams phy;
  core::Mode mode = core::Mode::kSuper;
  std::size_t payload_symbols = 32;
  std::uint64_t total_samples = 0;  ///< filled on close / read
  /// Version 2 sample encoding: float32 IQ pairs (half the bytes;
  /// replay is tolerance-equivalent instead of bit-exact). Set before
  /// writing; filled from the header version when reading.
  bool float32_samples = false;
};

class TraceWriter {
 public:
  /// Creates/truncates `path` and writes the header + markers.
  /// Throws std::runtime_error on I/O failure.
  TraceWriter(const std::string& path, const TraceMeta& meta,
              const std::vector<TraceMarker>& markers = {});
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Append one CRC-guarded sample chunk.
  void write_chunk(std::span<const dsp::Complex> samples);

  /// Push buffered bytes to the OS (durability policies that fsync per
  /// chunk need the stream flushed first). Returns false on I/O
  /// failure with the description sticky in last_error(); a no-op
  /// after close.
  bool flush() noexcept;

  /// Patch total_samples into the header and flush. Idempotent;
  /// throws on I/O failure (the destructor closes via try_close()
  /// instead, recording any failure in last_error()).
  void close();

  /// Result-returning close — the unified public-boundary convention.
  /// Idempotent: the first call performs the flush+close, every later
  /// call reports the first call's outcome; an earlier write_chunk
  /// failure stays sticky in the Error (and in last_error()) instead
  /// of being overwritten by the close path.
  saiyan::Result<Unit> finish();

  /// Nothrow close for destructor paths. Returns false on I/O failure,
  /// with the description recorded in last_error(). Same idempotence
  /// and stickiness as finish(); prefer finish() at call sites — this
  /// bool form survives one release as a thin alias.
  bool try_close() noexcept;

  /// Description of the *first* I/O failure ("" when every write and
  /// the close succeeded) — sticky across write_chunk, flush and
  /// close. A caller that lets the destructor close cannot observe a
  /// flush failure there — call finish()/close() explicitly to detect
  /// a truncated write.
  const std::string& last_error() const { return last_error_; }

  std::uint64_t samples_written() const { return total_; }

 private:
  std::ofstream out_;
  std::streampos total_samples_pos_;
  std::uint64_t total_ = 0;
  bool closed_ = false;
  bool float32_ = false;           // version 2 sample encoding
  std::vector<float> f32_scratch_;  // reusable chunk conversion buffer
  std::string last_error_;
};

enum class ChunkStatus {
  kOk,
  kEof,
  kCorrupt,  ///< CRC mismatch, truncation, or an absurd chunk header
  kResync,   ///< recovered: `out` holds the next valid chunk after a
             ///< skipped corrupt region (see last_gap_samples())
};

class TraceReader {
 public:
  /// Opens and validates the header + markers; throws
  /// std::runtime_error on a missing file or malformed header.
  /// `recover` selects the skip-and-resync chunk mode.
  explicit TraceReader(const std::string& path, bool recover = false);

  /// Result-returning open — the unified public-boundary convention:
  /// a missing file or malformed header comes back as an Error whose
  /// `ingest` field classifies the failure (kBadMagic / kBadVersion /
  /// kBadHeader / kBadMarkerTable) instead of an exception.
  static saiyan::Result<TraceReader> open(const std::string& path,
                                          bool recover = false);

  /// Parse a trace held in memory (fuzz harnesses, byte-level tests).
  /// Same contract as the file constructor.
  static TraceReader from_bytes(std::string_view bytes, bool recover = false);

  /// Result-returning from_bytes, same classification as open().
  static saiyan::Result<TraceReader> try_from_bytes(std::string_view bytes,
                                                    bool recover = false);

  const TraceMeta& meta() const { return meta_; }
  const std::vector<TraceMarker>& markers() const { return markers_; }

  /// Read the next chunk into `out` (resized).
  ///
  /// Strict mode: after kCorrupt the reader stays in a failed state
  /// and keeps returning kCorrupt. Recover mode never returns
  /// kCorrupt: a corrupt chunk is skipped and the next valid one (if
  /// any) is delivered as kResync; when no valid chunk remains the
  /// stream ends with kEof. Every rejection is counted in stats().
  ChunkStatus next_chunk(dsp::Signal& out);

  /// Ingest health counters (chunk outcomes, resyncs, error classes).
  const IngestStats& stats() const { return stats_; }

  /// Estimated samples lost in the most recent resync skip (valid
  /// after kResync, and after a recover-mode kEof that discarded a
  /// corrupt tail). The estimate is exact when the skipped region was
  /// a single payload-corrupted chunk whose declared length survived.
  std::uint64_t last_gap_samples() const { return last_gap_samples_; }

  std::uint64_t samples_read() const { return samples_read_; }

 private:
  struct Unparsed {};  // tag: construct without parsing the header
  TraceReader(Unparsed, std::unique_ptr<std::istream> in, std::uint64_t size,
              bool recover);
  TraceReader(std::unique_ptr<std::istream> in, std::uint64_t size,
              bool recover, const std::string& name);
  /// Header + marker-table parse; empty on success, else the
  /// classified error (what the throwing constructors throw and the
  /// Result-returning entry points return).
  std::optional<saiyan::Error> parse_header(const std::string& name);

  bool read_exact(void* dst, std::size_t n);
  template <typename T>
  bool get(T& v) {
    return read_exact(&v, sizeof(T));
  }
  std::size_t sample_bytes() const;
  void decode_samples(dsp::Signal& out, std::uint32_t n_samples) const;
  ChunkStatus fail_chunk(IngestError err, std::uint64_t chunk_start,
                         std::uint32_t declared_n, dsp::Signal& out);
  ChunkStatus resync(std::uint64_t chunk_start, std::uint32_t declared_n,
                     dsp::Signal& out);
  ChunkStatus end_of_stream();

  std::unique_ptr<std::istream> in_;
  std::uint64_t size_ = 0;  ///< total stream length in bytes
  std::uint64_t pos_ = 0;   ///< current read offset
  bool recover_ = false;
  TraceMeta meta_;
  std::vector<TraceMarker> markers_;
  bool failed_ = false;
  bool eof_done_ = false;  // total_samples cross-check runs once
  std::uint64_t samples_read_ = 0;  // cross-checked against the header
  std::uint64_t last_gap_samples_ = 0;
  IngestStats stats_;
  std::vector<std::uint8_t> chunk_bytes_;  // reusable CRC scratch
  std::vector<std::uint8_t> resync_buf_;   // sliding header-scan window
};

}  // namespace saiyan::stream
