// Fixed-capacity sample ring with absolute stream indexing — the
// carry-over substrate of the streaming (continuous-capture) decode
// path.
//
// A gateway capture arrives as arbitrary-sized chunks; the scanner and
// demodulator consume it as absolute-indexed windows (an envelope
// correlation window, a framed packet span) that routinely straddle
// chunk boundaries and the physical wrap-around point. SampleRing
// keeps the last `capacity` samples addressable by their absolute
// stream index and serves contiguous views: when a requested window is
// physically contiguous it returns a span straight into the buffer,
// otherwise it stitches the two arcs into a reusable scratch buffer.
// After the scratch has grown to its steady-state size, pushes and
// views never touch the allocator.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "dsp/types.hpp"

namespace saiyan::stream {

template <typename T>
class SampleRing {
 public:
  SampleRing() = default;
  explicit SampleRing(std::size_t capacity) { reserve(capacity); }

  /// (Re)allocate to hold the last `capacity` samples. Clears content.
  void reserve(std::size_t capacity) {
    buf_.assign(capacity, T{});
    end_ = 0;
  }

  std::size_t capacity() const { return buf_.size(); }

  /// Total samples ever appended — one past the newest absolute index.
  std::uint64_t end() const { return end_; }

  /// Oldest absolute index still retained.
  std::uint64_t begin() const {
    return end_ > buf_.size() ? end_ - buf_.size() : 0;
  }

  void clear() { end_ = 0; }

  /// Append a chunk (chunk.size() must not exceed capacity — the
  /// streaming demodulator feeds block-bounded slices).
  void append(std::span<const T> chunk) {
    if (chunk.empty()) return;  // also guards the unreserved-ring modulo
    if (chunk.size() > buf_.size()) {
      throw std::invalid_argument("SampleRing::append: chunk exceeds capacity");
    }
    std::size_t pos = static_cast<std::size_t>(end_ % buf_.size());
    const std::size_t first = std::min(chunk.size(), buf_.size() - pos);
    std::memcpy(buf_.data() + pos, chunk.data(), first * sizeof(T));
    if (first < chunk.size()) {
      std::memcpy(buf_.data(), chunk.data() + first,
                  (chunk.size() - first) * sizeof(T));
    }
    end_ += chunk.size();
  }

  /// Overwrite retained range [first, first + data.size()) in place —
  /// the SIC cancellation write-back (subtract a reconstructed frame
  /// from a copy of the span, then store the residual). Throws when
  /// the range is not fully retained.
  void overwrite(std::uint64_t first, std::span<const T> data) {
    if (data.empty()) return;
    if (first < begin() || first + data.size() > end_) {
      throw std::out_of_range("SampleRing::overwrite: range not retained");
    }
    const std::size_t pos = static_cast<std::size_t>(first % buf_.size());
    const std::size_t head = std::min(data.size(), buf_.size() - pos);
    std::memcpy(buf_.data() + pos, data.data(), head * sizeof(T));
    if (head < data.size()) {
      std::memcpy(buf_.data(), data.data() + head,
                  (data.size() - head) * sizeof(T));
    }
  }

  /// Contiguous view of absolute range [first, first + len). Throws
  /// when the range is not fully retained. The returned span is
  /// invalidated by the next append() or view() call.
  std::span<const T> view(std::uint64_t first, std::size_t len) const {
    if (len == 0) return {};
    if (first < begin() || first + len > end_) {
      throw std::out_of_range("SampleRing::view: range not retained");
    }
    const std::size_t pos = static_cast<std::size_t>(first % buf_.size());
    if (pos + len <= buf_.size()) {
      return {buf_.data() + pos, len};
    }
    // Wrapped: stitch the two arcs into the reusable scratch.
    stitch_.resize(len);
    const std::size_t head = buf_.size() - pos;
    std::memcpy(stitch_.data(), buf_.data() + pos, head * sizeof(T));
    std::memcpy(stitch_.data() + head, buf_.data(), (len - head) * sizeof(T));
    return {stitch_.data(), len};
  }

 private:
  std::vector<T> buf_;
  mutable std::vector<T> stitch_;
  std::uint64_t end_ = 0;
};

/// Post-detector (envelope-domain) ring — the scanner's carry-over
/// window across chunk boundaries.
using EnvelopeRing = SampleRing<double>;

/// RF complex-baseband ring — retains enough capture history to frame
/// a packet once its preamble is confirmed.
using RfRing = SampleRing<dsp::Complex>;

}  // namespace saiyan::stream
