// Noise sources: thermal AWGN, white real noise, 1/f flicker noise and
// DC offset — the impairments the envelope detector injects at
// baseband (paper Eq. 4 and §3.1).
#pragma once

#include <span>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace saiyan::dsp {

/// Generate n samples of circularly-symmetric complex Gaussian noise
/// with total power `power_watts` (variance split evenly across I/Q).
Signal complex_awgn(std::size_t n, double power_watts, Rng& rng);

/// Add complex AWGN of the given power to x in place.
void add_awgn(Signal& x, double power_watts, Rng& rng);

/// Generate n samples of real white Gaussian noise with power
/// `power_watts`.
RealSignal real_white_noise(std::size_t n, double power_watts, Rng& rng);

/// Generate n samples of 1/f (flicker) noise with total power
/// `power_watts`, synthesized by summing octave-spaced one-pole
/// filtered white noise (Voss–McCartney style IIR approximation).
RealSignal flicker_noise(std::size_t n, double power_watts, Rng& rng);

/// flicker_noise into a caller-owned buffer, with the white drive
/// batch-drawn into `drive_scratch` — the zero-allocation workspace
/// path. Identical draws and values to flicker_noise().
void flicker_noise_into(std::size_t n, double power_watts, Rng& rng,
                        RealSignal& out, RealSignal& drive_scratch);

/// Thermal noise floor in dBm for a given bandwidth and noise figure:
/// -174 dBm/Hz + 10 log10(BW) + NF.
double thermal_noise_floor_dbm(double bandwidth_hz, double noise_figure_db);

}  // namespace saiyan::dsp
