#include "dsp/simd.hpp"

#include <atomic>
#include <cmath>
#include <cstdint>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define SAIYAN_SIMD_AVX2 1
#endif

namespace saiyan::dsp::simd {

namespace {

std::atomic<Isa> g_isa{Isa::kAuto};

}  // namespace

bool cpu_has_avx2_fma() {
#ifdef SAIYAN_SIMD_AVX2
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
#else
  return false;
#endif
}

void set_isa(Isa isa) { g_isa.store(isa, std::memory_order_relaxed); }

Isa active_isa() {
  const Isa v = g_isa.load(std::memory_order_relaxed);
  if (v == Isa::kScalar) return Isa::kScalar;
  return cpu_has_avx2_fma() ? Isa::kAvx2 : Isa::kScalar;
}

namespace {

bool use_avx2() { return active_isa() == Isa::kAvx2; }

// ------------------------------------------------------------- scalar
// Reference implementations. Element-wise kernels are written in the
// exact association the AVX2 variants reproduce lane-wise; reductions
// use the fixed 4-accumulator blocking described in the header.

void square_law_scalar(const Complex* x, std::size_t n, double k, double* y) {
  const double* d = reinterpret_cast<const double*>(x);
  for (std::size_t i = 0; i < n; ++i) {
    const double re = d[2 * i];
    const double im = d[2 * i + 1];
    y[i] = k * (re * re + im * im);
  }
}

void square_law_mixed_scalar(const Complex* x, const double* gain,
                             std::size_t n, double k, double* y) {
  const double* d = reinterpret_cast<const double*>(x);
  for (std::size_t i = 0; i < n; ++i) {
    const double re = d[2 * i];
    const double im = d[2 * i + 1];
    const double g2 = gain[i] * gain[i];
    y[i] = k * g2 * (re * re + im * im);
  }
}

void scale_scalar(const double* x, std::size_t n, double g, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = g * x[i];
}

void multiply_scalar(const double* x, const double* y, std::size_t n,
                     double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] * y[i];
}

void complex_scale_table_scalar(Complex* x, const double* g, std::size_t n) {
  double* d = reinterpret_cast<double*>(x);
  for (std::size_t i = 0; i < n; ++i) {
    d[2 * i] *= g[i];
    d[2 * i + 1] *= g[i];
  }
}

double sum_scalar(const double* x, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i];
    a1 += x[i + 1];
    a2 += x[i + 2];
    a3 += x[i + 3];
  }
  double s = ((a0 + a1) + a2) + a3;
  for (; i < n; ++i) s += x[i];
  return s;
}

Complex cdot_scalar(const Complex* xc, const Complex* yc, std::size_t n) {
  const double* x = reinterpret_cast<const double*>(xc);
  const double* y = reinterpret_cast<const double*>(yc);
  double r0 = 0.0, r1 = 0.0, r2 = 0.0, r3 = 0.0;
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    r0 += x[2 * i] * y[2 * i] + x[2 * i + 1] * y[2 * i + 1];
    r1 += x[2 * i + 2] * y[2 * i + 2] + x[2 * i + 3] * y[2 * i + 3];
    r2 += x[2 * i + 4] * y[2 * i + 4] + x[2 * i + 5] * y[2 * i + 5];
    r3 += x[2 * i + 6] * y[2 * i + 6] + x[2 * i + 7] * y[2 * i + 7];
    m0 += x[2 * i + 1] * y[2 * i] - x[2 * i] * y[2 * i + 1];
    m1 += x[2 * i + 3] * y[2 * i + 2] - x[2 * i + 2] * y[2 * i + 3];
    m2 += x[2 * i + 5] * y[2 * i + 4] - x[2 * i + 4] * y[2 * i + 5];
    m3 += x[2 * i + 7] * y[2 * i + 6] - x[2 * i + 6] * y[2 * i + 7];
  }
  double re = ((r0 + r1) + r2) + r3;
  double im = ((m0 + m1) + m2) + m3;
  for (; i < n; ++i) {
    re += x[2 * i] * y[2 * i] + x[2 * i + 1] * y[2 * i + 1];
    im += x[2 * i + 1] * y[2 * i] - x[2 * i] * y[2 * i + 1];
  }
  return {re, im};
}

void complex_scaled_subtract_scalar(const Complex* xc, std::size_t n,
                                    Complex a, Complex b, Complex* yc) {
  const double* x = reinterpret_cast<const double*>(xc);
  double* y = reinterpret_cast<double*>(yc);
  const double ar = a.real(), ai = a.imag();
  const double br = b.real(), bi = b.imag();
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = x[2 * i];
    const double xi = x[2 * i + 1];
    const double pr = ar * xr - ai * xi;
    const double pi = ar * xi + ai * xr;
    y[2 * i] = y[2 * i] - (pr + br);
    y[2 * i + 1] = y[2 * i + 1] - (pi + bi);
  }
}

double dot_scalar(const double* x, const double* y, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  double s = ((a0 + a1) + a2) + a3;
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

double sum_squares_scalar(const double* x, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += x[i] * x[i];
    a1 += x[i + 1] * x[i + 1];
    a2 += x[i + 2] * x[i + 2];
    a3 += x[i + 3] * x[i + 3];
  }
  double s = ((a0 + a1) + a2) + a3;
  for (; i < n; ++i) s += x[i] * x[i];
  return s;
}

#ifdef SAIYAN_SIMD_AVX2

// --------------------------------------------------------------- avx2
// Each variant uses plain mul/add intrinsics (never fmadd) in the
// scalar expression's association, so the results are bit-identical to
// the reference — FMA stays reserved for the FFT butterflies where the
// plan's twiddle layout already defines the rounding.

__attribute__((target("avx2"))) void square_law_avx2(const Complex* x,
                                                     std::size_t n, double k,
                                                     double* y) {
  const double* d = reinterpret_cast<const double*>(x);
  const __m256d kv = _mm256_set1_pd(k);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(d + 2 * i);      // re0 im0 re1 im1
    const __m256d b = _mm256_loadu_pd(d + 2 * i + 4);  // re2 im2 re3 im3
    const __m256d sa = _mm256_mul_pd(a, a);
    const __m256d sb = _mm256_mul_pd(b, b);
    // hadd yields [s0 s2 s1 s3]; permute restores element order.
    const __m256d h = _mm256_hadd_pd(sa, sb);
    const __m256d s = _mm256_permute4x64_pd(h, 0xD8);
    _mm256_storeu_pd(y + i, _mm256_mul_pd(kv, s));
  }
  for (; i < n; ++i) {
    const double re = d[2 * i];
    const double im = d[2 * i + 1];
    y[i] = k * (re * re + im * im);
  }
}

__attribute__((target("avx2"))) void square_law_mixed_avx2(
    const Complex* x, const double* gain, std::size_t n, double k, double* y) {
  const double* d = reinterpret_cast<const double*>(x);
  const __m256d kv = _mm256_set1_pd(k);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(d + 2 * i);
    const __m256d b = _mm256_loadu_pd(d + 2 * i + 4);
    const __m256d sa = _mm256_mul_pd(a, a);
    const __m256d sb = _mm256_mul_pd(b, b);
    const __m256d h = _mm256_hadd_pd(sa, sb);
    const __m256d s = _mm256_permute4x64_pd(h, 0xD8);
    const __m256d g = _mm256_loadu_pd(gain + i);
    const __m256d g2 = _mm256_mul_pd(g, g);
    const __m256d kg2 = _mm256_mul_pd(kv, g2);
    _mm256_storeu_pd(y + i, _mm256_mul_pd(kg2, s));
  }
  for (; i < n; ++i) {
    const double re = d[2 * i];
    const double im = d[2 * i + 1];
    const double g2 = gain[i] * gain[i];
    y[i] = k * g2 * (re * re + im * im);
  }
}

__attribute__((target("avx2"))) void scale_avx2(const double* x, std::size_t n,
                                                double g, double* out) {
  const __m256d gv = _mm256_set1_pd(g);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(gv, _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) out[i] = g * x[i];
}

__attribute__((target("avx2"))) void multiply_avx2(const double* x,
                                                   const double* y,
                                                   std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(x + i),
                                            _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] * y[i];
}

__attribute__((target("avx2"))) void complex_scale_table_avx2(Complex* x,
                                                              const double* g,
                                                              std::size_t n) {
  double* d = reinterpret_cast<double*>(x);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d gp = _mm256_castpd128_pd256(_mm_loadu_pd(g + i));
    const __m256d gv = _mm256_permute4x64_pd(gp, 0x50);  // g0 g0 g1 g1
    const __m256d v = _mm256_loadu_pd(d + 2 * i);
    _mm256_storeu_pd(d + 2 * i, _mm256_mul_pd(v, gv));
  }
  for (; i < n; ++i) {
    d[2 * i] *= g[i];
    d[2 * i + 1] *= g[i];
  }
}

__attribute__((target("avx2"))) double sum_avx2(const double* x,
                                                std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double s = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (; i < n; ++i) s += x[i];
  return s;
}

__attribute__((target("avx2"))) double dot_avx2(const double* x,
                                                const double* y,
                                                std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double s = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

__attribute__((target("avx2"))) Complex cdot_avx2(const Complex* xc,
                                                  const Complex* yc,
                                                  std::size_t n) {
  const double* x = reinterpret_cast<const double*>(xc);
  const double* y = reinterpret_cast<const double*>(yc);
  __m256d acc_re = _mm256_setzero_pd();
  __m256d acc_im = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(x + 2 * i);      // x0r x0i x1r x1i
    const __m256d b = _mm256_loadu_pd(y + 2 * i);
    const __m256d c = _mm256_loadu_pd(x + 2 * i + 4);  // x2r x2i x3r x3i
    const __m256d d = _mm256_loadu_pd(y + 2 * i + 4);
    // Real part: xr·yr + xi·yi per complex; hadd pairs then restore
    // element order (the square_law trick).
    const __m256d pa = _mm256_mul_pd(a, b);
    const __m256d pc = _mm256_mul_pd(c, d);
    const __m256d re4 =
        _mm256_permute4x64_pd(_mm256_hadd_pd(pa, pc), 0xD8);
    // Imag part: xi·yr − xr·yi = hsub of (swapped x)·y pairs.
    const __m256d qa = _mm256_mul_pd(_mm256_permute_pd(a, 0b0101), b);
    const __m256d qc = _mm256_mul_pd(_mm256_permute_pd(c, 0b0101), d);
    const __m256d im4 =
        _mm256_permute4x64_pd(_mm256_hsub_pd(qa, qc), 0xD8);
    acc_re = _mm256_add_pd(acc_re, re4);
    acc_im = _mm256_add_pd(acc_im, im4);
  }
  alignas(32) double lr[4];
  alignas(32) double li[4];
  _mm256_store_pd(lr, acc_re);
  _mm256_store_pd(li, acc_im);
  double re = ((lr[0] + lr[1]) + lr[2]) + lr[3];
  double im = ((li[0] + li[1]) + li[2]) + li[3];
  for (; i < n; ++i) {
    re += x[2 * i] * y[2 * i] + x[2 * i + 1] * y[2 * i + 1];
    im += x[2 * i + 1] * y[2 * i] - x[2 * i] * y[2 * i + 1];
  }
  return {re, im};
}

__attribute__((target("avx2"))) void complex_scaled_subtract_avx2(
    const Complex* xc, std::size_t n, Complex a, Complex b, Complex* yc) {
  const double* x = reinterpret_cast<const double*>(xc);
  double* y = reinterpret_cast<double*>(yc);
  const __m256d ar4 = _mm256_set1_pd(a.real());
  const __m256d ai4 = _mm256_set1_pd(a.imag());
  const __m256d b4 = _mm256_setr_pd(b.real(), b.imag(), b.real(), b.imag());
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d v = _mm256_loadu_pd(x + 2 * i);  // x0r x0i x1r x1i
    const __m256d t1 = _mm256_mul_pd(v, ar4);
    const __m256d t2 = _mm256_mul_pd(_mm256_permute_pd(v, 0b0101), ai4);
    // addsub: even lanes t1−t2 = ar·xr − ai·xi, odd lanes t1+t2 =
    // ar·xi + ai·xr — the scalar association exactly.
    const __m256d p = _mm256_addsub_pd(t1, t2);
    const __m256d s = _mm256_add_pd(p, b4);
    _mm256_storeu_pd(y + 2 * i, _mm256_sub_pd(_mm256_loadu_pd(y + 2 * i), s));
  }
  for (; i < n; ++i) {
    const double xr = x[2 * i];
    const double xi = x[2 * i + 1];
    const double pr = a.real() * xr - a.imag() * xi;
    const double pi = a.real() * xi + a.imag() * xr;
    y[2 * i] = y[2 * i] - (pr + b.real());
    y[2 * i + 1] = y[2 * i + 1] - (pi + b.imag());
  }
}

__attribute__((target("avx2"))) double sum_squares_avx2(const double* x,
                                                        std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double s = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (; i < n; ++i) s += x[i] * x[i];
  return s;
}

#endif  // SAIYAN_SIMD_AVX2

// -------------------------------------------------------- gaussian fill
// Batch ziggurat. The scalar path is literally n repeated
// Rng::gaussian() calls. The AVX2 path draws engine words in blocks of
// four, vectorizes the layer lookup + accept test, and on any
// rejection replays the remaining buffered words through the scalar
// ziggurat (a FIFO over the engine), so the consumed word sequence —
// and therefore every produced value — is identical to the scalar
// path.

using detail::gaussian_from;  // the shared scalar ziggurat (dsp/rng.hpp)

#ifdef SAIYAN_SIMD_AVX2

/// Exact conversion of four sub-2^53 words to doubles (split into a
/// 2^32-weighted high part and a 2^52-biased low part; every step is
/// exact for this range, so the result is bit-identical to cvtsi2sd).
__attribute__((target("avx2"), always_inline)) inline __m256d u53_to_pd(
    __m256i x) {
  const __m256i hi = _mm256_or_si256(
      _mm256_srli_epi64(x, 32),
      _mm256_castpd_si256(_mm256_set1_pd(19342813113834066795298816.)));  // 2^84
  const __m256i lo = _mm256_blend_epi32(
      x, _mm256_castpd_si256(_mm256_set1_pd(0x1p52)), 0xAA);
  const __m256d f = _mm256_sub_pd(
      _mm256_castsi256_pd(hi),
      _mm256_set1_pd(19342813118337666422669312.));  // 2^84 + 2^52
  return _mm256_add_pd(f, _mm256_castsi256_pd(lo));
}

/// Accept test for four buffered engine words. `*values` receives the
/// four candidate gaussians (only the leading `accepted` lanes are
/// valid); returns the length of the leading accepted run (4 = the
/// whole block accepted). Table lookups are scalar loads (the
/// ziggurat tables live in L1; vpgatherqq loses to them on most
/// cores); the convert, multiply and sign flip are vector ops.
__attribute__((target("avx2"), always_inline)) inline int gaussian4_avx2(
    const detail::ZigguratTables& t, const std::uint64_t* u, __m256d* values) {
  const int i0 = static_cast<int>(u[0] & 127u);
  const int i1 = static_cast<int>(u[1] & 127u);
  const int i2 = static_cast<int>(u[2] & 127u);
  const int i3 = static_cast<int>(u[3] & 127u);
  const __m256i uv =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(u));
  const __m256i kv = _mm256_set_epi64x(
      static_cast<long long>(t.k[i3]), static_cast<long long>(t.k[i2]),
      static_cast<long long>(t.k[i1]), static_cast<long long>(t.k[i0]));
  const __m256d wv = _mm256_set_pd(t.w[i3], t.w[i2], t.w[i1], t.w[i0]);
  const __m256i u53 = _mm256_srli_epi64(uv, 11);
  // Both sides are < 2^53, so the signed compare is exact.
  const __m256i lt = _mm256_cmpgt_epi64(kv, u53);
  const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(lt));
  const int accepted =
      mask == 0xF ? 4 : __builtin_ctz(static_cast<unsigned>(~mask & 0x1F));
  const __m256d x = _mm256_mul_pd(u53_to_pd(u53), wv);
  // The sign bit rides word bit 7: shift it to bit 63 and xor.
  const __m256i sgn = _mm256_and_si256(
      _mm256_slli_epi64(uv, 56), _mm256_set1_epi64x(
                                     static_cast<long long>(0x8000000000000000ULL)));
  *values = _mm256_xor_pd(x, _mm256_castsi256_pd(sgn));
  return accepted;
}

// The fused draw + inject kernels share this shape: engine words are
// drawn in blocks of four, the vector accept test handles the ~94%
// all-accept case with a vector update, and any rejected candidate
// (plus buffered words after it) replays through the scalar ziggurat
// via the word FIFO — so the draw stream is exactly the scalar one.

__attribute__((target("avx2"))) void fill_gaussian_avx2(Rng& rng, double* out,
                                                        std::size_t n) {
  const detail::ZigguratTables& t = detail::ZigguratTables::instance();
  std::uint64_t buf[4];
  std::size_t pos = 0, len = 0;
  const auto next = [&]() { return pos < len ? buf[pos++] : rng.engine()(); };
  std::size_t i = 0;
  while (i < n) {
    if (pos == len && n - i >= 4) {
      for (int l = 0; l < 4; ++l) buf[l] = rng.engine()();
      len = 4;
      __m256d g4;
      const int accepted = gaussian4_avx2(t, buf, &g4);
      if (accepted == 4) {
        _mm256_storeu_pd(out + i, g4);
        i += 4;
        pos = len = 0;
        continue;
      }
      alignas(32) double tmp[4];
      _mm256_store_pd(tmp, g4);
      for (int l = 0; l < accepted; ++l) out[i++] = tmp[l];
      pos = static_cast<std::size_t>(accepted);
    }
    out[i++] = gaussian_from(t, next);
  }
}

__attribute__((target("avx2"))) void scale_add_gaussian_avx2(
    const double* x, std::size_t n, double a, double sigma, double* out,
    Rng& rng) {
  const detail::ZigguratTables& t = detail::ZigguratTables::instance();
  const __m256d av = _mm256_set1_pd(a);
  const __m256d sv = _mm256_set1_pd(sigma);
  std::uint64_t buf[4];
  std::size_t pos = 0, len = 0;
  const auto next = [&]() { return pos < len ? buf[pos++] : rng.engine()(); };
  std::size_t i = 0;
  while (i < n) {
    if (pos == len && n - i >= 4) {
      for (int l = 0; l < 4; ++l) buf[l] = rng.engine()();
      len = 4;
      __m256d g4;
      const int accepted = gaussian4_avx2(t, buf, &g4);
      if (accepted == 4) {
        const __m256d u = _mm256_mul_pd(av, _mm256_loadu_pd(x + i));
        _mm256_storeu_pd(out + i, _mm256_add_pd(u, _mm256_mul_pd(sv, g4)));
        i += 4;
        pos = len = 0;
        continue;
      }
      alignas(32) double tmp[4];
      _mm256_store_pd(tmp, g4);
      for (int l = 0; l < accepted; ++l) {
        out[i] = a * x[i] + sigma * tmp[l];
        ++i;
      }
      pos = static_cast<std::size_t>(accepted);
    }
    const double g = gaussian_from(t, next);
    out[i] = a * x[i] + sigma * g;
    ++i;
  }
}

__attribute__((target("avx2"))) void gain_add_gaussian_avx2(
    const double* x, std::size_t n, double g, double sigma, double* out,
    Rng& rng) {
  const detail::ZigguratTables& t = detail::ZigguratTables::instance();
  const __m256d gv = _mm256_set1_pd(g);
  const __m256d sv = _mm256_set1_pd(sigma);
  std::uint64_t buf[4];
  std::size_t pos = 0, len = 0;
  const auto next = [&]() { return pos < len ? buf[pos++] : rng.engine()(); };
  std::size_t i = 0;
  while (i < n) {
    if (pos == len && n - i >= 4) {
      for (int l = 0; l < 4; ++l) buf[l] = rng.engine()();
      len = 4;
      __m256d g4;
      const int accepted = gaussian4_avx2(t, buf, &g4);
      if (accepted == 4) {
        const __m256d u = _mm256_add_pd(_mm256_loadu_pd(x + i),
                                        _mm256_mul_pd(sv, g4));
        _mm256_storeu_pd(out + i, _mm256_mul_pd(gv, u));
        i += 4;
        pos = len = 0;
        continue;
      }
      alignas(32) double tmp[4];
      _mm256_store_pd(tmp, g4);
      for (int l = 0; l < accepted; ++l) {
        out[i] = g * (x[i] + sigma * tmp[l]);
        ++i;
      }
      pos = static_cast<std::size_t>(accepted);
    }
    const double gs = gaussian_from(t, next);
    out[i] = g * (x[i] + sigma * gs);
    ++i;
  }
}

__attribute__((target("avx2"))) void lna_square_law_avx2(
    const Complex* xc, const double* gain, std::size_t n, double g,
    double sigma, double k, double* y, Rng& rng) {
  const detail::ZigguratTables& t = detail::ZigguratTables::instance();
  const double* x = reinterpret_cast<const double*>(xc);
  const __m256d gv = _mm256_set1_pd(g);
  const __m256d sv = _mm256_set1_pd(sigma);
  const __m128d kv = _mm_set1_pd(k);
  std::uint64_t buf[4];
  std::size_t pos = 0, len = 0;
  const auto next = [&]() { return pos < len ? buf[pos++] : rng.engine()(); };
  std::size_t i = 0;  // sample (complex) index
  while (i < n) {
    if (pos == len && n - i >= 2) {
      for (int l = 0; l < 4; ++l) buf[l] = rng.engine()();
      len = 4;
      __m256d g4;
      const int accepted = gaussian4_avx2(t, buf, &g4);
      if (accepted == 4) {
        const __m256d u = _mm256_add_pd(_mm256_loadu_pd(x + 2 * i),
                                        _mm256_mul_pd(sv, g4));
        const __m256d amp = _mm256_mul_pd(gv, u);
        const __m256d sq = _mm256_mul_pd(amp, amp);
        const __m256d h = _mm256_hadd_pd(sq, sq);  // [s0 s0 s1 s1]
        const __m128d s = _mm_unpacklo_pd(_mm256_castpd256_pd128(h),
                                          _mm256_extractf128_pd(h, 1));
        __m128d out;
        if (gain != nullptr) {
          const __m128d gm = _mm_loadu_pd(gain + i);
          const __m128d g2 = _mm_mul_pd(gm, gm);
          out = _mm_mul_pd(_mm_mul_pd(kv, g2), s);
        } else {
          out = _mm_mul_pd(kv, s);
        }
        _mm_storeu_pd(y + i, out);
        i += 2;
        pos = len = 0;
        continue;
      }
      // A rejected candidate: replay the whole block through the
      // scalar ziggurat (identical values — draws are pure functions
      // of the engine words).
      pos = 0;
    }
    const double nr = sigma * gaussian_from(t, next);
    const double ni = sigma * gaussian_from(t, next);
    const double re = g * (x[2 * i] + nr);
    const double im = g * (x[2 * i + 1] + ni);
    if (gain != nullptr) {
      const double g2 = gain[i] * gain[i];
      y[i] = k * g2 * (re * re + im * im);
    } else {
      y[i] = k * (re * re + im * im);
    }
    ++i;
  }
}

__attribute__((target("avx2"))) void add_dc_flicker_gaussian_avx2(
    double* y, const double* flicker, std::size_t n, double dc, double sigma,
    Rng& rng) {
  const detail::ZigguratTables& t = detail::ZigguratTables::instance();
  const __m256d dcv = _mm256_set1_pd(dc);
  const __m256d sv = _mm256_set1_pd(sigma);
  std::uint64_t buf[4];
  std::size_t pos = 0, len = 0;
  const auto next = [&]() { return pos < len ? buf[pos++] : rng.engine()(); };
  std::size_t i = 0;
  while (i < n) {
    if (pos == len && n - i >= 4) {
      for (int l = 0; l < 4; ++l) buf[l] = rng.engine()();
      len = 4;
      __m256d g4;
      const int accepted = gaussian4_avx2(t, buf, &g4);
      if (accepted == 4) {
        const __m256d f = _mm256_add_pd(dcv, _mm256_loadu_pd(flicker + i));
        const __m256d rhs = _mm256_add_pd(f, _mm256_mul_pd(sv, g4));
        _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), rhs));
        i += 4;
        pos = len = 0;
        continue;
      }
      alignas(32) double tmp[4];
      _mm256_store_pd(tmp, g4);
      for (int l = 0; l < accepted; ++l) {
        y[i] += dc + flicker[i] + sigma * tmp[l];
        ++i;
      }
      pos = static_cast<std::size_t>(accepted);
    }
    const double g = gaussian_from(t, next);
    y[i] += dc + flicker[i] + sigma * g;
    ++i;
  }
}

#endif  // SAIYAN_SIMD_AVX2

}  // namespace

void square_law(const Complex* x, std::size_t n, double k, double* y) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return square_law_avx2(x, n, k, y);
#endif
  square_law_scalar(x, n, k, y);
}

void square_law_mixed(const Complex* x, const double* gain, std::size_t n,
                      double k, double* y) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return square_law_mixed_avx2(x, gain, n, k, y);
#endif
  square_law_mixed_scalar(x, gain, n, k, y);
}

void scale(const double* x, std::size_t n, double g, double* out) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return scale_avx2(x, n, g, out);
#endif
  scale_scalar(x, n, g, out);
}

void multiply(const double* x, const double* y, std::size_t n, double* out) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return multiply_avx2(x, y, n, out);
#endif
  multiply_scalar(x, y, n, out);
}

void complex_scale_table(Complex* x, const double* g, std::size_t n) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return complex_scale_table_avx2(x, g, n);
#endif
  complex_scale_table_scalar(x, g, n);
}

double sum(const double* x, std::size_t n) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return sum_avx2(x, n);
#endif
  return sum_scalar(x, n);
}

double sum_squares(const double* x, std::size_t n) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return sum_squares_avx2(x, n);
#endif
  return sum_squares_scalar(x, n);
}

double sum_squares(const Complex* x, std::size_t n) {
  return sum_squares(reinterpret_cast<const double*>(x), 2 * n);
}

void fill_gaussian(Rng& rng, double* out, std::size_t n) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return fill_gaussian_avx2(rng, out, n);
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] = rng.gaussian();
}

void scale_add_gaussian(const double* x, std::size_t n, double a, double sigma,
                        double* out, Rng& rng) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return scale_add_gaussian_avx2(x, n, a, sigma, out, rng);
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] = a * x[i] + sigma * rng.gaussian();
}

void gain_add_gaussian(const double* x, std::size_t n, double g, double sigma,
                       double* out, Rng& rng) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return gain_add_gaussian_avx2(x, n, g, sigma, out, rng);
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const double gs = sigma * rng.gaussian();
    out[i] = g * (x[i] + gs);
  }
}

void add_dc_flicker_gaussian(double* y, const double* flicker, std::size_t n,
                             double dc, double sigma, Rng& rng) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return add_dc_flicker_gaussian_avx2(y, flicker, n, dc, sigma, rng);
#endif
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += dc + flicker[i] + sigma * rng.gaussian();
  }
}

void lna_square_law(const Complex* x, const double* gain, std::size_t n,
                    double g, double sigma, double k, double* y, Rng& rng) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return lna_square_law_avx2(x, gain, n, g, sigma, k, y, rng);
#endif
  const double* d = reinterpret_cast<const double*>(x);
  for (std::size_t i = 0; i < n; ++i) {
    const double nr = sigma * rng.gaussian();
    const double ni = sigma * rng.gaussian();
    const double re = g * (d[2 * i] + nr);
    const double im = g * (d[2 * i + 1] + ni);
    if (gain != nullptr) {
      const double g2 = gain[i] * gain[i];
      y[i] = k * g2 * (re * re + im * im);
    } else {
      y[i] = k * (re * re + im * im);
    }
  }
}

double dot(const double* x, const double* y, std::size_t n) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return dot_avx2(x, y, n);
#endif
  return dot_scalar(x, y, n);
}

Complex cdot(const Complex* x, const Complex* y, std::size_t n) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return cdot_avx2(x, y, n);
#endif
  return cdot_scalar(x, y, n);
}

void complex_scaled_subtract(const Complex* x, std::size_t n, Complex a,
                             Complex b, Complex* y) {
#ifdef SAIYAN_SIMD_AVX2
  if (use_avx2()) return complex_scaled_subtract_avx2(x, n, a, b, y);
#endif
  complex_scaled_subtract_scalar(x, n, a, b, y);
}

}  // namespace saiyan::dsp::simd
