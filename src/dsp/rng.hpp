// Deterministic random number generation.
//
// Every stochastic block (noise sources, MAC slot selection, packet
// payloads) takes an explicit Rng so that experiments are reproducible
// run-to-run; nothing in the library touches global random state.
//
// The engine is xoshiro256++ (Blackman & Vigna) seeded through
// splitmix64, and gaussian draws use a 128-layer ziggurat instead of
// std::normal_distribution — the normal draw is the single hottest
// operation in the waveform simulation (every RF and detector noise
// sample), and engine + ziggurat together cut it from ~18 ns to a few
// ns. Sequences are deterministic per seed, as before.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace saiyan::dsp {

/// xoshiro256++ engine with the standard URBG interface (usable with
/// std::uniform_int_distribution, std::shuffle, ...).
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  explicit Xoshiro256pp(std::uint64_t seed) {
    // splitmix64 state expansion — any seed (including 0) produces a
    // well-mixed nonzero state.
    std::uint64_t x = seed;
    for (std::uint64_t& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

namespace detail {

/// Ziggurat tables for the standard normal (unnormalized density
/// f(x) = exp(-x²/2), 128 layers). Built once, shared by all Rng
/// instances (immutable after construction; magic statics make the
/// initialization thread-safe).
struct ZigguratTables {
  static constexpr int kLayers = 128;
  static constexpr double kR = 3.442619855899;          // base-layer edge
  static constexpr double kV = 9.91256303526217e-3;     // area per layer
  double x[kLayers + 1];
  double y[kLayers + 1];
  double w[kLayers];           ///< x[i] * 2^-53: u53·w[i] = candidate draw
  std::uint64_t k[kLayers];    ///< accept u53 < k[i] ⟺ candidate < x[i+1]

  ZigguratTables() {
    const double f_r = std::exp(-0.5 * kR * kR);
    x[0] = kV / f_r;  // pseudo-width of the base layer (rect + tail)
    x[1] = kR;
    y[0] = 0.0;
    y[1] = f_r;
    for (int i = 2; i <= kLayers; ++i) {
      y[i] = y[i - 1] + kV / x[i - 1];
      x[i] = (i == kLayers) ? 0.0 : std::sqrt(-2.0 * std::log(y[i]));
    }
    for (int i = 0; i < kLayers; ++i) {
      w[i] = x[i] * 0x1.0p-53;
      k[i] = static_cast<std::uint64_t>(x[i + 1] / x[i] * 0x1.0p53);
    }
  }

  static const ZigguratTables& instance() {
    static const ZigguratTables tables;
    return tables;
  }
};

/// Uniform in (0, 1] — safe under log() — from an arbitrary 64-bit
/// word source.
template <typename Next>
inline double uniform_open_from(Next&& next) {
  return static_cast<double>((next() >> 11) + 1) * 0x1.0p-53;
}

/// The scalar ziggurat over an arbitrary 64-bit word source — the
/// single reference implementation. Rng::gaussian() draws through it
/// with the engine directly; the batch kernels (dsp/simd.cpp) draw
/// through it with a word FIFO when replaying rejected candidates, so
/// both consume identical word streams and produce identical values
/// by construction.
template <typename Next>
inline double gaussian_from(const ZigguratTables& t, Next&& next) {
  for (;;) {
    const std::uint64_t u = next();
    const int i = static_cast<int>(u & 127u);
    const bool neg = (u >> 7) & 1u;
    const std::uint64_t u53 = u >> 11;  // top 53 bits: uniform mantissa
    // u53 < 2^53, so converting through int64 is exact and identical
    // to the unsigned conversion — but compiles to a single cvtsi2sd
    // instead of the unsigned-range fixup sequence (~2 ns/draw).
    if (u53 < t.k[i]) {  // fully inside the layer (integer compare)
      const double x =
          static_cast<double>(static_cast<std::int64_t>(u53)) * t.w[i];
      return neg ? -x : x;
    }
    const double x =
        static_cast<double>(static_cast<std::int64_t>(u53)) * t.w[i];
    if (i == 0) {
      // Base layer miss: sample the tail x > r (Marsaglia).
      double xt, yt;
      do {
        xt = -std::log(uniform_open_from(next)) / ZigguratTables::kR;
        yt = -std::log(uniform_open_from(next));
      } while (yt + yt < xt * xt);
      const double v = ZigguratTables::kR + xt;
      return neg ? -v : v;
    }
    // Wedge: accept against the true density.
    const double yy = t.y[i] + uniform_open_from(next) * (t.y[i + 1] - t.y[i]);
    if (yy < std::exp(-0.5 * x * x)) return neg ? -x : x;
  }
}

}  // namespace detail

/// Independent RNG stream seed for (seed, index): the splitmix64
/// finalizer over the golden-ratio sequence — statistically
/// independent streams for adjacent indices, stable across platforms.
/// This is the single substream derivation of the codebase:
/// sim::SweepEngine::derive_seed delegates here, and
/// stream::StreamingDemodulator derives its per-packet decode streams
/// from it, which is what makes a streamed trace replay bit-identical
/// to batch decode of the individually framed packets.
inline std::uint64_t derive_stream_seed(std::uint64_t seed,
                                        std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Thin wrapper over xoshiro256++ with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5a17a2ULL) : engine_(seed) {}

  /// Standard normal draw (mean 0, variance 1) via the ziggurat
  /// (detail::gaussian_from is the single reference implementation).
  double gaussian() { return detail::gaussian_from(*zig_, engine_); }

  /// Uniform draw in [0, 1).
  double uniform() { return uniform_(engine_); }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool chance(double p) { return uniform() < p; }

  Xoshiro256pp& engine() { return engine_; }

 private:
  Xoshiro256pp engine_;
  const detail::ZigguratTables* zig_ = &detail::ZigguratTables::instance();
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace saiyan::dsp
