// Deterministic random number generation.
//
// Every stochastic block (noise sources, MAC slot selection, packet
// payloads) takes an explicit Rng so that experiments are reproducible
// run-to-run; nothing in the library touches global random state.
#pragma once

#include <cstdint>
#include <random>

namespace saiyan::dsp {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5a17a2ULL) : engine_(seed) {}

  /// Standard normal draw (mean 0, variance 1).
  double gaussian() { return normal_(engine_); }

  /// Uniform draw in [0, 1).
  double uniform() { return uniform_(engine_); }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool chance(double p) { return uniform() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
};

}  // namespace saiyan::dsp
