#include "dsp/correlate.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace saiyan::dsp {
namespace {

// Element-wise spectral product over raw doubles (std::complex
// operator* would call out to __muldc3 per element).
void spectral_product(Signal& x, const Signal& y) {
  double* a = reinterpret_cast<double*>(x.data());
  const double* b = reinterpret_cast<const double*>(y.data());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = a[2 * i];
    const double ai = a[2 * i + 1];
    const double br = b[2 * i];
    const double bi = b[2 * i + 1];
    a[2 * i] = ar * br - ai * bi;
    a[2 * i + 1] = ar * bi + ai * br;
  }
}

double window_energy(std::span<const Complex> x, std::size_t start, std::size_t len) {
  double acc = 0.0;
  for (std::size_t i = 0; i < len; ++i) acc += std::norm(x[start + i]);
  return acc;
}

double window_energy(std::span<const double> x, std::size_t start, std::size_t len) {
  double acc = 0.0;
  for (std::size_t i = 0; i < len; ++i) acc += x[start + i] * x[start + i];
  return acc;
}

// Both-real one-shot correlation: pack signal and reversed template
// into one complex sequence (z = x + i·t_rev) so a single forward
// transform yields both spectra, untangled via conjugate symmetry.
Signal xcorr_real_spectral(std::span<const double> x, std::span<const double> tmpl,
                           std::size_t n) {
  Signal z(n, Complex{});
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = Complex(x[i], 0.0);
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    z[i] = Complex(z[i].real(), tmpl[tmpl.size() - 1 - i]);
  }
  const auto plan = fft_plan(n);
  plan->forward(z);
  // Z[k] = X[k] + i·T[k] with x, t real:
  //   X[k] = (Z[k] + conj(Z[n-k]))/2,  T[k] = -i·(Z[k] - conj(Z[n-k]))/2.
  // The correlation spectrum is X·T; compute it bin-pair-symmetrically.
  Signal p(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t kk = (n - k) & (n - 1);
    const Complex zk = z[k];
    const Complex zc = std::conj(z[kk]);
    const double xr = 0.5 * (zk.real() + zc.real());
    const double xi = 0.5 * (zk.imag() + zc.imag());
    const double dr = 0.5 * (zk.real() - zc.real());
    const double di = 0.5 * (zk.imag() - zc.imag());
    const double tr = di;   // T[k] = -i·d = (di, -dr)
    const double ti = -dr;
    p[k] = Complex(xr * tr - xi * ti, xr * ti + xi * tr);
  }
  plan->inverse(p);
  return p;
}

}  // namespace

RealSignal cross_correlate(std::span<const Complex> x, std::span<const Complex> tmpl) {
  if (tmpl.empty()) throw std::invalid_argument("cross_correlate: empty template");
  if (x.size() < tmpl.size()) return {};
  PreparedTemplate prepared(tmpl);
  return prepared.correlate(x);
}

RealSignal cross_correlate(std::span<const double> x, std::span<const double> tmpl) {
  if (tmpl.empty()) throw std::invalid_argument("cross_correlate: empty template");
  if (x.size() < tmpl.size()) return {};
  const std::size_t n_valid = x.size() - tmpl.size() + 1;
  const std::size_t n = next_pow2(x.size() + tmpl.size() - 1);
  const Signal corr = xcorr_real_spectral(x, tmpl, n);
  RealSignal out(n_valid);
  for (std::size_t i = 0; i < n_valid; ++i) {
    out[i] = std::abs(corr[i + tmpl.size() - 1]);
  }
  return out;
}

RealSignal cross_correlate_signed(std::span<const double> x,
                                  std::span<const double> tmpl) {
  if (tmpl.empty()) throw std::invalid_argument("cross_correlate: empty template");
  if (x.size() < tmpl.size()) return {};
  const std::size_t n_valid = x.size() - tmpl.size() + 1;
  const std::size_t n = next_pow2(x.size() + tmpl.size() - 1);
  const Signal corr = xcorr_real_spectral(x, tmpl, n);
  RealSignal out(n_valid);
  for (std::size_t i = 0; i < n_valid; ++i) {
    out[i] = corr[i + tmpl.size() - 1].real();
  }
  return out;
}

CorrelationPeak find_peak(std::span<const Complex> x, std::span<const Complex> tmpl) {
  PreparedTemplate prepared(tmpl);
  return prepared.find_peak(x);
}

CorrelationPeak find_peak(std::span<const double> x, std::span<const double> tmpl) {
  PreparedTemplate prepared(tmpl);
  return prepared.find_peak(x);
}

PreparedTemplate::PreparedTemplate(std::span<const double> tmpl)
    : t_len_(tmpl.size()), real_(true) {
  if (tmpl.empty()) throw std::invalid_argument("PreparedTemplate: empty template");
  rev_real_.resize(t_len_);
  for (std::size_t i = 0; i < t_len_; ++i) {
    rev_real_[i] = tmpl[t_len_ - 1 - i];
    energy_ += tmpl[i] * tmpl[i];
  }
}

PreparedTemplate::PreparedTemplate(std::span<const Complex> tmpl)
    : t_len_(tmpl.size()), real_(false) {
  if (tmpl.empty()) throw std::invalid_argument("PreparedTemplate: empty template");
  rev_conj_.resize(t_len_);
  for (std::size_t i = 0; i < t_len_; ++i) {
    rev_conj_[i] = std::conj(tmpl[t_len_ - 1 - i]);
    energy_ += std::norm(tmpl[i]);
  }
}

const Signal& PreparedTemplate::spectrum_for(std::size_t n) const {
  if (cached_n_ == n) return spec_;
  if (real_) {
    fft_plan(n)->forward_real(rev_real_, spec_);
  } else {
    spec_.assign(n, Complex{});
    for (std::size_t i = 0; i < t_len_; ++i) spec_[i] = rev_conj_[i];
    fft_plan(n)->forward(spec_);
  }
  cached_n_ = n;
  return spec_;
}

bool PreparedTemplate::correlate_core(std::span<const double> x) const {
  if (x.size() < t_len_) return false;
  const std::size_t n = next_pow2(x.size() + t_len_ - 1);
  const Signal& spec = spectrum_for(n);
  const auto plan = fft_plan(n);
  plan->forward_real(x, work_, fft_scratch_);
  spectral_product(work_, spec);
  plan->inverse(work_);
  return true;
}

bool PreparedTemplate::correlate_core(std::span<const Complex> x) const {
  if (x.size() < t_len_) return false;
  const std::size_t n = next_pow2(x.size() + t_len_ - 1);
  const Signal& spec = spectrum_for(n);
  work_.assign(n, Complex{});
  for (std::size_t i = 0; i < x.size(); ++i) work_[i] = x[i];
  const auto plan = fft_plan(n);
  plan->forward(work_);
  spectral_product(work_, spec);
  plan->inverse(work_);
  return true;
}

RealSignal PreparedTemplate::correlate(std::span<const double> x) const {
  if (!correlate_core(x)) return {};
  const std::size_t n_valid = x.size() - t_len_ + 1;
  RealSignal out(n_valid);
  for (std::size_t i = 0; i < n_valid; ++i) out[i] = std::abs(work_[i + t_len_ - 1]);
  return out;
}

RealSignal PreparedTemplate::correlate(std::span<const Complex> x) const {
  if (!correlate_core(x)) return {};
  const std::size_t n_valid = x.size() - t_len_ + 1;
  RealSignal out(n_valid);
  for (std::size_t i = 0; i < n_valid; ++i) out[i] = std::abs(work_[i + t_len_ - 1]);
  return out;
}

RealSignal PreparedTemplate::correlate_signed(std::span<const double> x) const {
  RealSignal out;
  correlate_signed_into(x, out);
  return out;
}

void PreparedTemplate::correlate_signed_into(std::span<const double> x,
                                             RealSignal& out) const {
  if (!correlate_core(x)) {
    out.clear();
    return;
  }
  const std::size_t n_valid = x.size() - t_len_ + 1;
  out.resize(n_valid);
  for (std::size_t i = 0; i < n_valid; ++i) out[i] = work_[i + t_len_ - 1].real();
}

namespace {

template <typename Span>
CorrelationPeak peak_from_workspace(const Signal& work, Span x, std::size_t t_len,
                                    double t_energy) {
  CorrelationPeak pk;
  const std::size_t n_valid = x.size() - t_len + 1;
  for (std::size_t i = 0; i < n_valid; ++i) {
    const double v = std::abs(work[i + t_len - 1]);
    if (v > pk.value) {
      pk.value = v;
      pk.lag = i;
    }
  }
  const double w_energy = window_energy(x, pk.lag, t_len);
  const double denom = std::sqrt(t_energy * w_energy);
  pk.normalized = (denom > 0.0) ? pk.value / denom : 0.0;
  return pk;
}

}  // namespace

CorrelationPeak PreparedTemplate::find_peak(std::span<const double> x) const {
  if (!correlate_core(x)) return {};
  return peak_from_workspace(work_, x, t_len_, energy_);
}

CorrelationPeak PreparedTemplate::find_peak(std::span<const Complex> x) const {
  if (!correlate_core(x)) return {};
  return peak_from_workspace(work_, x, t_len_, energy_);
}

}  // namespace saiyan::dsp
