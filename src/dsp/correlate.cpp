#include "dsp/correlate.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace saiyan::dsp {
namespace {

// Complex sliding correlation via FFT; returns |corr| for valid lags.
RealSignal xcorr_impl(std::span<const Complex> x, std::span<const Complex> tmpl) {
  if (tmpl.empty()) throw std::invalid_argument("cross_correlate: empty template");
  if (x.size() < tmpl.size()) return {};
  const std::size_t n_valid = x.size() - tmpl.size() + 1;
  const std::size_t n = next_pow2(x.size() + tmpl.size() - 1);
  Signal xf(n, Complex{});
  Signal tf(n, Complex{});
  for (std::size_t i = 0; i < x.size(); ++i) xf[i] = x[i];
  // Correlation = convolution with conjugated, time-reversed template.
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    tf[i] = std::conj(tmpl[tmpl.size() - 1 - i]);
  }
  fft_inplace(xf);
  fft_inplace(tf);
  for (std::size_t i = 0; i < n; ++i) xf[i] *= tf[i];
  ifft_inplace(xf);
  RealSignal out(n_valid);
  for (std::size_t i = 0; i < n_valid; ++i) {
    out[i] = std::abs(xf[i + tmpl.size() - 1]);
  }
  return out;
}

// Signed variant: returns the real part instead of the magnitude.
RealSignal xcorr_signed_impl(std::span<const Complex> x, std::span<const Complex> tmpl) {
  if (tmpl.empty()) throw std::invalid_argument("cross_correlate: empty template");
  if (x.size() < tmpl.size()) return {};
  const std::size_t n_valid = x.size() - tmpl.size() + 1;
  const std::size_t n = next_pow2(x.size() + tmpl.size() - 1);
  Signal xf(n, Complex{});
  Signal tf(n, Complex{});
  for (std::size_t i = 0; i < x.size(); ++i) xf[i] = x[i];
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    tf[i] = std::conj(tmpl[tmpl.size() - 1 - i]);
  }
  fft_inplace(xf);
  fft_inplace(tf);
  for (std::size_t i = 0; i < n; ++i) xf[i] *= tf[i];
  ifft_inplace(xf);
  RealSignal out(n_valid);
  for (std::size_t i = 0; i < n_valid; ++i) {
    out[i] = xf[i + tmpl.size() - 1].real();
  }
  return out;
}

double window_energy(std::span<const Complex> x, std::size_t start, std::size_t len) {
  double acc = 0.0;
  for (std::size_t i = 0; i < len; ++i) acc += std::norm(x[start + i]);
  return acc;
}

}  // namespace

RealSignal cross_correlate(std::span<const Complex> x, std::span<const Complex> tmpl) {
  return xcorr_impl(x, tmpl);
}

RealSignal cross_correlate(std::span<const double> x, std::span<const double> tmpl) {
  Signal cx(x.size());
  Signal ct(tmpl.size());
  for (std::size_t i = 0; i < x.size(); ++i) cx[i] = Complex(x[i], 0.0);
  for (std::size_t i = 0; i < tmpl.size(); ++i) ct[i] = Complex(tmpl[i], 0.0);
  return xcorr_impl(cx, ct);
}

RealSignal cross_correlate_signed(std::span<const double> x,
                                  std::span<const double> tmpl) {
  Signal cx(x.size());
  Signal ct(tmpl.size());
  for (std::size_t i = 0; i < x.size(); ++i) cx[i] = Complex(x[i], 0.0);
  for (std::size_t i = 0; i < tmpl.size(); ++i) ct[i] = Complex(tmpl[i], 0.0);
  return xcorr_signed_impl(cx, ct);
}

CorrelationPeak find_peak(std::span<const Complex> x, std::span<const Complex> tmpl) {
  const RealSignal corr = xcorr_impl(x, tmpl);
  CorrelationPeak pk;
  if (corr.empty()) return pk;
  for (std::size_t i = 0; i < corr.size(); ++i) {
    if (corr[i] > pk.value) {
      pk.value = corr[i];
      pk.lag = i;
    }
  }
  double t_energy = 0.0;
  for (const Complex& v : tmpl) t_energy += std::norm(v);
  const double w_energy = window_energy(x, pk.lag, tmpl.size());
  const double denom = std::sqrt(t_energy * w_energy);
  pk.normalized = (denom > 0.0) ? pk.value / denom : 0.0;
  return pk;
}

CorrelationPeak find_peak(std::span<const double> x, std::span<const double> tmpl) {
  Signal cx(x.size());
  Signal ct(tmpl.size());
  for (std::size_t i = 0; i < x.size(); ++i) cx[i] = Complex(x[i], 0.0);
  for (std::size_t i = 0; i < tmpl.size(); ++i) ct[i] = Complex(tmpl[i], 0.0);
  return find_peak(std::span<const Complex>(cx), std::span<const Complex>(ct));
}

}  // namespace saiyan::dsp
