// Integer-factor decimation with anti-alias filtering, plus raw
// sample-and-hold pickup used by the low-power voltage sampler.
#pragma once

#include <span>

#include "dsp/types.hpp"

namespace saiyan::dsp {

/// Anti-alias low-pass then keep every `factor`-th sample.
RealSignal decimate(std::span<const double> x, std::size_t factor);
Signal decimate(std::span<const Complex> x, std::size_t factor);

/// Sample a waveform at an arbitrary (possibly non-integer) ratio of
/// the source rate, zero-order hold: out[k] = x[floor(k * fs_in/fs_out)].
/// This is what a comparator+counter sampler physically does.
RealSignal sample_hold(std::span<const double> x, double fs_in_hz, double fs_out_hz);

}  // namespace saiyan::dsp
