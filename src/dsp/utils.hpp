// Scalar conversions and small statistics helpers used across modules.
#pragma once

#include <span>

#include "dsp/types.hpp"

namespace saiyan::dsp {

/// Convert a linear power ratio to decibels. `ratio` must be > 0.
double lin_to_db(double ratio);

/// Convert decibels to a linear power ratio.
double db_to_lin(double db);

/// Convert power in watts to dBm.
double watts_to_dbm(double watts);

/// Convert dBm to watts.
double dbm_to_watts(double dbm);

/// Convert a linear amplitude (voltage) ratio to dB (20·log10).
double amp_to_db(double amp_ratio);

/// Convert dB to a linear amplitude (voltage) ratio.
double db_to_amp(double db);

/// Mean of a real sequence; 0 for an empty span.
double mean(std::span<const double> x);

/// x with its mean subtracted (the template/window normalization used
/// by the correlation matchers).
RealSignal mean_removed(std::span<const double> x);

/// mean_removed into a caller-owned buffer (zero-allocation path).
void mean_removed_into(std::span<const double> x, RealSignal& out);

/// Population variance of a real sequence; 0 for fewer than 2 samples.
double variance(std::span<const double> x);

/// Root-mean-square of a real sequence.
double rms(std::span<const double> x);

/// Average power (mean |x|^2) of a complex waveform (1-ohm convention).
double signal_power(std::span<const Complex> x);

/// Average power of a real waveform.
double signal_power(std::span<const double> x);

/// Average power of a complex waveform expressed in dBm (1 mW reference).
double signal_power_dbm(std::span<const Complex> x);

/// Scale a complex waveform in place so its average power equals
/// `target_dbm` (no-op on an all-zero waveform).
void set_power_dbm(Signal& x, double target_dbm);

/// Maximum element of a real sequence; -inf for empty input.
double peak(std::span<const double> x);

/// Index of the maximum element; 0 for empty input.
std::size_t argmax(std::span<const double> x);

/// Linear interpolation of y(x) over a table of (xs, ys) sorted by xs.
/// Values outside the table clamp to the end points.
double interp1(std::span<const double> xs, std::span<const double> ys, double x);

/// True when |a-b| <= tol.
bool near(double a, double b, double tol);

}  // namespace saiyan::dsp
