#include "dsp/utils.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "dsp/simd.hpp"

namespace saiyan::dsp {

double lin_to_db(double ratio) {
  if (ratio <= 0.0) {
    throw std::domain_error("lin_to_db: ratio must be positive");
  }
  return 10.0 * std::log10(ratio);
}

double db_to_lin(double db) { return std::pow(10.0, db / 10.0); }

double watts_to_dbm(double watts) {
  if (watts <= 0.0) {
    throw std::domain_error("watts_to_dbm: power must be positive");
  }
  return 10.0 * std::log10(watts * 1e3);
}

double dbm_to_watts(double dbm) { return std::pow(10.0, dbm / 10.0) * 1e-3; }

double amp_to_db(double amp_ratio) {
  if (amp_ratio <= 0.0) {
    throw std::domain_error("amp_to_db: amplitude ratio must be positive");
  }
  return 20.0 * std::log10(amp_ratio);
}

double db_to_amp(double db) { return std::pow(10.0, db / 20.0); }

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  return simd::sum(x.data(), x.size()) / static_cast<double>(x.size());
}

RealSignal mean_removed(std::span<const double> x) {
  RealSignal out;
  mean_removed_into(x, out);
  return out;
}

void mean_removed_into(std::span<const double> x, RealSignal& out) {
  const double m = mean(x);
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - m;
}

double variance(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size());
}

double rms(std::span<const double> x) {
  return std::sqrt(signal_power(x));
}

double signal_power(std::span<const Complex> x) {
  if (x.empty()) return 0.0;
  // Blocked SIMD-dispatched reduction; bit-identical at any ISA.
  return simd::sum_squares(x.data(), x.size()) / static_cast<double>(x.size());
}

double signal_power(std::span<const double> x) {
  if (x.empty()) return 0.0;
  return simd::sum_squares(x.data(), x.size()) / static_cast<double>(x.size());
}

double signal_power_dbm(std::span<const Complex> x) {
  return watts_to_dbm(signal_power(x));
}

void set_power_dbm(Signal& x, double target_dbm) {
  const double p = signal_power(x);
  if (p <= 0.0) return;
  const double scale = std::sqrt(dbm_to_watts(target_dbm) / p);
  for (Complex& v : x) v *= scale;
}

double peak(std::span<const double> x) {
  if (x.empty()) return -std::numeric_limits<double>::infinity();
  return *std::max_element(x.begin(), x.end());
}

std::size_t argmax(std::span<const double> x) {
  if (x.empty()) return 0;
  return static_cast<std::size_t>(
      std::distance(x.begin(), std::max_element(x.begin(), x.end())));
}

double interp1(std::span<const double> xs, std::span<const double> ys, double x) {
  if (xs.empty() || xs.size() != ys.size()) {
    throw std::invalid_argument("interp1: tables must be non-empty and equal size");
  }
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(std::distance(xs.begin(), it));
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

bool near(double a, double b, double tol) { return std::abs(a - b) <= tol; }

}  // namespace saiyan::dsp
