#include "dsp/noise.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "dsp/simd.hpp"
#include "dsp/utils.hpp"

namespace saiyan::dsp {

Signal complex_awgn(std::size_t n, double power_watts, Rng& rng) {
  if (power_watts < 0.0) throw std::invalid_argument("complex_awgn: negative power");
  const double sigma = std::sqrt(power_watts / 2.0);
  Signal out(n);
  double* d = reinterpret_cast<double*>(out.data());
  simd::fill_gaussian(rng, d, 2 * n);
  simd::scale(d, 2 * n, sigma, d);
  return out;
}

void add_awgn(Signal& x, double power_watts, Rng& rng) {
  if (power_watts < 0.0) throw std::invalid_argument("add_awgn: negative power");
  const double sigma = std::sqrt(power_watts / 2.0);
  for (Complex& v : x) {
    v += Complex(sigma * rng.gaussian(), sigma * rng.gaussian());
  }
}

RealSignal real_white_noise(std::size_t n, double power_watts, Rng& rng) {
  if (power_watts < 0.0) throw std::invalid_argument("real_white_noise: negative power");
  const double sigma = std::sqrt(power_watts);
  RealSignal out(n);
  simd::fill_gaussian(rng, out.data(), n);
  simd::scale(out.data(), n, sigma, out.data());
  return out;
}

RealSignal flicker_noise(std::size_t n, double power_watts, Rng& rng) {
  RealSignal out;
  RealSignal drive;
  flicker_noise_into(n, power_watts, rng, out, drive);
  return out;
}

void flicker_noise_into(std::size_t n, double power_watts, Rng& rng,
                        RealSignal& out, RealSignal& drive_scratch) {
  if (power_watts < 0.0) throw std::invalid_argument("flicker_noise: negative power");
  // Sum of octave-spaced one-pole low-pass stages driven by white
  // noise, each normalized to equal variance — equal power per
  // frequency octave, the defining property of 1/f noise. Stage
  // corners run from fs/80 (highest) down by 4x per stage, so the
  // power sits at low frequencies (well below a typical IF), which is
  // exactly why cyclic-frequency shifting can escape it.
  constexpr std::size_t kStages = 6;
  std::array<double, kStages> state{};
  std::array<double, kStages> alpha{};
  std::array<double, kStages> gain{};
  double fc_over_fs = 1.0 / 80.0;
  for (std::size_t s = 0; s < kStages; ++s) {
    alpha[s] = 1.0 - std::exp(-kTwoPi * fc_over_fs);
    // One-pole output variance for unit white input is a/(2-a);
    // equalize every stage.
    gain[s] = 1.0 / std::sqrt(alpha[s] / (2.0 - alpha[s]));
    fc_over_fs /= 4.0;
  }
  out.resize(n);
  // One shared white draw drives all stages (Kellet-style pink
  // filter): same 1/f-dominated spectrum, one gaussian per sample
  // instead of one per stage — this is the hottest noise source in the
  // receive chain. The shared input correlates the stages (coherent
  // low-frequency sum), but with the empirical total-power
  // normalization below the measured effect on the envelope band is
  // negligible: <0.2 dB in 0–200 kHz and ~0.5 dB across sub-bands
  // versus independent drives at fs = 4 MHz (docs/PERFORMANCE.md).
  // The drive is batch-drawn (same stream order as per-sample draws);
  // the stage recurrence itself is inherently sequential.
  drive_scratch.resize(n);
  simd::fill_gaussian(rng, drive_scratch.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = drive_scratch[i];
    double acc = 0.0;
    for (std::size_t s = 0; s < kStages; ++s) {
      state[s] += alpha[s] * (w - state[s]);
      acc += gain[s] * state[s];
    }
    out[i] = acc;
  }
  // Normalize to the requested power.
  const double p = signal_power(std::span<const double>(out));
  if (p > 0.0) {
    const double scale = std::sqrt(power_watts / p);
    simd::scale(out.data(), n, scale, out.data());
  }
}

double thermal_noise_floor_dbm(double bandwidth_hz, double noise_figure_db) {
  if (bandwidth_hz <= 0.0) {
    throw std::invalid_argument("thermal_noise_floor_dbm: bandwidth must be > 0");
  }
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

}  // namespace saiyan::dsp
