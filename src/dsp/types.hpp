// Fundamental signal types shared by every module.
//
// All RF waveforms are represented as complex-baseband sample streams
// (std::vector<std::complex<double>>) relative to a reference RF
// frequency carried alongside the samples by the blocks that need it
// (e.g. the SAW filter model). Post-detector (envelope-domain) signals
// are real-valued streams.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace saiyan::dsp {

using Complex = std::complex<double>;
using Signal = std::vector<Complex>;       ///< complex-baseband waveform
using RealSignal = std::vector<double>;    ///< envelope / logic-level waveform
using BitVector = std::vector<std::uint8_t>;  ///< one logic level per element (0/1)

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

/// Speed of light, m/s. Used by the path-loss models.
inline constexpr double kSpeedOfLight = 299792458.0;

}  // namespace saiyan::dsp
