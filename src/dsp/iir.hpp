// Small IIR building blocks: RBJ biquads and a one-pole smoother.
//
// The analog front-end models (IF amplifier, envelope-detector
// smoothing) use these because their hardware counterparts are
// low-order analog filters.
#pragma once

#include <span>

#include "dsp/types.hpp"

namespace saiyan::dsp {

/// Direct-form-I biquad with RBJ cookbook designs.
class Biquad {
 public:
  /// b/a coefficients (a0 normalized to 1 internally).
  Biquad(double b0, double b1, double b2, double a0, double a1, double a2);

  static Biquad lowpass(double f0_hz, double fs_hz, double q);
  static Biquad highpass(double f0_hz, double fs_hz, double q);
  /// Constant-peak-gain bandpass centered at f0 with quality factor q.
  static Biquad bandpass(double f0_hz, double fs_hz, double q);

  double step(double x);
  RealSignal process(std::span<const double> x);
  /// Filter in place (x[i] overwritten with y[i]) — the
  /// zero-allocation workspace path. Same values as process().
  void process_inplace(std::span<double> x);
  void reset();

  /// Fold a constant output gain into the feed-forward coefficients
  /// (g·H(z)): replaces a separate scaling pass over the signal.
  void scale_output(double g);

  /// Magnitude response at frequency f (Hz) for sample rate fs.
  double magnitude(double f_hz, double fs_hz) const;

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

/// One-pole RC low-pass: y[n] = y[n-1] + alpha (x[n] - y[n-1]).
class OnePole {
 public:
  /// Build from a -3 dB cutoff frequency.
  OnePole(double cutoff_hz, double fs_hz);

  double step(double x);
  RealSignal process(std::span<const double> x);
  /// Filter in place — same values as process().
  void process_inplace(std::span<double> x);
  void reset();
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double y_ = 0.0;
};

}  // namespace saiyan::dsp
