// Window functions for FIR design and spectral analysis.
#pragma once

#include <cstddef>

#include "dsp/types.hpp"

namespace saiyan::dsp {

enum class WindowType {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
  kKaiser,  ///< requires a beta parameter
};

/// Generate an n-point window. `beta` is only used for Kaiser windows.
RealSignal make_window(WindowType type, std::size_t n, double beta = 8.6);

/// Zeroth-order modified Bessel function of the first kind (series
/// expansion), used by the Kaiser window.
double bessel_i0(double x);

/// Coherent gain of a window (mean of its samples) — needed to
/// de-bias amplitude estimates taken through a window.
double coherent_gain(const RealSignal& w);

}  // namespace saiyan::dsp
