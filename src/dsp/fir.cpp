#include "dsp/fir.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace saiyan::dsp {
namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

void check_design(double cutoff_hz, double fs_hz, std::size_t taps) {
  if (taps == 0) throw std::invalid_argument("FIR design: taps must be > 0");
  if (fs_hz <= 0.0) throw std::invalid_argument("FIR design: fs must be > 0");
  if (cutoff_hz <= 0.0 || cutoff_hz >= fs_hz / 2.0) {
    throw std::invalid_argument("FIR design: cutoff must be in (0, fs/2)");
  }
}

void normalize_dc(RealSignal& h) {
  double s = 0.0;
  for (double v : h) s += v;
  if (s != 0.0) {
    for (double& v : h) v /= s;
  }
}

}  // namespace

RealSignal design_lowpass(double cutoff_hz, double fs_hz, std::size_t taps,
                          WindowType window) {
  check_design(cutoff_hz, fs_hz, taps);
  const double fc = cutoff_hz / fs_hz;  // normalized (cycles/sample)
  const RealSignal w = make_window(window, taps);
  RealSignal h(taps);
  const double mid = (static_cast<double>(taps) - 1.0) / 2.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    h[i] = 2.0 * fc * sinc(2.0 * fc * t) * w[i];
  }
  normalize_dc(h);
  return h;
}

RealSignal design_highpass(double cutoff_hz, double fs_hz, std::size_t taps,
                           WindowType window) {
  if (taps % 2 == 0) {
    throw std::invalid_argument("design_highpass: taps must be odd");
  }
  RealSignal h = design_lowpass(cutoff_hz, fs_hz, taps, window);
  // Spectral inversion: delta - lowpass.
  for (double& v : h) v = -v;
  h[(taps - 1) / 2] += 1.0;
  return h;
}

RealSignal design_bandpass(double f_lo_hz, double f_hi_hz, double fs_hz,
                           std::size_t taps, WindowType window) {
  if (f_lo_hz >= f_hi_hz) {
    throw std::invalid_argument("design_bandpass: f_lo must be < f_hi");
  }
  check_design(f_hi_hz, fs_hz, taps);
  check_design(f_lo_hz, fs_hz, taps);
  // Difference of two lowpasses, then peak-normalize at band center.
  const RealSignal lo = design_lowpass(f_lo_hz, fs_hz, taps, window);
  RealSignal h = design_lowpass(f_hi_hz, fs_hz, taps, window);
  for (std::size_t i = 0; i < taps; ++i) h[i] -= lo[i];
  // Normalize gain at the center frequency to unity.
  const double f0 = (f_lo_hz + f_hi_hz) / 2.0 / fs_hz;
  Complex g{};
  const double mid = (static_cast<double>(taps) - 1.0) / 2.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double ph = -kTwoPi * f0 * (static_cast<double>(i) - mid);
    g += h[i] * Complex(std::cos(ph), std::sin(ph));
  }
  const double mag = std::abs(g);
  if (mag > 1e-12) {
    for (double& v : h) v /= mag;
  }
  return h;
}

FirFilter::FirFilter(RealSignal taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: empty taps");
  history_.assign(taps_.size(), Complex{});
}

double FirFilter::step(double x) { return step(Complex(x, 0.0)).real(); }

Complex FirFilter::step(Complex x) {
  history_[head_] = x;
  Complex acc{};
  std::size_t idx = head_;
  for (double tap : taps_) {
    acc += tap * history_[idx];
    idx = (idx == 0) ? history_.size() - 1 : idx - 1;
  }
  head_ = (head_ + 1) % history_.size();
  return acc;
}

RealSignal FirFilter::process(std::span<const double> x) {
  RealSignal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = step(x[i]);
  return out;
}

Signal FirFilter::process(std::span<const Complex> x) {
  Signal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = step(x[i]);
  return out;
}

void FirFilter::reset() {
  history_.assign(taps_.size(), Complex{});
  head_ = 0;
}

Signal fft_filter(std::span<const Complex> x, std::span<const double> taps) {
  if (x.empty()) return {};
  if (taps.empty()) throw std::invalid_argument("fft_filter: empty taps");
  const std::size_t n = next_pow2(x.size() + taps.size() - 1);
  Signal xf(n, Complex{});
  Signal hf(n, Complex{});
  for (std::size_t i = 0; i < x.size(); ++i) xf[i] = x[i];
  for (std::size_t i = 0; i < taps.size(); ++i) hf[i] = Complex(taps[i], 0.0);
  fft_inplace(xf);
  fft_inplace(hf);
  for (std::size_t i = 0; i < n; ++i) xf[i] *= hf[i];
  ifft_inplace(xf);
  // Compensate the linear-phase group delay so output aligns with input.
  const std::size_t delay = (taps.size() - 1) / 2;
  Signal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = xf[i + delay];
  return out;
}

RealSignal fft_filter(std::span<const double> x, std::span<const double> taps) {
  Signal cx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) cx[i] = Complex(x[i], 0.0);
  const Signal cy = fft_filter(cx, taps);
  RealSignal out(cy.size());
  for (std::size_t i = 0; i < cy.size(); ++i) out[i] = cy[i].real();
  return out;
}

}  // namespace saiyan::dsp
