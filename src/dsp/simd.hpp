// Runtime-dispatched SIMD kernels for the per-sample hot passes.
//
// The FFT butterflies (dsp/fft.cpp) set the pattern: AVX2+FMA variants
// compiled behind function-level `target` attributes and selected with
// `__builtin_cpu_supports`, so the default build stays portable. This
// module applies it to the remaining per-sample passes the profile is
// dominated by once the transforms are fast — square-law envelope
// detection, noise injection, mixing and the power reductions.
//
// Every kernel here is **bit-identical** between the scalar reference
// and the AVX2 variant:
//   * element-wise kernels use plain mul/add intrinsics in the exact
//     association of the scalar expression (no FMA contraction);
//   * reductions define the reference as a fixed 4-accumulator blocked
//     sum (lane j accumulates elements i*4+j, lanes combined as
//     ((l0+l1)+l2)+l3, scalar tail appended last) which is precisely
//     what the vector version computes;
//   * the gaussian batch fill consumes the xoshiro engine in the exact
//     order of repeated `Rng::gaussian()` calls — the AVX2 fast path
//     only vectorizes the accept test of a 4-candidate block and
//     replays rejected candidates through the scalar ziggurat.
// So nothing in *these* kernels makes a Monte-Carlo result depend on
// the dispatch target. (The FFT butterflies keep their own, older
// convention: their AVX2+FMA path rounds differently from the portable
// one and is selected by CPUID alone — see dsp/fft.cpp — so exact
// cross-machine reproducibility still requires matching FFT ISAs.)
#pragma once

#include <cstddef>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace saiyan::dsp::simd {

/// Dispatch target. kAuto resolves to the best ISA the CPU supports.
enum class Isa {
  kAuto,
  kScalar,
  kAvx2,
};

/// True when the CPU supports AVX2+FMA (cached CPUID probe).
bool cpu_has_avx2_fma();

/// Force the dispatch target (tests use this to compare scalar vs.
/// native output). kAuto restores runtime detection. Requesting kAvx2
/// on a CPU without AVX2+FMA falls back to scalar.
void set_isa(Isa isa);

/// The ISA the kernels currently dispatch to (kScalar or kAvx2).
Isa active_isa();

/// y[i] = k * (re(x[i])^2 + im(x[i])^2) — square-law envelope (Eq. 4).
void square_law(const Complex* x, std::size_t n, double k, double* y);

/// y[i] = (k * gain[i]^2) * (re^2 + im^2) — square-law of a waveform
/// pre-multiplied by a real mixer gain (the CFS input mixer fusion).
void square_law_mixed(const Complex* x, const double* gain, std::size_t n,
                      double k, double* y);

/// out[i] = g * x[i] (real arrays; complex data can be passed as 2n
/// doubles).
void scale(const double* x, std::size_t n, double g, double* out);

/// out[i] = x[i] * y[i] (mixing against a precomputed LO table).
/// In-place (out == x) is allowed.
void multiply(const double* x, const double* y, std::size_t n, double* out);

/// x[i] *= g[i] — complex waveform scaled by a real per-bin table (the
/// SAW filter's frequency-domain gain pass).
void complex_scale_table(Complex* x, const double* g, std::size_t n);

/// Blocked sum (fixed 4-accumulator association) — the basis of mean().
double sum(const double* x, std::size_t n);

/// Blocked sum of squares (see header comment for the fixed
/// association). The basis of signal_power()/rms().
double sum_squares(const double* x, std::size_t n);

/// Sum of |x[i]|^2 — same blocked reduction over the interleaved
/// re/im doubles.
double sum_squares(const Complex* x, std::size_t n);

/// Fill out[0..n) with standard-normal draws, consuming `rng` in the
/// exact order of n successive rng.gaussian() calls (bit-identical
/// stream at any dispatch target).
void fill_gaussian(Rng& rng, double* out, std::size_t n);

// Fused draw + inject kernels: the gaussians are drawn inside the
// pass (same stream order as per-sample draws) and never materialized
// in a scratch buffer — one memory sweep instead of three. These are
// the per-packet noise stages of the receive chain.

/// out[i] = a * x[i] + sigma * gaussian_i — the AWGN channel pass
/// (complex data as 2n doubles: draws alternate re/im).
void scale_add_gaussian(const double* x, std::size_t n, double a, double sigma,
                        double* out, Rng& rng);

/// out[i] = g * (x[i] + sigma * gaussian_i) — the LNA pass.
void gain_add_gaussian(const double* x, std::size_t n, double g, double sigma,
                       double* out, Rng& rng);

/// y[i] += dc + flicker[i] + sigma * gaussian_i — the envelope
/// detector's impairment pass.
void add_dc_flicker_gaussian(double* y, const double* flicker, std::size_t n,
                             double dc, double sigma, Rng& rng);

/// Fused LNA + square-law: amplify each complex sample with
/// input-referred noise (re' = g·(re + sigma·gaussian), likewise im —
/// two draws per sample in re/im order) and emit
/// y[i] = k · gain[i]² · (re'² + im'²) without materializing the
/// amplified waveform. `gain` may be null (plain square law). Values
/// and draw stream identical to gain_add_gaussian followed by
/// square_law_mixed / square_law.
void lna_square_law(const Complex* x, const double* gain, std::size_t n,
                    double g, double sigma, double k, double* y, Rng& rng);

/// Blocked dot product (same fixed 4-accumulator association as
/// sum/sum_squares) — the correlation decoder's template score.
double dot(const double* x, const double* y, std::size_t n);

/// Blocked complex correlation Σ x[i]·conj(y[i]) — the SIC least-squares
/// amplitude estimate (sic::CollisionResolver). Per complex lane the
/// real part accumulates xr·yr + xi·yi and the imaginary part
/// xi·yr − xr·yi, with the same fixed 4-accumulator association as
/// dot(): lane j of a 4-complex block owns complex i·4+j, lanes are
/// combined as ((l0+l1)+l2)+l3, and the tail is appended last.
Complex cdot(const Complex* x, const Complex* y, std::size_t n);

/// y[i] -= a·x[i] + b — the SIC cancellation pass: subtract a
/// reconstructed transmit waveform scaled by its least-squares complex
/// amplitude (plus the fitted DC offset) from the residual in place.
/// Per sample: re -= (ar·xr − ai·xi) + br, im -= (ar·xi + ai·xr) + bi,
/// in exactly that association (no FMA contraction) so scalar and AVX2
/// residuals are bit-identical.
void complex_scaled_subtract(const Complex* x, std::size_t n, Complex a,
                             Complex b, Complex* y);

}  // namespace saiyan::dsp::simd
