#include "dsp/resample.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fir.hpp"

namespace saiyan::dsp {
namespace {

constexpr std::size_t kAntiAliasTaps = 63;

}  // namespace

RealSignal decimate(std::span<const double> x, std::size_t factor) {
  if (factor == 0) throw std::invalid_argument("decimate: factor must be >= 1");
  if (factor == 1) return RealSignal(x.begin(), x.end());
  // Anti-alias at 0.45 of the post-decimation Nyquist.
  const RealSignal taps =
      design_lowpass(0.45 / static_cast<double>(factor), 1.0, kAntiAliasTaps);
  const RealSignal filtered = fft_filter(x, taps);
  RealSignal out;
  out.reserve(filtered.size() / factor + 1);
  for (std::size_t i = 0; i < filtered.size(); i += factor) out.push_back(filtered[i]);
  return out;
}

Signal decimate(std::span<const Complex> x, std::size_t factor) {
  if (factor == 0) throw std::invalid_argument("decimate: factor must be >= 1");
  if (factor == 1) return Signal(x.begin(), x.end());
  const RealSignal taps =
      design_lowpass(0.45 / static_cast<double>(factor), 1.0, kAntiAliasTaps);
  const Signal filtered = fft_filter(x, taps);
  Signal out;
  out.reserve(filtered.size() / factor + 1);
  for (std::size_t i = 0; i < filtered.size(); i += factor) out.push_back(filtered[i]);
  return out;
}

RealSignal sample_hold(std::span<const double> x, double fs_in_hz, double fs_out_hz) {
  if (fs_in_hz <= 0.0 || fs_out_hz <= 0.0) {
    throw std::invalid_argument("sample_hold: rates must be > 0");
  }
  if (x.empty()) return {};
  const double ratio = fs_in_hz / fs_out_hz;
  const std::size_t n_out =
      static_cast<std::size_t>(std::floor(static_cast<double>(x.size() - 1) / ratio)) + 1;
  RealSignal out(n_out);
  for (std::size_t k = 0; k < n_out; ++k) {
    const std::size_t idx = static_cast<std::size_t>(std::floor(k * ratio));
    out[k] = x[std::min(idx, x.size() - 1)];
  }
  return out;
}

}  // namespace saiyan::dsp
