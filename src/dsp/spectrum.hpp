// Spectral analysis: Welch periodogram, in-band SNR estimation and
// dominant-frequency search. Used by the CFS benchmark (paper Fig. 10)
// and the front-end tests.
#pragma once

#include <span>

#include "dsp/types.hpp"
#include "dsp/window.hpp"

namespace saiyan::dsp {

/// Power spectral density estimate.
struct Psd {
  RealSignal frequency_hz;  ///< bin centers, monotonically increasing
  RealSignal power_dbm;     ///< PSD integrated per bin, in dBm
};

/// Welch-averaged periodogram of a complex waveform. Frequencies span
/// [-fs/2, fs/2). `segment` must be a power of two.
Psd welch_psd(std::span<const Complex> x, double fs_hz, std::size_t segment = 1024,
              WindowType window = WindowType::kHann);

/// Welch-averaged periodogram of a real waveform; frequencies span
/// [0, fs/2).
Psd welch_psd(std::span<const double> x, double fs_hz, std::size_t segment = 1024,
              WindowType window = WindowType::kHann);

/// Estimate SNR (dB) of a real waveform: signal = total power inside
/// [band_lo, band_hi] Hz; noise = average PSD outside, scaled to the
/// same bandwidth.
double estimate_snr_db(std::span<const double> x, double fs_hz, double band_lo_hz,
                       double band_hi_hz, std::size_t segment = 1024);

/// Frequency (Hz) of the strongest PSD bin of a real waveform,
/// excluding DC bins below `dc_guard_hz`.
double dominant_frequency(std::span<const double> x, double fs_hz,
                          double dc_guard_hz = 0.0, std::size_t segment = 1024);

}  // namespace saiyan::dsp
