#include "dsp/nco.hpp"

#include <cmath>
#include <stdexcept>

namespace saiyan::dsp {

Nco::Nco(double frequency_hz, double fs_hz, double initial_phase_rad)
    : freq_hz_(frequency_hz),
      fs_hz_(fs_hz),
      phase_(initial_phase_rad),
      phase_inc_(kTwoPi * frequency_hz / fs_hz) {
  if (fs_hz <= 0.0) throw std::invalid_argument("Nco: fs must be > 0");
}

namespace {

// Batch oscillator: phase rotation by complex recurrence
// (4 multiplies/sample instead of a cos+sin libm call pair),
// re-anchored on the exact angle every kNcoChunk samples so rounding
// drift stays at the few-ulp level regardless of length.
constexpr std::size_t kNcoChunk = 256;

template <typename Emit>
void generate_rotation(std::size_t n, double phase0, double inc, Emit emit) {
  const double cw = std::cos(inc);
  const double sw = std::sin(inc);
  std::size_t i = 0;
  while (i < n) {
    const std::size_t end = std::min(n, i + kNcoChunk);
    const double ph = phase0 + static_cast<double>(i) * inc;
    double c = std::cos(ph);
    double s = std::sin(ph);
    for (; i < end; ++i) {
      emit(i, c, s);
      const double c2 = c * cw - s * sw;
      s = s * cw + c * sw;
      c = c2;
    }
  }
}

}  // namespace

Complex Nco::next() {
  const Complex v(std::cos(phase_), std::sin(phase_));
  phase_ += phase_inc_;
  if (phase_ > kTwoPi) phase_ -= kTwoPi;
  if (phase_ < -kTwoPi) phase_ += kTwoPi;
  return v;
}

double Nco::next_real() { return next().real(); }

void Nco::advance(std::size_t n) {
  phase_ += static_cast<double>(n) * phase_inc_;
  phase_ = std::remainder(phase_, kTwoPi);
}

Signal Nco::tone(std::size_t n) {
  Signal out(n);
  generate_rotation(n, phase_, phase_inc_,
                    [&](std::size_t i, double c, double s) { out[i] = Complex(c, s); });
  advance(n);
  return out;
}

RealSignal Nco::cosine(std::size_t n) {
  RealSignal out(n);
  generate_rotation(n, phase_, phase_inc_,
                    [&](std::size_t i, double c, double) { out[i] = c; });
  advance(n);
  return out;
}

void Nco::set_frequency(double frequency_hz) {
  freq_hz_ = frequency_hz;
  phase_inc_ = kTwoPi * frequency_hz / fs_hz_;
}

Signal mix_complex(std::span<const Complex> x, double f_hz, double fs_hz,
                   double phase_rad) {
  Signal out(x.size());
  generate_rotation(x.size(), phase_rad, kTwoPi * f_hz / fs_hz,
                    [&](std::size_t i, double c, double s) {
                      const double xr = x[i].real();
                      const double xi = x[i].imag();
                      out[i] = Complex(xr * c - xi * s, xr * s + xi * c);
                    });
  return out;
}

Signal mix_real(std::span<const Complex> x, double f_hz, double fs_hz,
                double phase_rad) {
  Signal out(x.size());
  generate_rotation(x.size(), phase_rad, kTwoPi * f_hz / fs_hz,
                    [&](std::size_t i, double c, double) {
                      out[i] = Complex(x[i].real() * c, x[i].imag() * c);
                    });
  return out;
}

RealSignal mix_real(std::span<const double> x, double f_hz, double fs_hz,
                    double phase_rad) {
  RealSignal out(x.size());
  generate_rotation(x.size(), phase_rad, kTwoPi * f_hz / fs_hz,
                    [&](std::size_t i, double c, double) { out[i] = x[i] * c; });
  return out;
}

}  // namespace saiyan::dsp
