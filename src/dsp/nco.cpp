#include "dsp/nco.hpp"

#include <cmath>
#include <stdexcept>

namespace saiyan::dsp {

Nco::Nco(double frequency_hz, double fs_hz, double initial_phase_rad)
    : freq_hz_(frequency_hz),
      fs_hz_(fs_hz),
      phase_(initial_phase_rad),
      phase_inc_(kTwoPi * frequency_hz / fs_hz) {
  if (fs_hz <= 0.0) throw std::invalid_argument("Nco: fs must be > 0");
}

Complex Nco::next() {
  const Complex v(std::cos(phase_), std::sin(phase_));
  phase_ += phase_inc_;
  if (phase_ > kTwoPi) phase_ -= kTwoPi;
  if (phase_ < -kTwoPi) phase_ += kTwoPi;
  return v;
}

double Nco::next_real() { return next().real(); }

Signal Nco::tone(std::size_t n) {
  Signal out(n);
  for (Complex& v : out) v = next();
  return out;
}

RealSignal Nco::cosine(std::size_t n) {
  RealSignal out(n);
  for (double& v : out) v = next_real();
  return out;
}

void Nco::set_frequency(double frequency_hz) {
  freq_hz_ = frequency_hz;
  phase_inc_ = kTwoPi * frequency_hz / fs_hz_;
}

Signal mix_complex(std::span<const Complex> x, double f_hz, double fs_hz,
                   double phase_rad) {
  Nco nco(f_hz, fs_hz, phase_rad);
  Signal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * nco.next();
  return out;
}

Signal mix_real(std::span<const Complex> x, double f_hz, double fs_hz,
                double phase_rad) {
  Nco nco(f_hz, fs_hz, phase_rad);
  Signal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * nco.next_real();
  return out;
}

RealSignal mix_real(std::span<const double> x, double f_hz, double fs_hz,
                    double phase_rad) {
  Nco nco(f_hz, fs_hz, phase_rad);
  RealSignal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * nco.next_real();
  return out;
}

}  // namespace saiyan::dsp
