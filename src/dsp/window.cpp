#include "dsp/window.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/utils.hpp"

namespace saiyan::dsp {

double bessel_i0(double x) {
  // Power-series evaluation; converges quickly for the beta range used
  // in filter design (|x| < ~30).
  double sum = 1.0;
  double term = 1.0;
  const double half_x = x / 2.0;
  for (int k = 1; k < 64; ++k) {
    term *= (half_x / k) * (half_x / k);
    sum += term;
    if (term < 1e-16 * sum) break;
  }
  return sum;
}

RealSignal make_window(WindowType type, std::size_t n, double beta) {
  if (n == 0) throw std::invalid_argument("make_window: n must be > 0");
  RealSignal w(n, 1.0);
  if (n == 1) return w;
  const double denom = static_cast<double>(n - 1);
  switch (type) {
    case WindowType::kRectangular:
      break;
    case WindowType::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * i / denom);
      }
      break;
    case WindowType::kHamming:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * i / denom);
      }
      break;
    case WindowType::kBlackman:
      for (std::size_t i = 0; i < n; ++i) {
        const double t = kTwoPi * i / denom;
        w[i] = 0.42 - 0.5 * std::cos(t) + 0.08 * std::cos(2.0 * t);
      }
      break;
    case WindowType::kKaiser: {
      const double i0_beta = bessel_i0(beta);
      for (std::size_t i = 0; i < n; ++i) {
        const double r = 2.0 * i / denom - 1.0;
        w[i] = bessel_i0(beta * std::sqrt(std::max(0.0, 1.0 - r * r))) / i0_beta;
      }
      break;
    }
  }
  return w;
}

double coherent_gain(const RealSignal& w) {
  return mean(w);
}

}  // namespace saiyan::dsp
