#include "dsp/iir.hpp"

#include <cmath>
#include <stdexcept>

namespace saiyan::dsp {
namespace {

void check_f(double f0_hz, double fs_hz) {
  if (fs_hz <= 0.0 || f0_hz <= 0.0 || f0_hz >= fs_hz / 2.0) {
    throw std::invalid_argument("Biquad: f0 must be in (0, fs/2)");
  }
}

}  // namespace

Biquad::Biquad(double b0, double b1, double b2, double a0, double a1, double a2) {
  if (a0 == 0.0) throw std::invalid_argument("Biquad: a0 must be non-zero");
  b0_ = b0 / a0;
  b1_ = b1 / a0;
  b2_ = b2 / a0;
  a1_ = a1 / a0;
  a2_ = a2 / a0;
}

Biquad Biquad::lowpass(double f0_hz, double fs_hz, double q) {
  check_f(f0_hz, fs_hz);
  const double w0 = kTwoPi * f0_hz / fs_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  return Biquad((1 - cw) / 2, 1 - cw, (1 - cw) / 2, 1 + alpha, -2 * cw, 1 - alpha);
}

Biquad Biquad::highpass(double f0_hz, double fs_hz, double q) {
  check_f(f0_hz, fs_hz);
  const double w0 = kTwoPi * f0_hz / fs_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  return Biquad((1 + cw) / 2, -(1 + cw), (1 + cw) / 2, 1 + alpha, -2 * cw, 1 - alpha);
}

Biquad Biquad::bandpass(double f0_hz, double fs_hz, double q) {
  check_f(f0_hz, fs_hz);
  const double w0 = kTwoPi * f0_hz / fs_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  return Biquad(alpha, 0.0, -alpha, 1 + alpha, -2 * cw, 1 - alpha);
}

double Biquad::step(double x) {
  const double y = b0_ * x + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
  x2_ = x1_;
  x1_ = x;
  y2_ = y1_;
  y1_ = y;
  return y;
}

RealSignal Biquad::process(std::span<const double> x) {
  RealSignal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = step(x[i]);
  return out;
}

void Biquad::process_inplace(std::span<double> x) {
  for (double& v : x) v = step(v);
}

void Biquad::reset() { x1_ = x2_ = y1_ = y2_ = 0.0; }

void Biquad::scale_output(double g) {
  b0_ *= g;
  b1_ *= g;
  b2_ *= g;
}

double Biquad::magnitude(double f_hz, double fs_hz) const {
  const double w = kTwoPi * f_hz / fs_hz;
  const Complex z = Complex(std::cos(w), std::sin(w));
  const Complex z1 = 1.0 / z;
  const Complex z2 = z1 * z1;
  const Complex num = b0_ + b1_ * z1 + b2_ * z2;
  const Complex den = 1.0 + a1_ * z1 + a2_ * z2;
  return std::abs(num / den);
}

OnePole::OnePole(double cutoff_hz, double fs_hz) {
  if (fs_hz <= 0.0 || cutoff_hz <= 0.0 || cutoff_hz >= fs_hz / 2.0) {
    throw std::invalid_argument("OnePole: cutoff must be in (0, fs/2)");
  }
  const double rc = 1.0 / (kTwoPi * cutoff_hz);
  const double dt = 1.0 / fs_hz;
  alpha_ = dt / (rc + dt);
}

double OnePole::step(double x) {
  y_ += alpha_ * (x - y_);
  return y_;
}

RealSignal OnePole::process(std::span<const double> x) {
  RealSignal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = step(x[i]);
  return out;
}

void OnePole::process_inplace(std::span<double> x) {
  for (double& v : x) v = step(v);
}

void OnePole::reset() { y_ = 0.0; }

}  // namespace saiyan::dsp
