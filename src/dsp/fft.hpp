// Fast Fourier transform.
//
// Power-of-two lengths use an iterative radix-2 Cooley–Tukey kernel;
// arbitrary lengths fall back to Bluestein's chirp-z algorithm so the
// rest of the library never needs to care about padding.
#pragma once

#include <cstddef>

#include "dsp/types.hpp"

namespace saiyan::dsp {

/// In-place forward DFT of x (any length >= 1).
void fft_inplace(Signal& x);

/// In-place inverse DFT of x (any length >= 1), normalized by 1/N.
void ifft_inplace(Signal& x);

/// Out-of-place forward DFT.
Signal fft(Signal x);

/// Out-of-place inverse DFT (1/N normalized).
Signal ifft(Signal x);

/// Smallest power of two >= n (n = 0 maps to 1).
std::size_t next_pow2(std::size_t n);

/// True when n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// Frequency (Hz) of FFT bin `k` for an N-point transform at sample
/// rate `fs`, mapped into [-fs/2, fs/2).
double bin_frequency(std::size_t k, std::size_t n, double fs);

}  // namespace saiyan::dsp
