// Fast Fourier transform.
//
// Power-of-two lengths use an iterative radix-2 Cooley–Tukey kernel;
// 3·2^k lengths run a radix-3 split over three power-of-two
// sub-transforms (packet waveforms are ~45k samples, so planning
// 49152 directly beats padding 1.45x to 65536); arbitrary other
// lengths fall back to Bluestein's chirp-z algorithm so the rest of
// the library never needs to care about padding.
//
// Transforms are executed through `FftPlan` objects that precompute
// everything reusable for a given length — bit-reversal permutation,
// twiddle-factor tables (replacing the error-accumulating
// `w *= wlen` recurrence), and for Bluestein lengths the chirp
// vectors and the pre-transformed convolution kernel spectrum. Plans
// are immutable once built and shared through a thread-safe
// process-wide cache, so repeated transforms of the same length (the
// Monte-Carlo hot path) pay only the butterfly work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace saiyan::dsp {

/// Precomputed transform of one fixed length. Immutable after
/// construction; safe to share across threads.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward DFT; x.size() must equal size().
  void forward(Signal& x) const;

  /// In-place inverse DFT, normalized by 1/N; x.size() must equal size().
  void inverse(Signal& x) const;

  /// Like forward()/inverse(), but radix-3 lengths use the caller's
  /// scratch buffer for the de-interleave pass instead of allocating
  /// one per transform (the zero-allocation batch-decode path). For
  /// power-of-two and Bluestein lengths the scratch is unused.
  void forward(Signal& x, Signal& scratch) const;
  void inverse(Signal& x, Signal& scratch) const;

  /// Inverse DFT without the 1/N normalization pass — for callers that
  /// fold the scale into another per-bin table (the SAW filter bakes
  /// it into its gain table, saving one full sweep per packet).
  void inverse_raw(Signal& x, Signal& scratch) const;

  /// Forward DFT of a real sequence, zero-padded to size(). Writes the
  /// full N-bin spectrum into `out`. For even power-of-two lengths this
  /// runs one half-size complex transform (the packed-real trick)
  /// instead of a full complex one.
  void forward_real(std::span<const double> x, Signal& out) const;

  /// forward_real with the packing buffer supplied by the caller — the
  /// zero-allocation path for repeated transforms (the prepared
  /// correlators and the streaming scanner live on this).
  void forward_real(std::span<const double> x, Signal& out,
                    Signal& scratch) const;

 private:
  void transform_pow2(Complex* x, bool inverse) const;
  void transform_radix3(Signal& x, Signal& scratch, bool inverse) const;
  void bluestein(Signal& x, bool inverse) const;

  std::size_t n_;
  bool pow2_;
  bool radix3_ = false;  ///< n = 3 · 2^k (handled by the split kernel)

  // Radix-2 path.
  std::vector<std::uint32_t> bitrev_;
  std::vector<Complex> twiddle_fwd_;  ///< exp(-2πik/n), k < n/2
  std::vector<Complex> stage_twa_;    ///< inner-stage twiddles, access order
  std::vector<Complex> stage_twb_;    ///< outer-stage twiddles, access order
  std::shared_ptr<const FftPlan> half_;  ///< n/2 plan for forward_real

  // Radix-3 path (n = 3 · 2^k).
  std::shared_ptr<const FftPlan> third_;  ///< n/3 power-of-two sub-plan
  std::vector<Complex> tw3_;  ///< [2k] = w^k, [2k+1] = w^2k (w = e^{-2πi/n})

  // Bluestein path (non-power-of-two lengths).
  std::size_t m_ = 0;                    ///< convolution length (pow2)
  std::shared_ptr<const FftPlan> conv_;  ///< m-point plan
  Signal chirp_fwd_, chirp_inv_;         ///< exp(∓iπk²/n)
  Signal bspec_fwd_, bspec_inv_;         ///< FFT of the chirp kernel
};

/// Shared plan for length n from the process-wide cache (thread-safe).
std::shared_ptr<const FftPlan> fft_plan(std::size_t n);

/// In-place forward DFT of x (any length >= 1).
void fft_inplace(Signal& x);

/// In-place inverse DFT of x (any length >= 1), normalized by 1/N.
void ifft_inplace(Signal& x);

/// Out-of-place forward DFT.
Signal fft(Signal x);

/// Out-of-place inverse DFT (1/N normalized).
Signal ifft(Signal x);

/// Smallest power of two >= n (n = 0 maps to 1). Throws
/// std::overflow_error when the result does not fit in std::size_t.
std::size_t next_pow2(std::size_t n);

/// True when n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// Smallest FFT-friendly length >= n: min of the next power of two and
/// the next 3·2^k (both planned directly, no Bluestein). Zero-padding
/// targets should use this instead of next_pow2 — a ~45k-sample packet
/// pads to 49152 instead of 65536.
std::size_t next_fast_len(std::size_t n);

/// Frequency (Hz) of FFT bin `k` for an N-point transform at sample
/// rate `fs`, mapped into [-fs/2, fs/2).
double bin_frequency(std::size_t k, std::size_t n, double fs);

namespace detail {

/// Radix-3 split passes of the 3·2^k plan, exposed for the
/// scalar/AVX2 bit-equality tests. The de-interleave gathers the three
/// decimated sequences x[3j+r] into s[r*m + j]; the combine produces
/// the full spectrum from the three m-point sub-spectra and the
/// w^k / w^2k twiddle table (tw[2k], tw[2k+1]). Unlike the radix-2
/// butterflies (which use FMA and may round machine-dependently), both
/// AVX2 variants keep the scalar association with no FMA contraction,
/// so they are bit-identical to the scalar references at every m and
/// tail length. The AVX2 entry points return false on hosts without
/// AVX2+FMA (callers fall back to the scalar reference).
void radix3_deinterleave_scalar(const Complex* x, Complex* s, std::size_t m);
bool radix3_deinterleave_avx2(const Complex* x, Complex* s, std::size_t m);
void radix3_combine_scalar(Complex* out, const Complex* s, const Complex* tw,
                           std::size_t m, bool inverse);
bool radix3_combine_avx2(Complex* out, const Complex* s, const Complex* tw,
                         std::size_t m, bool inverse);

}  // namespace detail

}  // namespace saiyan::dsp
