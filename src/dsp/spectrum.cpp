#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "dsp/utils.hpp"

namespace saiyan::dsp {
namespace {

// Accumulate |FFT|^2 over 50%-overlapped windowed segments.
RealSignal welch_accumulate(std::span<const Complex> x, std::size_t segment,
                            WindowType window) {
  if (!is_pow2(segment)) throw std::invalid_argument("welch_psd: segment must be pow2");
  if (x.size() < segment) segment = next_pow2(x.size() + 1) / 2;
  if (segment < 2) segment = 2;
  const RealSignal w = make_window(window, segment);
  double w_power = 0.0;
  for (double v : w) w_power += v * v;

  RealSignal acc(segment, 0.0);
  std::size_t count = 0;
  const std::size_t hop = segment / 2;
  for (std::size_t start = 0; start + segment <= x.size(); start += hop) {
    Signal seg(segment);
    for (std::size_t i = 0; i < segment; ++i) seg[i] = x[start + i] * w[i];
    fft_inplace(seg);
    for (std::size_t i = 0; i < segment; ++i) acc[i] += std::norm(seg[i]);
    ++count;
  }
  if (count == 0) {
    // Input shorter than one segment: single zero-padded segment.
    Signal seg(segment, Complex{});
    for (std::size_t i = 0; i < x.size(); ++i) seg[i] = x[i] * w[i % w.size()];
    fft_inplace(seg);
    for (std::size_t i = 0; i < segment; ++i) acc[i] += std::norm(seg[i]);
    count = 1;
  }
  const double norm = 1.0 / (static_cast<double>(count) * w_power * segment);
  for (double& v : acc) v *= norm;
  return acc;  // average power per bin (watts)
}

}  // namespace

Psd welch_psd(std::span<const Complex> x, double fs_hz, std::size_t segment,
              WindowType window) {
  if (fs_hz <= 0.0) throw std::invalid_argument("welch_psd: fs must be > 0");
  RealSignal acc = welch_accumulate(x, segment, window);
  const std::size_t n = acc.size();
  Psd psd;
  psd.frequency_hz.resize(n);
  psd.power_dbm.resize(n);
  // Re-order to [-fs/2, fs/2).
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t k = (i + n / 2) % n;  // FFT bin index for slot i
    psd.frequency_hz[i] = bin_frequency(k, n, fs_hz);
    psd.power_dbm[i] = watts_to_dbm(std::max(acc[k], 1e-30));
  }
  return psd;
}

Psd welch_psd(std::span<const double> x, double fs_hz, std::size_t segment,
              WindowType window) {
  Signal cx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) cx[i] = Complex(x[i], 0.0);
  RealSignal acc = welch_accumulate(cx, segment, window);
  const std::size_t n = acc.size();
  const std::size_t half = n / 2;
  Psd psd;
  psd.frequency_hz.resize(half);
  psd.power_dbm.resize(half);
  for (std::size_t i = 0; i < half; ++i) {
    psd.frequency_hz[i] = static_cast<double>(i) * fs_hz / static_cast<double>(n);
    // Fold negative frequencies into the positive half (real signal).
    const double p = acc[i] + ((i == 0) ? 0.0 : acc[n - i]);
    psd.power_dbm[i] = watts_to_dbm(std::max(p, 1e-30));
  }
  return psd;
}

double estimate_snr_db(std::span<const double> x, double fs_hz, double band_lo_hz,
                       double band_hi_hz, std::size_t segment) {
  if (band_lo_hz >= band_hi_hz) {
    throw std::invalid_argument("estimate_snr_db: band_lo must be < band_hi");
  }
  const Psd psd = welch_psd(x, fs_hz, segment);
  double sig = 0.0;
  double noise = 0.0;
  std::size_t sig_bins = 0;
  std::size_t noise_bins = 0;
  for (std::size_t i = 0; i < psd.frequency_hz.size(); ++i) {
    const double p = dbm_to_watts(psd.power_dbm[i]);
    if (psd.frequency_hz[i] >= band_lo_hz && psd.frequency_hz[i] <= band_hi_hz) {
      sig += p;
      ++sig_bins;
    } else {
      noise += p;
      ++noise_bins;
    }
  }
  if (sig_bins == 0 || noise_bins == 0 || noise <= 0.0) {
    throw std::domain_error("estimate_snr_db: degenerate band split");
  }
  // Scale out-of-band noise density to the signal bandwidth.
  const double noise_in_band =
      noise / static_cast<double>(noise_bins) * static_cast<double>(sig_bins);
  if (sig <= noise_in_band) return -99.0;  // fully buried
  return lin_to_db((sig - noise_in_band) / noise_in_band);
}

double dominant_frequency(std::span<const double> x, double fs_hz,
                          double dc_guard_hz, std::size_t segment) {
  const Psd psd = welch_psd(x, fs_hz, segment);
  double best_f = 0.0;
  double best_p = -1e300;
  for (std::size_t i = 0; i < psd.frequency_hz.size(); ++i) {
    if (psd.frequency_hz[i] < dc_guard_hz) continue;
    if (psd.power_dbm[i] > best_p) {
      best_p = psd.power_dbm[i];
      best_f = psd.frequency_hz[i];
    }
  }
  return best_f;
}

}  // namespace saiyan::dsp
