// FIR filter design (windowed sinc) and application.
#pragma once

#include <cstddef>
#include <span>

#include "dsp/types.hpp"
#include "dsp/window.hpp"

namespace saiyan::dsp {

/// Design a linear-phase low-pass FIR. `cutoff_hz` is the -6 dB edge,
/// `fs_hz` the sample rate, `taps` the filter length (odd preferred).
RealSignal design_lowpass(double cutoff_hz, double fs_hz, std::size_t taps,
                          WindowType window = WindowType::kHamming);

/// Design a linear-phase high-pass FIR (spectral inversion of lowpass).
RealSignal design_highpass(double cutoff_hz, double fs_hz, std::size_t taps,
                           WindowType window = WindowType::kHamming);

/// Design a linear-phase band-pass FIR with edges [f_lo, f_hi].
RealSignal design_bandpass(double f_lo_hz, double f_hi_hz, double fs_hz,
                           std::size_t taps,
                           WindowType window = WindowType::kHamming);

/// Streaming FIR filter (direct form) usable on real or complex data.
/// Keeps state across process() calls so long waveforms can be fed in
/// blocks.
class FirFilter {
 public:
  explicit FirFilter(RealSignal taps);

  /// Filter one sample.
  double step(double x);
  Complex step(Complex x);

  /// Filter a whole buffer (stateful; same-length output, i.e. the
  /// filter delay of (taps-1)/2 samples is *not* compensated).
  RealSignal process(std::span<const double> x);
  Signal process(std::span<const Complex> x);

  /// Clear history.
  void reset();

  std::size_t order() const { return taps_.size(); }
  /// Group delay of the linear-phase filter, in samples.
  double group_delay() const { return (static_cast<double>(taps_.size()) - 1.0) / 2.0; }
  const RealSignal& taps() const { return taps_; }

 private:
  RealSignal taps_;
  Signal history_;      // circular buffer of past inputs
  std::size_t head_ = 0;
};

/// FFT-based linear convolution of x with taps, output trimmed to
/// x.size() with the group delay compensated — the steady-state
/// filtered waveform aligned with the input. Suitable for whole-packet
/// (offline) filtering.
Signal fft_filter(std::span<const Complex> x, std::span<const double> taps);
RealSignal fft_filter(std::span<const double> x, std::span<const double> taps);

}  // namespace saiyan::dsp
