#include "dsp/fft.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <utility>

#include "dsp/simd.hpp"

namespace saiyan::dsp {

std::size_t next_pow2(std::size_t n) {
  if (n <= 1) return 1;
  if (n > std::numeric_limits<std::size_t>::max() / 2 + 1) {
    throw std::overflow_error("next_pow2: result does not fit in size_t");
  }
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_fast_len(std::size_t n) {
  const std::size_t p2 = next_pow2(n);
  // Smallest 3·2^k >= n: next_pow2(ceil(n/3)) >= n/3, so 3x it covers n.
  const std::size_t p3 = 3 * next_pow2(n <= 3 ? 1 : (n + 2) / 3);
  return std::min(p2, p3);
}

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  if (n == 0) throw std::invalid_argument("FftPlan: length must be >= 1");
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    // The bit-reversal table stores 32-bit indices; reject rather than
    // silently truncate (such a transform would need >64 GiB anyway).
    throw std::invalid_argument("FftPlan: length exceeds 2^32");
  }
  if (pow2_) {
    bitrev_.resize(n);
    bitrev_[0] = 0;
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      bitrev_[i] = static_cast<std::uint32_t>(j);
    }
    const std::size_t half = n / 2;
    twiddle_fwd_.resize(half);
    for (std::size_t k = 0; k < half; ++k) {
      const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
      twiddle_fwd_[k] = Complex(std::cos(ang), std::sin(ang));
    }
    // Per-pass twiddles laid out in traversal order so the transform
    // reads the tables strictly sequentially instead of striding
    // through twiddle_fwd_.
    std::size_t log2n = 0;
    while ((std::size_t{1} << log2n) < n) ++log2n;
    std::size_t m = (log2n & 1) ? 2 : 1;
    while (m < n) {
      const std::size_t len = 4 * m;
      const std::size_t s = n / len;
      if (m > 1) {  // the m == 1 pass is twiddle-free (all w = 1)
        for (std::size_t k = 0; k < m; ++k) {
          stage_twa_.push_back(twiddle_fwd_[2 * s * k]);
          stage_twb_.push_back(twiddle_fwd_[s * k]);
        }
      }
      m = len;
    }
    if (n >= 4) half_ = fft_plan(n / 2);
    return;
  }

  if (n % 3 == 0 && is_pow2(n / 3)) {
    // Radix-3 split: X[k], X[k+m], X[k+2m] from three m = n/3
    // power-of-two sub-transforms over the decimated sequences
    // x[3j], x[3j+1], x[3j+2], combined with the twiddles w^k, w^2k.
    radix3_ = true;
    const std::size_t m = n / 3;
    third_ = fft_plan(m);
    tw3_.resize(2 * m);
    for (std::size_t k = 0; k < m; ++k) {
      const double a1 = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
      const double a2 =
          -kTwoPi * static_cast<double>(2 * k % n) / static_cast<double>(n);
      tw3_[2 * k] = Complex(std::cos(a1), std::sin(a1));
      tw3_[2 * k + 1] = Complex(std::cos(a2), std::sin(a2));
    }
    return;
  }

  // Bluestein: an N-point DFT as a circular convolution of length
  // m >= 2N-1. The chirp and the transformed kernel depend only on N,
  // so both are computed once here and reused for every transform.
  m_ = next_pow2(2 * n - 1);
  conv_ = fft_plan(m_);
  chirp_fwd_.resize(n);
  chirp_inv_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // exp(sign·iπk²/n); k² is reduced mod 2n to keep the argument small.
    const std::size_t k2 = (static_cast<unsigned long long>(k) * k) % (2 * n);
    const double ang = kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp_fwd_[k] = Complex(std::cos(ang), -std::sin(ang));
    chirp_inv_[k] = std::conj(chirp_fwd_[k]);
  }
  auto kernel_spectrum = [&](const Signal& chirp) {
    Signal b(m_, Complex{});
    for (std::size_t k = 0; k < n; ++k) b[k] = std::conj(chirp[k]);
    for (std::size_t k = 1; k < n; ++k) b[m_ - k] = b[k];
    conv_->forward(b);
    return b;
  };
  bspec_fwd_ = kernel_spectrum(chirp_fwd_);
  bspec_inv_ = kernel_spectrum(chirp_inv_);
}

namespace {

// Scalar radix-3 combine over k in [k0, m) — the reference kernel the
// AVX2 variant must match bit for bit, and the tail path it falls back
// to for the odd final k. w3 = exp(∓2πi/3) = -1/2 ∓ i·√3/2; the ±h
// terms realize the w3/w3² cross-multiplications without complex
// products.
void radix3_combine_scalar_range(Complex* outc, const Complex* s,
                                 const Complex* tw, std::size_t m,
                                 std::size_t k0, bool inverse) {
  double* out = reinterpret_cast<double*>(outc);
  const double* sd = reinterpret_cast<const double*>(s);
  const double csign = inverse ? -1.0 : 1.0;  // twiddle conjugation
  const double h = (inverse ? 1.0 : -1.0) * 0.86602540378443864676;  // ±√3/2
  for (std::size_t k = k0; k < m; ++k) {
    const double w1r = tw[2 * k].real();
    const double w1i = csign * tw[2 * k].imag();
    const double w2r = tw[2 * k + 1].real();
    const double w2i = csign * tw[2 * k + 1].imag();
    const double ar = sd[2 * k], ai = sd[2 * k + 1];
    const double b0r = sd[2 * (m + k)], b0i = sd[2 * (m + k) + 1];
    const double c0r = sd[2 * (2 * m + k)], c0i = sd[2 * (2 * m + k) + 1];
    const double br = b0r * w1r - b0i * w1i;
    const double bi = b0r * w1i + b0i * w1r;
    const double cr = c0r * w2r - c0i * w2i;
    const double ci = c0r * w2i + c0i * w2r;
    const double t1r = br + cr, t1i = bi + ci;    // B + C
    const double t2r = ar - 0.5 * t1r;            // A - (B+C)/2
    const double t2i = ai - 0.5 * t1i;
    const double dvr = -h * (bi - ci);            // i·h·(B - C)
    const double dvi = h * (br - cr);
    out[2 * k] = ar + t1r;
    out[2 * k + 1] = ai + t1i;
    out[2 * (k + m)] = t2r + dvr;
    out[2 * (k + m) + 1] = t2i + dvi;
    out[2 * (k + 2 * m)] = t2r - dvr;
    out[2 * (k + 2 * m) + 1] = t2i - dvi;
  }
}

// One fused pass (two radix-2 stages) in portable scalar code.
// Butterfly k of each sub-block combines elements k, k+q, k+2q, k+3q;
// twiddle tables are pre-laid-out in access order.
void fused_pass_scalar(double* x, std::size_t n, std::size_t q,
                       const Complex* twa, const Complex* twb, double isign,
                       double csign) {
  const std::size_t len = 4 * q;
  for (std::size_t i = 0; i < n; i += len) {
    double* base = x + 2 * i;
    for (std::size_t k = 0; k < q; ++k) {
      const double war = twa[k].real();
      const double wai = csign * twa[k].imag();
      const double wbr = twb[k].real();
      const double wbi = csign * twb[k].imag();
      double* p0 = base + 2 * k;
      double* p1 = p0 + 2 * q;
      double* p2 = p1 + 2 * q;
      double* p3 = p2 + 2 * q;
      // Inner radix-2 stage on both halves: a = x0 ± wA·x1, x2 ± wA·x3.
      const double t1r = p1[0] * war - p1[1] * wai;
      const double t1i = p1[0] * wai + p1[1] * war;
      const double a0r = p0[0] + t1r, a0i = p0[1] + t1i;
      const double a1r = p0[0] - t1r, a1i = p0[1] - t1i;
      const double t3r = p3[0] * war - p3[1] * wai;
      const double t3i = p3[0] * wai + p3[1] * war;
      const double a2r = p2[0] + t3r, a2i = p2[1] + t3i;
      const double a3r = p2[0] - t3r, a3i = p2[1] - t3i;
      // Outer stage: pairs (0,2) with wB and (1,3) with wB·w_4.
      const double u2r = a2r * wbr - a2i * wbi;
      const double u2i = a2r * wbi + a2i * wbr;
      p0[0] = a0r + u2r;
      p0[1] = a0i + u2i;
      p2[0] = a0r - u2r;
      p2[1] = a0i - u2i;
      const double v3r = a3r * wbr - a3i * wbi;
      const double v3i = a3r * wbi + a3i * wbr;
      const double u3r = -isign * v3i;  // (∓i)·v3
      const double u3i = isign * v3r;
      p1[0] = a1r + u3r;
      p1[1] = a1i + u3i;
      p3[0] = a1r - u3r;
      p3[1] = a1i - u3i;
    }
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
#define SAIYAN_FFT_AVX2 1

// Interleaved complex multiply, two lanes at once: the
// movedup/permute + fmaddsub idiom.
__attribute__((target("avx2,fma"), always_inline)) inline __m256d cmul_avx2(
    __m256d a, __m256d w) {
  const __m256d wre = _mm256_movedup_pd(w);
  const __m256d wim = _mm256_permute_pd(w, 0xF);
  const __m256d aswap = _mm256_permute_pd(a, 0x5);
  return _mm256_fmaddsub_pd(a, wre, _mm256_mul_pd(aswap, wim));
}

// AVX2+FMA variant of the fused pass: two butterflies (four complex
// lanes) per iteration. Compiled with a function-level target
// attribute and selected at runtime, so the default build stays
// portable.
__attribute__((target("avx2,fma"))) void fused_pass_avx2(
    double* x, std::size_t n, std::size_t q, const Complex* twa,
    const Complex* twb, bool inverse) {
  const std::size_t len = 4 * q;
  // Conjugate twiddles for the inverse transform (negate imag lanes).
  const __m256d conj_mask =
      inverse ? _mm256_setr_pd(0.0, -0.0, 0.0, -0.0) : _mm256_setzero_pd();
  // Multiply-by-(∓i) = swap re/im then flip one lane's sign.
  const __m256d i_mask = inverse ? _mm256_setr_pd(-0.0, 0.0, -0.0, 0.0)
                                 : _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
  
  for (std::size_t i = 0; i < n; i += len) {
    double* base = x + 2 * i;
    for (std::size_t k = 0; k < q; k += 2) {
      const __m256d wa = _mm256_xor_pd(
          _mm256_loadu_pd(reinterpret_cast<const double*>(twa + k)), conj_mask);
      const __m256d wb = _mm256_xor_pd(
          _mm256_loadu_pd(reinterpret_cast<const double*>(twb + k)), conj_mask);
      double* p0 = base + 2 * k;
      double* p1 = p0 + 2 * q;
      double* p2 = p1 + 2 * q;
      double* p3 = p2 + 2 * q;
      const __m256d x0 = _mm256_loadu_pd(p0);
      const __m256d x1 = _mm256_loadu_pd(p1);
      const __m256d x2 = _mm256_loadu_pd(p2);
      const __m256d x3 = _mm256_loadu_pd(p3);
      const __m256d t1 = cmul_avx2(x1, wa);
      const __m256d a0 = _mm256_add_pd(x0, t1);
      const __m256d a1 = _mm256_sub_pd(x0, t1);
      const __m256d t3 = cmul_avx2(x3, wa);
      const __m256d a2 = _mm256_add_pd(x2, t3);
      const __m256d a3 = _mm256_sub_pd(x2, t3);
      const __m256d u2 = cmul_avx2(a2, wb);
      _mm256_storeu_pd(p0, _mm256_add_pd(a0, u2));
      _mm256_storeu_pd(p2, _mm256_sub_pd(a0, u2));
      const __m256d v3 = cmul_avx2(a3, wb);
      const __m256d u3 = _mm256_xor_pd(_mm256_permute_pd(v3, 0x5), i_mask);
      _mm256_storeu_pd(p1, _mm256_add_pd(a1, u3));
      _mm256_storeu_pd(p3, _mm256_sub_pd(a1, u3));
    }
  }
}

// FFT dispatch is by CPUID alone (simd::set_isa does not reach it):
// these butterflies use FMA and are allowed to round differently from
// the portable path, unlike the dsp/simd.hpp kernels.
bool have_avx2_fma() { return simd::cpu_has_avx2_fma(); }

// Radix-3 split passes, two k per iteration. De-interleave gathers the
// three decimated sequences with cross-lane permutes; the combine
// keeps the scalar association (mul + addsub instead of fmaddsub), so
// both passes are bit-identical to their scalar references — the
// property the streaming/batch equivalence tests pin at every tail
// length.
__attribute__((target("avx2,fma"))) void radix3_deinterleave_avx2_impl(
    const double* x, double* s, std::size_t m) {
  std::size_t j = 0;
  for (; j + 2 <= m; j += 2) {
    // Six consecutive complex values = three vectors:
    // v0 = [A0 B0], v1 = [C0 A1], v2 = [B1 C1].
    const __m256d v0 = _mm256_loadu_pd(x + 6 * j);
    const __m256d v1 = _mm256_loadu_pd(x + 6 * j + 4);
    const __m256d v2 = _mm256_loadu_pd(x + 6 * j + 8);
    _mm256_storeu_pd(s + 2 * j, _mm256_permute2f128_pd(v0, v1, 0x30));
    _mm256_storeu_pd(s + 2 * (m + j), _mm256_permute2f128_pd(v0, v2, 0x21));
    _mm256_storeu_pd(s + 2 * (2 * m + j), _mm256_permute2f128_pd(v1, v2, 0x30));
  }
  for (; j < m; ++j) {
    s[2 * j] = x[6 * j];
    s[2 * j + 1] = x[6 * j + 1];
    s[2 * (m + j)] = x[6 * j + 2];
    s[2 * (m + j) + 1] = x[6 * j + 3];
    s[2 * (2 * m + j)] = x[6 * j + 4];
    s[2 * (2 * m + j) + 1] = x[6 * j + 5];
  }
}

// Complex multiply with the exact scalar association: separate mul
// passes and one addsub, no FMA. Lane-wise this performs the same IEEE
// operations as (ar·wr − ai·wi, ar·wi + ai·wr), so it is bit-identical
// to the scalar combine. Compiled with target("avx2") — deliberately
// *without* "fma", like the dsp/simd.hpp kernels — because GCC
// contracts even intrinsic mul/add pairs into FMA when the fma target
// is enabled, which would break the bit-equality.
__attribute__((target("avx2"), always_inline)) inline __m256d
cmul_exact_avx2(__m256d a, __m256d w) {
  const __m256d wre = _mm256_movedup_pd(w);
  const __m256d wim = _mm256_permute_pd(w, 0xF);
  const __m256d aswap = _mm256_permute_pd(a, 0x5);
  return _mm256_addsub_pd(_mm256_mul_pd(a, wre), _mm256_mul_pd(aswap, wim));
}

__attribute__((target("avx2"))) void radix3_combine_avx2_impl(
    double* out, const double* sd, const Complex* tw, std::size_t m,
    bool inverse) {
  const __m256d conj_mask =
      inverse ? _mm256_setr_pd(0.0, -0.0, 0.0, -0.0) : _mm256_setzero_pd();
  // i·h·v = h·(−v.im, v.re): swap lanes, negate the re lane, scale.
  const __m256d re_neg = _mm256_setr_pd(-0.0, 0.0, -0.0, 0.0);
  const double h = (inverse ? 1.0 : -1.0) * 0.86602540378443864676;
  const __m256d hv = _mm256_set1_pd(h);
  const __m256d half = _mm256_set1_pd(0.5);
  std::size_t k = 0;
  for (; k + 2 <= m; k += 2) {
    const __m256d ta = _mm256_loadu_pd(reinterpret_cast<const double*>(tw + 2 * k));
    const __m256d tb = _mm256_loadu_pd(reinterpret_cast<const double*>(tw + 2 * k + 2));
    const __m256d w1 =
        _mm256_xor_pd(_mm256_permute2f128_pd(ta, tb, 0x20), conj_mask);
    const __m256d w2 =
        _mm256_xor_pd(_mm256_permute2f128_pd(ta, tb, 0x31), conj_mask);
    const __m256d av = _mm256_loadu_pd(sd + 2 * k);
    const __m256d bv = cmul_exact_avx2(_mm256_loadu_pd(sd + 2 * (m + k)), w1);
    const __m256d cv = cmul_exact_avx2(_mm256_loadu_pd(sd + 2 * (2 * m + k)), w2);
    const __m256d t1 = _mm256_add_pd(bv, cv);
    const __m256d t2 = _mm256_sub_pd(av, _mm256_mul_pd(half, t1));  // A - t1/2
    const __m256d diff = _mm256_sub_pd(bv, cv);
    const __m256d rot = _mm256_xor_pd(_mm256_permute_pd(diff, 0x5), re_neg);
    const __m256d d = _mm256_mul_pd(hv, rot);
    _mm256_storeu_pd(out + 2 * k, _mm256_add_pd(av, t1));
    _mm256_storeu_pd(out + 2 * (k + m), _mm256_add_pd(t2, d));
    _mm256_storeu_pd(out + 2 * (k + 2 * m), _mm256_sub_pd(t2, d));
  }
  if (k < m) {
    // Odd tail: finish with the scalar reference iterations.
    radix3_combine_scalar_range(reinterpret_cast<Complex*>(out),
                                reinterpret_cast<const Complex*>(sd), tw, m, k,
                                inverse);
  }
}
#endif  // SAIYAN_FFT_AVX2

}  // namespace

namespace detail {

void radix3_deinterleave_scalar(const Complex* x, Complex* s, std::size_t m) {
  for (std::size_t j = 0; j < m; ++j) {
    s[j] = x[3 * j];
    s[m + j] = x[3 * j + 1];
    s[2 * m + j] = x[3 * j + 2];
  }
}

bool radix3_deinterleave_avx2(const Complex* x, Complex* s, std::size_t m) {
#ifdef SAIYAN_FFT_AVX2
  if (!have_avx2_fma()) return false;
  radix3_deinterleave_avx2_impl(reinterpret_cast<const double*>(x),
                                reinterpret_cast<double*>(s), m);
  return true;
#else
  (void)x;
  (void)s;
  (void)m;
  return false;
#endif
}

void radix3_combine_scalar(Complex* out, const Complex* s, const Complex* tw,
                           std::size_t m, bool inverse) {
  radix3_combine_scalar_range(out, s, tw, m, 0, inverse);
}

bool radix3_combine_avx2(Complex* out, const Complex* s, const Complex* tw,
                         std::size_t m, bool inverse) {
#ifdef SAIYAN_FFT_AVX2
  if (!have_avx2_fma()) return false;
  radix3_combine_avx2_impl(reinterpret_cast<double*>(out),
                           reinterpret_cast<const double*>(s), tw, m, inverse);
  return true;
#else
  (void)out;
  (void)s;
  (void)tw;
  (void)m;
  (void)inverse;
  return false;
#endif
}

}  // namespace detail

// Butterflies over raw doubles with two radix-2 stages fused per
// memory pass (radix-2² access pattern). std::complex multiplication
// lowers to a libgcc helper call (__muldc3) under default flags;
// operating on the re/im parts directly keeps the loop branch-lean and
// lets the compiler vectorize it. Fusing stage pairs halves the number
// of passes over the working set, which is what the large transforms
// are bound by.
void FftPlan::transform_pow2(Complex* xc, bool inverse) const {
  const std::size_t n = n_;
  double* x = reinterpret_cast<double*>(xc);
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) {
      std::swap(x[2 * i], x[2 * j]);
      std::swap(x[2 * i + 1], x[2 * j + 1]);
    }
  }
  // Sub-transform size already completed; grows 4x per fused pass.
  std::size_t m = 1;
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  if (log2n & 1) {
    // Odd number of stages: one plain radix-2 pass (w = 1 throughout).
    for (std::size_t i = 0; i < n; i += 2) {
      double* a = x + 2 * i;
      const double br = a[2];
      const double bi = a[3];
      const double ar = a[0];
      const double ai = a[1];
      a[0] = ar + br;
      a[1] = ai + bi;
      a[2] = ar - br;
      a[3] = ai - bi;
    }
    m = 2;
  }
  // w_4 = exp(∓iπ/2): multiply by -i (forward) / +i (inverse). The
  // inverse transform reuses the forward tables with conjugated
  // twiddles (imag parts negated on the fly).
  const double isign = inverse ? 1.0 : -1.0;
  const double csign = inverse ? -1.0 : 1.0;
  if (m == 1 && m < n) {
    // First fused pass: every twiddle is 1 — pure 4-point butterflies.
    for (std::size_t i = 0; i < n; i += 4) {
      double* p = x + 2 * i;
      const double a0r = p[0] + p[2], a0i = p[1] + p[3];
      const double a1r = p[0] - p[2], a1i = p[1] - p[3];
      const double a2r = p[4] + p[6], a2i = p[5] + p[7];
      const double a3r = p[4] - p[6], a3i = p[5] - p[7];
      p[0] = a0r + a2r;
      p[1] = a0i + a2i;
      p[4] = a0r - a2r;
      p[5] = a0i - a2i;
      const double u3r = -isign * a3i;
      const double u3i = isign * a3r;
      p[2] = a1r + u3r;
      p[3] = a1i + u3i;
      p[6] = a1r - u3r;
      p[7] = a1i - u3i;
    }
    m = 4;
  }
  const Complex* twa = stage_twa_.data();
  const Complex* twb = stage_twb_.data();
  while (m < n) {
    const std::size_t q = m;  // quarter of the new sub-size
#ifdef SAIYAN_FFT_AVX2
    if (q >= 2 && have_avx2_fma()) {
      fused_pass_avx2(x, n, q, twa, twb, inverse);
    } else {
      fused_pass_scalar(x, n, q, twa, twb, isign, csign);
    }
#else
    fused_pass_scalar(x, n, q, twa, twb, isign, csign);
#endif
    twa += q;
    twb += q;
    m = 4 * q;
  }
}

// Radix-3 DIT split for n = 3·2^k. Scratch holds the three decimated
// sequences contiguously; each runs the iterative power-of-two kernel
// and the results are combined with the precomputed w^k / w^2k
// twiddles (conjugated on the fly for the inverse). Both split passes
// dispatch to AVX2 variants that are bit-identical to the scalar
// references (detail::radix3_*), so the radix-3 spectrum — unlike the
// FMA radix-2 butterflies — is ISA-invariant.
void FftPlan::transform_radix3(Signal& x, Signal& scratch, bool inverse) const {
  const std::size_t m = n_ / 3;
  scratch.resize(n_);
  Complex* s = scratch.data();
  if (!detail::radix3_deinterleave_avx2(x.data(), s, m)) {
    detail::radix3_deinterleave_scalar(x.data(), s, m);
  }
  third_->transform_pow2(s, inverse);
  third_->transform_pow2(s + m, inverse);
  third_->transform_pow2(s + 2 * m, inverse);

  if (!detail::radix3_combine_avx2(x.data(), s, tw3_.data(), m, inverse)) {
    detail::radix3_combine_scalar(x.data(), s, tw3_.data(), m, inverse);
  }
}

void FftPlan::bluestein(Signal& x, bool inverse) const {
  const std::size_t n = n_;
  const Signal& chirp = inverse ? chirp_inv_ : chirp_fwd_;
  const Signal& bspec = inverse ? bspec_inv_ : bspec_fwd_;
  Signal a(m_, Complex{});
  for (std::size_t k = 0; k < n; ++k) {
    const double xr = x[k].real();
    const double xi = x[k].imag();
    const double cr = chirp[k].real();
    const double ci = chirp[k].imag();
    a[k] = Complex(xr * cr - xi * ci, xr * ci + xi * cr);
  }
  conv_->forward(a);
  for (std::size_t k = 0; k < m_; ++k) {
    const double ar = a[k].real();
    const double ai = a[k].imag();
    const double br = bspec[k].real();
    const double bi = bspec[k].imag();
    a[k] = Complex(ar * br - ai * bi, ar * bi + ai * br);
  }
  conv_->inverse(a);
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = a[k].real();
    const double ai = a[k].imag();
    const double cr = chirp[k].real();
    const double ci = chirp[k].imag();
    x[k] = Complex(ar * cr - ai * ci, ar * ci + ai * cr);
  }
}

void FftPlan::forward(Signal& x, Signal& scratch) const {
  if (x.size() != n_) throw std::invalid_argument("FftPlan::forward: size mismatch");
  if (pow2_) {
    transform_pow2(x.data(), false);
  } else if (radix3_) {
    transform_radix3(x, scratch, false);
  } else {
    bluestein(x, false);
  }
}

void FftPlan::inverse_raw(Signal& x, Signal& scratch) const {
  if (x.size() != n_) throw std::invalid_argument("FftPlan::inverse: size mismatch");
  if (pow2_) {
    transform_pow2(x.data(), true);
  } else if (radix3_) {
    transform_radix3(x, scratch, true);
  } else {
    bluestein(x, true);
  }
}

void FftPlan::inverse(Signal& x, Signal& scratch) const {
  inverse_raw(x, scratch);
  const double scale = 1.0 / static_cast<double>(n_);
  for (Complex& v : x) v *= scale;
}

namespace {

// Fallback scratch for the no-scratch overloads: per-thread so the
// radix-3 de-interleave does not allocate (and page-fault) per
// transform. Callers on the zero-allocation path pass their own.
Signal& thread_scratch() {
  thread_local Signal scratch;
  return scratch;
}

}  // namespace

void FftPlan::forward(Signal& x) const { forward(x, thread_scratch()); }

void FftPlan::inverse(Signal& x) const { inverse(x, thread_scratch()); }

void FftPlan::forward_real(std::span<const double> x, Signal& out) const {
  forward_real(x, out, thread_scratch());
}

void FftPlan::forward_real(std::span<const double> x, Signal& out,
                           Signal& scratch) const {
  if (x.size() > n_) {
    throw std::invalid_argument("FftPlan::forward_real: input longer than plan");
  }
  if (!pow2_ || n_ < 4) {
    out.assign(n_, Complex{});
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = Complex(x[i], 0.0);
    forward(out, scratch);
    return;
  }
  // Pack even/odd real samples into one half-length complex signal:
  // z[j] = x[2j] + i·x[2j+1]. One n/2-point transform then untangles
  // into the even/odd spectra E, O and recombines X = E + w^k·O.
  const std::size_t h = n_ / 2;
  Signal& z = scratch;
  z.assign(h, Complex{});
  for (std::size_t j = 0; 2 * j < x.size(); ++j) {
    const double re = x[2 * j];
    const double im = (2 * j + 1 < x.size()) ? x[2 * j + 1] : 0.0;
    z[j] = Complex(re, im);
  }
  half_->forward(z);
  out.resize(n_);
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t kk = (h - k) & (h - 1);
    const Complex zk = z[k];
    const Complex zc = std::conj(z[kk]);
    const double er = 0.5 * (zk.real() + zc.real());
    const double ei = 0.5 * (zk.imag() + zc.imag());
    const double dr = 0.5 * (zk.real() - zc.real());
    const double di = 0.5 * (zk.imag() - zc.imag());
    // O = -i·(zk - zc)/2 = (di, -dr)
    const double wr = twiddle_fwd_[k].real();
    const double wi = twiddle_fwd_[k].imag();
    const double tr = di * wr + dr * wi;   // (O·w).re
    const double ti = -dr * wr + di * wi;  // (O·w).im
    out[k] = Complex(er + tr, ei + ti);
    out[k + h] = Complex(er - tr, ei - ti);
  }
}

std::shared_ptr<const FftPlan> fft_plan(std::size_t n) {
  static std::shared_mutex mu;
  static std::map<std::size_t, std::shared_ptr<const FftPlan>> cache;
  {
    // Steady-state path: a shared (read) lock only, so SweepEngine
    // workers looking up the same few plans never serialize on the
    // cache — the exclusive lock is paid once per distinct length.
    std::shared_lock<std::shared_mutex> lock(mu);
    auto it = cache.find(n);
    if (it != cache.end()) return it->second;
  }
  // Built outside any lock: plan construction recurses into fft_plan
  // for the half-size / radix-3 / Bluestein sub-plans. Losing the
  // insertion race just discards the duplicate plan.
  auto plan = std::make_shared<const FftPlan>(n);
  std::unique_lock<std::shared_mutex> lock(mu);
  auto [it, inserted] = cache.emplace(n, std::move(plan));
  return it->second;
}

void fft_inplace(Signal& x) {
  if (x.empty()) throw std::invalid_argument("fft: empty input");
  fft_plan(x.size())->forward(x);
}

void ifft_inplace(Signal& x) {
  if (x.empty()) throw std::invalid_argument("ifft: empty input");
  fft_plan(x.size())->inverse(x);
}

Signal fft(Signal x) {
  fft_inplace(x);
  return x;
}

Signal ifft(Signal x) {
  ifft_inplace(x);
  return x;
}

double bin_frequency(std::size_t k, std::size_t n, double fs) {
  if (n == 0) throw std::invalid_argument("bin_frequency: n must be > 0");
  const double f = static_cast<double>(k) * fs / static_cast<double>(n);
  return (k < (n + 1) / 2) ? f : f - fs;
}

}  // namespace saiyan::dsp
