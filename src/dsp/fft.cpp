#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace saiyan::dsp {
namespace {

// Iterative radix-2 Cooley–Tukey; length must be a power of two.
void fft_radix2(Signal& x, bool inverse) {
  const std::size_t n = x.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein chirp-z transform for arbitrary lengths: expresses an
// N-point DFT as a circular convolution of length >= 2N-1.
void fft_bluestein(Signal& x, bool inverse) {
  const std::size_t n = x.size();
  const std::size_t m = next_pow2(2 * n - 1);
  const double sign = inverse ? 1.0 : -1.0;

  Signal a(m, Complex{});
  Signal b(m, Complex{});
  Signal chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // exp(sign * i*pi*k^2/n); compute k^2 mod 2n to keep the argument small.
    const std::size_t k2 = (static_cast<unsigned long long>(k) * k) % (2 * n);
    const double angle = sign * kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
    a[k] = x[k] * chirp[k];
    b[k] = std::conj(chirp[k]);
  }
  for (std::size_t k = 1; k < n; ++k) b[m - k] = b[k];

  fft_radix2(a, false);
  fft_radix2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_radix2(a, true);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    x[k] = a[k] * scale * chirp[k];
  }
}

}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft_inplace(Signal& x) {
  if (x.empty()) throw std::invalid_argument("fft: empty input");
  if (is_pow2(x.size())) {
    fft_radix2(x, false);
  } else {
    fft_bluestein(x, false);
  }
}

void ifft_inplace(Signal& x) {
  if (x.empty()) throw std::invalid_argument("ifft: empty input");
  if (is_pow2(x.size())) {
    fft_radix2(x, true);
  } else {
    fft_bluestein(x, true);
  }
  const double scale = 1.0 / static_cast<double>(x.size());
  for (Complex& v : x) v *= scale;
}

Signal fft(Signal x) {
  fft_inplace(x);
  return x;
}

Signal ifft(Signal x) {
  ifft_inplace(x);
  return x;
}

double bin_frequency(std::size_t k, std::size_t n, double fs) {
  if (n == 0) throw std::invalid_argument("bin_frequency: n must be > 0");
  const double f = static_cast<double>(k) * fs / static_cast<double>(n);
  return (k < (n + 1) / 2) ? f : f - fs;
}

}  // namespace saiyan::dsp
