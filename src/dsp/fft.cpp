#include "dsp/fft.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace saiyan::dsp {

std::size_t next_pow2(std::size_t n) {
  if (n <= 1) return 1;
  if (n > std::numeric_limits<std::size_t>::max() / 2 + 1) {
    throw std::overflow_error("next_pow2: result does not fit in size_t");
  }
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  if (n == 0) throw std::invalid_argument("FftPlan: length must be >= 1");
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    // The bit-reversal table stores 32-bit indices; reject rather than
    // silently truncate (such a transform would need >64 GiB anyway).
    throw std::invalid_argument("FftPlan: length exceeds 2^32");
  }
  if (pow2_) {
    bitrev_.resize(n);
    bitrev_[0] = 0;
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      bitrev_[i] = static_cast<std::uint32_t>(j);
    }
    const std::size_t half = n / 2;
    twiddle_fwd_.resize(half);
    for (std::size_t k = 0; k < half; ++k) {
      const double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
      twiddle_fwd_[k] = Complex(std::cos(ang), std::sin(ang));
    }
    // Per-pass twiddles laid out in traversal order so the transform
    // reads the tables strictly sequentially instead of striding
    // through twiddle_fwd_.
    std::size_t log2n = 0;
    while ((std::size_t{1} << log2n) < n) ++log2n;
    std::size_t m = (log2n & 1) ? 2 : 1;
    while (m < n) {
      const std::size_t len = 4 * m;
      const std::size_t s = n / len;
      if (m > 1) {  // the m == 1 pass is twiddle-free (all w = 1)
        for (std::size_t k = 0; k < m; ++k) {
          stage_twa_.push_back(twiddle_fwd_[2 * s * k]);
          stage_twb_.push_back(twiddle_fwd_[s * k]);
        }
      }
      m = len;
    }
    if (n >= 4) half_ = fft_plan(n / 2);
    return;
  }

  // Bluestein: an N-point DFT as a circular convolution of length
  // m >= 2N-1. The chirp and the transformed kernel depend only on N,
  // so both are computed once here and reused for every transform.
  m_ = next_pow2(2 * n - 1);
  conv_ = fft_plan(m_);
  chirp_fwd_.resize(n);
  chirp_inv_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // exp(sign·iπk²/n); k² is reduced mod 2n to keep the argument small.
    const std::size_t k2 = (static_cast<unsigned long long>(k) * k) % (2 * n);
    const double ang = kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp_fwd_[k] = Complex(std::cos(ang), -std::sin(ang));
    chirp_inv_[k] = std::conj(chirp_fwd_[k]);
  }
  auto kernel_spectrum = [&](const Signal& chirp) {
    Signal b(m_, Complex{});
    for (std::size_t k = 0; k < n; ++k) b[k] = std::conj(chirp[k]);
    for (std::size_t k = 1; k < n; ++k) b[m_ - k] = b[k];
    conv_->forward(b);
    return b;
  };
  bspec_fwd_ = kernel_spectrum(chirp_fwd_);
  bspec_inv_ = kernel_spectrum(chirp_inv_);
}

namespace {

// One fused pass (two radix-2 stages) in portable scalar code.
// Butterfly k of each sub-block combines elements k, k+q, k+2q, k+3q;
// twiddle tables are pre-laid-out in access order.
void fused_pass_scalar(double* x, std::size_t n, std::size_t q,
                       const Complex* twa, const Complex* twb, double isign,
                       double csign) {
  const std::size_t len = 4 * q;
  for (std::size_t i = 0; i < n; i += len) {
    double* base = x + 2 * i;
    for (std::size_t k = 0; k < q; ++k) {
      const double war = twa[k].real();
      const double wai = csign * twa[k].imag();
      const double wbr = twb[k].real();
      const double wbi = csign * twb[k].imag();
      double* p0 = base + 2 * k;
      double* p1 = p0 + 2 * q;
      double* p2 = p1 + 2 * q;
      double* p3 = p2 + 2 * q;
      // Inner radix-2 stage on both halves: a = x0 ± wA·x1, x2 ± wA·x3.
      const double t1r = p1[0] * war - p1[1] * wai;
      const double t1i = p1[0] * wai + p1[1] * war;
      const double a0r = p0[0] + t1r, a0i = p0[1] + t1i;
      const double a1r = p0[0] - t1r, a1i = p0[1] - t1i;
      const double t3r = p3[0] * war - p3[1] * wai;
      const double t3i = p3[0] * wai + p3[1] * war;
      const double a2r = p2[0] + t3r, a2i = p2[1] + t3i;
      const double a3r = p2[0] - t3r, a3i = p2[1] - t3i;
      // Outer stage: pairs (0,2) with wB and (1,3) with wB·w_4.
      const double u2r = a2r * wbr - a2i * wbi;
      const double u2i = a2r * wbi + a2i * wbr;
      p0[0] = a0r + u2r;
      p0[1] = a0i + u2i;
      p2[0] = a0r - u2r;
      p2[1] = a0i - u2i;
      const double v3r = a3r * wbr - a3i * wbi;
      const double v3i = a3r * wbi + a3i * wbr;
      const double u3r = -isign * v3i;  // (∓i)·v3
      const double u3i = isign * v3r;
      p1[0] = a1r + u3r;
      p1[1] = a1i + u3i;
      p3[0] = a1r - u3r;
      p3[1] = a1i - u3i;
    }
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
#define SAIYAN_FFT_AVX2 1

// Interleaved complex multiply, two lanes at once: the
// movedup/permute + fmaddsub idiom.
__attribute__((target("avx2,fma"), always_inline)) inline __m256d cmul_avx2(
    __m256d a, __m256d w) {
  const __m256d wre = _mm256_movedup_pd(w);
  const __m256d wim = _mm256_permute_pd(w, 0xF);
  const __m256d aswap = _mm256_permute_pd(a, 0x5);
  return _mm256_fmaddsub_pd(a, wre, _mm256_mul_pd(aswap, wim));
}

// AVX2+FMA variant of the fused pass: two butterflies (four complex
// lanes) per iteration. Compiled with a function-level target
// attribute and selected at runtime, so the default build stays
// portable.
__attribute__((target("avx2,fma"))) void fused_pass_avx2(
    double* x, std::size_t n, std::size_t q, const Complex* twa,
    const Complex* twb, bool inverse) {
  const std::size_t len = 4 * q;
  // Conjugate twiddles for the inverse transform (negate imag lanes).
  const __m256d conj_mask =
      inverse ? _mm256_setr_pd(0.0, -0.0, 0.0, -0.0) : _mm256_setzero_pd();
  // Multiply-by-(∓i) = swap re/im then flip one lane's sign.
  const __m256d i_mask = inverse ? _mm256_setr_pd(-0.0, 0.0, -0.0, 0.0)
                                 : _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
  
  for (std::size_t i = 0; i < n; i += len) {
    double* base = x + 2 * i;
    for (std::size_t k = 0; k < q; k += 2) {
      const __m256d wa = _mm256_xor_pd(
          _mm256_loadu_pd(reinterpret_cast<const double*>(twa + k)), conj_mask);
      const __m256d wb = _mm256_xor_pd(
          _mm256_loadu_pd(reinterpret_cast<const double*>(twb + k)), conj_mask);
      double* p0 = base + 2 * k;
      double* p1 = p0 + 2 * q;
      double* p2 = p1 + 2 * q;
      double* p3 = p2 + 2 * q;
      const __m256d x0 = _mm256_loadu_pd(p0);
      const __m256d x1 = _mm256_loadu_pd(p1);
      const __m256d x2 = _mm256_loadu_pd(p2);
      const __m256d x3 = _mm256_loadu_pd(p3);
      const __m256d t1 = cmul_avx2(x1, wa);
      const __m256d a0 = _mm256_add_pd(x0, t1);
      const __m256d a1 = _mm256_sub_pd(x0, t1);
      const __m256d t3 = cmul_avx2(x3, wa);
      const __m256d a2 = _mm256_add_pd(x2, t3);
      const __m256d a3 = _mm256_sub_pd(x2, t3);
      const __m256d u2 = cmul_avx2(a2, wb);
      _mm256_storeu_pd(p0, _mm256_add_pd(a0, u2));
      _mm256_storeu_pd(p2, _mm256_sub_pd(a0, u2));
      const __m256d v3 = cmul_avx2(a3, wb);
      const __m256d u3 = _mm256_xor_pd(_mm256_permute_pd(v3, 0x5), i_mask);
      _mm256_storeu_pd(p1, _mm256_add_pd(a1, u3));
      _mm256_storeu_pd(p3, _mm256_sub_pd(a1, u3));
    }
  }
}

bool have_avx2_fma() {
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
}
#endif  // SAIYAN_FFT_AVX2

}  // namespace

// Butterflies over raw doubles with two radix-2 stages fused per
// memory pass (radix-2² access pattern). std::complex multiplication
// lowers to a libgcc helper call (__muldc3) under default flags;
// operating on the re/im parts directly keeps the loop branch-lean and
// lets the compiler vectorize it. Fusing stage pairs halves the number
// of passes over the working set, which is what the large transforms
// are bound by.
void FftPlan::transform_pow2(Complex* xc, bool inverse) const {
  const std::size_t n = n_;
  double* x = reinterpret_cast<double*>(xc);
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) {
      std::swap(x[2 * i], x[2 * j]);
      std::swap(x[2 * i + 1], x[2 * j + 1]);
    }
  }
  // Sub-transform size already completed; grows 4x per fused pass.
  std::size_t m = 1;
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  if (log2n & 1) {
    // Odd number of stages: one plain radix-2 pass (w = 1 throughout).
    for (std::size_t i = 0; i < n; i += 2) {
      double* a = x + 2 * i;
      const double br = a[2];
      const double bi = a[3];
      const double ar = a[0];
      const double ai = a[1];
      a[0] = ar + br;
      a[1] = ai + bi;
      a[2] = ar - br;
      a[3] = ai - bi;
    }
    m = 2;
  }
  // w_4 = exp(∓iπ/2): multiply by -i (forward) / +i (inverse). The
  // inverse transform reuses the forward tables with conjugated
  // twiddles (imag parts negated on the fly).
  const double isign = inverse ? 1.0 : -1.0;
  const double csign = inverse ? -1.0 : 1.0;
  if (m == 1 && m < n) {
    // First fused pass: every twiddle is 1 — pure 4-point butterflies.
    for (std::size_t i = 0; i < n; i += 4) {
      double* p = x + 2 * i;
      const double a0r = p[0] + p[2], a0i = p[1] + p[3];
      const double a1r = p[0] - p[2], a1i = p[1] - p[3];
      const double a2r = p[4] + p[6], a2i = p[5] + p[7];
      const double a3r = p[4] - p[6], a3i = p[5] - p[7];
      p[0] = a0r + a2r;
      p[1] = a0i + a2i;
      p[4] = a0r - a2r;
      p[5] = a0i - a2i;
      const double u3r = -isign * a3i;
      const double u3i = isign * a3r;
      p[2] = a1r + u3r;
      p[3] = a1i + u3i;
      p[6] = a1r - u3r;
      p[7] = a1i - u3i;
    }
    m = 4;
  }
  const Complex* twa = stage_twa_.data();
  const Complex* twb = stage_twb_.data();
  while (m < n) {
    const std::size_t q = m;  // quarter of the new sub-size
#ifdef SAIYAN_FFT_AVX2
    if (q >= 2 && have_avx2_fma()) {
      fused_pass_avx2(x, n, q, twa, twb, inverse);
    } else {
      fused_pass_scalar(x, n, q, twa, twb, isign, csign);
    }
#else
    fused_pass_scalar(x, n, q, twa, twb, isign, csign);
#endif
    twa += q;
    twb += q;
    m = 4 * q;
  }
}

void FftPlan::bluestein(Signal& x, bool inverse) const {
  const std::size_t n = n_;
  const Signal& chirp = inverse ? chirp_inv_ : chirp_fwd_;
  const Signal& bspec = inverse ? bspec_inv_ : bspec_fwd_;
  Signal a(m_, Complex{});
  for (std::size_t k = 0; k < n; ++k) {
    const double xr = x[k].real();
    const double xi = x[k].imag();
    const double cr = chirp[k].real();
    const double ci = chirp[k].imag();
    a[k] = Complex(xr * cr - xi * ci, xr * ci + xi * cr);
  }
  conv_->forward(a);
  for (std::size_t k = 0; k < m_; ++k) {
    const double ar = a[k].real();
    const double ai = a[k].imag();
    const double br = bspec[k].real();
    const double bi = bspec[k].imag();
    a[k] = Complex(ar * br - ai * bi, ar * bi + ai * br);
  }
  conv_->inverse(a);
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = a[k].real();
    const double ai = a[k].imag();
    const double cr = chirp[k].real();
    const double ci = chirp[k].imag();
    x[k] = Complex(ar * cr - ai * ci, ar * ci + ai * cr);
  }
}

void FftPlan::forward(Signal& x) const {
  if (x.size() != n_) throw std::invalid_argument("FftPlan::forward: size mismatch");
  if (pow2_) {
    transform_pow2(x.data(), false);
  } else {
    bluestein(x, false);
  }
}

void FftPlan::inverse(Signal& x) const {
  if (x.size() != n_) throw std::invalid_argument("FftPlan::inverse: size mismatch");
  if (pow2_) {
    transform_pow2(x.data(), true);
  } else {
    bluestein(x, true);
  }
  const double scale = 1.0 / static_cast<double>(n_);
  for (Complex& v : x) v *= scale;
}

void FftPlan::forward_real(std::span<const double> x, Signal& out) const {
  if (x.size() > n_) {
    throw std::invalid_argument("FftPlan::forward_real: input longer than plan");
  }
  if (!pow2_ || n_ < 4) {
    out.assign(n_, Complex{});
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = Complex(x[i], 0.0);
    forward(out);
    return;
  }
  // Pack even/odd real samples into one half-length complex signal:
  // z[j] = x[2j] + i·x[2j+1]. One n/2-point transform then untangles
  // into the even/odd spectra E, O and recombines X = E + w^k·O.
  const std::size_t h = n_ / 2;
  Signal z(h, Complex{});
  for (std::size_t j = 0; 2 * j < x.size(); ++j) {
    const double re = x[2 * j];
    const double im = (2 * j + 1 < x.size()) ? x[2 * j + 1] : 0.0;
    z[j] = Complex(re, im);
  }
  half_->forward(z);
  out.resize(n_);
  for (std::size_t k = 0; k < h; ++k) {
    const std::size_t kk = (h - k) & (h - 1);
    const Complex zk = z[k];
    const Complex zc = std::conj(z[kk]);
    const double er = 0.5 * (zk.real() + zc.real());
    const double ei = 0.5 * (zk.imag() + zc.imag());
    const double dr = 0.5 * (zk.real() - zc.real());
    const double di = 0.5 * (zk.imag() - zc.imag());
    // O = -i·(zk - zc)/2 = (di, -dr)
    const double wr = twiddle_fwd_[k].real();
    const double wi = twiddle_fwd_[k].imag();
    const double tr = di * wr + dr * wi;   // (O·w).re
    const double ti = -dr * wr + di * wi;  // (O·w).im
    out[k] = Complex(er + tr, ei + ti);
    out[k + h] = Complex(er - tr, ei - ti);
  }
}

std::shared_ptr<const FftPlan> fft_plan(std::size_t n) {
  static std::mutex mu;
  static std::map<std::size_t, std::shared_ptr<const FftPlan>> cache;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(n);
    if (it != cache.end()) return it->second;
  }
  // Built outside the lock: plan construction recurses into fft_plan
  // for the half-size and Bluestein convolution plans.
  auto plan = std::make_shared<const FftPlan>(n);
  std::lock_guard<std::mutex> lock(mu);
  auto [it, inserted] = cache.emplace(n, std::move(plan));
  return it->second;
}

void fft_inplace(Signal& x) {
  if (x.empty()) throw std::invalid_argument("fft: empty input");
  fft_plan(x.size())->forward(x);
}

void ifft_inplace(Signal& x) {
  if (x.empty()) throw std::invalid_argument("ifft: empty input");
  fft_plan(x.size())->inverse(x);
}

Signal fft(Signal x) {
  fft_inplace(x);
  return x;
}

Signal ifft(Signal x) {
  ifft_inplace(x);
  return x;
}

double bin_frequency(std::size_t k, std::size_t n, double fs) {
  if (n == 0) throw std::invalid_argument("bin_frequency: n must be > 0");
  const double f = static_cast<double>(k) * fs / static_cast<double>(n);
  return (k < (n + 1) / 2) ? f : f - fs;
}

}  // namespace saiyan::dsp
