// Cross-correlation — the primitive behind Saiyan's correlation
// decoder (§3.2) and PLoRa's packet detector.
#pragma once

#include <span>

#include "dsp/types.hpp"

namespace saiyan::dsp {

/// Result of a correlation peak search.
struct CorrelationPeak {
  std::size_t lag = 0;     ///< offset of the template into the signal
  double value = 0.0;      ///< |correlation| at the peak
  double normalized = 0.0; ///< peak normalized to [0,1] by local energy
};

/// FFT-based sliding cross-correlation of `x` against `tmpl`
/// (template conjugated). Output length is x.size() - tmpl.size() + 1
/// (valid lags only); empty if the template is longer than the signal.
RealSignal cross_correlate(std::span<const Complex> x, std::span<const Complex> tmpl);

/// Real-valued sliding cross-correlation (valid lags). Magnitudes.
RealSignal cross_correlate(std::span<const double> x, std::span<const double> tmpl);

/// Signed real sliding cross-correlation (valid lags) — preserves the
/// sign so anti-correlated windows score negative.
RealSignal cross_correlate_signed(std::span<const double> x,
                                  std::span<const double> tmpl);

/// Find the strongest normalized correlation peak of tmpl in x.
/// `normalized` is |corr| / (||x_window|| · ||tmpl||) — 1.0 for a
/// perfect scaled match.
CorrelationPeak find_peak(std::span<const Complex> x, std::span<const Complex> tmpl);
CorrelationPeak find_peak(std::span<const double> x, std::span<const double> tmpl);

}  // namespace saiyan::dsp
