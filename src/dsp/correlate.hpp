// Cross-correlation — the primitive behind Saiyan's correlation
// decoder (§3.2) and PLoRa's packet detector.
//
// Two interfaces:
//   * free functions — one-shot correlation; the real-input overloads
//     pack both sequences into a single complex transform;
//   * PreparedTemplate — transforms the template once and reuses its
//     spectrum plus the FFT workspace across calls. This is the hot
//     path for the Monte-Carlo sweeps, where the same reference
//     template is correlated against thousands of received windows.
#pragma once

#include <span>

#include "dsp/types.hpp"

namespace saiyan::dsp {

/// Result of a correlation peak search.
struct CorrelationPeak {
  std::size_t lag = 0;     ///< offset of the template into the signal
  double value = 0.0;      ///< |correlation| at the peak
  double normalized = 0.0; ///< peak normalized to [0,1] by local energy
};

/// FFT-based sliding cross-correlation of `x` against `tmpl`
/// (template conjugated). Output length is x.size() - tmpl.size() + 1
/// (valid lags only); empty if the template is longer than the signal.
RealSignal cross_correlate(std::span<const Complex> x, std::span<const Complex> tmpl);

/// Real-valued sliding cross-correlation (valid lags). Magnitudes.
RealSignal cross_correlate(std::span<const double> x, std::span<const double> tmpl);

/// Signed real sliding cross-correlation (valid lags) — preserves the
/// sign so anti-correlated windows score negative.
RealSignal cross_correlate_signed(std::span<const double> x,
                                  std::span<const double> tmpl);

/// Find the strongest normalized correlation peak of tmpl in x.
/// `normalized` is |corr| / (||x_window|| · ||tmpl||) — 1.0 for a
/// perfect scaled match.
CorrelationPeak find_peak(std::span<const Complex> x, std::span<const Complex> tmpl);
CorrelationPeak find_peak(std::span<const double> x, std::span<const double> tmpl);

/// A correlation template prepared for repeated use: the conjugated,
/// time-reversed template spectrum is computed once per FFT length and
/// the transform workspace is reused across calls, so each correlation
/// costs one forward and one inverse transform and zero allocations in
/// the steady state.
///
/// Not thread-safe (the spectrum/workspace caches are mutable); give
/// each worker thread its own instance.
class PreparedTemplate {
 public:
  explicit PreparedTemplate(std::span<const double> tmpl);
  explicit PreparedTemplate(std::span<const Complex> tmpl);

  std::size_t size() const { return t_len_; }
  double energy() const { return energy_; }

  /// |correlation| over valid lags; matches cross_correlate().
  RealSignal correlate(std::span<const double> x) const;
  RealSignal correlate(std::span<const Complex> x) const;

  /// Signed real correlation; matches cross_correlate_signed().
  RealSignal correlate_signed(std::span<const double> x) const;

  /// correlate_signed into a caller-owned buffer (zero-allocation
  /// path); `out` is left empty when x is shorter than the template.
  void correlate_signed_into(std::span<const double> x, RealSignal& out) const;

  /// Peak search with the same normalization as the free find_peak().
  CorrelationPeak find_peak(std::span<const double> x) const;
  CorrelationPeak find_peak(std::span<const Complex> x) const;

 private:
  /// Spectrum of the conj-reversed template at transform length n
  /// (cached for the most recent n).
  const Signal& spectrum_for(std::size_t n) const;

  /// Product of the transformed input and the template spectrum,
  /// inverse-transformed into work_. Returns false when x is shorter
  /// than the template.
  bool correlate_core(std::span<const double> x) const;
  bool correlate_core(std::span<const Complex> x) const;

  RealSignal rev_real_;  ///< reversed template (real input)
  Signal rev_conj_;      ///< conj-reversed template (complex input)
  std::size_t t_len_ = 0;
  bool real_ = false;
  double energy_ = 0.0;

  mutable std::size_t cached_n_ = 0;
  mutable Signal spec_;  ///< template spectrum at cached_n_
  mutable Signal work_;  ///< transform workspace
  mutable Signal fft_scratch_;  ///< real-input packing buffer
};

}  // namespace saiyan::dsp
