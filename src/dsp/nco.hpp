// Numerically controlled oscillator and mixing helpers.
//
// Models the LTC6907-style clock sources and the mixing operations of
// the cyclic-frequency-shifting circuit (paper Fig. 9/11).
#pragma once

#include <span>

#include "dsp/types.hpp"

namespace saiyan::dsp {

/// Phase-continuous oscillator. `frequency_hz` may be negative.
class Nco {
 public:
  Nco(double frequency_hz, double fs_hz, double initial_phase_rad = 0.0);

  /// Next complex exponential sample exp(j(2π f t + φ0)).
  Complex next();

  /// Next real cosine sample cos(2π f t + φ0).
  double next_real();

  /// Generate n complex samples.
  Signal tone(std::size_t n);

  /// Generate n real cosine samples.
  RealSignal cosine(std::size_t n);

  /// Retune without phase discontinuity.
  void set_frequency(double frequency_hz);

  /// Advance the phase by n samples without emitting output.
  void advance(std::size_t n);

  double frequency() const { return freq_hz_; }
  double phase() const { return phase_; }
  void reset(double phase_rad = 0.0) { phase_ = phase_rad; }

 private:
  double freq_hz_;
  double fs_hz_;
  double phase_;       // radians
  double phase_inc_;   // radians/sample
};

/// Multiply a complex waveform by exp(j 2π f t + φ) — complex mixing
/// (single-sideband frequency shift).
Signal mix_complex(std::span<const Complex> x, double f_hz, double fs_hz,
                   double phase_rad = 0.0);

/// Multiply a complex waveform by a *real* cosine — the physical mixer
/// operation that produces both sidebands S(F−Δf) and S(F+Δf).
Signal mix_real(std::span<const Complex> x, double f_hz, double fs_hz,
                double phase_rad = 0.0);

/// Multiply a real waveform by a real cosine.
RealSignal mix_real(std::span<const double> x, double f_hz, double fs_hz,
                    double phase_rad = 0.0);

}  // namespace saiyan::dsp
