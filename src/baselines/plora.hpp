// PLoRa (SIGCOMM'18) baseline model.
//
// PLoRa tags piggyback on ambient LoRa transmissions; for downlink
// awareness the tag runs *cross-correlation packet detection* on the
// raw signal — it can tell that a LoRa packet is on the air but cannot
// demodulate payload symbols (paper §5.1.3). Two quantities matter
// for the comparison figures:
//   * detection range / sensitivity (Fig. 21: 42.4 m outdoor, 16.8 m
//     indoor with our default link budget);
//   * the backscatter-uplink BER vs tag-to-Tx distance (Fig. 2),
//     where the tag's reflected packet must reach a receiver ~100 m
//     away and decays rapidly as the tag leaves the transmitter.
#pragma once

#include <span>

#include "channel/link_budget.hpp"
#include "dsp/correlate.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "lora/params.hpp"

namespace saiyan::baselines {

struct PLoRaConfig {
  lora::PhyParams phy;
  /// Detection sensitivity: RSS (dBm) at which cross-correlation
  /// detection reaches the 50% point. Calibrated so the outdoor
  /// detection range lands at ~42 m (paper Fig. 21).
  double detection_sensitivity_dbm = -64.3;
  /// Conversion loss of the passive backscatter reflection.
  double backscatter_loss_db = 10.0;
  /// Effective decoding threshold of the remote receiver for the
  /// backscattered uplink (includes reader self-interference), dBm.
  double uplink_receiver_sensitivity_dbm = -65.0;
};

class PLoRaDetector {
 public:
  explicit PLoRaDetector(const PLoRaConfig& cfg);

  /// Waveform-level packet detection: cross-correlate the received
  /// baseband against the known preamble template.
  bool detect(std::span<const dsp::Complex> rx, double min_normalized = 0.25) const;

  /// Model-level detection probability at a given RSS (logistic around
  /// the calibrated sensitivity; steepness from correlation SNR).
  double detection_probability(double rss_dbm) const;

  /// Backscatter-uplink BER at tag-to-Tx distance `d_tx_tag_m` with
  /// the receiver `d_tag_rx_m` from the tag (Fig. 2 geometry).
  double uplink_ber(double d_tx_tag_m, double d_tag_rx_m,
                    const channel::LinkBudget& link) const;

  const PLoRaConfig& config() const { return cfg_; }

 private:
  PLoRaConfig cfg_;
  dsp::Signal preamble_template_;
};

}  // namespace saiyan::baselines
