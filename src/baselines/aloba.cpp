#include "baselines/aloba.hpp"

#include <algorithm>
#include <cmath>

namespace saiyan::baselines {

AlobaDetector::AlobaDetector(const AlobaConfig& cfg) : cfg_(cfg) {
  cfg_.phy.validate();
}

bool AlobaDetector::detect(std::span<const dsp::Complex> rx,
                           double snr_threshold_db) const {
  const std::size_t sps = cfg_.phy.samples_per_symbol();
  const std::size_t window = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg_.ma_window_fraction * sps));
  if (rx.size() < sps * static_cast<std::size_t>(cfg_.phy.preamble_symbols)) {
    return false;
  }
  // Moving-average of |x|^2.
  dsp::RealSignal power(rx.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    acc += std::norm(rx[i]);
    if (i >= window) acc -= std::norm(rx[i - window]);
    power[i] = acc / static_cast<double>(std::min(i + 1, window));
  }
  // Noise floor estimate: lowest decile of the smoothed power.
  dsp::RealSignal sorted = power;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 10, sorted.end());
  const double floor = std::max(sorted[sorted.size() / 10], 1e-30);
  const double thresh = floor * std::pow(10.0, snr_threshold_db / 10.0);

  // Sustained elevation across the preamble duration.
  const std::size_t need = sps * static_cast<std::size_t>(cfg_.phy.preamble_symbols);
  std::size_t run = 0;
  for (double p : power) {
    run = p >= thresh ? run + 1 : 0;
    if (run >= need) return true;
  }
  return false;
}

double AlobaDetector::detection_probability(double rss_dbm) const {
  const double margin = rss_dbm - cfg_.detection_sensitivity_dbm;
  return 1.0 / (1.0 + std::exp(-margin * 1.2));
}

double AlobaDetector::uplink_ber(double d_tx_tag_m, double d_tag_rx_m,
                                 const channel::LinkBudget& link) const {
  const double rss = link.backscatter_rss_dbm(d_tx_tag_m, d_tag_rx_m,
                                              cfg_.backscatter_loss_db);
  const double margin = rss - cfg_.uplink_receiver_sensitivity_dbm;
  // Same gentle waterfall as PLoRa (see plora.cpp); Aloba's OOK link
  // budget is ~6 dB worse so its curve sits above PLoRa's everywhere.
  double log10_ber;
  if (margin >= 0.0) {
    log10_ber = -3.0 - margin / 3.0;
  } else {
    log10_ber = -3.0 - margin / 20.0;
  }
  return std::clamp(std::pow(10.0, log10_ber), 1e-9, 0.5);
}

}  // namespace saiyan::baselines
