// Aloba (SenSys'20) baseline model.
//
// Aloba rethinks on-off-keying over ambient LoRa: the tag feeds the
// incident signal through a *moving-average filter* and matches the
// distinctive RSSI pattern of the LoRa preamble to detect packets
// (paper §5.1.3). Like PLoRa it cannot demodulate payload symbols,
// and its non-coherent RSSI detection is less sensitive than PLoRa's
// cross-correlation (30.6 m vs 42.4 m outdoors in Fig. 21).
#pragma once

#include <span>

#include "channel/link_budget.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "lora/params.hpp"

namespace saiyan::baselines {

struct AlobaConfig {
  lora::PhyParams phy;
  /// RSSI-pattern detection sensitivity (50% point), calibrated to the
  /// 30.6 m outdoor detection range of Fig. 21.
  double detection_sensitivity_dbm = -58.6;
  /// Moving-average window as a fraction of the symbol time.
  double ma_window_fraction = 0.25;
  /// Backscatter conversion loss; OOK modulation reflects less energy
  /// than PLoRa's chirp-preserving flip.
  double backscatter_loss_db = 13.0;
  /// Remote receiver sensitivity for the OOK uplink (non-coherent,
  /// worse than PLoRa's chirp-coherent decoding).
  double uplink_receiver_sensitivity_dbm = -59.0;
};

class AlobaDetector {
 public:
  explicit AlobaDetector(const AlobaConfig& cfg);

  /// Waveform-level detection: moving-average the instantaneous power
  /// and look for `preamble_symbols` consecutive symbol-length windows
  /// of sustained elevated RSSI.
  bool detect(std::span<const dsp::Complex> rx, double snr_threshold_db = 3.0) const;

  /// Model-level detection probability at a given RSS.
  double detection_probability(double rss_dbm) const;

  /// Backscatter-uplink BER (Fig. 2 geometry), OOK decoding.
  double uplink_ber(double d_tx_tag_m, double d_tag_rx_m,
                    const channel::LinkBudget& link) const;

  const AlobaConfig& config() const { return cfg_; }

 private:
  AlobaConfig cfg_;
};

}  // namespace saiyan::baselines
