#include "baselines/plora.hpp"

#include <algorithm>
#include <cmath>

#include "lora/modulator.hpp"

namespace saiyan::baselines {

PLoRaDetector::PLoRaDetector(const PLoRaConfig& cfg) : cfg_(cfg) {
  cfg_.phy.validate();
  lora::Modulator mod(cfg_.phy);
  preamble_template_ = mod.preamble();
}

bool PLoRaDetector::detect(std::span<const dsp::Complex> rx,
                           double min_normalized) const {
  if (rx.size() < preamble_template_.size()) return false;
  const dsp::CorrelationPeak pk =
      dsp::find_peak(rx, std::span<const dsp::Complex>(preamble_template_));
  return pk.normalized >= min_normalized;
}

double PLoRaDetector::detection_probability(double rss_dbm) const {
  // Logistic transition, ~4 dB wide, centered on the sensitivity.
  const double margin = rss_dbm - cfg_.detection_sensitivity_dbm;
  return 1.0 / (1.0 + std::exp(-margin * 1.2));
}

double PLoRaDetector::uplink_ber(double d_tx_tag_m, double d_tag_rx_m,
                                 const channel::LinkBudget& link) const {
  const double rss = link.backscatter_rss_dbm(d_tx_tag_m, d_tag_rx_m,
                                              cfg_.backscatter_loss_db);
  const double margin = rss - cfg_.uplink_receiver_sensitivity_dbm;
  // Backscatter-uplink waterfall: 1e-3 at zero margin. The rise below
  // threshold is gentle (20 dB/decade) — the reflected chirp fades
  // into reader self-interference gradually, matching Fig. 2 (slow
  // climb from 1e-3 near 1 m to ~0.5 at 20 m.
  double log10_ber;
  if (margin >= 0.0) {
    log10_ber = -3.0 - margin / 3.0;
  } else {
    log10_ber = -3.0 - margin / 20.0;
  }
  return std::clamp(std::pow(10.0, log10_ber), 1e-9, 0.5);
}

}  // namespace saiyan::baselines
