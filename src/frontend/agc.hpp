// Automatic gain control — the paper's §4.1 future-work extension.
//
// Saiyan's prototype stores a distance-keyed UH/UL mapping table
// because the envelope peak Amax varies with link distance. An AGC
// removes that manual calibration: it tracks the envelope peak with a
// fast-attack / slow-decay detector and scales the signal so the peak
// sits at a fixed setpoint, letting one static threshold pair serve
// every link distance (the feed-forward AGC direction of [42, 43]).
#pragma once

#include <span>

#include "dsp/types.hpp"

namespace saiyan::frontend {

struct AgcConfig {
  double setpoint = 1.0;        ///< target envelope peak after scaling
  double attack_s = 50e-6;      ///< peak-tracker rise time constant
  double decay_s = 20e-3;       ///< peak-tracker fall time constant
  double sample_rate_hz = 4e6;
  double max_gain = 1e12;       ///< clamp for silence at the input
  double min_gain = 1e-12;
};

class AutomaticGainControl {
 public:
  explicit AutomaticGainControl(const AgcConfig& cfg);

  /// Scale the envelope so its tracked peak rides at the setpoint.
  /// Stateful across calls (the tracker keeps its estimate).
  dsp::RealSignal process(std::span<const double> envelope);

  /// Current peak estimate (pre-scaling units).
  double tracked_peak() const { return peak_; }

  /// Gain currently being applied.
  double gain() const;

  void reset();

  const AgcConfig& config() const { return cfg_; }

 private:
  AgcConfig cfg_;
  double attack_alpha_;
  double decay_alpha_;
  double peak_ = 0.0;
};

}  // namespace saiyan::frontend
