#include "frontend/envelope_detector.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/iir.hpp"
#include "dsp/noise.hpp"
#include "dsp/utils.hpp"

namespace saiyan::frontend {

EnvelopeDetector::EnvelopeDetector(const EnvelopeDetectorConfig& cfg) : cfg_(cfg) {
  if (cfg.conversion_gain <= 0.0) {
    throw std::invalid_argument("EnvelopeDetector: conversion gain must be > 0");
  }
  if (cfg.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("EnvelopeDetector: sample rate must be > 0");
  }
  const double k = cfg.conversion_gain;
  // Impairments are specified as the detector-output level an input of
  // the given power would produce (output amplitude = k * P_in), so
  // the additive noise amplitude scales with k.
  dc_level_ = k * dsp::dbm_to_watts(cfg.dc_offset_dbm_equiv);
  const double flicker_amp = k * dsp::dbm_to_watts(cfg.flicker_noise_dbm_equiv);
  const double white_amp = k * dsp::dbm_to_watts(cfg.white_noise_dbm_equiv);
  flicker_watts_ = flicker_amp * flicker_amp;  // variance of the additive term
  white_watts_ = white_amp * white_amp;
}

void EnvelopeDetector::add_impairments(dsp::RealSignal& y, dsp::Rng& rng) const {
  if (!cfg_.enable_impairments || y.empty()) return;
  // Flicker needs its own buffer (it is normalized over the whole
  // realization); DC and white noise fold into the same pass.
  const dsp::RealSignal flicker = dsp::flicker_noise(y.size(), flicker_watts_, rng);
  const double white_sigma = std::sqrt(white_watts_);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] += dc_level_ + flicker[i] + white_sigma * rng.gaussian();
  }
}

dsp::RealSignal EnvelopeDetector::detect_raw(std::span<const dsp::Complex> x,
                                             dsp::Rng& rng) const {
  dsp::RealSignal y(x.size());
  const double k = cfg_.conversion_gain;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double re = x[i].real();
    const double im = x[i].imag();
    y[i] = k * (re * re + im * im);  // k |St + Sn|^2 — Eq. 4 self-mixing
  }
  add_impairments(y, rng);
  return y;
}

dsp::RealSignal EnvelopeDetector::detect_raw_mixed(std::span<const dsp::Complex> x,
                                                   std::span<const double> mix_gain,
                                                   dsp::Rng& rng) const {
  if (mix_gain.size() != x.size()) {
    throw std::invalid_argument("detect_raw_mixed: gain length mismatch");
  }
  dsp::RealSignal y(x.size());
  const double k = cfg_.conversion_gain;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double re = x[i].real();
    const double im = x[i].imag();
    const double g2 = mix_gain[i] * mix_gain[i];
    y[i] = k * g2 * (re * re + im * im);
  }
  add_impairments(y, rng);
  return y;
}

dsp::RealSignal EnvelopeDetector::detect(std::span<const dsp::Complex> x,
                                         dsp::Rng& rng) const {
  dsp::RealSignal y = detect_raw(x, rng);
  dsp::OnePole lpf(cfg_.lpf_cutoff_hz, cfg_.sample_rate_hz);
  return lpf.process(y);
}

}  // namespace saiyan::frontend
