#include "frontend/envelope_detector.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/iir.hpp"
#include "dsp/noise.hpp"
#include "dsp/utils.hpp"

namespace saiyan::frontend {

EnvelopeDetector::EnvelopeDetector(const EnvelopeDetectorConfig& cfg) : cfg_(cfg) {
  if (cfg.conversion_gain <= 0.0) {
    throw std::invalid_argument("EnvelopeDetector: conversion gain must be > 0");
  }
  if (cfg.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("EnvelopeDetector: sample rate must be > 0");
  }
  const double k = cfg.conversion_gain;
  // Impairments are specified as the detector-output level an input of
  // the given power would produce (output amplitude = k * P_in), so
  // the additive noise amplitude scales with k.
  dc_level_ = k * dsp::dbm_to_watts(cfg.dc_offset_dbm_equiv);
  const double flicker_amp = k * dsp::dbm_to_watts(cfg.flicker_noise_dbm_equiv);
  const double white_amp = k * dsp::dbm_to_watts(cfg.white_noise_dbm_equiv);
  flicker_watts_ = flicker_amp * flicker_amp;  // variance of the additive term
  white_watts_ = white_amp * white_amp;
}

dsp::RealSignal EnvelopeDetector::detect_raw(std::span<const dsp::Complex> x,
                                             dsp::Rng& rng) const {
  dsp::RealSignal y(x.size());
  const double k = cfg_.conversion_gain;
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = k * std::norm(x[i]);  // k |St + Sn|^2 — Eq. 4 self-mixing
  }
  if (cfg_.enable_impairments && !y.empty()) {
    const dsp::RealSignal flicker = dsp::flicker_noise(y.size(), flicker_watts_, rng);
    const dsp::RealSignal white = dsp::real_white_noise(y.size(), white_watts_, rng);
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] += dc_level_ + flicker[i] + white[i];
    }
  }
  return y;
}

dsp::RealSignal EnvelopeDetector::detect(std::span<const dsp::Complex> x,
                                         dsp::Rng& rng) const {
  dsp::RealSignal y = detect_raw(x, rng);
  dsp::OnePole lpf(cfg_.lpf_cutoff_hz, cfg_.sample_rate_hz);
  return lpf.process(y);
}

}  // namespace saiyan::frontend
