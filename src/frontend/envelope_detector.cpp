#include "frontend/envelope_detector.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/iir.hpp"
#include "dsp/noise.hpp"
#include "dsp/simd.hpp"
#include "dsp/utils.hpp"

namespace saiyan::frontend {

EnvelopeDetector::EnvelopeDetector(const EnvelopeDetectorConfig& cfg) : cfg_(cfg) {
  if (cfg.conversion_gain <= 0.0) {
    throw std::invalid_argument("EnvelopeDetector: conversion gain must be > 0");
  }
  if (cfg.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("EnvelopeDetector: sample rate must be > 0");
  }
  const double k = cfg.conversion_gain;
  // Impairments are specified as the detector-output level an input of
  // the given power would produce (output amplitude = k * P_in), so
  // the additive noise amplitude scales with k.
  dc_level_ = k * dsp::dbm_to_watts(cfg.dc_offset_dbm_equiv);
  const double flicker_amp = k * dsp::dbm_to_watts(cfg.flicker_noise_dbm_equiv);
  const double white_amp = k * dsp::dbm_to_watts(cfg.white_noise_dbm_equiv);
  flicker_watts_ = flicker_amp * flicker_amp;  // variance of the additive term
  white_watts_ = white_amp * white_amp;
}

void EnvelopeDetector::add_impairments(dsp::RealSignal& y, dsp::Rng& rng,
                                       FrontendScratch& scratch) const {
  if (!cfg_.enable_impairments || y.empty()) return;
  // Flicker needs its own buffer (it is normalized over the whole
  // realization); DC and white noise fold into the fused
  // draw-and-inject pass. Stream order matches the per-sample draws
  // this replaces: all flicker drives first, then one white draw per
  // sample.
  dsp::flicker_noise_into(y.size(), flicker_watts_, rng, scratch.flicker,
                          scratch.flicker_drive);
  const double white_sigma = std::sqrt(white_watts_);
  dsp::simd::add_dc_flicker_gaussian(y.data(), scratch.flicker.data(),
                                     y.size(), dc_level_, white_sigma, rng);
}

void EnvelopeDetector::detect_raw_into(std::span<const dsp::Complex> x,
                                       dsp::Rng& rng, dsp::RealSignal& out,
                                       FrontendScratch& scratch) const {
  out.resize(x.size());
  // k |St + Sn|^2 — Eq. 4 self-mixing.
  dsp::simd::square_law(x.data(), x.size(), cfg_.conversion_gain, out.data());
  add_impairments(out, rng, scratch);
}

void EnvelopeDetector::detect_raw_mixed_into(std::span<const dsp::Complex> x,
                                             std::span<const double> mix_gain,
                                             dsp::Rng& rng, dsp::RealSignal& out,
                                             FrontendScratch& scratch) const {
  if (mix_gain.size() != x.size()) {
    throw std::invalid_argument("detect_raw_mixed: gain length mismatch");
  }
  out.resize(x.size());
  dsp::simd::square_law_mixed(x.data(), mix_gain.data(), x.size(),
                              cfg_.conversion_gain, out.data());
  add_impairments(out, rng, scratch);
}

void EnvelopeDetector::detect_into(std::span<const dsp::Complex> x,
                                   dsp::Rng& rng, dsp::RealSignal& out,
                                   FrontendScratch& scratch) const {
  detect_raw_into(x, rng, out, scratch);
  dsp::OnePole lpf(cfg_.lpf_cutoff_hz, cfg_.sample_rate_hz);
  lpf.process_inplace(out);
}

void EnvelopeDetector::detect_amplified_into(std::span<const dsp::Complex> x,
                                             double lna_gain, double lna_sigma,
                                             dsp::Rng& rng,
                                             dsp::RealSignal& out,
                                             FrontendScratch& scratch) const {
  out.resize(x.size());
  dsp::simd::lna_square_law(x.data(), nullptr, x.size(), lna_gain, lna_sigma,
                            cfg_.conversion_gain, out.data(), rng);
  add_impairments(out, rng, scratch);
  dsp::OnePole lpf(cfg_.lpf_cutoff_hz, cfg_.sample_rate_hz);
  lpf.process_inplace(out);
}

void EnvelopeDetector::detect_raw_mixed_amplified_into(
    std::span<const dsp::Complex> x, std::span<const double> mix_gain,
    double lna_gain, double lna_sigma, dsp::Rng& rng, dsp::RealSignal& out,
    FrontendScratch& scratch) const {
  if (mix_gain.size() != x.size()) {
    throw std::invalid_argument("detect_raw_mixed: gain length mismatch");
  }
  out.resize(x.size());
  dsp::simd::lna_square_law(x.data(), mix_gain.data(), x.size(), lna_gain,
                            lna_sigma, cfg_.conversion_gain, out.data(), rng);
  add_impairments(out, rng, scratch);
}

dsp::RealSignal EnvelopeDetector::detect_raw(std::span<const dsp::Complex> x,
                                             dsp::Rng& rng) const {
  dsp::RealSignal y;
  FrontendScratch scratch;
  detect_raw_into(x, rng, y, scratch);
  return y;
}

dsp::RealSignal EnvelopeDetector::detect_raw_mixed(std::span<const dsp::Complex> x,
                                                   std::span<const double> mix_gain,
                                                   dsp::Rng& rng) const {
  dsp::RealSignal y;
  FrontendScratch scratch;
  detect_raw_mixed_into(x, mix_gain, rng, y, scratch);
  return y;
}

dsp::RealSignal EnvelopeDetector::detect(std::span<const dsp::Complex> x,
                                         dsp::Rng& rng) const {
  dsp::RealSignal y;
  FrontendScratch scratch;
  detect_into(x, rng, y, scratch);
  return y;
}

}  // namespace saiyan::frontend
