// Square-law envelope detector (paper Eq. 4 and §3.1).
//
// The detector output is k·|S_in|^2: self-mixing shifts the wanted
// signal to baseband but also folds RF noise down with it
// (2k·St·Sn + k·Sn^2). On top of that the CMOS detector adds its own
// baseband impairments — DC offset, 1/f flicker noise and white
// noise — which sit exactly where the demodulator wants to read the
// envelope. The cyclic-frequency-shifting circuit (cfs.hpp) exists to
// escape these; the noise levels here are what give CFS its ~11 dB
// SNR gain (paper Fig. 10).
#pragma once

#include <span>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "frontend/workspace.hpp"

namespace saiyan::frontend {

struct EnvelopeDetectorConfig {
  double conversion_gain = 1.0;     ///< k in y = k |x|^2
  double lpf_cutoff_hz = 200e3;     ///< post-detection smoothing
  double sample_rate_hz = 4e6;
  // Baseband impairments, expressed as equivalent detector-output
  // levels relative to the response to a -50 dBm input (i.e. scaled by
  // k so they track the conversion gain). Calibrated so that the
  // envelope-detector-only receiver loses ~30 dB of sensitivity vs.
  // Saiyan (paper §5.2.1) and CFS recovers ~11 dB (paper §3.1).
  double dc_offset_dbm_equiv = -62.0;      ///< static offset
  double flicker_noise_dbm_equiv = -65.0;  ///< 1/f power (in-band)
  double white_noise_dbm_equiv = -89.0;    ///< broadband floor
  bool enable_impairments = true;
};

class EnvelopeDetector {
 public:
  explicit EnvelopeDetector(const EnvelopeDetectorConfig& cfg);

  /// Full detector: square-law + impairments + smoothing low-pass.
  dsp::RealSignal detect(std::span<const dsp::Complex> x, dsp::Rng& rng) const;

  /// Square-law + impairments only, no smoothing — the wideband output
  /// the CFS circuit taps before its IF amplifier.
  dsp::RealSignal detect_raw(std::span<const dsp::Complex> x, dsp::Rng& rng) const;

  /// Square-law of x pre-multiplied by a real per-sample mixer gain:
  /// y = k |g·x|² + impairments = k g² |x|² + impairments. Lets the
  /// CFS input mixer skip materializing the mixed complex waveform.
  dsp::RealSignal detect_raw_mixed(std::span<const dsp::Complex> x,
                                   std::span<const double> mix_gain,
                                   dsp::Rng& rng) const;

  /// Workspace variants: write into a caller-owned buffer, drawing the
  /// impairment noise through the scratch's reusable buffers. Values
  /// and RNG consumption are identical to the allocating overloads.
  void detect_into(std::span<const dsp::Complex> x, dsp::Rng& rng,
                   dsp::RealSignal& out, FrontendScratch& scratch) const;
  void detect_raw_into(std::span<const dsp::Complex> x, dsp::Rng& rng,
                       dsp::RealSignal& out, FrontendScratch& scratch) const;
  void detect_raw_mixed_into(std::span<const dsp::Complex> x,
                             std::span<const double> mix_gain, dsp::Rng& rng,
                             dsp::RealSignal& out,
                             FrontendScratch& scratch) const;

  /// Fused-LNA variants: `x` is the *unamplified* waveform; the CG-LNA
  /// stage (y = lna_gain·(x + noise), noise sigma per I/Q component)
  /// is applied inside the square-law kernel without materializing the
  /// amplified waveform. Values and RNG consumption identical to
  /// Lna::amplify_into followed by the corresponding detect method.
  void detect_amplified_into(std::span<const dsp::Complex> x, double lna_gain,
                             double lna_sigma, dsp::Rng& rng,
                             dsp::RealSignal& out,
                             FrontendScratch& scratch) const;
  void detect_raw_mixed_amplified_into(std::span<const dsp::Complex> x,
                                       std::span<const double> mix_gain,
                                       double lna_gain, double lna_sigma,
                                       dsp::Rng& rng, dsp::RealSignal& out,
                                       FrontendScratch& scratch) const;

  const EnvelopeDetectorConfig& config() const { return cfg_; }

 private:
  /// Adds DC offset, 1/f flicker and white noise to a detector output
  /// (shared by the plain and mixer-scaled square-law paths).
  void add_impairments(dsp::RealSignal& y, dsp::Rng& rng,
                       FrontendScratch& scratch) const;

  EnvelopeDetectorConfig cfg_;
  double dc_level_;
  double flicker_watts_;
  double white_watts_;
};

}  // namespace saiyan::frontend
