// Common-gate low-noise amplifier (CG-LNA, paper §4.1) placed between
// the SAW filter and the envelope detector.
#pragma once

#include <span>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace saiyan::frontend {

struct LnaConfig {
  double gain_db = 20.0;
  double noise_figure_db = 3.0;
  double bandwidth_hz = 4e6;  ///< noise bandwidth (simulation rate)
};

/// Amplify with input-referred thermal noise: y = g (x + n), where n
/// has power kT·B·(F-1).
class Lna {
 public:
  explicit Lna(const LnaConfig& cfg);

  dsp::Signal amplify(std::span<const dsp::Complex> x, dsp::Rng& rng) const;

  /// Workspace variant: writes into `out` through the fused
  /// draw-and-inject kernel. Identical values and RNG consumption to
  /// amplify().
  void amplify_into(std::span<const dsp::Complex> x, dsp::Rng& rng,
                    dsp::Signal& out) const;

  double gain_db() const { return cfg_.gain_db; }

  /// Per-I/Q-component input noise sigma (the fused-LNA kernels take
  /// the amplifier as plain (gain, sigma) parameters).
  double noise_sigma() const;

 private:
  LnaConfig cfg_;
  double input_noise_watts_;
};

}  // namespace saiyan::frontend
