#include "frontend/sampler.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/resample.hpp"

namespace saiyan::frontend {

VoltageSampler::VoltageSampler(const lora::PhyParams& params, double rate_multiplier)
    : params_(params) {
  params_.validate();
  if (rate_multiplier <= 0.0) {
    throw std::invalid_argument("VoltageSampler: multiplier must be > 0");
  }
  rate_hz_ = rate_multiplier * params_.nyquist_sampling_rate_hz();
}

SampledBits VoltageSampler::sample(std::span<const std::uint8_t> comparator_bits,
                                   double fs_hz) const {
  SampledBits out;
  sample_into(comparator_bits, fs_hz, out);
  return out;
}

void VoltageSampler::sample_into(std::span<const std::uint8_t> comparator_bits,
                                 double fs_hz, SampledBits& out) const {
  if (fs_hz <= 0.0) throw std::invalid_argument("VoltageSampler: fs must be > 0");
  if (rate_hz_ > fs_hz) {
    throw std::invalid_argument("VoltageSampler: tick rate exceeds simulation rate");
  }
  out.sample_rate_hz = rate_hz_;
  out.samples_per_symbol = rate_hz_ * params_.symbol_duration_s();
  const double ratio = fs_hz / rate_hz_;
  const std::size_t n_out = comparator_bits.empty()
      ? 0
      : static_cast<std::size_t>(
            std::floor(static_cast<double>(comparator_bits.size() - 1) / ratio)) + 1;
  out.bits.resize(n_out);
  for (std::size_t k = 0; k < n_out; ++k) {
    const std::size_t idx = static_cast<std::size_t>(std::floor(k * ratio));
    out.bits[k] = comparator_bits[std::min(idx, comparator_bits.size() - 1)];
  }
}

dsp::RealSignal VoltageSampler::sample_analog(std::span<const double> envelope,
                                              double fs_hz) const {
  return dsp::sample_hold(envelope, fs_hz, rate_hz_);
}

}  // namespace saiyan::frontend
