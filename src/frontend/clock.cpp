#include "frontend/clock.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/nco.hpp"

namespace saiyan::frontend {

ClockGenerator::ClockGenerator(const ClockConfig& cfg) : cfg_(cfg) {
  if (cfg.frequency_hz <= 0.0 || cfg.frequency_hz >= cfg.sample_rate_hz / 2.0) {
    throw std::invalid_argument("ClockGenerator: frequency must be in (0, fs/2)");
  }
}

dsp::RealSignal ClockGenerator::clk_in(std::size_t n) const {
  dsp::Nco nco(cfg_.frequency_hz, cfg_.sample_rate_hz, 0.0);
  return nco.cosine(n);
}

dsp::RealSignal ClockGenerator::clk_out(std::size_t n) const {
  dsp::Nco nco(cfg_.frequency_hz, cfg_.sample_rate_hz, cfg_.delay_line_phase_rad);
  return nco.cosine(n);
}

double ClockGenerator::alignment() const {
  return std::cos(cfg_.delay_line_phase_rad);
}

}  // namespace saiyan::frontend
