#include "frontend/comparator.hpp"

#include <stdexcept>

#include "dsp/utils.hpp"

namespace saiyan::frontend {

SingleThresholdComparator::SingleThresholdComparator(double threshold)
    : threshold_(threshold) {}

dsp::BitVector SingleThresholdComparator::quantize(
    std::span<const double> envelope) const {
  dsp::BitVector out(envelope.size());
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    out[i] = envelope[i] >= threshold_ ? 1 : 0;
  }
  return out;
}

DoubleThresholdComparator::DoubleThresholdComparator(double u_high, double u_low)
    : u_high_(u_high), u_low_(u_low) {
  if (!(u_high > u_low)) {
    throw std::invalid_argument("DoubleThresholdComparator: UH must be > UL");
  }
}

dsp::BitVector DoubleThresholdComparator::quantize(
    std::span<const double> envelope) const {
  dsp::BitVector out;
  quantize_into(envelope, out);
  return out;
}

void DoubleThresholdComparator::quantize_into(std::span<const double> envelope,
                                              dsp::BitVector& out) const {
  out.resize(envelope.size());
  bool high = false;
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    const double a = envelope[i];
    if (high) {
      high = a >= u_low_;  // hold until the envelope falls below UL
    } else {
      high = a >= u_high_;  // arm only above UH
    }
    out[i] = high ? 1 : 0;
  }
}

ThresholdPair thresholds_from_peak(double a_max, double gap_db, double ripple) {
  if (a_max <= 0.0) throw std::invalid_argument("thresholds_from_peak: Amax must be > 0");
  if (gap_db <= 0.0) throw std::invalid_argument("thresholds_from_peak: gap must be > 0");
  if (ripple < 0.0) throw std::invalid_argument("thresholds_from_peak: ripple must be >= 0");
  ThresholdPair t;
  t.u_high = a_max / dsp::db_to_amp(gap_db);
  t.u_low = t.u_high - ripple;
  if (t.u_low <= 0.0 || t.u_low >= t.u_high) t.u_low = t.u_high * 0.5;
  return t;
}

}  // namespace saiyan::frontend
