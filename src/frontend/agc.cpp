#include "frontend/agc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace saiyan::frontend {

AutomaticGainControl::AutomaticGainControl(const AgcConfig& cfg) : cfg_(cfg) {
  if (cfg.setpoint <= 0.0) throw std::invalid_argument("AGC: setpoint must be > 0");
  if (cfg.attack_s <= 0.0 || cfg.decay_s <= 0.0) {
    throw std::invalid_argument("AGC: time constants must be > 0");
  }
  if (cfg.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("AGC: sample rate must be > 0");
  }
  const double dt = 1.0 / cfg.sample_rate_hz;
  attack_alpha_ = 1.0 - std::exp(-dt / cfg.attack_s);
  decay_alpha_ = 1.0 - std::exp(-dt / cfg.decay_s);
}

double AutomaticGainControl::gain() const {
  if (peak_ <= 0.0) return cfg_.max_gain;
  return std::clamp(cfg_.setpoint / peak_, cfg_.min_gain, cfg_.max_gain);
}

dsp::RealSignal AutomaticGainControl::process(std::span<const double> envelope) {
  dsp::RealSignal out(envelope.size());
  for (std::size_t i = 0; i < envelope.size(); ++i) {
    const double v = std::max(envelope[i], 0.0);
    // Fast attack toward rises, slow decay toward falls: the tracker
    // hugs the per-packet amplitude peak without sagging between
    // chirp peaks.
    const double alpha = v > peak_ ? attack_alpha_ : decay_alpha_;
    peak_ += alpha * (v - peak_);
    out[i] = envelope[i] * gain();
  }
  return out;
}

void AutomaticGainControl::reset() { peak_ = 0.0; }

}  // namespace saiyan::frontend
