#include "frontend/cfs.hpp"

#include <stdexcept>

#include "dsp/iir.hpp"
#include "dsp/nco.hpp"
#include "dsp/simd.hpp"
#include "dsp/utils.hpp"

namespace saiyan::frontend {

namespace {

/// Input-mixer carrier leak-through fraction (finite mixer isolation,
/// the S(0) term of Fig. 9c).
constexpr double kCarrierLeak = 0.25;

}  // namespace

CyclicFrequencyShifter::CyclicFrequencyShifter(const CfsConfig& cfg,
                                               const EnvelopeDetectorConfig& ed_cfg)
    : cfg_(cfg), detector_(ed_cfg), clocks_(cfg.clock), fs_hz_(ed_cfg.sample_rate_hz) {
  if (cfg.clock.sample_rate_hz != ed_cfg.sample_rate_hz) {
    throw std::invalid_argument("CFS: clock and detector sample rates must match");
  }
  if (cfg.output_lpf_cutoff_hz >= cfg.clock.frequency_hz) {
    throw std::invalid_argument("CFS: output LPF must cut below the IF");
  }
}

void CyclicFrequencyShifter::if_stage_into(
    std::span<const dsp::Complex> rf, dsp::Rng& rng, dsp::RealSignal& out,
    FrontendScratch& scratch, const std::pair<double, double>* lna) const {
  // Step 1: input mixing with CLK_in — a real multiplier, producing
  // both sidebands S(F±Δf). The original carrier also leaks through
  // (finite mixer isolation); keep a fraction of it so the model
  // reproduces the S(0) term of Fig. 9(c). The mixed complex waveform
  // is never materialized: |x·(clk+c)|² = (clk+c)²·|x|², so the mixer
  // gain goes straight into the square-law detector. The clock table
  // depends only on (clock config, length) and is cached in the
  // scratch; the key fields catch a workspace reused across
  // differently-clocked demodulators.
  if (scratch.cfs_clk.size() != rf.size() ||
      scratch.clk_freq_hz != cfg_.clock.frequency_hz ||
      scratch.clk_fs_hz != fs_hz_ ||
      scratch.clk_phase_rad != cfg_.clock.delay_line_phase_rad) {
    scratch.cfs_clk = clocks_.clk_in(rf.size());
    for (double& v : scratch.cfs_clk) v += kCarrierLeak;
    scratch.cfs_lo.clear();  // rebuilt below against the new key
    scratch.clk_freq_hz = cfg_.clock.frequency_hz;
    scratch.clk_fs_hz = fs_hz_;
    scratch.clk_phase_rad = cfg_.clock.delay_line_phase_rad;
  }

  // Step 2: envelope detection. |S(F)·(cos(2πΔf t)+c)|² beats the
  // sidebands against the carrier, landing the envelope at Δf (and
  // 2Δf); the detector's DC/flicker noise stays at baseband. With a
  // fused LNA the amplification rides the same kernel.
  if (lna != nullptr) {
    detector_.detect_raw_mixed_amplified_into(rf, scratch.cfs_clk, lna->first,
                                              lna->second, rng, out, scratch);
  } else {
    detector_.detect_raw_mixed_into(rf, scratch.cfs_clk, rng, out, scratch);
  }

  // Step 3: IF amplification — bandpass at Δf with gain (folded into
  // the biquad's feed-forward coefficients).
  dsp::Biquad bp = dsp::Biquad::bandpass(cfg_.clock.frequency_hz, fs_hz_,
                                         cfg_.if_quality_factor);
  bp.scale_output(dsp::db_to_amp(cfg_.if_gain_db));
  bp.process_inplace(out);
}

dsp::RealSignal CyclicFrequencyShifter::if_stage(std::span<const dsp::Complex> rf,
                                                 dsp::Rng& rng) const {
  dsp::RealSignal out;
  FrontendScratch scratch;
  if_stage_into(rf, rng, out, scratch, nullptr);
  return out;
}

dsp::RealSignal CyclicFrequencyShifter::intermediate(std::span<const dsp::Complex> rf,
                                                     dsp::Rng& rng) const {
  return if_stage(rf, rng);
}

// Steps 4 and 5, shared by the plain and fused-LNA entry points.
void CyclicFrequencyShifter::output_stage_into(std::size_t n,
                                               dsp::RealSignal& out,
                                               FrontendScratch& scratch) const {
  // Step 4: output mixing with the delay-line clock copy brings the IF
  // envelope back to baseband (amplitude × cos(Δφ)/2) and shifts the
  // residual baseband noise up to Δf. The LO table is the same cosine
  // dsp::mix_real generates, cached per length; the 2x mixer scale
  // rides the low-pass coefficients below.
  if (scratch.cfs_lo.size() != n) {
    dsp::Nco lo(cfg_.clock.frequency_hz, fs_hz_,
                cfg_.clock.delay_line_phase_rad);
    scratch.cfs_lo = lo.cosine(n);
  }
  dsp::simd::multiply(out.data(), scratch.cfs_lo.data(), out.size(),
                      out.data());

  // Step 5: low-pass away the Δf and 2Δf products.
  dsp::Biquad lpf = dsp::Biquad::lowpass(cfg_.output_lpf_cutoff_hz, fs_hz_, 0.707);
  lpf.scale_output(2.0);
  lpf.process_inplace(out);
}

void CyclicFrequencyShifter::process_into(std::span<const dsp::Complex> rf,
                                          dsp::Rng& rng, dsp::RealSignal& out,
                                          FrontendScratch& scratch) const {
  if_stage_into(rf, rng, out, scratch, nullptr);
  output_stage_into(rf.size(), out, scratch);
}

void CyclicFrequencyShifter::process_amplified_into(
    std::span<const dsp::Complex> rf, double lna_gain, double lna_sigma,
    dsp::Rng& rng, dsp::RealSignal& out, FrontendScratch& scratch) const {
  const std::pair<double, double> lna{lna_gain, lna_sigma};
  if_stage_into(rf, rng, out, scratch, &lna);
  output_stage_into(rf.size(), out, scratch);
}

dsp::RealSignal CyclicFrequencyShifter::process(std::span<const dsp::Complex> rf,
                                                dsp::Rng& rng) const {
  dsp::RealSignal out;
  FrontendScratch scratch;
  process_into(rf, rng, out, scratch);
  return out;
}

}  // namespace saiyan::frontend
