#include "frontend/cfs.hpp"

#include <stdexcept>

#include "dsp/iir.hpp"
#include "dsp/nco.hpp"
#include "dsp/utils.hpp"

namespace saiyan::frontend {

CyclicFrequencyShifter::CyclicFrequencyShifter(const CfsConfig& cfg,
                                               const EnvelopeDetectorConfig& ed_cfg)
    : cfg_(cfg), detector_(ed_cfg), clocks_(cfg.clock), fs_hz_(ed_cfg.sample_rate_hz) {
  if (cfg.clock.sample_rate_hz != ed_cfg.sample_rate_hz) {
    throw std::invalid_argument("CFS: clock and detector sample rates must match");
  }
  if (cfg.output_lpf_cutoff_hz >= cfg.clock.frequency_hz) {
    throw std::invalid_argument("CFS: output LPF must cut below the IF");
  }
}

dsp::RealSignal CyclicFrequencyShifter::if_stage(std::span<const dsp::Complex> rf,
                                                 dsp::Rng& rng) const {
  // Step 1: input mixing with CLK_in — a real multiplier, producing
  // both sidebands S(F±Δf). The original carrier also leaks through
  // (finite mixer isolation); keep a fraction of it so the model
  // reproduces the S(0) term of Fig. 9(c). The mixed complex waveform
  // is never materialized: |x·(clk+c)|² = (clk+c)²·|x|², so the mixer
  // gain goes straight into the square-law detector.
  dsp::RealSignal clk = clocks_.clk_in(rf.size());
  constexpr double kCarrierLeak = 0.25;
  for (double& v : clk) v += kCarrierLeak;

  // Step 2: envelope detection. |S(F)·(cos(2πΔf t)+c)|² beats the
  // sidebands against the carrier, landing the envelope at Δf (and
  // 2Δf); the detector's DC/flicker noise stays at baseband.
  dsp::RealSignal env = detector_.detect_raw_mixed(rf, clk, rng);

  // Step 3: IF amplification — bandpass at Δf with gain (folded into
  // the biquad's feed-forward coefficients).
  dsp::Biquad bp = dsp::Biquad::bandpass(cfg_.clock.frequency_hz, fs_hz_,
                                         cfg_.if_quality_factor);
  bp.scale_output(dsp::db_to_amp(cfg_.if_gain_db));
  return bp.process(env);
}

dsp::RealSignal CyclicFrequencyShifter::intermediate(std::span<const dsp::Complex> rf,
                                                     dsp::Rng& rng) const {
  return if_stage(rf, rng);
}

dsp::RealSignal CyclicFrequencyShifter::process(std::span<const dsp::Complex> rf,
                                                dsp::Rng& rng) const {
  dsp::RealSignal iff = if_stage(rf, rng);

  // Step 4: output mixing with the delay-line clock copy brings the IF
  // envelope back to baseband (amplitude × cos(Δφ)/2) and shifts the
  // residual baseband noise up to Δf. The 2x mixer scale rides the
  // low-pass coefficients below.
  const dsp::RealSignal mixed =
      dsp::mix_real(std::span<const double>(iff), cfg_.clock.frequency_hz, fs_hz_,
                    cfg_.clock.delay_line_phase_rad);

  // Step 5: low-pass away the Δf and 2Δf products.
  dsp::Biquad lpf = dsp::Biquad::lowpass(cfg_.output_lpf_cutoff_hz, fs_hz_, 0.707);
  lpf.scale_output(2.0);
  return lpf.process(mixed);
}

}  // namespace saiyan::frontend
