#include "frontend/lna.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/noise.hpp"
#include "dsp/utils.hpp"

namespace saiyan::frontend {

Lna::Lna(const LnaConfig& cfg) : cfg_(cfg) {
  if (cfg.bandwidth_hz <= 0.0) throw std::invalid_argument("Lna: bandwidth must be > 0");
  // kT = -174 dBm/Hz; input-referred excess noise (F - 1)·kT·B.
  const double kt_b_watts = dsp::dbm_to_watts(-174.0) * cfg.bandwidth_hz;
  const double f_lin = dsp::db_to_lin(cfg.noise_figure_db);
  input_noise_watts_ = kt_b_watts * std::max(0.0, f_lin - 1.0);
}

dsp::Signal Lna::amplify(std::span<const dsp::Complex> x, dsp::Rng& rng) const {
  dsp::Signal out(x.begin(), x.end());
  dsp::add_awgn(out, input_noise_watts_, rng);
  const double g = dsp::db_to_amp(cfg_.gain_db);
  for (dsp::Complex& v : out) v *= g;
  return out;
}

}  // namespace saiyan::frontend
