#include "frontend/lna.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/noise.hpp"
#include "dsp/simd.hpp"
#include "dsp/utils.hpp"

namespace saiyan::frontend {

Lna::Lna(const LnaConfig& cfg) : cfg_(cfg) {
  if (cfg.bandwidth_hz <= 0.0) throw std::invalid_argument("Lna: bandwidth must be > 0");
  // kT = -174 dBm/Hz; input-referred excess noise (F - 1)·kT·B.
  const double kt_b_watts = dsp::dbm_to_watts(-174.0) * cfg.bandwidth_hz;
  const double f_lin = dsp::db_to_lin(cfg.noise_figure_db);
  input_noise_watts_ = kt_b_watts * std::max(0.0, f_lin - 1.0);
}

double Lna::noise_sigma() const { return std::sqrt(input_noise_watts_ / 2.0); }

dsp::Signal Lna::amplify(std::span<const dsp::Complex> x, dsp::Rng& rng) const {
  dsp::Signal out;
  amplify_into(x, rng, out);
  return out;
}

void Lna::amplify_into(std::span<const dsp::Complex> x, dsp::Rng& rng,
                       dsp::Signal& out) const {
  // Fused pass: y = g (x + n), the gaussians drawn inside the
  // SIMD-dispatched kernel in the per-sample re/im order.
  out.resize(x.size());
  const double g = dsp::db_to_amp(cfg_.gain_db);
  const double sigma = std::sqrt(input_noise_watts_ / 2.0);
  dsp::simd::gain_add_gaussian(reinterpret_cast<const double*>(x.data()),
                               2 * x.size(), g, sigma,
                               reinterpret_cast<double*>(out.data()), rng);
}

}  // namespace saiyan::frontend
