#include "frontend/lna.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/noise.hpp"
#include "dsp/utils.hpp"

namespace saiyan::frontend {

Lna::Lna(const LnaConfig& cfg) : cfg_(cfg) {
  if (cfg.bandwidth_hz <= 0.0) throw std::invalid_argument("Lna: bandwidth must be > 0");
  // kT = -174 dBm/Hz; input-referred excess noise (F - 1)·kT·B.
  const double kt_b_watts = dsp::dbm_to_watts(-174.0) * cfg.bandwidth_hz;
  const double f_lin = dsp::db_to_lin(cfg.noise_figure_db);
  input_noise_watts_ = kt_b_watts * std::max(0.0, f_lin - 1.0);
}

dsp::Signal Lna::amplify(std::span<const dsp::Complex> x, dsp::Rng& rng) const {
  // Single fused pass: y = g (x + n). Same draws in the same order as
  // the copy + add_awgn + scale sequence it replaces.
  dsp::Signal out(x.size());
  const double g = dsp::db_to_amp(cfg_.gain_db);
  const double sigma = std::sqrt(input_noise_watts_ / 2.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double nr = sigma * rng.gaussian();
    const double ni = sigma * rng.gaussian();
    out[i] = dsp::Complex(g * (x[i].real() + nr), g * (x[i].imag() + ni));
  }
  return out;
}

}  // namespace saiyan::frontend
