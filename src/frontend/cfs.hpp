// Cyclic-frequency shifting circuit (paper §3.1, Figs. 9 & 11).
//
// The square-law envelope detector dumps its self-mixing products, DC
// offset and flicker noise at baseband — right on top of the wanted
// envelope. CFS sidesteps this:
//
//   1. input mixer: multiply the RF signal with CLK_in(Δf), creating
//      sidebands at F±Δf;
//   2. envelope detection: the sidebands beat against the carrier so
//      the wanted envelope lands at the *intermediate frequency* Δf,
//      while the detector's own noise still lands at DC;
//   3. IF amplifier: a frequency-selective low-power amplifier (2N2222
//      transistor stage, modelled as a bandpass biquad with gain)
//      boosts the clean IF copy and rejects the polluted baseband;
//   4. output mixer: multiply with CLK_out(Δf) (delay-line copy of
//      CLK_in) to bring the envelope back to baseband, pushing the DC
//      noise up to Δf;
//   5. low-pass filter: remove the Δf-shifted noise and the 2Δf image.
//
// Net effect: the envelope reaches the comparator with the detector's
// baseband noise removed — the paper measures an 11 dB SNR gain.
#pragma once

#include <span>
#include <utility>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "frontend/clock.hpp"
#include "frontend/envelope_detector.hpp"

namespace saiyan::frontend {

struct CfsConfig {
  ClockConfig clock;                  ///< Δf and the delay-line phase
  double if_gain_db = 20.0;           ///< IF amplifier gain
  double if_quality_factor = 3.0;     ///< IF bandpass selectivity (BW = Δf/Q)
  double output_lpf_cutoff_hz = 200e3;
};

class CyclicFrequencyShifter {
 public:
  CyclicFrequencyShifter(const CfsConfig& cfg, const EnvelopeDetectorConfig& ed_cfg);

  /// Run the full CFS chain on an RF complex-baseband waveform and
  /// return the recovered baseband envelope.
  dsp::RealSignal process(std::span<const dsp::Complex> rf, dsp::Rng& rng) const;

  /// Workspace variant: writes the envelope into `out`, reusing the
  /// scratch's cached mixer-clock tables (regenerated only when the
  /// waveform length changes) and noise buffers. Identical values and
  /// RNG consumption to process().
  void process_into(std::span<const dsp::Complex> rf, dsp::Rng& rng,
                    dsp::RealSignal& out, FrontendScratch& scratch) const;

  /// Fused-LNA variant: `rf` is the unamplified waveform; the CG-LNA
  /// stage folds into the square-law kernel (see
  /// EnvelopeDetector::detect_raw_mixed_amplified_into). Identical
  /// values and RNG consumption to amplifying first.
  void process_amplified_into(std::span<const dsp::Complex> rf,
                              double lna_gain, double lna_sigma,
                              dsp::Rng& rng, dsp::RealSignal& out,
                              FrontendScratch& scratch) const;

  /// The IF waveform after step 3 (before the output mixer) — exposed
  /// for the Fig. 10 spectrum benchmark and tests.
  dsp::RealSignal intermediate(std::span<const dsp::Complex> rf, dsp::Rng& rng) const;

  const CfsConfig& config() const { return cfg_; }

 private:
  dsp::RealSignal if_stage(std::span<const dsp::Complex> rf, dsp::Rng& rng) const;
  /// `lna` non-null applies the fused CG-LNA (gain, sigma) inside the
  /// square-law detector; null means `rf` is already amplified.
  void if_stage_into(std::span<const dsp::Complex> rf, dsp::Rng& rng,
                     dsp::RealSignal& out, FrontendScratch& scratch,
                     const std::pair<double, double>* lna) const;
  void output_stage_into(std::size_t n, dsp::RealSignal& out,
                         FrontendScratch& scratch) const;

  CfsConfig cfg_;
  EnvelopeDetector detector_;
  ClockGenerator clocks_;
  double fs_hz_;
};

}  // namespace saiyan::frontend
