// Reusable per-worker scratch for the analog front-end models.
//
// The receive chain's per-packet passes (mixer clock synthesis,
// flicker/white noise fills) either depend only on the configuration
// and the packet length — in which case they are cached here and
// regenerated only when the length changes — or are per-packet random
// fills whose buffers are reused across packets. One FrontendScratch
// lives inside each core::DemodWorkspace; sweeps that decode thousands
// of identically-sized packets touch the allocator only on the first.
#pragma once

#include "dsp/types.hpp"

namespace saiyan::frontend {

struct FrontendScratch {
  // CFS mixer tables, cached per (clock config, waveform length) —
  // the key fields below guard against a workspace being reused
  // across demodulators with different clock settings.
  dsp::RealSignal cfs_clk;  ///< CLK_in cosine + carrier-leak offset
  dsp::RealSignal cfs_lo;   ///< output-mixer cosine (delay-line copy)
  double clk_freq_hz = 0.0;     ///< clock config the tables were built for
  double clk_fs_hz = 0.0;
  double clk_phase_rad = 0.0;

  // Envelope-detector impairment buffers (refilled per packet).
  dsp::RealSignal flicker;
  dsp::RealSignal flicker_drive;
};

}  // namespace saiyan::frontend
