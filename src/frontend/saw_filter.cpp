#include "frontend/saw_filter.hpp"

#include <array>
#include <cmath>

#include "channel/temperature.hpp"
#include "dsp/fft.hpp"
#include "dsp/simd.hpp"
#include "dsp/utils.hpp"

namespace saiyan::frontend {
namespace {

// Measured response anchors digitized from paper Fig. 5 (frequency in
// MHz, amplitude in dB). The 433.5->434 MHz segment carries the three
// calibration points called out in the caption: 25 dB over 500 kHz,
// 9.5 dB over 250 kHz, 7.2 dB over 125 kHz, with -10 dB insertion loss
// at the passband edge.
constexpr std::array<double, 13> kFreqMhz = {
    428.0, 430.0, 432.0, 433.0, 433.5, 433.75, 433.875,
    434.0, 434.4, 434.8, 436.0, 438.0, 440.0};
constexpr std::array<double, 13> kGainDb = {
    -62.0, -55.0, -46.0, -40.0, -35.0, -19.5, -17.2,
    -10.0, -10.0, -13.0, -42.0, -55.0, -65.0};

}  // namespace

SawFilter::SawFilter(const SawFilterConfig& cfg)
    : shift_hz_(channel::saw_frequency_shift_hz(kPassbandEdgeHz, cfg.temperature_c)) {}

double SawFilter::response_db(double rf_frequency_hz) const {
  // A temperature shift of +s Hz moves the whole response up in
  // frequency; evaluating the nominal curve at (f - s) realizes that.
  const double f_mhz = (rf_frequency_hz - shift_hz_) / 1e6;
  return dsp::interp1(std::span<const double>(kFreqMhz),
                      std::span<const double>(kGainDb), f_mhz);
}

const dsp::RealSignal& SawFilter::gain_table(std::size_t n, double fs_hz,
                                             double rf_center_hz) const {
  // Evaluating the interpolated response and the dB->amplitude
  // conversion per bin dominates the filter cost at Monte-Carlo packet
  // rates; the table only depends on (n, fs, rf_center), which are
  // fixed within a sweep, so memoize the most recent one.
  if (gain_cache_.n != n || gain_cache_.fs_hz != fs_hz ||
      gain_cache_.rf_center_hz != rf_center_hz) {
    gain_cache_.n = n;
    gain_cache_.fs_hz = fs_hz;
    gain_cache_.rf_center_hz = rf_center_hz;
    gain_cache_.gains.resize(n);
    // The inverse transform's 1/n normalization is baked into the
    // table (the filter calls inverse_raw), saving one full sweep
    // over the padded waveform per packet.
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) {
      const double f = dsp::bin_frequency(k, n, fs_hz);
      gain_cache_.gains[k] = dsp::db_to_amp(response_db(rf_center_hz + f)) * inv_n;
    }
  }
  return gain_cache_.gains;
}

dsp::Signal SawFilter::filter(std::span<const dsp::Complex> x, double fs_hz,
                              double rf_center_hz) const {
  dsp::Signal out;
  dsp::Signal scratch;
  filter_into(x, fs_hz, rf_center_hz, out, scratch);
  return out;
}

void SawFilter::filter_into(std::span<const dsp::Complex> x, double fs_hz,
                            double rf_center_hz, dsp::Signal& out,
                            dsp::Signal& fft_scratch) const {
  if (x.empty()) {
    out.clear();
    return;
  }
  // 3·2^k lengths are planned directly (radix-3 split), so a ~45k
  // packet pads 1.09x to 49152 instead of 1.45x to 65536 — the
  // dominant transform of the receive chain shrinks ~25%.
  const std::size_t n = dsp::next_fast_len(x.size());
  const dsp::RealSignal& gains = gain_table(n, fs_hz, rf_center_hz);
  const auto plan = dsp::fft_plan(n);
  out.assign(n, dsp::Complex{});
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i];
  plan->forward(out, fft_scratch);
  dsp::simd::complex_scale_table(out.data(), gains.data(), n);
  plan->inverse_raw(out, fft_scratch);
  out.resize(x.size());
}

double SawFilter::recommended_rf_center_hz(double bandwidth_hz) {
  return kPassbandEdgeHz - bandwidth_hz / 2.0;
}

double SawFilter::amplitude_gap_db(double bandwidth_hz) const {
  const double top = response_db(kPassbandEdgeHz);
  const double bottom = response_db(kPassbandEdgeHz - bandwidth_hz);
  return top - bottom;
}

}  // namespace saiyan::frontend
