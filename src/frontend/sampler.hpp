// Low-power voltage sampler (paper §2.3, Table 1).
//
// The comparator output is latched into an MCU counter at a rate that
// trades power for throughput. For a chirp carrying K bits the Nyquist
// minimum is 2·BW/2^(SF-K); the paper's benchmark (Table 1) shows
// practice needs a little more and settles on 3.2·BW/2^(SF-K).
#pragma once

#include <span>

#include "dsp/types.hpp"
#include "lora/params.hpp"

namespace saiyan::frontend {

struct SampledBits {
  dsp::BitVector bits;        ///< one sample per tick
  double sample_rate_hz = 0;  ///< actual tick rate
  double samples_per_symbol = 0;
};

class VoltageSampler {
 public:
  /// `rate_multiplier` scales the Nyquist minimum: 1.0 = theory
  /// (2·BW/2^(SF-K)), Saiyan's default 1.6 gives the paper's
  /// 3.2·BW/2^(SF-K).
  explicit VoltageSampler(const lora::PhyParams& params, double rate_multiplier = 1.6);

  /// Sample a comparator bit stream produced at the simulation rate.
  SampledBits sample(std::span<const std::uint8_t> comparator_bits,
                     double fs_hz) const;

  /// Workspace variant: fills a caller-owned SampledBits, reusing its
  /// bit buffer's capacity. Identical to sample().
  void sample_into(std::span<const std::uint8_t> comparator_bits, double fs_hz,
                   SampledBits& out) const;

  /// Sample the analog envelope directly (used by the correlation
  /// decoder, which consumes amplitude samples rather than logic
  /// levels).
  dsp::RealSignal sample_analog(std::span<const double> envelope, double fs_hz) const;

  double sample_rate_hz() const { return rate_hz_; }

 private:
  lora::PhyParams params_;
  double rate_hz_;
};

}  // namespace saiyan::frontend
