// Voltage comparators (paper §2.2, Eq. 3 and Fig. 7).
//
// Saiyan replaces the power-hungry ADC with an NCS2202-class
// comparator. A single threshold chatters on noisy envelopes: a high
// threshold UH misses peaks split by amplitude valleys, a low
// threshold UL fires on spurious humps. The double-threshold
// (hysteresis) comparator of Eq. 3 latches high once the envelope
// clears UH and releases only when it falls below UL, producing one
// clean high run whose trailing edge marks the amplitude peak.
#pragma once

#include <span>

#include "dsp/types.hpp"

namespace saiyan::frontend {

/// Simple comparator with one cut-off voltage.
class SingleThresholdComparator {
 public:
  explicit SingleThresholdComparator(double threshold);

  dsp::BitVector quantize(std::span<const double> envelope) const;
  double threshold() const { return threshold_; }

 private:
  double threshold_;
};

/// Hysteresis comparator implementing paper Eq. 3:
///   B_i = high  if A_i >= UH                    (from low)
///   B_i = high  if A_i >= UL and B_{i-1} high   (hold)
///   B_i = low   otherwise.
class DoubleThresholdComparator {
 public:
  /// Requires UH > UL.
  DoubleThresholdComparator(double u_high, double u_low);

  dsp::BitVector quantize(std::span<const double> envelope) const;

  /// Workspace variant: writes into a caller-owned bit buffer (the
  /// zero-allocation batch-decode path). Identical to quantize().
  void quantize_into(std::span<const double> envelope, dsp::BitVector& out) const;

  double u_high() const { return u_high_; }
  double u_low() const { return u_low_; }

 private:
  double u_high_;
  double u_low_;
};

/// Determine UH/UL from a measured peak amplitude following §4.1:
/// UH = Amax · 10^(-G/20) (G dB below the peak) and UL = UH - UF,
/// where UF is the envelope ripple amplitude.
struct ThresholdPair {
  double u_high = 0.0;
  double u_low = 0.0;
};
ThresholdPair thresholds_from_peak(double a_max, double gap_db, double ripple);

}  // namespace saiyan::frontend
