// SAW filter model (Qualcomm B39431-B3790-Z810, paper Fig. 5).
//
// Saiyan repurposes the steep monotonic skirt of this 434 MHz SAW
// filter as a frequency-to-amplitude converter: within the "critical
// band" 433.5–434 MHz its amplitude response rises 25 dB, so a chirp
// sweeping through the band comes out amplitude-modulated, peaking
// when the instantaneous frequency hits the top band edge.
//
// The model interpolates the measured response anchors from Fig. 5
// (incl. the 10 dB insertion loss at the passband) in dB and applies
// it as a frequency-domain LTI filter to the complex-baseband
// waveform. Ambient temperature shifts the response according to the
// substrate's TCF (channel/temperature.hpp).
#pragma once

#include <span>

#include "dsp/types.hpp"

namespace saiyan::frontend {

struct SawFilterConfig {
  double temperature_c = 25.0;  ///< shifts the response via the TCF
};

class SawFilter {
 public:
  explicit SawFilter(const SawFilterConfig& cfg = {});

  /// Amplitude response (dB, negative = loss) at an absolute RF
  /// frequency, including the 10 dB insertion loss.
  double response_db(double rf_frequency_hz) const;

  /// Filter a complex-baseband waveform whose sample k / FFT bin f
  /// corresponds to RF frequency `rf_center_hz + f`. The waveform is
  /// zero-padded to the next FFT-friendly length (power of two or
  /// 3·2^k — a ~45k-sample packet transforms at 49152, not 65536).
  dsp::Signal filter(std::span<const dsp::Complex> x, double fs_hz,
                     double rf_center_hz) const;

  /// Workspace variant: `out` receives the filtered waveform (trimmed
  /// back to x.size()); `fft_scratch` backs the radix-3 de-interleave
  /// pass. Identical values to filter(), zero allocations once the
  /// buffers are warm.
  void filter_into(std::span<const dsp::Complex> x, double fs_hz,
                   double rf_center_hz, dsp::Signal& out,
                   dsp::Signal& fft_scratch) const;

  /// Center the chirp band so its top edge hits the passband edge
  /// (434 MHz): rf_center = 434 MHz - BW/2. This is how Saiyan aligns
  /// the LoRa channel with the critical band.
  static double recommended_rf_center_hz(double bandwidth_hz);

  /// Amplitude gap (dB) across a chirp of the given bandwidth whose
  /// top edge is aligned with the passband edge — the paper's
  /// Fig. 5/23 metric (25 dB @500 kHz, 9.5 dB @250 kHz, 7.2 dB @125 kHz).
  double amplitude_gap_db(double bandwidth_hz) const;

  /// Top edge of the critical band (passband edge), 434 MHz nominal.
  static constexpr double kPassbandEdgeHz = 434.0e6;

 private:
  /// Per-bin amplitude gains for an n-point transform (memoized for
  /// the most recent geometry — fixed within a sweep). The cache makes
  /// instances non-thread-safe; receive chains are per-thread.
  const dsp::RealSignal& gain_table(std::size_t n, double fs_hz,
                                    double rf_center_hz) const;

  double shift_hz_;  // temperature-induced response shift

  struct GainCache {
    std::size_t n = 0;
    double fs_hz = 0.0;
    double rf_center_hz = 0.0;
    dsp::RealSignal gains;
  };
  mutable GainCache gain_cache_;
};

}  // namespace saiyan::frontend
