// Clock generation for the CFS circuit (paper §3.1, Eq. 5).
//
// The MCU programs a micro-power LTC6907 oscillator to produce
// CLK_in(Δf); CLK_out is a delay-line copy, CLK_out = CLK_in(Δf + Δφ),
// with the line length tuned so cos(Δφ) ≈ 1.
#pragma once

#include <cstddef>

#include "dsp/types.hpp"

namespace saiyan::frontend {

struct ClockConfig {
  double frequency_hz = 1e6;      ///< Δf, the intermediate frequency
  double sample_rate_hz = 4e6;
  double delay_line_phase_rad = 0.0;  ///< Δφ of the CLK_out copy
};

/// Oscillator + delay-line pair.
class ClockGenerator {
 public:
  explicit ClockGenerator(const ClockConfig& cfg);

  /// n samples of CLK_in(Δf) (unit-amplitude cosine).
  dsp::RealSignal clk_in(std::size_t n) const;

  /// n samples of CLK_out = CLK_in(Δf + Δφ) — the delay-line copy.
  dsp::RealSignal clk_out(std::size_t n) const;

  /// Mixing efficiency cos(Δφ): the fraction of signal amplitude the
  /// output mixer recovers when the clocks are misaligned.
  double alignment() const;

  const ClockConfig& config() const { return cfg_; }

 private:
  ClockConfig cfg_;
};

}  // namespace saiyan::frontend
