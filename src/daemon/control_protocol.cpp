#include "daemon/control_protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace saiyan::daemon {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(std::string_view bytes) {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[0])) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[3])) << 24;
}

std::string encode_frame(std::uint8_t head, std::string_view payload) {
  std::string out;
  out.reserve(5 + payload.size());
  put_u32(out, static_cast<std::uint32_t>(1 + payload.size()));
  out.push_back(static_cast<char>(head));
  out.append(payload);
  return out;
}

/// Shared framing checks; on success returns the head byte and sets
/// `payload` to the rest of the body.
saiyan::Result<std::uint8_t> decode_frame(std::string_view frame,
                                          std::string_view& payload) {
  if (frame.size() < 5) return fail("control frame shorter than its header");
  const std::uint32_t len = get_u32(frame);
  if (len == 0) return fail("control frame with empty body");
  if (len > 1 + kMaxControlPayload) {
    return fail("control frame body exceeds cap");
  }
  if (frame.size() != 4 + static_cast<std::size_t>(len)) {
    return fail("control frame length prefix disagrees with frame size");
  }
  payload = frame.substr(5);
  return static_cast<std::uint8_t>(frame[4]);
}

}  // namespace

std::string encode_request(const ControlRequest& req) {
  return encode_frame(static_cast<std::uint8_t>(req.op), req.payload);
}

std::string encode_response(const ControlResponse& resp) {
  return encode_frame(static_cast<std::uint8_t>(resp.status), resp.payload);
}

saiyan::Result<ControlRequest> decode_request(std::string_view frame) {
  std::string_view payload;
  auto head = decode_frame(frame, payload);
  if (!head.ok()) return head.error();
  const std::uint8_t op = head.value();
  if (op != static_cast<std::uint8_t>(ControlOp::kStats) &&
      op != static_cast<std::uint8_t>(ControlOp::kReload) &&
      op != static_cast<std::uint8_t>(ControlOp::kDrain) &&
      op != static_cast<std::uint8_t>(ControlOp::kHealth) &&
      op != static_cast<std::uint8_t>(ControlOp::kMetrics) &&
      op != static_cast<std::uint8_t>(ControlOp::kDumpTrace) &&
      op != static_cast<std::uint8_t>(ControlOp::kLinks)) {
    return fail("unknown control op " + std::to_string(op));
  }
  ControlRequest req;
  req.op = static_cast<ControlOp>(op);
  req.payload.assign(payload);
  return req;
}

saiyan::Result<ControlResponse> decode_response(std::string_view frame) {
  std::string_view payload;
  auto head = decode_frame(frame, payload);
  if (!head.ok()) return head.error();
  const std::uint8_t status = head.value();
  if (status != static_cast<std::uint8_t>(ControlStatus::kOk) &&
      status != static_cast<std::uint8_t>(ControlStatus::kError)) {
    return fail("unknown control status " + std::to_string(status));
  }
  ControlResponse resp;
  resp.status = static_cast<ControlStatus>(status);
  resp.payload.assign(payload);
  return resp;
}

saiyan::Result<Unit> write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(std::string("control write: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return Unit{};
}

namespace {

saiyan::Result<Unit> read_all(int fd, char* dst, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, dst + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return fail(std::string("control read: ") + std::strerror(errno));
    }
    if (r == 0) return fail("control read: peer closed mid-frame");
    off += static_cast<std::size_t>(r);
  }
  return Unit{};
}

}  // namespace

saiyan::Result<std::string> read_frame(int fd) {
  char head[4];
  if (auto r = read_all(fd, head, sizeof(head)); !r.ok()) return r.error();
  const std::uint32_t len = get_u32(std::string_view(head, 4));
  if (len == 0) return fail("control frame with empty body");
  if (len > 1 + kMaxControlPayload) {
    return fail("control frame body exceeds cap");
  }
  std::string frame(head, sizeof(head));
  frame.resize(4 + len, '\0');
  if (auto r = read_all(fd, frame.data() + 4, len); !r.ok()) {
    return r.error();
  }
  return frame;
}

}  // namespace saiyan::daemon
