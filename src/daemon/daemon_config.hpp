// saiyand config file: flat `key value` lines into a GatewayConfig.
//
//   # saiyand.conf
//   socket /tmp/saiyand.sock
//   workers 4
//   chunk_samples 16384
//   throttle_us 0
//   resync 1
//   subscriber_queue 256
//   sic_depth 1
//   min_score 0.6
//   payload_symbols 16
//   sf 7
//   bandwidth_hz 500e3
//   sample_rate_hz 4e6
//   bits_per_symbol 2
//   mode super
//   trace /var/lib/saiyan/demo.trace   # repeatable
//
// '#' starts a comment; blank lines are skipped. Unknown keys and
// unparsable values fail with "path:LINE: ...", and the assembled
// GatewayConfig goes through GatewayConfig::validate() so a bad value
// is reported by its dotted field path before the daemon starts.
// PHY keys (sf/bandwidth_hz/sample_rate_hz/bits_per_symbol/
// preamble_symbols/mode) rebuild stream.saiyan via SaiyanConfig::make
// so every derived rate stays consistent.
#pragma once

#include <string>
#include <vector>

#include "core/result.hpp"
#include "gateway/gateway_config.hpp"

namespace saiyan::daemon {

struct DaemonOptions {
  std::string config_path;  ///< re-read on SIGHUP ("" = none given)
  std::string socket_path = "/tmp/saiyand.sock";
  std::vector<std::string> traces;  ///< enqueued at startup
  gateway::GatewayConfig gateway;
};

/// Parse + validate a config file. Errors carry "path:LINE:" context
/// for syntax problems and the dotted field path for range problems.
saiyan::Result<DaemonOptions> load_daemon_config(const std::string& path);

}  // namespace saiyan::daemon
