#include "daemon/control_server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace saiyan::daemon {

namespace {

void close_quiet(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

saiyan::Result<std::unique_ptr<ControlServer>> ControlServer::start(
    const std::string& socket_path, Handler handler) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return fail("control socket path too long: " + socket_path);
  }
  std::unique_ptr<ControlServer> srv(
      new ControlServer(socket_path, std::move(handler)));
  srv->listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (srv->listen_fd_ < 0) {
    return fail(std::string("control socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  ::unlink(socket_path.c_str());  // stale socket from a crashed daemon
  if (::bind(srv->listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("control bind " + socket_path + ": " + std::strerror(errno));
  }
  if (::listen(srv->listen_fd_, 8) != 0) {
    return fail("control listen " + socket_path + ": " +
                std::strerror(errno));
  }
  if (::pipe(srv->stop_pipe_) != 0) {
    return fail(std::string("control stop pipe: ") + std::strerror(errno));
  }
  srv->thr_ = std::thread([s = srv.get()] { s->run(); });
  return srv;
}

ControlServer::ControlServer(std::string path, Handler handler)
    : path_(std::move(path)), handler_(std::move(handler)) {}

ControlServer::~ControlServer() {
  if (stop_pipe_[1] >= 0) {
    const char b = 's';
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &b, 1);
  }
  if (thr_.joinable()) thr_.join();
  close_quiet(listen_fd_);
  close_quiet(stop_pipe_[0]);
  close_quiet(stop_pipe_[1]);
  ::unlink(path_.c_str());
}

void ControlServer::run() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    ControlResponse resp;
    auto frame = read_frame(conn);
    if (!frame.ok()) {
      resp = {ControlStatus::kError, frame.message()};
    } else {
      auto req = decode_request(frame.value());
      if (!req.ok()) {
        resp = {ControlStatus::kError, req.message()};
      } else {
        resp = handler_(req.value());
      }
    }
    // Best effort: a client that hung up mid-response loses only its
    // own answer.
    (void)write_all(conn, encode_response(resp));
    ::close(conn);
  }
}

}  // namespace saiyan::daemon
