// Unix-domain control socket server for saiyand.
//
// One-shot connections: a client connects, sends one request frame,
// receives one response frame, and the server closes the connection —
// no session state, so a wedged or malicious client can hold at most
// one pending request. The accept loop runs on its own thread and
// multiplexes the listening socket against a stop pipe with poll(),
// so shutdown never races a blocking accept().
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "core/result.hpp"
#include "daemon/control_protocol.hpp"

namespace saiyan::daemon {

class ControlServer {
 public:
  /// Runs on the server thread for every well-formed request; the
  /// returned response is written back to the client. Malformed
  /// frames get a kError response without reaching the handler.
  using Handler = std::function<ControlResponse(const ControlRequest&)>;

  /// Bind `socket_path` (unlinking a stale socket first), start the
  /// accept thread. Fails if the path cannot be bound.
  static saiyan::Result<std::unique_ptr<ControlServer>> start(
      const std::string& socket_path, Handler handler);

  /// Stops the accept thread and unlinks the socket path.
  ~ControlServer();

  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  const std::string& socket_path() const { return path_; }

 private:
  ControlServer(std::string path, Handler handler);
  void run();

  std::string path_;
  Handler handler_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread thr_;
};

}  // namespace saiyan::daemon
