// saiyand control wire protocol (documented in docs/GATEWAY.md).
//
// Length-prefixed frames over a unix domain socket, little-endian:
//
//   request:  u32 length | u8 op     | payload[length - 1]
//   response: u32 length | u8 status | payload[length - 1]
//
// `length` covers the op/status byte plus the payload. Ops: stats = 1
// (response payload: GatewayStats::to_text() `key value` lines),
// reload = 2 (re-read the config file and swap the serving config;
// in-flight jobs are untouched), drain = 3 (block until every queued
// job and subscriber queue is empty), health = 4 (response payload:
// GatewayHealth::to_text() — watchdog liveness + degradation ladder),
// metrics = 5 (response payload: Prometheus text exposition of the
// stats snapshot), dump_trace = 6 (response payload: Chrome
// trace-event JSON from the flight recorder, trimmed to fit the
// payload cap; "{\"traceEvents\":[]}" when tracing is off or compiled
// out), links = 7 (request payload: optional "top=N sort=KEY" options
// parsed by gateway::parse_link_query; response payload:
// gateway::links_to_text() `key value` lines of the link-telescope
// registry). status: 0 = ok, 1 = error (the payload is the error
// message).
//
// Hostile-input posture matches the trace reader: a declared length is
// bounded (kMaxControlPayload) before anything is allocated, and a
// short read is an error, never a hang on garbage.
//
// The byte-level codec is separated from the fd-level framed I/O so
// the protocol round-trips under test without a socket.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/result.hpp"

namespace saiyan::daemon {

enum class ControlOp : std::uint8_t {
  kStats = 1,
  kReload = 2,
  kDrain = 3,
  kHealth = 4,
  kMetrics = 5,
  kDumpTrace = 6,
  kLinks = 7,
};

enum class ControlStatus : std::uint8_t {
  kOk = 0,
  kError = 1,
};

/// Frame body cap: a corrupted or adversarial length field must not
/// translate into an absurd allocation.
inline constexpr std::size_t kMaxControlPayload = 1u << 20;

struct ControlRequest {
  ControlOp op = ControlOp::kStats;
  std::string payload;
};

struct ControlResponse {
  ControlStatus status = ControlStatus::kOk;
  std::string payload;
};

/// Byte-level codec (framing included): encode_* yields the complete
/// wire frame; decode_* consumes exactly one complete frame.
std::string encode_request(const ControlRequest& req);
std::string encode_response(const ControlResponse& resp);
saiyan::Result<ControlRequest> decode_request(std::string_view frame);
saiyan::Result<ControlResponse> decode_response(std::string_view frame);

/// Blocking fd-level framed I/O (retries EINTR, handles short
/// reads/writes). read_frame returns one complete frame — length
/// prefix included, validated against kMaxControlPayload before the
/// body is allocated — ready for decode_request()/decode_response().
saiyan::Result<Unit> write_all(int fd, std::string_view bytes);
saiyan::Result<std::string> read_frame(int fd);

}  // namespace saiyan::daemon
