#include "daemon/daemon_config.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

namespace saiyan::daemon {

namespace {

saiyan::Error at(const std::string& path, std::size_t lineno,
                 const std::string& why) {
  return saiyan::Error{path + ":" + std::to_string(lineno) + ": " + why};
}

bool parse_u64(std::string_view v, std::uint64_t& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(std::string(v).c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = x;
  return true;
}

bool parse_f64(std::string_view v, double& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const double x = std::strtod(std::string(v).c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  out = x;
  return true;
}

}  // namespace

saiyan::Result<DaemonOptions> load_daemon_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) return fail("cannot open config file: " + path);
  DaemonOptions opt;
  opt.config_path = path;
  lora::PhyParams phy = opt.gateway.stream.saiyan.phy;
  core::Mode mode = opt.gateway.stream.saiyan.mode;
  bool phy_touched = false;

  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string_view sv(raw);
    if (const auto hash = sv.find('#'); hash != std::string_view::npos) {
      sv = sv.substr(0, hash);
    }
    std::istringstream ls{std::string(sv)};
    std::string key, value, extra;
    if (!(ls >> key)) continue;  // blank / comment-only line
    if (!(ls >> value)) return at(path, lineno, "key '" + key + "' has no value");
    if (ls >> extra) return at(path, lineno, "trailing token '" + extra + "'");

    std::uint64_t u = 0;
    double f = 0.0;
    auto want_u64 = [&]() -> bool { return parse_u64(value, u); };
    auto want_f64 = [&]() -> bool { return parse_f64(value, f); };

    if (key == "socket") {
      opt.socket_path = value;
    } else if (key == "trace") {
      opt.traces.push_back(value);
    } else if (key == "workers") {
      if (!want_u64()) return at(path, lineno, "workers: not an integer");
      opt.gateway.workers = static_cast<std::size_t>(u);
    } else if (key == "chunk_samples") {
      if (!want_u64()) return at(path, lineno, "chunk_samples: not an integer");
      opt.gateway.chunk_samples = static_cast<std::size_t>(u);
    } else if (key == "throttle_us") {
      if (!want_u64()) return at(path, lineno, "throttle_us: not an integer");
      opt.gateway.throttle_us = u;
    } else if (key == "resync") {
      if (!want_u64() || u > 1) return at(path, lineno, "resync: expected 0 or 1");
      opt.gateway.resync = u != 0;
    } else if (key == "subscriber_queue") {
      if (!want_u64()) {
        return at(path, lineno, "subscriber_queue: not an integer");
      }
      opt.gateway.limits.subscriber_queue = static_cast<std::size_t>(u);
    } else if (key == "sic_shed_queue") {
      if (!want_u64()) return at(path, lineno, "sic_shed_queue: not an integer");
      opt.gateway.limits.sic_shed_queue = static_cast<std::size_t>(u);
    } else if (key == "sic_max_rescan_queue") {
      if (!want_u64()) {
        return at(path, lineno, "sic_max_rescan_queue: not an integer");
      }
      opt.gateway.limits.sic_max_rescan_queue = static_cast<std::size_t>(u);
    } else if (key == "watchdog_poll_ms") {
      if (!want_u64()) {
        return at(path, lineno, "watchdog_poll_ms: not an integer");
      }
      opt.gateway.watchdog.poll_ms = u;
    } else if (key == "watchdog_heartbeat_timeout_ms") {
      if (!want_u64()) {
        return at(path, lineno,
                  "watchdog_heartbeat_timeout_ms: not an integer");
      }
      opt.gateway.watchdog.heartbeat_timeout_ms = u;
    } else if (key == "watchdog_job_deadline_ms") {
      if (!want_u64()) {
        return at(path, lineno, "watchdog_job_deadline_ms: not an integer");
      }
      opt.gateway.watchdog.job_deadline_ms = u;
    } else if (key == "degradation") {
      if (!want_u64() || u > 1) {
        return at(path, lineno, "degradation: expected 0 or 1");
      }
      opt.gateway.degradation.enabled = u != 0;
    } else if (key == "degradation_backlog_high") {
      if (!want_u64()) {
        return at(path, lineno, "degradation_backlog_high: not an integer");
      }
      opt.gateway.degradation.backlog_high = static_cast<std::size_t>(u);
    } else if (key == "degradation_backlog_low") {
      if (!want_u64()) {
        return at(path, lineno, "degradation_backlog_low: not an integer");
      }
      opt.gateway.degradation.backlog_low = static_cast<std::size_t>(u);
    } else if (key == "degradation_p99_high_us") {
      if (!want_u64()) {
        return at(path, lineno, "degradation_p99_high_us: not an integer");
      }
      opt.gateway.degradation.p99_high_us = u;
    } else if (key == "degradation_p99_low_us") {
      if (!want_u64()) {
        return at(path, lineno, "degradation_p99_low_us: not an integer");
      }
      opt.gateway.degradation.p99_low_us = u;
    } else if (key == "degradation_escalate_after") {
      if (!want_u64()) {
        return at(path, lineno, "degradation_escalate_after: not an integer");
      }
      opt.gateway.degradation.escalate_after = static_cast<std::uint32_t>(u);
    } else if (key == "degradation_deescalate_after") {
      if (!want_u64()) {
        return at(path, lineno,
                  "degradation_deescalate_after: not an integer");
      }
      opt.gateway.degradation.deescalate_after =
          static_cast<std::uint32_t>(u);
    } else if (key == "sic_depth") {
      if (!want_u64()) return at(path, lineno, "sic_depth: not an integer");
      opt.gateway.stream.sic.depth = static_cast<std::size_t>(u);
    } else if (key == "min_score") {
      if (!want_f64()) return at(path, lineno, "min_score: not a number");
      opt.gateway.stream.min_score = f;
    } else if (key == "payload_symbols") {
      if (!want_u64()) {
        return at(path, lineno, "payload_symbols: not an integer");
      }
      opt.gateway.stream.payload_symbols = static_cast<std::size_t>(u);
    } else if (key == "seed") {
      if (!want_u64()) return at(path, lineno, "seed: not an integer");
      opt.gateway.stream.seed = u;
    } else if (key == "seed_by_offset") {
      if (!want_u64() || u > 1) {
        return at(path, lineno, "seed_by_offset: expected 0 or 1");
      }
      opt.gateway.stream.seed_by_offset = u != 0;
    } else if (key == "sf") {
      if (!want_u64()) return at(path, lineno, "sf: not an integer");
      phy.spreading_factor = static_cast<int>(u);
      phy_touched = true;
    } else if (key == "bandwidth_hz") {
      if (!want_f64()) return at(path, lineno, "bandwidth_hz: not a number");
      phy.bandwidth_hz = f;
      phy_touched = true;
    } else if (key == "sample_rate_hz") {
      if (!want_f64()) return at(path, lineno, "sample_rate_hz: not a number");
      phy.sample_rate_hz = f;
      phy_touched = true;
    } else if (key == "bits_per_symbol") {
      if (!want_u64()) {
        return at(path, lineno, "bits_per_symbol: not an integer");
      }
      phy.bits_per_symbol = static_cast<int>(u);
      phy_touched = true;
    } else if (key == "preamble_symbols") {
      if (!want_u64()) {
        return at(path, lineno, "preamble_symbols: not an integer");
      }
      phy.preamble_symbols = static_cast<int>(u);
      phy_touched = true;
    } else if (key == "mode") {
      if (value == "vanilla") {
        mode = core::Mode::kVanilla;
      } else if (value == "freq-shifting") {
        mode = core::Mode::kFrequencyShifting;
      } else if (value == "super") {
        mode = core::Mode::kSuper;
      } else {
        return at(path, lineno,
                  "mode: expected vanilla, freq-shifting, or super");
      }
      phy_touched = true;
    } else {
      return at(path, lineno, "unknown key '" + key + "'");
    }
  }

  if (phy_touched) {
    try {
      opt.gateway.stream.saiyan = core::SaiyanConfig::make(phy, mode);
    } catch (const std::exception& err) {
      return fail(path + ": " + err.what());
    }
  }
  if (auto v = opt.gateway.validate(); !v.ok()) {
    return fail(path + ": " + v.message());
  }
  return opt;
}

}  // namespace saiyan::daemon
