// saiyand — the Saiyan gateway daemon.
//
// Serve mode (default): build a gateway::Gateway from a config file
// and/or flags, enqueue any --trace files, and serve until SIGTERM.
// A unix control socket answers saiyand-control (stats / reload /
// drain). SIGHUP re-reads --config and swaps the serving config; jobs
// already running finish under the config they started with, so a
// reload never drops an in-flight span. SIGTERM/SIGINT drain queued
// work, print final stats, and exit 0.
//
// Record mode (--record OUT): synthesize a deterministic multi-tag
// capture with the simulator and write it as a trace — the
// record-then-serve quickstart needs no SDR:
//
//   saiyand --record demo.trace --tags 3 --packets 4
//   saiyand --trace demo.trace --workers 2 --oneshot
//
// With --segment-samples N the recording goes to a crash-safe segment
// directory instead of one file (stream/trace_segments.hpp): sealed
// segments survive a SIGKILL bit-exactly, and `saiyand --recover DIR`
// salvages them (plus the valid prefix of the torn tail) afterwards —
// optionally merging into one servable trace with --recover-out.
// A failed recording exits non-zero with the writer's error.
//
// Lifecycle and the control wire format are documented in
// docs/GATEWAY.md.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/control_server.hpp"
#include "daemon/daemon_config.hpp"
#include "gateway/gateway.hpp"
#include "gateway/gateway_metrics.hpp"
#include "obs/trace_ring.hpp"
#include "sim/capture.hpp"
#include "stream/trace_segments.hpp"

namespace {

using saiyan::daemon::ControlOp;
using saiyan::daemon::ControlRequest;
using saiyan::daemon::ControlResponse;
using saiyan::daemon::ControlStatus;
using saiyan::daemon::DaemonOptions;

int g_signal_pipe_w = -1;

void on_signal(int signo) {
  const char b = signo == SIGHUP ? 'h' : 't';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe_w, &b, 1);
}

void usage(FILE* out) {
  std::fprintf(
      out,
      "saiyand — Saiyan LoRa-backscatter gateway daemon\n"
      "\n"
      "serve:  saiyand [--config FILE] [--socket PATH] [--trace FILE]...\n"
      "                [--workers N] [--chunk-samples N] [--throttle-us N]\n"
      "                [--print-frames] [--oneshot] [--trace-out FILE]\n"
      "record: saiyand --record OUT.trace [--tags N] [--packets N]\n"
      "                [--payload-symbols N] [--seed N] [--float32]\n"
      "                [--segment-samples N] [--fsync none|seal|chunk]\n"
      "                [--record-throttle-us N]\n"
      "recover: saiyand --recover DIR [--recover-out OUT.trace]\n"
      "\n"
      "  --config FILE      key/value config (see docs/GATEWAY.md);\n"
      "                     re-read and applied on SIGHUP\n"
      "  --socket PATH      control socket (default /tmp/saiyand.sock)\n"
      "  --trace FILE       enqueue a trace replay job (repeatable)\n"
      "  --oneshot          drain queued jobs, print stats, exit\n"
      "  --print-frames     log every decoded frame to stdout\n"
      "  --trace-out FILE   at exit, write the flight recorder's full\n"
      "                     timeline as Chrome/Perfetto trace JSON\n"
      "  --record OUT       write a synthetic capture trace and exit\n"
      "  --segment-samples N  record into OUT/ as crash-safe segments\n"
      "                     sealed every N samples (see --recover)\n"
      "  --fsync MODE       segment durability: none|seal|chunk\n"
      "  --record-throttle-us N  sleep between recorded chunks (pace a\n"
      "                     recording so a crash can interrupt it)\n"
      "  --recover DIR      salvage a segment directory, print report\n"
      "  --recover-out OUT  also merge the salvage into one trace\n");
}

struct RecordOptions {
  std::string out_path;
  std::size_t tags = 3;
  std::size_t packets = 4;
  std::size_t payload_symbols = 16;
  std::uint64_t seed = 1;
  bool float32 = false;
  std::uint64_t segment_samples = 0;  ///< 0 = single-file trace
  saiyan::stream::FsyncPolicy fsync = saiyan::stream::FsyncPolicy::kOnSeal;
  std::uint64_t throttle_us = 0;
};

int run_record(const RecordOptions& ro) {
  saiyan::sim::CaptureConfig cfg;
  cfg.saiyan = saiyan::core::SaiyanConfig::make(saiyan::lora::PhyParams{},
                                                saiyan::core::Mode::kSuper);
  for (std::size_t t = 0; t < ro.tags; ++t) {
    cfg.tag_rss_dbm.push_back(-55.0 - 3.0 * static_cast<double>(t));
  }
  cfg.packets_per_tag = ro.packets;
  cfg.payload_symbols = ro.payload_symbols;
  cfg.seed = ro.seed;
  const saiyan::sim::Capture cap = saiyan::sim::generate_capture(cfg);
  // Recording is the one mode whose product *is* the file: any write
  // failure (full disk, bad path, torn close) must reach the exit
  // status, not vanish behind a cheerful "recorded" line.
  try {
    constexpr std::size_t kChunk = 16384;
    if (ro.segment_samples != 0) {
      saiyan::stream::TraceMeta meta;
      meta.phy = cfg.saiyan.phy;
      meta.mode = cfg.saiyan.mode;
      meta.payload_symbols = cfg.payload_symbols;
      meta.float32_samples = ro.float32;
      saiyan::stream::SegmentPolicy policy;
      policy.segment_samples = ro.segment_samples;
      policy.fsync = ro.fsync;
      saiyan::stream::SegmentedTraceWriter writer(ro.out_path, meta,
                                                  cap.markers, policy);
      std::span<const saiyan::dsp::Complex> rest(cap.samples);
      while (!rest.empty()) {
        const std::size_t take = std::min(kChunk, rest.size());
        writer.write_chunk(rest.first(take));
        rest = rest.subspan(take);
        if (ro.throttle_us != 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(ro.throttle_us));
        }
      }
      if (auto fin = writer.finish(); !fin.ok()) {
        std::fprintf(stderr, "saiyand: record failed: %s\n",
                     fin.message().c_str());
        return 1;
      }
      std::printf("recorded %s: %zu tags, %zu frames, %zu samples, "
                  "%zu segments sealed%s\n",
                  ro.out_path.c_str(), ro.tags, cap.markers.size(),
                  cap.samples.size(), writer.segments_sealed(),
                  ro.float32 ? " (float32)" : "");
    } else {
      saiyan::sim::write_capture(cap, cfg, ro.out_path, kChunk, ro.float32);
      std::printf("recorded %s: %zu tags, %zu frames, %zu samples%s\n",
                  ro.out_path.c_str(), ro.tags, cap.markers.size(),
                  cap.samples.size(), ro.float32 ? " (float32)" : "");
    }
  } catch (const std::exception& err) {
    std::fprintf(stderr, "saiyand: record failed: %s\n", err.what());
    return 1;
  }
  return 0;
}

int run_recover(const std::string& dir, const std::string& out_path) {
  auto rep = out_path.empty()
                 ? saiyan::stream::scan_segments(dir)
                 : saiyan::stream::merge_segments(dir, out_path);
  if (!rep.ok()) {
    std::fprintf(stderr, "saiyand: recover: %s\n", rep.message().c_str());
    return 1;
  }
  std::fputs(rep.value().to_text().c_str(), stdout);
  if (!out_path.empty()) {
    std::fprintf(stderr, "saiyand: recover: merged %llu samples -> %s\n",
                 static_cast<unsigned long long>(
                     rep.value().salvaged_samples),
                 out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  DaemonOptions opt;
  bool oneshot = false;
  bool print_frames = false;
  RecordOptions rec;
  std::string recover_dir;
  std::string recover_out;
  std::string trace_out;
  std::vector<std::string> cli_traces;
  // CLI overrides are applied after --config so flags win.
  long cli_workers = -1, cli_chunk = -1, cli_throttle = -1;
  std::string cli_socket;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "saiyand: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--config") {
      auto loaded = saiyan::daemon::load_daemon_config(next());
      if (!loaded.ok()) {
        std::fprintf(stderr, "saiyand: %s\n", loaded.message().c_str());
        return 2;
      }
      opt = loaded.value();
    } else if (arg == "--socket") {
      cli_socket = next();
    } else if (arg == "--trace") {
      cli_traces.emplace_back(next());
    } else if (arg == "--workers") {
      cli_workers = std::atol(next());
    } else if (arg == "--chunk-samples") {
      cli_chunk = std::atol(next());
    } else if (arg == "--throttle-us") {
      cli_throttle = std::atol(next());
    } else if (arg == "--oneshot") {
      oneshot = true;
    } else if (arg == "--print-frames") {
      print_frames = true;
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--record") {
      rec.out_path = next();
    } else if (arg == "--tags") {
      rec.tags = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--packets") {
      rec.packets = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--payload-symbols") {
      rec.payload_symbols = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--seed") {
      rec.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--float32") {
      rec.float32 = true;
    } else if (arg == "--segment-samples") {
      rec.segment_samples = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--fsync") {
      const std::string mode = next();
      if (mode == "none") {
        rec.fsync = saiyan::stream::FsyncPolicy::kNone;
      } else if (mode == "seal") {
        rec.fsync = saiyan::stream::FsyncPolicy::kOnSeal;
      } else if (mode == "chunk") {
        rec.fsync = saiyan::stream::FsyncPolicy::kEveryChunk;
      } else {
        std::fprintf(stderr, "saiyand: --fsync must be none|seal|chunk\n");
        return 2;
      }
    } else if (arg == "--record-throttle-us") {
      rec.throttle_us = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--recover") {
      recover_dir = next();
    } else if (arg == "--recover-out") {
      recover_out = next();
    } else {
      std::fprintf(stderr, "saiyand: unknown flag %s\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (!recover_dir.empty()) {
    return run_recover(recover_dir, recover_out);
  }
  if (!rec.out_path.empty()) {
    return run_record(rec);
  }

  if (!cli_socket.empty()) opt.socket_path = cli_socket;
  for (std::string& t : cli_traces) opt.traces.push_back(std::move(t));
  if (cli_workers >= 0) {
    opt.gateway.workers = static_cast<std::size_t>(cli_workers);
  }
  if (cli_chunk >= 0) {
    opt.gateway.chunk_samples = static_cast<std::size_t>(cli_chunk);
  }
  if (cli_throttle >= 0) {
    opt.gateway.throttle_us = static_cast<std::uint64_t>(cli_throttle);
  }
  // Watchdog cancels and ladder transitions are operational events;
  // surface them in the daemon log.
  opt.gateway.on_event = [](const std::string& msg) {
    std::fprintf(stderr, "saiyand: %s\n", msg.c_str());
  };

  // Arm the flight recorder before any gateway thread starts, so the
  // worker/watchdog/subscriber rings register under their real names.
  // Library users pay nothing (default off); the daemon *is* the
  // observability surface, so here it is on — BM_TracingOverhead keeps
  // the cost honest (see docs/OBSERVABILITY.md).
  saiyan::obs::set_enabled(true);

  // Exit-path dump shared by oneshot and signal shutdown: the whole
  // timeline (untrimmed — the control op's payload cap only exists for
  // the socket), written before the gateway is torn down.
  auto write_trace_out = [&trace_out]() {
    if (trace_out.empty()) return;
    const std::string json = saiyan::obs::chrome_trace_json();
    std::FILE* f = std::fopen(trace_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "saiyand: --trace-out %s: %s\n",
                   trace_out.c_str(), std::strerror(errno));
      return;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "saiyand: wrote trace (%zu bytes) -> %s\n",
                 json.size(), trace_out.c_str());
  };

  auto created = saiyan::gateway::Gateway::create(opt.gateway);
  if (!created.ok()) {
    std::fprintf(stderr, "saiyand: config: %s\n", created.message().c_str());
    return 2;
  }
  std::unique_ptr<saiyan::gateway::Gateway> gw = std::move(created).value();

  if (print_frames) {
    gw->subscribe([](const saiyan::gateway::FrameRecord& fr) {
      std::printf("frame job=%llu worker=%u start=%llu score=%.3f "
                  "symbols=%zu%s%s\n",
                  static_cast<unsigned long long>(fr.job), fr.worker,
                  static_cast<unsigned long long>(fr.packet_start), fr.score,
                  fr.symbols.size(), fr.collided ? " collided" : "",
                  fr.sic_assisted ? " sic" : "");
    });
  }

  for (const std::string& path : opt.traces) {
    auto job = gw->enqueue_trace(path);
    if (!job.ok()) {
      std::fprintf(stderr, "saiyand: enqueue %s: %s\n", path.c_str(),
                   job.message().c_str());
      return 2;
    }
    std::fprintf(stderr, "saiyand: job %llu <- %s\n",
                 static_cast<unsigned long long>(job.value()), path.c_str());
  }

  // Reload shared by SIGHUP and the control socket: re-read the config
  // file when one was given, otherwise re-apply the current config
  // (still bumps config_reloads so operators see the signal landed).
  // The two callers run on different threads (signal loop vs control
  // server) and both read-modify-write opt.gateway — serialize them,
  // or a SIGHUP racing a `reload` op is a data race on the config.
  std::mutex reload_mu;
  auto do_reload = [&]() -> saiyan::Result<saiyan::Unit> {
    std::lock_guard<std::mutex> lk(reload_mu);
    if (!opt.config_path.empty()) {
      auto loaded = saiyan::daemon::load_daemon_config(opt.config_path);
      if (!loaded.ok()) return loaded.error();
      // Serving identity (socket, worker pool) is fixed at start; only
      // the gateway serving config is swappable.
      loaded.value().gateway.on_event = opt.gateway.on_event;
      auto r = gw->reload(loaded.value().gateway);
      if (r.ok()) opt.gateway = loaded.value().gateway;
      return r;
    }
    return gw->reload(opt.gateway);
  };

  auto server = saiyan::daemon::ControlServer::start(
      opt.socket_path, [&](const ControlRequest& req) -> ControlResponse {
        switch (req.op) {
          case ControlOp::kStats:
            return {ControlStatus::kOk, gw->stats().to_text()};
          case ControlOp::kReload: {
            auto r = do_reload();
            if (!r.ok()) return {ControlStatus::kError, r.message()};
            return {ControlStatus::kOk, "reloaded\n"};
          }
          case ControlOp::kDrain: {
            auto r = gw->drain();
            if (!r.ok()) return {ControlStatus::kError, r.message()};
            return {ControlStatus::kOk, "drained\n"};
          }
          case ControlOp::kHealth:
            return {ControlStatus::kOk, gw->health().to_text()};
          case ControlOp::kMetrics:
            return {ControlStatus::kOk,
                    saiyan::gateway::to_prometheus(gw->stats())};
          case ControlOp::kDumpTrace:
            // Trimmed to fit one control frame; --trace-out gets the
            // full timeline at exit.
            return {ControlStatus::kOk,
                    saiyan::obs::chrome_trace_json(
                        saiyan::daemon::kMaxControlPayload - 4096)};
          case ControlOp::kLinks: {
            auto q = saiyan::gateway::parse_link_query(req.payload);
            if (!q.ok()) return {ControlStatus::kError, q.message()};
            return {ControlStatus::kOk,
                    saiyan::gateway::links_to_text(gw->links(), q.value())};
          }
        }
        return {ControlStatus::kError, "unhandled op"};
      });
  if (!server.ok()) {
    std::fprintf(stderr, "saiyand: %s\n", server.message().c_str());
    return 2;
  }
  std::fprintf(stderr, "saiyand: serving on %s (%zu workers)\n",
               opt.socket_path.c_str(), opt.gateway.workers);

  if (oneshot) {
    if (auto r = gw->drain(); !r.ok()) {
      std::fprintf(stderr, "saiyand: drain: %s\n", r.message().c_str());
      return 1;
    }
    std::fputs(gw->stats().to_text().c_str(), stdout);
    write_trace_out();
    return 0;
  }

  int sigpipe[2];
  if (::pipe(sigpipe) != 0) {
    std::perror("saiyand: pipe");
    return 1;
  }
  g_signal_pipe_w = sigpipe[1];
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGHUP, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  for (;;) {
    pollfd pfd{sigpipe[0], POLLIN, 0};
    if (::poll(&pfd, 1, -1) < 0) {
      if (errno == EINTR) continue;
      std::perror("saiyand: poll");
      break;
    }
    char b = 0;
    if (::read(sigpipe[0], &b, 1) != 1) continue;
    if (b == 'h') {
      auto r = do_reload();
      if (r.ok()) {
        std::fprintf(stderr, "saiyand: SIGHUP: config reloaded\n");
      } else {
        // A bad new config must not take down a serving daemon.
        std::fprintf(stderr, "saiyand: SIGHUP: reload rejected: %s\n",
                     r.message().c_str());
      }
      continue;
    }
    break;  // SIGTERM / SIGINT
  }

  std::fprintf(stderr, "saiyand: draining\n");
  if (auto r = gw->drain(); !r.ok()) {
    std::fprintf(stderr, "saiyand: drain: %s\n", r.message().c_str());
  }
  std::fputs(gw->stats().to_text().c_str(), stdout);
  write_trace_out();
  return 0;
}
