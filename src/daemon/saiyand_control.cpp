// saiyand-control — thin client for the saiyand control socket.
//
//   saiyand-control [--socket PATH] stats|reload|drain|health
//
// Prints the response payload to stdout; exits 0 on an ok status,
// 1 on a daemon-reported error, 2 on usage/connection problems.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "daemon/control_protocol.hpp"

int main(int argc, char** argv) {
  using namespace saiyan::daemon;
  std::string socket_path = "/tmp/saiyand.sock";
  std::string command;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "saiyand-control: --socket needs a value\n");
        return 2;
      }
      socket_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: saiyand-control [--socket PATH] stats|reload|drain|health\n");
      return 0;
    } else if (command.empty()) {
      command = arg;
    } else {
      std::fprintf(stderr, "saiyand-control: unexpected argument %s\n",
                   arg.c_str());
      return 2;
    }
  }

  ControlRequest req;
  if (command == "stats") {
    req.op = ControlOp::kStats;
  } else if (command == "reload") {
    req.op = ControlOp::kReload;
  } else if (command == "drain") {
    req.op = ControlOp::kDrain;
  } else if (command == "health") {
    req.op = ControlOp::kHealth;
  } else {
    std::fprintf(
        stderr,
        "usage: saiyand-control [--socket PATH] stats|reload|drain|health\n");
    return 2;
  }

  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "saiyand-control: socket path too long\n");
    return 2;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("saiyand-control: socket");
    return 2;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr, "saiyand-control: connect %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    ::close(fd);
    return 2;
  }

  int rc = 2;
  if (auto w = write_all(fd, encode_request(req)); !w.ok()) {
    std::fprintf(stderr, "saiyand-control: %s\n", w.message().c_str());
  } else if (auto frame = read_frame(fd); !frame.ok()) {
    std::fprintf(stderr, "saiyand-control: %s\n", frame.message().c_str());
  } else if (auto resp = decode_response(frame.value()); !resp.ok()) {
    std::fprintf(stderr, "saiyand-control: %s\n", resp.message().c_str());
  } else if (resp.value().status != ControlStatus::kOk) {
    std::fprintf(stderr, "saiyand-control: error: %s\n",
                 resp.value().payload.c_str());
    rc = 1;
  } else {
    std::fputs(resp.value().payload.c_str(), stdout);
    rc = 0;
  }
  ::close(fd);
  return rc;
}
