// saiyand-control — thin client for the saiyand control socket.
//
//   saiyand-control [--socket PATH]
//                   stats [--json] | reload | drain | health
//                   | metrics | dump_trace
//                   | links [--json] [--top N] [--sort KEY]
//
// Prints the response payload to stdout; exits 0 on an ok status,
// 1 on a daemon-reported error, 2 on usage/connection problems.
// `stats --json` and `links --json` reformat the daemon's `key value`
// lines into one flat JSON object client-side (the wire protocol is
// unchanged); `metrics` is Prometheus text exposition, `dump_trace`
// is Chrome trace-event JSON — both pass through verbatim. `links`
// sorts server-side: --sort frames|snr|last_seen|tag, --top N caps
// the listing.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "daemon/control_protocol.hpp"

namespace {

const char kUsage[] =
    "usage: saiyand-control [--socket PATH] "
    "stats [--json]|reload|drain|health|metrics|dump_trace\n"
    "       |links [--json] [--top N] [--sort frames|snr|last_seen|tag]\n";

bool is_number(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  std::strtod(s.c_str(), &end);
  return errno == 0 && end == s.c_str() + s.size();
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

/// `key value` lines -> one flat JSON object. Numeric values stay
/// numeric; anything else (degradation_name) is a JSON string. The
/// stats dialect guarantees one space between key and value and no
/// spaces inside keys.
std::string kv_to_json(const std::string& text) {
  std::string out = "{";
  bool first = true;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos) continue;  // not key/value; skip
    const std::string key = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    if (!first) out += ',';
    first = false;
    out += "\n  ";
    append_json_string(out, key);
    out += ": ";
    if (is_number(value)) {
      out += value;
    } else {
      append_json_string(out, value);
    }
  }
  out += "\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace saiyan::daemon;
  std::string socket_path = "/tmp/saiyand.sock";
  std::string command;
  bool json = false;
  std::string links_top;
  std::string links_sort;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "saiyand-control: --socket needs a value\n");
        return 2;
      }
      socket_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--top") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "saiyand-control: --top needs a value\n");
        return 2;
      }
      links_top = argv[++i];
    } else if (arg == "--sort") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "saiyand-control: --sort needs a value\n");
        return 2;
      }
      links_sort = argv[++i];
    } else if (command.empty()) {
      command = arg;
    } else {
      std::fprintf(stderr, "saiyand-control: unexpected argument %s\n",
                   arg.c_str());
      return 2;
    }
  }

  ControlRequest req;
  if (command == "stats") {
    req.op = ControlOp::kStats;
  } else if (command == "reload") {
    req.op = ControlOp::kReload;
  } else if (command == "drain") {
    req.op = ControlOp::kDrain;
  } else if (command == "health") {
    req.op = ControlOp::kHealth;
  } else if (command == "metrics") {
    req.op = ControlOp::kMetrics;
  } else if (command == "dump_trace" || command == "dump-trace") {
    req.op = ControlOp::kDumpTrace;
  } else if (command == "links") {
    req.op = ControlOp::kLinks;
    // Options travel as the request payload; the daemon parses (and
    // rejects) them, so client and server never disagree on syntax.
    if (!links_top.empty()) req.payload += "top=" + links_top;
    if (!links_sort.empty()) {
      if (!req.payload.empty()) req.payload += ' ';
      req.payload += "sort=" + links_sort;
    }
  } else {
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (json && req.op != ControlOp::kStats && req.op != ControlOp::kLinks) {
    std::fprintf(stderr,
                 "saiyand-control: --json only applies to stats and links\n");
    return 2;
  }
  if ((!links_top.empty() || !links_sort.empty()) &&
      req.op != ControlOp::kLinks) {
    std::fprintf(stderr,
                 "saiyand-control: --top/--sort only apply to links\n");
    return 2;
  }

  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "saiyand-control: socket path too long\n");
    return 2;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("saiyand-control: socket");
    return 2;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr, "saiyand-control: connect %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    ::close(fd);
    return 2;
  }

  int rc = 2;
  if (auto w = write_all(fd, encode_request(req)); !w.ok()) {
    std::fprintf(stderr, "saiyand-control: %s\n", w.message().c_str());
  } else if (auto frame = read_frame(fd); !frame.ok()) {
    std::fprintf(stderr, "saiyand-control: %s\n", frame.message().c_str());
  } else if (auto resp = decode_response(frame.value()); !resp.ok()) {
    std::fprintf(stderr, "saiyand-control: %s\n", resp.message().c_str());
  } else if (resp.value().status != ControlStatus::kOk) {
    std::fprintf(stderr, "saiyand-control: error: %s\n",
                 resp.value().payload.c_str());
    rc = 1;
  } else {
    const std::string& payload = resp.value().payload;
    if (json) {
      std::fputs(kv_to_json(payload).c_str(), stdout);
    } else {
      std::fputs(payload.c_str(), stdout);
    }
    rc = 0;
  }
  ::close(fd);
  return rc;
}
