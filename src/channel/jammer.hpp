// In-band interference sources for the channel-hopping case study
// (paper §5.3.2: a USRP jams the 433 MHz channel three meters from the
// receiver).
#pragma once

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace saiyan::channel {

enum class JammerType {
  kTone,       ///< continuous wave at an offset frequency
  kWideband,   ///< band-limited Gaussian noise
  kChirp,      ///< sweeping chirp (another LoRa-like emitter)
};

struct JammerConfig {
  JammerType type = JammerType::kWideband;
  double power_dbm = -30.0;       ///< at the victim antenna
  double offset_hz = 0.0;         ///< center offset from the victim band
  double bandwidth_hz = 500e3;    ///< for wideband/chirp jammers
  double sample_rate_hz = 4e6;
  bool active = true;
};

/// Generate `n` samples of jammer waveform at the victim's complex
/// baseband. Returns zeros when inactive.
dsp::Signal make_jammer(const JammerConfig& cfg, std::size_t n, dsp::Rng& rng);

/// Add jammer samples onto an existing waveform in place.
void add_jammer(dsp::Signal& x, const JammerConfig& cfg, dsp::Rng& rng);

}  // namespace saiyan::channel
