// Link budget: transmit power + antenna gains - path loss - walls.
//
// Matches the paper's setup (§4.2): 20 dBm Tx, 3 dBi omni antennas on
// both ends, 433.5 MHz band.
#pragma once

#include "channel/pathloss.hpp"

namespace saiyan::channel {

/// Environment the link operates in.
struct Environment {
  int concrete_walls = 0;       ///< penetration count (paper §5.1.2)
  bool indoor_clutter = false;  ///< NLOS clutter on top of walls
  double extra_loss_db = 0.0;   ///< anything else (body, foliage...)
};

struct LinkBudget {
  double tx_power_dbm = 20.0;     ///< paper §4.2
  double tx_antenna_gain_dbi = 3.0;
  double rx_antenna_gain_dbi = 3.0;
  double frequency_hz = 433.5e6;
  PathLossModel model = PathLossModel::kLogDistance;
  double path_loss_exponent = 4.0;  ///< calibrated to Fig. 22 (DESIGN.md §5)
  double antenna_height_tx_m = 1.5; ///< used by the two-ray model
  double antenna_height_rx_m = 0.5;

  /// Path loss (dB) under the configured model.
  double path_loss_db(double distance_m) const;

  /// Received signal strength (dBm) at the tag antenna.
  double rss_dbm(double distance_m, const Environment& env = {}) const;

  /// Distance (m) at which the RSS equals `target_rss_dbm`
  /// (monotone-decreasing inversion by bisection).
  double distance_for_rss(double target_rss_dbm, const Environment& env = {}) const;

  /// RSS of a *backscatter* (two-hop) link: carrier travels
  /// d_tx_to_tag, is reflected with `backscatter_loss_db`, then travels
  /// d_tag_to_rx. Used for the PLoRa/Aloba uplink of Fig. 2.
  double backscatter_rss_dbm(double d_tx_to_tag_m, double d_tag_to_rx_m,
                             double backscatter_loss_db,
                             const Environment& env = {}) const;
};

}  // namespace saiyan::channel
