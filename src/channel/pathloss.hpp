// Radio path-loss models.
//
// The outdoor field calibration (DESIGN.md §5) uses a log-distance
// model with exponent 4.0 (ground-level tag antennas, consistent with
// the paper's Fig. 22 RSS-vs-distance curve); indoor adds per-wall
// concrete penetration loss plus clutter.
#pragma once

namespace saiyan::channel {

enum class PathLossModel {
  kFreeSpace,     ///< Friis, exponent 2
  kLogDistance,   ///< PL(d) = PL(d0) + 10 n log10(d/d0)
  kTwoRay,        ///< free space below the breakpoint, exponent 4 above
};

/// Free-space path loss (dB) at distance d (m) and frequency f (Hz).
double free_space_path_loss_db(double distance_m, double frequency_hz);

/// Log-distance path loss (dB) with reference distance 1 m.
double log_distance_path_loss_db(double distance_m, double frequency_hz,
                                 double exponent);

/// Two-ray ground-reflection model: Friis up to the breakpoint
/// 4·h_tx·h_rx/λ, then 40 log10 slope.
double two_ray_path_loss_db(double distance_m, double frequency_hz,
                            double h_tx_m, double h_rx_m);

/// Concrete wall penetration loss (dB) for `walls` walls.
double wall_loss_db(int walls);

/// Default per-wall loss used by the indoor experiments (paper §5.1.2
/// shows range dropping ~2.1x per extra wall at exponent 4 → ~12 dB).
inline constexpr double kConcreteWallLossDb = 12.0;

/// Extra indoor clutter loss (furniture, NLOS) applied on top of wall
/// loss; calibrated so Saiyan's indoor detection range lands at
/// ~44 m (paper Fig. 21) when the outdoor range is ~148 m.
inline constexpr double kIndoorClutterLossDb = 9.0;

}  // namespace saiyan::channel
