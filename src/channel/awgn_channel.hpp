// AWGN channel application: scale a unit waveform to a target RSS and
// add thermal-floor noise.
#pragma once

#include "channel/link_budget.hpp"
#include "dsp/noise.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace saiyan::channel {

/// Stateless channel: applies gain + AWGN to complex-baseband packets.
class AwgnChannel {
 public:
  /// `noise_bandwidth_hz` — the simulation bandwidth across which the
  /// thermal floor is spread (typically the sample rate);
  /// `noise_figure_db` — receiver front-end noise figure.
  AwgnChannel(double noise_bandwidth_hz, double noise_figure_db);

  /// Scale `x` so its average power is `rss_dbm`, then add noise at the
  /// thermal floor. Returns a new waveform.
  dsp::Signal apply(const dsp::Signal& x, double rss_dbm, dsp::Rng& rng) const;

  /// Workspace variant: writes into `out` through the fused
  /// draw-and-inject kernel. Identical values and RNG consumption to
  /// apply().
  void apply_into(const dsp::Signal& x, double rss_dbm, dsp::Rng& rng,
                  dsp::Signal& out) const;

  /// Scale to an explicit SNR (dB) measured in the noise bandwidth.
  dsp::Signal apply_snr(const dsp::Signal& x, double snr_db, dsp::Rng& rng) const;

  /// Noise floor used by apply(), dBm.
  double noise_floor_dbm() const { return noise_floor_dbm_; }

 private:
  double noise_floor_dbm_;
};

}  // namespace saiyan::channel
