// Block fading models (Rayleigh / Rician) — optional impairment for
// the MAC-level simulations, where packet-to-packet RSS variation
// drives the loss process.
#pragma once

#include "dsp/rng.hpp"

namespace saiyan::channel {

enum class FadingType {
  kNone,
  kRayleigh,  ///< NLOS: power gain ~ Exp(1)
  kRician,    ///< LOS with K-factor
};

struct FadingConfig {
  FadingType type = FadingType::kNone;
  double rician_k_db = 6.0;  ///< LOS-to-scatter power ratio
};

/// Draw one block-fading power gain in dB (0 dB mean for kNone).
double fading_gain_db(const FadingConfig& cfg, dsp::Rng& rng);

}  // namespace saiyan::channel
