#include "channel/interference.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace saiyan::channel {

namespace {

double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

double mw_to_dbm(double mw) {
  return mw > 0.0 ? 10.0 * std::log10(mw)
                  : -std::numeric_limits<double>::infinity();
}

}  // namespace

double noise_floor_dbm(double bandwidth_hz, double noise_figure_db) {
  if (bandwidth_hz <= 0.0) {
    throw std::invalid_argument("noise_floor_dbm: bandwidth must be > 0");
  }
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

double sum_power_dbm(std::span<const double> powers_dbm) {
  double mw = 0.0;
  for (double p : powers_dbm) mw += dbm_to_mw(p);
  return mw_to_dbm(mw);
}

double sinr_db(double signal_dbm, std::span<const double> interferers_dbm,
               double noise_floor_dbm) {
  double denom_mw = dbm_to_mw(noise_floor_dbm);
  for (double p : interferers_dbm) denom_mw += dbm_to_mw(p);
  return signal_dbm - mw_to_dbm(denom_mw);
}

double interference_penalty_db(std::span<const double> interferers_dbm,
                               double noise_floor_dbm) {
  if (interferers_dbm.empty()) return 0.0;
  const double noise_mw = dbm_to_mw(noise_floor_dbm);
  double interferer_mw = 0.0;
  for (double p : interferers_dbm) interferer_mw += dbm_to_mw(p);
  return 10.0 * std::log10(1.0 + interferer_mw / noise_mw);
}

}  // namespace saiyan::channel
