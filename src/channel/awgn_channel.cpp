#include "channel/awgn_channel.hpp"

#include "dsp/utils.hpp"

namespace saiyan::channel {

AwgnChannel::AwgnChannel(double noise_bandwidth_hz, double noise_figure_db)
    : noise_floor_dbm_(dsp::thermal_noise_floor_dbm(noise_bandwidth_hz, noise_figure_db)) {}

dsp::Signal AwgnChannel::apply(const dsp::Signal& x, double rss_dbm,
                               dsp::Rng& rng) const {
  dsp::Signal out = x;
  dsp::set_power_dbm(out, rss_dbm);
  dsp::add_awgn(out, dsp::dbm_to_watts(noise_floor_dbm_), rng);
  return out;
}

dsp::Signal AwgnChannel::apply_snr(const dsp::Signal& x, double snr_db,
                                   dsp::Rng& rng) const {
  return apply(x, noise_floor_dbm_ + snr_db, rng);
}

}  // namespace saiyan::channel
