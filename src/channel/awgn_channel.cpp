#include "channel/awgn_channel.hpp"

#include <cmath>

#include "dsp/utils.hpp"

namespace saiyan::channel {

AwgnChannel::AwgnChannel(double noise_bandwidth_hz, double noise_figure_db)
    : noise_floor_dbm_(dsp::thermal_noise_floor_dbm(noise_bandwidth_hz, noise_figure_db)) {}

dsp::Signal AwgnChannel::apply(const dsp::Signal& x, double rss_dbm,
                               dsp::Rng& rng) const {
  // Fused scale-to-RSS + AWGN pass (same draws in the same order as
  // the set_power_dbm + add_awgn sequence it replaces).
  const double p = dsp::signal_power(x);
  const double scale =
      (p > 0.0) ? std::sqrt(dsp::dbm_to_watts(rss_dbm) / p) : 1.0;
  const double sigma = std::sqrt(dsp::dbm_to_watts(noise_floor_dbm_) / 2.0);
  dsp::Signal out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = dsp::Complex(scale * x[i].real() + sigma * rng.gaussian(),
                          scale * x[i].imag() + sigma * rng.gaussian());
  }
  return out;
}

dsp::Signal AwgnChannel::apply_snr(const dsp::Signal& x, double snr_db,
                                   dsp::Rng& rng) const {
  return apply(x, noise_floor_dbm_ + snr_db, rng);
}

}  // namespace saiyan::channel
