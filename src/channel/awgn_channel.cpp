#include "channel/awgn_channel.hpp"

#include <cmath>

#include "dsp/simd.hpp"
#include "dsp/utils.hpp"

namespace saiyan::channel {

AwgnChannel::AwgnChannel(double noise_bandwidth_hz, double noise_figure_db)
    : noise_floor_dbm_(dsp::thermal_noise_floor_dbm(noise_bandwidth_hz, noise_figure_db)) {}

dsp::Signal AwgnChannel::apply(const dsp::Signal& x, double rss_dbm,
                               dsp::Rng& rng) const {
  dsp::Signal out;
  apply_into(x, rss_dbm, rng, out);
  return out;
}

void AwgnChannel::apply_into(const dsp::Signal& x, double rss_dbm,
                             dsp::Rng& rng, dsp::Signal& out) const {
  // Fused scale-to-RSS + AWGN pass (same draws in the same order as
  // the set_power_dbm + add_awgn sequence it replaces); the gaussians
  // are drawn inside the SIMD-dispatched kernel, one memory sweep.
  const double p = dsp::signal_power(x);
  const double scale =
      (p > 0.0) ? std::sqrt(dsp::dbm_to_watts(rss_dbm) / p) : 1.0;
  const double sigma = std::sqrt(dsp::dbm_to_watts(noise_floor_dbm_) / 2.0);
  out.resize(x.size());
  dsp::simd::scale_add_gaussian(reinterpret_cast<const double*>(x.data()),
                                2 * x.size(), scale, sigma,
                                reinterpret_cast<double*>(out.data()), rng);
}

dsp::Signal AwgnChannel::apply_snr(const dsp::Signal& x, double snr_db,
                                   dsp::Rng& rng) const {
  return apply(x, noise_floor_dbm_ + snr_db, rng);
}

}  // namespace saiyan::channel
