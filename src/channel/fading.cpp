#include "channel/fading.hpp"

#include <cmath>

#include "dsp/utils.hpp"

namespace saiyan::channel {

double fading_gain_db(const FadingConfig& cfg, dsp::Rng& rng) {
  switch (cfg.type) {
    case FadingType::kNone:
      return 0.0;
    case FadingType::kRayleigh: {
      // |h|^2 with h ~ CN(0,1): exponential with unit mean.
      const double re = rng.gaussian() / std::sqrt(2.0);
      const double im = rng.gaussian() / std::sqrt(2.0);
      const double p = re * re + im * im;
      return 10.0 * std::log10(std::max(p, 1e-12));
    }
    case FadingType::kRician: {
      const double k = dsp::db_to_lin(cfg.rician_k_db);
      const double los = std::sqrt(k / (k + 1.0));
      const double sigma = std::sqrt(1.0 / (2.0 * (k + 1.0)));
      const double re = los + sigma * rng.gaussian();
      const double im = sigma * rng.gaussian();
      const double p = re * re + im * im;
      return 10.0 * std::log10(std::max(p, 1e-12));
    }
  }
  return 0.0;
}

}  // namespace saiyan::channel
