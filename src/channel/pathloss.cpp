#include "channel/pathloss.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/types.hpp"

namespace saiyan::channel {
namespace {

void check_args(double distance_m, double frequency_hz) {
  if (distance_m <= 0.0) throw std::invalid_argument("path loss: distance must be > 0");
  if (frequency_hz <= 0.0) throw std::invalid_argument("path loss: frequency must be > 0");
}

}  // namespace

double free_space_path_loss_db(double distance_m, double frequency_hz) {
  check_args(distance_m, frequency_hz);
  const double lambda = dsp::kSpeedOfLight / frequency_hz;
  return 20.0 * std::log10(4.0 * dsp::kPi * distance_m / lambda);
}

double log_distance_path_loss_db(double distance_m, double frequency_hz,
                                 double exponent) {
  check_args(distance_m, frequency_hz);
  if (exponent < 1.0) throw std::invalid_argument("path loss: exponent must be >= 1");
  const double pl0 = free_space_path_loss_db(1.0, frequency_hz);
  return pl0 + 10.0 * exponent * std::log10(distance_m);
}

double two_ray_path_loss_db(double distance_m, double frequency_hz,
                            double h_tx_m, double h_rx_m) {
  check_args(distance_m, frequency_hz);
  if (h_tx_m <= 0.0 || h_rx_m <= 0.0) {
    throw std::invalid_argument("two_ray: antenna heights must be > 0");
  }
  const double lambda = dsp::kSpeedOfLight / frequency_hz;
  const double breakpoint = 4.0 * h_tx_m * h_rx_m / lambda;
  if (distance_m <= breakpoint) {
    return free_space_path_loss_db(distance_m, frequency_hz);
  }
  const double pl_break = free_space_path_loss_db(breakpoint, frequency_hz);
  return pl_break + 40.0 * std::log10(distance_m / breakpoint);
}

double wall_loss_db(int walls) {
  if (walls < 0) throw std::invalid_argument("wall_loss_db: walls must be >= 0");
  return kConcreteWallLossDb * walls;
}

}  // namespace saiyan::channel
