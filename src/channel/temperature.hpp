// Ambient temperature model and its effect on the SAW filter.
//
// The SAW filter's critical band drifts with temperature (paper §5.2.2,
// Fig. 24): the acoustic velocity of the quartz/LiTaO3 substrate has a
// temperature coefficient of frequency (TCF) of roughly -30 ppm/K,
// which shifts the passband edge and thus slightly compresses the
// frequency-amplitude gap. The paper measures a mild effect: the
// demodulation range drops from 126.4 m to 118.6 m as temperature rises
// from -8.6 degC (8 a.m.) to +1.6 degC (2 p.m.).
#pragma once

namespace saiyan::channel {

/// Temperature coefficient of frequency of the SAW substrate, ppm/K.
inline constexpr double kSawTcfPpmPerK = -30.0;

/// Reference (calibration) temperature, degC.
inline constexpr double kSawReferenceTempC = 25.0;

/// Center-frequency shift (Hz) of a SAW filter at `temp_c` relative to
/// its `nominal_hz` response at the reference temperature.
double saw_frequency_shift_hz(double nominal_hz, double temp_c);

/// Diurnal temperature profile matching the paper's winter field day
/// (Fig. 24): minimum -8.6 degC at 8 a.m., maximum +1.6 degC at 2 p.m.,
/// sinusoidal interpolation. `hour` is in [0, 24).
double diurnal_temperature_c(double hour);

}  // namespace saiyan::channel
