#include "channel/temperature.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/types.hpp"

namespace saiyan::channel {

double saw_frequency_shift_hz(double nominal_hz, double temp_c) {
  if (nominal_hz <= 0.0) {
    throw std::invalid_argument("saw_frequency_shift_hz: nominal must be > 0");
  }
  return nominal_hz * kSawTcfPpmPerK * 1e-6 * (temp_c - kSawReferenceTempC);
}

double diurnal_temperature_c(double hour) {
  if (hour < 0.0 || hour >= 24.0) {
    throw std::invalid_argument("diurnal_temperature_c: hour must be in [0,24)");
  }
  constexpr double kMinC = -8.6;   // at 8 a.m.
  constexpr double kMaxC = 1.6;    // at 2 p.m.
  const double mid = (kMinC + kMaxC) / 2.0;
  const double amp = (kMaxC - kMinC) / 2.0;
  // Cosine with minimum at hour 8 and maximum at hour 14 (the paper's
  // measured extremes); 12-hour period covers the 8 a.m. - 8 p.m.
  // measurement window.
  const double phase = (hour - 14.0) / 6.0 * dsp::kPi;
  return mid + amp * std::cos(phase);
}

}  // namespace saiyan::channel
