// Co-channel interference aggregation — the inter-cell hook for the
// multi-gateway simulator (and any future scenario where several
// transmitters share a channel).
//
// The BER model (sim/ber_model.hpp) maps RSS to BER assuming a
// thermal-noise-limited receiver. Interference raises the effective
// noise floor; `interference_penalty_db` converts an interferer set
// into the equivalent RSS penalty 10·log10(1 + I/N), which callers
// subtract from the link RSS before consulting the model.
#pragma once

#include <span>

namespace saiyan::channel {

/// Thermal noise floor (dBm): -174 dBm/Hz + 10·log10(BW) + noise figure.
double noise_floor_dbm(double bandwidth_hz, double noise_figure_db = 6.0);

/// Sum of powers given in dBm. Returns -infinity for an empty set.
double sum_power_dbm(std::span<const double> powers_dbm);

/// Signal-to-interference-plus-noise ratio (dB) of `signal_dbm`
/// against co-channel interferers and the thermal floor.
double sinr_db(double signal_dbm, std::span<const double> interferers_dbm,
               double noise_floor_dbm);

/// Effective RSS penalty (dB) from interference raising the noise
/// floor: 10·log10(1 + I/N). Zero for an empty interferer set.
double interference_penalty_db(std::span<const double> interferers_dbm,
                               double noise_floor_dbm);

}  // namespace saiyan::channel
