#include "channel/jammer.hpp"

#include <cmath>

#include "dsp/fir.hpp"
#include "dsp/nco.hpp"
#include "dsp/noise.hpp"
#include "dsp/utils.hpp"

namespace saiyan::channel {

dsp::Signal make_jammer(const JammerConfig& cfg, std::size_t n, dsp::Rng& rng) {
  if (!cfg.active || n == 0) return dsp::Signal(n, dsp::Complex{});
  dsp::Signal out;
  switch (cfg.type) {
    case JammerType::kTone: {
      dsp::Nco nco(cfg.offset_hz, cfg.sample_rate_hz, rng.uniform() * dsp::kTwoPi);
      out = nco.tone(n);
      break;
    }
    case JammerType::kWideband: {
      out = dsp::complex_awgn(n, 1.0, rng);
      if (cfg.bandwidth_hz < cfg.sample_rate_hz) {
        const dsp::RealSignal taps = dsp::design_lowpass(
            cfg.bandwidth_hz / 2.0, cfg.sample_rate_hz, 127);
        out = dsp::fft_filter(out, taps);
      }
      if (cfg.offset_hz != 0.0) {
        out = dsp::mix_complex(out, cfg.offset_hz, cfg.sample_rate_hz);
      }
      break;
    }
    case JammerType::kChirp: {
      // Linear FM sweep across the jammer bandwidth, repeating.
      out.resize(n);
      const double t_sweep = 1e-3;  // 1 ms sweep
      const double k = cfg.bandwidth_hz / t_sweep;
      double phase = rng.uniform() * dsp::kTwoPi;
      const double dt = 1.0 / cfg.sample_rate_hz;
      for (std::size_t i = 0; i < n; ++i) {
        const double t = std::fmod(static_cast<double>(i) * dt, t_sweep);
        const double f = cfg.offset_hz - cfg.bandwidth_hz / 2.0 + k * t;
        phase += dsp::kTwoPi * f * dt;
        out[i] = dsp::Complex(std::cos(phase), std::sin(phase));
      }
      break;
    }
  }
  dsp::set_power_dbm(out, cfg.power_dbm);
  return out;
}

void add_jammer(dsp::Signal& x, const JammerConfig& cfg, dsp::Rng& rng) {
  if (!cfg.active) return;
  const dsp::Signal j = make_jammer(cfg, x.size(), rng);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += j[i];
}

}  // namespace saiyan::channel
