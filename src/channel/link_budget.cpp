#include "channel/link_budget.hpp"

#include <cmath>
#include <stdexcept>

namespace saiyan::channel {
namespace {

double env_loss_db(const Environment& env) {
  double loss = wall_loss_db(env.concrete_walls) + env.extra_loss_db;
  if (env.indoor_clutter) loss += kIndoorClutterLossDb;
  return loss;
}

}  // namespace

double LinkBudget::path_loss_db(double distance_m) const {
  switch (model) {
    case PathLossModel::kFreeSpace:
      return free_space_path_loss_db(distance_m, frequency_hz);
    case PathLossModel::kLogDistance:
      return log_distance_path_loss_db(distance_m, frequency_hz, path_loss_exponent);
    case PathLossModel::kTwoRay:
      return two_ray_path_loss_db(distance_m, frequency_hz, antenna_height_tx_m,
                                  antenna_height_rx_m);
  }
  throw std::logic_error("LinkBudget: unknown model");
}

double LinkBudget::rss_dbm(double distance_m, const Environment& env) const {
  return tx_power_dbm + tx_antenna_gain_dbi + rx_antenna_gain_dbi -
         path_loss_db(distance_m) - env_loss_db(env);
}

double LinkBudget::distance_for_rss(double target_rss_dbm, const Environment& env) const {
  double lo = 0.01;
  double hi = 1e5;
  if (rss_dbm(lo, env) < target_rss_dbm) return lo;
  if (rss_dbm(hi, env) > target_rss_dbm) return hi;
  for (int i = 0; i < 80; ++i) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection (log-linear RSS)
    if (rss_dbm(mid, env) > target_rss_dbm) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

double LinkBudget::backscatter_rss_dbm(double d_tx_to_tag_m, double d_tag_to_rx_m,
                                       double backscatter_loss_db,
                                       const Environment& env) const {
  return tx_power_dbm + tx_antenna_gain_dbi + rx_antenna_gain_dbi -
         path_loss_db(d_tx_to_tag_m) - path_loss_db(d_tag_to_rx_m) -
         backscatter_loss_db - env_loss_db(env);
}

}  // namespace saiyan::channel
