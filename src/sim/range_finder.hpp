// Demodulation-range finder: the maximum tag-to-transmitter distance
// at which the BER stays below 1e-3 (paper §5 metric definition).
#pragma once

#include <functional>

#include "channel/link_budget.hpp"
#include "core/config.hpp"
#include "sim/ber_model.hpp"

namespace saiyan::sim {

/// Invert a monotone BER-vs-distance curve by geometric bisection.
/// `ber_at` maps distance (m) to BER; returns the largest distance
/// with BER <= target within [lo, hi].
double find_range_m(const std::function<double(double)>& ber_at, double target_ber,
                    double lo_m = 1.0, double hi_m = 2000.0, int iterations = 60);

/// Model-based demodulation range for a configuration.
double model_range_m(const BerModel& model, core::Mode mode,
                     const lora::PhyParams& phy, const channel::LinkBudget& link,
                     const channel::Environment& env = {},
                     double temperature_c = 25.0, double target_ber = 1e-3);

/// Model-based packet detection range (Fig. 21 metric).
double model_detection_range_m(const BerModel& model, core::Mode mode,
                               const lora::PhyParams& phy,
                               const channel::LinkBudget& link,
                               const channel::Environment& env = {},
                               double temperature_c = 25.0);

}  // namespace saiyan::sim
