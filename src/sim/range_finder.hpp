// Demodulation-range finder: the maximum tag-to-transmitter distance
// at which the BER stays below 1e-3 (paper §5 metric definition).
#pragma once

#include <functional>

#include "channel/link_budget.hpp"
#include "core/config.hpp"
#include "sim/ber_model.hpp"
#include "sim/sweep_engine.hpp"

namespace saiyan::sim {

/// Invert a monotone BER-vs-distance curve by geometric bisection.
/// `ber_at` maps distance (m) to BER; returns the largest distance
/// with BER <= target within [lo, hi]. With an engine the search
/// evaluates a fixed 4 geometrically spaced probes per round (k-ary
/// section, interval shrinks 5x per round) with the probes spread
/// across the pool — the probe grid is a constant, so the returned
/// range is identical on every machine and thread count.
double find_range_m(const std::function<double(double)>& ber_at, double target_ber,
                    double lo_m = 1.0, double hi_m = 2000.0, int iterations = 60,
                    const SweepEngine* engine = nullptr);

/// Model-based demodulation range for a configuration.
double model_range_m(const BerModel& model, core::Mode mode,
                     const lora::PhyParams& phy, const channel::LinkBudget& link,
                     const channel::Environment& env = {},
                     double temperature_c = 25.0, double target_ber = 1e-3);

/// Model-based packet detection range (Fig. 21 metric).
double model_detection_range_m(const BerModel& model, core::Mode mode,
                               const lora::PhyParams& phy,
                               const channel::LinkBudget& link,
                               const channel::Environment& env = {},
                               double temperature_c = 25.0);

/// Waveform-measured demodulation range: inverts the Monte-Carlo BER
/// of `base` (packets per probe distance spread across `engine`).
/// Each probe must see enough bits to resolve `target_ber`: with the
/// default 32-symbol payloads, 16 packets ≈ 1000 bits per probe, the
/// minimum for the default 1e-3 target. More packets sharpen the
/// estimate at proportional cost.
double measured_range_m(const PipelineConfig& base, const SweepEngine& engine,
                        std::size_t n_packets_per_probe = 16,
                        double target_ber = 1e-3, double lo_m = 1.0,
                        double hi_m = 2000.0, int iterations = 12);

}  // namespace saiyan::sim
