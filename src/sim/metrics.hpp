// Evaluation metrics (paper §5 "Setups"): BER, throughput, packet
// reception ratio and demodulation range.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace saiyan::sim {

/// Bit/symbol error accumulator.
class ErrorCounter {
 public:
  /// Compare a decoded symbol against truth, accumulating both symbol
  /// and bit errors (bit errors via Hamming distance over K bits).
  void add_symbol(std::uint32_t expected, std::uint32_t actual, int bits_per_symbol);

  void add_bits(std::size_t errors, std::size_t total);

  /// Fold another counter in (shard-aware merge: commutative and
  /// associative, so per-shard results can be combined in index order
  /// regardless of which worker produced them).
  void merge(const ErrorCounter& other);

  double ber() const;
  double ser() const;
  std::size_t bit_errors() const { return bit_errors_; }
  std::size_t bits() const { return bits_; }
  std::size_t symbol_errors() const { return symbol_errors_; }
  std::size_t symbols() const { return symbols_; }

 private:
  std::size_t bit_errors_ = 0;
  std::size_t bits_ = 0;
  std::size_t symbol_errors_ = 0;
  std::size_t symbols_ = 0;
};

/// Packet reception ratio accumulator.
class PacketCounter {
 public:
  void add(bool received) { received_ += received ? 1 : 0; ++total_; }
  void add_many(std::size_t received, std::size_t total) {
    received_ += received;
    total_ += total;
  }
  /// Fold another counter in (shard-aware merge).
  void merge(const PacketCounter& other) {
    add_many(other.received_, other.total_);
  }
  double prr() const { return total_ ? static_cast<double>(received_) / total_ : 0.0; }
  std::size_t received() const { return received_; }
  std::size_t total() const { return total_; }

 private:
  std::size_t received_ = 0;
  std::size_t total_ = 0;
};

/// Collision / capture accumulator — the SIC outcome bookkeeping.
/// Counts groups of mutually overlapping frames, the frames in them,
/// how many of those frames were captured (decoded to the transmitted
/// payload), and how many captures needed a cancellation pass
/// (stream::StreamingDemodulator::collisions_resolved). Report with
/// fmt_pct(capture_rate()) (sim/report.hpp).
class CollisionCounter {
 public:
  /// One collision group of `frames` (≥2) overlapping frames, of which
  /// `captured` decoded successfully.
  void add_group(std::size_t frames, std::size_t captured) {
    ++groups_;
    frames_ += frames;
    captured_ += captured;
  }

  /// Frames decoded from a cancelled residual (the demodulator's
  /// collisions_resolved counter).
  void add_resolved(std::size_t n) { resolved_ += n; }

  /// One colliding frame observed on its own — the analytic gateway
  /// model (mac::GatewaySim) simulates each tag's packet
  /// independently, so it counts frames without group bookkeeping.
  void add_frame(bool captured) {
    ++frames_;
    captured_ += captured ? 1 : 0;
  }

  /// Fold another counter in (shard-aware merge: commutative and
  /// associative, so SweepEngine shards combine in index order
  /// regardless of which worker produced them).
  void merge(const CollisionCounter& other) {
    groups_ += other.groups_;
    frames_ += other.frames_;
    captured_ += other.captured_;
    resolved_ += other.resolved_;
  }

  std::size_t groups() const { return groups_; }
  std::size_t frames() const { return frames_; }
  std::size_t captured() const { return captured_; }
  std::size_t resolved() const { return resolved_; }
  /// Fraction of colliding frames captured.
  double capture_rate() const {
    return frames_ ? static_cast<double>(captured_) /
                         static_cast<double>(frames_)
                   : 0.0;
  }

 private:
  std::size_t groups_ = 0;
  std::size_t frames_ = 0;
  std::size_t captured_ = 0;
  std::size_t resolved_ = 0;
};

/// Empirical CDF helper (paper Fig. 27).
class Cdf {
 public:
  void add(double sample) { samples_.push_back(sample); }
  /// Append another CDF's samples (shard-aware merge; quantiles sort,
  /// so sample order does not affect the result).
  void merge(const Cdf& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }
  /// Value at quantile q in [0,1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  /// (x, F(x)) pairs suitable for printing.
  std::vector<std::pair<double, double>> curve() const;
  std::size_t size() const { return samples_.size(); }

 private:
  std::vector<double> samples_;
};

/// Effective throughput for a given raw data rate and BER. The paper's
/// throughput declines mildly with BER (Fig. 16b: 19.6 -> 17.2 Kbps as
/// BER grows to 4.4e-3); empirically that matches a correct-delivery
/// weighting over ~30-bit blocks.
double effective_throughput_bps(double data_rate_bps, double ber);

}  // namespace saiyan::sim
