// Fixed-width table / CSV reporters used by the bench binaries so
// every figure prints the same way the paper tabulates it.
#pragma once

#include <string>
#include <vector>

namespace saiyan::sim {

/// Simple fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns.
  std::string str() const;

  /// Print to stdout.
  void print() const;

  /// CSV rendering (comma-separated, headers first).
  std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper.
std::string fmt(double value, int precision = 2);

/// Scientific notation, e.g. "1.8e-03".
std::string fmt_sci(double value, int precision = 1);

/// Fraction rendered as a percentage, e.g. fmt_pct(0.818) == "81.8".
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace saiyan::sim
