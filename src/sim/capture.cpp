#include "sim/capture.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/noise.hpp"
#include "dsp/utils.hpp"
#include "lora/modulator.hpp"

namespace saiyan::sim {

namespace {

/// Walk the maximal chains of mutually overlapping frames in an
/// offset-ordered marker list (frame p overlaps p+1 when p+1 starts
/// before p's frame ends) and call `fn(first, last)` for every chain
/// of ≥2 members — the one overlap-grouping rule shared by the
/// generator's ground truth and replay scoring.
template <typename Fn>
void walk_collision_chains(std::span<const stream::TraceMarker> markers,
                           std::size_t frame_samples, Fn&& fn) {
  std::size_t i = 0;
  while (i < markers.size()) {
    std::size_t j = i;
    std::uint64_t chain_end = markers[i].sample_offset + frame_samples;
    while (j + 1 < markers.size() &&
           markers[j + 1].sample_offset < chain_end) {
      ++j;
      chain_end =
          std::max(chain_end, markers[j].sample_offset + frame_samples);
    }
    if (j > i) fn(i, j);
    i = j + 1;
  }
}

/// Fill the per-marker collision flags and group count from the
/// schedule geometry.
void mark_collisions(Capture& cap, std::size_t frame_samples) {
  cap.collided.assign(cap.markers.size(), 0);
  cap.collision_groups = 0;
  walk_collision_chains(cap.markers, frame_samples,
                        [&](std::size_t first, std::size_t last) {
                          ++cap.collision_groups;
                          for (std::size_t k = first; k <= last; ++k) {
                            cap.collided[k] = 1;
                          }
                        });
}

}  // namespace

Capture generate_capture(const CaptureConfig& cfg) {
  cfg.saiyan.phy.validate();
  if (cfg.tag_rss_dbm.empty()) {
    throw std::invalid_argument("generate_capture: no tags");
  }
  const bool scheduled = !cfg.offsets.empty();
  if (cfg.payload_symbols == 0 ||
      (!scheduled && cfg.packets_per_tag == 0)) {
    throw std::invalid_argument("generate_capture: empty schedule");
  }
  if (!cfg.tag_phase_rad.empty() &&
      cfg.tag_phase_rad.size() != cfg.tag_rss_dbm.size()) {
    throw std::invalid_argument("generate_capture: tag_phase_rad size");
  }
  if (!cfg.tag_cfo_hz.empty() &&
      cfg.tag_cfo_hz.size() != cfg.tag_rss_dbm.size()) {
    throw std::invalid_argument("generate_capture: tag_cfo_hz size");
  }
  const lora::PhyParams& phy = cfg.saiyan.phy;
  const std::size_t spsym = phy.samples_per_symbol();
  const std::size_t n_tags = cfg.tag_rss_dbm.size();
  const std::size_t n_packets =
      scheduled ? cfg.offsets.size() : n_tags * cfg.packets_per_tag;
  lora::Modulator mod(phy);
  const lora::PacketLayout lay = mod.layout(cfg.payload_symbols);

  // One deterministic stream drives the whole capture: schedule and
  // payload draws first (in packet order), then the noise fill.
  dsp::Rng rng(dsp::derive_stream_seed(cfg.seed, 0x7c5));
  const std::uint64_t gap_lo = static_cast<std::uint64_t>(
      std::llround(std::max(0.0, cfg.min_gap_symbols) *
                   static_cast<double>(spsym)));
  const std::uint64_t gap_hi = std::max(
      gap_lo, static_cast<std::uint64_t>(std::llround(
                  std::max(0.0, cfg.max_gap_symbols) *
                  static_cast<double>(spsym))));

  Capture cap;
  cap.markers.reserve(n_packets);
  std::uint64_t cursor = scheduled ? 0 : rng.uniform_int(gap_lo, gap_hi);
  for (std::size_t p = 0; p < n_packets; ++p) {
    if (scheduled) {
      if (p > 0 && cfg.offsets[p] < cfg.offsets[p - 1]) {
        throw std::invalid_argument("generate_capture: offsets not sorted");
      }
      cursor = cfg.offsets[p];
    }
    stream::TraceMarker m;
    m.sample_offset = cursor;
    m.tag_id = static_cast<std::uint32_t>(p % n_tags);
    m.symbols.resize(cfg.payload_symbols);
    for (std::uint32_t& v : m.symbols) {
      v = static_cast<std::uint32_t>(
          rng.uniform_int(0, phy.symbol_alphabet() - 1));
    }
    if (cfg.link_headers) {
      // Overwrite *after* the draws so the Rng stream — and with it
      // the schedule and every other symbol — matches a header-less
      // capture bit for bit.
      m.symbols[0] = m.tag_id % phy.symbol_alphabet();
      if (m.symbols.size() > 1) {
        m.symbols[1] = static_cast<std::uint32_t>(
            (p / n_tags) % phy.symbol_alphabet());
      }
    }
    cap.markers.push_back(std::move(m));
    if (!scheduled) {
      cursor += lay.total_samples + rng.uniform_int(gap_lo, gap_hi);
    }
  }
  // A trailing idle symbol keeps the last frame clear of the capture
  // end (a *truncated* capture is produced by cutting the waveform,
  // not by the generator). An explicit schedule measures from the last
  // frame's end.
  const std::uint64_t total =
      (scheduled ? cap.markers.back().sample_offset + lay.total_samples
                 : cursor) +
      spsym;
  mark_collisions(cap, lay.total_samples);

  cap.samples.assign(static_cast<std::size_t>(total), dsp::Complex{});
  dsp::Signal wave;
  for (const stream::TraceMarker& m : cap.markers) {
    mod.modulate_into(m.symbols, wave);
    const double p_avg = dsp::signal_power(wave);
    const double scale =
        p_avg > 0.0
            ? std::sqrt(dsp::dbm_to_watts(cfg.tag_rss_dbm[m.tag_id]) / p_avg)
            : 1.0;
    dsp::Complex* dst = cap.samples.data() + m.sample_offset;
    const double ph =
        cfg.tag_phase_rad.empty() ? 0.0 : cfg.tag_phase_rad[m.tag_id];
    const double cfo =
        cfg.tag_cfo_hz.empty() ? 0.0 : cfg.tag_cfo_hz[m.tag_id];
    if (ph == 0.0 && cfo == 0.0) {
      for (std::size_t i = 0; i < wave.size(); ++i) dst[i] += scale * wave[i];
    } else if (cfo == 0.0) {
      const dsp::Complex amp = scale * dsp::Complex(std::cos(ph), std::sin(ph));
      for (std::size_t i = 0; i < wave.size(); ++i) dst[i] += amp * wave[i];
    } else {
      // Carrier offset: rotate the packet by exp(i·2π·f·n/fs) with the
      // phase origin at the packet start (the CFO estimator is
      // phase-difference based, so the origin is immaterial).
      const double w = dsp::kTwoPi * cfo / phy.sample_rate_hz;
      const dsp::Complex amp = scale * dsp::Complex(std::cos(ph), std::sin(ph));
      const dsp::Complex rot(std::cos(w), std::sin(w));
      dsp::Complex osc(1.0, 0.0);
      for (std::size_t i = 0; i < wave.size(); ++i) {
        dst[i] += amp * osc * wave[i];
        osc *= rot;
      }
    }
  }
  // Thermal floor over the whole capture — gaps carry noise too, like
  // a real gateway front end.
  const double floor_dbm =
      dsp::thermal_noise_floor_dbm(phy.sample_rate_hz, cfg.noise_figure_db);
  const double sigma = std::sqrt(dsp::dbm_to_watts(floor_dbm) / 2.0);
  for (dsp::Complex& v : cap.samples) {
    v += dsp::Complex(sigma * rng.gaussian(), sigma * rng.gaussian());
  }
  return cap;
}

void write_capture(const Capture& capture, const CaptureConfig& cfg,
                   const std::string& path, std::size_t chunk_samples,
                   bool float32) {
  if (chunk_samples == 0) {
    throw std::invalid_argument("write_capture: chunk_samples == 0");
  }
  stream::TraceMeta meta;
  meta.phy = cfg.saiyan.phy;
  meta.mode = cfg.saiyan.mode;
  meta.payload_symbols = cfg.payload_symbols;
  meta.float32_samples = float32;
  stream::TraceWriter writer(path, meta, capture.markers);
  std::span<const dsp::Complex> rest(capture.samples);
  while (!rest.empty()) {
    const std::size_t take = std::min(chunk_samples, rest.size());
    writer.write_chunk(rest.first(take));
    rest = rest.subspan(take);
  }
  writer.close();
}

ReplayStats score_replay(const stream::StreamingDemodulator& demod,
                         std::span<const stream::TraceMarker> markers,
                         std::size_t tolerance_samples) {
  ReplayStats stats;
  stats.markers = markers.size();
  stats.decoded = demod.packets().size();
  stats.truncated = demod.truncated_packets();
  stats.samples = demod.samples_consumed();
  // Markers are offset-ordered; decoded packets are too, except that a
  // SIC-revealed frame can trail a later non-overlapping one, so sort
  // an index view first, then walk both lists together, pairing each
  // decoded packet with the nearest unconsumed marker in range.
  std::vector<std::size_t> order(demod.packets().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return demod.packets()[a].packet_start <
                            demod.packets()[b].packet_start;
                   });
  std::vector<std::uint8_t> captured(markers.size(), 0);
  std::size_t mi = 0;
  for (const std::size_t pi : order) {
    const stream::DecodedPacket& p = demod.packets()[pi];
    while (mi < markers.size() &&
           markers[mi].sample_offset + tolerance_samples < p.packet_start) {
      ++mi;  // marker missed entirely
    }
    if (mi >= markers.size() ||
        p.packet_start + tolerance_samples < markers[mi].sample_offset) {
      ++stats.false_detections;
      continue;
    }
    const stream::TraceMarker& m = markers[mi];
    ++stats.matched;
    const std::span<const std::uint32_t> got = demod.symbols(p);
    stats.symbols += m.symbols.size();
    std::size_t errors = 0;
    for (std::size_t i = 0; i < m.symbols.size(); ++i) {
      const std::uint32_t actual = i < got.size() ? got[i] : ~0u;
      if (actual != m.symbols[i]) ++errors;
    }
    stats.symbol_errors += errors;
    captured[mi] = errors == 0 ? 1 : 0;
    ++mi;
  }
  // Collision/capture outcome from the ground-truth overlap geometry
  // (the same chain walk the generator's ground truth uses).
  walk_collision_chains(markers, demod.frame_samples(),
                        [&](std::size_t first, std::size_t last) {
                          std::size_t ok = 0;
                          for (std::size_t k = first; k <= last; ++k) {
                            ok += captured[k];
                          }
                          stats.collisions.add_group(last - first + 1, ok);
                        });
  stats.collisions.add_resolved(demod.collisions_resolved());
  return stats;
}

ReplayStats replay_trace(const std::string& path, const ReplayConfig& cfg) {
  stream::TraceReader reader(path, cfg.resync);
  stream::StreamConfig sc;
  sc.saiyan = core::SaiyanConfig::make(reader.meta().phy, reader.meta().mode);
  sc.payload_symbols = reader.meta().payload_symbols;
  sc.seed = cfg.seed;
  sc.min_score = cfg.min_score;
  sc.block_samples = cfg.block_samples;
  sc.sic = cfg.sic;
  sc.seed_by_offset = cfg.seed_by_offset;
  stream::StreamingDemodulator demod(sc);

  dsp::Signal chunk;
  for (;;) {
    const std::uint64_t skipped_before = reader.stats().bytes_skipped;
    const stream::ChunkStatus st = reader.next_chunk(chunk);
    if (st == stream::ChunkStatus::kOk ||
        st == stream::ChunkStatus::kResync) {
      // A resync skipped a corrupt region: realign the demodulator's
      // absolute sample clock before feeding the recovered chunk.
      if (st == stream::ChunkStatus::kResync) {
        demod.note_gap(reader.last_gap_samples());
      }
      std::span<const dsp::Complex> rest(chunk);
      while (!rest.empty()) {
        const std::size_t take = std::min(cfg.chunk_samples, rest.size());
        demod.push(rest.first(take));
        rest = rest.subspan(take);
      }
      continue;
    }
    // kEof, or (strict mode) a corrupted chunk wedging the replay. A
    // recover-mode EOF can still carry a skipped corrupt tail.
    if (st == stream::ChunkStatus::kEof &&
        reader.stats().bytes_skipped > skipped_before) {
      demod.note_gap(reader.last_gap_samples());
    }
    break;
  }
  demod.finish();
  ReplayStats stats =
      score_replay(demod, reader.markers(),
                   reader.meta().phy.samples_per_symbol() / 2);
  stats.corrupt_chunks = static_cast<std::size_t>(reader.stats().chunks_corrupt);
  stats.ingest = reader.stats();
  stats.ingest.merge(demod.ingest());
  return stats;
}

}  // namespace saiyan::sim
