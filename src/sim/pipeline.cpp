#include "sim/pipeline.hpp"

#include <cmath>

#include "lora/modulator.hpp"

namespace saiyan::sim {

WaveformPipeline::WaveformPipeline(const PipelineConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  cfg_.saiyan.phy.validate();
}

PipelineResult WaveformPipeline::run_impl(double rss_dbm, std::size_t n_packets) {
  const lora::PhyParams& phy = cfg_.saiyan.phy;
  core::SaiyanDemodulator demod(cfg_.saiyan);
  lora::Modulator mod(phy);
  channel::AwgnChannel chan(phy.sample_rate_hz, cfg_.noise_figure_db);

  PipelineResult result;
  result.rss_dbm = rss_dbm;
  for (std::size_t p = 0; p < n_packets; ++p) {
    std::vector<std::uint32_t> tx(cfg_.payload_symbols);
    for (std::uint32_t& v : tx) {
      v = static_cast<std::uint32_t>(rng_.uniform_int(0, phy.symbol_alphabet() - 1));
    }
    const dsp::Signal wave = mod.modulate(tx);
    const dsp::Signal rx = chan.apply(wave, rss_dbm, rng_);

    core::DemodResult dr;
    if (cfg_.aligned) {
      const lora::PacketLayout lay = mod.layout(tx.size());
      dr = demod.demodulate_aligned(rx, lay.payload_start, tx.size(), rng_);
    } else {
      dr = demod.demodulate(rx, tx.size(), rng_);
    }
    result.detections.add(dr.preamble_found);
    for (std::size_t i = 0; i < tx.size(); ++i) {
      const std::uint32_t actual = i < dr.symbols.size() ? dr.symbols[i] : 0;
      result.errors.add_symbol(tx[i], actual, phy.bits_per_symbol);
    }
  }
  result.throughput_bps =
      effective_throughput_bps(phy.data_rate_bps(), result.errors.ber());
  return result;
}

PipelineResult WaveformPipeline::run_distance(double distance_m,
                                              std::size_t n_packets) {
  return run_impl(cfg_.link.rss_dbm(distance_m, cfg_.environment), n_packets);
}

PipelineResult WaveformPipeline::run_rss(double rss_dbm, std::size_t n_packets) {
  return run_impl(rss_dbm, n_packets);
}

double WaveformPipeline::min_sampling_multiplier(double target_accuracy,
                                                 std::size_t n_symbols,
                                                 double rss_dbm) {
  const std::size_t n_packets =
      (n_symbols + cfg_.payload_symbols - 1) / cfg_.payload_symbols;
  for (double mult = 1.0; mult <= 4.01; mult += 0.1) {
    PipelineConfig probe = cfg_;
    probe.saiyan.sampling_rate_multiplier = mult;
    WaveformPipeline wp(probe);
    const PipelineResult r = wp.run_rss(rss_dbm, n_packets);
    if (1.0 - r.errors.ser() >= target_accuracy) return mult;
  }
  return 4.0;
}

}  // namespace saiyan::sim
