#include "sim/pipeline.hpp"

#include <cmath>
#include <memory>

#include "core/batch_demod.hpp"
#include "lora/modulator.hpp"
#include "sim/sweep_engine.hpp"

namespace saiyan::sim {
namespace {

/// Decode outcome of one packet — plain counters, no per-packet
/// vectors — accumulated in index order so the aggregate is
/// independent of worker scheduling.
struct PacketOutcome {
  bool detected = false;
  ErrorCounter errors;
};

/// Per-worker context: the batch demodulator (with its workspace),
/// modulator and channel hold non-thread-safe caches and pre-sized
/// buffers; each worker owns one of each and reuses them for every
/// packet it claims — zero allocations per packet once warm.
struct PacketWorker {
  PacketWorker(const core::SaiyanConfig& saiyan, double noise_figure_db)
      : batch(saiyan),
        mod(saiyan.phy),
        chan(saiyan.phy.sample_rate_hz, noise_figure_db) {}

  core::BatchDemodulator batch;
  lora::Modulator mod;
  channel::AwgnChannel chan;
};

}  // namespace

WaveformPipeline::WaveformPipeline(const PipelineConfig& cfg) : cfg_(cfg) {
  cfg_.saiyan.phy.validate();
}

PipelineResult WaveformPipeline::run_impl(double rss_dbm, std::size_t n_packets) {
  const lora::PhyParams& phy = cfg_.saiyan.phy;

  PipelineResult result;
  result.rss_dbm = rss_dbm;

  // Packets are independent trials: stream p derives from
  // (seed, run number, p), so the batch is a pure function of the
  // configuration regardless of the thread count, and successive runs
  // of the same pipeline see fresh streams (as the sequential
  // implementation did).
  const std::uint64_t batch_seed =
      SweepEngine::derive_seed(cfg_.seed, run_counter_++);
  std::vector<PacketOutcome> outcomes(n_packets);

  SweepEngine engine(cfg_.threads);
  engine.for_each_with_context(n_packets, batch_seed, [&]() {
    auto worker =
        std::make_shared<PacketWorker>(cfg_.saiyan, cfg_.noise_figure_db);
    return [this, &phy, &outcomes, rss_dbm, worker](std::size_t p,
                                                    dsp::Rng& rng) {
      core::DemodWorkspace& ws = worker->batch.workspace();
      ws.tx.resize(cfg_.payload_symbols);
      for (std::uint32_t& v : ws.tx) {
        v = static_cast<std::uint32_t>(
            rng.uniform_int(0, phy.symbol_alphabet() - 1));
      }
      worker->mod.modulate_into(ws.tx, ws.wave);
      worker->chan.apply_into(ws.wave, rss_dbm, rng, ws.rx);

      std::span<const std::uint32_t> decoded;
      if (cfg_.aligned) {
        const lora::PacketLayout lay = worker->mod.layout(ws.tx.size());
        decoded = worker->batch.decode_aligned(ws.rx, lay.payload_start,
                                               ws.tx.size(), rng);
      } else {
        decoded = worker->batch.decode(ws.rx, ws.tx.size(), rng);
      }
      PacketOutcome& out = outcomes[p];
      out.detected = ws.preamble_found;
      for (std::size_t i = 0; i < ws.tx.size(); ++i) {
        const std::uint32_t actual = i < decoded.size() ? decoded[i] : 0;
        out.errors.add_symbol(ws.tx[i], actual, phy.bits_per_symbol);
      }
    };
  });

  for (const PacketOutcome& out : outcomes) {
    result.detections.add(out.detected);
    result.errors.merge(out.errors);
  }
  result.throughput_bps =
      effective_throughput_bps(phy.data_rate_bps(), result.errors.ber());
  return result;
}

PipelineResult WaveformPipeline::run_distance(double distance_m,
                                              std::size_t n_packets) {
  return run_impl(cfg_.link.rss_dbm(distance_m, cfg_.environment), n_packets);
}

PipelineResult WaveformPipeline::run_rss(double rss_dbm, std::size_t n_packets) {
  return run_impl(rss_dbm, n_packets);
}

double WaveformPipeline::min_sampling_multiplier(double target_accuracy,
                                                 std::size_t n_symbols,
                                                 double rss_dbm) {
  const std::size_t n_packets =
      (n_symbols + cfg_.payload_symbols - 1) / cfg_.payload_symbols;
  std::vector<double> mults;
  for (double mult = 1.0; mult <= 4.01; mult += 0.1) mults.push_back(mult);

  auto accuracy_at = [&](double mult) {
    PipelineConfig probe = cfg_;
    probe.saiyan.sampling_rate_multiplier = mult;
    probe.threads = 1;
    WaveformPipeline wp(probe);
    return 1.0 - wp.run_rss(rss_dbm, n_packets).errors.ser();
  };

  SweepEngine engine(cfg_.threads);
  if (engine.threads() <= 1) {
    // Serial: early-exit at the first passing multiplier.
    for (double mult : mults) {
      if (accuracy_at(mult) >= target_accuracy) return mult;
    }
    return 4.0;
  }
  // Parallel: probe every candidate, then pick the first passing one —
  // the same answer the serial scan produces. This trades up to a full
  // grid of probes for pool-wide parallelism; callers that expect an
  // early hit and have few workers should pass threads = 1.
  std::vector<double> accuracy(mults.size());
  engine.for_each_index(mults.size(),
                        [&](std::size_t i) { accuracy[i] = accuracy_at(mults[i]); });
  for (std::size_t i = 0; i < mults.size(); ++i) {
    if (accuracy[i] >= target_accuracy) return mults[i];
  }
  return 4.0;
}

}  // namespace saiyan::sim
