#include "sim/sweep_engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace saiyan::sim {

SweepEngine::SweepEngine(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

std::uint64_t SweepEngine::derive_seed(std::uint64_t seed, std::uint64_t index) {
  // Delegates to the shared dsp-level derivation so layers that must
  // match SweepEngine substreams (the streaming replay path) don't
  // have to depend on the sim engine.
  return dsp::derive_stream_seed(seed, index);
}

void SweepEngine::for_each_with_context(
    std::size_t n, std::uint64_t seed,
    const std::function<PointFn()>& make_worker) const {
  if (n == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, n));
  if (workers <= 1) {
    const PointFn fn = make_worker();
    for (std::size_t i = 0; i < n; ++i) {
      dsp::Rng rng(derive_seed(seed, i));
      fn(i, rng);
    }
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto work = [&]() {
    try {
      const PointFn fn = make_worker();
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        dsp::Rng rng(derive_seed(seed, i));
        fn(i, rng);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(work);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void SweepEngine::for_each(std::size_t n, std::uint64_t seed,
                           const PointFn& fn) const {
  for_each_with_context(n, seed, [&fn]() { return fn; });
}

void SweepEngine::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  for_each(n, 0, [&fn](std::size_t i, dsp::Rng&) { fn(i); });
}

std::vector<PipelineResult> sweep_rss(const PipelineConfig& base,
                                      std::span<const double> rss_dbm,
                                      std::size_t n_packets,
                                      const SweepEngine& engine) {
  std::vector<PipelineResult> results(rss_dbm.size());
  engine.for_each_index(rss_dbm.size(), [&](std::size_t i) {
    PipelineConfig cfg = base;
    cfg.seed = SweepEngine::derive_seed(base.seed, i);
    cfg.threads = 1;  // parallelism lives at the sweep level here
    WaveformPipeline wp(cfg);
    results[i] = wp.run_rss(rss_dbm[i], n_packets);
  });
  return results;
}

std::vector<PipelineResult> sweep_distance(const PipelineConfig& base,
                                           std::span<const double> distance_m,
                                           std::size_t n_packets,
                                           const SweepEngine& engine) {
  std::vector<PipelineResult> results(distance_m.size());
  engine.for_each_index(distance_m.size(), [&](std::size_t i) {
    PipelineConfig cfg = base;
    cfg.seed = SweepEngine::derive_seed(base.seed, i);
    cfg.threads = 1;
    WaveformPipeline wp(cfg);
    results[i] = wp.run_distance(distance_m[i], n_packets);
  });
  return results;
}

}  // namespace saiyan::sim
