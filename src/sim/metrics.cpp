#include "sim/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace saiyan::sim {

void ErrorCounter::add_symbol(std::uint32_t expected, std::uint32_t actual,
                              int bits_per_symbol) {
  if (bits_per_symbol <= 0) {
    throw std::invalid_argument("ErrorCounter: bits_per_symbol must be > 0");
  }
  ++symbols_;
  bits_ += static_cast<std::size_t>(bits_per_symbol);
  if (expected != actual) {
    ++symbol_errors_;
    const std::uint32_t diff = expected ^ actual;
    bit_errors_ += static_cast<std::size_t>(std::popcount(diff));
  }
}

void ErrorCounter::add_bits(std::size_t errors, std::size_t total) {
  bit_errors_ += errors;
  bits_ += total;
}

void ErrorCounter::merge(const ErrorCounter& other) {
  bit_errors_ += other.bit_errors_;
  bits_ += other.bits_;
  symbol_errors_ += other.symbol_errors_;
  symbols_ += other.symbols_;
}

double ErrorCounter::ber() const {
  return bits_ ? static_cast<double>(bit_errors_) / static_cast<double>(bits_) : 0.0;
}

double ErrorCounter::ser() const {
  return symbols_ ? static_cast<double>(symbol_errors_) / static_cast<double>(symbols_)
                  : 0.0;
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Cdf: no samples");
  std::vector<double> copy = samples_;
  std::sort(copy.begin(), copy.end());
  const double pos = std::clamp(q, 0.0, 1.0) * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, copy.size() - 1);
  const double t = pos - static_cast<double>(lo);
  return copy[lo] + t * (copy[hi] - copy[lo]);
}

std::vector<std::pair<double, double>> Cdf::curve() const {
  std::vector<double> copy = samples_;
  std::sort(copy.begin(), copy.end());
  std::vector<std::pair<double, double>> out;
  out.reserve(copy.size());
  for (std::size_t i = 0; i < copy.size(); ++i) {
    out.emplace_back(copy[i],
                     static_cast<double>(i + 1) / static_cast<double>(copy.size()));
  }
  return out;
}

double effective_throughput_bps(double data_rate_bps, double ber) {
  if (data_rate_bps < 0.0) {
    throw std::invalid_argument("effective_throughput_bps: negative rate");
  }
  const double ok = std::pow(1.0 - std::clamp(ber, 0.0, 1.0), 30.0);
  return data_rate_bps * ok;
}

}  // namespace saiyan::sim
