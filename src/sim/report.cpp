#include "sim/report.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace saiyan::sim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += "  " + std::string(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(100.0 * fraction, precision);
}

}  // namespace saiyan::sim
