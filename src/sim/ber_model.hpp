// Semi-analytic BER / range model.
//
// The range figures (17, 18, 19, 20, 21, 24, 25) need the BER<1e-3
// boundary at dozens of (distance, SF, BW, K, mode) points; measuring
// each with the waveform pipeline would take hours. This model maps a
// configuration to a required RSS (sensitivity) and a BER-vs-margin
// curve. Constants are anchored to the paper's reported numbers
// (DESIGN.md §5) and cross-checked against the waveform pipeline in
// tests/test_calibration.cpp:
//
//   * super, K=2, SF7, BW500: sensitivity -85.8 dBm (paper §5.2.1)
//     -> 148.6 m outdoors with the default link budget (Fig. 21);
//   * correlation buys a 2.1x range factor over CFS-only and CFS a
//     1.65x factor over vanilla (Fig. 25 midpoints);
//   * each extra bit per chirp costs ~2.8 dB (Fig. 16's 2.4-5.2x BER
//     spread from K=1 to K=5);
//   * SF buys ~0.65 dB per step (Fig. 17's 1.1-1.3x range from SF7 to
//     SF12 — envelope detection does not despread, so the gain is far
//     below the coherent 2.5 dB/SF);
//   * narrower bandwidth shrinks the SAW amplitude gap: +5.67 dB
//     (250 kHz) and +11.33 dB (125 kHz) of required RSS (Figs. 18/23);
//   * temperature deviation from the morning calibration costs
//     ~0.11 dB/K (Fig. 24's 126.4 -> 118.6 m over 10.2 K).
#pragma once

#include "channel/link_budget.hpp"
#include "core/config.hpp"

namespace saiyan::sim {

struct BerModelConfig {
  double base_sensitivity_dbm = -85.8;  ///< super, K=2, SF7, BW500
  double cfs_to_super_range_ratio = 2.1;    ///< Fig. 25
  double vanilla_to_cfs_range_ratio = 1.65; ///< Fig. 25
  double per_bit_db = 2.8;        ///< per K step away from K=2
  double sf_gain_db = 0.65;       ///< per SF step above 7
  double bw250_penalty_db = 5.67; ///< SAW gap loss at 250 kHz
  double bw125_penalty_db = 11.33;
  double detection_margin_db = 3.3;  ///< detection reaches past demod (Fig. 22)
  double temp_penalty_db_per_k = 0.11;
  double calibration_temp_c = 25.0;  ///< thresholds calibrated here (Fig. 24 uses -8.6)
  /// BER decades gained per dB of positive margin / lost per dB of
  /// negative margin (waveform-pipeline slopes).
  double ber_slope_decades_per_db = 1.0 / 3.0;
  double ber_rise_decades_per_db = 1.0 / 1.2;
  /// Residual error floor at strong signal (comparator jitter and
  /// sampling quantization): floor = base * growth^(K-1). The K=5/K=1
  /// ratio of ~3.8 reproduces Fig. 16's 2.4-5.2x BER spread at close
  /// range.
  double ber_floor_base = 2e-5;
  double ber_floor_growth_per_bit = 1.4;
  /// Path-loss exponent used to convert range ratios to dB.
  double path_loss_exponent = 4.0;
};

class BerModel {
 public:
  explicit BerModel(const BerModelConfig& cfg = {});

  /// Minimum RSS (dBm) for BER = 1e-3 under the given configuration.
  double required_rss_dbm(core::Mode mode, const lora::PhyParams& phy,
                          double temperature_c = 25.0) const;

  /// Minimum RSS (dBm) for packet *detection* (the Fig. 21/22 metric).
  double detection_rss_dbm(core::Mode mode, const lora::PhyParams& phy,
                           double temperature_c = 25.0) const;

  /// BER at a given RSS.
  double ber(double rss_dbm, core::Mode mode, const lora::PhyParams& phy,
             double temperature_c = 25.0) const;

  /// Packet error rate for `payload_bits` i.i.d. bits.
  double per(double rss_dbm, core::Mode mode, const lora::PhyParams& phy,
             std::size_t payload_bits, double temperature_c = 25.0) const;

  const BerModelConfig& config() const { return cfg_; }

 private:
  BerModelConfig cfg_;
};

}  // namespace saiyan::sim
