#include "sim/range_finder.hpp"

#include <cmath>
#include <stdexcept>

namespace saiyan::sim {

double find_range_m(const std::function<double(double)>& ber_at, double target_ber,
                    double lo_m, double hi_m, int iterations) {
  if (lo_m <= 0.0 || hi_m <= lo_m) {
    throw std::invalid_argument("find_range_m: need 0 < lo < hi");
  }
  if (ber_at(lo_m) > target_ber) return lo_m;   // fails even at the floor
  if (ber_at(hi_m) <= target_ber) return hi_m;  // never fails in range
  double lo = lo_m;
  double hi = hi_m;
  for (int i = 0; i < iterations; ++i) {
    const double mid = std::sqrt(lo * hi);
    if (ber_at(mid) <= target_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::sqrt(lo * hi);
}

double model_range_m(const BerModel& model, core::Mode mode,
                     const lora::PhyParams& phy, const channel::LinkBudget& link,
                     const channel::Environment& env, double temperature_c,
                     double target_ber) {
  return find_range_m(
      [&](double d) {
        return model.ber(link.rss_dbm(d, env), mode, phy, temperature_c);
      },
      target_ber);
}

double model_detection_range_m(const BerModel& model, core::Mode mode,
                               const lora::PhyParams& phy,
                               const channel::LinkBudget& link,
                               const channel::Environment& env,
                               double temperature_c) {
  const double sens = model.detection_rss_dbm(mode, phy, temperature_c);
  return link.distance_for_rss(sens, env);
}

}  // namespace saiyan::sim
