#include "sim/range_finder.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace saiyan::sim {

double find_range_m(const std::function<double(double)>& ber_at, double target_ber,
                    double lo_m, double hi_m, int iterations,
                    const SweepEngine* engine) {
  if (lo_m <= 0.0 || hi_m <= lo_m) {
    throw std::invalid_argument("find_range_m: need 0 < lo < hi");
  }
  if (ber_at(lo_m) > target_ber) return lo_m;   // fails even at the floor
  if (ber_at(hi_m) <= target_ber) return hi_m;  // never fails in range
  double lo = lo_m;
  double hi = hi_m;

  if (engine == nullptr) {
    for (int i = 0; i < iterations; ++i) {
      const double mid = std::sqrt(lo * hi);
      if (ber_at(mid) <= target_ber) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return std::sqrt(lo * hi);
  }

  // k-ary section: probe k geometrically spaced interior points per
  // round; the interval shrinks by (k+1)x per round, so match the
  // bisection's total 2^iterations shrink with fewer (parallel)
  // rounds. k is a fixed constant — NOT the engine's thread count —
  // so the probe grid, and therefore the returned range, is identical
  // on every machine; the engine only parallelizes evaluation.
  constexpr unsigned k = 4;
  const int rounds = static_cast<int>(std::ceil(
      static_cast<double>(iterations) * std::log(2.0) /
      std::log(static_cast<double>(k) + 1.0)));
  std::vector<double> probes(k);
  std::vector<double> ber(k);
  for (int r = 0; r < rounds; ++r) {
    const double log_lo = std::log(lo);
    const double step = (std::log(hi) - log_lo) / static_cast<double>(k + 1);
    for (unsigned j = 0; j < k; ++j) {
      probes[j] = std::exp(log_lo + step * static_cast<double>(j + 1));
    }
    engine->for_each_index(k, [&](std::size_t j) { ber[j] = ber_at(probes[j]); });
    // Monotone curve: keep the tightest bracketing pair.
    double new_lo = lo;
    double new_hi = hi;
    for (unsigned j = 0; j < k; ++j) {
      if (ber[j] <= target_ber) {
        new_lo = probes[j];
      } else {
        new_hi = probes[j];
        break;
      }
    }
    lo = new_lo;
    hi = new_hi;
  }
  return std::sqrt(lo * hi);
}

double model_range_m(const BerModel& model, core::Mode mode,
                     const lora::PhyParams& phy, const channel::LinkBudget& link,
                     const channel::Environment& env, double temperature_c,
                     double target_ber) {
  return find_range_m(
      [&](double d) {
        return model.ber(link.rss_dbm(d, env), mode, phy, temperature_c);
      },
      target_ber);
}

double model_detection_range_m(const BerModel& model, core::Mode mode,
                               const lora::PhyParams& phy,
                               const channel::LinkBudget& link,
                               const channel::Environment& env,
                               double temperature_c) {
  const double sens = model.detection_rss_dbm(mode, phy, temperature_c);
  return link.distance_for_rss(sens, env);
}

double measured_range_m(const PipelineConfig& base, const SweepEngine& engine,
                        std::size_t n_packets_per_probe, double target_ber,
                        double lo_m, double hi_m, int iterations) {
  // Each probe distance is one Monte-Carlo batch; its seed derives
  // from the distance bits so repeated probes of the same distance
  // are reproducible and independent of the search path.
  auto ber_at = [&](double d) {
    PipelineConfig cfg = base;
    std::uint64_t salt;
    static_assert(sizeof(salt) == sizeof(d));
    std::memcpy(&salt, &d, sizeof(salt));
    cfg.seed = SweepEngine::derive_seed(base.seed, salt);
    cfg.threads = 1;
    WaveformPipeline wp(cfg);
    return wp.run_distance(d, n_packets_per_probe).errors.ber();
  };
  return find_range_m(ber_at, target_ber, lo_m, hi_m, iterations, &engine);
}

}  // namespace saiyan::sim
