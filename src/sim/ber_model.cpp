#include "sim/ber_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace saiyan::sim {

BerModel::BerModel(const BerModelConfig& cfg) : cfg_(cfg) {
  if (cfg.base_sensitivity_dbm >= 0.0) {
    throw std::invalid_argument("BerModel: sensitivity must be negative dBm");
  }
  if (cfg.cfs_to_super_range_ratio <= 1.0 || cfg.vanilla_to_cfs_range_ratio <= 1.0) {
    throw std::invalid_argument("BerModel: range ratios must be > 1");
  }
}

double BerModel::required_rss_dbm(core::Mode mode, const lora::PhyParams& phy,
                                  double temperature_c) const {
  phy.validate();
  double rss = cfg_.base_sensitivity_dbm;

  // Mode offsets: a range ratio r at path-loss exponent n costs
  // 10·n·log10(r) dB of link budget.
  const double n = cfg_.path_loss_exponent;
  const double cfs_offset_db = 10.0 * n * std::log10(cfg_.cfs_to_super_range_ratio);
  const double van_offset_db =
      cfs_offset_db + 10.0 * n * std::log10(cfg_.vanilla_to_cfs_range_ratio);
  switch (mode) {
    case core::Mode::kSuper: break;
    case core::Mode::kFrequencyShifting: rss += cfs_offset_db; break;
    case core::Mode::kVanilla: rss += van_offset_db; break;
  }

  // K: each extra bit halves the peak-position bin width.
  rss += cfg_.per_bit_db * (phy.bits_per_symbol - 2);

  // SF: longer symbols integrate slightly more envelope energy.
  rss -= cfg_.sf_gain_db * (phy.spreading_factor - 7);

  // BW: narrower chirps sweep a shallower part of the SAW skirt.
  if (phy.bandwidth_hz == 250e3) rss += cfg_.bw250_penalty_db;
  if (phy.bandwidth_hz == 125e3) rss += cfg_.bw125_penalty_db;

  // Temperature: thresholds were calibrated at deployment time; the
  // SAW response drifts as the day warms up (Fig. 24).
  rss += cfg_.temp_penalty_db_per_k * std::abs(temperature_c - cfg_.calibration_temp_c);

  return rss;
}

double BerModel::detection_rss_dbm(core::Mode mode, const lora::PhyParams& phy,
                                   double temperature_c) const {
  return required_rss_dbm(mode, phy, temperature_c) - cfg_.detection_margin_db;
}

double BerModel::ber(double rss_dbm, core::Mode mode, const lora::PhyParams& phy,
                     double temperature_c) const {
  const double margin = rss_dbm - required_rss_dbm(mode, phy, temperature_c);
  double log10_ber;
  if (margin >= 0.0) {
    log10_ber = -3.0 - margin * cfg_.ber_slope_decades_per_db;
  } else {
    log10_ber = -3.0 - margin * cfg_.ber_rise_decades_per_db;
  }
  const double floor = cfg_.ber_floor_base *
                       std::pow(cfg_.ber_floor_growth_per_bit,
                                phy.bits_per_symbol - 1);
  return std::clamp(std::max(std::pow(10.0, log10_ber), floor), 1e-9, 0.5);
}

double BerModel::per(double rss_dbm, core::Mode mode, const lora::PhyParams& phy,
                     std::size_t payload_bits, double temperature_c) const {
  const double b = ber(rss_dbm, mode, phy, temperature_c);
  return 1.0 - std::pow(1.0 - b, static_cast<double>(payload_bits));
}

}  // namespace saiyan::sim
