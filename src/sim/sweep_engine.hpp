// Multithreaded Monte-Carlo sweep executor with deterministic
// per-point RNG streams.
//
// Every sweep point (or packet batch) gets its own Rng seeded from
// splitmix64(seed, index), so the result of a sweep is a pure function
// of (configuration, seed) — bit-identical at 1, 2 or N worker
// threads, which keeps figures reproducible while letting the
// simulation saturate the machine. Workers pull indices from a shared
// atomic counter; results are written by index, never merged in
// completion order.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dsp/rng.hpp"
#include "sim/pipeline.hpp"

namespace saiyan::sim {

class SweepEngine {
 public:
  /// worker function bound to one worker thread's private state.
  using PointFn = std::function<void(std::size_t, dsp::Rng&)>;

  /// threads == 0 picks std::thread::hardware_concurrency().
  explicit SweepEngine(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Independent RNG stream seed for (seed, index) — splitmix64 over
  /// the golden-ratio sequence. Identical at any thread count.
  static std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t index);

  /// Run fn(i, rng) for every i in [0, n); rng is freshly seeded from
  /// derive_seed(seed, i). fn must only touch shared state through
  /// index i (results slot), which makes the run deterministic.
  void for_each(std::size_t n, std::uint64_t seed, const PointFn& fn) const;

  /// Run fn(i) for every i in [0, n) without a per-point RNG.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn) const;

  /// Like for_each, but each worker thread first creates its own
  /// context via make_worker() (e.g. a demodulator + modulator pair,
  /// which hold non-thread-safe caches) and then processes the indices
  /// it claims with it.
  void for_each_with_context(std::size_t n, std::uint64_t seed,
                             const std::function<PointFn()>& make_worker) const;

 private:
  unsigned threads_;
};

/// Waveform-pipeline sweep over an RSS grid: one pipeline per point,
/// seeded from derive_seed(base.seed, point), points spread across the
/// engine's workers (each point runs its packets serially).
std::vector<PipelineResult> sweep_rss(const PipelineConfig& base,
                                      std::span<const double> rss_dbm,
                                      std::size_t n_packets,
                                      const SweepEngine& engine);

/// Same over a distance grid (link budget applied per point).
std::vector<PipelineResult> sweep_distance(const PipelineConfig& base,
                                           std::span<const double> distance_m,
                                           std::size_t n_packets,
                                           const SweepEngine& engine);

}  // namespace saiyan::sim
