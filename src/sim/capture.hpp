// Synthetic multi-tag gateway captures: record and replay.
//
// The figure sweeps exercise one packet at a time; a gateway workload
// is one long capture with many packets from many tags at unknown
// offsets, idle gaps and partial packets. generate_capture()
// synthesizes that workload deterministically — every tag transmits
// `packets_per_tag` packets at its own RSS, interleaved with random
// idle gaps, over a shared thermal noise floor — together with the
// ground-truth markers (offset, tag, payload) a replay scores itself
// against. write_capture() serializes it into the versioned trace
// format (stream/trace.hpp); replay_trace() runs a
// stream::StreamingDemodulator over a trace file chunk by chunk and
// reports detection/decode statistics.
//
// Everything is a pure function of (config, seed): captures, traces
// and replays reproduce bit-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "sim/metrics.hpp"
#include "stream/streaming_demod.hpp"
#include "stream/trace.hpp"

namespace saiyan::sim {

struct CaptureConfig {
  core::SaiyanConfig saiyan;
  std::vector<double> tag_rss_dbm;   ///< one transmitting tag per entry
  std::size_t packets_per_tag = 5;
  std::size_t payload_symbols = 16;
  double noise_figure_db = 6.0;      ///< thermal floor across the capture
  double min_gap_symbols = 2.0;      ///< idle gap between packets
  double max_gap_symbols = 12.0;
  std::uint64_t seed = 1;
  /// Explicit schedule: when non-empty, packet p starts at offsets[p]
  /// (non-decreasing absolute sample offsets; tag p % n_tags) and the
  /// random gap schedule — including packets_per_tag — is ignored.
  /// This is how the SIC tests place overlapping frames at controlled
  /// symbol offsets.
  std::vector<std::uint64_t> offsets;
  /// Optional per-tag carrier phase in radians (empty, or one entry
  /// per tag): every packet of tag t is injected rotated by
  /// exp(i·tag_phase_rad[t]), exercising the complex amplitude fit of
  /// the SIC least-squares cancellation.
  std::vector<double> tag_phase_rad;
  /// Optional per-tag carrier-frequency offset in Hz (empty, or one
  /// entry per tag): every packet of tag t is injected rotated by
  /// exp(i·2π·f·n/fs) across its span — ground truth for the link
  /// telemetry CFO estimator. Zero/empty leaves the waveform
  /// bit-identical to a pre-CFO capture.
  std::vector<double> tag_cfo_hz;
  /// Link-header convention for telemetry ground truth: overwrite
  /// payload symbol 0 with the tag id and symbol 1 with a per-tag
  /// wrapping sequence counter (both mod the symbol alphabet) *after*
  /// the random payload draws, so the schedule, the remaining symbols
  /// and the noise fill stay bit-identical to a header-less capture.
  bool link_headers = false;
};

struct Capture {
  dsp::Signal samples;
  std::vector<stream::TraceMarker> markers;  ///< in transmission order
  /// Collision ground truth (parallel to markers): frame p overlaps at
  /// least one other frame's [offset, offset + total_samples) span.
  std::vector<std::uint8_t> collided;
  /// Maximal chains of ≥2 mutually overlapping frames.
  std::size_t collision_groups = 0;
};

/// Synthesize the capture waveform + ground truth.
Capture generate_capture(const CaptureConfig& cfg);

/// Serialize a capture into a trace file in `chunk_samples` chunks.
/// `float32` selects the version-2 sample encoding (half the bytes;
/// replay becomes tolerance-equivalent instead of bit-exact).
void write_capture(const Capture& capture, const CaptureConfig& cfg,
                   const std::string& path, std::size_t chunk_samples = 16384,
                   bool float32 = false);

/// Replay statistics: ground truth vs what the streaming demodulator
/// recovered.
struct ReplayStats {
  std::size_t markers = 0;           ///< packets actually transmitted
  std::size_t decoded = 0;           ///< packets the stream decoded
  std::size_t matched = 0;           ///< decoded within tolerance of a marker
  std::size_t false_detections = 0;  ///< decoded with no matching marker
  std::size_t truncated = 0;         ///< frames cut off by capture end
  std::size_t symbols = 0;           ///< ground-truth symbols of matched packets
  std::size_t symbol_errors = 0;     ///< mismatches among those
  std::size_t corrupt_chunks = 0;    ///< trace chunks rejected by CRC
  std::uint64_t samples = 0;         ///< capture samples consumed
  /// Merged ingest health: the reader's chunk/resync counters plus the
  /// demodulator's gap/shed counters (see stream/ingest_stats.hpp).
  stream::IngestStats ingest;
  /// Collision/capture outcome, scored against the overlap geometry of
  /// the ground-truth markers (frame length from the demodulator) plus
  /// the demodulator's own SIC counters.
  CollisionCounter collisions;

  double detection_rate() const {
    return markers == 0 ? 0.0
                        : static_cast<double>(matched) /
                              static_cast<double>(markers);
  }
  double ser() const {
    return symbols == 0 ? 0.0
                        : static_cast<double>(symbol_errors) /
                              static_cast<double>(symbols);
  }
};

/// Score a finished streaming run against ground-truth markers:
/// decoded packets match the nearest marker within
/// `tolerance_samples` of its offset (both lists are offset-ordered).
ReplayStats score_replay(const stream::StreamingDemodulator& demod,
                         std::span<const stream::TraceMarker> markers,
                         std::size_t tolerance_samples);

struct ReplayConfig {
  std::size_t chunk_samples = 16384;  ///< read/push granularity
  std::uint64_t seed = 1;             ///< per-packet decode stream root
  double min_score = 0.6;
  std::size_t block_samples = 0;
  sic::SicConfig sic;                 ///< collision resolution (depth 0 = off)
  /// Impairment tolerance: read the trace in skip-and-resync mode and
  /// feed every recovered gap to StreamingDemodulator::note_gap so the
  /// replay survives corrupt chunks instead of stopping at the first.
  bool resync = false;
  /// Offset-keyed decode seeds (see stream::StreamConfig): decode
  /// results become independent of upstream losses, so a faulted
  /// replay is bit-comparable to a clean one frame by frame.
  bool seed_by_offset = false;
};

/// Read a trace file and replay it end to end. The receiver is
/// reconstructed as core::SaiyanConfig::make(meta.phy, meta.mode).
/// Throws std::runtime_error on a malformed header. Corrupted chunks
/// stop the replay and are counted in the stats — unless cfg.resync,
/// in which case the replay skips to the next valid chunk, realigns
/// the sample timeline, and keeps going (losses land in `ingest`).
ReplayStats replay_trace(const std::string& path, const ReplayConfig& cfg = {});

}  // namespace saiyan::sim
