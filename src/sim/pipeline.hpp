// Full waveform end-to-end pipeline: modulator -> link budget + AWGN
// -> Saiyan receive chain -> decoder -> error statistics. This is the
// measurement instrument for the BER figures (2, 16, 22) and Table 1,
// and the validator for the semi-analytic BerModel.
//
// Packets are independent Monte-Carlo trials: each gets its own RNG
// stream derived from (seed, run number, packet index) and batches are
// spread across a sim::SweepEngine worker pool when `threads` != 1.
// Results are bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <optional>

#include "channel/awgn_channel.hpp"
#include "channel/link_budget.hpp"
#include "core/demodulator.hpp"
#include "sim/metrics.hpp"

namespace saiyan::sim {

struct PipelineConfig {
  core::SaiyanConfig saiyan;
  channel::LinkBudget link;
  channel::Environment environment;
  double noise_figure_db = 6.0;
  std::size_t payload_symbols = 32;  ///< paper §5 setup
  bool aligned = true;  ///< true: timing-aided BER; false: full sync
  std::uint64_t seed = 1;
  /// Worker threads for the packet batch (1 = serial in the calling
  /// thread, 0 = hardware concurrency). Any value yields identical
  /// results for a given seed.
  unsigned threads = 1;
};

struct PipelineResult {
  ErrorCounter errors;
  PacketCounter detections;
  double rss_dbm = 0.0;
  double throughput_bps = 0.0;
};

class WaveformPipeline {
 public:
  explicit WaveformPipeline(const PipelineConfig& cfg);

  /// Run `n_packets` packets at a given distance.
  PipelineResult run_distance(double distance_m, std::size_t n_packets);

  /// Run at an explicit RSS (receiver-sensitivity sweeps, Fig. 22).
  PipelineResult run_rss(double rss_dbm, std::size_t n_packets);

  /// Measure the minimum sampling-rate multiplier (x Nyquist) that
  /// reaches `target_accuracy` symbol accuracy at high SNR — the
  /// Table 1 "practice" measurement. Candidate multipliers are probed
  /// across the worker pool when cfg.threads != 1.
  double min_sampling_multiplier(double target_accuracy, std::size_t n_symbols,
                                 double rss_dbm = -45.0);

  const PipelineConfig& config() const { return cfg_; }

 private:
  PipelineResult run_impl(double rss_dbm, std::size_t n_packets);

  PipelineConfig cfg_;
  std::uint64_t run_counter_ = 0;  ///< salts successive runs' streams
};

}  // namespace saiyan::sim
