// Successive interference cancellation over decoded frame spans.
//
// The streaming scanner (stream::PacketScanner) reliably detects the
// *strongest* frame of a collision: a ≥6 dB weaker preamble buried in
// another frame's payload scores below the confirmation threshold in
// the mixed waveform (the strong payload's own symbol-spaced
// self-correlation out-competes it), so before this subsystem the
// weaker frame was simply lost. CollisionResolver turns that collision
// into captures with the classic decode → cancel → rescan loop:
//
//   1. a frame decodes (from the residual ring — see
//      stream::StreamingDemodulator) exactly as it always did;
//   2. cancel(): its transmit waveform is reconstructed from the
//      decoded symbols (lora::Remodulator), fitted to the residual by
//      least squares (complex amplitude + DC offset, searching a ±
//      sample window since detection is only sample-accurate to ~±2)
//      and subtracted in place via the bit-identical
//      dsp::simd::complex_scaled_subtract kernel;
//   3. rescan(): the cancelled span is re-scanned for a preamble that
//      was hidden under the frame — on the residual the weaker
//      preamble now scores at full strength — and any find is framed
//      and decoded like any other packet, at the next cancellation
//      depth.
//
// Decode errors in a stronger frame remodulate into an imperfect
// replica, so its subtraction is only as clean as its decode — the
// classic SIC error-propagation behavior. Equal-power collisions are
// the worst case: both decodes see ~0 dB interference, exactly as
// physics dictates.
//
// Every buffer (reconstructed frame, rescan envelope workspace,
// prewarmed modulator caches) reaches a steady-state size, after which
// a cancellation pass and a rescan allocate nothing. Instances are not
// thread-safe; shard captures across workers by giving each its own
// resolver.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/batch_demod.hpp"
#include "core/config.hpp"
#include "core/preamble_detector.hpp"
#include "core/receiver_chain.hpp"
#include "lora/remodulator.hpp"

namespace saiyan::sic {

struct SicConfig {
  /// Maximum cancellation depth per collision chain: a frame decoded
  /// at depth d is cancelled and its span rescanned only while
  /// d < depth, so depth 1 resolves two-frame collisions, depth 2
  /// three-way pileups, and 0 disables SIC entirely.
  std::size_t depth = 0;
  /// ± sample search around the detected frame offset for the
  /// least-squares fit (detection is sample-accurate to ~±2).
  std::size_t align_radius = 2;
  /// Confirmation threshold for a preamble re-detected on a cancelled
  /// residual. The residual is mostly a clean (weaker) frame, so this
  /// can sit at the batch detector's operating point rather than the
  /// streaming scanner's.
  double redetect_min_score = 0.5;
  /// Load shedding (the gateway's overload mode): when the rescan
  /// backlog in the streaming demodulator reaches `shed_queue`, newly
  /// decoded frames skip the cancel+rescan stage entirely — their SIC
  /// work is shed and counted in IngestStats::sic_shed — until the
  /// backlog drains below the threshold. Collision pileups then cost
  /// bounded work per decoded frame instead of compounding. 0 = never
  /// shed (pay full SIC cost regardless of pressure).
  std::size_t shed_queue = 0;
  /// Hard cap on queued rescan regions: at the cap the oldest region
  /// is evicted (IngestStats::rescans_dropped) to admit the new one,
  /// bounding the queue's memory and the ring retention it implies.
  /// 0 = unbounded.
  std::size_t max_rescan_queue = 0;
};

/// A preamble found on a cancelled residual.
struct RescanHit {
  std::size_t offset = 0;  ///< preamble start relative to the region
  double score = 0.0;      ///< normalized correlation score
};

class CollisionResolver {
 public:
  /// `payload_symbols` fixes the frame geometry, exactly like the
  /// streaming demodulator's a-priori frame length.
  CollisionResolver(const core::SaiyanConfig& cfg, const SicConfig& sic,
                    std::size_t payload_symbols);

  /// Reconstruct the frame carrying `symbols`, least-squares fit it
  /// against `region` (whose sample `frame_off` is the frame's
  /// detected first sample; the region should carry align_radius
  /// padding when available) and subtract it in place. Returns the
  /// fitted |amplitude|.
  double cancel(std::span<dsp::Complex> region, std::size_t frame_off,
                std::span<const std::uint32_t> symbols);

  /// Scan a residual region for a hidden preamble: vanilla reference
  /// envelope, then the batch detector's prepared correlator.
  std::optional<RescanHit> rescan(std::span<const dsp::Complex> region);

  const SicConfig& config() const { return cfg_; }
  std::size_t frame_samples() const { return remod_.frame_samples(); }
  std::size_t preamble_samples() const { return remod_.payload_start(); }

 private:
  SicConfig cfg_;
  lora::Remodulator remod_;
  core::ReceiverChain chain_;        // vanilla-mode rescan front end
  core::PreambleDetector detector_;
  core::DemodWorkspace ws_;          // rescan envelope workspace
  dsp::RealSignal scratch_;          // detector mean-removal scratch
  dsp::Signal tx_;                   // reconstructed frame
};

}  // namespace saiyan::sic
