#include "sic/collision_resolver.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/simd.hpp"

namespace saiyan::sic {

namespace {

// Rescans run the same vanilla front end as the streaming scanner:
// re-detection needs only timing, and the vanilla envelope is cheaper
// and noise-free deterministic.
core::SaiyanConfig rescan_config(const core::SaiyanConfig& cfg) {
  core::SaiyanConfig scan = cfg;
  scan.mode = core::Mode::kVanilla;
  return scan;
}

}  // namespace

CollisionResolver::CollisionResolver(const core::SaiyanConfig& cfg,
                                     const SicConfig& sic,
                                     std::size_t payload_symbols)
    : cfg_(sic),
      remod_(cfg.phy, payload_symbols),
      chain_(rescan_config(cfg)),
      detector_(chain_) {}

double CollisionResolver::cancel(std::span<dsp::Complex> region,
                                 std::size_t frame_off,
                                 std::span<const std::uint32_t> symbols) {
  remod_.frame_into(symbols, tx_);
  const std::ptrdiff_t radius = static_cast<std::ptrdiff_t>(cfg_.align_radius);
  const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(frame_off);
  // Detection is only sample-accurate to ~±2; pick the alignment the
  // amplitude-only fit explains best, then fit amplitude + DC offset
  // there and subtract. The probe runs over the preamble span only —
  // the template energy is shift-invariant, so ranking reduces to the
  // correlation magnitude — and the full frame is fitted exactly once.
  const std::size_t probe = remod_.payload_start();
  std::size_t best_pos = frame_off;
  double best_corr = -1.0;
  for (std::ptrdiff_t s = -radius; s <= radius; ++s) {
    const std::ptrdiff_t pos = off + s;
    if (pos < 0 || static_cast<std::size_t>(pos) + tx_.size() > region.size()) {
      continue;
    }
    const double corr = std::abs(dsp::simd::cdot(
        region.data() + pos, tx_.data(), probe));
    if (corr > best_corr) {
      best_corr = corr;
      best_pos = static_cast<std::size_t>(pos);
    }
  }
  if (best_pos + tx_.size() > region.size()) {
    throw std::invalid_argument("CollisionResolver::cancel: region too small");
  }
  const std::span<dsp::Complex> target =
      region.subspan(best_pos, tx_.size());
  const lora::RemodFit f =
      lora::Remodulator::fit(std::span<const dsp::Complex>(target), tx_);
  lora::Remodulator::subtract(target, tx_, f);
  return std::abs(f.amplitude);
}

std::optional<RescanHit> CollisionResolver::rescan(
    std::span<const dsp::Complex> region) {
  if (region.size() < preamble_samples()) return std::nullopt;
  chain_.reference_envelope_into(region, ws_);
  const std::optional<core::PreambleTiming> t = detector_.detect_envelope_ws(
      ws_.env, scratch_, cfg_.redetect_min_score);
  if (!t.has_value()) return std::nullopt;
  RescanHit hit;
  hit.offset = t->payload_start - preamble_samples();
  hit.score = t->score;
  return hit;
}

}  // namespace saiyan::sic
