#include "gateway/gateway_stats.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace saiyan::gateway {

namespace {

void line(std::string& out, const char* key, std::uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %llu\n", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

void line(std::string& out, const char* key, double v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %.3f\n", key, v);
  out += buf;
}

}  // namespace

std::string GatewayStats::to_text() const {
  std::string out;
  out.reserve(1024 + 128 * per_worker.size());
  line(out, "uptime_s", uptime_s);
  line(out, "workers", static_cast<std::uint64_t>(workers));
  line(out, "subscribers", static_cast<std::uint64_t>(subscribers));
  line(out, "jobs_enqueued", jobs_enqueued);
  line(out, "jobs_done", jobs_done);
  line(out, "jobs_failed", jobs_failed);
  line(out, "streams_open", streams_open);
  line(out, "config_reloads", config_reloads);
  line(out, "frames_decoded", frames_decoded);
  line(out, "symbols_decoded", symbols_decoded);
  line(out, "truncated_frames", truncated_frames);
  line(out, "samples_consumed", samples_consumed);
  line(out, "chunks_ingested", chunks_ingested);
  line(out, "markers_expected", markers_expected);
  line(out, "frames_per_sec", frames_per_sec);
  line(out, "msamples_per_sec", msamples_per_sec);
  line(out, "latency_p50_us", latency_p50_us);
  line(out, "latency_p99_us", latency_p99_us);
  line(out, "latency_max_us", latency_max_us);
  line(out, "latency_count", latency_count);
  line(out, "latency_sum_us", latency_sum_us);
  line(out, "latency_saturated", latency_saturated);
  for (const StageLatencySnapshot& st : stages) {
    char key[96];
    std::snprintf(key, sizeof(key), "stage.%s.count", st.stage);
    line(out, key, st.count);
    std::snprintf(key, sizeof(key), "stage.%s.sum_us", st.stage);
    line(out, key, st.sum_us);
    std::snprintf(key, sizeof(key), "stage.%s.p50_us", st.stage);
    line(out, key, st.p50_us);
    std::snprintf(key, sizeof(key), "stage.%s.p99_us", st.stage);
    line(out, key, st.p99_us);
    std::snprintf(key, sizeof(key), "stage.%s.max_us", st.stage);
    line(out, key, st.max_us);
    std::snprintf(key, sizeof(key), "stage.%s.saturated", st.stage);
    line(out, key, st.saturated);
  }
  line(out, "links_tracked", static_cast<std::uint64_t>(links.links.size()));
  line(out, "link_frames_total", links.frames_total);
  line(out, "link_evictions", links.evictions);
  if (links.noise_floor_valid) {
    line(out, "noise_floor_dbm", links.noise_floor_dbm);
  }
  line(out, "trace_events_dropped", trace_events_dropped);
  line(out, "watchdog_cancels", watchdog_cancels);
  line(out, "deadline_cancels", deadline_cancels);
  line(out, "degradation_level", static_cast<std::uint64_t>(degradation_level));
  line(out, "degradation_transitions", degradation_transitions);
  line(out, "ingest.chunks_ok", ingest.chunks_ok);
  line(out, "ingest.chunks_corrupt", ingest.chunks_corrupt);
  line(out, "ingest.resyncs", ingest.resyncs);
  line(out, "ingest.bytes_skipped", ingest.bytes_skipped);
  line(out, "ingest.samples_lost", ingest.samples_lost);
  line(out, "ingest.gaps", ingest.gaps);
  line(out, "ingest.gap_samples", ingest.gap_samples);
  line(out, "ingest.spans_dropped", ingest.spans_dropped);
  line(out, "ingest.sic_shed", ingest.sic_shed);
  line(out, "ingest.rescans_dropped", ingest.rescans_dropped);
  line(out, "ingest.rescans_expired", ingest.rescans_expired);
  line(out, "ingest.spans_shed", ingest.spans_shed);
  line(out, "ingest.frames_dropped_subscriber",
       ingest.frames_dropped_subscriber);
  line(out, "ingest.jobs_cancelled", ingest.jobs_cancelled);
  line(out, "ingest.total_errors", ingest.total_errors());
  for (std::size_t i = 0; i < per_worker.size(); ++i) {
    const WorkerSnapshot& w = per_worker[i];
    char key[64];
    std::snprintf(key, sizeof(key), "worker.%zu.frames", i);
    line(out, key, w.frames);
    std::snprintf(key, sizeof(key), "worker.%zu.symbols", i);
    line(out, key, w.symbols);
    std::snprintf(key, sizeof(key), "worker.%zu.samples", i);
    line(out, key, w.samples);
    std::snprintf(key, sizeof(key), "worker.%zu.chunks", i);
    line(out, key, w.chunks);
    std::snprintf(key, sizeof(key), "worker.%zu.jobs", i);
    line(out, key, w.jobs);
    std::snprintf(key, sizeof(key), "worker.%zu.truncated", i);
    line(out, key, w.truncated);
  }
  return out;
}

saiyan::Result<LinkQuery> parse_link_query(std::string_view text) {
  LinkQuery q;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\t' || text[i] == '\n')) {
      ++i;
    }
    std::size_t j = i;
    while (j < text.size() && text[j] != ' ' && text[j] != '\t' &&
           text[j] != '\n') {
      ++j;
    }
    if (j == i) break;
    const std::string_view tok = text.substr(i, j - i);
    i = j;
    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos) {
      return saiyan::Error{"links: expected key=value, got '" +
                           std::string(tok) + "'"};
    }
    const std::string_view key = tok.substr(0, eq);
    const std::string_view val = tok.substr(eq + 1);
    if (key == "top") {
      std::size_t n = 0;
      const auto [ptr, ec] =
          std::from_chars(val.data(), val.data() + val.size(), n);
      if (ec != std::errc{} || ptr != val.data() + val.size()) {
        return saiyan::Error{"links: bad top '" + std::string(val) + "'"};
      }
      q.top = n;
    } else if (key == "sort") {
      if (val == "frames") {
        q.sort = LinkQuery::Sort::kFrames;
      } else if (val == "snr") {
        q.sort = LinkQuery::Sort::kSnr;
      } else if (val == "last_seen") {
        q.sort = LinkQuery::Sort::kLastSeen;
      } else if (val == "tag") {
        q.sort = LinkQuery::Sort::kTag;
      } else {
        return saiyan::Error{"links: unknown sort '" + std::string(val) +
                             "' (frames|snr|last_seen|tag)"};
      }
    } else {
      return saiyan::Error{"links: unknown option '" + std::string(key) +
                           "' (top, sort)"};
    }
  }
  return q;
}

std::string links_to_text(const obs::LinkRegistrySnapshot& snap,
                          const LinkQuery& q) {
  std::vector<const obs::LinkSnapshot*> order;
  order.reserve(snap.links.size());
  for (const obs::LinkSnapshot& l : snap.links) order.push_back(&l);
  const auto tag_lt = [](const obs::LinkSnapshot* a,
                         const obs::LinkSnapshot* b) {
    return a->tag_id != b->tag_id ? a->tag_id < b->tag_id
                                  : a->channel < b->channel;
  };
  switch (q.sort) {
    case LinkQuery::Sort::kFrames:
      std::stable_sort(order.begin(), order.end(),
                       [&](const obs::LinkSnapshot* a,
                           const obs::LinkSnapshot* b) {
                         return a->frames != b->frames ? a->frames > b->frames
                                                       : tag_lt(a, b);
                       });
      break;
    case LinkQuery::Sort::kSnr:
      std::stable_sort(order.begin(), order.end(),
                       [&](const obs::LinkSnapshot* a,
                           const obs::LinkSnapshot* b) {
                         return a->ewma_snr_db != b->ewma_snr_db
                                    ? a->ewma_snr_db < b->ewma_snr_db
                                    : tag_lt(a, b);
                       });
      break;
    case LinkQuery::Sort::kLastSeen:
      std::stable_sort(order.begin(), order.end(),
                       [&](const obs::LinkSnapshot* a,
                           const obs::LinkSnapshot* b) {
                         return a->last_seen_us != b->last_seen_us
                                    ? a->last_seen_us > b->last_seen_us
                                    : tag_lt(a, b);
                       });
      break;
    case LinkQuery::Sort::kTag:
      std::stable_sort(order.begin(), order.end(), tag_lt);
      break;
  }
  if (q.top != 0 && order.size() > q.top) order.resize(q.top);

  std::string out;
  out.reserve(256 + 320 * order.size());
  line(out, "links_tracked", static_cast<std::uint64_t>(snap.links.size()));
  line(out, "links_listed", static_cast<std::uint64_t>(order.size()));
  line(out, "link_capacity", static_cast<std::uint64_t>(snap.capacity));
  line(out, "link_evictions", snap.evictions);
  line(out, "frames_total", snap.frames_total);
  if (snap.noise_floor_valid) {
    line(out, "noise_floor_dbm", snap.noise_floor_dbm);
  }
  for (const obs::LinkSnapshot* l : order) {
    char key[96];
    const unsigned long t = static_cast<unsigned long>(l->tag_id);
    const unsigned long c = static_cast<unsigned long>(l->channel);
    const auto field = [&](const char* name) {
      std::snprintf(key, sizeof(key), "link.%lu.%lu.%s", t, c, name);
      return key;
    };
    line(out, field("frames"), l->frames);
    line(out, field("collided"), l->collided_frames);
    line(out, field("sic_rescued"), l->sic_rescued);
    line(out, field("lost"), l->lost_frames);
    line(out, field("snr_db"), l->ewma_snr_db);
    line(out, field("cfo_hz"), l->ewma_cfo_hz);
    line(out, field("timing"), l->ewma_timing);
    line(out, field("margin"), l->ewma_margin);
    line(out, field("latency_us"), l->ewma_latency_us);
    line(out, field("last_snr_db"), l->last_snr_db);
    line(out, field("last_seen_us"), l->last_seen_us);
    line(out, field("last_packet_start"), l->last_packet_start);
  }
  return out;
}

std::string GatewayHealth::to_text() const {
  std::string out;
  out.reserve(512 + 192 * workers.size());
  line(out, "uptime_s", uptime_s);
  line(out, "config_generation", config_generation);
  line(out, "degradation_level",
       static_cast<std::uint64_t>(degradation_level));
  out += "degradation_name ";
  out += degradation_name;
  out += '\n';
  line(out, "degradation_transitions", degradation_transitions);
  line(out, "watchdog_cancels", watchdog_cancels);
  line(out, "deadline_cancels", deadline_cancels);
  line(out, "jobs_cancelled", jobs_cancelled);
  line(out, "rescan_backlog", rescan_backlog);
  line(out, "window_p99_us", window_p99_us);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerHealth& w = workers[i];
    char key[64];
    std::snprintf(key, sizeof(key), "worker.%zu.busy", i);
    line(out, key, static_cast<std::uint64_t>(w.busy ? 1 : 0));
    std::snprintf(key, sizeof(key), "worker.%zu.job", i);
    line(out, key, w.job);
    std::snprintf(key, sizeof(key), "worker.%zu.job_age_ms", i);
    line(out, key, w.job_age_ms);
    std::snprintf(key, sizeof(key), "worker.%zu.heartbeat_age_ms", i);
    line(out, key, w.heartbeat_age_ms);
    std::snprintf(key, sizeof(key), "worker.%zu.cancels", i);
    line(out, key, w.cancels);
    std::snprintf(key, sizeof(key), "worker.%zu.rescan_backlog", i);
    line(out, key, w.rescan_backlog);
    std::snprintf(key, sizeof(key), "worker.%zu.jobs_completed", i);
    line(out, key, w.jobs_completed);
  }
  return out;
}

}  // namespace saiyan::gateway
