#include "gateway/gateway_stats.hpp"

#include <cstdio>

namespace saiyan::gateway {

namespace {

void line(std::string& out, const char* key, std::uint64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %llu\n", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

void line(std::string& out, const char* key, double v) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s %.3f\n", key, v);
  out += buf;
}

}  // namespace

std::string GatewayStats::to_text() const {
  std::string out;
  out.reserve(1024 + 128 * per_worker.size());
  line(out, "uptime_s", uptime_s);
  line(out, "workers", static_cast<std::uint64_t>(workers));
  line(out, "subscribers", static_cast<std::uint64_t>(subscribers));
  line(out, "jobs_enqueued", jobs_enqueued);
  line(out, "jobs_done", jobs_done);
  line(out, "jobs_failed", jobs_failed);
  line(out, "streams_open", streams_open);
  line(out, "config_reloads", config_reloads);
  line(out, "frames_decoded", frames_decoded);
  line(out, "symbols_decoded", symbols_decoded);
  line(out, "truncated_frames", truncated_frames);
  line(out, "samples_consumed", samples_consumed);
  line(out, "chunks_ingested", chunks_ingested);
  line(out, "markers_expected", markers_expected);
  line(out, "frames_per_sec", frames_per_sec);
  line(out, "msamples_per_sec", msamples_per_sec);
  line(out, "latency_p50_us", latency_p50_us);
  line(out, "latency_p99_us", latency_p99_us);
  line(out, "latency_max_us", latency_max_us);
  line(out, "latency_count", latency_count);
  line(out, "latency_sum_us", latency_sum_us);
  for (const StageLatencySnapshot& st : stages) {
    char key[96];
    std::snprintf(key, sizeof(key), "stage.%s.count", st.stage);
    line(out, key, st.count);
    std::snprintf(key, sizeof(key), "stage.%s.sum_us", st.stage);
    line(out, key, st.sum_us);
    std::snprintf(key, sizeof(key), "stage.%s.p50_us", st.stage);
    line(out, key, st.p50_us);
    std::snprintf(key, sizeof(key), "stage.%s.p99_us", st.stage);
    line(out, key, st.p99_us);
    std::snprintf(key, sizeof(key), "stage.%s.max_us", st.stage);
    line(out, key, st.max_us);
  }
  line(out, "trace_events_dropped", trace_events_dropped);
  line(out, "watchdog_cancels", watchdog_cancels);
  line(out, "deadline_cancels", deadline_cancels);
  line(out, "degradation_level", static_cast<std::uint64_t>(degradation_level));
  line(out, "degradation_transitions", degradation_transitions);
  line(out, "ingest.chunks_ok", ingest.chunks_ok);
  line(out, "ingest.chunks_corrupt", ingest.chunks_corrupt);
  line(out, "ingest.resyncs", ingest.resyncs);
  line(out, "ingest.bytes_skipped", ingest.bytes_skipped);
  line(out, "ingest.samples_lost", ingest.samples_lost);
  line(out, "ingest.gaps", ingest.gaps);
  line(out, "ingest.gap_samples", ingest.gap_samples);
  line(out, "ingest.spans_dropped", ingest.spans_dropped);
  line(out, "ingest.sic_shed", ingest.sic_shed);
  line(out, "ingest.rescans_dropped", ingest.rescans_dropped);
  line(out, "ingest.rescans_expired", ingest.rescans_expired);
  line(out, "ingest.spans_shed", ingest.spans_shed);
  line(out, "ingest.frames_dropped_subscriber",
       ingest.frames_dropped_subscriber);
  line(out, "ingest.jobs_cancelled", ingest.jobs_cancelled);
  line(out, "ingest.total_errors", ingest.total_errors());
  for (std::size_t i = 0; i < per_worker.size(); ++i) {
    const WorkerSnapshot& w = per_worker[i];
    char key[64];
    std::snprintf(key, sizeof(key), "worker.%zu.frames", i);
    line(out, key, w.frames);
    std::snprintf(key, sizeof(key), "worker.%zu.symbols", i);
    line(out, key, w.symbols);
    std::snprintf(key, sizeof(key), "worker.%zu.samples", i);
    line(out, key, w.samples);
    std::snprintf(key, sizeof(key), "worker.%zu.chunks", i);
    line(out, key, w.chunks);
    std::snprintf(key, sizeof(key), "worker.%zu.jobs", i);
    line(out, key, w.jobs);
    std::snprintf(key, sizeof(key), "worker.%zu.truncated", i);
    line(out, key, w.truncated);
  }
  return out;
}

std::string GatewayHealth::to_text() const {
  std::string out;
  out.reserve(512 + 192 * workers.size());
  line(out, "uptime_s", uptime_s);
  line(out, "config_generation", config_generation);
  line(out, "degradation_level",
       static_cast<std::uint64_t>(degradation_level));
  out += "degradation_name ";
  out += degradation_name;
  out += '\n';
  line(out, "degradation_transitions", degradation_transitions);
  line(out, "watchdog_cancels", watchdog_cancels);
  line(out, "deadline_cancels", deadline_cancels);
  line(out, "jobs_cancelled", jobs_cancelled);
  line(out, "rescan_backlog", rescan_backlog);
  line(out, "window_p99_us", window_p99_us);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerHealth& w = workers[i];
    char key[64];
    std::snprintf(key, sizeof(key), "worker.%zu.busy", i);
    line(out, key, static_cast<std::uint64_t>(w.busy ? 1 : 0));
    std::snprintf(key, sizeof(key), "worker.%zu.job", i);
    line(out, key, w.job);
    std::snprintf(key, sizeof(key), "worker.%zu.job_age_ms", i);
    line(out, key, w.job_age_ms);
    std::snprintf(key, sizeof(key), "worker.%zu.heartbeat_age_ms", i);
    line(out, key, w.heartbeat_age_ms);
    std::snprintf(key, sizeof(key), "worker.%zu.cancels", i);
    line(out, key, w.cancels);
    std::snprintf(key, sizeof(key), "worker.%zu.rescan_backlog", i);
    line(out, key, w.rescan_backlog);
    std::snprintf(key, sizeof(key), "worker.%zu.jobs_completed", i);
    line(out, key, w.jobs_completed);
  }
  return out;
}

}  // namespace saiyan::gateway
