#include "gateway/gateway.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <variant>

#include "gateway/degradation.hpp"
#include "obs/stage_metrics.hpp"
#include "obs/trace_ring.hpp"
#include "stream/streaming_demod.hpp"
#include "stream/trace.hpp"

namespace saiyan::gateway {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t us_since(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// What a worker's warm demodulator slot was built for. Jobs with an
/// equal key reuse the slot (reset() keeps the warm buffers); anything
/// else rebuilds it. `generation` ties the key to a specific reload
/// epoch, so a config swap can never silently serve with stale knobs.
struct DemodKey {
  std::uint64_t generation = 0;
  bool from_trace = false;  ///< SaiyanConfig derived from a trace header
  core::Mode mode = core::Mode::kSuper;
  std::size_t payload_symbols = 0;
  double sample_rate_hz = 0.0;
  int spreading_factor = 0;
  double bandwidth_hz = 0.0;
  int bits_per_symbol = 0;
  int preamble_symbols = 0;
  double sync_symbols = 0.0;
  lora::FecRate fec = lora::FecRate::k4_5;

  static DemodKey make(std::uint64_t gen, bool from_trace,
                       const lora::PhyParams& phy, core::Mode mode,
                       std::size_t payload_symbols) {
    DemodKey k;
    k.generation = gen;
    k.from_trace = from_trace;
    k.mode = mode;
    k.payload_symbols = payload_symbols;
    k.sample_rate_hz = phy.sample_rate_hz;
    k.spreading_factor = phy.spreading_factor;
    k.bandwidth_hz = phy.bandwidth_hz;
    k.bits_per_symbol = phy.bits_per_symbol;
    k.preamble_symbols = phy.preamble_symbols;
    k.sync_symbols = phy.sync_symbols;
    k.fec = phy.fec;
    return k;
  }

  bool operator==(const DemodKey&) const = default;
};

struct LiveStream {
  StreamId id = 0;
  std::deque<dsp::Signal> chunks;  // guarded by Impl::mu_
  bool closed = false;             // guarded by Impl::mu_
};

struct TraceJob {
  std::uint64_t job_id = 0;
  std::string path;
};

struct StreamJob {
  std::uint64_t job_id = 0;
  std::shared_ptr<LiveStream> stream;
};

using Job = std::variant<TraceJob, StreamJob>;

/// Hot per-worker counters: relaxed atomics on their own cache line,
/// incremented by exactly one worker, read by any snapshotter.
struct alignas(64) WorkerCounters {
  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> symbols{0};
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> jobs{0};
  std::atomic<std::uint64_t> truncated{0};
};

struct Subscriber {
  SubscriberId id = 0;
  FrameHandler fn;
  obs::StageMetrics* metrics = nullptr;  ///< owner: Gateway::Impl
  std::size_t cap = 256;
  std::mutex m;
  std::condition_variable cv;
  std::deque<FrameRecord> q;  // guarded by m
  bool stop = false;          // guarded by m
  bool in_flight = false;     // handler running (guarded by m)
  std::thread thr;
};

}  // namespace

struct Gateway::Impl {
  explicit Impl(const GatewayConfig& c)
      : base_cfg(c),
        cfg(std::make_shared<const GatewayConfig>(c)),
        link_telemetry_(c.link.capacity) {}

  // ---- configuration -------------------------------------------------
  const GatewayConfig base_cfg;  ///< fixed fields (workers, limits)
  std::shared_ptr<const GatewayConfig> cfg;  ///< current (guarded by mu_)
  /// Bumped per reload. Written under mu_; atomic so health() can
  /// report the generation without taking the job-queue lock.
  std::atomic<std::uint64_t> cfg_gen{0};
  std::atomic<std::uint64_t> config_reloads{0};

  // ---- scheduling ----------------------------------------------------
  struct Worker {
    std::uint32_t index = 0;
    std::deque<Job> jobs;  // guarded by Impl::mu_
    bool busy = false;     // guarded by Impl::mu_
    std::condition_variable cv;
    WorkerCounters counters;
    StatsCell<stream::IngestStats> ingest_pub;
    stream::IngestStats ingest;  // worker-private accumulator
    std::unique_ptr<stream::StreamingDemodulator> demod;
    DemodKey demod_key;
    std::thread thr;

    // Watchdog-visible liveness state. The worker writes these with
    // relaxed stores on the chunk path; the watchdog thread polls them.
    // `cancel` is the cooperative token StreamingDemodulator polls per
    // block — the one channel that can unstick a wedged push().
    std::atomic<bool> cancel{false};
    std::atomic<std::uint8_t> cancel_kind{0};  ///< 1=heartbeat, 2=deadline
    std::atomic<std::uint64_t> heartbeat_ns{0};
    std::atomic<std::uint64_t> job_start_ns{0};  ///< 0 = idle
    std::atomic<std::uint64_t> current_job{0};
    std::atomic<bool> job_is_stream{false};
    std::atomic<std::uint64_t> cancels{0};  ///< watchdog fires on this worker
    std::atomic<std::uint64_t> rescan_backlog{0};
  };

  mutable std::mutex mu_;  // job queues, live streams, cfg pointer
  std::condition_variable idle_cv_;
  bool stop_ = false;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint64_t next_job_ = 0;
  std::uint64_t next_stream_ = 1;
  std::uint64_t rr_ = 0;
  std::unordered_map<StreamId, std::shared_ptr<LiveStream>> streams_;

  std::atomic<std::uint64_t> jobs_enqueued{0};
  std::atomic<std::uint64_t> jobs_done{0};
  std::atomic<std::uint64_t> jobs_failed{0};
  std::atomic<std::uint64_t> streams_open{0};
  std::atomic<std::uint64_t> markers_expected{0};

  // ---- self-healing --------------------------------------------------
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  // guarded by watchdog_mu_
  std::thread watchdog_thr_;
  std::atomic<std::uint64_t> watchdog_cancels_{0};
  std::atomic<std::uint64_t> deadline_cancels_{0};
  std::atomic<std::uint8_t> degradation_level_{0};
  std::atomic<std::uint64_t> degradation_transitions_{0};
  std::atomic<std::uint64_t> window_p99_us_{0};
  /// drain()s in progress (guarded by mu_). reload() is *rejected*
  /// while nonzero — the drain/reload race gets a defined order.
  int draining_ = 0;

  // ---- job outcomes --------------------------------------------------
  static constexpr std::size_t kMaxOutcomes = 4096;
  mutable std::mutex jobs_mu_;
  std::unordered_map<std::uint64_t, JobStatus> outcomes_;  // jobs_mu_
  std::deque<std::uint64_t> outcome_order_;                // jobs_mu_

  void record_outcome(std::uint64_t id, JobStatus st) {
    std::lock_guard<std::mutex> lk(jobs_mu_);
    if (outcomes_.emplace(id, std::move(st)).second) {
      outcome_order_.push_back(id);
      while (outcome_order_.size() > kMaxOutcomes) {
        outcomes_.erase(outcome_order_.front());
        outcome_order_.pop_front();
      }
    }
  }

  // ---- delivery ------------------------------------------------------
  mutable std::mutex subs_mu_;
  std::vector<std::shared_ptr<Subscriber>> subs_;
  std::uint64_t next_sub_ = 1;
  std::atomic<std::size_t> n_subs{0};

  LatencyHistogram latency_;
  /// Shared per-stage pipeline histograms (wait-free multi-writer):
  /// workers record scan/decode/SIC/gap timings via
  /// StreamConfig::stage_metrics, subscriber threads record delivery.
  obs::StageMetrics stage_metrics_;
  /// Link telescope: every worker's demodulator computes per-frame RF
  /// diagnostics into this shared registry (StreamConfig::link_telemetry)
  /// and emit_frames folds in the decoded identity. Fixed at create();
  /// snapshots never block the workers.
  obs::LinkTelemetry link_telemetry_;
  const Clock::time_point start_ = Clock::now();

  // ---- worker body ---------------------------------------------------

  void worker_main(Worker& w) {
    char tname[24];
    std::snprintf(tname, sizeof(tname), "worker%u", w.index);
    obs::set_thread_name(tname);
    for (;;) {
      Job job;
      std::shared_ptr<const GatewayConfig> job_cfg;
      std::uint64_t gen;
      {
        std::unique_lock<std::mutex> lk(mu_);
        w.cv.wait(lk, [&] { return stop_ || !w.jobs.empty(); });
        if (stop_) return;  // outstanding jobs are abandoned (see dtor)
        job = std::move(w.jobs.front());
        w.jobs.pop_front();
        w.busy = true;
        job_cfg = cfg;  // pinned: in-flight jobs survive reload untouched
        gen = cfg_gen;
      }
      const std::uint64_t job_id =
          std::visit([](const auto& j) { return j.job_id; }, job);
      // Arm the liveness state before the job body runs: clear any
      // cancel left over from the previous job, then publish start /
      // heartbeat so the watchdog ages this job from zero.
      w.cancel.store(false, std::memory_order_relaxed);
      w.cancel_kind.store(0, std::memory_order_relaxed);
      w.current_job.store(job_id, std::memory_order_relaxed);
      w.job_is_stream.store(std::holds_alternative<StreamJob>(job),
                            std::memory_order_relaxed);
      const std::uint64_t t_start = now_ns();
      w.heartbeat_ns.store(t_start, std::memory_order_relaxed);
      w.job_start_ns.store(t_start, std::memory_order_release);
      // Explicit B/E rather than a ScopedTimer: if the job wedges and a
      // trace is dumped mid-flight, the dangling 'B' shows the open job.
      obs::trace_begin(std::holds_alternative<StreamJob>(job)
                           ? "stream_job"
                           : "trace_job");
      JobStatus st = std::visit(
          [&](const auto& j) { return run_job(w, j, *job_cfg, gen); }, job);
      obs::trace_end(std::holds_alternative<StreamJob>(job) ? "stream_job"
                                                            : "trace_job");
      w.job_start_ns.store(0, std::memory_order_release);
      w.counters.jobs.fetch_add(1, std::memory_order_relaxed);
      if (st.state == JobState::kDone) {
        jobs_done.fetch_add(1, std::memory_order_relaxed);
      } else {
        jobs_failed.fetch_add(1, std::memory_order_relaxed);
      }
      record_outcome(job_id, std::move(st));
      {
        std::lock_guard<std::mutex> lk(mu_);
        w.busy = false;
      }
      idle_cv_.notify_all();
    }
  }

  stream::StreamingDemodulator& ensure_demod(Worker& w, const DemodKey& key,
                                             stream::StreamConfig sc) {
    if (!w.demod || !(w.demod_key == key)) {
      w.demod = std::make_unique<stream::StreamingDemodulator>(sc);
      w.demod_key = key;
    } else {
      w.demod->reset();
    }
    w.demod->clear_packets();
    return *w.demod;
  }

  /// Abandon a cancelled job: fold in what was counted so far, count
  /// the cancel, and surface a typed outcome. The worker itself lives
  /// on; its demodulator is rebuilt/reset before the next job.
  JobStatus abandon_cancelled(Worker& w, const stream::TraceReader* reader,
                              stream::StreamingDemodulator& demod) {
    ++w.ingest.jobs_cancelled;
    if (reader != nullptr) w.ingest.merge(reader->stats());
    w.ingest.merge(demod.ingest());
    w.ingest_pub.publish(w.ingest);
    JobStatus st;
    st.state = JobState::kCancelled;
    st.message = w.cancel_kind.load(std::memory_order_relaxed) == 2
                     ? "job cancelled: deadline exceeded"
                     : "job cancelled: watchdog heartbeat timeout";
    return st;
  }

  /// Per-chunk liveness bookkeeping shared by both job kinds: beat the
  /// heartbeat, adopt the ladder's current level, publish the rescan
  /// backlog, and run the test-only chunk hook.
  void chunk_tick(Worker& w, stream::StreamingDemodulator& demod,
                  const GatewayConfig& gcfg, std::uint64_t job_id,
                  std::uint64_t chunk_index) {
    w.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
    w.rescan_backlog.store(demod.rescan_backlog(), std::memory_order_relaxed);
    if (gcfg.chunk_hook) {
      GatewayConfig::ChunkHookInfo info;
      info.worker = w.index;
      info.job = job_id;
      info.chunk_index = chunk_index;
      info.cancel = &w.cancel;
      gcfg.chunk_hook(info);
    }
  }

  JobStatus run_job(Worker& w, const TraceJob& job, const GatewayConfig& gcfg,
                    std::uint64_t gen) {
    auto opened = stream::TraceReader::open(job.path, gcfg.resync);
    if (!opened.ok()) {
      // Validated at enqueue time; the file changed underneath us.
      const stream::IngestError kind =
          opened.error().ingest == stream::IngestError::kNone
              ? stream::IngestError::kBadHeader
              : opened.error().ingest;
      w.ingest.count(kind);
      w.ingest_pub.publish(w.ingest);
      JobStatus st;
      st.state = JobState::kFailed;
      st.message = opened.error().message;
      st.ingest = kind;
      return st;
    }
    stream::TraceReader reader = std::move(opened).value();
    // The trace knows what receiver it was recorded for; the gateway's
    // stream knobs (thresholds, seeds, SIC policy) come from config.
    stream::StreamConfig sc = gcfg.worker_stream_config();
    sc.saiyan =
        core::SaiyanConfig::make(reader.meta().phy, reader.meta().mode);
    sc.payload_symbols = reader.meta().payload_symbols;
    sc.cancel = &w.cancel;  // watchdog's lever into a wedged push()
    sc.stage_metrics = &stage_metrics_;
    sc.link_telemetry = gcfg.link.enabled ? &link_telemetry_ : nullptr;
    stream::StreamingDemodulator& demod = ensure_demod(
        w,
        DemodKey::make(gen, /*from_trace=*/true, reader.meta().phy,
                       reader.meta().mode, reader.meta().payload_symbols),
        sc);

    const std::uint64_t truncated_before = demod.truncated_packets();
    std::uint64_t chunk_index = 0;
    dsp::Signal chunk;
    for (;;) {
      const std::uint64_t skipped_before = reader.stats().bytes_skipped;
      const stream::ChunkStatus st = reader.next_chunk(chunk);
      if (st == stream::ChunkStatus::kOk ||
          st == stream::ChunkStatus::kResync) {
        if (st == stream::ChunkStatus::kResync) {
          demod.note_gap(reader.last_gap_samples());
        }
        demod.set_degradation(
            degradation_level_.load(std::memory_order_relaxed));
        const Clock::time_point t0 = Clock::now();
        std::span<const dsp::Complex> rest(chunk);
        while (!rest.empty()) {
          const std::size_t take = std::min(gcfg.chunk_samples, rest.size());
          demod.push(rest.first(take));
          if (demod.cancelled()) break;
          rest = rest.subspan(take);
        }
        w.counters.chunks.fetch_add(1, std::memory_order_relaxed);
        w.counters.samples.fetch_add(chunk.size(), std::memory_order_relaxed);
        emit_frames(w, demod, gcfg, job.job_id, t0);
        publish_transient(w, &reader, &demod);
        chunk_tick(w, demod, gcfg, job.job_id, chunk_index++);
        if (demod.cancelled() ||
            w.cancel.load(std::memory_order_relaxed)) {
          return abandon_cancelled(w, &reader, demod);
        }
        if (gcfg.throttle_us != 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(gcfg.throttle_us));
        }
        continue;
      }
      if (st == stream::ChunkStatus::kEof &&
          reader.stats().bytes_skipped > skipped_before) {
        // Recover-mode EOF that discarded a corrupt tail.
        demod.note_gap(reader.last_gap_samples());
      }
      break;
    }
    const Clock::time_point t_flush = Clock::now();
    demod.finish();
    emit_frames(w, demod, gcfg, job.job_id, t_flush);
    w.counters.truncated.fetch_add(demod.truncated_packets() -
                                       truncated_before,
                                   std::memory_order_relaxed);
    w.ingest.merge(reader.stats());
    w.ingest.merge(demod.ingest());
    w.ingest_pub.publish(w.ingest);
    JobStatus done;
    done.state = JobState::kDone;
    return done;
  }

  JobStatus run_job(Worker& w, const StreamJob& job, const GatewayConfig& gcfg,
                    std::uint64_t gen) {
    stream::StreamConfig sc = gcfg.worker_stream_config();
    sc.cancel = &w.cancel;  // watchdog's lever into a wedged push()
    sc.stage_metrics = &stage_metrics_;
    sc.link_telemetry = gcfg.link.enabled ? &link_telemetry_ : nullptr;
    stream::StreamingDemodulator& demod = ensure_demod(
        w,
        DemodKey::make(gen, /*from_trace=*/false, sc.saiyan.phy,
                       sc.saiyan.mode, sc.payload_symbols),
        sc);
    const std::uint64_t truncated_before = demod.truncated_packets();
    std::uint64_t chunk_index = 0;
    bool cancelled = false;
    for (;;) {
      dsp::Signal chunk;
      {
        std::unique_lock<std::mutex> lk(mu_);
        for (;;) {
          if (stop_) {
            // Abandoned at shutdown, like any outstanding job.
            JobStatus st;
            st.state = JobState::kDone;
            return st;
          }
          if (w.cancel.load(std::memory_order_relaxed)) break;
          if (job.stream->closed || !job.stream->chunks.empty()) break;
          // Bounded waits so a stream merely idling (no chunks offered)
          // keeps its heartbeat fresh — the watchdog must distinguish
          // "waiting for input" from "wedged in a decode".
          w.cv.wait_for(lk, std::chrono::milliseconds(50));
          w.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
        }
        if (w.cancel.load(std::memory_order_relaxed)) {
          cancelled = true;
        } else {
          if (job.stream->chunks.empty()) break;  // closed and drained
          chunk = std::move(job.stream->chunks.front());
          job.stream->chunks.pop_front();
        }
      }
      if (!cancelled) {
        demod.set_degradation(
            degradation_level_.load(std::memory_order_relaxed));
        const Clock::time_point t0 = Clock::now();
        std::span<const dsp::Complex> rest(chunk);
        while (!rest.empty()) {
          const std::size_t take = std::min(gcfg.chunk_samples, rest.size());
          demod.push(rest.first(take));
          if (demod.cancelled()) break;
          rest = rest.subspan(take);
        }
        w.counters.chunks.fetch_add(1, std::memory_order_relaxed);
        w.counters.samples.fetch_add(chunk.size(), std::memory_order_relaxed);
        emit_frames(w, demod, gcfg, job.job_id, t0);
        publish_transient(w, nullptr, &demod);
        chunk_tick(w, demod, gcfg, job.job_id, chunk_index++);
        cancelled =
            demod.cancelled() || w.cancel.load(std::memory_order_relaxed);
      }
      if (cancelled) {
        // Tear the stream down so pushers get a typed error instead of
        // feeding a job nobody will ever run again.
        bool was_open = false;
        {
          std::lock_guard<std::mutex> lk(mu_);
          was_open = !job.stream->closed;
          job.stream->closed = true;
          streams_.erase(job.stream->id);
        }
        if (was_open) {
          streams_open.fetch_sub(1, std::memory_order_relaxed);
        }
        return abandon_cancelled(w, nullptr, demod);
      }
      if (gcfg.throttle_us != 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(gcfg.throttle_us));
      }
    }
    const Clock::time_point t_flush = Clock::now();
    demod.finish();
    emit_frames(w, demod, gcfg, job.job_id, t_flush);
    w.counters.truncated.fetch_add(demod.truncated_packets() -
                                       truncated_before,
                                   std::memory_order_relaxed);
    w.ingest.merge(demod.ingest());
    w.ingest_pub.publish(w.ingest);
    {
      std::lock_guard<std::mutex> lk(mu_);
      streams_.erase(job.stream->id);
    }
    JobStatus done;
    done.state = JobState::kDone;
    return done;
  }

  /// Live view during a job: persistent worker counters plus the
  /// in-progress reader/demodulator counters (not yet folded in).
  void publish_transient(Worker& w, const stream::TraceReader* reader,
                         const stream::StreamingDemodulator* demod) {
    stream::IngestStats view = w.ingest;
    if (reader != nullptr) view.merge(reader->stats());
    if (demod != nullptr) view.merge(demod->ingest());
    w.ingest_pub.publish(view);
  }

  void emit_frames(Worker& w, stream::StreamingDemodulator& demod,
                   const GatewayConfig& gcfg, std::uint64_t job_id,
                   Clock::time_point t_chunk) {
    const std::span<const stream::DecodedPacket> pkts = demod.packets();
    if (pkts.empty()) return;
    const std::uint64_t lat = us_since(t_chunk);
    const std::uint32_t channel = demod.config().channel;
    const std::uint32_t alphabet =
        demod.config().saiyan.phy.symbol_alphabet();
    for (const stream::DecodedPacket& p : pkts) {
      latency_.record(lat);
      w.counters.frames.fetch_add(1, std::memory_order_relaxed);
      w.counters.symbols.fetch_add(p.n_symbols, std::memory_order_relaxed);
      FrameRecord fr;
      fr.job = job_id;
      fr.worker = w.index;
      fr.packet_start = p.packet_start;
      fr.payload_start = p.payload_start;
      fr.score = p.score;
      fr.collided = p.collided;
      fr.sic_assisted = p.sic_assisted;
      fr.latency_us = lat;
      const std::span<const std::uint32_t> syms = demod.symbols(p);
      fr.symbols.assign(syms.begin(), syms.end());
      fr.channel = channel;
      fr.sic_depth = p.sic_depth;
      if (gcfg.link.enabled) {
        // Link identity: the first payload symbol is the address/link
        // symbol by convention (sim captures encode it with
        // CaptureConfig::link_headers; unkeyed traffic just groups by
        // its first symbol, which is harmless).
        fr.tag_id = syms.empty() ? 0 : syms[0];
        fr.snr_db = p.snr_db;
        fr.cfo_hz = p.cfo_hz;
        obs::FrameDiag d;
        d.tag_id = fr.tag_id;
        d.channel = channel;
        d.snr_db = p.snr_db;
        d.cfo_hz = p.cfo_hz;
        d.timing_offset = p.timing_offset;
        d.corr_margin = p.corr_margin;
        d.noise_floor_dbm = p.noise_floor_dbm;
        d.sic_depth = p.sic_depth;
        d.sic_assisted = p.sic_assisted;
        d.collided = p.collided;
        d.latency_us = lat;
        d.packet_start = p.packet_start;
        d.seen_us = us_since(start_);
        if (gcfg.link.sequence_symbol && syms.size() > 1) {
          d.seq = syms[1];
          d.seq_modulus = alphabet;
          d.has_seq = true;
        }
        link_telemetry_.record_frame(d);
        // Optional timeline marker so a Perfetto view can align SNR
        // dips with stage latency spikes.
        if (gcfg.link.trace_frames) obs::trace_instant("frame_diag");
      }
      deliver(w, fr);
    }
    demod.clear_packets();
  }

  void deliver(Worker& w, const FrameRecord& fr) {
    std::lock_guard<std::mutex> lk(subs_mu_);
    for (const std::shared_ptr<Subscriber>& sp : subs_) {
      Subscriber& s = *sp;
      std::lock_guard<std::mutex> sk(s.m);
      if (s.stop) continue;
      if (s.q.size() >= s.cap) {
        // Backpressure: the slow subscriber sheds its own frames; the
        // worker moves on immediately.
        ++w.ingest.frames_dropped_subscriber;
        continue;
      }
      s.q.push_back(fr);
      s.cv.notify_one();
    }
  }

  static void subscriber_main(Subscriber& s) {
    obs::set_thread_name("subscriber");
    std::unique_lock<std::mutex> lk(s.m);
    for (;;) {
      s.cv.wait(lk, [&] { return s.stop || !s.q.empty(); });
      if (s.q.empty()) break;  // stop requested and everything delivered
      FrameRecord fr = std::move(s.q.front());
      s.q.pop_front();
      s.in_flight = true;
      lk.unlock();
      try {
        obs::ScopedTimer t(
            "deliver", s.metrics != nullptr
                           ? &s.metrics->histogram(obs::Stage::kDeliver)
                           : nullptr);
        s.fn(fr);
      } catch (...) {
        // A subscriber's exception must not take down delivery; the
        // frame counts as delivered.
      }
      lk.lock();
      s.in_flight = false;
      s.cv.notify_all();  // drain() waits on empty-and-idle
    }
  }

  // ---- self-healing supervisor ---------------------------------------

  void emit_event(const char* msg) {
    if (base_cfg.on_event) base_cfg.on_event(std::string(msg));
  }

  /// Watchdog + degradation controller. One thread, one poll cadence:
  /// each tick it (a) ages every busy worker's heartbeat and job start
  /// against the configured bounds and fires the worker's cancel token
  /// at most once per job, and (b) feeds the ladder the worst rescan
  /// backlog plus the *windowed* p99 latency (histogram bucket delta
  /// since the previous tick) and publishes the resulting level for
  /// workers to adopt at their next chunk.
  void watchdog_main() {
    obs::set_thread_name("watchdog");
    DegradationLadder ladder(base_cfg.degradation);
    std::array<std::uint64_t, LatencyHistogram::kBuckets> prev{};
    std::array<std::uint64_t, LatencyHistogram::kBuckets> cur{};
    std::array<std::uint64_t, LatencyHistogram::kBuckets> delta{};
    const std::uint64_t hb_ns =
        base_cfg.watchdog.heartbeat_timeout_ms * 1'000'000ull;
    const std::uint64_t dl_ns =
        base_cfg.watchdog.job_deadline_ms * 1'000'000ull;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(watchdog_mu_);
        watchdog_cv_.wait_for(
            lk, std::chrono::milliseconds(base_cfg.watchdog.poll_ms),
            [&] { return watchdog_stop_; });
        if (watchdog_stop_) return;
      }
      const std::uint64_t now = now_ns();
      std::uint64_t worst_backlog = 0;
      for (const auto& wp : workers_) {
        Worker& w = *wp;
        worst_backlog = std::max(
            worst_backlog, w.rescan_backlog.load(std::memory_order_relaxed));
        const std::uint64_t start =
            w.job_start_ns.load(std::memory_order_acquire);
        // Idle, or this job was already cancelled (the token stays set
        // until the worker arms the next job) — nothing to supervise.
        if (start == 0 || w.cancel.load(std::memory_order_relaxed)) continue;
        std::uint8_t kind = 0;
        if (hb_ns != 0) {
          const std::uint64_t hb =
              w.heartbeat_ns.load(std::memory_order_relaxed);
          if (now > hb && now - hb >= hb_ns) kind = 1;
        }
        // Deadlines apply to finite work (trace replays); a live
        // stream is open-ended by design and only heartbeat-supervised.
        if (kind == 0 && dl_ns != 0 &&
            !w.job_is_stream.load(std::memory_order_relaxed) && now > start &&
            now - start >= dl_ns) {
          kind = 2;
        }
        if (kind == 0) continue;
        w.cancel_kind.store(kind, std::memory_order_relaxed);
        w.cancel.store(true, std::memory_order_release);
        w.cv.notify_all();
        w.cancels.fetch_add(1, std::memory_order_relaxed);
        (kind == 1 ? watchdog_cancels_ : deadline_cancels_)
            .fetch_add(1, std::memory_order_relaxed);
        obs::trace_instant(kind == 1 ? "watchdog_cancel"
                                     : "deadline_cancel");
        if (base_cfg.on_event) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "watchdog: cancelling job %llu on worker %u (%s)",
                        static_cast<unsigned long long>(
                            w.current_job.load(std::memory_order_relaxed)),
                        w.index,
                        kind == 1 ? "heartbeat timeout" : "deadline exceeded");
          emit_event(buf);
        }
      }
      if (base_cfg.degradation.enabled) {
        latency_.snapshot_counts(cur);
        for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
          delta[i] = cur[i] - prev[i];
        }
        prev = cur;
        const std::uint64_t p99 =
            LatencyHistogram::quantile_from_counts(delta, 0.99);
        window_p99_us_.store(p99, std::memory_order_relaxed);
        if (ladder.update(worst_backlog, p99)) {
          const DegradationLevel lvl = ladder.level();
          degradation_level_.store(static_cast<std::uint8_t>(lvl),
                                   std::memory_order_relaxed);
          degradation_transitions_.store(ladder.transitions(),
                                         std::memory_order_relaxed);
          obs::trace_instant("degradation_transition");
          if (base_cfg.on_event) {
            char buf[160];
            std::snprintf(
                buf, sizeof(buf),
                "degradation: level -> %u (%s), backlog=%llu p99=%lluus",
                static_cast<unsigned>(lvl), to_string(lvl),
                static_cast<unsigned long long>(worst_backlog),
                static_cast<unsigned long long>(p99));
            emit_event(buf);
          }
        }
      }
    }
  }
};

saiyan::Result<std::unique_ptr<Gateway>> Gateway::create(
    const GatewayConfig& cfg) {
  if (auto v = cfg.validate(); !v.ok()) return v.error();
  return std::unique_ptr<Gateway>(new Gateway(cfg));
}

Gateway::Gateway(const GatewayConfig& cfg) : impl_(new Impl(cfg)) {
  impl_->workers_.reserve(cfg.workers);
  for (std::size_t i = 0; i < cfg.workers; ++i) {
    auto w = std::make_unique<Impl::Worker>();
    w->index = static_cast<std::uint32_t>(i);
    impl_->workers_.push_back(std::move(w));
  }
  for (std::size_t i = 0; i < cfg.workers; ++i) {
    Impl::Worker& w = *impl_->workers_[i];
    w.thr = std::thread([this, &w] { impl_->worker_main(w); });
  }
  if (cfg.watchdog.heartbeat_timeout_ms != 0 ||
      cfg.watchdog.job_deadline_ms != 0 || cfg.degradation.enabled) {
    impl_->watchdog_thr_ = std::thread([this] { impl_->watchdog_main(); });
  }
}

Gateway::~Gateway() {
  {
    std::lock_guard<std::mutex> lk(impl_->watchdog_mu_);
    impl_->watchdog_stop_ = true;
  }
  impl_->watchdog_cv_.notify_all();
  if (impl_->watchdog_thr_.joinable()) impl_->watchdog_thr_.join();
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    impl_->stop_ = true;
  }
  for (auto& w : impl_->workers_) w->cv.notify_all();
  for (auto& w : impl_->workers_) {
    if (w->thr.joinable()) w->thr.join();
  }
  std::vector<std::shared_ptr<Subscriber>> subs;
  {
    std::lock_guard<std::mutex> lk(impl_->subs_mu_);
    subs.swap(impl_->subs_);
  }
  for (const std::shared_ptr<Subscriber>& s : subs) {
    {
      std::lock_guard<std::mutex> lk(s->m);
      s->stop = true;
    }
    s->cv.notify_all();
    if (s->thr.joinable()) s->thr.join();
  }
}

saiyan::Result<std::uint64_t> Gateway::enqueue_trace(const std::string& path) {
  bool resync;
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    resync = impl_->cfg->resync;
  }
  // Validate the header here so a bad file fails the caller, not a
  // worker; the marker count feeds the ground-truth expectation.
  auto probe = stream::TraceReader::open(path, resync);
  if (!probe.ok()) return probe.error();
  impl_->markers_expected.fetch_add(probe.value().markers().size(),
                                    std::memory_order_relaxed);
  std::uint64_t job_id;
  Impl::Worker* target;
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    job_id = impl_->next_job_++;
    target = impl_->workers_[impl_->rr_++ % impl_->workers_.size()].get();
    target->jobs.push_back(TraceJob{job_id, path});
  }
  impl_->jobs_enqueued.fetch_add(1, std::memory_order_relaxed);
  target->cv.notify_all();
  return job_id;
}

StreamId Gateway::open_stream() {
  auto ls = std::make_shared<LiveStream>();
  std::uint64_t job_id;
  Impl::Worker* target;
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    ls->id = impl_->next_stream_++;
    impl_->streams_.emplace(ls->id, ls);
    job_id = impl_->next_job_++;
    target = impl_->workers_[impl_->rr_++ % impl_->workers_.size()].get();
    target->jobs.push_back(StreamJob{job_id, ls});
  }
  impl_->jobs_enqueued.fetch_add(1, std::memory_order_relaxed);
  impl_->streams_open.fetch_add(1, std::memory_order_relaxed);
  target->cv.notify_all();
  return ls->id;
}

saiyan::Result<Unit> Gateway::push(StreamId stream,
                                   std::span<const dsp::Complex> chunk) {
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    auto it = impl_->streams_.find(stream);
    if (it == impl_->streams_.end() || it->second->closed) {
      return fail("push: unknown or closed stream " + std::to_string(stream));
    }
    it->second->chunks.emplace_back(chunk.begin(), chunk.end());
  }
  for (auto& w : impl_->workers_) w->cv.notify_all();
  return Unit{};
}

saiyan::Result<Unit> Gateway::close_stream(StreamId stream) {
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    auto it = impl_->streams_.find(stream);
    if (it == impl_->streams_.end() || it->second->closed) {
      return fail("close_stream: unknown or closed stream " +
                  std::to_string(stream));
    }
    it->second->closed = true;
  }
  impl_->streams_open.fetch_sub(1, std::memory_order_relaxed);
  for (auto& w : impl_->workers_) w->cv.notify_all();
  return Unit{};
}

SubscriberId Gateway::subscribe(FrameHandler handler) {
  auto s = std::make_shared<Subscriber>();
  s->fn = std::move(handler);
  s->cap = impl_->base_cfg.limits.subscriber_queue;
  s->metrics = &impl_->stage_metrics_;
  {
    std::lock_guard<std::mutex> lk(impl_->subs_mu_);
    s->id = impl_->next_sub_++;
    impl_->subs_.push_back(s);
  }
  impl_->n_subs.fetch_add(1, std::memory_order_relaxed);
  s->thr = std::thread([s] { Impl::subscriber_main(*s); });
  return s->id;
}

void Gateway::unsubscribe(SubscriberId id) {
  std::shared_ptr<Subscriber> victim;
  {
    std::lock_guard<std::mutex> lk(impl_->subs_mu_);
    for (auto it = impl_->subs_.begin(); it != impl_->subs_.end(); ++it) {
      if ((*it)->id == id) {
        victim = *it;
        impl_->subs_.erase(it);
        break;
      }
    }
  }
  if (!victim) return;
  impl_->n_subs.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(victim->m);
    victim->stop = true;  // queued frames are still delivered first
  }
  victim->cv.notify_all();
  if (victim->thr.joinable()) victim->thr.join();
}

saiyan::Result<Unit> Gateway::reload(const GatewayConfig& cfg) {
  if (auto v = cfg.validate(); !v.ok()) return v.error();
  if (cfg.workers != impl_->base_cfg.workers) {
    return fail("reload: workers is fixed at create()");
  }
  if (cfg.limits.subscriber_queue != impl_->base_cfg.limits.subscriber_queue) {
    return fail("reload: limits.subscriber_queue is fixed at create()");
  }
  if (!(cfg.watchdog == impl_->base_cfg.watchdog)) {
    return fail("reload: watchdog config is fixed at create()");
  }
  if (!(cfg.degradation == impl_->base_cfg.degradation)) {
    return fail("reload: degradation config is fixed at create()");
  }
  if (!(cfg.link == impl_->base_cfg.link)) {
    // The registry is sized once and shared by every worker; resizing
    // or re-keying it mid-serve would tear live seqlock slots.
    return fail("reload: link telemetry config is fixed at create()");
  }
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    if (impl_->draining_ > 0) {
      // A drain() is waiting for the worker pool to empty; swapping the
      // config underneath it is an undefined mix of old and new jobs.
      // Reject with a typed error — the caller retries after the drain.
      return fail("reload: rejected while drain() is in progress");
    }
    impl_->cfg = std::make_shared<const GatewayConfig>(cfg);
    ++impl_->cfg_gen;
  }
  impl_->config_reloads.fetch_add(1, std::memory_order_relaxed);
  return Unit{};
}

saiyan::Result<Unit> Gateway::drain() {
  {
    std::unique_lock<std::mutex> lk(impl_->mu_);
    for (const auto& [id, ls] : impl_->streams_) {
      if (!ls->closed) {
        return fail("drain: live stream " + std::to_string(id) +
                    " still open (close_stream it first)");
      }
    }
    ++impl_->draining_;  // reload() is rejected until we finish
    impl_->idle_cv_.wait(lk, [&] {
      for (const auto& w : impl_->workers_) {
        if (w->busy || !w->jobs.empty()) return false;
      }
      return true;
    });
  }
  std::vector<std::shared_ptr<Subscriber>> subs;
  {
    std::lock_guard<std::mutex> lk(impl_->subs_mu_);
    subs = impl_->subs_;
  }
  for (const std::shared_ptr<Subscriber>& s : subs) {
    std::unique_lock<std::mutex> sk(s->m);
    s->cv.wait(sk, [&] { return s->q.empty() && !s->in_flight; });
  }
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    --impl_->draining_;
  }
  return Unit{};
}

saiyan::Result<JobStatus> Gateway::job_status(std::uint64_t job) const {
  {
    std::lock_guard<std::mutex> lk(impl_->jobs_mu_);
    auto it = impl_->outcomes_.find(job);
    if (it != impl_->outcomes_.end()) return it->second;
  }
  std::lock_guard<std::mutex> lk(impl_->mu_);
  if (job >= impl_->next_job_) {
    return fail("job_status: unknown job " + std::to_string(job));
  }
  return JobStatus{};  // issued but not completed: pending
}

GatewayStats Gateway::stats() const {
  const Impl& im = *impl_;
  GatewayStats s;
  s.uptime_s = std::chrono::duration<double>(Clock::now() - im.start_).count();
  s.workers = im.workers_.size();
  s.subscribers = im.n_subs.load(std::memory_order_relaxed);
  s.jobs_enqueued = im.jobs_enqueued.load(std::memory_order_relaxed);
  s.jobs_done = im.jobs_done.load(std::memory_order_relaxed);
  s.jobs_failed = im.jobs_failed.load(std::memory_order_relaxed);
  s.streams_open = im.streams_open.load(std::memory_order_relaxed);
  s.config_reloads = im.config_reloads.load(std::memory_order_relaxed);
  s.markers_expected = im.markers_expected.load(std::memory_order_relaxed);
  s.watchdog_cancels = im.watchdog_cancels_.load(std::memory_order_relaxed);
  s.deadline_cancels = im.deadline_cancels_.load(std::memory_order_relaxed);
  s.degradation_level = im.degradation_level_.load(std::memory_order_relaxed);
  s.degradation_transitions =
      im.degradation_transitions_.load(std::memory_order_relaxed);
  s.per_worker.reserve(im.workers_.size());
  for (const auto& wp : im.workers_) {
    const WorkerCounters& c = wp->counters;
    WorkerSnapshot ws;
    ws.frames = c.frames.load(std::memory_order_relaxed);
    ws.symbols = c.symbols.load(std::memory_order_relaxed);
    ws.samples = c.samples.load(std::memory_order_relaxed);
    ws.chunks = c.chunks.load(std::memory_order_relaxed);
    ws.jobs = c.jobs.load(std::memory_order_relaxed);
    ws.truncated = c.truncated.load(std::memory_order_relaxed);
    s.frames_decoded += ws.frames;
    s.symbols_decoded += ws.symbols;
    s.samples_consumed += ws.samples;
    s.chunks_ingested += ws.chunks;
    s.truncated_frames += ws.truncated;
    s.ingest.merge(wp->ingest_pub.read());
    s.per_worker.push_back(ws);
  }
  if (s.uptime_s > 0.0) {
    s.frames_per_sec = static_cast<double>(s.frames_decoded) / s.uptime_s;
    s.msamples_per_sec =
        static_cast<double>(s.samples_consumed) / s.uptime_s / 1e6;
  }
  // Quantiles interpolate inside a log2 bucket; clamp to the true max
  // so p99 never reads above the worst sample actually seen.
  s.latency_max_us = im.latency_.max_us();
  s.latency_p50_us = std::min(im.latency_.quantile_us(0.50), s.latency_max_us);
  s.latency_p99_us = std::min(im.latency_.quantile_us(0.99), s.latency_max_us);
  im.latency_.snapshot_counts(s.latency_buckets);
  s.latency_count = LatencyHistogram::total_from_counts(s.latency_buckets);
  s.latency_sum_us = im.latency_.sum_us();
  s.latency_saturated =
      LatencyHistogram::saturated_from_counts(s.latency_buckets);
  s.stages.reserve(obs::kStageCount);
  for (std::size_t i = 0; i < obs::kStageCount; ++i) {
    const auto stage = static_cast<obs::Stage>(i);
    const obs::LatencyHistogram& h = im.stage_metrics_.histogram(stage);
    StageLatencySnapshot st;
    st.stage = obs::to_string(stage);
    h.snapshot_counts(st.buckets);
    st.count = LatencyHistogram::total_from_counts(st.buckets);
    st.sum_us = h.sum_us();
    st.max_us = h.max_us();
    st.p50_us = std::min(
        LatencyHistogram::quantile_from_counts(st.buckets, 0.50), st.max_us);
    st.p99_us = std::min(
        LatencyHistogram::quantile_from_counts(st.buckets, 0.99), st.max_us);
    st.saturated = LatencyHistogram::saturated_from_counts(st.buckets);
    s.stages.push_back(st);
  }
  s.trace_events_dropped = obs::events_dropped_total();
  s.links = im.link_telemetry_.snapshot();
  s.link_top_k = im.base_cfg.link.prom_top_k;
  return s;
}

obs::LinkRegistrySnapshot Gateway::links() const {
  return impl_->link_telemetry_.snapshot();
}

GatewayHealth Gateway::health() const {
  const Impl& im = *impl_;
  GatewayHealth h;
  h.uptime_s = std::chrono::duration<double>(Clock::now() - im.start_).count();
  h.config_generation = im.cfg_gen.load(std::memory_order_relaxed);
  h.degradation_level = im.degradation_level_.load(std::memory_order_relaxed);
  h.degradation_name =
      to_string(static_cast<DegradationLevel>(h.degradation_level));
  h.degradation_transitions =
      im.degradation_transitions_.load(std::memory_order_relaxed);
  h.watchdog_cancels = im.watchdog_cancels_.load(std::memory_order_relaxed);
  h.deadline_cancels = im.deadline_cancels_.load(std::memory_order_relaxed);
  h.window_p99_us = im.window_p99_us_.load(std::memory_order_relaxed);
  const std::uint64_t now = now_ns();
  h.workers.reserve(im.workers_.size());
  for (const auto& wp : im.workers_) {
    const Impl::Worker& w = *wp;
    WorkerHealth wh;
    const std::uint64_t start = w.job_start_ns.load(std::memory_order_acquire);
    wh.busy = start != 0;
    if (wh.busy) {
      wh.job = w.current_job.load(std::memory_order_relaxed);
      wh.job_age_ms = now > start ? (now - start) / 1'000'000 : 0;
      const std::uint64_t hb = w.heartbeat_ns.load(std::memory_order_relaxed);
      wh.heartbeat_age_ms = now > hb ? (now - hb) / 1'000'000 : 0;
    }
    wh.cancels = w.cancels.load(std::memory_order_relaxed);
    wh.rescan_backlog = w.rescan_backlog.load(std::memory_order_relaxed);
    wh.jobs_completed = w.counters.jobs.load(std::memory_order_relaxed);
    h.rescan_backlog = std::max(h.rescan_backlog, wh.rescan_backlog);
    h.jobs_cancelled += w.ingest_pub.read().jobs_cancelled;
    h.workers.push_back(wh);
  }
  return h;
}

const GatewayConfig& Gateway::config() const { return impl_->base_cfg; }

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

}  // namespace saiyan::gateway
