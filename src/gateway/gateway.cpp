#include "gateway/gateway.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <variant>

#include "stream/streaming_demod.hpp"
#include "stream/trace.hpp"

namespace saiyan::gateway {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t us_since(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
}

/// What a worker's warm demodulator slot was built for. Jobs with an
/// equal key reuse the slot (reset() keeps the warm buffers); anything
/// else rebuilds it. `generation` ties the key to a specific reload
/// epoch, so a config swap can never silently serve with stale knobs.
struct DemodKey {
  std::uint64_t generation = 0;
  bool from_trace = false;  ///< SaiyanConfig derived from a trace header
  core::Mode mode = core::Mode::kSuper;
  std::size_t payload_symbols = 0;
  double sample_rate_hz = 0.0;
  int spreading_factor = 0;
  double bandwidth_hz = 0.0;
  int bits_per_symbol = 0;
  int preamble_symbols = 0;
  double sync_symbols = 0.0;
  lora::FecRate fec = lora::FecRate::k4_5;

  static DemodKey make(std::uint64_t gen, bool from_trace,
                       const lora::PhyParams& phy, core::Mode mode,
                       std::size_t payload_symbols) {
    DemodKey k;
    k.generation = gen;
    k.from_trace = from_trace;
    k.mode = mode;
    k.payload_symbols = payload_symbols;
    k.sample_rate_hz = phy.sample_rate_hz;
    k.spreading_factor = phy.spreading_factor;
    k.bandwidth_hz = phy.bandwidth_hz;
    k.bits_per_symbol = phy.bits_per_symbol;
    k.preamble_symbols = phy.preamble_symbols;
    k.sync_symbols = phy.sync_symbols;
    k.fec = phy.fec;
    return k;
  }

  bool operator==(const DemodKey&) const = default;
};

struct LiveStream {
  StreamId id = 0;
  std::deque<dsp::Signal> chunks;  // guarded by Impl::mu_
  bool closed = false;             // guarded by Impl::mu_
};

struct TraceJob {
  std::uint64_t job_id = 0;
  std::string path;
};

struct StreamJob {
  std::uint64_t job_id = 0;
  std::shared_ptr<LiveStream> stream;
};

using Job = std::variant<TraceJob, StreamJob>;

/// Hot per-worker counters: relaxed atomics on their own cache line,
/// incremented by exactly one worker, read by any snapshotter.
struct alignas(64) WorkerCounters {
  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> symbols{0};
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> jobs{0};
  std::atomic<std::uint64_t> truncated{0};
};

struct Subscriber {
  SubscriberId id = 0;
  FrameHandler fn;
  std::size_t cap = 256;
  std::mutex m;
  std::condition_variable cv;
  std::deque<FrameRecord> q;  // guarded by m
  bool stop = false;          // guarded by m
  bool in_flight = false;     // handler running (guarded by m)
  std::thread thr;
};

}  // namespace

struct Gateway::Impl {
  explicit Impl(const GatewayConfig& c)
      : base_cfg(c), cfg(std::make_shared<const GatewayConfig>(c)) {}

  // ---- configuration -------------------------------------------------
  const GatewayConfig base_cfg;  ///< fixed fields (workers, limits)
  std::shared_ptr<const GatewayConfig> cfg;  ///< current (guarded by mu_)
  std::uint64_t cfg_gen = 0;                 ///< bumped per reload (mu_)
  std::atomic<std::uint64_t> config_reloads{0};

  // ---- scheduling ----------------------------------------------------
  struct Worker {
    std::uint32_t index = 0;
    std::deque<Job> jobs;  // guarded by Impl::mu_
    bool busy = false;     // guarded by Impl::mu_
    std::condition_variable cv;
    WorkerCounters counters;
    StatsCell<stream::IngestStats> ingest_pub;
    stream::IngestStats ingest;  // worker-private accumulator
    std::unique_ptr<stream::StreamingDemodulator> demod;
    DemodKey demod_key;
    std::thread thr;
  };

  mutable std::mutex mu_;  // job queues, live streams, cfg pointer
  std::condition_variable idle_cv_;
  bool stop_ = false;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::uint64_t next_job_ = 0;
  std::uint64_t next_stream_ = 1;
  std::uint64_t rr_ = 0;
  std::unordered_map<StreamId, std::shared_ptr<LiveStream>> streams_;

  std::atomic<std::uint64_t> jobs_enqueued{0};
  std::atomic<std::uint64_t> jobs_done{0};
  std::atomic<std::uint64_t> jobs_failed{0};
  std::atomic<std::uint64_t> streams_open{0};
  std::atomic<std::uint64_t> markers_expected{0};

  // ---- delivery ------------------------------------------------------
  mutable std::mutex subs_mu_;
  std::vector<std::shared_ptr<Subscriber>> subs_;
  std::uint64_t next_sub_ = 1;
  std::atomic<std::size_t> n_subs{0};

  LatencyHistogram latency_;
  const Clock::time_point start_ = Clock::now();

  // ---- worker body ---------------------------------------------------

  void worker_main(Worker& w) {
    for (;;) {
      Job job;
      std::shared_ptr<const GatewayConfig> job_cfg;
      std::uint64_t gen;
      {
        std::unique_lock<std::mutex> lk(mu_);
        w.cv.wait(lk, [&] { return stop_ || !w.jobs.empty(); });
        if (stop_) return;  // outstanding jobs are abandoned (see dtor)
        job = std::move(w.jobs.front());
        w.jobs.pop_front();
        w.busy = true;
        job_cfg = cfg;  // pinned: in-flight jobs survive reload untouched
        gen = cfg_gen;
      }
      std::visit([&](const auto& j) { run_job(w, j, *job_cfg, gen); }, job);
      w.counters.jobs.fetch_add(1, std::memory_order_relaxed);
      jobs_done.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lk(mu_);
        w.busy = false;
      }
      idle_cv_.notify_all();
    }
  }

  stream::StreamingDemodulator& ensure_demod(Worker& w, const DemodKey& key,
                                             stream::StreamConfig sc) {
    if (!w.demod || !(w.demod_key == key)) {
      w.demod = std::make_unique<stream::StreamingDemodulator>(sc);
      w.demod_key = key;
    } else {
      w.demod->reset();
    }
    w.demod->clear_packets();
    return *w.demod;
  }

  void run_job(Worker& w, const TraceJob& job, const GatewayConfig& gcfg,
               std::uint64_t gen) {
    auto opened = stream::TraceReader::open(job.path, gcfg.resync);
    if (!opened.ok()) {
      // Validated at enqueue time; the file changed underneath us.
      w.ingest.count(opened.error().ingest == stream::IngestError::kNone
                         ? stream::IngestError::kBadHeader
                         : opened.error().ingest);
      w.ingest_pub.publish(w.ingest);
      jobs_failed.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    stream::TraceReader reader = std::move(opened).value();
    // The trace knows what receiver it was recorded for; the gateway's
    // stream knobs (thresholds, seeds, SIC policy) come from config.
    stream::StreamConfig sc = gcfg.worker_stream_config();
    sc.saiyan =
        core::SaiyanConfig::make(reader.meta().phy, reader.meta().mode);
    sc.payload_symbols = reader.meta().payload_symbols;
    stream::StreamingDemodulator& demod = ensure_demod(
        w,
        DemodKey::make(gen, /*from_trace=*/true, reader.meta().phy,
                       reader.meta().mode, reader.meta().payload_symbols),
        sc);

    const std::uint64_t truncated_before = demod.truncated_packets();
    dsp::Signal chunk;
    for (;;) {
      const std::uint64_t skipped_before = reader.stats().bytes_skipped;
      const stream::ChunkStatus st = reader.next_chunk(chunk);
      if (st == stream::ChunkStatus::kOk ||
          st == stream::ChunkStatus::kResync) {
        if (st == stream::ChunkStatus::kResync) {
          demod.note_gap(reader.last_gap_samples());
        }
        const Clock::time_point t0 = Clock::now();
        std::span<const dsp::Complex> rest(chunk);
        while (!rest.empty()) {
          const std::size_t take = std::min(gcfg.chunk_samples, rest.size());
          demod.push(rest.first(take));
          rest = rest.subspan(take);
        }
        w.counters.chunks.fetch_add(1, std::memory_order_relaxed);
        w.counters.samples.fetch_add(chunk.size(), std::memory_order_relaxed);
        emit_frames(w, demod, job.job_id, t0);
        publish_transient(w, &reader, &demod);
        if (gcfg.throttle_us != 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(gcfg.throttle_us));
        }
        continue;
      }
      if (st == stream::ChunkStatus::kEof &&
          reader.stats().bytes_skipped > skipped_before) {
        // Recover-mode EOF that discarded a corrupt tail.
        demod.note_gap(reader.last_gap_samples());
      }
      break;
    }
    const Clock::time_point t_flush = Clock::now();
    demod.finish();
    emit_frames(w, demod, job.job_id, t_flush);
    w.counters.truncated.fetch_add(demod.truncated_packets() -
                                       truncated_before,
                                   std::memory_order_relaxed);
    w.ingest.merge(reader.stats());
    w.ingest.merge(demod.ingest());
    w.ingest_pub.publish(w.ingest);
  }

  void run_job(Worker& w, const StreamJob& job, const GatewayConfig& gcfg,
               std::uint64_t gen) {
    stream::StreamConfig sc = gcfg.worker_stream_config();
    stream::StreamingDemodulator& demod = ensure_demod(
        w,
        DemodKey::make(gen, /*from_trace=*/false, sc.saiyan.phy,
                       sc.saiyan.mode, sc.payload_symbols),
        sc);
    const std::uint64_t truncated_before = demod.truncated_packets();
    for (;;) {
      dsp::Signal chunk;
      {
        std::unique_lock<std::mutex> lk(mu_);
        w.cv.wait(lk, [&] {
          return stop_ || job.stream->closed || !job.stream->chunks.empty();
        });
        if (stop_) return;  // abandoned, like any outstanding job
        if (job.stream->chunks.empty()) break;  // closed and drained
        chunk = std::move(job.stream->chunks.front());
        job.stream->chunks.pop_front();
      }
      const Clock::time_point t0 = Clock::now();
      std::span<const dsp::Complex> rest(chunk);
      while (!rest.empty()) {
        const std::size_t take = std::min(gcfg.chunk_samples, rest.size());
        demod.push(rest.first(take));
        rest = rest.subspan(take);
      }
      w.counters.chunks.fetch_add(1, std::memory_order_relaxed);
      w.counters.samples.fetch_add(chunk.size(), std::memory_order_relaxed);
      emit_frames(w, demod, job.job_id, t0);
      publish_transient(w, nullptr, &demod);
      if (gcfg.throttle_us != 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(gcfg.throttle_us));
      }
    }
    const Clock::time_point t_flush = Clock::now();
    demod.finish();
    emit_frames(w, demod, job.job_id, t_flush);
    w.counters.truncated.fetch_add(demod.truncated_packets() -
                                       truncated_before,
                                   std::memory_order_relaxed);
    w.ingest.merge(demod.ingest());
    w.ingest_pub.publish(w.ingest);
    {
      std::lock_guard<std::mutex> lk(mu_);
      streams_.erase(job.stream->id);
    }
  }

  /// Live view during a job: persistent worker counters plus the
  /// in-progress reader/demodulator counters (not yet folded in).
  void publish_transient(Worker& w, const stream::TraceReader* reader,
                         const stream::StreamingDemodulator* demod) {
    stream::IngestStats view = w.ingest;
    if (reader != nullptr) view.merge(reader->stats());
    if (demod != nullptr) view.merge(demod->ingest());
    w.ingest_pub.publish(view);
  }

  void emit_frames(Worker& w, stream::StreamingDemodulator& demod,
                   std::uint64_t job_id, Clock::time_point t_chunk) {
    const std::span<const stream::DecodedPacket> pkts = demod.packets();
    if (pkts.empty()) return;
    const std::uint64_t lat = us_since(t_chunk);
    for (const stream::DecodedPacket& p : pkts) {
      latency_.record(lat);
      w.counters.frames.fetch_add(1, std::memory_order_relaxed);
      w.counters.symbols.fetch_add(p.n_symbols, std::memory_order_relaxed);
      FrameRecord fr;
      fr.job = job_id;
      fr.worker = w.index;
      fr.packet_start = p.packet_start;
      fr.payload_start = p.payload_start;
      fr.score = p.score;
      fr.collided = p.collided;
      fr.sic_assisted = p.sic_assisted;
      fr.latency_us = lat;
      const std::span<const std::uint32_t> syms = demod.symbols(p);
      fr.symbols.assign(syms.begin(), syms.end());
      deliver(w, fr);
    }
    demod.clear_packets();
  }

  void deliver(Worker& w, const FrameRecord& fr) {
    std::lock_guard<std::mutex> lk(subs_mu_);
    for (const std::shared_ptr<Subscriber>& sp : subs_) {
      Subscriber& s = *sp;
      std::lock_guard<std::mutex> sk(s.m);
      if (s.stop) continue;
      if (s.q.size() >= s.cap) {
        // Backpressure: the slow subscriber sheds its own frames; the
        // worker moves on immediately.
        ++w.ingest.frames_dropped_subscriber;
        continue;
      }
      s.q.push_back(fr);
      s.cv.notify_one();
    }
  }

  static void subscriber_main(Subscriber& s) {
    std::unique_lock<std::mutex> lk(s.m);
    for (;;) {
      s.cv.wait(lk, [&] { return s.stop || !s.q.empty(); });
      if (s.q.empty()) break;  // stop requested and everything delivered
      FrameRecord fr = std::move(s.q.front());
      s.q.pop_front();
      s.in_flight = true;
      lk.unlock();
      try {
        s.fn(fr);
      } catch (...) {
        // A subscriber's exception must not take down delivery; the
        // frame counts as delivered.
      }
      lk.lock();
      s.in_flight = false;
      s.cv.notify_all();  // drain() waits on empty-and-idle
    }
  }
};

saiyan::Result<std::unique_ptr<Gateway>> Gateway::create(
    const GatewayConfig& cfg) {
  if (auto v = cfg.validate(); !v.ok()) return v.error();
  return std::unique_ptr<Gateway>(new Gateway(cfg));
}

Gateway::Gateway(const GatewayConfig& cfg) : impl_(new Impl(cfg)) {
  impl_->workers_.reserve(cfg.workers);
  for (std::size_t i = 0; i < cfg.workers; ++i) {
    auto w = std::make_unique<Impl::Worker>();
    w->index = static_cast<std::uint32_t>(i);
    impl_->workers_.push_back(std::move(w));
  }
  for (std::size_t i = 0; i < cfg.workers; ++i) {
    Impl::Worker& w = *impl_->workers_[i];
    w.thr = std::thread([this, &w] { impl_->worker_main(w); });
  }
}

Gateway::~Gateway() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    impl_->stop_ = true;
  }
  for (auto& w : impl_->workers_) w->cv.notify_all();
  for (auto& w : impl_->workers_) {
    if (w->thr.joinable()) w->thr.join();
  }
  std::vector<std::shared_ptr<Subscriber>> subs;
  {
    std::lock_guard<std::mutex> lk(impl_->subs_mu_);
    subs.swap(impl_->subs_);
  }
  for (const std::shared_ptr<Subscriber>& s : subs) {
    {
      std::lock_guard<std::mutex> lk(s->m);
      s->stop = true;
    }
    s->cv.notify_all();
    if (s->thr.joinable()) s->thr.join();
  }
}

saiyan::Result<std::uint64_t> Gateway::enqueue_trace(const std::string& path) {
  bool resync;
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    resync = impl_->cfg->resync;
  }
  // Validate the header here so a bad file fails the caller, not a
  // worker; the marker count feeds the ground-truth expectation.
  auto probe = stream::TraceReader::open(path, resync);
  if (!probe.ok()) return probe.error();
  impl_->markers_expected.fetch_add(probe.value().markers().size(),
                                    std::memory_order_relaxed);
  std::uint64_t job_id;
  Impl::Worker* target;
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    job_id = impl_->next_job_++;
    target = impl_->workers_[impl_->rr_++ % impl_->workers_.size()].get();
    target->jobs.push_back(TraceJob{job_id, path});
  }
  impl_->jobs_enqueued.fetch_add(1, std::memory_order_relaxed);
  target->cv.notify_all();
  return job_id;
}

StreamId Gateway::open_stream() {
  auto ls = std::make_shared<LiveStream>();
  std::uint64_t job_id;
  Impl::Worker* target;
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    ls->id = impl_->next_stream_++;
    impl_->streams_.emplace(ls->id, ls);
    job_id = impl_->next_job_++;
    target = impl_->workers_[impl_->rr_++ % impl_->workers_.size()].get();
    target->jobs.push_back(StreamJob{job_id, ls});
  }
  impl_->jobs_enqueued.fetch_add(1, std::memory_order_relaxed);
  impl_->streams_open.fetch_add(1, std::memory_order_relaxed);
  target->cv.notify_all();
  return ls->id;
}

saiyan::Result<Unit> Gateway::push(StreamId stream,
                                   std::span<const dsp::Complex> chunk) {
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    auto it = impl_->streams_.find(stream);
    if (it == impl_->streams_.end() || it->second->closed) {
      return fail("push: unknown or closed stream " + std::to_string(stream));
    }
    it->second->chunks.emplace_back(chunk.begin(), chunk.end());
  }
  for (auto& w : impl_->workers_) w->cv.notify_all();
  return Unit{};
}

saiyan::Result<Unit> Gateway::close_stream(StreamId stream) {
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    auto it = impl_->streams_.find(stream);
    if (it == impl_->streams_.end() || it->second->closed) {
      return fail("close_stream: unknown or closed stream " +
                  std::to_string(stream));
    }
    it->second->closed = true;
  }
  impl_->streams_open.fetch_sub(1, std::memory_order_relaxed);
  for (auto& w : impl_->workers_) w->cv.notify_all();
  return Unit{};
}

SubscriberId Gateway::subscribe(FrameHandler handler) {
  auto s = std::make_shared<Subscriber>();
  s->fn = std::move(handler);
  s->cap = impl_->base_cfg.limits.subscriber_queue;
  {
    std::lock_guard<std::mutex> lk(impl_->subs_mu_);
    s->id = impl_->next_sub_++;
    impl_->subs_.push_back(s);
  }
  impl_->n_subs.fetch_add(1, std::memory_order_relaxed);
  s->thr = std::thread([s] { Impl::subscriber_main(*s); });
  return s->id;
}

void Gateway::unsubscribe(SubscriberId id) {
  std::shared_ptr<Subscriber> victim;
  {
    std::lock_guard<std::mutex> lk(impl_->subs_mu_);
    for (auto it = impl_->subs_.begin(); it != impl_->subs_.end(); ++it) {
      if ((*it)->id == id) {
        victim = *it;
        impl_->subs_.erase(it);
        break;
      }
    }
  }
  if (!victim) return;
  impl_->n_subs.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(victim->m);
    victim->stop = true;  // queued frames are still delivered first
  }
  victim->cv.notify_all();
  if (victim->thr.joinable()) victim->thr.join();
}

saiyan::Result<Unit> Gateway::reload(const GatewayConfig& cfg) {
  if (auto v = cfg.validate(); !v.ok()) return v.error();
  if (cfg.workers != impl_->base_cfg.workers) {
    return fail("reload: workers is fixed at create()");
  }
  if (cfg.limits.subscriber_queue != impl_->base_cfg.limits.subscriber_queue) {
    return fail("reload: limits.subscriber_queue is fixed at create()");
  }
  {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    impl_->cfg = std::make_shared<const GatewayConfig>(cfg);
    ++impl_->cfg_gen;
  }
  impl_->config_reloads.fetch_add(1, std::memory_order_relaxed);
  return Unit{};
}

saiyan::Result<Unit> Gateway::drain() {
  {
    std::unique_lock<std::mutex> lk(impl_->mu_);
    for (const auto& [id, ls] : impl_->streams_) {
      if (!ls->closed) {
        return fail("drain: live stream " + std::to_string(id) +
                    " still open (close_stream it first)");
      }
    }
    impl_->idle_cv_.wait(lk, [&] {
      for (const auto& w : impl_->workers_) {
        if (w->busy || !w->jobs.empty()) return false;
      }
      return true;
    });
  }
  std::vector<std::shared_ptr<Subscriber>> subs;
  {
    std::lock_guard<std::mutex> lk(impl_->subs_mu_);
    subs = impl_->subs_;
  }
  for (const std::shared_ptr<Subscriber>& s : subs) {
    std::unique_lock<std::mutex> sk(s->m);
    s->cv.wait(sk, [&] { return s->q.empty() && !s->in_flight; });
  }
  return Unit{};
}

GatewayStats Gateway::stats() const {
  const Impl& im = *impl_;
  GatewayStats s;
  s.uptime_s = std::chrono::duration<double>(Clock::now() - im.start_).count();
  s.workers = im.workers_.size();
  s.subscribers = im.n_subs.load(std::memory_order_relaxed);
  s.jobs_enqueued = im.jobs_enqueued.load(std::memory_order_relaxed);
  s.jobs_done = im.jobs_done.load(std::memory_order_relaxed);
  s.jobs_failed = im.jobs_failed.load(std::memory_order_relaxed);
  s.streams_open = im.streams_open.load(std::memory_order_relaxed);
  s.config_reloads = im.config_reloads.load(std::memory_order_relaxed);
  s.markers_expected = im.markers_expected.load(std::memory_order_relaxed);
  s.per_worker.reserve(im.workers_.size());
  for (const auto& wp : im.workers_) {
    const WorkerCounters& c = wp->counters;
    WorkerSnapshot ws;
    ws.frames = c.frames.load(std::memory_order_relaxed);
    ws.symbols = c.symbols.load(std::memory_order_relaxed);
    ws.samples = c.samples.load(std::memory_order_relaxed);
    ws.chunks = c.chunks.load(std::memory_order_relaxed);
    ws.jobs = c.jobs.load(std::memory_order_relaxed);
    ws.truncated = c.truncated.load(std::memory_order_relaxed);
    s.frames_decoded += ws.frames;
    s.symbols_decoded += ws.symbols;
    s.samples_consumed += ws.samples;
    s.chunks_ingested += ws.chunks;
    s.truncated_frames += ws.truncated;
    s.ingest.merge(wp->ingest_pub.read());
    s.per_worker.push_back(ws);
  }
  if (s.uptime_s > 0.0) {
    s.frames_per_sec = static_cast<double>(s.frames_decoded) / s.uptime_s;
    s.msamples_per_sec =
        static_cast<double>(s.samples_consumed) / s.uptime_s / 1e6;
  }
  // Quantiles report a log2 bucket's upper edge; clamp to the true max
  // so p99 never reads above the worst sample actually seen.
  s.latency_max_us = im.latency_.max_us();
  s.latency_p50_us = std::min(im.latency_.quantile_us(0.50), s.latency_max_us);
  s.latency_p99_us = std::min(im.latency_.quantile_us(0.99), s.latency_max_us);
  return s;
}

const GatewayConfig& Gateway::config() const { return impl_->base_cfg; }

}  // namespace saiyan::gateway
