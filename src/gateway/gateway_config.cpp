#include "gateway/gateway_config.hpp"

#include <stdexcept>
#include <string>

#include "stream/trace.hpp"

namespace saiyan::gateway {

namespace {

saiyan::Error bad_field(const char* path, const std::string& why) {
  return saiyan::Error{std::string(path) + ": " + why};
}

}  // namespace

saiyan::Result<Unit> GatewayConfig::validate() const {
  try {
    stream.saiyan.phy.validate();
  } catch (const std::invalid_argument& err) {
    return bad_field("stream.saiyan.phy", err.what());
  }
  if (stream.payload_symbols == 0 || stream.payload_symbols > (1u << 16)) {
    return bad_field("stream.payload_symbols", "must be in [1, 65536]");
  }
  if (!(stream.min_score > 0.0) || stream.min_score > 1.0) {
    return bad_field("stream.min_score", "must be in (0, 1]");
  }
  if (stream.sic.depth > 16) {
    return bad_field("stream.sic.depth", "must be <= 16");
  }
  if (!(stream.sic.redetect_min_score > 0.0) ||
      stream.sic.redetect_min_score > 1.0) {
    return bad_field("stream.sic.redetect_min_score", "must be in (0, 1]");
  }
  // Deprecated aliases: both spellings set to different nonzero values
  // is ambiguous — reject instead of silently picking one.
  if (stream.sic.shed_queue != 0 && limits.sic_shed_queue != 0 &&
      stream.sic.shed_queue != limits.sic_shed_queue) {
    return bad_field("stream.sic.shed_queue",
                     "deprecated alias conflicts with limits.sic_shed_queue");
  }
  if (stream.sic.max_rescan_queue != 0 && limits.sic_max_rescan_queue != 0 &&
      stream.sic.max_rescan_queue != limits.sic_max_rescan_queue) {
    return bad_field(
        "stream.sic.max_rescan_queue",
        "deprecated alias conflicts with limits.sic_max_rescan_queue");
  }
  if (workers == 0 || workers > 256) {
    return bad_field("workers", "must be in [1, 256]");
  }
  if (chunk_samples == 0 || chunk_samples > stream::kMaxTraceChunkSamples) {
    return bad_field("chunk_samples",
                     "must be in [1, " +
                         std::to_string(stream::kMaxTraceChunkSamples) + "]");
  }
  if (limits.subscriber_queue == 0) {
    return bad_field("limits.subscriber_queue", "must be >= 1");
  }
  if (watchdog.poll_ms == 0 || watchdog.poll_ms > 60'000) {
    return bad_field("watchdog.poll_ms", "must be in [1, 60000]");
  }
  if (degradation.backlog_low > degradation.backlog_high) {
    return bad_field("degradation.backlog_low",
                     "must be <= degradation.backlog_high");
  }
  if (degradation.p99_low_us > degradation.p99_high_us) {
    return bad_field("degradation.p99_low_us",
                     "must be <= degradation.p99_high_us");
  }
  if (degradation.escalate_after == 0) {
    return bad_field("degradation.escalate_after", "must be >= 1");
  }
  if (degradation.deescalate_after == 0) {
    return bad_field("degradation.deescalate_after", "must be >= 1");
  }
  if (link.capacity == 0 || link.capacity > (1u << 20)) {
    return bad_field("link.capacity", "must be in [1, 1048576]");
  }
  if (link.prom_top_k == 0 || link.prom_top_k > 64) {
    return bad_field("link.prom_top_k",
                     "must be in [1, 64] (scrape cardinality bound)");
  }
  return Unit{};
}

stream::StreamConfig GatewayConfig::worker_stream_config() const {
  stream::StreamConfig sc = stream;
  if (limits.sic_shed_queue != 0) {
    sc.sic.shed_queue = limits.sic_shed_queue;
  }
  if (limits.sic_max_rescan_queue != 0) {
    sc.sic.max_rescan_queue = limits.sic_max_rescan_queue;
  }
  return sc;
}

}  // namespace saiyan::gateway
