#include "gateway/degradation.hpp"

namespace saiyan::gateway {

const char* to_string(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kHealthy:
      return "healthy";
    case DegradationLevel::kReduceSic:
      return "reduce_sic";
    case DegradationLevel::kShedRescans:
      return "shed_rescans";
    case DegradationLevel::kDropSpans:
      return "drop_spans";
  }
  return "?";
}

bool DegradationLadder::update(std::size_t rescan_backlog,
                               std::uint64_t p99_us) {
  const bool backlog_on = cfg_.backlog_high != 0;
  const bool latency_on = cfg_.p99_high_us != 0;
  // Hot when *any* enabled signal is past its high watermark; cool only
  // when *every* enabled signal is back at or below its low watermark.
  // In between, both streaks reset and the level holds.
  const bool hot = (backlog_on && rescan_backlog >= cfg_.backlog_high) ||
                   (latency_on && p99_us >= cfg_.p99_high_us);
  const bool cool = (!backlog_on || rescan_backlog <= cfg_.backlog_low) &&
                    (!latency_on || p99_us <= cfg_.p99_low_us);
  if (hot) {
    cool_polls_ = 0;
    if (++hot_polls_ >= cfg_.escalate_after) {
      hot_polls_ = 0;  // a further escalation needs a fresh streak
      if (level_ < static_cast<std::uint8_t>(DegradationLevel::kDropSpans)) {
        ++level_;
        ++transitions_;
        return true;
      }
    }
  } else if (cool) {
    hot_polls_ = 0;
    if (++cool_polls_ >= cfg_.deescalate_after) {
      cool_polls_ = 0;
      if (level_ > 0) {
        --level_;
        ++transitions_;
        return true;
      }
    }
  } else {
    hot_polls_ = 0;
    cool_polls_ = 0;
  }
  return false;
}

}  // namespace saiyan::gateway
