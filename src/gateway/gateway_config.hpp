// One configuration for the whole serving path.
//
// Before the facade, driving the library as a gateway meant juggling
// three config structs (core::SaiyanConfig inside stream::StreamConfig
// inside whatever the caller invented) plus loose knobs scattered over
// call sites (chunk size, resync mode, SIC shedding). GatewayConfig
// aggregates all of it behind one validated struct:
//
//   GatewayConfig cfg;
//   cfg.workers = 4;
//   cfg.stream.sic.depth = 1;
//   if (auto v = cfg.validate(); !v.ok()) die(v.message());
//   auto gw = gateway::Gateway::create(cfg);
//
// validate() checks every field and reports the *first* bad one by its
// dotted path ("stream.min_score", "limits.subscriber_queue"), so a
// config-file error points at a line, not at a stack trace from
// whichever layer noticed three calls later.
//
// Deprecated aliases (one release): the SIC load-shedding knobs grew
// up inside sic::SicConfig (stream.sic.shed_queue /
// stream.sic.max_rescan_queue) but are gateway overload policy, not
// cancellation policy — their canonical home is now GatewayLimits.
// The old fields still work: worker_stream_config() folds them in, and
// validate() rejects a config that sets both spellings to different
// values instead of silently picking one.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "core/result.hpp"
#include "gateway/degradation.hpp"
#include "stream/streaming_demod.hpp"

namespace saiyan::gateway {

/// Gateway-level overload policy: every bound the serving path applies
/// when the offered load exceeds what it can absorb.
struct GatewayLimits {
  /// Frames buffered per subscriber before new frames are dropped for
  /// that subscriber (IngestStats::frames_dropped_subscriber). A slow
  /// consumer sheds its own frames; it never stalls a worker.
  std::size_t subscriber_queue = 256;
  /// Canonical home of stream.sic.shed_queue (deprecated alias): skip
  /// SIC cancellation when the rescan backlog reaches this depth.
  /// 0 = never shed.
  std::size_t sic_shed_queue = 0;
  /// Canonical home of stream.sic.max_rescan_queue (deprecated alias):
  /// hard cap on queued rescan regions. 0 = unbounded.
  std::size_t sic_max_rescan_queue = 0;
};

/// Watchdog: liveness supervision of the worker pool. A worker beats a
/// per-worker heartbeat at every chunk boundary; the watchdog thread
/// polls the heartbeats and per-job wall-clock ages and fires the
/// worker's cooperative cancel token when either bound is exceeded.
/// The cancelled job fails with a typed error (JobState::kCancelled)
/// instead of wedging drain() forever; the worker itself survives and
/// picks up the next job with a fresh demodulator. Fixed at
/// Gateway::create() (like `workers`): reload() rejects changes.
struct WatchdogConfig {
  /// Supervision poll period. Also the degradation ladder's tick.
  std::uint64_t poll_ms = 20;
  /// Cancel a job whose worker has not beaten its heartbeat for this
  /// long (a chunk wedged inside the demodulator). 0 = disabled.
  std::uint64_t heartbeat_timeout_ms = 0;
  /// Soft per-job deadline: cancel any job busy longer than this, even
  /// one still making progress. 0 = disabled.
  std::uint64_t job_deadline_ms = 0;

  bool operator==(const WatchdogConfig&) const = default;
};

/// Link telescope: per-tag/channel RF diagnostics registry (see
/// obs/link_telemetry.hpp). Fixed at Gateway::create() — the registry
/// is shared state the workers write into; reload() rejects changes.
struct LinkTelemetryConfig {
  /// Record per-frame diagnostics into the link registry. Purely
  /// observational: decode output is bit-identical on or off.
  bool enabled = true;
  /// Max simultaneously tracked links (tag × channel); the
  /// least-recently-seen link is evicted beyond this.
  std::size_t capacity = 256;
  /// Links exported as labeled Prometheus series, by frame count;
  /// the rest aggregate into a tag="other" bucket so scrape
  /// cardinality stays bounded.
  std::size_t prom_top_k = 10;
  /// Payload symbol 1 is a per-link wrapping sequence counter: infer
  /// lost frames from gaps. Off unless the deployment's tags actually
  /// encode one (sim captures do with CaptureConfig::link_headers).
  bool sequence_symbol = false;
  /// Emit a per-frame instant marker into the trace-event ring so
  /// Perfetto timelines align SNR dips with stage latency spikes.
  bool trace_frames = false;

  bool operator==(const LinkTelemetryConfig&) const = default;
};

struct GatewayConfig {
  /// Per-worker demodulation pipeline: PHY + receiver mode, frame
  /// length, scanner threshold, decode seeds, SIC policy. Every worker
  /// runs an identical warm copy.
  stream::StreamConfig stream;

  /// Demodulator worker threads. Each worker owns a warm
  /// StreamingDemodulator + SIC resolver + DemodWorkspace; streams and
  /// trace-replay jobs are assigned to workers round-robin, so decode
  /// results are bit-identical at any worker count.
  std::size_t workers = 1;

  /// Trace-read / socket-ingest granularity in samples.
  std::size_t chunk_samples = 16384;

  /// Read traces in skip-and-resync mode and feed recovered gaps to
  /// the demodulator (StreamingDemodulator::note_gap) instead of
  /// aborting the stream at the first corrupt chunk.
  bool resync = true;

  /// Pacing: sleep this long after each ingested chunk (0 = replay as
  /// fast as the hardware allows). The daemon's record-then-serve mode
  /// uses it to approximate a real-time capture feed.
  std::uint64_t throttle_us = 0;

  GatewayLimits limits;

  /// Liveness supervision (heartbeats + job deadlines). Disabled by
  /// default; fixed at create().
  WatchdogConfig watchdog;

  /// Adaptive overload degradation (see gateway/degradation.hpp).
  /// Disabled by default; fixed at create().
  DegradationConfig degradation;

  /// Per-link RF diagnostics registry. Enabled by default (near-zero
  /// hot-path cost); fixed at create().
  LinkTelemetryConfig link;

  /// Operational event sink (ladder transitions, watchdog cancels).
  /// Called from the watchdog thread; must be thread-safe and fast.
  /// Null = events are counted but not reported.
  std::function<void(const std::string&)> on_event;

  /// Test-only instrumentation: invoked on the worker thread after
  /// every ingested chunk, with the worker's own cancel token. The
  /// chaos harness uses it to stall a worker mid-job and to verify a
  /// watchdog cancel unsticks it; production configs leave it null.
  struct ChunkHookInfo {
    std::uint32_t worker = 0;
    std::uint64_t job = 0;
    std::uint64_t chunk_index = 0;                ///< within the job
    const std::atomic<bool>* cancel = nullptr;    ///< worker cancel token
  };
  std::function<void(const ChunkHookInfo&)> chunk_hook;

  /// Check every field; on failure the Error message names the first
  /// bad field by its dotted path.
  saiyan::Result<Unit> validate() const;

  /// The per-worker stream config with the deprecated SIC-shedding
  /// aliases folded into their canonical GatewayLimits values.
  stream::StreamConfig worker_stream_config() const;
};

}  // namespace saiyan::gateway
