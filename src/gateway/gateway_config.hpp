// One configuration for the whole serving path.
//
// Before the facade, driving the library as a gateway meant juggling
// three config structs (core::SaiyanConfig inside stream::StreamConfig
// inside whatever the caller invented) plus loose knobs scattered over
// call sites (chunk size, resync mode, SIC shedding). GatewayConfig
// aggregates all of it behind one validated struct:
//
//   GatewayConfig cfg;
//   cfg.workers = 4;
//   cfg.stream.sic.depth = 1;
//   if (auto v = cfg.validate(); !v.ok()) die(v.message());
//   auto gw = gateway::Gateway::create(cfg);
//
// validate() checks every field and reports the *first* bad one by its
// dotted path ("stream.min_score", "limits.subscriber_queue"), so a
// config-file error points at a line, not at a stack trace from
// whichever layer noticed three calls later.
//
// Deprecated aliases (one release): the SIC load-shedding knobs grew
// up inside sic::SicConfig (stream.sic.shed_queue /
// stream.sic.max_rescan_queue) but are gateway overload policy, not
// cancellation policy — their canonical home is now GatewayLimits.
// The old fields still work: worker_stream_config() folds them in, and
// validate() rejects a config that sets both spellings to different
// values instead of silently picking one.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/result.hpp"
#include "stream/streaming_demod.hpp"

namespace saiyan::gateway {

/// Gateway-level overload policy: every bound the serving path applies
/// when the offered load exceeds what it can absorb.
struct GatewayLimits {
  /// Frames buffered per subscriber before new frames are dropped for
  /// that subscriber (IngestStats::frames_dropped_subscriber). A slow
  /// consumer sheds its own frames; it never stalls a worker.
  std::size_t subscriber_queue = 256;
  /// Canonical home of stream.sic.shed_queue (deprecated alias): skip
  /// SIC cancellation when the rescan backlog reaches this depth.
  /// 0 = never shed.
  std::size_t sic_shed_queue = 0;
  /// Canonical home of stream.sic.max_rescan_queue (deprecated alias):
  /// hard cap on queued rescan regions. 0 = unbounded.
  std::size_t sic_max_rescan_queue = 0;
};

struct GatewayConfig {
  /// Per-worker demodulation pipeline: PHY + receiver mode, frame
  /// length, scanner threshold, decode seeds, SIC policy. Every worker
  /// runs an identical warm copy.
  stream::StreamConfig stream;

  /// Demodulator worker threads. Each worker owns a warm
  /// StreamingDemodulator + SIC resolver + DemodWorkspace; streams and
  /// trace-replay jobs are assigned to workers round-robin, so decode
  /// results are bit-identical at any worker count.
  std::size_t workers = 1;

  /// Trace-read / socket-ingest granularity in samples.
  std::size_t chunk_samples = 16384;

  /// Read traces in skip-and-resync mode and feed recovered gaps to
  /// the demodulator (StreamingDemodulator::note_gap) instead of
  /// aborting the stream at the first corrupt chunk.
  bool resync = true;

  /// Pacing: sleep this long after each ingested chunk (0 = replay as
  /// fast as the hardware allows). The daemon's record-then-serve mode
  /// uses it to approximate a real-time capture feed.
  std::uint64_t throttle_us = 0;

  GatewayLimits limits;

  /// Check every field; on failure the Error message names the first
  /// bad field by its dotted path.
  saiyan::Result<Unit> validate() const;

  /// The per-worker stream config with the deprecated SIC-shedding
  /// aliases folded into their canonical GatewayLimits values.
  stream::StreamConfig worker_stream_config() const;
};

}  // namespace saiyan::gateway
