// Gateway serving statistics: lock-free on the serving path.
//
// MDS2's operational lesson (PAPERS.md) is that statistics queries
// must not perturb the serving path: an operator polling `stats` once
// a second must cost the workers nothing. Two mechanisms deliver that:
//
//   * hot counters (frames, samples, latency histogram buckets) are
//     per-worker relaxed atomics, padded to their own cache line —
//     a worker increments without synchronizing with anyone;
//   * the composite IngestStats block (too wide for one atomic) is
//     published through a per-worker seqlock: the worker bumps a
//     version counter around its update, the snapshot thread retries
//     the copy until it reads a stable even version. Writers never
//     wait; readers retry, which only matters while a worker is
//     mid-publish.
//
// Latency is tracked as a log2 histogram over microseconds (see
// obs/latency_histogram.hpp, where the histogram moved when every
// pipeline stage grew one), so p50/p99 come out of 48 counters with
// ~2x resolution and no per-sample allocation.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/link_telemetry.hpp"
#include "obs/stage_metrics.hpp"
#include "stream/ingest_stats.hpp"

namespace saiyan::gateway {

/// Log2-bucketed wait-free latency histogram, promoted to src/obs/ so
/// the per-stage pipeline timers and the Prometheus exporter can share
/// it. The alias keeps the historical gateway-side name alive.
using LatencyHistogram = obs::LatencyHistogram;

/// Single-writer seqlock publishing a composite stats block to
/// concurrent snapshot readers without making the writer wait.
template <typename T>
class StatsCell {
 public:
  /// Worker side (one writer): publish a new value.
  void publish(const T& value) {
    seq_.fetch_add(1, std::memory_order_relaxed);        // odd: in flux
    std::atomic_thread_fence(std::memory_order_release);
    data_ = value;
    seq_.fetch_add(1, std::memory_order_release);        // even: stable
  }

  /// Snapshot side: retry until a stable copy is read.
  T read() const {
    for (;;) {
      const std::uint32_t before = seq_.load(std::memory_order_acquire);
      if (before & 1) continue;
      T copy = data_;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq_.load(std::memory_order_relaxed) == before) return copy;
    }
  }

 private:
  std::atomic<std::uint32_t> seq_{0};
  T data_{};
};

/// One pipeline stage's latency distribution as seen in a snapshot
/// (source: the shared obs::StageMetrics every worker records into).
struct StageLatencySnapshot {
  const char* stage = "?";  ///< obs::to_string(Stage) — stable literal
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;
  /// Samples in the open-ended last bucket: quantiles that land there
  /// clamp to the bucket's lower edge, so a nonzero count means the
  /// p50/p99/max above may silently understate the truth.
  std::uint64_t saturated = 0;
  /// Raw log2 bucket counts (bucket edges are
  /// obs::LatencyHistogram::bucket_upper_us) — what the Prometheus
  /// exporter renders as cumulative le="..." series.
  std::array<std::uint64_t, obs::LatencyHistogram::kBuckets> buckets{};
};

/// Per-worker counters as seen in a snapshot.
struct WorkerSnapshot {
  std::uint64_t frames = 0;     ///< packets decoded
  std::uint64_t symbols = 0;    ///< payload symbols decoded
  std::uint64_t samples = 0;    ///< IQ samples consumed
  std::uint64_t chunks = 0;     ///< chunks ingested
  std::uint64_t jobs = 0;       ///< trace/stream jobs completed
  std::uint64_t truncated = 0;  ///< frames cut off by capture end
};

/// One coherent view of the gateway, produced by Gateway::stats()
/// without stopping any worker.
struct GatewayStats {
  double uptime_s = 0.0;
  std::size_t workers = 0;
  std::size_t subscribers = 0;

  std::uint64_t jobs_enqueued = 0;
  std::uint64_t jobs_done = 0;
  std::uint64_t jobs_failed = 0;   ///< trace open/parse failures
  std::uint64_t streams_open = 0;  ///< live push-streams not yet closed
  std::uint64_t config_reloads = 0;

  std::uint64_t frames_decoded = 0;
  std::uint64_t symbols_decoded = 0;
  std::uint64_t truncated_frames = 0;
  std::uint64_t samples_consumed = 0;
  std::uint64_t chunks_ingested = 0;
  /// Ground-truth frame count summed over the marker tables of every
  /// enqueued trace — what frames_decoded should reach when nothing
  /// is lost.
  std::uint64_t markers_expected = 0;

  double frames_per_sec = 0.0;     ///< over uptime
  double msamples_per_sec = 0.0;   ///< over uptime

  std::uint64_t latency_p50_us = 0;  ///< chunk-to-frame decode latency
  std::uint64_t latency_p99_us = 0;
  std::uint64_t latency_max_us = 0;
  /// Raw chunk-to-frame histogram, for the Prometheus exporter.
  std::array<std::uint64_t, obs::LatencyHistogram::kBuckets>
      latency_buckets{};
  std::uint64_t latency_count = 0;
  std::uint64_t latency_sum_us = 0;
  /// Chunk-to-frame samples in the open-ended bucket (quantile clamp
  /// flag — see StageLatencySnapshot::saturated).
  std::uint64_t latency_saturated = 0;

  /// Per-stage pipeline latency (scan, decode, sic_cancel, sic_rescan,
  /// gap_realign, deliver), in obs::Stage order.
  std::vector<StageLatencySnapshot> stages;

  /// Flight-recorder events overwritten before any dump read them
  /// (obs::events_dropped_total); 0 when tracing is off or compiled
  /// out.
  std::uint64_t trace_events_dropped = 0;

  /// Self-healing pillar (see docs/ROBUSTNESS.md): watchdog cancels by
  /// cause, and the degradation ladder's current rung + lifetime
  /// transition count.
  std::uint64_t watchdog_cancels = 0;  ///< heartbeat-timeout cancels
  std::uint64_t deadline_cancels = 0;  ///< job-deadline cancels
  std::uint32_t degradation_level = 0;
  std::uint64_t degradation_transitions = 0;

  /// Merged ingest health across workers (trace resyncs, gaps, SIC
  /// shedding, subscriber drops).
  stream::IngestStats ingest;

  std::vector<WorkerSnapshot> per_worker;

  /// Link telescope summary (full per-link windows live behind the
  /// `links` control op / Gateway::links()).
  obs::LinkRegistrySnapshot links;
  /// Labeled-series budget the Prometheus exporter applies to `links`
  /// (GatewayConfig::link.prom_top_k).
  std::size_t link_top_k = 10;

  /// Serialize as `key value` lines — the control protocol's stats
  /// payload (documented in docs/GATEWAY.md).
  std::string to_text() const;
};

/// Ordering/limit options for the `links` control op.
struct LinkQuery {
  enum class Sort {
    kFrames,    ///< busiest first
    kSnr,       ///< worst EWMA SNR first (triage order)
    kLastSeen,  ///< most recently seen first
    kTag,       ///< tag id, then channel
  };
  Sort sort = Sort::kFrames;
  std::size_t top = 0;  ///< 0 = all links
};

/// Parse a `links` op request payload: whitespace-separated
/// "top=N sort=frames|snr|last_seen|tag" tokens (both optional; empty
/// payload = defaults). Unknown keys/values are an error — the daemon
/// answers kError with the message.
saiyan::Result<LinkQuery> parse_link_query(std::string_view text);

/// Serialize a registry snapshot as `key value` lines: global counters
/// (links_tracked, link_evictions, frames_total, noise_floor_dbm) then
/// per-link `link.<tag>.<channel>.<field>` lines ordered/limited per
/// `q` — the `links` op payload (same dialect as GatewayStats).
std::string links_to_text(const obs::LinkRegistrySnapshot& snap,
                          const LinkQuery& q = {});

/// Liveness view of one worker, for the `health` op.
struct WorkerHealth {
  bool busy = false;
  std::uint64_t job = 0;               ///< current job id (when busy)
  std::uint64_t job_age_ms = 0;        ///< since the job started
  std::uint64_t heartbeat_age_ms = 0;  ///< since the last heartbeat
  std::uint64_t cancels = 0;           ///< watchdog cancels fired here
  std::uint64_t rescan_backlog = 0;    ///< queued SIC rescan regions
  std::uint64_t jobs_completed = 0;    ///< lifetime jobs finished here
};

/// Self-healing snapshot produced by Gateway::health() — the payload
/// of the control protocol's `health` op. Cheaper and more pointed
/// than a full stats snapshot: it answers "is anything stuck, and how
/// degraded are we" rather than "how much was decoded".
struct GatewayHealth {
  double uptime_s = 0.0;              ///< since Gateway construction
  std::uint64_t config_generation = 0;  ///< bumps on every reload
  std::uint32_t degradation_level = 0;
  std::string degradation_name;  ///< to_string(DegradationLevel)
  std::uint64_t degradation_transitions = 0;
  std::uint64_t watchdog_cancels = 0;
  std::uint64_t deadline_cancels = 0;
  std::uint64_t jobs_cancelled = 0;   ///< jobs abandoned after a cancel
  std::uint64_t rescan_backlog = 0;   ///< worst backlog across workers
  std::uint64_t window_p99_us = 0;    ///< controller's last windowed p99
  std::vector<WorkerHealth> workers;

  /// `key value` lines, same dialect as GatewayStats::to_text().
  std::string to_text() const;
};

}  // namespace saiyan::gateway
